bench/main.ml: Analyze Array Bechamel Benchmark Hashtbl Hope_core Hope_net Hope_workloads List Measure Printf Scenarios Staged String Sys Test Time Toolkit
