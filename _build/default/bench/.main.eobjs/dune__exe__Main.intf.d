bench/main.mli:
