bench/scenarios.ml: Envelope Format Hope_core Hope_net Hope_proc Hope_sim Hope_types Hope_workloads List Printf Proc_id Value
