examples/call_streaming.ml: Hope_net Hope_workloads Printf
