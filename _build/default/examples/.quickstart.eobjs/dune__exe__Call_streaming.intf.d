examples/call_streaming.mli:
