examples/occ_demo.ml: Hope_workloads List Printf
