examples/occ_demo.mli:
