examples/phold_comparison.ml: Hope_workloads Printf
