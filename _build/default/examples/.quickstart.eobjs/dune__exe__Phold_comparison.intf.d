examples/phold_comparison.mli:
