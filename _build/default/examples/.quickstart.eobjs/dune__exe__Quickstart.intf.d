examples/quickstart.mli:
