examples/replication_demo.ml: Hope_workloads List Printf
