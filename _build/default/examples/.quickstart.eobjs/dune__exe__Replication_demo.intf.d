examples/replication_demo.mli:
