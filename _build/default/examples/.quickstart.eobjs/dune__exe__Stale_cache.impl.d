examples/stale_cache.ml: Envelope Format Hope_core Hope_net Hope_proc Hope_rpc Hope_sim Hope_types Printf Proc_id Value
