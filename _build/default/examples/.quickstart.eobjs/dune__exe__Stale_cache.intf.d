examples/stale_cache.mli:
