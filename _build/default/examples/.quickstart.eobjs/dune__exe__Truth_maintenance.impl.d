examples/truth_maintenance.ml: Envelope Hope_core Hope_net Hope_proc Hope_sim Hope_types Printf Value
