examples/truth_maintenance.mli:
