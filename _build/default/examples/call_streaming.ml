(* Call Streaming (the paper's §3.1, Figures 1-2): hiding RPC latency.

   A worker prints a report on a remote print server over a
   transcontinental link (30 ms round trip). The pessimistic version of
   Figure 1 pays a round trip per statement; the optimistic version of
   Figure 2 assumes the page does not run out (PartPage), lets a WorryWart
   verify in parallel, and guards message ordering with the Order
   assumption checked by free_of.

   Run with:  dune exec examples/call_streaming.exe *)

module Report = Hope_workloads.Report

let run_one ~label ~latency p =
  let pess = Report.run ~latency ~mode:`Pessimistic p in
  let opt = Report.run ~latency ~mode:`Optimistic p in
  let speedup = pess.Report.completion_time /. opt.Report.completion_time in
  let saved =
    100.0 *. (1.0 -. (opt.Report.completion_time /. pess.Report.completion_time))
  in
  Printf.printf
    "%-14s pessimistic %8.2f ms | optimistic %8.2f ms | %4.1fx (%.0f%% saved) | %d rollbacks repaired %d page breaks\n"
    label
    (pess.Report.completion_time *. 1e3)
    (opt.Report.completion_time *. 1e3)
    speedup saved opt.Report.rollbacks
    (p.Report.sections * 2 / p.Report.page_size)

let () =
  let p = Report.default_params in
  Printf.printf
    "Printing a %d-section report (page size %d => PartPage assumption is right %.0f%% of the time)\n\n"
    p.Report.sections p.Report.page_size (100.0 *. Report.accuracy p);
  run_one ~label:"LAN (0.1ms)" ~latency:Hope_net.Latency.lan p;
  run_one ~label:"MAN (1ms)" ~latency:Hope_net.Latency.man p;
  run_one ~label:"WAN (15ms)" ~latency:Hope_net.Latency.wan p;
  Printf.printf
    "\nThe WAN case is the paper's motivating scenario: optimism hides the\n\
     round trips, and the occasional wrong PartPage guess is repaired by\n\
     rollback instead of being prevented by waiting.\n"
