(* Optimistic concurrency control - the very first example the paper's
   introduction gives of optimism: "assume that locks will be granted,
   process the transaction, and post hoc verify that the locks were
   granted" (after Kung & Robinson, the paper's [17]).

   Concurrent clients run read-modify-write transactions against a
   versioned store. The HOPE version reads a snapshot, then commits under
   a guessed "my reads are still current" assumption; the store validates
   post hoc. Conflicts are real - they emerge from the interleaving - and
   a denial rolls the client back to retry. The run aborts internally if
   the final store state ever disagrees with the committed write count,
   so every printed line is also a serializability check.

   Run with:  dune exec examples/occ_demo.exe *)

module Occ = Hope_workloads.Occ

let () =
  Printf.printf
    "4 clients x 15 transactions (3 reads + 2 writes each), MAN latency.\n\
     Contention is controlled by the key-space size.\n\n";
  Printf.printf "%-8s %14s %14s %9s %8s %11s\n" "keys" "2PL (ms)" "OCC (ms)"
    "speedup" "aborts" "rollbacks";
  List.iter
    (fun keys ->
      let p = { Occ.default_params with keys } in
      let pess = Occ.run ~mode:`Pessimistic p in
      let opt = Occ.run ~mode:`Optimistic p in
      Printf.printf "%-8d %14.2f %14.2f %8.2fx %8d %11d\n" keys
        (pess.Occ.makespan *. 1e3)
        (opt.Occ.makespan *. 1e3)
        (pess.Occ.makespan /. opt.Occ.makespan)
        opt.Occ.aborts opt.Occ.rollbacks)
    [ 1024; 256; 64; 16 ];
  Printf.printf
    "\nOCC halves the round trips while conflicts are rare. Under contention\n\
     the general-purpose rollback amplifies each abort into a cascade (the\n\
     store's speculative state is one interval chain), which a dedicated\n\
     OCC validator would not pay - the generality-vs-overhead trade-off\n\
     of EXPERIMENTS.md E7/E12.\n"
