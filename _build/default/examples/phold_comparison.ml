(* Time Warp vs HOPE on the same discrete-event simulation (PHOLD).

   §2 of the paper positions Time Warp as prior optimism with one
   hard-wired assumption ("messages arrive in timestamp order") and HOPE
   as the generalisation. Here the same PHOLD model runs three ways - a
   sequential oracle, a dedicated Time Warp, and an optimistic simulator
   written against the HOPE API - and must produce identical results.
   The comparison shows what the generality costs.

   Run with:  dune exec examples/phold_comparison.exe *)

module P = Hope_workloads.Phold

let show name (o : P.outcome) =
  Printf.printf "%-12s events=%4d executed=%4d rollbacks=%4d messages=%7d physical=%7.2f ms\n"
    name o.P.handled_total o.P.processed o.P.rollbacks o.P.messages
    (o.P.physical_time *. 1e3)

let () =
  let p = P.default_params in
  Printf.printf
    "PHOLD: %d LPs, %d jobs, %.0f%% remote hops, horizon %.0f virtual seconds\n\n"
    p.P.n_lps p.P.jobs (100.0 *. p.P.remote_prob) p.P.horizon;
  let seq = P.run_sequential p in
  let tw = P.run_timewarp p in
  let hope = P.run_hope p in
  show "sequential" seq;
  show "time-warp" tw;
  show "hope" hope;
  Printf.printf "\nchecksum agreement: time-warp=%b hope=%b\n"
    (tw.P.checksums = seq.P.checksums)
    (hope.P.checksums = seq.P.checksums);
  Printf.printf
    "\nBoth optimistic engines compute exactly the sequential result. The\n\
     dedicated Time Warp pays anti-messages; general-purpose HOPE pays its\n\
     AID traffic - the price of supporting *any* assumption, not just\n\
     timestamp order (the trade-off §2 describes).\n"
