(* Quickstart: the four HOPE primitives in one small program.

   A planner wants to schedule an outdoor event. Checking the weather
   takes a slow remote call; instead of waiting, the planner *guesses*
   that the weather will be fine and plans on. A forecaster checks in
   parallel and affirms or denies the assumption. If the guess was wrong,
   HOPE rolls the planner back to the guess automatically and the planner
   re-executes its pessimistic branch.

   Run with:  dune exec examples/quickstart.exe *)

open Hope_types
module Engine = Hope_sim.Engine
module Scheduler = Hope_proc.Scheduler
module Program = Hope_proc.Program
module Runtime = Hope_core.Runtime
open Program.Syntax

let say fmt = Printf.ksprintf (fun s -> Program.lift (fun () -> print_endline s)) fmt

(* The forecaster: receives an assumption identifier and, after a slow
   check, rules on it. Any process may affirm or deny any assumption. *)
let forecaster ~will_rain =
  let* env = Program.recv () in
  let aid = Value.to_aid (Envelope.value env) in
  let* () = say "  forecaster: checking satellite data (takes a while)..." in
  let* () = Program.compute 2.0 in
  if will_rain then
    let* () = say "  forecaster: rain! denying the assumption." in
    Program.deny aid
  else
    let* () = say "  forecaster: clear skies. affirming." in
    Program.affirm aid

(* The planner: makes the optimistic assumption and proceeds without
   waiting. guess returns true eagerly; if the forecaster denies, the
   planner resumes here with false. *)
let planner ~forecaster_pid =
  let* sunny = Program.aid_init () in
  let* () = Program.send forecaster_pid (Value.Aid_v sunny) in
  let* ok = Program.guess sunny in
  if ok then
    let* () = say "planner: assuming sunshine - booking the park (speculative)" in
    let* () = Program.compute 0.5 in
    say "planner: park booked. (If the forecast disagrees, all of this rolls back.)"
  else
    let* () = say "planner: rolled back! booking the indoor hall instead" in
    let* () = Program.compute 0.5 in
    say "planner: hall booked."

let run ~will_rain =
  Printf.printf "--- scenario: %s ---\n" (if will_rain then "it will rain" else "clear skies");
  let engine = Engine.create ~seed:1 () in
  let sched = Scheduler.create ~engine ~default_latency:Hope_net.Latency.lan () in
  let _rt = Runtime.install sched () in
  let fc = Scheduler.spawn sched ~node:1 ~name:"forecaster" (forecaster ~will_rain) in
  let _p = Scheduler.spawn sched ~node:0 ~name:"planner" (planner ~forecaster_pid:fc) in
  ignore (Scheduler.run sched : Engine.stop_reason);
  Printf.printf "(virtual time elapsed: %.2fs)\n\n" (Engine.now engine)

let () =
  run ~will_rain:false;
  run ~will_rain:true
