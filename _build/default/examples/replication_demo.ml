(* Optimistic replication (the paper's reference [5], experiment E8).

   Replicas apply client updates immediately under the assumption "this
   update will not conflict", and a primary serializer affirms or denies
   each assumption. At low conflict rates the replicas run at local-apply
   speed; as conflicts rise, rollback work erodes the win until the
   pessimistic primary-copy protocol takes over.

   Run with:  dune exec examples/replication_demo.exe *)

module Rep = Hope_workloads.Replication

let () =
  let p = Rep.default_params in
  Printf.printf
    "%d replicas x %d updates, MAN latency. Throughput in updates per virtual second:\n\n"
    p.Rep.replicas p.Rep.updates;
  Printf.printf "%-14s %14s %14s %10s %10s\n" "conflict rate" "pessimistic"
    "optimistic" "speedup" "rollbacks";
  List.iter
    (fun conflict_rate ->
      let p = { p with Rep.conflict_rate } in
      let pess = Rep.run ~mode:`Pessimistic p in
      let opt = Rep.run ~mode:`Optimistic p in
      Printf.printf "%-14.2f %14.0f %14.0f %9.2fx %10d\n" conflict_rate
        pess.Rep.throughput opt.Rep.throughput
        (opt.Rep.throughput /. pess.Rep.throughput)
        opt.Rep.rollbacks)
    [ 0.0; 0.02; 0.05; 0.1; 0.2; 0.4 ];
  Printf.printf
    "\nOptimism wins while conflicts are rare and loses once rollback work\n\
     dominates - the crossover the paper's replication study motivates.\n"
