(* Optimistic caching: serve stale-while-revalidate, with automatic repair.

   A client reads through a nearby cache backed by a far-away origin. The
   cache answers instantly from its (possibly stale) copy under the HOPE
   assumption "my copy is still current", and validates against the origin
   in parallel. When the copy was stale, the denial rolls back the cache's
   answer AND everything the client computed from it - the client re-runs
   with the fresh value, no cache-invalidation protocol in sight. The
   dependency travelled inside the message tag.

   Run with:  dune exec examples/stale_cache.exe *)

open Hope_types
module Engine = Hope_sim.Engine
module Scheduler = Hope_proc.Scheduler
module Program = Hope_proc.Program
module Runtime = Hope_core.Runtime
module Rpc = Hope_rpc.Rpc
open Program.Syntax

let say fmt = Printf.ksprintf (fun s -> Program.lift (fun () -> print_endline s)) fmt

(* The origin: the authoritative value changes at generation boundaries.
   It serves fetches and rules on the cache's freshness assumptions. *)
let origin ~generations =
  let value_of gen = 100 + gen in
  let rec loop gen served =
    (* The world changes under the cache every third request. *)
    let bump g s = if s mod 3 = 0 && g + 1 < generations then g + 1 else g in
    let* env = Program.recv () in
    match Envelope.value env with
    (* cache validation: (aid, version the cache believes in) *)
    | Value.Pair (Value.Aid_v fresh, Value.Int cached_gen) ->
      let* () = Program.compute 1e-3 in
      let* () =
        if cached_gen = gen then Program.affirm fresh else Program.deny fresh
      in
      loop (bump gen (served + 1)) (served + 1)
    (* cache miss / refetch: reply (gen, value) *)
    | Value.String "fetch" ->
      let* () = Program.compute 1e-3 in
      let* () =
        Program.send env.Envelope.src
          (Value.Pair (Value.Int gen, Value.Int (value_of gen)))
      in
      loop (bump gen (served + 1)) (served + 1)
    | _ -> loop gen served
  in
  loop 0 0

(* The cache: replies from its copy immediately, validates in parallel,
   refetches on a denial. Its loop state is (gen, value) - rolled back
   consistently with everything else. *)
let cache ~origin_pid =
  let refetch () =
    let* () = Program.send origin_pid (Value.String "fetch") in
    let* reply =
      Program.recv_where (fun e ->
          Proc_id.equal e.Envelope.src origin_pid
          &&
          match Envelope.value e with
          | Value.Pair (Value.Int _, Value.Int _) -> true
          | _ -> false)
    in
    Program.return (Value.to_pair (Envelope.value reply))
  in
  let rec serve (gen_v, value_v) =
    let* env =
      Program.recv_where (fun e ->
          match Envelope.value e with Value.Pid _ -> true | _ -> false)
    in
    let client = Value.to_pid (Envelope.value env) in
    let* fresh = Program.aid_init () in
    (* announce-then-guess: the origin's judgment must not be contingent
       on itself through our tag *)
    let* () = Program.send origin_pid (Value.Pair (Value.Aid_v fresh, gen_v)) in
    let* ok = Program.guess fresh in
    if ok then
      (* instant answer from the (assumed fresh) copy; tagged {fresh} *)
      let* () = Program.send client value_v in
      serve (gen_v, value_v)
    else
      (* stale: fetch the truth, answer, remember it *)
      let* gen', value' = refetch () in
      let* () = Program.send client value' in
      serve (gen', value')
  in
  let* g0, v0 = refetch () in
  serve (g0, v0)

let client ~cache_pid ~reads =
  Program.for_ 1 reads (fun i ->
      let* self = Program.self () in
      let* () = Program.send cache_pid (Value.Pid self) in
      let* v = Program.recv_value () in
      (* "Business logic" computed from the answer; on a stale serve this
         line re-runs with the corrected value. *)
      let* () = say "  client read %d -> %d (computing on it...)" i (Value.to_int v) in
      Program.compute 2e-3)

let () =
  print_endline
    "A client reads through a nearby cache (0.1ms) backed by a WAN origin (15ms).\n\
     The cache answers instantly under a freshness assumption; stale answers\n\
     are rolled back and re-served - watch the re-runs:\n";
  let engine = Engine.create ~seed:11 () in
  let sched = Scheduler.create ~engine ~default_latency:Hope_net.Latency.lan () in
  let net = Scheduler.network sched in
  Hope_net.Network.set_link net ~src:1 ~dst:2 (Hope_net.Latency.Constant 15e-3);
  Hope_net.Network.set_link net ~src:2 ~dst:1 (Hope_net.Latency.Constant 15e-3);
  Hope_net.Network.set_link net ~src:0 ~dst:1 (Hope_net.Latency.Constant 0.1e-3);
  Hope_net.Network.set_link net ~src:1 ~dst:0 (Hope_net.Latency.Constant 0.1e-3);
  let rt = Runtime.install sched () in
  let origin_pid = Scheduler.spawn sched ~node:2 ~name:"origin" (origin ~generations:4) in
  let cache_pid = Scheduler.spawn sched ~node:1 ~name:"cache" (cache ~origin_pid) in
  let client_pid =
    Scheduler.spawn sched ~node:0 ~name:"client" (client ~cache_pid ~reads:6)
  in
  ignore (Scheduler.run sched : Engine.stop_reason);
  (match Hope_core.Invariant.check_all rt with
  | [] -> ()
  | vs ->
    Format.printf "%a@." (Format.pp_print_list Hope_core.Invariant.pp_violation) vs);
  Printf.printf
    "\nclient finished at %.1f ms virtual. Each stale window rolled back the\n\
     read AND the computation chained after it (the re-runs above) - the\n\
     price of optimism when the assumption fails. With a fresh cache the\n\
     same 6 reads cost ~1 ms; fully synchronous validation costs >180 ms;\n\
     this run's staleness rate put it in between. No invalidation\n\
     protocol was written: the dependency travelled in the message tags.\n"
    (match Scheduler.completion_time sched client_pid with
    | Some t -> t *. 1e3
    | None -> nan)
