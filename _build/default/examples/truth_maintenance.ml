(* Truth maintenance with HOPE (the future-work direction of §6, after
   Doyle's TMS, the paper's reference [12]).

   A reasoner derives conclusions from default beliefs. Each default is an
   optimistic assumption: conclusions are derived speculatively under
   guess, and discovering contradictory evidence denies the belief — HOPE
   then retracts every dependent conclusion automatically (the TMS's
   dependency-directed backtracking is exactly HOPE's dependency
   tracking).

   Scenario: the classic Tweety. "Birds fly" is a default; Tweety is a
   bird, so the reasoner speculatively concludes Tweety flies and builds a
   travel plan on it. An observer then reports that Tweety is a penguin,
   denying the default; the conclusion and the plan roll back, and the
   reasoner re-derives pessimistically.

   Run with:  dune exec examples/truth_maintenance.exe *)

open Hope_types
module Engine = Hope_sim.Engine
module Scheduler = Hope_proc.Scheduler
module Program = Hope_proc.Program
module Runtime = Hope_core.Runtime
open Program.Syntax

let say fmt = Printf.ksprintf (fun s -> Program.lift (fun () -> print_endline s)) fmt

(* The observer examines the world and rules on the default belief. *)
let observer ~is_penguin =
  let* env = Program.recv () in
  let tweety_flies = Value.to_aid (Envelope.value env) in
  let* () = Program.compute 1.0 in
  if is_penguin then
    let* () = say "  observer: Tweety is a penguin! retracting the default." in
    Program.deny tweety_flies
  else
    let* () = say "  observer: Tweety looks like a normal bird. confirmed." in
    Program.affirm tweety_flies

(* A planner downstream of the reasoner: it receives the (speculative)
   conclusion and builds on it. It never mentions the assumption - the
   dependency travels in the message tag and the rollback is automatic. *)
let planner =
  let* env = Program.recv () in
  let conclusion = Value.to_string_payload (Envelope.value env) in
  say "  planner: booked a flight demo featuring %s" conclusion

let reasoner ~observer_pid ~planner_pid =
  let* birds_fly = Program.aid_init () in
  let* () = say "reasoner: default rule: birds fly. Tweety is a bird." in
  let* () = Program.send observer_pid (Value.Aid_v birds_fly) in
  let* holds = Program.guess birds_fly in
  if holds then
    let* () = say "reasoner: concluded (speculatively): Tweety flies" in
    let* () = Program.send planner_pid (Value.String "Tweety the flying bird") in
    say "reasoner: belief network consistent."
  else
    let* () = say "reasoner: default retracted - concluding: Tweety does NOT fly" in
    let* () = Program.send planner_pid (Value.String "Tweety the walking bird") in
    say "reasoner: belief network repaired."

let run ~is_penguin =
  Printf.printf "--- world: Tweety is %s ---\n"
    (if is_penguin then "a penguin" else "a robin");
  let engine = Engine.create ~seed:3 () in
  let sched = Scheduler.create ~engine ~default_latency:Hope_net.Latency.lan () in
  let _rt = Runtime.install sched () in
  let ob = Scheduler.spawn sched ~node:1 ~name:"observer" (observer ~is_penguin) in
  let pl = Scheduler.spawn sched ~node:2 ~name:"planner" planner in
  let _r =
    Scheduler.spawn sched ~node:0 ~name:"reasoner"
      (reasoner ~observer_pid:ob ~planner_pid:pl)
  in
  ignore (Scheduler.run sched : Engine.stop_reason);
  print_newline ()

let () =
  run ~is_penguin:false;
  run ~is_penguin:true
