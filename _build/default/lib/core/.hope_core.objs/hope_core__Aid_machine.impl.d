lib/core/aid_machine.ml: Aid Format Hope_types Interval_id List Printf Wire
