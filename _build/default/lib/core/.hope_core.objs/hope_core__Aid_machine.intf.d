lib/core/aid_machine.mli: Aid Format Hope_types Interval_id Wire
