lib/core/control.ml: Aid History Hope_types Interval_id List Option
