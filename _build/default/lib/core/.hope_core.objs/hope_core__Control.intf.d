lib/core/control.mli: Aid History Hope_types Interval_id
