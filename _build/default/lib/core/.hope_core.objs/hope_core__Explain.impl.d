lib/core/explain.ml: Aid Aid_machine Float Format Hashtbl History Hope_types Interval_id List Option Proc_id Runtime
