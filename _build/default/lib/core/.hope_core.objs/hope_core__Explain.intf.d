lib/core/explain.mli: Aid Format History Hope_types Interval_id Proc_id Runtime
