lib/core/history.ml: Aid Format Hope_types Interval_id List Option Proc_id
