lib/core/history.mli: Aid Format Hope_types Interval_id Proc_id
