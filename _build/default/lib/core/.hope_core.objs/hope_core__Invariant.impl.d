lib/core/invariant.ml: Aid Aid_machine Format Hashtbl Hope_proc Hope_types Interval_id List Runtime
