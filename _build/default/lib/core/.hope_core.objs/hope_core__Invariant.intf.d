lib/core/invariant.mli: Format Runtime
