lib/core/runtime.ml: Aid Aid_machine Control Envelope Format Hashtbl History Hope_net Hope_proc Hope_sim Hope_types Interval_id List Option Printf Proc_id Wire
