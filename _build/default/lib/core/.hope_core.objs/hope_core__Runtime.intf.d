lib/core/runtime.mli: Aid Aid_machine Control Format History Hope_proc Hope_types Interval_id Proc_id
