open Hope_types

type fate = Finalized | Rolled_back | Still_open

type interval_info = {
  iid : Interval_id.t;
  kind : History.kind;
  ido0 : Aid.Set.t;
  started_at : float;
  fate : fate;
  cycle_cut : bool;
}

type summary = {
  intervals : int;
  finalized : int;
  rolled_back : int;
  still_open : int;
  aids : int;
  aids_true : int;
  aids_false : int;
  aids_unresolved : int;
  cycle_cuts : int;
  speculation_accuracy : float;
}

type t = {
  by_process : (Proc_id.t, interval_info list) Hashtbl.t;  (** newest first *)
  totals : summary;
}

type building = {
  b_iid : Interval_id.t;
  b_kind : History.kind;
  b_ido0 : Aid.Set.t;
  b_at : float;
  mutable b_fate : fate;
  mutable b_cut : bool;
}

let of_runtime rt =
  let intervals : (Interval_id.t, building) Hashtbl.t = Hashtbl.create 64 in
  let order : Interval_id.t list ref = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Runtime.Interval_started { iid; kind; ido; at } ->
        Hashtbl.replace intervals iid
          {
            b_iid = iid;
            b_kind = kind;
            b_ido0 = ido;
            b_at = at;
            b_fate = Still_open;
            b_cut = false;
          };
        order := iid :: !order
      | Runtime.Interval_finalized iid -> (
        match Hashtbl.find_opt intervals iid with
        | Some b -> b.b_fate <- Finalized
        | None -> ())
      | Runtime.Interval_rolled_back iid -> (
        match Hashtbl.find_opt intervals iid with
        | Some b -> b.b_fate <- Rolled_back
        | None -> ())
      | Runtime.Cycle_cut { iid; _ } -> (
        match Hashtbl.find_opt intervals iid with
        | Some b -> b.b_cut <- true
        | None -> ())
      | Runtime.Aid_created _ | Runtime.Affirm_sent _ | Runtime.Deny_sent _
      | Runtime.Deny_buffered _ | Runtime.Free_of_hit _ | Runtime.Free_of_miss _ ->
        ())
    (Runtime.events rt);
  let by_process = Hashtbl.create 16 in
  List.iter
    (fun iid ->
      let b = Hashtbl.find intervals iid in
      let info =
        {
          iid = b.b_iid;
          kind = b.b_kind;
          ido0 = b.b_ido0;
          started_at = b.b_at;
          fate = b.b_fate;
          cycle_cut = b.b_cut;
        }
      in
      let owner = Interval_id.owner iid in
      let existing = Option.value (Hashtbl.find_opt by_process owner) ~default:[] in
      Hashtbl.replace by_process owner (info :: existing))
    (List.rev !order);
  (* Tally interval fates and AID outcomes. *)
  let finalized = ref 0 and rolled = ref 0 and open_ = ref 0 and cuts = ref 0 in
  Hashtbl.iter
    (fun _ b ->
      if b.b_cut then incr cuts;
      match b.b_fate with
      | Finalized -> incr finalized
      | Rolled_back -> incr rolled
      | Still_open -> incr open_)
    intervals;
  let aids_true = ref 0 and aids_false = ref 0 and aids_open = ref 0 in
  List.iter
    (fun aid ->
      match Runtime.aid_state rt aid with
      | Aid_machine.True_ -> incr aids_true
      | Aid_machine.False_ -> incr aids_false
      | Aid_machine.Cold | Aid_machine.Hot | Aid_machine.Maybe -> incr aids_open)
    (Runtime.all_aids rt);
  let closed = !finalized + !rolled in
  let totals =
    {
      intervals = Hashtbl.length intervals;
      finalized = !finalized;
      rolled_back = !rolled;
      still_open = !open_;
      aids = !aids_true + !aids_false + !aids_open;
      aids_true = !aids_true;
      aids_false = !aids_false;
      aids_unresolved = !aids_open;
      cycle_cuts = !cuts;
      speculation_accuracy =
        (if closed = 0 then nan else float_of_int !finalized /. float_of_int closed);
    }
  in
  { by_process; totals }

let summary t = t.totals

let intervals_of t pid =
  Option.value (Hashtbl.find_opt t.by_process pid) ~default:[] |> List.rev

let processes t =
  Hashtbl.fold (fun pid _ acc -> pid :: acc) t.by_process []
  |> List.sort Proc_id.compare

let fate_name = function
  | Finalized -> "finalized"
  | Rolled_back -> "rolled back"
  | Still_open -> "still open"

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>intervals: %d (%d finalized, %d rolled back, %d open)@,\
     assumptions: %d (%d true, %d false, %d unresolved)@,\
     cycle cuts: %d@,\
     speculation accuracy: %a@]"
    s.intervals s.finalized s.rolled_back s.still_open s.aids s.aids_true
    s.aids_false s.aids_unresolved s.cycle_cuts
    (fun ppf v ->
      if Float.is_nan v then Format.pp_print_string ppf "n/a"
      else Format.fprintf ppf "%.0f%%" (100.0 *. v))
    s.speculation_accuracy

let pp_interval ppf info =
  Format.fprintf ppf "%-10s @%8.4fs %-6s deps=%-30s %s%s"
    (Interval_id.to_string info.iid) info.started_at
    (match info.kind with History.Explicit -> "guess" | History.Implicit -> "recv")
    (Format.asprintf "%a" Aid.Set.pp info.ido0)
    (fate_name info.fate)
    (if info.cycle_cut then " [cycle cut]" else "")

let pp ppf t =
  Format.fprintf ppf "@[<v>=== speculation report ===@,%a@,@," pp_summary t.totals;
  List.iter
    (fun pid ->
      Format.fprintf ppf "%a:@," Proc_id.pp pid;
      List.iter
        (fun info -> Format.fprintf ppf "  %a@," pp_interval info)
        (intervals_of t pid))
    (processes t);
  Format.fprintf ppf "@]"
