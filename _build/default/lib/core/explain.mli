(** Post-mortem reconstruction of a run's speculation structure.

    Rebuilds, from the runtime's event log, what happened to every
    interval of every process — opened how (explicit guess, tagged
    receive), depending on what, and its fate (finalized, rolled back, or
    still open) — plus the fate of every assumption. Used by the CLI's
    [--explain] flag and by tests that assert on speculation structure.

    This is the observability a real deployment of an optimism runtime
    needs: "why did this computation re-execute?" is answered by the
    rolled-back interval's dependency set. *)

open Hope_types

type fate = Finalized | Rolled_back | Still_open

type interval_info = {
  iid : Interval_id.t;
  kind : History.kind;
  ido0 : Aid.Set.t;  (** dependencies at creation *)
  started_at : float;  (** virtual time the interval opened *)
  fate : fate;
  cycle_cut : bool;  (** Algorithm 2 discarded a dependency of it *)
}

type summary = {
  intervals : int;
  finalized : int;
  rolled_back : int;
  still_open : int;
  aids : int;
  aids_true : int;
  aids_false : int;
  aids_unresolved : int;
  cycle_cuts : int;
  speculation_accuracy : float;
      (** finalized / (finalized + rolled_back); [nan] if no interval
          closed *)
}

type t

val of_runtime : Runtime.t -> t
(** Requires the runtime to have been created with [record_events]. *)

val summary : t -> summary

val intervals_of : t -> Proc_id.t -> interval_info list
(** Oldest first. *)

val processes : t -> Proc_id.t list
(** Every process that opened at least one interval, ascending. *)

val pp : Format.formatter -> t -> unit
(** The full report: summary plus a per-process interval timeline. *)

val pp_summary : Format.formatter -> summary -> unit
