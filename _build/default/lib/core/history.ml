open Hope_types

type kind = Explicit | Implicit

type interval = {
  iid : Interval_id.t;
  kind : kind;
  started_at : float;
  mutable ido : Aid.Set.t;
  mutable udo : Aid.Set.t;
  mutable iha : Aid.Set.t;
  mutable ihd : Aid.Set.t;
}

type t = {
  hist_owner : Proc_id.t;
  mutable intervals : interval list;  (** newest first *)
  mutable next_seq : int;
  mutable finalized : int;
  mutable rolled : int;
}

let create owner = { hist_owner = owner; intervals = []; next_seq = 0; finalized = 0; rolled = 0 }

let owner t = t.hist_owner

let push t ~kind ~ido ~now =
  let iid = Interval_id.make ~owner:t.hist_owner ~seq:t.next_seq in
  t.next_seq <- t.next_seq + 1;
  let itv =
    {
      iid;
      kind;
      started_at = now;
      ido;
      udo = Aid.Set.empty;
      iha = Aid.Set.empty;
      ihd = Aid.Set.empty;
    }
  in
  t.intervals <- itv :: t.intervals;
  itv

let live t = List.rev t.intervals

let depth t = List.length t.intervals

let current t = match t.intervals with [] -> None | itv :: _ -> Some itv

let oldest t =
  match t.intervals with [] -> None | l -> Some (List.nth l (List.length l - 1))

let find t iid =
  List.find_opt (fun itv -> Interval_id.equal itv.iid iid) t.intervals

let is_live t iid = Option.is_some (find t iid)

let cumulative_ido t =
  List.fold_left (fun acc itv -> Aid.Set.union acc itv.ido) Aid.Set.empty t.intervals

let cumulative_udo t =
  List.fold_left (fun acc itv -> Aid.Set.union acc itv.udo) Aid.Set.empty t.intervals

let depends_on t x =
  List.exists (fun itv -> Aid.Set.mem x itv.ido || Aid.Set.mem x itv.udo) t.intervals

let truncate_from t iid =
  if not (is_live t iid) then []
  else begin
    (* intervals is newest-first: the suffix to remove is the prefix of the
       list up to and including the target. *)
    let rec split kept = function
      | [] -> (List.rev kept, [])
      | itv :: rest ->
        if Interval_id.equal itv.iid iid then (List.rev (itv :: kept), rest)
        else split (itv :: kept) rest
    in
    let removed_newest_first, remaining = split [] t.intervals in
    t.intervals <- remaining;
    t.rolled <- t.rolled + List.length removed_newest_first;
    List.rev removed_newest_first
  end

let drop_oldest_finalized t =
  match List.rev t.intervals with
  | [] -> None
  | old :: _ when Aid.Set.is_empty old.ido ->
    t.intervals <-
      List.filter (fun itv -> not (Interval_id.equal itv.iid old.iid)) t.intervals;
    t.finalized <- t.finalized + 1;
    Some old
  | _ :: _ -> None

let finalized_count t = t.finalized
let rolled_back_count t = t.rolled

let pp_kind ppf = function
  | Explicit -> Format.pp_print_string ppf "guess"
  | Implicit -> Format.pp_print_string ppf "recv"

let pp ppf t =
  Format.fprintf ppf "@[<v>history of %a (finalized=%d rolled=%d):@," Proc_id.pp
    t.hist_owner t.finalized t.rolled;
  List.iter
    (fun itv ->
      Format.fprintf ppf "  %a %a ido=%a udo=%a iha=%a@," Interval_id.pp itv.iid
        pp_kind itv.kind Aid.Set.pp itv.ido Aid.Set.pp itv.udo Aid.Set.pp itv.iha)
    (live t);
  Format.fprintf ppf "@]"
