(** Per-process execution histories of speculative intervals.

    "User process execution is recorded as an execution history of process
    states composed of intervals" (§5). The history holds the {e live}
    (still-speculative) intervals, oldest first; finalized intervals leave
    from the front, rollbacks truncate a suffix. Each interval carries the
    paper's dependency sets:

    - IDO ("I Depend On"): the AIDs the interval depends on;
    - UDO ("Used to Depend On"): AIDs once in IDO, kept by Algorithm 2 to
      cut dependency cycles (Figure 15);
    - IHA ("I Have Affirmed"): AIDs this interval speculatively affirmed;
    - IHD ("I Have Denied"): denies buffered until the interval is
      definite (footnote 1).

    A new interval's IDO is seeded with the process's whole cumulative
    dependency set, and the runtime registers the interval with every AID
    in it — this is what lets each interval finalize independently once
    {e its} assumptions resolve, and is the source of the quadratic message
    cost the paper concedes in §6 (experiment E3). *)

open Hope_types

type kind = Explicit | Implicit
(** [Explicit]: begun by a [guess] primitive (rollback re-enters the
    boolean continuation with [false]). [Implicit]: begun by consuming a
    tagged message (rollback re-executes the receive). *)

type interval = {
  iid : Interval_id.t;
  kind : kind;
  started_at : float;  (** virtual time of interval start *)
  mutable ido : Aid.Set.t;
  mutable udo : Aid.Set.t;
  mutable iha : Aid.Set.t;
  mutable ihd : Aid.Set.t;
}

type t

val create : Proc_id.t -> t
val owner : t -> Proc_id.t

val push : t -> kind:kind -> ido:Aid.Set.t -> now:float -> interval
(** Begin a new live interval with a fresh sequence number. *)

val live : t -> interval list
(** Live intervals, oldest first. *)

val depth : t -> int
(** Number of live intervals (current speculation depth). *)

val current : t -> interval option
(** The newest live interval. *)

val oldest : t -> interval option

val find : t -> Interval_id.t -> interval option
val is_live : t -> Interval_id.t -> bool

val cumulative_ido : t -> Aid.Set.t
(** Union of live IDO sets: the process's current dependency set — the tag
    for outgoing messages (§3). *)

val cumulative_udo : t -> Aid.Set.t

val depends_on : t -> Aid.t -> bool
(** Does the process currently or formerly depend on the AID? (Used by
    [free_of], which must answer from local knowledge to stay wait-free.) *)

val truncate_from : t -> Interval_id.t -> interval list
(** Remove the target interval and everything after it; returns the
    removed suffix oldest-first. Empty when the target is not live. *)

val drop_oldest_finalized : t -> interval option
(** If the oldest live interval's IDO is empty, remove and return it
    (the finalize cascade step); [None] otherwise. *)

val finalized_count : t -> int
(** Intervals finalized so far. *)

val rolled_back_count : t -> int
(** Intervals discarded by rollback so far. *)

val pp : Format.formatter -> t -> unit
