lib/net/latency.ml: Float Format Hope_sim
