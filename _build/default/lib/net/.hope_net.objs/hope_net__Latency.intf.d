lib/net/latency.mli: Format Hope_sim
