lib/net/network.ml: Float Hashtbl Hope_sim Latency List Option
