lib/net/network.mli: Hope_sim Latency
