lib/net/topology.ml: List Network
