lib/net/topology.mli: Latency Network
