type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Lognormal of { median : float; sigma : float }
  | Shifted_exponential of { base : float; mean_extra : float }

let epsilon = 1e-9

let sample t rng =
  let raw =
    match t with
    | Constant d -> d
    | Uniform { lo; hi } -> Hope_sim.Rng.uniform rng ~lo ~hi
    | Lognormal { median; sigma } ->
      median *. exp (sigma *. Hope_sim.Rng.normal rng ~mu:0.0 ~sigma:1.0)
    | Shifted_exponential { base; mean_extra } ->
      base +. Hope_sim.Rng.exponential rng ~mean:mean_extra
  in
  Float.max epsilon raw

let mean = function
  | Constant d -> d
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Lognormal { median; sigma } -> median *. exp (sigma *. sigma /. 2.0)
  | Shifted_exponential { base; mean_extra } -> base +. mean_extra

let local = Constant 5e-6
let lan = Shifted_exponential { base = 100e-6; mean_extra = 20e-6 }
let man = Shifted_exponential { base = 1e-3; mean_extra = 0.2e-3 }
let wan = Constant 15e-3

let scale t k =
  match t with
  | Constant d -> Constant (d *. k)
  | Uniform { lo; hi } -> Uniform { lo = lo *. k; hi = hi *. k }
  | Lognormal { median; sigma } -> Lognormal { median = median *. k; sigma }
  | Shifted_exponential { base; mean_extra } ->
    Shifted_exponential { base = base *. k; mean_extra = mean_extra *. k }

let pp ppf = function
  | Constant d -> Format.fprintf ppf "constant(%gs)" d
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%gs,%gs)" lo hi
  | Lognormal { median; sigma } -> Format.fprintf ppf "lognormal(med=%gs,sigma=%g)" median sigma
  | Shifted_exponential { base; mean_extra } ->
    Format.fprintf ppf "shifted-exp(base=%gs,mean+=%gs)" base mean_extra
