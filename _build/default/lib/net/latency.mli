(** One-way message latency models.

    A model maps an RNG to a one-way delay in seconds. Presets follow the
    paper's motivating numbers (§3.1: a transcontinental round trip is
    30 ms, so WAN one-way is 15 ms) plus conventional LAN/MAN figures for
    mid-1990s interconnects, which is the regime in which HOPE's
    measurements were taken. *)

type t =
  | Constant of float  (** fixed delay *)
  | Uniform of { lo : float; hi : float }  (** uniform in [lo, hi) *)
  | Lognormal of { median : float; sigma : float }
      (** heavy-tailed: [median * exp (sigma * z)] *)
  | Shifted_exponential of { base : float; mean_extra : float }
      (** fixed wire time plus exponential queueing *)

val sample : t -> Hope_sim.Rng.t -> float
(** Draw a one-way delay; always strictly positive. *)

val mean : t -> float
(** Analytic mean of the model. *)

val local : t
(** Same-host IPC: 5 µs constant. *)

val lan : t
(** Mid-90s Ethernet LAN: 100 µs base + 20 µs exponential queueing. *)

val man : t
(** Metro-area network: 1 ms base + 0.2 ms queueing. *)

val wan : t
(** Transcontinental WAN: 15 ms one-way (the paper's 30 ms RTT). *)

val scale : t -> float -> t
(** [scale m k] multiplies every delay of [m] by [k]. *)

val pp : Format.formatter -> t -> unit
