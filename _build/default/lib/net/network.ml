module Engine = Hope_sim.Engine
module Rng = Hope_sim.Rng

type addr = int

type 'a endpoint = {
  mutable handler : (src:addr -> 'a -> unit) option;
  mutable backlog : (addr * 'a) list;  (** reversed send order *)
}

type 'a t = {
  engine : Engine.t;
  rng : Rng.t;
  default_latency : Latency.t;
  fifo : bool;
  nodes : (addr, int) Hashtbl.t;
  links : (int * int, Latency.t) Hashtbl.t;
  endpoints : (addr, 'a endpoint) Hashtbl.t;
  last_delivery : (addr * addr, float) Hashtbl.t;
  mutable sent : int;
  mutable delivered : int;
}

let create ~engine ?(default_latency = Latency.lan) ?(fifo = true) () =
  {
    engine;
    rng = Rng.split (Engine.rng engine);
    default_latency;
    fifo;
    nodes = Hashtbl.create 64;
    links = Hashtbl.create 16;
    endpoints = Hashtbl.create 64;
    last_delivery = Hashtbl.create 64;
    sent = 0;
    delivered = 0;
  }

let place t addr ~node = Hashtbl.replace t.nodes addr node

let node_of t addr = Option.value (Hashtbl.find_opt t.nodes addr) ~default:0

let set_link t ~src ~dst latency = Hashtbl.replace t.links (src, dst) latency

let endpoint t addr =
  match Hashtbl.find_opt t.endpoints addr with
  | Some e -> e
  | None ->
    let e = { handler = None; backlog = [] } in
    Hashtbl.add t.endpoints addr e;
    e

let latency_between t ~src ~dst =
  let ns = node_of t src and nd = node_of t dst in
  match Hashtbl.find_opt t.links (ns, nd) with
  | Some l -> l
  | None -> if ns = nd then Latency.local else t.default_latency

let deliver t ~src ~dst payload =
  t.delivered <- t.delivered + 1;
  let e = endpoint t dst in
  match e.handler with
  | Some handler -> handler ~src payload
  | None -> e.backlog <- (src, payload) :: e.backlog

let attach t addr handler =
  let e = endpoint t addr in
  e.handler <- Some handler;
  let pending = List.rev e.backlog in
  e.backlog <- [];
  List.iter (fun (src, payload) -> handler ~src payload) pending

let send t ~src ~dst payload =
  t.sent <- t.sent + 1;
  let delay = Latency.sample (latency_between t ~src ~dst) t.rng in
  let arrival = Engine.now t.engine +. delay in
  let arrival =
    if not t.fifo then arrival
    else begin
      (* FIFO per ordered pair: never deliver before an earlier send. *)
      let key = (src, dst) in
      let floor_time = Option.value (Hashtbl.find_opt t.last_delivery key) ~default:0.0 in
      let a = Float.max arrival floor_time in
      Hashtbl.replace t.last_delivery key a;
      a
    end
  in
  ignore
    (Engine.schedule_at t.engine ~at:arrival (fun _ -> deliver t ~src ~dst payload)
      : Engine.handle)

let in_flight t = t.sent - t.delivered
let messages_sent t = t.sent
let messages_delivered t = t.delivered
