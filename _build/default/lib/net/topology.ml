let both net a b latency =
  Network.set_link net ~src:a ~dst:b latency;
  Network.set_link net ~src:b ~dst:a latency

let star net ~hub ~spokes ~latency =
  List.iter (fun spoke -> both net hub spoke latency) spokes

let full_mesh net ~nodes ~latency =
  List.iter
    (fun a -> List.iter (fun b -> if a <> b then Network.set_link net ~src:a ~dst:b latency) nodes)
    nodes

let clusters net ~members ~local ~cross =
  let tagged =
    List.concat (List.mapi (fun i nodes -> List.map (fun n -> (i, n)) nodes) members)
  in
  List.iter
    (fun (ci, a) ->
      List.iter
        (fun (cj, b) ->
          if a <> b then
            Network.set_link net ~src:a ~dst:b (if ci = cj then local else cross))
        tagged)
    tagged

let chain net ~nodes ~latency =
  let rec go = function
    | a :: (b :: _ as rest) ->
      both net a b latency;
      go rest
    | [ _ ] | [] -> ()
  in
  go nodes
