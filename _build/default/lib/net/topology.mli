(** Standard network layouts, as bulk link configuration.

    Helpers over {!Network.set_link} for the layouts the workloads and
    experiments use. Links are set in both directions. *)

val star :
  'a Network.t -> hub:int -> spokes:int list -> latency:Latency.t -> unit
(** Every spoke node connects to the hub with [latency]; spoke-to-spoke
    traffic still uses the network's default. *)

val full_mesh : 'a Network.t -> nodes:int list -> latency:Latency.t -> unit
(** Every ordered pair of distinct listed nodes gets [latency]. *)

val clusters :
  'a Network.t ->
  members:int list list ->
  local:Latency.t ->
  cross:Latency.t ->
  unit
(** Nodes within one member list communicate with [local]; nodes in
    different lists with [cross]. *)

val chain : 'a Network.t -> nodes:int list -> latency:Latency.t -> unit
(** Adjacent nodes in the list get [latency] (both directions); other
    pairs keep the default. *)
