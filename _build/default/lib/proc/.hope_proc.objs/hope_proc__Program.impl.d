lib/proc/program.ml: Aid Envelope Hope_types Proc_id Value
