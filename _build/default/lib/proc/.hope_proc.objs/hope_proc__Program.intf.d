lib/proc/program.mli: Aid Envelope Hope_types Proc_id Value
