lib/proc/scheduler.ml: Aid Envelope Hashtbl Hope_net Hope_sim Hope_types Interval_id List Option Printf Proc_id Program Wire
