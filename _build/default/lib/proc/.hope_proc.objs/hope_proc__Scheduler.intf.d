lib/proc/scheduler.mli: Aid Envelope Hope_net Hope_sim Hope_types Interval_id Proc_id Program Value Wire
