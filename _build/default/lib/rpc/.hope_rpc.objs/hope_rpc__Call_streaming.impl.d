lib/rpc/call_streaming.ml: Hope_proc Rpc
