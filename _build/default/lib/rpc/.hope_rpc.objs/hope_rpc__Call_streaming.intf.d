lib/rpc/call_streaming.mli: Aid Hope_proc Hope_types Proc_id Value
