lib/rpc/protocol.ml: Envelope Hope_types String Value
