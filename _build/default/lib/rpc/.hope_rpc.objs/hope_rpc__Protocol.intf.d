lib/rpc/protocol.mli: Envelope Hope_types Proc_id Value
