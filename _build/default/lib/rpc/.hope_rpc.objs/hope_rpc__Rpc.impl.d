lib/rpc/rpc.ml: Envelope Hope_proc Hope_types Protocol Value
