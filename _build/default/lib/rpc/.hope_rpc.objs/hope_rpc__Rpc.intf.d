lib/rpc/rpc.mli: Hope_proc Hope_types Proc_id Value
