module Program = Hope_proc.Program
open Program.Syntax

let guess_call_with ?(name = "worrywart") ~server ~request ~verify () =
  let* x = Program.aid_init () in
  let worrywart =
    let* resp = Rpc.call ~server request in
    let* ok = verify resp in
    if ok then Program.affirm x else Program.deny x
  in
  let* _pid = Program.spawn name worrywart in
  let* ok = Program.guess x in
  Program.return (ok, x)

let guess_call ?name ~server ~request ~verify () =
  let* ok, _x = guess_call_with ?name ~server ~request ~verify () in
  Program.return ok

let ordered_post ~server ~order:_ body =
  (* The ordering dependency travels in the message tag: the caller holds
     a guess on the order AID, so this send is tagged with it and the
     server becomes dependent on it implicitly. *)
  Rpc.post ~server body

let guess_order () =
  let* order = Program.aid_init () in
  let* ok = Program.guess order in
  Program.return (ok, order)
