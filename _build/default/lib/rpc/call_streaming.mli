(** The Call Streaming transformation (§3.1, Figures 1–2; after Bacon &
    Strom's optimistic parallelization of CSP).

    Given two sequential statements where [S2] branches on the response of
    [S1]'s RPC, the transformation moves [S1] into a {e WorryWart} process
    and lets the Worker proceed on an optimistic assumption about the
    branch, verified by the WorryWart in parallel:

    {v
      Worker                          WorryWart
      aid_init x ───spawn──────────▶  resp = call server S1
      if guess x                      if verify resp then affirm x
      then (optimistic S2')           else deny x
      else (pessimistic S2)
      S3 ...
    v}

    [guess_call] packages the whole pattern; it returns what [guess]
    returns — eagerly [true], and [false] only after a rollback caused by
    the WorryWart's denial. *)

open Hope_types
module Program = Hope_proc.Program

val guess_call :
  ?name:string ->
  server:Proc_id.t ->
  request:Value.t ->
  verify:(Value.t -> bool Program.t) ->
  unit ->
  bool Program.t
(** [guess_call ~server ~request ~verify ()] spawns a WorryWart that
    performs [call ~server request] and affirms the assumption when
    [verify response] holds, denying it otherwise. Eagerly returns [true].
    The calling process never waits for the server. *)

val guess_call_with :
  ?name:string ->
  server:Proc_id.t ->
  request:Value.t ->
  verify:(Value.t -> bool Program.t) ->
  unit ->
  (bool * Aid.t) Program.t
(** Like {!guess_call} but also returns the assumption identifier, for
    callers that need to pass it along (e.g. to combine with an ordering
    AID as in Figure 2). *)

val ordered_post :
  server:Proc_id.t -> order:Aid.t -> Value.t -> unit Program.t
(** Post a one-way request that is ordered {e after} in-flight calls
    guarded by the [order] AID: the message is sent immediately (keeping
    the send wait-free) and the receiving server, being implicitly
    dependent on [order], is rolled back if a WorryWart later detects the
    ordering violation with [free_of order]. The caller must already hold
    a guess on [order] — use {!guess_order}. *)

val guess_order : unit -> (bool * Aid.t) Program.t
(** Create an ordering assumption and guess it: the assumption that
    subsequent posts do {e not} overtake and invalidate an outstanding
    call (Figure 2's [Order] AID). Returns the eager [true] and the AID to
    pass to {!ordered_post} / to check with [free_of]. *)
