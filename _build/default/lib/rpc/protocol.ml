open Hope_types

let req_marker = "rpc-req"
let resp_marker = "rpc-resp"

let request ~call_id ~reply_to body =
  Value.Pair (Value.String req_marker, Value.triple (Value.Int call_id) (Value.Pid reply_to) body)

let response ~call_id body =
  Value.Pair (Value.String resp_marker, Value.Pair (Value.Int call_id, body))

let as_request = function
  | Value.Pair (Value.String m, rest) when String.equal m req_marker ->
    let id, reply_to, body = Value.to_triple rest in
    Some (Value.to_int id, Value.to_pid reply_to, body)
  | _ -> None

let as_response = function
  | Value.Pair (Value.String m, Value.Pair (Value.Int id, body))
    when String.equal m resp_marker ->
    Some (id, body)
  | _ -> None

let is_response_to call_id env =
  match env.Envelope.payload with
  | Envelope.User { value; _ } ->
    (match as_response value with Some (id, _) -> id = call_id | None -> false)
  | Envelope.Control _ | Envelope.Cancel _ -> false
