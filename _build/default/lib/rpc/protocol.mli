(** Request/response framing for RPC over the message substrate.

    A request carries a client-chosen call id and the reply address; a
    response echoes the call id so a client with several outstanding calls
    can correlate. Everything is an ordinary tagged user message, so RPC
    interacts with HOPE dependency tracking for free: a speculative
    client's request tags the server, and a rollback of the client
    retracts the server work transparently. *)

open Hope_types

val request : call_id:int -> reply_to:Proc_id.t -> Value.t -> Value.t
(** Encode a request payload. *)

val response : call_id:int -> Value.t -> Value.t
(** Encode a response payload. *)

val as_request : Value.t -> (int * Proc_id.t * Value.t) option
(** Decode [(call_id, reply_to, body)]; [None] if not a request. *)

val as_response : Value.t -> (int * Value.t) option
(** Decode [(call_id, body)]; [None] if not a response. *)

val is_response_to : int -> Envelope.t -> bool
(** Does this envelope carry the response to the given call id? *)
