open Hope_types
module Program = Hope_proc.Program
open Program.Syntax

let fresh_call_id = Program.random_int 0x3FFFFFFF

let call ~server body =
  let* call_id = fresh_call_id in
  let* self = Program.self () in
  let* () = Program.send server (Protocol.request ~call_id ~reply_to:self body) in
  let* env = Program.recv_where (Protocol.is_response_to call_id) in
  match Protocol.as_response (Envelope.value env) with
  | Some (_, resp) -> Program.return resp
  | None -> assert false

let post ~server body =
  let* call_id = fresh_call_id in
  let* self = Program.self () in
  Program.send server (Protocol.request ~call_id ~reply_to:self body)

type handler = Value.t -> Value.t Program.t

type 'state stateful_handler = 'state -> Value.t -> ('state * Value.t) Program.t

let serve_one handler =
  let* env = Program.recv () in
  match Protocol.as_request (Envelope.value env) with
  | None ->
    (* Not an RPC request: drop it. Servers only speak the protocol. *)
    Program.return ()
  | Some (call_id, reply_to, body) ->
    let* resp = handler body in
    Program.send reply_to (Protocol.response ~call_id resp)

let rec serve_forever handler =
  let* () = serve_one handler in
  serve_forever handler

let rec serve_n n handler =
  if n <= 0 then Program.return ()
  else
    let* () = serve_one handler in
    serve_n (n - 1) handler

let serve_fold_one handler state =
  let* env = Program.recv () in
  match Protocol.as_request (Envelope.value env) with
  | None -> Program.return state
  | Some (call_id, reply_to, body) ->
    let* state, resp = handler state body in
    let* () = Program.send reply_to (Protocol.response ~call_id resp) in
    Program.return state

let rec serve_fold_forever ~init handler =
  let* state = serve_fold_one handler init in
  serve_fold_forever ~init:state handler

let rec serve_fold_n n ~init handler =
  if n <= 0 then Program.return ()
  else
    let* state = serve_fold_one handler init in
    serve_fold_n (n - 1) ~init:state handler
