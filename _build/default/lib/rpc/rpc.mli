(** Remote procedure calls over the substrate: the synchronous baseline of
    §3.1 and its building blocks.

    "In a remote procedure call, the calling process is idle until it gets
    a response from the remote machine" — this module provides exactly
    that blocking [call], the [post] one-way send, and server loops. The
    optimistic transformation that avoids the idleness lives in
    {!Call_streaming}. *)

open Hope_types
module Program = Hope_proc.Program

(** {1 Client side} *)

val call : server:Proc_id.t -> Value.t -> Value.t Program.t
(** Synchronous RPC: send the request, block until the matching response
    arrives, return its body. This is the pessimistic baseline whose
    latency HOPE exists to hide. *)

val post : server:Proc_id.t -> Value.t -> unit Program.t
(** One-way request: no reply is awaited (the server still sends none —
    use a handler returning [Value.Unit] by convention). *)

(** {1 Server side} *)

type handler = Value.t -> Value.t Program.t
(** Computes a response body from a request body; may itself compute,
    send, or use HOPE instructions. *)

val serve_forever : handler -> unit Program.t
(** Loop forever answering requests in arrival order. *)

val serve_n : int -> handler -> unit Program.t
(** Answer exactly [n] requests, then terminate. *)

type 'state stateful_handler = 'state -> Value.t -> ('state * Value.t) Program.t

val serve_fold_forever : init:'state -> 'state stateful_handler -> unit Program.t
(** Like {!serve_forever} with server-local state threaded through the
    handler. Because the state lives in the loop's continuation, a server
    rolled back by HOPE recovers the matching earlier state for free. *)

val serve_fold_n : int -> init:'state -> 'state stateful_handler -> unit Program.t
