lib/sim/engine.ml: Format Heap Metrics Printf Rng Trace
