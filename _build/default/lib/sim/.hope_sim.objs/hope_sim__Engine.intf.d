lib/sim/engine.mli: Format Metrics Rng Trace
