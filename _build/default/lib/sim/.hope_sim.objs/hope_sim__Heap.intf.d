lib/sim/heap.mli:
