lib/sim/metrics.ml: Array Float Format Hashtbl List Rng String
