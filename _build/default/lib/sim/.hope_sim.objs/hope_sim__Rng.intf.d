lib/sim/rng.mli:
