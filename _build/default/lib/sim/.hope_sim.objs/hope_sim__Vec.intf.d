lib/sim/vec.mli:
