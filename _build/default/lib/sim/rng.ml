type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: two xor-shift-multiply rounds over the
   advanced state. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed64 = bits64 t in
  { state = seed64 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62
     so bias is negligible for simulation purposes. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t bound =
  (* 53 random bits scaled into [0,1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let uniform t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  lo +. float t (hi -. lo)

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let normal t ~mu ~sigma =
  let u1 = 1.0 -. float t 1.0 in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
