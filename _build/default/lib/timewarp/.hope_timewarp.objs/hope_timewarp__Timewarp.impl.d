lib/timewarp/timewarp.ml: Array Hashtbl Hope_net Hope_sim List
