lib/timewarp/timewarp.mli: Hope_net Hope_sim
