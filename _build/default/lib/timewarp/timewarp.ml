module Engine = Hope_sim.Engine
module Rng = Hope_sim.Rng
module Latency = Hope_net.Latency
module Heap = Hope_sim.Heap

type ('s, 'p) model = {
  init : int -> 's;
  handle : lp:int -> ts:float -> 's -> 'p -> 's * (int * float * 'p) list;
}

type config = {
  n_lps : int;
  physical_latency : Latency.t;
  event_cost : float;
  gvt_interval : float;
  horizon : float;
}

let default_config =
  {
    n_lps = 8;
    physical_latency = Latency.lan;
    event_cost = 50e-6;
    gvt_interval = 10e-3;
    horizon = 100.0;
  }

type 'p message = {
  mid : int;
  src_lp : int;
  dst_lp : int;
  send_ts : float;
  recv_ts : float;
  payload : 'p;
}

(* Deterministic processing order: receive timestamp, then message id. *)
let key m = (m.recv_ts, m.mid)

type ('s, 'p) entry = {
  msg : 'p message;
  state_before : 's;
  lvt_before : float;
  sent : 'p message list;
}

type ('s, 'p) lp = {
  id : int;
  mutable st : 's;
  mutable lvt : float;
  mutable pending : 'p message list;  (** sorted by {!key}, ascending *)
  mutable done_ : ('s, 'p) entry list;  (** newest first *)
  mutable gen : int;
  mutable busy : 'p message option;  (** the event being processed, if any *)
}

type ('s, 'p) t = {
  eng : Engine.t;
  cfg : config;
  model : ('s, 'p) model;
  lps : ('s, 'p) lp array;
  rng : Rng.t;
  mutable next_mid : int;
  in_flight : (int, float) Hashtbl.t;
  poisoned : (int, unit) Hashtbl.t;
      (** anti-messages that overtook their positive copy *)
  mutable s_processed : int;
  mutable s_committed : int;
  mutable s_rolled_back : int;
  mutable s_rollbacks : int;
  mutable s_anti : int;
  mutable s_messages : int;
  mutable last_gvt : float;
  mutable phys_done : float;
}

let create ~engine cfg model =
  {
    eng = engine;
    cfg;
    model;
    lps =
      Array.init cfg.n_lps (fun id ->
          {
            id;
            st = model.init id;
            lvt = neg_infinity;
            pending = [];
            done_ = [];
            gen = 0;
            busy = None;
          });
    rng = Rng.split (Engine.rng engine);
    next_mid = 0;
    in_flight = Hashtbl.create 256;
    poisoned = Hashtbl.create 16;
    s_processed = 0;
    s_committed = 0;
    s_rolled_back = 0;
    s_rollbacks = 0;
    s_anti = 0;
    s_messages = 0;
    last_gvt = neg_infinity;
    phys_done = 0.0;
  }

let insert_sorted m pending =
  let rec go = function
    | [] -> [ m ]
    | x :: rest -> if key m < key x then m :: x :: rest else x :: go rest
  in
  go pending

(* ------------------------------------------------------------------ *)
(* Processing                                                          *)
(* ------------------------------------------------------------------ *)

let rec kick t lp =
  if lp.busy = None then begin
    match lp.pending with
    | [] -> ()
    | m :: _ ->
      lp.busy <- Some m;
      lp.gen <- lp.gen + 1;
      let gen = lp.gen in
      ignore
        (Engine.schedule t.eng ~delay:t.cfg.event_cost (fun _ ->
             if lp.gen = gen then complete t lp m)
          : Engine.handle)
  end

(* Cancel the in-progress event execution, if any. *)
and preempt lp =
  lp.gen <- lp.gen + 1;
  lp.busy <- None

and complete t lp m =
  lp.busy <- None;
  lp.pending <- List.filter (fun x -> x.mid <> m.mid) lp.pending;
  let state_before = lp.st and lvt_before = lp.lvt in
  let st', outputs = t.model.handle ~lp:lp.id ~ts:m.recv_ts lp.st m.payload in
  lp.st <- st';
  lp.lvt <- m.recv_ts;
  t.s_processed <- t.s_processed + 1;
  let sent =
    List.filter_map
      (fun (dst, ts', payload) ->
        if ts' <= m.recv_ts then
          invalid_arg "Timewarp: output timestamp must exceed input timestamp";
        if ts' > t.cfg.horizon then None
        else Some (send_event t ~src_lp:lp.id ~dst ~send_ts:m.recv_ts ~recv_ts:ts' payload))
      outputs
  in
  lp.done_ <- { msg = m; state_before; lvt_before; sent } :: lp.done_;
  kick t lp

and send_event t ~src_lp ~dst ~send_ts ~recv_ts payload =
  let m =
    { mid = t.next_mid; src_lp; dst_lp = dst; send_ts; recv_ts; payload }
  in
  t.next_mid <- t.next_mid + 1;
  t.s_messages <- t.s_messages + 1;
  Hashtbl.replace t.in_flight m.mid m.recv_ts;
  let delay = Latency.sample t.cfg.physical_latency t.rng in
  ignore
    (Engine.schedule t.eng ~delay (fun _ -> deliver_pos t m) : Engine.handle);
  m

(* Roll an LP back so that every processed entry with key >= [upto] is
   undone: their inputs return to the pending queue, their outputs are
   cancelled with anti-messages, and the state snapshot of the earliest
   undone entry is restored. *)
and rollback t lp ~upto ~requeue_cancelled =
  let rec pop undone = function
    | e :: rest when key e.msg >= upto -> pop (e :: undone) rest
    | remaining -> (undone, remaining)
  in
  (* done_ is newest-first, so popping from the front removes the latest
     entries; [undone] ends up oldest-first. *)
  let undone, remaining = pop [] lp.done_ in
  match undone with
  | [] -> ()
  | oldest :: _ ->
    lp.done_ <- remaining;
    lp.st <- oldest.state_before;
    lp.lvt <- oldest.lvt_before;
    t.s_rollbacks <- t.s_rollbacks + 1;
    t.s_rolled_back <- t.s_rolled_back + List.length undone;
    List.iter
      (fun e ->
        if requeue_cancelled e.msg then lp.pending <- insert_sorted e.msg lp.pending;
        List.iter (fun m -> send_anti t m) e.sent)
      undone;
    (* Cancel any in-progress processing: it was based on the undone state. *)
    preempt lp

and send_anti t m =
  t.s_anti <- t.s_anti + 1;
  Hashtbl.replace t.in_flight (-m.mid - 1) m.recv_ts;
  let delay = Latency.sample t.cfg.physical_latency t.rng in
  ignore
    (Engine.schedule t.eng ~delay (fun _ -> deliver_neg t m) : Engine.handle)

and deliver_pos t m =
  Hashtbl.remove t.in_flight m.mid;
  if Hashtbl.mem t.poisoned m.mid then Hashtbl.remove t.poisoned m.mid
  else begin
    let lp = t.lps.(m.dst_lp) in
    if m.recv_ts < lp.lvt then
      (* Straggler: undo everything at or above its timestamp. *)
      rollback t lp ~upto:(key m) ~requeue_cancelled:(fun _ -> true);
    (* If the arrival undercuts the event currently being executed, that
       execution must be restarted after the arrival. *)
    (match lp.busy with
    | Some b when key m < key b -> preempt lp
    | Some _ | None -> ());
    lp.pending <- insert_sorted m lp.pending;
    kick t lp
  end

and deliver_neg t m =
  Hashtbl.remove t.in_flight (-m.mid - 1);
  let lp = t.lps.(m.dst_lp) in
  if List.exists (fun x -> x.mid = m.mid) lp.pending then begin
    (* Annihilate the unprocessed positive copy. *)
    lp.pending <- List.filter (fun x -> x.mid <> m.mid) lp.pending;
    (match lp.busy with
    | Some b when b.mid = m.mid -> preempt lp
    | Some _ | None -> ());
    kick t lp
  end
  else if List.exists (fun e -> e.msg.mid = m.mid) lp.done_ then begin
    (* Secondary rollback: the cancelled message was already processed. *)
    rollback t lp ~upto:(key m) ~requeue_cancelled:(fun x -> x.mid <> m.mid);
    kick t lp
  end
  else
    (* The anti-message overtook its positive copy. *)
    Hashtbl.replace t.poisoned m.mid ()

(* ------------------------------------------------------------------ *)
(* GVT and fossil collection                                           *)
(* ------------------------------------------------------------------ *)

let compute_gvt t =
  let acc = ref infinity in
  Hashtbl.iter (fun _ ts -> if ts < !acc then acc := ts) t.in_flight;
  Array.iter
    (fun lp -> List.iter (fun m -> if m.recv_ts < !acc then acc := m.recv_ts) lp.pending)
    t.lps;
  !acc

let fossil_collect t gvt =
  t.last_gvt <- gvt;
  Array.iter
    (fun lp ->
      let keep, commit = List.partition (fun e -> e.msg.recv_ts >= gvt) lp.done_ in
      lp.done_ <- keep;
      t.s_committed <- t.s_committed + List.length commit)
    t.lps

let inject t ~dst ~ts payload =
  ignore
    (send_event t ~src_lp:(-1) ~dst ~send_ts:(min ts 0.0) ~recv_ts:ts payload
      : 'p message)

let run ?(max_events = 50_000_000) t =
  let budget = ref max_events in
  let rec loop () =
    let before = Engine.events_processed t.eng in
    let reason =
      Engine.run ~until:(Engine.now t.eng +. t.cfg.gvt_interval) ~max_events:!budget
        t.eng
    in
    budget := !budget - (Engine.events_processed t.eng - before);
    match reason with
    | Engine.Time_limit ->
      fossil_collect t (compute_gvt t);
      loop ()
    | Engine.Quiescent ->
      t.phys_done <- Engine.now t.eng;
      fossil_collect t infinity;
      Engine.Quiescent
    | (Engine.Event_limit | Engine.Stopped) as r -> r
  in
  loop ()

type stats = {
  processed : int;
  committed : int;
  rolled_back : int;
  rollbacks : int;
  anti_messages : int;
  messages : int;
  final_gvt : float;
  physical_time : float;
}

let stats t =
  {
    processed = t.s_processed;
    committed = t.s_committed;
    rolled_back = t.s_rolled_back;
    rollbacks = t.s_rollbacks;
    anti_messages = t.s_anti;
    messages = t.s_messages;
    final_gvt = t.last_gvt;
    physical_time = t.phys_done;
  }

let state_of t i = t.lps.(i).st
let lvt_of t i = t.lps.(i).lvt

(* ------------------------------------------------------------------ *)
(* Sequential reference execution                                      *)
(* ------------------------------------------------------------------ *)

module Sequential = struct
  type ('s, 'p) run_result = { states : 's array; events : int }

  let run model ~n_lps ~horizon ~seeds =
    let states = Array.init n_lps model.init in
    let queue = Heap.create () in
    List.iter (fun (dst, ts, payload) -> Heap.push queue ~priority:ts (dst, payload)) seeds;
    let events = ref 0 in
    let rec loop () =
      match Heap.pop queue with
      | None -> ()
      | Some (ts, (dst, payload)) ->
        incr events;
        let st', outputs = model.handle ~lp:dst ~ts states.(dst) payload in
        states.(dst) <- st';
        List.iter
          (fun (dst', ts', payload') ->
            if ts' <= ts then
              invalid_arg "Timewarp.Sequential: output timestamp must exceed input";
            if ts' <= horizon then Heap.push queue ~priority:ts' (dst', payload'))
          outputs;
        loop ()
    in
    loop ();
    { states; events = !events }
end
