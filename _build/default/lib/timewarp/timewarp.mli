(** A compact Time Warp simulator (Jefferson, "Virtual Time", TOPLAS 1985
    — the paper's reference [14]).

    The paper positions Time Warp as the prior optimistic system whose
    single built-in assumption — "messages arrive in timestamp order" —
    HOPE generalises. This module implements that system over the same
    physical simulation engine the HOPE substrate uses, so experiment E7
    can compare a dedicated Time Warp against the same model expressed
    with HOPE primitives.

    Logical processes (LPs) exchange timestamped event messages. Each LP
    greedily processes its lowest-timestamp pending event; a {e straggler}
    (an arrival with a timestamp below the LP's local virtual time) rolls
    the LP back: processed events above the straggler are un-processed,
    the pre-states are restored from snapshots, and {e anti-messages}
    cancel the outputs sent by the undone work — annihilating unprocessed
    copies or causing secondary rollbacks at receivers. A periodic GVT
    (global virtual time) computation commits and fossil-collects
    everything below the global minimum.

    States are immutable values, so a snapshot is a binding. *)

(** A model of the simulated system. *)
type ('s, 'p) model = {
  init : int -> 's;  (** initial state of each LP *)
  handle :
    lp:int -> ts:float -> 's -> 'p -> 's * (int * float * 'p) list;
      (** process one event at virtual time [ts]; returns the new state
          and output events as [(dest_lp, recv_ts, payload)] with
          [recv_ts > ts] (enforced). *)
}

type config = {
  n_lps : int;
  physical_latency : Hope_net.Latency.t;  (** wire time between LP hosts *)
  event_cost : float;  (** physical CPU time to process one event *)
  gvt_interval : float;  (** physical time between GVT computations *)
  horizon : float;  (** virtual time bound: outputs beyond it are dropped *)
}

val default_config : config

type ('s, 'p) t

val create :
  engine:Hope_sim.Engine.t -> config -> ('s, 'p) model -> ('s, 'p) t

val inject : ('s, 'p) t -> dst:int -> ts:float -> 'p -> unit
(** Seed an initial event (physically delivered at time 0). *)

val run : ?max_events:int -> ('s, 'p) t -> Hope_sim.Engine.stop_reason
(** Drive the physical engine until quiescence: every event below the
    horizon processed and committed. *)

type stats = {
  processed : int;  (** event executions, including undone ones *)
  committed : int;  (** distinct events surviving at the end *)
  rolled_back : int;  (** event executions undone by rollback *)
  rollbacks : int;  (** rollback episodes *)
  anti_messages : int;
  messages : int;  (** positive event messages sent *)
  final_gvt : float;
  physical_time : float;  (** physical completion time *)
}

val stats : ('s, 'p) t -> stats

val state_of : ('s, 'p) t -> int -> 's
(** Final (or current) state of an LP. *)

val lvt_of : ('s, 'p) t -> int -> float

(** {1 Sequential reference}

    A conservative, single-queue discrete-event execution of the same
    model, used as the correctness oracle: Time Warp must produce exactly
    the states the sequential execution produces. *)
module Sequential : sig
  type ('s, 'p) run_result = { states : 's array; events : int }

  val run :
    ('s, 'p) model ->
    n_lps:int ->
    horizon:float ->
    seeds:(int * float * 'p) list ->
    ('s, 'p) run_result
end
