lib/types/aid.ml: Format Map Proc_id Set
