lib/types/aid.mli: Format Map Proc_id Set
