lib/types/envelope.ml: Aid Format Proc_id Value Wire
