lib/types/envelope.mli: Aid Format Proc_id Value Wire
