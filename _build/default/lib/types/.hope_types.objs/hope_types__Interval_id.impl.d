lib/types/interval_id.ml: Format Int Map Proc_id Set
