lib/types/interval_id.mli: Format Map Proc_id Set
