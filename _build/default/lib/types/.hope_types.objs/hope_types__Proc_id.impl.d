lib/types/proc_id.ml: Format Hashtbl Int Map Set
