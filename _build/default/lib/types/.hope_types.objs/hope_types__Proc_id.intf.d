lib/types/proc_id.mli: Format Map Set
