lib/types/value.ml: Aid Bool Float Format Int List Printf Proc_id String
