lib/types/value.mli: Aid Format Proc_id
