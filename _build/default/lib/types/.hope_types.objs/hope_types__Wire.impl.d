lib/types/wire.ml: Aid Format Interval_id
