lib/types/wire.mli: Aid Format Interval_id
