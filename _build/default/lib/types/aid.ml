type t = Proc_id.t

let of_proc p = p
let to_proc t = t
let equal = Proc_id.equal
let compare = Proc_id.compare
let pp ppf t = Format.fprintf ppf "X%d" (Proc_id.to_int t)
let to_string t = Format.asprintf "%a" pp t

module Set = struct
  include Set.Make (struct
    type nonrec t = t

    let compare = compare
  end)

  let pp ppf s =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         pp)
      (elements s)
end

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
