type payload =
  | User of { value : Value.t; tags : Aid.Set.t }
  | Control of Wire.t
  | Cancel of { msg_id : int }

type t = { id : int; src : Proc_id.t; dst : Proc_id.t; payload : payload }

let make ~id ~src ~dst payload = { id; src; dst; payload }

let is_control t = match t.payload with Control _ -> true | User _ | Cancel _ -> false
let is_user t = match t.payload with User _ -> true | Control _ | Cancel _ -> false

let value t =
  match t.payload with
  | User { value; _ } -> value
  | Control _ | Cancel _ -> invalid_arg "Envelope.value: not a user envelope"

let tags t =
  match t.payload with
  | User { tags; _ } -> tags
  | Control _ | Cancel _ -> Aid.Set.empty

let pp ppf t =
  match t.payload with
  | User { value; tags } ->
    Format.fprintf ppf "#%d %a->%a user %a tags=%a" t.id Proc_id.pp t.src
      Proc_id.pp t.dst Value.pp value Aid.Set.pp tags
  | Control w ->
    Format.fprintf ppf "#%d %a->%a ctl %a" t.id Proc_id.pp t.src Proc_id.pp
      t.dst Wire.pp w
  | Cancel { msg_id } ->
    Format.fprintf ppf "#%d %a->%a cancel #%d" t.id Proc_id.pp t.src Proc_id.pp
      t.dst msg_id
