(** Message envelopes: what actually travels over the network.

    A user payload carries its value plus the {e tag}: "a speculative
    process tags the messages it sends with the set of AIDs that it
    depends on. Receivers implicitly apply guess primitives to each of the
    AIDs in the message's tag" (§3). Control payloads carry a {!Wire.t}
    and are consumed by the HOPE library / AID processes, invisibly to the
    programmer. *)

type payload =
  | User of { value : Value.t; tags : Aid.Set.t }
  | Control of Wire.t
  | Cancel of { msg_id : int }
      (** Retract user message [msg_id], previously sent by this sender: a
          speculative interval that sent a message and was rolled back
          must cancel it, because its re-execution may send it again. An
          unconsumed target is dropped; a consumed one rolls its consumer
          back. The substrate-level analogue of Time Warp's
          anti-messages; see DESIGN.md §3.6. *)

type t = { id : int; src : Proc_id.t; dst : Proc_id.t; payload : payload }
(** [id] is globally unique per run (assigned by the scheduler at send
    time) so rollback bookkeeping can name individual messages. *)

val make : id:int -> src:Proc_id.t -> dst:Proc_id.t -> payload -> t

val is_control : t -> bool
val is_user : t -> bool

val value : t -> Value.t
(** @raise Invalid_argument on a control envelope. *)

val tags : t -> Aid.Set.t
(** Tag set of a user envelope; empty for control envelopes. *)

val pp : Format.formatter -> t -> unit
