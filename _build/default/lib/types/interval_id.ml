type t = { owner : Proc_id.t; seq : int }

let make ~owner ~seq = { owner; seq }
let owner t = t.owner
let seq t = t.seq

let equal a b = Proc_id.equal a.owner b.owner && Int.equal a.seq b.seq

let compare a b =
  match Proc_id.compare a.owner b.owner with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let pp ppf t = Format.fprintf ppf "%a.i%d" Proc_id.pp t.owner t.seq
let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
