type t = int

let of_int i = i
let to_int i = i
let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp ppf t = Format.fprintf ppf "p%d" t
let to_string t = Format.asprintf "%a" pp t

module Set = Set.Make (Int)
module Map = Map.Make (Int)
