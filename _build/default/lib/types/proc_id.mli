(** Process identifiers.

    Every process in the system — user processes and AID processes alike —
    has a unique [Proc_id.t], which doubles as its network address, exactly
    as PVM task ids did for the 1996 prototype. *)

type t
(** A process identifier. *)

val of_int : int -> t
val to_int : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
