type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Pid of Proc_id.t
  | Aid_v of Aid.t
  | Pair of t * t
  | List of t list

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | Pid x, Pid y -> Proc_id.equal x y
  | Aid_v x, Aid_v y -> Aid.equal x y
  | Pair (x1, x2), Pair (y1, y2) -> equal x1 y1 && equal x2 y2
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Unit | Bool _ | Int _ | Float _ | String _ | Pid _ | Aid_v _ | Pair _ | List _), _
    -> false

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "%S" s
  | Pid p -> Proc_id.pp ppf p
  | Aid_v a -> Aid.pp ppf a
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | List vs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp)
      vs

let to_string t = Format.asprintf "%a" pp t

let shape_error want got =
  invalid_arg (Printf.sprintf "Value: expected %s, got %s" want (to_string got))

let to_bool = function Bool b -> b | v -> shape_error "Bool" v
let to_int = function Int i -> i | v -> shape_error "Int" v
let to_float = function Float f -> f | v -> shape_error "Float" v
let to_pid = function Pid p -> p | v -> shape_error "Pid" v
let to_aid = function Aid_v a -> a | v -> shape_error "Aid" v
let to_pair = function Pair (a, b) -> (a, b) | v -> shape_error "Pair" v
let to_list = function List vs -> vs | v -> shape_error "List" v
let to_string_payload = function String s -> s | v -> shape_error "String" v

let triple a b c = Pair (a, Pair (b, c))

let to_triple = function
  | Pair (a, Pair (b, c)) -> (a, b, c)
  | v -> shape_error "Pair(_,Pair(_,_))" v

let rec size_bytes = function
  | Unit -> 1
  | Bool _ -> 1
  | Int _ -> 8
  | Float _ -> 8
  | String s -> 4 + String.length s
  | Pid _ -> 4
  | Aid_v _ -> 4
  | Pair (a, b) -> size_bytes a + size_bytes b
  | List vs -> List.fold_left (fun acc v -> acc + size_bytes v) 4 vs
