(** Structural message payloads.

    User messages carry a single self-describing value, so processes with
    different roles can exchange data without a shared payload type
    parameter infecting every substrate module (the moral equivalent of
    PVM's pack/unpack buffers). Constructors cover what the workloads and
    examples need; [Pair] and [List] compose. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Pid of Proc_id.t
  | Aid_v of Aid.t
  | Pair of t * t
  | List of t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Convenience projections}

    Each projection raises [Invalid_argument] with the constructor name on
    a shape mismatch: workload code treats a mis-shaped message as a
    protocol bug, and wants it loud. *)

val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float
val to_pid : t -> Proc_id.t
val to_aid : t -> Aid.t
val to_pair : t -> t * t
val to_list : t -> t list
val to_string_payload : t -> string
(** Projects [String s]. *)

val triple : t -> t -> t -> t
(** [triple a b c] is [Pair (a, Pair (b, c))]. *)

val to_triple : t -> t * t * t

val size_bytes : t -> int
(** Rough serialised size, for byte accounting in the network metrics. *)
