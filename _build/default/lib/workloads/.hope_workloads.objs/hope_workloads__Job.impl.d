lib/workloads/job.ml: Float Hashtbl Hope_sim Int64
