lib/workloads/job.mli:
