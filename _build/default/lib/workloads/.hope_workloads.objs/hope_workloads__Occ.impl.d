lib/workloads/occ.ml: Array Envelope Float Format Hope_core Hope_net Hope_proc Hope_rpc Hope_sim Hope_types Int List Map Printf Proc_id Sys Value
