lib/workloads/occ.mli: Hope_net Hope_proc
