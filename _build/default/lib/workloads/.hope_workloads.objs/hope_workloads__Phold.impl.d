lib/workloads/phold.ml: Aid Array Envelope Format Hashtbl Hope_core Hope_net Hope_proc Hope_sim Hope_timewarp Hope_types Job List Printf Proc_id Value
