lib/workloads/phold.mli: Hope_net Hope_timewarp Job
