lib/workloads/pipeline.ml: Envelope Format Hope_core Hope_net Hope_proc Hope_rpc Hope_sim Hope_types Option Value
