lib/workloads/pipeline.mli: Hope_net Hope_proc
