lib/workloads/recovery.mli: Hope_net Hope_proc
