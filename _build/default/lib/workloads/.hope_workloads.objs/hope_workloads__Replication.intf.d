lib/workloads/replication.mli: Hope_net Hope_proc
