lib/workloads/report.mli: Hope_core Hope_net Hope_proc Hope_types Proc_id Value
