lib/workloads/scientific.ml: Envelope Float Format Hope_core Hope_net Hope_proc Hope_rpc Hope_sim Hope_types List Printf Value
