lib/workloads/scientific.mli: Hope_net Hope_proc
