module Rng = Hope_sim.Rng

type t = { job_id : int; hop : int }

let rng_of job hop = Rng.create ~seed:((job * 1_000_003) + hop)

let route ~n_lps ~mean_delay ~remote_prob ~from_lp job =
  let r = rng_of job.job_id job.hop in
  let delay = Rng.exponential r ~mean:mean_delay in
  let remote = Rng.bernoulli r ~p:remote_prob in
  let dest =
    if remote && n_lps > 1 then begin
      let offset = 1 + Rng.int r (n_lps - 1) in
      (from_lp + offset) mod n_lps
    end
    else from_lp
  in
  (Float.max 1e-9 delay, dest)

let seed_ts job ~mean_delay =
  let r = rng_of job.job_id (-1) in
  Float.max 1e-9 (Rng.exponential r ~mean:mean_delay)

let checksum_mix acc ~lp ~ts job =
  let h = Hashtbl.hash (lp, Int64.bits_of_float ts, job.job_id, job.hop) in
  ((acc * 31) + h) land 0x3FFFFFFF
