(** PHOLD job tokens and their deterministic routing.

    Every random choice in PHOLD is a pure function of the (job, hop)
    pair, so the sequential, Time Warp, and HOPE executions follow the
    same trajectory and can be checked against each other. *)

type t = { job_id : int; hop : int }

val route :
  n_lps:int -> mean_delay:float -> remote_prob:float -> from_lp:int -> t ->
  float * int
(** [(delay, dest_lp)] for this job's next hop. [delay > 0]. *)

val seed_ts : t -> mean_delay:float -> float
(** Virtual timestamp of a job's first event. *)

val checksum_mix : int -> lp:int -> ts:float -> t -> int
(** Fold one processed event into an LP checksum (order-sensitive). *)
