test/test_aid_machine.ml: Aid Alcotest Format Gen Hope_core Hope_types Interval_id List Proc_id QCheck QCheck_alcotest Wire
