test/test_aid_machine.mli:
