test/test_chaos.ml: Alcotest Array Envelope Hope_core Hope_net Hope_proc Hope_sim Hope_types List Printexc Printf Proc_id Test_support Value
