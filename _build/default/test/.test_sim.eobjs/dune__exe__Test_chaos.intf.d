test/test_chaos.mli:
