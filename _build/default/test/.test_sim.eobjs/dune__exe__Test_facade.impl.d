test/test_facade.ml: Alcotest Hope
