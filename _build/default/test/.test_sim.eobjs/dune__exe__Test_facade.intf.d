test/test_facade.mli:
