test/test_history.ml: Aid Alcotest Gen Hope_core Hope_types Interval_id List Proc_id QCheck QCheck_alcotest Test
