test/test_hope_integration.ml: Alcotest Envelope Hope_core Hope_net Hope_proc Hope_rpc Hope_sim Hope_types List Option Printf Test_support Value
