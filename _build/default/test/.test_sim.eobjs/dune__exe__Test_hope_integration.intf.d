test/test_hope_integration.mli:
