test/test_net.ml: Alcotest Float Hope_net Hope_sim List QCheck QCheck_alcotest
