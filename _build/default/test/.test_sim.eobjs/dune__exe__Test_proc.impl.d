test/test_proc.ml: Aid Alcotest Envelope Hope_net Hope_proc Hope_sim Hope_types List Option Printf Proc_id QCheck QCheck_alcotest Test_support Value
