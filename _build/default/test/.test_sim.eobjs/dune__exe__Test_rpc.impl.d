test/test_rpc.ml: Alcotest Hope_net Hope_proc Hope_rpc Hope_sim Hope_types List Printf Proc_id QCheck QCheck_alcotest Test_support Value
