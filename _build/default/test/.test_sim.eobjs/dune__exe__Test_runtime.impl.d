test/test_runtime.ml: Aid Alcotest Envelope Format Hope_core Hope_net Hope_proc Hope_types List Option Printf Proc_id String Test_support Value
