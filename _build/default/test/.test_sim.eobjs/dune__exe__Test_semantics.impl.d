test/test_semantics.ml: Alcotest Envelope Hope_proc Hope_sim Hope_types List Printf Proc_id QCheck QCheck_alcotest Test_support Value
