test/test_sim.ml: Alcotest Array Float Fun Hope_sim List QCheck QCheck_alcotest
