test/test_timewarp.ml: Alcotest Array Hope_net Hope_sim Hope_timewarp Hope_workloads List Printf
