test/test_timewarp.mli:
