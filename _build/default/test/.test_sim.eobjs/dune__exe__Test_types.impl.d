test/test_types.ml: Aid Alcotest Envelope Format Hope_types Interval_id List Proc_id QCheck QCheck_alcotest Value Wire
