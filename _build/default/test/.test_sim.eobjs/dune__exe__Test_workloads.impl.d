test/test_workloads.ml: Alcotest Hope_net Hope_workloads Printf QCheck QCheck_alcotest
