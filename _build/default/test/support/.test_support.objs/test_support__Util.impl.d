test/support/util.ml: Alcotest Format Hope_core Hope_net Hope_proc Hope_sim List
