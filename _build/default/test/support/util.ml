(** Shared helpers for the test suites. *)

module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Latency = Hope_net.Latency
module Scheduler = Hope_proc.Scheduler
module Program = Hope_proc.Program
module Runtime = Hope_core.Runtime
module Invariant = Hope_core.Invariant

type world = {
  engine : Engine.t;
  sched : Scheduler.t;
  rt : Runtime.t;
}

(** Build an engine + scheduler + installed HOPE runtime. *)
let make_world ?(seed = 42) ?(latency = Latency.lan) ?(fifo = true)
    ?(sched_config = Scheduler.free_config) ?(hope_config = Runtime.default_config)
    () =
  let engine = Engine.create ~seed () in
  let sched =
    Scheduler.create ~engine ~default_latency:latency ~fifo ~config:sched_config ()
  in
  let rt = Runtime.install sched ~config:hope_config () in
  { engine; sched; rt }

(** A bare substrate (no HOPE runtime installed). *)
let make_substrate ?(seed = 42) ?(latency = Latency.lan) ?fifo
    ?(sched_config = Scheduler.free_config) () =
  let engine = Engine.create ~seed () in
  let sched =
    Scheduler.create ~engine ~default_latency:latency ?fifo ~config:sched_config ()
  in
  (engine, sched)

exception Not_quiescent of Engine.stop_reason

(** Run to quiescence; raise if the event budget is exhausted first. *)
let quiesce ?(max_events = 2_000_000) w =
  match Scheduler.run ~max_events w.sched with
  | Hope_sim.Engine.Quiescent -> ()
  | reason -> raise (Not_quiescent reason)

let counter w name = Metrics.find_counter (Engine.metrics w.engine) name

(** Assert that every user process terminated. *)
let check_all_terminated w =
  Alcotest.(check bool) "all user processes terminated" true
    (Scheduler.all_terminated w.sched)

(** Assert that the standard invariants hold. *)
let check_invariants w =
  match Invariant.check_all w.rt with
  | [] -> ()
  | vs ->
    Alcotest.failf "@[<v>invariant violations:@,%a@]"
      (Format.pp_print_list Invariant.pp_violation)
      vs

(** Record execution order from inside programs. *)
let recorder () =
  let log = ref [] in
  let record tag = Program.lift (fun () -> log := tag :: !log) in
  let dump () = List.rev !log in
  (record, dump)

let aid_state_name w aid = Hope_core.Aid_machine.state_name (Runtime.aid_state w.rt aid)

let test name f = Alcotest.test_case name `Quick f
