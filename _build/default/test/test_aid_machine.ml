(* Exhaustive tests of the AID state machine against Figures 4-8 of the
   paper, plus property tests that random message sequences keep the
   machine well-defined and terminal states absorbing. *)

open Hope_types
module M = Hope_core.Aid_machine

let test name f = Alcotest.test_case name `Quick f

let aid_of i = Aid.of_proc (Proc_id.of_int (1000 + i))
let iid i = Interval_id.make ~owner:(Proc_id.of_int i) ~seq:0

let aid_set l = Aid.Set.of_list (List.map aid_of l)

let guess i = Wire.Guess { iid = iid i }
let affirm ?(ido = []) i = Wire.Affirm { iid = iid i; ido = aid_set ido }
let deny i = Wire.Deny { iid = iid i }

let state_is t expected =
  Alcotest.(check string) "state" expected (M.state_name t.M.state)

let replies actions =
  List.map
    (fun (M.Reply { iid; wire }) -> (Interval_id.seq iid, Interval_id.owner iid, wire))
    actions

(* ------------------------- Guess (Figure 6) ----------------------- *)

let test_guess_cold_to_hot () =
  let t = M.create (aid_of 0) in
  state_is t "Cold";
  let actions = M.handle t (guess 1) in
  Alcotest.(check int) "no replies" 0 (List.length actions);
  state_is t "Hot";
  Alcotest.(check int) "DOM records the guess" 1 (Interval_id.Set.cardinal t.M.dom)

let test_guess_hot_accumulates_dom () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (guess 1));
  ignore (M.handle t (guess 2));
  ignore (M.handle t (guess 3));
  state_is t "Hot";
  Alcotest.(check int) "three dependents" 3 (Interval_id.Set.cardinal t.M.dom)

let test_guess_maybe_passes_the_buck () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (guess 1));
  ignore (M.handle t (affirm ~ido:[ 7 ] 1));
  state_is t "Maybe";
  match M.handle t (guess 2) with
  | [ M.Reply { iid; wire = Wire.Replace { ido; _ } } ] ->
    Alcotest.(check bool) "addressed to the guesser" true
      (Interval_id.equal iid (Interval_id.make ~owner:(Proc_id.of_int 2) ~seq:0));
    Alcotest.(check bool) "replacement is A_IDO" true
      (Aid.Set.equal ido (aid_set [ 7 ]));
    (* Deviation from Figure 6: the sender IS recorded in DOM, so a later
       Revoke can reach it with a Rebind (see the mli). *)
    Alcotest.(check int) "DOM gains the guesser" 2 (Interval_id.Set.cardinal t.M.dom)
  | _ -> Alcotest.fail "expected a single Replace reply"

let test_guess_true_replies_empty_replace () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm 9));
  state_is t "True";
  match M.handle t (guess 2) with
  | [ M.Reply { wire = Wire.Replace { ido; _ }; _ } ] ->
    Alcotest.(check bool) "empty replacement" true (Aid.Set.is_empty ido)
  | _ -> Alcotest.fail "expected Replace {}"

let test_guess_false_replies_rollback () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (deny 9));
  state_is t "False";
  match M.handle t (guess 2) with
  | [ M.Reply { wire = Wire.Rollback _; _ } ] -> ()
  | _ -> Alcotest.fail "expected Rollback"

(* ------------------------- Affirm (Figure 7) ---------------------- *)

let test_affirm_definite () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (guess 1));
  ignore (M.handle t (guess 2));
  let actions = M.handle t (affirm 3) in
  state_is t "True";
  Alcotest.(check int) "Replace to every DOM member" 2 (List.length actions);
  List.iter
    (fun (_, _, wire) ->
      match wire with
      | Wire.Replace { ido; _ } ->
        Alcotest.(check bool) "empty ido" true (Aid.Set.is_empty ido)
      | _ -> Alcotest.fail "expected Replace")
    (replies actions)

let test_affirm_speculative () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (guess 1));
  let actions = M.handle t (affirm ~ido:[ 5; 6 ] 2) in
  state_is t "Maybe";
  Alcotest.(check bool) "A_IDO recorded" true
    (Aid.Set.equal t.M.a_ido (aid_set [ 5; 6 ]));
  match actions with
  | [ M.Reply { wire = Wire.Replace { ido; _ }; _ } ] ->
    Alcotest.(check bool) "Replace carries A_IDO" true
      (Aid.Set.equal ido (aid_set [ 5; 6 ]))
  | _ -> Alcotest.fail "expected one Replace"

let test_affirm_on_cold_is_definite () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm 1));
  state_is t "True"

let test_affirm_maybe_then_definite () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm ~ido:[ 5 ] 1));
  state_is t "Maybe";
  ignore (M.handle t (affirm 2));
  state_is t "True"

let test_affirm_redundant_on_true () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm 1));
  let actions = M.handle t (affirm 2) in
  Alcotest.(check int) "ignored" 0 (List.length actions);
  Alcotest.(check int) "counted redundant" 1 t.M.redundant;
  state_is t "True"

let test_affirm_after_deny_is_user_error () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (deny 1));
  ignore (M.handle t (affirm 2));
  Alcotest.(check int) "counted user error" 1 t.M.user_errors;
  state_is t "False"

let test_strict_mode_raises () =
  let t = M.create ~strict:true (aid_of 0) in
  ignore (M.handle t (deny 1));
  Alcotest.(check bool) "strict affirm-after-deny raises" true
    (try
       ignore (M.handle t (affirm 2));
       false
     with M.User_error _ -> true)

(* ------------------------- Deny (Figure 8) ------------------------ *)

let test_deny_rolls_back_dom () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (guess 1));
  ignore (M.handle t (guess 2));
  let actions = M.handle t (deny 3) in
  state_is t "False";
  Alcotest.(check int) "Rollback to every DOM member" 2 (List.length actions);
  List.iter
    (fun (_, _, wire) ->
      match wire with
      | Wire.Rollback _ -> ()
      | _ -> Alcotest.fail "expected Rollback")
    (replies actions)

let test_deny_on_maybe () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (guess 1));
  ignore (M.handle t (affirm ~ido:[ 5 ] 2));
  let actions = M.handle t (deny 3) in
  state_is t "False";
  (* The guesser is still in DOM and must be rolled back. *)
  Alcotest.(check int) "rollback sent" 1 (List.length actions)

let test_deny_redundant_on_false () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (deny 1));
  let actions = M.handle t (deny 2) in
  Alcotest.(check int) "ignored" 0 (List.length actions);
  Alcotest.(check int) "counted redundant" 1 t.M.redundant

let test_deny_after_affirm_is_user_error () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm 1));
  ignore (M.handle t (deny 2));
  Alcotest.(check int) "counted user error" 1 t.M.user_errors;
  state_is t "True"

(* ---------------------- Revoke / Rebind --------------------------- *)

let revoke i = Wire.Revoke { iid = iid i }

let test_revoke_returns_to_hot () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (guess 1));
  ignore (M.handle t (affirm ~ido:[ 5 ] 2));
  state_is t "Maybe";
  let actions = M.handle t (revoke 2) in
  state_is t "Hot";
  Alcotest.(check bool) "A_IDO cleared" true (Aid.Set.is_empty t.M.a_ido);
  (* Every DOM member is told to depend on the AID directly again. *)
  (match actions with
  | [ M.Reply { wire = Wire.Rebind _; _ } ] -> ()
  | _ -> Alcotest.fail "expected one Rebind to the single DOM member");
  (* The re-executed affirm can now rule definitively. *)
  ignore (M.handle t (affirm 2));
  state_is t "True"

let test_revoke_stale_ignored () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm ~ido:[ 5 ] 2));
  state_is t "Maybe";
  (* A revoke from an interval that is not the current affirmer. *)
  let actions = M.handle t (revoke 9) in
  Alcotest.(check int) "ignored" 0 (List.length actions);
  state_is t "Maybe";
  Alcotest.(check int) "counted redundant" 1 t.M.redundant

let test_revoke_on_terminal_ignored () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm 2));
  ignore (M.handle t (revoke 2));
  state_is t "True";
  let t2 = M.create (aid_of 1) in
  ignore (M.handle t2 (deny 2));
  ignore (M.handle t2 (revoke 2));
  state_is t2 "False"

let test_maybe_guess_joins_dom_for_rebind () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm ~ido:[ 5 ] 1));
  (* A guess during Maybe gets the Replace reply AND joins DOM... *)
  ignore (M.handle t (guess 3));
  Alcotest.(check int) "guesser recorded" 1 (Interval_id.Set.cardinal t.M.dom);
  (* ...so the revoke can rebind it. *)
  match M.handle t (revoke 1) with
  | [ M.Reply { iid = b; wire = Wire.Rebind _ } ] ->
    Alcotest.(check bool) "rebind addressed to the rewired guesser" true
      (Interval_id.equal b (iid 3))
  | _ -> Alcotest.fail "expected one Rebind"

(* --------------------- protocol violations ------------------------ *)

let test_replace_rejected () =
  let t = M.create (aid_of 0) in
  Alcotest.(check bool) "Replace raises" true
    (try
       ignore (M.handle t (Wire.Replace { iid = iid 1; ido = Aid.Set.empty }));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "Rollback raises" true
    (try
       ignore (M.handle t (Wire.Rollback { iid = iid 1 }));
       false
     with Invalid_argument _ -> true)

(* ------------- exhaustive transition table (Figure 4) ------------- *)

(* Drive a fresh machine into each of the five states, then apply each of
   the six message shapes and check the successor state against the
   Figure 4 diagram. *)
let reach_state = function
  | "Cold" -> M.create (aid_of 0)
  | "Hot" ->
    let t = M.create (aid_of 0) in
    ignore (M.handle t (guess 1));
    t
  | "Maybe" ->
    let t = M.create (aid_of 0) in
    ignore (M.handle t (affirm ~ido:[ 9 ] 1));
    t
  | "True" ->
    let t = M.create (aid_of 0) in
    ignore (M.handle t (affirm 1));
    t
  | "False" ->
    let t = M.create (aid_of 0) in
    ignore (M.handle t (deny 1));
    t
  | s -> Alcotest.failf "unknown state %s" s

let transition_table =
  (* (start state, message, expected successor) *)
  [
    ("Cold", guess 2, "Hot");
    ("Cold", affirm 2, "True");
    ("Cold", affirm ~ido:[ 5 ] 2, "Maybe");
    ("Cold", deny 2, "False");
    ("Hot", guess 2, "Hot");
    ("Hot", affirm 2, "True");
    ("Hot", affirm ~ido:[ 5 ] 2, "Maybe");
    ("Hot", deny 2, "False");
    ("Maybe", guess 2, "Maybe");
    ("Maybe", affirm 2, "True");
    ("Maybe", affirm ~ido:[ 5 ] 2, "Maybe");
    ("Maybe", deny 2, "False");
    ("True", guess 2, "True");
    ("True", affirm 2, "True");
    ("True", affirm ~ido:[ 5 ] 2, "True");
    ("True", deny 2, "True");
    ("False", guess 2, "False");
    ("False", affirm 2, "False");
    ("False", affirm ~ido:[ 5 ] 2, "False");
    ("False", deny 2, "False");
  ]

let test_transition_table () =
  List.iter
    (fun (start, msg, expected) ->
      let t = reach_state start in
      ignore (M.handle t msg);
      Alcotest.(check string)
        (Format.asprintf "%s + %a" start Wire.pp msg)
        expected (M.state_name t.M.state))
    transition_table

(* --------------------- property tests ----------------------------- *)

let arbitrary_msg =
  let open QCheck in
  let gen =
    Gen.oneof
      [
        Gen.map (fun i -> guess (i mod 5)) Gen.small_nat;
        Gen.map2
          (fun i aids -> affirm ~ido:aids (i mod 5))
          Gen.small_nat
          Gen.(list_size (Gen.int_bound 3) (Gen.int_bound 5));
        Gen.map (fun i -> deny (i mod 5)) Gen.small_nat;
      ]
  in
  make ~print:(Format.asprintf "%a" Wire.pp) gen

(* Lemma 5.1/5.2 at the machine level: for any two messages, processing
   them in either order leaves the machine in the same state whenever
   neither order aborts — or the conflict is the affirm/deny conflict the
   paper declares meaningless (the machine then keeps the first ruling
   deterministically). *)
let qcheck_commutation_or_first_ruling =
  QCheck.Test.make ~name:"aid: message pairs commute or first ruling wins"
    ~count:500
    QCheck.(pair arbitrary_msg arbitrary_msg)
    (fun (m1, m2) ->
      let run msgs =
        let t = M.create (aid_of 0) in
        List.iter (fun m -> ignore (M.handle t m)) msgs;
        (t.M.state, Interval_id.Set.cardinal t.M.dom)
      in
      let s12, _ = run [ m1; m2 ] and s21, _ = run [ m2; m1 ] in
      match (m1, m2) with
      | Wire.Affirm _, Wire.Deny _ | Wire.Deny _, Wire.Affirm _ ->
        (* the paper: "conflicting affirm and deny primitives have no
           meaning" — each order keeps its first ruling *)
        (s12 = M.True_ || s12 = M.False_) && (s21 = M.True_ || s21 = M.False_)
      | Wire.Affirm { ido = i1; _ }, Wire.Affirm { ido = i2; _ }
        when not (Aid.Set.equal i1 i2) ->
        (* double affirm with different predicates: last writer wins per
           Figure 7; order-dependent by design (redundant-affirm case) *)
        true
      | _ -> s12 = s21)

let qcheck_terminal_states_absorb =
  QCheck.Test.make ~name:"aid: True/False are absorbing" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) arbitrary_msg)
    (fun msgs ->
      let t = M.create (aid_of 0) in
      List.for_all
        (fun msg ->
          let was_final = M.is_final t in
          let before = t.M.state in
          ignore (M.handle t msg);
          (not was_final) || t.M.state = before)
        msgs)

let qcheck_cold_hot_guesses_silent =
  QCheck.Test.make ~name:"aid: Cold/Hot guesses never get replies" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) arbitrary_msg)
    (fun msgs ->
      let t = M.create (aid_of 0) in
      List.for_all
        (fun msg ->
          let pre = t.M.state in
          let actions = M.handle t msg in
          match (msg, pre) with
          | Wire.Guess _, (M.Cold | M.Hot) -> actions = []
          | _ -> true)
        msgs)

let () =
  Alcotest.run "aid_machine"
    [
      ( "guess",
        [
          test "Cold -> Hot, DOM records" test_guess_cold_to_hot;
          test "Hot accumulates DOM" test_guess_hot_accumulates_dom;
          test "Maybe passes the buck" test_guess_maybe_passes_the_buck;
          test "True replies Replace {}" test_guess_true_replies_empty_replace;
          test "False replies Rollback" test_guess_false_replies_rollback;
        ] );
      ( "affirm",
        [
          test "definite affirm -> True, notifies DOM" test_affirm_definite;
          test "speculative affirm -> Maybe with A_IDO" test_affirm_speculative;
          test "affirm on Cold" test_affirm_on_cold_is_definite;
          test "Maybe then definite affirm" test_affirm_maybe_then_definite;
          test "redundant affirm ignored" test_affirm_redundant_on_true;
          test "affirm after deny is user error" test_affirm_after_deny_is_user_error;
          test "strict mode raises" test_strict_mode_raises;
        ] );
      ( "deny",
        [
          test "deny rolls back DOM" test_deny_rolls_back_dom;
          test "deny on Maybe" test_deny_on_maybe;
          test "redundant deny ignored" test_deny_redundant_on_false;
          test "deny after affirm is user error" test_deny_after_affirm_is_user_error;
        ] );
      ( "revocation",
        [
          test "revoke returns Maybe to Hot and rebinds" test_revoke_returns_to_hot;
          test "stale revoke ignored" test_revoke_stale_ignored;
          test "revoke on terminal states ignored" test_revoke_on_terminal_ignored;
          test "Maybe guess joins DOM for rebind"
            test_maybe_guess_joins_dom_for_rebind;
        ] );
      ( "protocol",
        [
          test "Replace/Rollback rejected" test_replace_rejected;
          test "exhaustive transition table (Figure 4)" test_transition_table;
          QCheck_alcotest.to_alcotest qcheck_commutation_or_first_ruling;
          QCheck_alcotest.to_alcotest qcheck_terminal_states_absorb;
          QCheck_alcotest.to_alcotest qcheck_cold_hot_guesses_silent;
        ] );
    ]
