(* The Hope facade: the documented one-dependency entry point works. *)

module Program = Hope.Program
open Program.Syntax

let test name f = Alcotest.test_case name `Quick f

let test_world_roundtrip () =
  let world = Hope.World.create () in
  let got = ref [] in
  let buddy =
    Hope.World.spawn world ~node:1 ~name:"affirmer"
      (let* env = Program.recv () in
       Program.affirm (Hope.Value.to_aid (Hope.Envelope.value env)))
  in
  let _guesser =
    Hope.World.spawn world ~node:0 ~name:"guesser"
      (let* ok, x = Program.guess_new () in
       let* () = Program.send buddy (Hope.Value.Aid_v x) in
       Program.lift (fun () -> got := ok :: !got))
  in
  Hope.World.run_to_quiescence world;
  Hope.World.check_invariants world;
  Alcotest.(check (list bool)) "optimistic once" [ true ] !got;
  let s = Hope.Explain.summary (Hope.World.explain world) in
  (* The guesser's explicit interval, plus the affirmer's implicit one
     (the announcement was sent post-guess, hence tagged). *)
  Alcotest.(check int) "both intervals finalized" 2 s.Hope.Explain.finalized;
  Alcotest.(check int) "nothing rolled back" 0 s.Hope.Explain.rolled_back

let test_world_custom_config () =
  let world =
    Hope.World.create ~seed:7 ~latency:Hope.Latency.wan
      ~sched_config:Hope.Scheduler.epoch_1995_config
      ~hope_config:
        { Hope.Runtime.default_config with algorithm = Hope.Control.Algorithm_1 }
      ()
  in
  (* Note: no affirms here — a self-affirm would be a self-cycle, which
     Algorithm 1 (deliberately selected above) cannot resolve. *)
  let _p =
    Hope.World.spawn world ~name:"p"
      (let* _ok, _x = Program.guess_new () in
       Program.return ())
  in
  Hope.World.run_to_quiescence world;
  Alcotest.(check bool) "configured runtime in use" true
    ((Hope.Runtime.config world.Hope.World.runtime).Hope.Runtime.algorithm
    = Hope.Control.Algorithm_1)

let () =
  Alcotest.run "facade"
    [
      ( "world",
        [
          test "spawn, run, explain" test_world_roundtrip;
          test "custom configuration" test_world_custom_config;
        ] );
    ]
