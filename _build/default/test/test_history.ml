(* Tests for per-process interval histories: ordering, cumulative
   dependency sets, truncation, and the finalize cascade step. *)

open Hope_types
module History = Hope_core.History

let test name f = Alcotest.test_case name `Quick f

let owner = Proc_id.of_int 1
let aid i = Aid.of_proc (Proc_id.of_int (100 + i))
let aids l = Aid.Set.of_list (List.map aid l)

let push h ?(kind = History.Explicit) ido =
  History.push h ~kind ~ido:(aids ido) ~now:0.0

let iids h = List.map (fun itv -> Interval_id.seq itv.History.iid) (History.live h)

let test_push_order_and_seq () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  let b = push h [ 1; 2 ] in
  let c = push h [ 3 ] in
  Alcotest.(check (list int)) "oldest first" [ 0; 1; 2 ] (iids h);
  Alcotest.(check int) "depth" 3 (History.depth h);
  Alcotest.(check bool) "current is newest" true
    (History.current h = Some c);
  Alcotest.(check bool) "oldest" true (History.oldest h = Some a);
  Alcotest.(check bool) "find" true (History.find h b.History.iid = Some b);
  Alcotest.(check bool) "owner stamped" true
    (Proc_id.equal (Interval_id.owner a.History.iid) owner)

let test_cumulative_sets () =
  let h = History.create owner in
  ignore (push h [ 1 ]);
  let b = push h [ 1; 2 ] in
  ignore (push h [ 3 ]);
  Alcotest.(check bool) "cumulative ido" true
    (Aid.Set.equal (History.cumulative_ido h) (aids [ 1; 2; 3 ]));
  b.History.udo <- aids [ 9 ];
  Alcotest.(check bool) "cumulative udo" true
    (Aid.Set.equal (History.cumulative_udo h) (aids [ 9 ]));
  Alcotest.(check bool) "depends_on via ido" true (History.depends_on h (aid 3));
  Alcotest.(check bool) "depends_on via udo" true (History.depends_on h (aid 9));
  Alcotest.(check bool) "not dependent" false (History.depends_on h (aid 42))

let test_truncate_from_middle () =
  let h = History.create owner in
  let _a = push h [ 1 ] in
  let b = push h [ 2 ] in
  let _c = push h [ 3 ] in
  let removed = History.truncate_from h b.History.iid in
  Alcotest.(check (list int)) "removed suffix oldest-first" [ 1; 2 ]
    (List.map (fun itv -> Interval_id.seq itv.History.iid) removed);
  Alcotest.(check (list int)) "remaining" [ 0 ] (iids h);
  Alcotest.(check int) "rolled count" 2 (History.rolled_back_count h)

let test_truncate_not_live () =
  let h = History.create owner in
  ignore (push h [ 1 ]);
  let ghost = Interval_id.make ~owner ~seq:999 in
  Alcotest.(check int) "no-op on unknown interval" 0
    (List.length (History.truncate_from h ghost));
  Alcotest.(check int) "history intact" 1 (History.depth h)

let test_seq_not_reused_after_truncate () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  ignore (History.truncate_from h a.History.iid);
  let b = push h [ 2 ] in
  Alcotest.(check bool) "fresh sequence number" true
    (Interval_id.seq b.History.iid > Interval_id.seq a.History.iid)

let test_finalize_cascade_step () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  let b = push h [ 2 ] in
  (* The newer interval resolves first: no finalization until the oldest
     one does (an earlier rollback could still discard it). *)
  b.History.ido <- Aid.Set.empty;
  Alcotest.(check bool) "newer emptied but not oldest" true
    (History.drop_oldest_finalized h = None);
  a.History.ido <- Aid.Set.empty;
  Alcotest.(check bool) "oldest drops" true
    (History.drop_oldest_finalized h = Some a);
  Alcotest.(check bool) "then the next" true
    (History.drop_oldest_finalized h = Some b);
  Alcotest.(check bool) "empty" true (History.drop_oldest_finalized h = None);
  Alcotest.(check int) "finalized count" 2 (History.finalized_count h);
  Alcotest.(check int) "depth zero" 0 (History.depth h)

let test_empty_history () =
  let h = History.create owner in
  Alcotest.(check int) "depth" 0 (History.depth h);
  Alcotest.(check bool) "no current" true (History.current h = None);
  Alcotest.(check bool) "no oldest" true (History.oldest h = None);
  Alcotest.(check bool) "cumulative empty" true
    (Aid.Set.is_empty (History.cumulative_ido h))

(* Property: depth always equals pushes - finalized - rolled back, and
   live intervals stay ordered by sequence number. *)
let qcheck_history_accounting =
  let open QCheck in
  Test.make ~name:"history: accounting invariant under random ops" ~count:300
    (list_of_size (Gen.int_range 1 60) (int_range 0 2))
    (fun ops ->
      let h = History.create owner in
      let pushes = ref 0 in
      List.iter
        (fun op ->
          match op with
          | 0 ->
            incr pushes;
            ignore (push h [ !pushes mod 7 ])
          | 1 -> ignore (History.drop_oldest_finalized h)
          | _ -> (
            (* roll back a random live interval: pick the current one *)
            match History.current h with
            | Some itv -> ignore (History.truncate_from h itv.History.iid)
            | None -> ()))
        ops;
      (* force-finalize what can be finalized to exercise both exits *)
      let depth = History.depth h in
      let accounted =
        !pushes = depth + History.finalized_count h + History.rolled_back_count h
      in
      let ordered =
        let seqs = iids h in
        seqs = List.sort compare seqs
      in
      accounted && ordered)

(* Note: drop_oldest_finalized only fires when the oldest IDO is empty;
   in the property above pushed intervals have non-empty IDO, so the
   finalize op is a no-op there — covered separately in the cascade
   unit test. Clearing the IDO first exercises it under randomness: *)
let qcheck_finalize_under_randomness =
  let open QCheck in
  Test.make ~name:"history: finalize pops exactly the emptied prefix" ~count:200
    (pair (int_range 1 10) (int_range 0 10))
    (fun (n, emptied) ->
      let h = History.create owner in
      let intervals = List.init n (fun i -> push h [ i + 1 ]) in
      let emptied = min emptied n in
      List.iteri
        (fun i itv -> if i < emptied then itv.History.ido <- Aid.Set.empty)
        intervals;
      let rec drain acc =
        match History.drop_oldest_finalized h with
        | Some _ -> drain (acc + 1)
        | None -> acc
      in
      drain 0 = emptied && History.depth h = n - emptied)

let () =
  Alcotest.run "history"
    [
      ( "structure",
        [
          test "push order and sequence" test_push_order_and_seq;
          test "cumulative sets" test_cumulative_sets;
          test "empty history" test_empty_history;
        ] );
      ( "truncation",
        [
          test "truncate from middle" test_truncate_from_middle;
          test "truncate unknown interval" test_truncate_not_live;
          test "sequence numbers not reused" test_seq_not_reused_after_truncate;
        ] );
      ( "finalize",
        [
          test "cascade step" test_finalize_cascade_step;
          QCheck_alcotest.to_alcotest qcheck_history_accounting;
          QCheck_alcotest.to_alcotest qcheck_finalize_under_randomness;
        ] );
    ]
