(* End-to-end tests of the HOPE algorithm over the simulated distributed
   system: the optimistic flows of §3, rollback cascades, affirm
   transitivity (Lemma 5.3), and the cycle scenarios of §5.3. *)

open Hope_types
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Runtime = Hope_core.Runtime
module Aid_machine = Hope_core.Aid_machine
module Invariant = Hope_core.Invariant
module Engine = Hope_sim.Engine
open Program.Syntax
open Test_support.Util

(* --------------------------------------------------------------- *)
(* guess then definite affirm: the interval finalizes               *)
(* --------------------------------------------------------------- *)

let test_affirm_finalizes () =
  let w = make_world () in
  let record, dump = recorder () in
  let aid_box = ref None in
  let affirmer =
    Scheduler.spawn w.sched ~name:"affirmer"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.01 in
       Program.affirm x)
  in
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* x = Program.aid_init () in
       let* () = Program.lift (fun () -> aid_box := Some x) in
       let* () = Program.send affirmer (Value.Aid_v x) in
       let* ok = Program.guess x in
       let* () = record (if ok then "guess-true" else "guess-false") in
       Program.return ())
  in
  quiesce w;
  check_all_terminated w;
  Alcotest.(check (list string)) "ran optimistically once" [ "guess-true" ] (dump ());
  let x = Option.get !aid_box in
  Alcotest.(check string) "AID is True" "True" (aid_state_name w x);
  Alcotest.(check int) "one finalize" 1 (counter w "hope.finalizes");
  Alcotest.(check int) "no rollbacks" 0 (counter w "hope.rollbacks");
  check_invariants w

(* --------------------------------------------------------------- *)
(* guess then deny: rollback re-executes the guess with false       *)
(* --------------------------------------------------------------- *)

let test_deny_rolls_back () =
  let w = make_world () in
  let record, dump = recorder () in
  let aid_box = ref None in
  let denier =
    Scheduler.spawn w.sched ~name:"denier"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.01 in
       Program.deny x)
  in
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* x = Program.aid_init () in
       let* () = Program.lift (fun () -> aid_box := Some x) in
       let* () = Program.send denier (Value.Aid_v x) in
       let* ok = Program.guess x in
       let* () = record (if ok then "guess-true" else "guess-false") in
       (* long speculative computation, interrupted by the rollback *)
       let* () = Program.compute 1.0 in
       record (Printf.sprintf "done-%b" ok))
  in
  quiesce w;
  check_all_terminated w;
  Alcotest.(check (list string))
    "optimistic run, rollback, pessimistic run"
    [ "guess-true"; "guess-false"; "done-false" ]
    (dump ());
  Alcotest.(check string) "AID is False" "False" (aid_state_name w (Option.get !aid_box));
  Alcotest.(check int) "one rollback" 1 (counter w "hope.rollbacks");
  check_invariants w

(* --------------------------------------------------------------- *)
(* a terminated speculative process is revived by rollback          *)
(* --------------------------------------------------------------- *)

let test_rollback_revives_terminated () =
  let w = make_world () in
  let record, dump = recorder () in
  let denier =
    Scheduler.spawn w.sched ~name:"denier"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.05 in
       Program.deny x)
  in
  let worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* x = Program.aid_init () in
       let* () = Program.send denier (Value.Aid_v x) in
       let* ok = Program.guess x in
       record (if ok then "end-true" else "end-false"))
  in
  quiesce w;
  (* The worker terminated speculative at ~0, was revived at ~0.05, and
     terminated again definite. *)
  Alcotest.(check (list string)) "ran twice" [ "end-true"; "end-false" ] (dump ());
  Alcotest.(check bool) "worker terminated" true
    (Scheduler.status w.sched worker = Scheduler.Terminated);
  check_invariants w

(* --------------------------------------------------------------- *)
(* tagged message: implicit guess, cascade rollback, trigger drop   *)
(* --------------------------------------------------------------- *)

let test_implicit_guess_cascade () =
  let w = make_world () in
  let record, dump = recorder () in
  let receiver =
    Scheduler.spawn w.sched ~name:"receiver"
      (let* v = Program.recv_value () in
       record (Printf.sprintf "recv-%d" (Value.to_int v)))
  in
  let denier =
    Scheduler.spawn w.sched ~name:"denier"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.05 in
       Program.deny x)
  in
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* x = Program.aid_init () in
       let* () = Program.send denier (Value.Aid_v x) in
       let* ok = Program.guess x in
       if ok then Program.send receiver (Value.Int 42)  (* tagged {x} *)
       else Program.send receiver (Value.Int 7))
  in
  quiesce w;
  check_all_terminated w;
  Alcotest.(check (list string))
    "optimistic value consumed, then dropped and replaced"
    [ "recv-42"; "recv-7" ] (dump ());
  Alcotest.(check int) "one implicit guess" 1 (counter w "hope.implicit_guesses");
  Alcotest.(check int) "two rollbacks (worker + receiver)" 2
    (counter w "hope.rollbacks");
  check_invariants w

(* --------------------------------------------------------------- *)
(* tagged message affirmed: receiver's implicit interval finalizes  *)
(* --------------------------------------------------------------- *)

let test_implicit_guess_finalizes () =
  let w = make_world () in
  let record, dump = recorder () in
  let receiver =
    Scheduler.spawn w.sched ~name:"receiver"
      (let* v = Program.recv_value () in
       record (Printf.sprintf "recv-%d" (Value.to_int v)))
  in
  let affirmer =
    Scheduler.spawn w.sched ~name:"affirmer"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.05 in
       Program.affirm x)
  in
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* x = Program.aid_init () in
       let* () = Program.send affirmer (Value.Aid_v x) in
       let* ok = Program.guess x in
       if ok then Program.send receiver (Value.Int 42) else Program.return ())
  in
  quiesce w;
  check_all_terminated w;
  Alcotest.(check (list string)) "value survives" [ "recv-42" ] (dump ());
  Alcotest.(check int) "no rollbacks" 0 (counter w "hope.rollbacks");
  Alcotest.(check int) "worker + receiver finalize" 2 (counter w "hope.finalizes");
  check_invariants w

(* --------------------------------------------------------------- *)
(* Lemma 5.3: speculative affirm becomes definite transitively      *)
(* --------------------------------------------------------------- *)

let test_affirm_transitivity () =
  let w = make_world () in
  let record, dump = recorder () in
  let y_box = ref None and x_box = ref None in
  let q =
    Scheduler.spawn w.sched ~name:"q"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* ok = Program.guess x in
       record (Printf.sprintf "q-%b" ok))
  in
  let z =
    Scheduler.spawn w.sched ~name:"z"
      (let* env = Program.recv () in
       let y = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.1 in
       Program.affirm y)
  in
  let _p =
    Scheduler.spawn w.sched ~name:"p"
      (let* y = Program.aid_init () in
       let* x = Program.aid_init () in
       let* () = Program.lift (fun () -> y_box := Some y; x_box := Some x) in
       let* () = Program.send q (Value.Aid_v x) in
       let* () = Program.send z (Value.Aid_v y) in
       let* ok = Program.guess y in
       (* speculative affirm of x from an interval that depends on y *)
       let* () = Program.affirm x in
       record (Printf.sprintf "p-%b" ok))
  in
  quiesce w;
  check_all_terminated w;
  Alcotest.(check (list string)) "both ran once, optimistically"
    [ "p-true"; "q-true" ]
    (List.sort compare (dump ()));
  Alcotest.(check string) "X ends True" "True" (aid_state_name w (Option.get !x_box));
  Alcotest.(check string) "Y ends True" "True" (aid_state_name w (Option.get !y_box));
  Alcotest.(check int) "no rollbacks" 0 (counter w "hope.rollbacks");
  check_invariants w

(* As above but Y is denied: the speculative affirm of X must be revoked
   and Q must roll back too. *)
let test_affirm_transitivity_denied () =
  let w = make_world () in
  let record, dump = recorder () in
  let x_box = ref None in
  let q =
    Scheduler.spawn w.sched ~name:"q"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* ok = Program.guess x in
       record (Printf.sprintf "q-%b" ok))
  in
  let z =
    Scheduler.spawn w.sched ~name:"z"
      (let* env = Program.recv () in
       let y = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.1 in
       Program.deny y)
  in
  let _p =
    Scheduler.spawn w.sched ~name:"p"
      (let* y = Program.aid_init () in
       let* x = Program.aid_init () in
       let* () = Program.lift (fun () -> x_box := Some x) in
       let* () = Program.send q (Value.Aid_v x) in
       let* () = Program.send z (Value.Aid_v y) in
       let* ok = Program.guess y in
       if ok then Program.affirm x
       else
         (* The optimistic affirm of x was revoked with p's rollback
            (x returned to Hot); the pessimistic path must now rule. *)
         let* () = Program.deny x in
         record "p-false")
  in
  quiesce w;
  check_all_terminated w;
  Alcotest.(check string) "X ends False" "False" (aid_state_name w (Option.get !x_box));
  Alcotest.(check bool) "q saw false eventually" true
    (List.mem "q-false" (dump ()));
  check_invariants w

(* --------------------------------------------------------------- *)
(* free_of                                                          *)
(* --------------------------------------------------------------- *)

let test_free_of_miss_affirms () =
  let w = make_world () in
  let o_box = ref None in
  let _p =
    Scheduler.spawn w.sched ~name:"p"
      (let* o = Program.aid_init () in
       let* () = Program.lift (fun () -> o_box := Some o) in
       Program.free_of o)
  in
  quiesce w;
  Alcotest.(check string) "O affirmed" "True" (aid_state_name w (Option.get !o_box));
  Alcotest.(check int) "free_of miss" 1 (counter w "hope.free_of_misses");
  check_invariants w

let test_free_of_hit_denies () =
  let w = make_world () in
  let record, dump = recorder () in
  let o_box = ref None in
  let _p =
    Scheduler.spawn w.sched ~name:"p"
      (let* o = Program.aid_init () in
       let* () = Program.lift (fun () -> o_box := Some o) in
       let* ok = Program.guess o in
       if ok then
         (* we depend on o: this is the causality-violation branch *)
         Program.free_of o
       else record "rolled")
  in
  quiesce w;
  check_all_terminated w;
  Alcotest.(check string) "O denied" "False" (aid_state_name w (Option.get !o_box));
  Alcotest.(check (list string)) "process rolled back" [ "rolled" ] (dump ());
  Alcotest.(check int) "free_of hit" 1 (counter w "hope.free_of_hits");
  check_invariants w

(* free_of detects a dependency acquired implicitly through a tag. *)
let test_free_of_transitive_hit () =
  let w = make_world () in
  let record, dump = recorder () in
  let receiver =
    Scheduler.spawn w.sched ~name:"receiver"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.free_of x in
       record "checked")
  in
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* x = Program.aid_init () in
       let* ok = Program.guess x in
       if ok then Program.send receiver (Value.Aid_v x)
       else record "worker-rolled")
  in
  quiesce w;
  (* The receiver legitimately blocks forever: the tagged value it consumed
     was retracted by the rollback and the pessimistic worker sends nothing
     in its place. Only the worker must terminate. *)
  ignore receiver;
  Alcotest.(check bool) "free_of hit recorded" true
    (counter w "hope.free_of_hits" >= 1);
  Alcotest.(check bool) "worker rolled back" true
    (List.mem "worker-rolled" (dump ()));
  check_invariants w

(* --------------------------------------------------------------- *)
(* edge cases                                                       *)
(* --------------------------------------------------------------- *)

(* Rollback arrives while the process is parked on a receive. *)
let test_rollback_while_waiting () =
  let w = make_world () in
  let record, dump = recorder () in
  let denier =
    Scheduler.spawn w.sched ~name:"denier"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.05 in
       Program.deny x)
  in
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* x = Program.aid_init () in
       let* () = Program.send denier (Value.Aid_v x) in
       let* ok = Program.guess x in
       if ok then
         (* Block forever on a message that never comes; the rollback
            must yank the process out of the wait. *)
         let* _ = Program.recv_where (fun _ -> false) in
         record "unreachable"
       else record "rescued")
  in
  quiesce w;
  check_all_terminated w;
  Alcotest.(check (list string)) "pulled out of the wait" [ "rescued" ] (dump ());
  check_invariants w

(* A late guess on an assumption that is already False: the reply is an
   immediate rollback and the guess returns false after one round trip. *)
let test_guess_after_denial () =
  let w = make_world () in
  let record, dump = recorder () in
  let aid_box = ref None in
  let _creator =
    Scheduler.spawn w.sched ~name:"creator"
      (let* x = Program.aid_init () in
       let* () = Program.lift (fun () -> aid_box := Some x) in
       Program.deny x)
  in
  quiesce w;
  let x = Option.get !aid_box in
  let _late =
    Scheduler.spawn w.sched ~name:"late"
      (let* ok = Program.guess x in
       record (Printf.sprintf "late-%b" ok))
  in
  quiesce w;
  check_all_terminated w;
  Alcotest.(check (list string)) "optimistic then corrected"
    [ "late-true"; "late-false" ] (dump ());
  check_invariants w

(* Two intervals of the same process guessing the same AID: one denial
   rolls back to the earliest. *)
let test_same_aid_guessed_twice () =
  let w = make_world () in
  let record, dump = recorder () in
  let denier =
    Scheduler.spawn w.sched ~name:"denier"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.05 in
       Program.deny x)
  in
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* x = Program.aid_init () in
       let* () = Program.send denier (Value.Aid_v x) in
       let* ok1 = Program.guess x in
       let* () = record (Printf.sprintf "first-%b" ok1) in
       if not ok1 then record "stop"
       else
         let* ok2 = Program.guess x in
         record (Printf.sprintf "second-%b" ok2))
  in
  quiesce w;
  check_all_terminated w;
  Alcotest.(check (list string)) "denial lands at the first guess"
    [ "first-true"; "second-true"; "first-false"; "stop" ]
    (dump ());
  check_invariants w

(* Transitive rollback across a three-process chain: A's speculative data
   flows through B to C; denying A's assumption unwinds all three. *)
let test_three_process_cascade () =
  let w = make_world () in
  let record, dump = recorder () in
  let c =
    Scheduler.spawn w.sched ~node:3 ~name:"c"
      (let* v = Program.recv_value () in
       record (Printf.sprintf "c-%d" (Value.to_int v)))
  in
  let b =
    Scheduler.spawn w.sched ~node:2 ~name:"b"
      (let* v = Program.recv_value () in
       Program.send c (Value.Int (Value.to_int v * 10)))
  in
  let denier =
    Scheduler.spawn w.sched ~node:4 ~name:"denier"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.05 in
       Program.deny x)
  in
  let _a =
    Scheduler.spawn w.sched ~node:1 ~name:"a"
      (let* x = Program.aid_init () in
       let* () = Program.send denier (Value.Aid_v x) in
       let* ok = Program.guess x in
       if ok then Program.send b (Value.Int 4) else Program.send b (Value.Int 7))
  in
  quiesce w;
  check_all_terminated w;
  Alcotest.(check (list string)) "speculative 40 retracted, definite 70 lands"
    [ "c-40"; "c-70" ] (dump ());
  (* a, b, and c all rolled back. *)
  Alcotest.(check bool) "three rollbacks" true (counter w "hope.rollbacks" >= 3);
  check_invariants w

(* Revocation transparency: a verifier that affirmed speculatively, was
   rolled back, and re-executed must get its (definite) judgment honoured
   — the dependent's guess settles at the verifier's verdict, not at the
   collateral damage. This is the scenario that forced the Revoke/Rebind
   protocol (DESIGN.md §3.1); under a deny-on-rollback reading the guess
   would wrongly settle false. *)
let test_revoked_affirm_reexecutes () =
  let w = make_world () in
  let record, dump = recorder () in
  let x_box = ref None in
  let denier =
    Scheduler.spawn w.sched ~node:1 ~name:"denier"
      (let* env = Program.recv () in
       let d = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.05 in
       Program.deny d)
  in
  let resolver =
    Scheduler.spawn w.sched ~node:2 ~name:"resolver"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.02 in
       (* First execution: speculative (the announcement was tagged with
          the doomed d). Re-execution after the revocation: definite. *)
       Program.affirm x)
  in
  let _worker =
    Scheduler.spawn w.sched ~node:0 ~name:"worker"
      (let* d = Program.aid_init () in
       let* x = Program.aid_init () in
       let* () = Program.lift (fun () -> x_box := Some x) in
       let* () = Program.send denier (Value.Aid_v d) in
       let* ok_d = Program.guess d in
       (* Announced on both paths: the re-execution re-sends it clean. *)
       let* () = Program.send resolver (Value.Aid_v x) in
       let* ok_x = Program.guess x in
       record (Printf.sprintf "%b-%b" ok_d ok_x))
  in
  quiesce w;
  check_all_terminated w;
  let log = dump () in
  Alcotest.(check bool) "final verdict honours the re-executed affirm" true
    (List.mem "false-true" log);
  Alcotest.(check string) "X ends True despite the revocation" "True"
    (aid_state_name w (Option.get !x_box));
  check_invariants w

(* guess_new: the paper's guess-with-null-argument. *)
let test_guess_new () =
  let w = make_world () in
  let record, dump = recorder () in
  let affirmer =
    Scheduler.spawn w.sched ~name:"affirmer"
      (let* env = Program.recv () in
       Program.affirm (Value.to_aid (Envelope.value env)))
  in
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* ok, x = Program.guess_new () in
       let* () = Program.send affirmer (Value.Aid_v x) in
       record (Printf.sprintf "%b" ok))
  in
  quiesce w;
  check_all_terminated w;
  Alcotest.(check (list string)) "eager true" [ "true" ] (dump ());
  check_invariants w

(* --------------------------------------------------------------- *)
(* §5.3: interleaved mutual affirms                                 *)
(* --------------------------------------------------------------- *)

let mutual_affirm_world ~algorithm () =
  let w =
    make_world
      ~hope_config:{ Runtime.default_config with algorithm }
      ()
  in
  let record, dump = recorder () in
  (* P guesses Y then affirms X; Q guesses X then affirms Y, concurrently:
     the interference of Figure 13. AIDs are created by a coordinator and
     broadcast before any speculation so both sides start definite. *)
  let x_box = ref None and y_box = ref None in
  let p_body other_aid own_aid name =
    let* ok = Program.guess own_aid in
    let* () = Program.affirm other_aid in
    record (Printf.sprintf "%s-%b" name ok)
  in
  let p =
    Scheduler.spawn w.sched ~name:"p"
      (let* env = Program.recv () in
       let y, x = Value.to_pair (Envelope.value env) in
       p_body (Value.to_aid x) (Value.to_aid y) "p")
  in
  let q =
    Scheduler.spawn w.sched ~name:"q"
      (let* env = Program.recv () in
       let x, y = Value.to_pair (Envelope.value env) in
       p_body (Value.to_aid y) (Value.to_aid x) "q")
  in
  let _coordinator =
    Scheduler.spawn w.sched ~name:"coordinator"
      (let* x = Program.aid_init () in
       let* y = Program.aid_init () in
       let* () = Program.lift (fun () -> x_box := Some x; y_box := Some y) in
       let* () = Program.send p (Value.Pair (Value.Aid_v y, Value.Aid_v x)) in
       Program.send q (Value.Pair (Value.Aid_v x, Value.Aid_v y)))
  in
  (w, dump, x_box, y_box)

let test_mutual_affirm_algorithm_2 () =
  let w, dump, x_box, y_box = mutual_affirm_world ~algorithm:Hope_core.Control.Algorithm_2 () in
  quiesce w;
  check_all_terminated w;
  Alcotest.(check (list string)) "both completed optimistically"
    [ "p-true"; "q-true" ]
    (List.sort compare (dump ()));
  Alcotest.(check string) "X True" "True" (aid_state_name w (Option.get !x_box));
  Alcotest.(check string) "Y True" "True" (aid_state_name w (Option.get !y_box));
  Alcotest.(check bool) "cycle was cut" true (Runtime.cycle_cuts w.rt >= 1);
  check_invariants w

let test_mutual_affirm_algorithm_1_livelocks () =
  let w, _dump, _x, _y = mutual_affirm_world ~algorithm:Hope_core.Control.Algorithm_1 () in
  (* Algorithm 1 bounces around the cycle forever (§5.3): the run never
     quiesces within any event budget. *)
  match Scheduler.run ~max_events:50_000 w.sched with
  | Hope_sim.Engine.Event_limit -> ()
  | reason ->
    Alcotest.failf "expected livelock, got %a" Hope_sim.Engine.pp_stop_reason reason

(* --------------------------------------------------------------- *)
(* chained speculation: several nested guesses                      *)
(* --------------------------------------------------------------- *)

let test_nested_speculation_all_affirmed () =
  let w = make_world () in
  let record, dump = recorder () in
  let depth = 5 in
  let affirmer =
    Scheduler.spawn w.sched ~name:"affirmer"
      (Program.for_ 1 depth (fun _ ->
           let* env = Program.recv () in
           let x = Value.to_aid (Envelope.value env) in
           let* () = Program.compute 0.01 in
           Program.affirm x))
  in
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let rec loop i =
         if i > depth then record "done"
         else
           let* x = Program.aid_init () in
           let* () = Program.send affirmer (Value.Aid_v x) in
           let* ok = Program.guess x in
           let* () = record (Printf.sprintf "level-%d-%b" i ok) in
           loop (i + 1)
       in
       loop 1)
  in
  quiesce w;
  check_all_terminated w;
  let expected =
    List.init depth (fun i -> Printf.sprintf "level-%d-true" (i + 1)) @ [ "done" ]
  in
  Alcotest.(check (list string)) "all levels optimistic" expected (dump ());
  (* The worker's [depth] explicit intervals finalize, plus the implicit
     intervals the affirmer acquired by consuming tagged AID announcements. *)
  Alcotest.(check bool) "at least depth finalizes" true
    (counter w "hope.finalizes" >= depth);
  Alcotest.(check int) "no rollbacks" 0 (counter w "hope.rollbacks");
  check_invariants w

(* Denying the middle assumption rolls back it and everything after,
   but leaves earlier speculation intact to finalize. A definite
   coordinator distributes the AIDs so the resolver never becomes
   dependent on them through tags. *)
let test_nested_speculation_middle_denied () =
  let w = make_world () in
  let record, dump = recorder () in
  let depth = 4 in
  let deny_level = 2 in
  let aid_list_of env = List.map Value.to_aid (Value.to_list (Envelope.value env)) in
  let resolver =
    Scheduler.spawn w.sched ~name:"resolver"
      (let* env = Program.recv () in
       let aids = aid_list_of env in
       let* () = Program.compute 0.1 in
       Program.iter_list
         (fun (i, x) ->
           if i = deny_level then Program.deny x else Program.affirm x)
         (List.mapi (fun i x -> (i + 1, x)) aids))
  in
  let worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* env = Program.recv () in
       let aids = aid_list_of env in
       let rec loop i = function
         | [] -> record "done"
         | x :: rest ->
           let* ok = Program.guess x in
           let* () = record (Printf.sprintf "L%d-%b" i ok) in
           if ok then loop (i + 1) rest
           else (* pessimistic path: stop speculating *) record "recovered"
       in
       loop 1 aids)
  in
  let _coordinator =
    Scheduler.spawn w.sched ~name:"coordinator"
      (let* aids =
         Program.fold 1 depth [] (fun acc _ ->
             let+ x = Program.aid_init () in
             x :: acc)
       in
       let payload = Value.List (List.rev_map (fun x -> Value.Aid_v x) aids) in
       let* () = Program.send worker payload in
       Program.send resolver payload)
  in
  quiesce w;
  check_all_terminated w;
  let log = dump () in
  (* The optimistic prefix runs fully; the deny rolls back from level 2,
     re-executing it as false. *)
  Alcotest.(check bool) "optimistic prefix" true
    (List.filteri (fun i _ -> i < depth) log
    = List.init depth (fun i -> Printf.sprintf "L%d-true" (i + 1)));
  Alcotest.(check bool) "level 2 re-ran false" true (List.mem "L2-false" log);
  Alcotest.(check bool) "recovered" true (List.mem "recovered" log);
  Alcotest.(check bool) "rolled back >= 3 intervals" true
    (counter w "hope.intervals_rolled" >= depth - deny_level + 1);
  check_invariants w

(* --------------------------------------------------------------- *)
(* §3.1's Order assumption: free_of catches a causality violation   *)
(* --------------------------------------------------------------- *)

(* The Figure 2 hazard, forced deterministically: the Worker posts S3 over
   a fast link while the WorryWart's S1 request takes a slow link, so S3
   always overtakes S1 at the server. The server becomes dependent on
   Order when it consumes the tagged S3; its response to S1 carries that
   dependency back to the WorryWart; free_of(Order) detects it and denies,
   rolling back the premature S3 so the server re-serves in causal
   order. *)
let test_order_violation_detected () =
  let w = make_world () in
  let net = Scheduler.network w.sched in
  (* worker on node 0, server on node 1, worrywart on node 2 *)
  Hope_net.Network.set_link net ~src:0 ~dst:1 (Hope_net.Latency.Constant 1e-3);
  Hope_net.Network.set_link net ~src:2 ~dst:1 (Hope_net.Latency.Constant 5e-3);
  Hope_net.Network.set_link net ~src:1 ~dst:2 (Hope_net.Latency.Constant 1e-3);
  Hope_net.Network.set_link net ~src:1 ~dst:0 (Hope_net.Latency.Constant 1e-3);
  Hope_net.Network.set_link net ~src:0 ~dst:2 (Hope_net.Latency.Constant 1e-3);
  let lines_seen = ref [] in
  (* A line-counting server: every print request appends a line and
     returns the line number. *)
  let server =
    Scheduler.spawn w.sched ~node:1 ~name:"server"
      (Hope_rpc.Rpc.serve_fold_forever ~init:0 (fun line _req ->
           Program.return (line + 1, Value.Int (line + 1))))
  in
  let worrywart =
    Scheduler.spawn w.sched ~node:2 ~name:"worrywart"
      (let* env = Program.recv () in
       let order = Value.to_aid (Envelope.value env) in
       (* S1: the slow call. Its response reflects whether S3 got there
          first. *)
       let* resp = Hope_rpc.Rpc.call ~server (Value.String "print-total") in
       let line = Value.to_int resp in
       let* () = Program.lift (fun () -> lines_seen := line :: !lines_seen) in
       Program.free_of order)
  in
  let _worker =
    Scheduler.spawn w.sched ~node:0 ~name:"worker"
      (let* order = Program.aid_init () in
       let* () = Program.send worrywart (Value.Aid_v order) in
       let* _ = Program.guess order in
       (* S3, tagged with Order: posted immediately over the fast link. *)
       Hope_rpc.Rpc.post ~server (Value.String "print-summary"))
  in
  quiesce w;
  (* The worrywart first observed line 2 (S3 overtook S1), free_of denied
     Order, everything rolled back, and the re-served S1 saw line 1. *)
  Alcotest.(check (list int)) "violation observed then repaired" [ 2; 1 ]
    (List.rev !lines_seen);
  Alcotest.(check bool) "free_of hit" true (counter w "hope.free_of_hits" >= 1);
  Alcotest.(check bool) "rollbacks happened" true (counter w "hope.rollbacks" >= 2);
  check_invariants w

(* Same topology but the worrywart's link is the fast one: no violation,
   free_of affirms Order, nothing rolls back. *)
let test_order_respected_affirms () =
  let w = make_world () in
  let net = Scheduler.network w.sched in
  Hope_net.Network.set_link net ~src:0 ~dst:1 (Hope_net.Latency.Constant 5e-3);
  Hope_net.Network.set_link net ~src:2 ~dst:1 (Hope_net.Latency.Constant 1e-3);
  let lines_seen = ref [] in
  let server =
    Scheduler.spawn w.sched ~node:1 ~name:"server"
      (Hope_rpc.Rpc.serve_fold_forever ~init:0 (fun line _req ->
           Program.return (line + 1, Value.Int (line + 1))))
  in
  let worrywart =
    Scheduler.spawn w.sched ~node:2 ~name:"worrywart"
      (let* env = Program.recv () in
       let order = Value.to_aid (Envelope.value env) in
       let* resp = Hope_rpc.Rpc.call ~server (Value.String "print-total") in
       let* () =
         Program.lift (fun () -> lines_seen := Value.to_int resp :: !lines_seen)
       in
       Program.free_of order)
  in
  let _worker =
    Scheduler.spawn w.sched ~node:0 ~name:"worker"
      (let* order = Program.aid_init () in
       let* () = Program.send worrywart (Value.Aid_v order) in
       let* _ = Program.guess order in
       Hope_rpc.Rpc.post ~server (Value.String "print-summary"))
  in
  quiesce w;
  Alcotest.(check (list int)) "S1 served first" [ 1 ] (List.rev !lines_seen);
  Alcotest.(check int) "no rollbacks" 0 (counter w "hope.rollbacks");
  Alcotest.(check bool) "order affirmed" true (counter w "hope.free_of_misses" >= 1);
  check_invariants w

(* --------------------------------------------------------------- *)

let () =
  Alcotest.run "hope_integration"
    [
      ( "affirm/deny",
        [
          test "definite affirm finalizes" test_affirm_finalizes;
          test "deny rolls back and re-executes" test_deny_rolls_back;
          test "rollback revives a terminated process" test_rollback_revives_terminated;
        ] );
      ( "tags",
        [
          test "implicit guess cascade on deny" test_implicit_guess_cascade;
          test "implicit guess finalizes on affirm" test_implicit_guess_finalizes;
        ] );
      ( "transitivity",
        [
          test "speculative affirm becomes definite (Lemma 5.3)"
            test_affirm_transitivity;
          test "speculative affirm revoked on deny" test_affirm_transitivity_denied;
        ] );
      ( "free_of",
        [
          test "miss affirms" test_free_of_miss_affirms;
          test "hit denies and rolls back" test_free_of_hit_denies;
          test "transitive hit through a tag" test_free_of_transitive_hit;
        ] );
      ( "cycles",
        [
          test "Algorithm 2 cuts mutual-affirm cycles" test_mutual_affirm_algorithm_2;
          test "Algorithm 1 livelocks on cycles" test_mutual_affirm_algorithm_1_livelocks;
        ] );
      ( "nesting",
        [
          test "deep speculation, all affirmed" test_nested_speculation_all_affirmed;
          test "middle assumption denied" test_nested_speculation_middle_denied;
        ] );
      ( "ordering",
        [
          test "free_of catches an order violation (Fig 2)"
            test_order_violation_detected;
          test "free_of affirms when order holds" test_order_respected_affirms;
        ] );
      ( "edge-cases",
        [
          test "rollback while waiting on a receive" test_rollback_while_waiting;
          test "late guess on a denied assumption" test_guess_after_denial;
          test "same AID guessed twice" test_same_aid_guessed_twice;
          test "three-process cascade" test_three_process_cascade;
          test "revoked affirm re-executes and counts"
            test_revoked_affirm_reexecutes;
          test "guess_new spawns its own AID" test_guess_new;
        ] );
    ]
