(* Tests for the network layer: latency models and message delivery. *)

module Engine = Hope_sim.Engine
module Rng = Hope_sim.Rng
module Latency = Hope_net.Latency
module Network = Hope_net.Network

let test name f = Alcotest.test_case name `Quick f

(* ----------------------------- Latency ---------------------------- *)

let all_models =
  [
    ("constant", Latency.Constant 1e-3);
    ("uniform", Latency.Uniform { lo = 1e-4; hi = 5e-4 });
    ("lognormal", Latency.Lognormal { median = 1e-3; sigma = 0.5 });
    ("shifted-exp", Latency.Shifted_exponential { base = 1e-4; mean_extra = 5e-5 });
    ("local", Latency.local);
    ("lan", Latency.lan);
    ("man", Latency.man);
    ("wan", Latency.wan);
  ]

let test_latency_positive () =
  let rng = Rng.create ~seed:1 in
  List.iter
    (fun (name, m) ->
      for _ = 1 to 1000 do
        let d = Latency.sample m rng in
        if d <= 0.0 then Alcotest.failf "%s produced non-positive delay %g" name d
      done)
    all_models

let test_latency_sample_mean_matches () =
  let rng = Rng.create ~seed:2 in
  List.iter
    (fun (name, m) ->
      let n = 50_000 in
      let sum = ref 0.0 in
      for _ = 1 to n do
        sum := !sum +. Latency.sample m rng
      done;
      let sample_mean = !sum /. float_of_int n in
      let expected = Latency.mean m in
      if Float.abs (sample_mean -. expected) > 0.1 *. expected then
        Alcotest.failf "%s: sample mean %g vs analytic %g" name sample_mean expected)
    all_models

let test_latency_uniform_range () =
  let rng = Rng.create ~seed:3 in
  let m = Latency.Uniform { lo = 0.2; hi = 0.3 } in
  for _ = 1 to 1000 do
    let d = Latency.sample m rng in
    if d < 0.2 || d >= 0.3 then Alcotest.failf "uniform out of range: %g" d
  done

let test_latency_scale () =
  Alcotest.(check (float 1e-12)) "scaled mean" 0.03 (Latency.mean (Latency.scale Latency.wan 2.0));
  match Latency.scale (Latency.Uniform { lo = 1.0; hi = 2.0 }) 3.0 with
  | Latency.Uniform { lo; hi } ->
    Alcotest.(check (float 1e-12)) "lo" 3.0 lo;
    Alcotest.(check (float 1e-12)) "hi" 6.0 hi
  | _ -> Alcotest.fail "scale changed the model shape"

let test_latency_wan_matches_paper () =
  (* §3.1: 30 ms for a transcontinental round trip, i.e. 15 ms one way. *)
  Alcotest.(check (float 1e-9)) "wan one-way" 15e-3 (Latency.mean Latency.wan)

(* ----------------------------- Network ---------------------------- *)

let make_net ?default_latency ?fifo () =
  let engine = Engine.create ~seed:9 () in
  (engine, Network.create ~engine ?default_latency ?fifo ())

let test_network_delivers () =
  let engine, net = make_net () in
  let got = ref [] in
  Network.attach net 1 (fun ~src v -> got := (src, v) :: !got);
  Network.send net ~src:0 ~dst:1 "hello";
  ignore (Engine.run engine);
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello") ] !got;
  Alcotest.(check int) "sent" 1 (Network.messages_sent net);
  Alcotest.(check int) "delivered count" 1 (Network.messages_delivered net);
  Alcotest.(check int) "none in flight" 0 (Network.in_flight net)

let test_network_backlog_before_attach () =
  let engine, net = make_net () in
  Network.send net ~src:0 ~dst:7 "early-1";
  Network.send net ~src:0 ~dst:7 "early-2";
  ignore (Engine.run engine);
  let got = ref [] in
  Network.attach net 7 (fun ~src:_ v -> got := v :: !got);
  Alcotest.(check (list string)) "backlog flushed in order" [ "early-1"; "early-2" ]
    (List.rev !got)

let test_network_fifo_per_pair () =
  let engine, net =
    make_net ~default_latency:(Latency.Lognormal { median = 1e-3; sigma = 1.0 }) ()
  in
  Network.place net 0 ~node:0;
  Network.place net 1 ~node:1;
  let got = ref [] in
  Network.attach net 1 (fun ~src:_ v -> got := v :: !got);
  for i = 1 to 50 do
    Network.send net ~src:0 ~dst:1 i
  done;
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "FIFO despite jitter" (List.init 50 (fun i -> i + 1))
    (List.rev !got)

let test_network_non_fifo_can_reorder () =
  let engine, net =
    make_net ~fifo:false
      ~default_latency:(Latency.Lognormal { median = 1e-3; sigma = 1.5 })
      ()
  in
  Network.place net 0 ~node:0;
  Network.place net 1 ~node:1;
  let got = ref [] in
  Network.attach net 1 (fun ~src:_ v -> got := v :: !got);
  for i = 1 to 200 do
    Network.send net ~src:0 ~dst:1 i
  done;
  ignore (Engine.run engine);
  let arrived = List.rev !got in
  Alcotest.(check int) "all arrived" 200 (List.length arrived);
  Alcotest.(check bool) "some reordering happened" true
    (arrived <> List.init 200 (fun i -> i + 1))

let test_network_node_latency_selection () =
  let _, net = make_net ~default_latency:Latency.wan () in
  Network.place net 1 ~node:0;
  Network.place net 2 ~node:0;
  Network.place net 3 ~node:5;
  Alcotest.(check (float 1e-9)) "same node is local" (Latency.mean Latency.local)
    (Latency.mean (Network.latency_between net ~src:1 ~dst:2));
  Alcotest.(check (float 1e-9)) "cross node uses default" (Latency.mean Latency.wan)
    (Latency.mean (Network.latency_between net ~src:1 ~dst:3));
  Network.set_link net ~src:0 ~dst:5 Latency.lan;
  Alcotest.(check (float 1e-9)) "explicit link overrides"
    (Latency.mean Latency.lan)
    (Latency.mean (Network.latency_between net ~src:1 ~dst:3));
  (* The link override is directional. *)
  Alcotest.(check (float 1e-9)) "reverse direction unaffected"
    (Latency.mean Latency.wan)
    (Latency.mean (Network.latency_between net ~src:3 ~dst:1))

let test_network_delivery_time () =
  let engine, net = make_net ~default_latency:(Latency.Constant 5e-3) () in
  Network.place net 1 ~node:1;
  let at = ref 0.0 in
  Network.attach net 1 (fun ~src:_ () -> at := Engine.now engine);
  Network.send net ~src:0 ~dst:1 ();
  ignore (Engine.run engine);
  Alcotest.(check (float 1e-9)) "constant latency applied" 5e-3 !at

let qcheck_fifo_property =
  QCheck.Test.make ~name:"network: per-pair FIFO for any seed and count" ~count:50
    QCheck.(pair small_int (int_range 1 100))
    (fun (seed, n) ->
      let engine = Engine.create ~seed () in
      let net =
        Network.create ~engine
          ~default_latency:(Latency.Lognormal { median = 1e-3; sigma = 2.0 })
          ()
      in
      Network.place net 0 ~node:0;
      Network.place net 1 ~node:1;
      let got = ref [] in
      Network.attach net 1 (fun ~src:_ v -> got := v :: !got);
      for i = 1 to n do
        Network.send net ~src:0 ~dst:1 i
      done;
      ignore (Engine.run engine);
      List.rev !got = List.init n (fun i -> i + 1))

(* ----------------------------- Topology --------------------------- *)

module Topology = Hope_net.Topology

let mean_between net a b = Latency.mean (Network.latency_between net ~src:a ~dst:b)

let test_topology_star () =
  let _, net = make_net ~default_latency:Latency.wan () in
  List.iteri (fun i addr -> Network.place net addr ~node:i) [ 0; 1; 2; 3 ];
  Topology.star net ~hub:0 ~spokes:[ 1; 2; 3 ] ~latency:Latency.lan;
  Alcotest.(check (float 1e-9)) "hub-spoke" (Latency.mean Latency.lan)
    (mean_between net 0 2);
  Alcotest.(check (float 1e-9)) "spoke-hub" (Latency.mean Latency.lan)
    (mean_between net 3 0);
  Alcotest.(check (float 1e-9)) "spoke-spoke keeps default"
    (Latency.mean Latency.wan) (mean_between net 1 2)

let test_topology_clusters () =
  let _, net = make_net ~default_latency:Latency.wan () in
  List.iter (fun n -> Network.place net n ~node:n) [ 0; 1; 2; 3 ];
  Topology.clusters net ~members:[ [ 0; 1 ]; [ 2; 3 ] ] ~local:Latency.lan
    ~cross:Latency.man;
  Alcotest.(check (float 1e-9)) "intra-cluster" (Latency.mean Latency.lan)
    (mean_between net 0 1);
  Alcotest.(check (float 1e-9)) "inter-cluster" (Latency.mean Latency.man)
    (mean_between net 1 2)

let test_topology_chain () =
  let _, net = make_net ~default_latency:Latency.wan () in
  List.iter (fun n -> Network.place net n ~node:n) [ 0; 1; 2 ];
  Topology.chain net ~nodes:[ 0; 1; 2 ] ~latency:Latency.lan;
  Alcotest.(check (float 1e-9)) "adjacent" (Latency.mean Latency.lan)
    (mean_between net 0 1);
  Alcotest.(check (float 1e-9)) "non-adjacent keeps default"
    (Latency.mean Latency.wan) (mean_between net 0 2)

let test_topology_full_mesh () =
  let _, net = make_net ~default_latency:Latency.wan () in
  List.iter (fun n -> Network.place net n ~node:n) [ 0; 1; 2 ];
  Topology.full_mesh net ~nodes:[ 0; 1; 2 ] ~latency:Latency.man;
  List.iter
    (fun (a, b) ->
      Alcotest.(check (float 1e-9)) "mesh pair" (Latency.mean Latency.man)
        (mean_between net a b))
    [ (0, 1); (1, 0); (0, 2); (2, 1) ]

let () =
  Alcotest.run "net"
    [
      ( "latency",
        [
          test "always positive" test_latency_positive;
          test "sample mean matches analytic" test_latency_sample_mean_matches;
          test "uniform range" test_latency_uniform_range;
          test "scale" test_latency_scale;
          test "wan matches the paper's 30ms RTT" test_latency_wan_matches_paper;
        ] );
      ( "network",
        [
          test "delivers" test_network_delivers;
          test "backlog before attach" test_network_backlog_before_attach;
          test "FIFO per pair" test_network_fifo_per_pair;
          test "non-FIFO can reorder" test_network_non_fifo_can_reorder;
          test "latency selection by node/link" test_network_node_latency_selection;
          test "delivery time" test_network_delivery_time;
          QCheck_alcotest.to_alcotest qcheck_fifo_property;
        ] );
      ( "topology",
        [
          test "star" test_topology_star;
          test "clusters" test_topology_clusters;
          test "chain" test_topology_chain;
          test "full mesh" test_topology_full_mesh;
        ] );
    ]
