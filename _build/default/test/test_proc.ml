(* Tests for the process substrate: the DSL and the scheduler, without
   any HOPE semantics (no runtime installed unless noted). *)

open Hope_types
module Engine = Hope_sim.Engine
module Scheduler = Hope_proc.Scheduler
module Program = Hope_proc.Program
open Program.Syntax
open Test_support.Util

let test name f = Alcotest.test_case name `Quick f

let make ?(sched_config = Scheduler.free_config) ?latency () =
  make_substrate ~sched_config ?latency ()

(* --------------------------- basics ------------------------------- *)

let test_terminates () =
  let engine, sched = make () in
  let p = Scheduler.spawn sched ~name:"noop" (Program.return ()) in
  ignore (Engine.run engine);
  Alcotest.(check bool) "terminated" true (Scheduler.status sched p = Scheduler.Terminated);
  Alcotest.(check bool) "all terminated" true (Scheduler.all_terminated sched)

let test_compute_advances_time () =
  let engine, sched = make () in
  let p =
    Scheduler.spawn sched ~name:"worker"
      (let* () = Program.compute 1.5 in
       let* () = Program.compute 0.5 in
       Program.return ())
  in
  ignore (Engine.run engine);
  Alcotest.(check (option (float 1e-9))) "completion time" (Some 2.0)
    (Scheduler.completion_time sched p)

let test_ping_pong () =
  let engine, sched = make ~latency:(Hope_net.Latency.Constant 1e-3) () in
  let log = ref [] in
  let ponger =
    Scheduler.spawn sched ~node:1 ~name:"ponger"
      (let* env = Program.recv () in
       let* () = Program.lift (fun () -> log := "pong-recv" :: !log) in
       Program.send env.Envelope.src (Value.String "pong"))
  in
  let _pinger =
    Scheduler.spawn sched ~node:0 ~name:"pinger"
      (let* () = Program.send ponger (Value.String "ping") in
       let* v = Program.recv_value () in
       Program.lift (fun () -> log := Value.to_string_payload v :: !log))
  in
  ignore (Engine.run engine);
  Alcotest.(check (list string)) "round trip" [ "pong-recv"; "pong" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "two hops" 2e-3 (Engine.now engine)

let test_recv_filters () =
  let engine, sched = make () in
  let got = ref [] in
  let receiver =
    Scheduler.spawn sched ~name:"receiver"
      (let* v1 =
         Program.recv_where (fun e -> Envelope.value e = Value.String "second")
       in
       let* () =
         Program.lift (fun () -> got := Value.to_string_payload (Envelope.value v1) :: !got)
       in
       let* v2 = Program.recv_value () in
       Program.lift (fun () -> got := Value.to_string_payload v2 :: !got))
  in
  let _sender =
    Scheduler.spawn sched ~name:"sender"
      (let* () = Program.send receiver (Value.String "first") in
       Program.send receiver (Value.String "second"))
  in
  ignore (Engine.run engine);
  Alcotest.(check (list string)) "filtered then leftover" [ "second"; "first" ]
    (List.rev !got)

let test_recv_from () =
  let engine, sched = make () in
  let got = ref [] in
  let receiver_box = ref None in
  let a =
    Scheduler.spawn sched ~name:"a"
      (let* () = Program.compute 0.01 in
       let* r = Program.lift (fun () -> Option.get !receiver_box) in
       Program.send r (Value.Int 1))
  in
  let _b =
    Scheduler.spawn sched ~name:"b"
      (let* r = Program.lift (fun () -> Option.get !receiver_box) in
       Program.send r (Value.Int 2))
  in
  let receiver =
    Scheduler.spawn sched ~name:"receiver"
      (* Wait specifically for a's message even though b's arrives first. *)
      (let* v = Program.recv_value_from a in
       Program.lift (fun () -> got := Value.to_int v :: !got))
  in
  receiver_box := Some receiver;
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "selective receive" [ 1 ] !got

let test_recv_opt () =
  let engine, sched = make () in
  let got = ref [] in
  let receiver =
    Scheduler.spawn sched ~name:"receiver"
      (let* first = Program.recv_opt () in
       let* () = Program.lift (fun () -> got := ("empty", first = None) :: !got) in
       let* () = Program.compute 0.1 in
       let* second = Program.recv_opt () in
       Program.lift (fun () -> got := ("full", second <> None) :: !got))
  in
  let _sender =
    Scheduler.spawn sched ~name:"sender"
      (let* () = Program.compute 0.01 in
       Program.send receiver Value.Unit)
  in
  ignore (Engine.run engine);
  Alcotest.(check (list (pair string bool)))
    "non-blocking receive" [ ("empty", true); ("full", true) ] (List.rev !got)

let test_spawn_hierarchy () =
  let engine, sched = make () in
  let log = ref [] in
  let _parent =
    Scheduler.spawn sched ~name:"parent"
      (let* child =
         Program.spawn "child"
           (let* v = Program.recv_value () in
            Program.lift (fun () -> log := Value.to_int v :: !log))
       in
       Program.send child (Value.Int 99))
  in
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "child ran" [ 99 ] !log;
  Alcotest.(check bool) "all terminated" true (Scheduler.all_terminated sched)

let test_random_ops_deterministic () =
  let run () =
    let engine, sched = make () in
    let out = ref [] in
    ignore
      (Scheduler.spawn sched ~name:"r"
         (Program.for_ 1 10 (fun _ ->
              let* f = Program.random_float 1.0 in
              let* b = Program.random_bernoulli 0.5 in
              let* i = Program.random_int 100 in
              Program.lift (fun () -> out := (f, b, i) :: !out)))
        : Proc_id.t);
    ignore (Engine.run engine);
    !out
  in
  Alcotest.(check bool) "two identical runs agree" true (run () = run ())

let test_fuel_exhaustion () =
  let engine, sched = make ~sched_config:{ Scheduler.free_config with fuel = 100 } () in
  let rec spin () =
    let* () = Program.incr_counter "spin" in
    spin ()
  in
  ignore (Scheduler.spawn sched ~name:"spinner" (spin ()) : Proc_id.t);
  Alcotest.(check bool) "non-terminating pure loop detected" true
    (try
       ignore (Engine.run engine);
       false
     with Scheduler.Process_failure _ | Scheduler.Fuel_exhausted _ -> true)

let test_costs_accounted () =
  let config =
    { Scheduler.free_config with send_cost = 10e-3; recv_cost = 5e-3 }
  in
  let engine, sched = make ~sched_config:config ~latency:(Hope_net.Latency.Constant 1e-3) () in
  let receiver =
    Scheduler.spawn sched ~node:1 ~name:"receiver"
      (let* _ = Program.recv () in
       Program.return ())
  in
  let sender =
    Scheduler.spawn sched ~node:0 ~name:"sender" (Program.send receiver Value.Unit)
  in
  ignore (Engine.run engine);
  (* sender: send_cost; receiver: latency + recv_cost *)
  Alcotest.(check (option (float 1e-9))) "sender paid send cost" (Some 10e-3)
    (Scheduler.completion_time sched sender);
  Alcotest.(check (option (float 1e-9))) "receiver paid latency + recv cost"
    (Some 6e-3)
    (Scheduler.completion_time sched receiver)

let test_send_user_injection () =
  let engine, sched = make () in
  let got = ref [] in
  let receiver =
    Scheduler.spawn sched ~name:"receiver"
      (let* v = Program.recv_value () in
       Program.lift (fun () -> got := Value.to_int v :: !got))
  in
  Scheduler.send_user sched ~src:(Proc_id.of_int 999) ~dst:receiver
    ~tags:Aid.Set.empty (Value.Int 5);
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "injected message received" [ 5 ] !got

let test_hope_ops_require_runtime () =
  let engine, sched = make () in
  ignore
    (Scheduler.spawn sched ~name:"guesser"
       (let* x = Program.aid_init () in
        let* _ = Program.guess x in
        Program.return ())
      : Proc_id.t);
  Alcotest.(check bool) "raises without hooks" true
    (try
       ignore (Engine.run engine);
       false
     with Scheduler.Process_failure _ -> true)

(* Program combinator behaviour (executed, not just constructed). *)
let test_combinators () =
  let engine, sched = make () in
  let out = ref [] in
  ignore
    (Scheduler.spawn sched ~name:"combi"
       (let* () = Program.for_ 1 3 (fun i -> Program.lift (fun () -> out := i :: !out)) in
        let* () = Program.when_ false (Program.lift (fun () -> out := 99 :: !out)) in
        let* () = Program.when_ true (Program.lift (fun () -> out := 4 :: !out)) in
        let* () =
          Program.iter_list (fun i -> Program.lift (fun () -> out := i :: !out)) [ 5; 6 ]
        in
        let* () = Program.repeat 2 (Program.lift (fun () -> out := 7 :: !out)) in
        let* total = Program.fold 1 4 0 (fun acc i -> Program.return (acc + i)) in
        Program.lift (fun () -> out := total :: !out))
      : Proc_id.t);
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "combinators execute in order"
    [ 1; 2; 3; 4; 5; 6; 7; 7; 10 ] (List.rev !out)

let test_mark_writes_trace () =
  let engine, sched = make () in
  Hope_sim.Trace.enable (Engine.trace engine);
  ignore
    (Scheduler.spawn sched ~name:"marker"
       (let* () = Program.mark "phase" "started" in
        let* () = Program.compute 0.5 in
        Program.mark "phase" "finished")
      : Proc_id.t);
  ignore (Engine.run engine);
  let entries = Hope_sim.Trace.find (Engine.trace engine) ~category:"phase" in
  Alcotest.(check (list string)) "both marks recorded" [ "started"; "finished" ]
    (List.map (fun e -> e.Hope_sim.Trace.message) entries);
  Alcotest.(check bool) "timestamps recorded" true
    (match entries with
    | [ a; b ] -> a.Hope_sim.Trace.time = 0.0 && b.Hope_sim.Trace.time = 0.5
    | _ -> false)

let test_wire_trace_records_transmissions () =
  let engine, sched = make () in
  Hope_sim.Trace.enable (Engine.trace engine);
  let receiver =
    Scheduler.spawn sched ~name:"receiver"
      (let* _ = Program.recv () in
       Program.return ())
  in
  ignore
    (Scheduler.spawn sched ~name:"sender" (Program.send receiver (Value.Int 9))
      : Proc_id.t);
  ignore (Engine.run engine);
  Alcotest.(check int) "one wire entry" 1
    (List.length (Hope_sim.Trace.find (Engine.trace engine) ~category:"wire"))

let test_recv_opt_with_filter () =
  let engine, sched = make () in
  let got = ref [] in
  let receiver =
    Scheduler.spawn sched ~name:"receiver"
      (let* () = Program.compute 0.1 in
       (* Both messages have arrived; pick only the matching one. *)
       let* m =
         Program.recv_opt_where (fun e -> Envelope.value e = Value.Int 2)
       in
       let* () =
         Program.lift (fun () ->
             got := (match m with Some e -> Value.to_int (Envelope.value e) | None -> -1) :: !got)
       in
       (* The other message is still there for a plain receive. *)
       let* v = Program.recv_value () in
       Program.lift (fun () -> got := Value.to_int v :: !got))
  in
  ignore
    (Scheduler.spawn sched ~name:"sender"
       (let* () = Program.send receiver (Value.Int 1) in
        Program.send receiver (Value.Int 2))
      : Proc_id.t);
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "filtered poll then leftover" [ 2; 1 ] (List.rev !got)

let qcheck_determinism =
  QCheck.Test.make ~name:"scheduler: same seed, same completion times" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let run () =
        let engine = Engine.create ~seed () in
        let sched = Scheduler.create ~engine ~default_latency:Hope_net.Latency.lan () in
        let pids =
          List.init 5 (fun i ->
              Scheduler.spawn sched ~name:(Printf.sprintf "w%d" i)
                (let* d = Program.random_float 0.1 in
                 Program.compute d))
        in
        ignore (Engine.run engine);
        List.map (Scheduler.completion_time sched) pids
      in
      run () = run ())

let () =
  Alcotest.run "proc"
    [
      ( "basics",
        [
          test "terminates" test_terminates;
          test "compute advances time" test_compute_advances_time;
          test "ping pong" test_ping_pong;
          test "combinators" test_combinators;
        ] );
      ( "receive",
        [
          test "filters" test_recv_filters;
          test "recv_from is selective" test_recv_from;
          test "recv_opt is non-blocking" test_recv_opt;
          test "recv_opt with filter" test_recv_opt_with_filter;
        ] );
      ( "observability",
        [
          test "mark writes the trace" test_mark_writes_trace;
          test "wire trace records transmissions" test_wire_trace_records_transmissions;
        ] );
      ( "lifecycle",
        [
          test "spawn hierarchy" test_spawn_hierarchy;
          test "random ops deterministic" test_random_ops_deterministic;
          test "fuel exhaustion detected" test_fuel_exhaustion;
          test "costs accounted" test_costs_accounted;
          test "send_user injection" test_send_user_injection;
          test "hope ops require runtime" test_hope_ops_require_runtime;
          QCheck_alcotest.to_alcotest qcheck_determinism;
        ] );
    ]
