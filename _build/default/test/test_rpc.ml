(* Tests for the RPC layer: protocol framing, synchronous calls, stateful
   servers, and the Call Streaming transformation of §3.1. *)

open Hope_types
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Protocol = Hope_rpc.Protocol
module Rpc = Hope_rpc.Rpc
module Call_streaming = Hope_rpc.Call_streaming
open Program.Syntax
open Test_support.Util

let test name f = Alcotest.test_case name `Quick f

(* --------------------------- protocol ----------------------------- *)

let test_protocol_roundtrip () =
  let req = Protocol.request ~call_id:7 ~reply_to:(Proc_id.of_int 3) (Value.Int 42) in
  (match Protocol.as_request req with
  | Some (7, reply_to, Value.Int 42) ->
    Alcotest.(check int) "reply_to" 3 (Proc_id.to_int reply_to)
  | _ -> Alcotest.fail "request did not decode");
  let resp = Protocol.response ~call_id:7 (Value.String "ok") in
  (match Protocol.as_response resp with
  | Some (7, Value.String "ok") -> ()
  | _ -> Alcotest.fail "response did not decode");
  Alcotest.(check bool) "request is not a response" true
    (Protocol.as_response req = None);
  Alcotest.(check bool) "response is not a request" true
    (Protocol.as_request resp = None)

let qcheck_protocol_request_roundtrip =
  QCheck.Test.make ~name:"protocol: request roundtrip" ~count:200
    QCheck.(triple small_nat small_nat small_int)
    (fun (call_id, pid, n) ->
      let v =
        Protocol.request ~call_id ~reply_to:(Proc_id.of_int pid) (Value.Int n)
      in
      match Protocol.as_request v with
      | Some (id', reply', Value.Int n') ->
        id' = call_id && Proc_id.to_int reply' = pid && n' = n
      | _ -> false)

(* --------------------------- sync call ---------------------------- *)

let echo_server = Rpc.serve_forever (fun v -> Program.return v)

let test_sync_call () =
  let w = make_world () in
  let server = Scheduler.spawn w.sched ~node:1 ~name:"echo" echo_server in
  let got = ref None in
  let _client =
    Scheduler.spawn w.sched ~node:0 ~name:"client"
      (let* resp = Rpc.call ~server (Value.String "hi") in
       Program.lift (fun () -> got := Some resp))
  in
  quiesce w;
  Alcotest.(check bool) "echoed" true (!got = Some (Value.String "hi"))

let test_concurrent_calls_correlate () =
  let w = make_world () in
  let double =
    Scheduler.spawn w.sched ~node:1 ~name:"double"
      (Rpc.serve_forever (fun v ->
           (* Delay odd requests so responses come back out of order. *)
           let n = Value.to_int v in
           let* () = Program.compute (if n mod 2 = 1 then 0.1 else 0.001) in
           Program.return (Value.Int (2 * n))))
  in
  let results = ref [] in
  for i = 1 to 4 do
    ignore
      (Scheduler.spawn w.sched ~node:0 ~name:(Printf.sprintf "client-%d" i)
         (let* resp = Rpc.call ~server:double (Value.Int i) in
          Program.lift (fun () -> results := (i, Value.to_int resp) :: !results))
        : Proc_id.t)
  done;
  quiesce w;
  Alcotest.(check (list (pair int int)))
    "every client got its own answer"
    [ (1, 2); (2, 4); (3, 6); (4, 8) ]
    (List.sort compare !results)

let test_stateful_server () =
  let w = make_world () in
  let counter_server =
    Scheduler.spawn w.sched ~node:1 ~name:"counter"
      (Rpc.serve_fold_n 3 ~init:0 (fun n _req -> Program.return (n + 1, Value.Int (n + 1))))
  in
  let got = ref [] in
  let _client =
    Scheduler.spawn w.sched ~node:0 ~name:"client"
      (Program.for_ 1 3 (fun _ ->
           let* resp = Rpc.call ~server:counter_server Value.Unit in
           Program.lift (fun () -> got := Value.to_int resp :: !got)))
  in
  quiesce w;
  check_all_terminated w;
  Alcotest.(check (list int)) "state threads through" [ 1; 2; 3 ] (List.rev !got)

let test_serve_n_terminates () =
  let w = make_world () in
  let server =
    Scheduler.spawn w.sched ~node:1 ~name:"limited"
      (Rpc.serve_n 1 (fun v -> Program.return v))
  in
  let _client =
    Scheduler.spawn w.sched ~node:0 ~name:"client"
      (let* _ = Rpc.call ~server Value.Unit in
       Program.return ())
  in
  quiesce w;
  check_all_terminated w

(* ------------------------ call streaming -------------------------- *)

let slow_line_server ~line =
  Rpc.serve_forever (fun _ ->
      let* () = Program.compute 0.05 in
      Program.return (Value.Int line))

let test_guess_call_affirmed () =
  let w = make_world () in
  let record, dump = recorder () in
  let server =
    Scheduler.spawn w.sched ~node:1 ~name:"server" (slow_line_server ~line:3)
  in
  let _worker =
    Scheduler.spawn w.sched ~node:0 ~name:"worker"
      (let* ok =
         Call_streaming.guess_call ~server ~request:Value.Unit
           ~verify:(fun resp -> Program.return (Value.to_int resp < 10))
           ()
       in
       let* () = record (if ok then "optimistic" else "pessimistic") in
       record "continued")
  in
  quiesce w;
  Alcotest.(check (list string)) "no rollback" [ "optimistic"; "continued" ] (dump ());
  Alcotest.(check int) "no rollbacks" 0 (counter w "hope.rollbacks");
  check_invariants w

let test_guess_call_denied () =
  let w = make_world () in
  let record, dump = recorder () in
  let server =
    Scheduler.spawn w.sched ~node:1 ~name:"server" (slow_line_server ~line:30)
  in
  let _worker =
    Scheduler.spawn w.sched ~node:0 ~name:"worker"
      (let* ok =
         Call_streaming.guess_call ~server ~request:Value.Unit
           ~verify:(fun resp -> Program.return (Value.to_int resp < 10))
           ()
       in
       record (if ok then "optimistic" else "pessimistic"))
  in
  quiesce w;
  Alcotest.(check (list string)) "rolled into the pessimistic branch"
    [ "optimistic"; "pessimistic" ] (dump ());
  Alcotest.(check int) "one rollback" 1 (counter w "hope.rollbacks");
  check_invariants w

(* The worker never waits: its speculative completion must precede the
   server's response time. *)
let test_guess_call_is_nonblocking () =
  let w = make_world ~latency:Hope_net.Latency.wan () in
  let reached_at = ref infinity in
  let server =
    Scheduler.spawn w.sched ~node:1 ~name:"server" (slow_line_server ~line:3)
  in
  let _worker =
    Scheduler.spawn w.sched ~node:0 ~name:"worker"
      (let* _ =
         Call_streaming.guess_call ~server ~request:Value.Unit
           ~verify:(fun resp -> Program.return (Value.to_int resp < 10))
           ()
       in
       Program.lift (fun () ->
           reached_at := Hope_sim.Engine.now (Scheduler.engine w.sched)))
  in
  quiesce w;
  (* WAN RTT is 30ms + 50ms service: the guess must continue at ~0. *)
  Alcotest.(check bool) "continued without waiting" true (!reached_at < 1e-3);
  check_invariants w

(* Chained streaming: a second guess_call issued while still speculative
   from the first (the WorryWart inherits the dependency via spawn). *)
let test_chained_guess_calls () =
  let w = make_world () in
  let record, dump = recorder () in
  let server =
    Scheduler.spawn w.sched ~node:1 ~name:"server" (slow_line_server ~line:3)
  in
  let _worker =
    Scheduler.spawn w.sched ~node:0 ~name:"worker"
      (let verify resp = Program.return (Value.to_int resp < 10) in
       let* ok1 = Call_streaming.guess_call ~server ~request:Value.Unit ~verify () in
       let* ok2 = Call_streaming.guess_call ~server ~request:Value.Unit ~verify () in
       record (Printf.sprintf "%b-%b" ok1 ok2))
  in
  quiesce w;
  Alcotest.(check (list string)) "both optimistic" [ "true-true" ] (dump ());
  Alcotest.(check int) "speculative spawn recorded" 1
    (counter w "hope.speculative_spawns");
  Alcotest.(check int) "no rollbacks" 0 (counter w "hope.rollbacks");
  check_invariants w

let () =
  Alcotest.run "rpc"
    [
      ( "protocol",
        [
          test "roundtrip" test_protocol_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_protocol_request_roundtrip;
        ] );
      ( "call",
        [
          test "synchronous call" test_sync_call;
          test "concurrent calls correlate" test_concurrent_calls_correlate;
          test "stateful server" test_stateful_server;
          test "serve_n terminates" test_serve_n_terminates;
        ] );
      ( "streaming",
        [
          test "affirmed guess keeps the optimistic path" test_guess_call_affirmed;
          test "denied guess re-executes pessimistically" test_guess_call_denied;
          test "the caller never waits" test_guess_call_is_nonblocking;
          test "chained speculative calls" test_chained_guess_calls;
        ] );
    ]
