(* Tests for runtime configuration features: AID garbage collection,
   buffered speculative denies (footnote 1), the terminal-state cache
   ablation, and AID placement. *)

open Hope_types
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Runtime = Hope_core.Runtime
module Aid_machine = Hope_core.Aid_machine
open Program.Syntax
open Test_support.Util

let test name f = Alcotest.test_case name `Quick f

(* ------------------------------ GC -------------------------------- *)

let test_gc_retires_resolved_aids () =
  let w = make_world () in
  let affirmer =
    Scheduler.spawn w.sched ~name:"affirmer"
      (Program.repeat 5
         (let* env = Program.recv () in
          Program.affirm (Value.to_aid (Envelope.value env))))
  in
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (Program.repeat 5
         (let* x = Program.aid_init () in
          let* () = Program.send affirmer (Value.Aid_v x) in
          let* _ = Program.guess x in
          Program.return ()))
  in
  quiesce w;
  let stats = Runtime.collect_garbage w.rt in
  Alcotest.(check int) "all five AIDs swept" 5 stats.Runtime.swept;
  Alcotest.(check int) "all retired (resolved, unreferenced)" 5 stats.retired;
  Alcotest.(check int) "none live" 0 stats.live;
  check_invariants w

let test_gc_keeps_referenced_aids () =
  let w = make_world () in
  (* The assumption never resolves: its interval stays live and the AID
     must not be retired. *)
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* x = Program.aid_init () in
       let* _ = Program.guess x in
       Program.return ())
  in
  quiesce w;
  let stats = Runtime.collect_garbage w.rt in
  Alcotest.(check int) "nothing retired" 0 stats.Runtime.retired;
  Alcotest.(check int) "one live" 1 stats.live

let test_gc_tombstone_still_answers () =
  let w = make_world () in
  let record, dump = recorder () in
  let aid_box = ref None in
  let _creator =
    Scheduler.spawn w.sched ~name:"creator"
      (let* x = Program.aid_init () in
       let* () = Program.lift (fun () -> aid_box := Some x) in
       Program.affirm x)
  in
  quiesce w;
  ignore (Runtime.collect_garbage w.rt : Runtime.gc_stats);
  let x = Option.get !aid_box in
  Alcotest.(check bool) "machine retired" true (Runtime.aid_machine w.rt x).Aid_machine.retired;
  (* A late guess must still get the terminal answer. *)
  let _late =
    Scheduler.spawn w.sched ~name:"late"
      (let* ok = Program.guess x in
       record (Printf.sprintf "late-%b" ok))
  in
  quiesce w;
  check_all_terminated w;
  Alcotest.(check (list string)) "late guess resolved True" [ "late-true" ] (dump ());
  Alcotest.(check int) "no rollbacks" 0 (counter w "hope.rollbacks")

let test_gc_retire_non_final_rejected () =
  let w = make_world () in
  let aid = Runtime.fresh_aid w.rt () in
  Alcotest.(check bool) "retire on Cold raises" true
    (try
       Aid_machine.retire (Runtime.aid_machine w.rt aid);
       false
     with Invalid_argument _ -> true)

(* ----------------------- buffered denies -------------------------- *)

let buffered_world () =
  make_world
    ~hope_config:{ Runtime.default_config with buffer_speculative_denies = true }
    ()

(* Footnote 1: a deny from a speculative interval is held in IHD and only
   released when the interval finalizes. *)
let test_buffered_deny_released_on_finalize () =
  let w = buffered_world () in
  let boxes = ref [] in
  let affirmer =
    Scheduler.spawn w.sched ~name:"affirmer"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.05 in
       Program.affirm x)
  in
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* x = Program.aid_init () in
       let* y = Program.aid_init () in
       let* () = Program.lift (fun () -> boxes := [ x; y ]) in
       let* () = Program.send affirmer (Value.Aid_v x) in
       let* _ = Program.guess x in
       (* speculative: this deny of y must wait for x to resolve *)
       Program.deny y)
  in
  (* Run until just before the affirmer acts: y must still be Hot/Cold. *)
  ignore (Scheduler.run ~until:0.04 w.sched);
  let x, y = match !boxes with [ x; y ] -> (x, y) | _ -> assert false in
  Alcotest.(check string) "y untouched while speculative" "Cold"
    (aid_state_name w y);
  quiesce w;
  Alcotest.(check string) "x affirmed" "True" (aid_state_name w x);
  Alcotest.(check string) "buffered deny released at finalize" "False"
    (aid_state_name w y);
  Alcotest.(check int) "counted as buffered" 1 (counter w "hope.denies_buffered")

(* ... and dropped when the denying interval rolls back. *)
let test_buffered_deny_dropped_on_rollback () =
  let w = buffered_world () in
  let boxes = ref [] in
  let denier =
    Scheduler.spawn w.sched ~name:"denier"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.05 in
       Program.deny x)
  in
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* x = Program.aid_init () in
       let* y = Program.aid_init () in
       let* () = Program.lift (fun () -> boxes := [ x; y ]) in
       let* () = Program.send denier (Value.Aid_v x) in
       let* ok = Program.guess x in
       if ok then Program.deny y  (* buffered; the interval will roll back *)
       else Program.return ())
  in
  quiesce w;
  let _, y = match !boxes with [ x; y ] -> (x, y) | _ -> assert false in
  Alcotest.(check string) "buffered deny dropped with its interval" "Cold"
    (aid_state_name w y);
  check_all_terminated w

(* ---------------------- terminal-state cache ---------------------- *)

(* With the cache off, every stale message costs a Guess/Rollback round
   trip; with it on, stale messages are dropped locally. Same program,
   both configurations must converge to the same answer. *)
let cache_scenario ~cache () =
  let w =
    make_world
      ~hope_config:{ Runtime.default_config with cache_terminal_states = cache }
      ()
  in
  let record, dump = recorder () in
  let receiver =
    Scheduler.spawn w.sched ~name:"receiver"
      (Program.repeat 3
         (let* v = Program.recv_value () in
          record (Printf.sprintf "recv-%d" (Value.to_int v))))
  in
  let denier =
    Scheduler.spawn w.sched ~name:"denier"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.05 in
       Program.deny x)
  in
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* x = Program.aid_init () in
       let* () = Program.send denier (Value.Aid_v x) in
       let* ok = Program.guess x in
       if ok then
         (* three speculative messages, all doomed *)
         Program.iter_list
           (fun i -> Program.send receiver (Value.Int i))
           [ 1; 2; 3 ]
       else
         Program.iter_list
           (fun i -> Program.send receiver (Value.Int i))
           [ 10; 20; 30 ])
  in
  quiesce w;
  (w, dump ())

let test_cache_same_outcome () =
  let w_on, log_on = cache_scenario ~cache:true () in
  let w_off, log_off = cache_scenario ~cache:false () in
  let tail l = List.filteri (fun i _ -> i >= List.length l - 3) l in
  Alcotest.(check (list string)) "cached run ends right"
    [ "recv-10"; "recv-20"; "recv-30" ] (tail log_on);
  Alcotest.(check (list string)) "uncached run ends right"
    [ "recv-10"; "recv-20"; "recv-30" ] (tail log_off);
  Alcotest.(check bool) "cache drops messages locally" true
    (counter w_on "hope.messages_poisoned_locally" >= 1);
  Alcotest.(check int) "no local drops without cache" 0
    (counter w_off "hope.messages_poisoned_locally");
  Alcotest.(check bool) "cache saves rollbacks" true
    (counter w_on "hope.rollbacks" <= counter w_off "hope.rollbacks")

(* -------------------------- placement ----------------------------- *)

let test_fixed_placement () =
  let w =
    make_world
      ~hope_config:{ Runtime.default_config with aid_placement = Runtime.Fixed_node 7 }
      ()
  in
  let _p =
    Scheduler.spawn w.sched ~node:2 ~name:"p"
      (let* x = Program.aid_init () in
       let* _ = Program.guess x in
       Program.affirm x)
  in
  quiesce w;
  let aids = Runtime.all_aids w.rt in
  Alcotest.(check int) "one aid" 1 (List.length aids);
  let node =
    Hope_net.Network.node_of (Scheduler.network w.sched)
      (Proc_id.to_int (Aid.to_proc (List.hd aids)))
  in
  Alcotest.(check int) "placed on the fixed node" 7 node

let test_colocate_placement () =
  let w = make_world () in
  let _p =
    Scheduler.spawn w.sched ~node:3 ~name:"p"
      (let* x = Program.aid_init () in
       let* _ = Program.guess x in
       Program.affirm x)
  in
  quiesce w;
  let aids = Runtime.all_aids w.rt in
  let node =
    Hope_net.Network.node_of (Scheduler.network w.sched)
      (Proc_id.to_int (Aid.to_proc (List.hd aids)))
  in
  Alcotest.(check int) "colocated with its creator" 3 node

(* -------------------------- cancellation -------------------------- *)

(* A rolled-back speculative sender must retract its messages so its
   re-execution cannot duplicate them: the receiver sees each payload's
   final version exactly once per surviving execution. *)
let test_cancel_retracts_unconsumed () =
  let w = make_world () in
  let record, dump = recorder () in
  (* The receiver only starts consuming long after the denial storm. *)
  let receiver =
    Scheduler.spawn w.sched ~name:"receiver"
      (let* () = Program.compute 0.5 in
       let* v = Program.recv_value () in
       record (Printf.sprintf "got-%d" (Value.to_int v)))
  in
  let denier =
    Scheduler.spawn w.sched ~name:"denier"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.05 in
       Program.deny x)
  in
  let _sender =
    Scheduler.spawn w.sched ~name:"sender"
      (let* x = Program.aid_init () in
       let* () = Program.send denier (Value.Aid_v x) in
       let* ok = Program.guess x in
       if ok then Program.send receiver (Value.Int 1)
       else Program.send receiver (Value.Int 2))
  in
  quiesce w;
  check_all_terminated w;
  (* The speculative Int 1 was cancelled while unconsumed: the receiver
     only ever sees the pessimistic Int 2. *)
  Alcotest.(check (list string)) "only the surviving message" [ "got-2" ] (dump ());
  Alcotest.(check bool) "a cancel was sent" true (counter w "hope.cancels_sent" >= 1);
  check_invariants w

(* A consumed-then-cancelled message rolls its consumer back even though
   the consumer's own tags never contained the denied assumption (the
   sender acquired the rollback cause after the send). *)
let test_cancel_rolls_back_consumer () =
  let w = make_world () in
  let record, dump = recorder () in
  let receiver =
    Scheduler.spawn w.sched ~name:"receiver"
      (let* v = Program.recv_value () in
       let* () = Program.lift (fun () -> ()) in
       record (Printf.sprintf "got-%d" (Value.to_int v)))
  in
  let denier =
    Scheduler.spawn w.sched ~name:"denier"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.05 in
       Program.deny x)
  in
  let _sender =
    Scheduler.spawn w.sched ~name:"sender"
      (let* x = Program.aid_init () in
       let* ok = Program.guess x in
       (* The send precedes any dependence the receiver could see denied:
          x is this sender's own assumption, guessed BEFORE the send, so
          the message tag is {x}... make the hazard real by sending under
          an assumption acquired after: first send clean, then acquire. *)
       let* () =
         if ok then Program.send receiver (Value.Int 7) else Program.return ()
       in
       let* () = Program.send denier (Value.Aid_v x) in
       Program.return ())
  in
  quiesce w;
  let log = dump () in
  (* The receiver consumed 7 under the doomed tag; after the denial the
     sender's pessimistic path sends nothing, so the receiver ends up
     blocked — but it must have UNSEEN the retracted 7 (its final record
     log shows the speculative consumption followed by nothing new). *)
  Alcotest.(check bool) "speculative consumption happened" true
    (List.mem "got-7" log);
  Alcotest.(check bool) "receiver rolled back" true
    (counter w "hope.rollbacks" >= 2);
  ignore receiver;
  check_invariants w

(* ---------------------------- explain ----------------------------- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_explain_reconstructs () =
  let w = make_world () in
  let denier =
    Scheduler.spawn w.sched ~name:"denier"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.01 in
       Program.deny x)
  in
  let affirmer =
    Scheduler.spawn w.sched ~name:"affirmer"
      (let* env = Program.recv () in
       let x = Value.to_aid (Envelope.value env) in
       let* () = Program.compute 0.01 in
       Program.affirm x)
  in
  let worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* good = Program.aid_init () in
       let* () = Program.send affirmer (Value.Aid_v good) in
       let* _ = Program.guess good in
       let* bad = Program.aid_init () in
       let* () = Program.send denier (Value.Aid_v bad) in
       let* ok = Program.guess bad in
       if ok then Program.compute 1.0 else Program.return ())
  in
  quiesce w;
  let ex = Hope_core.Explain.of_runtime w.rt in
  let s = Hope_core.Explain.summary ex in
  Alcotest.(check int) "one rolled back" 1 s.Hope_core.Explain.rolled_back;
  (* Two finalized: the worker's good-guess interval plus the denier's
     implicit interval (the bad-AID announcement was sent while the worker
     was speculative on good, so it was tagged). *)
  Alcotest.(check int) "two finalized" 2 s.Hope_core.Explain.finalized;
  Alcotest.(check int) "none open" 0 s.Hope_core.Explain.still_open;
  Alcotest.(check int) "one true aid" 1 s.Hope_core.Explain.aids_true;
  Alcotest.(check int) "one false aid" 1 s.Hope_core.Explain.aids_false;
  Alcotest.(check (float 0.01)) "2/3 accuracy" (2.0 /. 3.0)
    s.Hope_core.Explain.speculation_accuracy;
  let worker_intervals = Hope_core.Explain.intervals_of ex worker in
  Alcotest.(check int) "worker opened two intervals" 2 (List.length worker_intervals);
  Alcotest.(check bool) "worker listed" true
    (List.exists (Proc_id.equal worker) (Hope_core.Explain.processes ex));
  (* The rendered report is well-formed and mentions both fates. *)
  let rendered = Format.asprintf "%a" Hope_core.Explain.pp ex in
  Alcotest.(check bool) "mentions finalized" true (contains rendered "finalized");
  Alcotest.(check bool) "mentions rolled back" true (contains rendered "rolled back")

let () =
  Alcotest.run "runtime"
    [
      ( "gc",
        [
          test "retires resolved AIDs" test_gc_retires_resolved_aids;
          test "keeps referenced AIDs" test_gc_keeps_referenced_aids;
          test "tombstone answers late guesses" test_gc_tombstone_still_answers;
          test "retire of non-final rejected" test_gc_retire_non_final_rejected;
        ] );
      ( "buffered-denies",
        [
          test "released on finalize" test_buffered_deny_released_on_finalize;
          test "dropped on rollback" test_buffered_deny_dropped_on_rollback;
        ] );
      ("cache", [ test "same outcome with or without" test_cache_same_outcome ]);
      ( "placement",
        [
          test "fixed node" test_fixed_placement;
          test "colocate (default)" test_colocate_placement;
        ] );
      ( "cancellation",
        [
          test "retracts unconsumed speculative sends" test_cancel_retracts_unconsumed;
          test "rolls back the consumer" test_cancel_rolls_back_consumer;
        ] );
      ("explain", [ test "reconstructs interval fates" test_explain_reconstructs ]);
    ]
