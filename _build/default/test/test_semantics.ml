(* Model-based testing of semantic transparency.

   The deepest property the paper claims (via its formal semantics
   companion [9]) is that optimism is *invisible*: a program executed with
   eager guesses, speculation, rollback and re-execution must end in
   exactly the state of a reference execution in which every guess simply
   returns its assumption's eventual truth value immediately.

   We generate random straight-line scripts whose guesses have
   predetermined fates, run them two ways —

   - on the full distributed runtime (a resolver process rules on each
     assumption after a random delay, so denials hit after real
     speculative progress), and
   - on a 20-line pure interpreter where [guess fate = fate] —

   and require the final observable state (an order-sensitive checksum of
   every step the program took) to be identical. Rollback noise (the
   speculative prefix before a denial) must leave no trace. *)

open Hope_types
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Rng = Hope_sim.Rng
open Program.Syntax
open Test_support.Util

let test name f = Alcotest.test_case name `Quick f

type sop =
  | Sguess of { fate : bool; skip_on_false : int }
      (** make an assumption with this predetermined fate; when it turns
          out false, skip the next [skip_on_false] ops *)
  | Smark of int  (** fold a constant into the state *)
  | Swork  (** burn virtual time (stretches the speculation window) *)

let mix acc x = ((acc * 31) + x) land 0x3FFFFFFF

(* ----------------------- reference semantics ---------------------- *)

let rec reference acc = function
  | [] -> acc
  | Sguess { fate; skip_on_false } :: rest ->
    let acc = mix acc (if fate then 1 else 2) in
    let rest =
      if fate then rest
      else
        let rec drop n l =
          if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t
        in
        drop skip_on_false rest
    in
    reference acc rest
  | Smark k :: rest -> reference (mix acc k) rest
  | Swork :: rest -> reference acc rest

(* ----------------------- distributed execution -------------------- *)

(* The resolver is told each assumption's fate alongside its id. *)
let resolver_body =
  let rec loop () =
    let* env = Program.recv () in
    match Envelope.value env with
    | Value.Pair (Value.Aid_v aid, Value.Bool fate) ->
      let* delay = Program.random_float 3e-3 in
      let* () = Program.compute delay in
      let* () = if fate then Program.affirm aid else Program.deny aid in
      loop ()
    | _ -> loop ()
  in
  loop ()

let worker_body ~resolver ~script ~result =
  let rec interp acc = function
    | [] -> Program.lift (fun () -> result := acc)
    | Sguess { fate; skip_on_false } :: rest ->
      let* x = Program.aid_init () in
      let* () = Program.send resolver (Value.Pair (Value.Aid_v x, Value.Bool fate)) in
      let* ok = Program.guess x in
      let acc = mix acc (if ok then 1 else 2) in
      let rest =
        if ok then rest
        else
          let rec drop n l =
            if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t
          in
          drop skip_on_false rest
      in
      interp acc rest
    | Smark k :: rest -> interp (mix acc k) rest
    | Swork :: rest ->
      let* () = Program.compute 1e-3 in
      interp acc rest
  in
  interp 0 script

let run_distributed ~seed ~scripts =
  let w = make_world ~seed () in
  let resolver = Scheduler.spawn w.sched ~node:0 ~name:"resolver" resolver_body in
  let results = List.map (fun _ -> ref (-1)) scripts in
  List.iteri
    (fun i script ->
      ignore
        (Scheduler.spawn w.sched ~node:(i + 1) ~name:(Printf.sprintf "w%d" i)
           (worker_body ~resolver ~script ~result:(List.nth results i))
          : Proc_id.t))
    scripts;
  quiesce w;
  check_invariants w;
  (List.map (fun r -> !r) results, counter w "hope.rollbacks")

(* ----------------------- script generation ------------------------ *)

let random_script rng ~length =
  List.init length (fun _ ->
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 ->
        Sguess
          { fate = Rng.bernoulli rng ~p:0.6; skip_on_false = Rng.int rng 4 }
      | 4 | 5 | 6 | 7 -> Smark (Rng.int rng 1000)
      | _ -> Swork)

let qcheck_transparency =
  QCheck.Test.make ~name:"optimistic execution equals reference semantics"
    ~count:150
    QCheck.(pair (int_range 1 10_000) (int_range 1 4))
    (fun (seed, n_workers) ->
      let rng = Rng.create ~seed:(seed * 31337) in
      let scripts =
        List.init n_workers (fun _ -> random_script rng ~length:(3 + Rng.int rng 15))
      in
      let measured, _ = run_distributed ~seed ~scripts in
      let expected = List.map (reference 0) scripts in
      measured = expected)

(* A targeted case with guaranteed deep speculation before the denial. *)
let test_deep_speculation_transparent () =
  let script =
    [
      Smark 7;
      Sguess { fate = true; skip_on_false = 0 };
      Sguess { fate = false; skip_on_false = 2 };
      Smark 11;  (* speculated, then skipped after the denial *)
      Smark 13;  (* likewise *)
      Sguess { fate = false; skip_on_false = 0 };
      Smark 17;
    ]
  in
  let measured, rollbacks = run_distributed ~seed:99 ~scripts:[ script ] in
  Alcotest.(check (list int)) "matches reference" [ reference 0 script ] measured;
  Alcotest.(check bool) "denials really caused rollbacks" true (rollbacks >= 2)

(* All-false fates: the program must settle into the fully pessimistic
   path despite having optimistically executed everything first. *)
let test_all_denied_transparent () =
  let script =
    List.concat
      (List.init 5 (fun i ->
           [ Sguess { fate = false; skip_on_false = 1 }; Smark (100 + i); Smark i ]))
  in
  let measured, _ = run_distributed ~seed:7 ~scripts:[ script ] in
  Alcotest.(check (list int)) "matches reference" [ reference 0 script ] measured

let () =
  Alcotest.run "semantics"
    [
      ( "transparency",
        [
          QCheck_alcotest.to_alcotest qcheck_transparency;
          test "deep speculation leaves no trace" test_deep_speculation_transparent;
          test "all assumptions denied" test_all_denied_transparent;
        ] );
    ]
