(* Tests for the Time Warp baseline: correctness against the sequential
   reference across seeds and parameters, plus targeted straggler and
   anti-message scenarios. *)

module Engine = Hope_sim.Engine
module Timewarp = Hope_timewarp.Timewarp
module Latency = Hope_net.Latency
module Phold = Hope_workloads.Phold

let test name f = Alcotest.test_case name `Quick f

(* A trivially checkable model: each LP counts events and records the
   timestamps it processed, in order. *)
type probe = { count : int; stamps : float list }

let probe_model ~n_lps ~hop =
  {
    Timewarp.init = (fun _ -> { count = 0; stamps = [] });
    handle =
      (fun ~lp ~ts st n ->
        let st' = { count = st.count + 1; stamps = ts :: st.stamps } in
        if n <= 0 then (st', [])
        else (st', [ ((lp + 1) mod n_lps, ts +. hop, n - 1) ]));
  }

let run_probe ?(latency = Latency.lan) ~n_lps ~hop ~seeds () =
  let engine = Engine.create ~seed:5 () in
  let cfg =
    {
      Timewarp.n_lps;
      physical_latency = latency;
      event_cost = 10e-6;
      gvt_interval = 1e-3;
      horizon = 1e9;
    }
  in
  let tw = Timewarp.create ~engine cfg (probe_model ~n_lps ~hop) in
  List.iter (fun (dst, ts, n) -> Timewarp.inject tw ~dst ~ts n) seeds;
  Alcotest.(check bool) "quiesced" true (Timewarp.run tw = Engine.Quiescent);
  tw

let test_single_chain_in_order () =
  let tw = run_probe ~n_lps:3 ~hop:1.0 ~seeds:[ (0, 1.0, 8) ] () in
  (* 9 events total, one per LP per visit, timestamps 1..9. *)
  let st = Timewarp.stats tw in
  Alcotest.(check int) "committed all" 9 st.Timewarp.committed;
  let all_stamps =
    List.concat_map
      (fun i -> List.rev (Timewarp.state_of tw i).stamps)
      [ 0; 1; 2 ]
  in
  Alcotest.(check int) "9 stamps" 9 (List.length all_stamps);
  List.iter
    (fun i ->
      let st = Timewarp.state_of tw i in
      let increasing =
        let rec check = function
          | a :: (b :: _ as rest) -> a > b && check rest
          | _ -> true
        in
        check st.stamps
      in
      Alcotest.(check bool) "per-LP timestamps strictly increase" true increasing)
    [ 0; 1; 2 ]

let test_straggler_forced () =
  (* Two seeds to the same LP: a fast one at ts=10 and, arriving much
     later physically (slow link), one at ts=1 — a guaranteed straggler
     once LP 0 has raced ahead. *)
  let engine = Engine.create ~seed:6 () in
  let cfg =
    {
      Timewarp.n_lps = 2;
      physical_latency = Latency.Constant 1e-3;
      event_cost = 1e-6;
      gvt_interval = 1e-3;
      horizon = 1e9;
    }
  in
  let model =
    {
      Timewarp.init = (fun _ -> { count = 0; stamps = [] });
      handle =
        (fun ~lp:_ ~ts st n ->
          ({ count = st.count + 1; stamps = ts :: st.stamps },
           if n > 0 then [ (1, ts +. 0.5, n - 1) ] else []));
    }
  in
  let tw = Timewarp.create ~engine cfg model in
  Timewarp.inject tw ~dst:0 ~ts:10.0 3;
  (* Let LP 0 process ts=10 and send downstream work first. *)
  ignore (Engine.run ~until:0.01 engine);
  Timewarp.inject tw ~dst:0 ~ts:1.0 0;
  Alcotest.(check bool) "quiesced" true (Timewarp.run tw = Engine.Quiescent);
  let st = Timewarp.stats tw in
  Alcotest.(check bool) "a rollback happened" true (st.Timewarp.rollbacks >= 1);
  let lp0 = Timewarp.state_of tw 0 in
  Alcotest.(check (list (float 1e-9))) "LP0 processed in timestamp order"
    [ 1.0; 10.0 ] (List.rev lp0.stamps)

let test_phold_matches_sequential_many_seeds () =
  List.iter
    (fun seed ->
      List.iter
        (fun remote_prob ->
          let p =
            { Phold.default_params with remote_prob; jobs = 6; horizon = 8.0 }
          in
          let seq = Phold.run_sequential p in
          let tw = Phold.run_timewarp ~seed p in
          Alcotest.(check bool)
            (Printf.sprintf "checksums agree (seed=%d remote=%.1f)" seed remote_prob)
            true
            (tw.Phold.checksums = seq.Phold.checksums);
          Alcotest.(check int)
            (Printf.sprintf "event counts agree (seed=%d remote=%.1f)" seed
               remote_prob)
            seq.Phold.handled_total tw.Phold.handled_total)
        [ 0.2; 0.8 ])
    [ 1; 2; 3; 4; 5 ]

let test_phold_hope_matches_sequential () =
  List.iter
    (fun seed ->
      let p = { Phold.default_params with jobs = 5; horizon = 6.0 } in
      let seq = Phold.run_sequential p in
      let hope = Phold.run_hope ~seed p in
      Alcotest.(check bool)
        (Printf.sprintf "hope checksums agree (seed=%d)" seed)
        true
        (hope.Phold.checksums = seq.Phold.checksums))
    [ 1; 2; 3 ]

let test_output_timestamp_validation () =
  let engine = Engine.create ~seed:8 () in
  let bad_model =
    {
      Timewarp.init = (fun _ -> ());
      handle = (fun ~lp:_ ~ts st () -> (st, [ (0, ts, ()) ]));
    }
  in
  let tw = Timewarp.create ~engine Timewarp.default_config bad_model in
  Timewarp.inject tw ~dst:0 ~ts:1.0 ();
  Alcotest.(check bool) "zero-delay output rejected" true
    (try
       ignore (Timewarp.run tw);
       false
     with Invalid_argument _ -> true)

let test_sequential_reference () =
  let model = probe_model ~n_lps:2 ~hop:1.0 in
  let r = Timewarp.Sequential.run model ~n_lps:2 ~horizon:100.0 ~seeds:[ (0, 1.0, 4) ] in
  Alcotest.(check int) "five events" 5 r.Timewarp.Sequential.events;
  Alcotest.(check int) "lp0 handled 3" 3 r.states.(0).count;
  Alcotest.(check int) "lp1 handled 2" 2 r.states.(1).count

let test_horizon_cuts_outputs () =
  let model = probe_model ~n_lps:2 ~hop:1.0 in
  let r = Timewarp.Sequential.run model ~n_lps:2 ~horizon:3.0 ~seeds:[ (0, 1.0, 100) ] in
  Alcotest.(check int) "only events within the horizon" 3 r.Timewarp.Sequential.events

let () =
  Alcotest.run "timewarp"
    [
      ( "mechanics",
        [
          test "single chain processes in order" test_single_chain_in_order;
          test "forced straggler rolls back" test_straggler_forced;
          test "output timestamp validated" test_output_timestamp_validation;
        ] );
      ( "reference",
        [
          test "sequential reference" test_sequential_reference;
          test "horizon cuts outputs" test_horizon_cuts_outputs;
        ] );
      ( "agreement",
        [
          test "PHOLD matches sequential across seeds"
            test_phold_matches_sequential_many_seeds;
          test "HOPE-expressed PHOLD matches sequential"
            test_phold_hope_matches_sequential;
        ] );
    ]
