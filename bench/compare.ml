(* Compare two hope-bench/1 JSON snapshots (bench/main.exe --json) and
   flag performance regressions:

     dune exec bench/compare.exe -- BENCH_pr4.json BENCH_new.json

   Rows are keyed by their experiment plus every identity field (the
   string/bool/int knobs that parameterize a table line: latency class,
   depth, ring size, ...). For each key present in both snapshots:

   - allocation metrics (any *minor_words* field) are GATED: a relative
     increase over 10% that is also over 8 minor words absolute fails
     the comparison;
   - wall-clock metrics (the *ns_per_* fields) are INFORMATIONAL at >25% —
     printed, never fatal, because CI machines are noisy;
   - the obs group's overhead_mw_per_event is additionally gated
     ABSOLUTELY at <= 2.0 in the new snapshot (the ISSUE/CI budget for
     live telemetry), independent of what the baseline paid;
   - the obs-parallel group (PR 10) carries the same <= 2.0 absolute
     budget for the shard-aware telemetry absorb, measured per
     processed event at 4 domains; its raw minor-words rows are informational
     only, because cross-domain scheduling makes the dark run's
     allocation (rollback churn) nondeterministic;
   - the rollback group is gated ABSOLUTELY too: the undo journal must
     keep >= 2x fewer minor words per rolled-back interval at depth 64
     than the eager storage it replaced, and the finalize-heavy
     residency run must report bounded=true;
   - the hybrid group (E16) is gated ABSOLUTELY: hybrid must beat pure
     OCC makespan at the high-skew extreme (clients=8, skew=2) and stay
     within 1.10x of pure 2PL at the low-skew extreme (clients=4,
     skew=0);
   - the parallel group (E17) is gated ABSOLUTELY on determinism: every
     domain count must report the same trace_digest and committed event
     count as the 1-domain row, and — only on machines reporting >= 4
     cores — 4 domains must clear 1.5x the 1-domain event rate
     (informational on smaller machines, where the speedup cannot
     physically exist).

   Exit status: 0 clean, 1 regression(s), 2 usage/parse error. *)

let rel_gate = 0.10
let abs_gate_words = 8.0
let info_gate_ns = 0.25
let obs_overhead_gate = 2.0
let rollback_alloc_gate = 2.0

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

(* ------------------------------------------------------------------ *)
(* Snapshot model                                                      *)

type row = {
  experiment : string;
  key : string;  (* experiment + identity fields, rendered stably *)
  metrics : (string * float) list;  (* gateable numeric fields *)
}

(* Identity = the fields that select a table line rather than measure
   it. Ints are identity by default (depth, ring, sections, ...) except
   for a known list of measured counts; floats are identity only for a
   known list of knobs (accuracy, conflict_rate, ...). *)
let measured_ints =
  [
    "rollbacks"; "denials"; "aborts"; "lock_waits"; "crashes"; "conflicts";
    "events"; "executed"; "messages"; "control_messages"; "primitives";
    "primitive_parks"; "recv_parks"; "intervals"; "cycle_cuts";
    "max_cascade"; "peak_open"; "wasted_iterations"; "order_violations";
    "swept"; "retired"; "unions_memoized"; "unions_computed";
    "guesses"; "finalized"; "rolled_back"; "gated"; "send_stalls";
    "forced_cuts"; "diagnostics"; "compactions"; "arrivals_reclaimed";
    "resident_final"; "peak_resident"; "opt_aborts"; "hybrid_aborts";
    "hybrid_rollbacks"; "escalations"; "acquire_waits";
    (* not a measurement, but a machine fact: keeping [cores] out of the
       row key lets snapshots taken on different machines still match *)
    "cores";
  ]

(* Measured ratios: these are floats except on the baseline
   implementation, where they come out exactly 1 and would otherwise
   parse as an identity Int and poison the row key. *)
let measured_ratios =
  [ "alloc_ratio_vs_baseline"; "alloc_ratio_vs_eager"; "speedup_vs_heap" ]

let identity_floats =
  [ "accuracy"; "remote_prob"; "conflict_rate"; "crash_rate"; "skew" ]

let contains name sub =
  let n = String.length name and m = String.length sub in
  let rec go i = i + m <= n && (String.sub name i m = sub || go (i + 1)) in
  go 0

let is_words_metric name =
  (* minor_words, minor_words_per_event, overhead_mw_per_event, ... *)
  contains name "minor_words" || contains name "_mw_"

let is_time_metric name =
  let n = String.length name in
  (n >= 3 && String.sub name 0 3 = "ns_") || (n >= 4 && String.sub name (n - 3) 3 = "_ns")

let row_of_json = function
  | Json_out.Obj kvs ->
    let experiment =
      match List.assoc_opt "experiment" kvs with
      | Some (Json_out.Str s) -> s
      | _ -> die "row without an \"experiment\" field"
    in
    let identity = ref [] and metrics = ref [] in
    List.iter
      (fun (k, v) ->
        if k <> "experiment" then
          match v with
          | Json_out.Str s -> identity := (k, s) :: !identity
          | Json_out.Bool b -> identity := (k, string_of_bool b) :: !identity
          | Json_out.Int i ->
            (* Name patterns first: an integral-valued measurement (e.g.
               ns_per_run = 687459) serializes without a fraction and
               parses back as Int, but it is still a metric, not a key. *)
            if
              List.mem k measured_ints || List.mem k measured_ratios
              || is_words_metric k || is_time_metric k
            then metrics := (k, float_of_int i) :: !metrics
            else identity := (k, string_of_int i) :: !identity
          | Json_out.Float f ->
            if List.mem k identity_floats then
              identity := (k, Printf.sprintf "%.6g" f) :: !identity
            else metrics := (k, f) :: !metrics
          | Json_out.Null | Json_out.List _ | Json_out.Obj _ -> ())
      kvs;
    let identity = List.sort compare !identity in
    let key =
      experiment
      ^ String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) identity)
    in
    { experiment; key; metrics = List.rev !metrics }
  | _ -> die "non-object row in \"rows\""

let load file =
  let doc =
    match Json_out.read_file file with
    | Ok doc -> doc
    | Error msg -> die "%s: parse error: %s" file msg
    | exception Sys_error msg -> die "%s" msg
  in
  match doc with
  | Json_out.Obj kvs ->
    (match List.assoc_opt "schema" kvs with
    | Some (Json_out.Str "hope-bench/1") -> ()
    | Some (Json_out.Str other) ->
      die "%s: unsupported schema %S (want hope-bench/1)" file other
    | _ -> die "%s: missing \"schema\" field" file);
    (match List.assoc_opt "rows" kvs with
    | Some (Json_out.List rows) -> List.map row_of_json rows
    | _ -> die "%s: missing \"rows\" list" file)
  | _ -> die "%s: top level is not an object" file

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)

let regressions = ref 0
let notes = ref 0

let compare_rows ~old_row ~new_row =
  List.iter
    (fun (metric, nv) ->
      match List.assoc_opt metric old_row.metrics with
      | None -> ()
      | Some ov ->
        let delta = nv -. ov in
        let rel = delta /. Float.max (Float.abs ov) 1e-9 in
        (* The micro group's words come from a quota-limited bechamel
           OLS fit — a statistical estimate that wobbles with machine
           load — so they inform rather than gate. The obs-parallel
           group's raw words ride on a multi-domain run whose rollback
           churn is scheduling-dependent; its absolute per-event budget
           (check_obs_parallel_gates) is the real gate. Everywhere else,
           minor words are exact [Gc.minor_words] deltas on a
           deterministic simulator and a regression is a real one. *)
        if
          is_words_metric metric
          && new_row.experiment <> "micro"
          && new_row.experiment <> "obs-parallel"
        then begin
          if rel > rel_gate && delta > abs_gate_words then begin
            incr regressions;
            Printf.printf
              "REGRESSION %s: %s %.1f -> %.1f (+%.0f%%, +%.1f words)\n"
              new_row.key metric ov nv (100. *. rel) delta
          end
        end
        else if is_words_metric metric && rel > rel_gate then begin
          incr notes;
          Printf.printf "note: %s: %s %.0f -> %.0f (+%.0f%%, OLS estimate)\n"
            new_row.key metric ov nv (100. *. rel)
        end
        else if is_time_metric metric && rel > info_gate_ns then begin
          incr notes;
          Printf.printf "note: %s: %s %.0f -> %.0f (+%.0f%%, wall-clock only)\n"
            new_row.key metric ov nv (100. *. rel)
        end)
    new_row.metrics

(* Experiment groups present in only one snapshot are an intentional
   change (a bench group added by a PR, or one retired), not a
   regression: report them as informational added/removed lines so the
   drift is visible without failing the comparison. *)
let report_group_drift old_rows new_rows =
  let groups rows =
    List.sort_uniq compare (List.map (fun r -> r.experiment) rows)
  in
  let og = groups old_rows and ng = groups new_rows in
  List.iter
    (fun g ->
      if not (List.mem g og) then begin
        incr notes;
        Printf.printf "note: group %S added (new snapshot only)\n" g
      end)
    ng;
  List.iter
    (fun g ->
      if not (List.mem g ng) then begin
        incr notes;
        Printf.printf "note: group %S removed (baseline only)\n" g
      end)
    og

let check_obs_budget new_rows =
  List.iter
    (fun r ->
      if r.experiment = "obs-overhead" then
        match List.assoc_opt "overhead_mw_per_event" r.metrics with
        | Some v when v > obs_overhead_gate ->
          incr regressions;
          Printf.printf
            "REGRESSION %s: overhead_mw_per_event %.2f exceeds the %.2f budget\n"
            r.key v obs_overhead_gate
        | Some v ->
          Printf.printf "obs telemetry overhead: %.2f mw/event (budget %.2f)\n"
            v obs_overhead_gate
        | None -> ())
    new_rows

(* The obs-parallel group (PR 10) pays the same per-event budget as the
   sequential obs tap, but for the shard-aware half of the stack: the
   post-run telemetry absorb (labeled per-shard registries, GVT-epoch
   series, health diagnostics) must stay under 2 minor words per shard-0
   event at 4 domains, absolutely, regardless of the baseline. *)
let check_obs_parallel_gates new_rows =
  List.iter
    (fun r ->
      if r.experiment = "obs-parallel-overhead" then
        match List.assoc_opt "overhead_mw_per_event" r.metrics with
        | Some v when v > obs_overhead_gate ->
          incr regressions;
          Printf.printf
            "REGRESSION %s: overhead_mw_per_event %.2f exceeds the %.2f \
             shard-telemetry budget\n"
            r.key v obs_overhead_gate
        | Some v ->
          Printf.printf
            "obs-parallel shard telemetry overhead: %.2f mw/event (budget \
             %.2f)\n"
            v obs_overhead_gate
        | None -> ())
    new_rows

(* The rollback group's claims are absolute, like the obs budget: the
   bound on the depth-64 alloc ratio and the residency bound must hold
   in the new snapshot regardless of what the baseline measured. The
   identity fields (depth, path, impl, bounded) live in the row key. *)
let check_rollback_gates new_rows =
  List.iter
    (fun r ->
      if
        r.experiment = "rollback"
        && contains r.key "depth=64"
        && contains r.key "impl=undo_journal"
        && contains r.key "path=rollback"
      then (
        match List.assoc_opt "alloc_ratio_vs_eager" r.metrics with
        | Some ratio when ratio < rollback_alloc_gate ->
          incr regressions;
          Printf.printf
            "REGRESSION %s: alloc_ratio_vs_eager %.2fx is below the %.1fx \
             floor\n"
            r.key ratio rollback_alloc_gate
        | Some ratio ->
          Printf.printf
            "rollback storage: %.1fx fewer words per rolled-back interval at \
             depth 64 (floor %.1fx)\n"
            ratio rollback_alloc_gate
        | None -> ())
      else if r.experiment = "rollback-residency" then
        if contains r.key "bounded=false" then begin
          incr regressions;
          Printf.printf
            "REGRESSION %s: resident arrivals exceeded the open-speculation \
             bound\n"
            r.key
        end
        else if contains r.key "bounded=true" then
          Printf.printf
            "rollback residency: resident arrivals stayed bounded by open \
             speculation\n")
    new_rows

(* The hybrid group's claims are absolute as well (E16, DESIGN.md §10):
   at the high-skew extreme escalation must pay for itself — the hybrid
   makespan strictly beats pure OCC — and at the low-skew extreme it
   must stay out of the way — within 10% of pure 2PL. Both hold row-by-
   row in the new snapshot regardless of the baseline. *)
let hybrid_low_skew_slack = 1.10

let check_hybrid_gates new_rows =
  List.iter
    (fun r ->
      if r.experiment = "hybrid" then
        let m k = List.assoc_opt k r.metrics in
        match (m "hybrid_ms", m "opt_ms", m "pess_ms") with
        | Some hyb, Some opt, Some pess ->
          if contains r.key "clients=8" && contains r.key "skew=2" then
            if hyb >= opt then begin
              incr regressions;
              Printf.printf
                "REGRESSION %s: hybrid %.2fms does not beat pure OCC %.2fms \
                 at the high-skew extreme\n"
                r.key hyb opt
            end
            else
              Printf.printf
                "hybrid high-skew: %.2fms vs OCC %.2fms (%.0f%% faster)\n" hyb
                opt
                (100. *. (1. -. (hyb /. opt)));
          if contains r.key "clients=4" && contains r.key "skew=0" then
            if hyb > hybrid_low_skew_slack *. pess then begin
              incr regressions;
              Printf.printf
                "REGRESSION %s: hybrid %.2fms exceeds %.2fx of 2PL %.2fms at \
                 the low-skew extreme\n"
                r.key hyb hybrid_low_skew_slack pess
            end
            else
              Printf.printf
                "hybrid low-skew: %.2fms vs 2PL %.2fms (%.2fx, slack %.2fx)\n"
                hyb pess (hyb /. pess) hybrid_low_skew_slack
        | _ -> ())
    new_rows

(* The parallel group's claims (E17, DESIGN.md §11) are absolute in the
   new snapshot. Determinism is unconditional: every domain count must
   commit the identical event set, witnessed by the trace_digest identity
   field and the committed-events metric matching the 1-domain row. The
   throughput claim is conditional on hardware: 4 domains must clear
   [parallel_speedup_gate]x the 1-domain event rate, but only where the
   recorded core count makes the speedup physically possible — on
   smaller machines the ratio is printed informationally. *)
let parallel_speedup_gate = 1.5

(* Identity fields live flattened in the row key (" k=v" pairs, sorted);
   pull one back out by name. *)
let key_field r name =
  let pat = " " ^ name ^ "=" in
  let k = r.key in
  let n = String.length k and m = String.length pat in
  let rec find i =
    if i + m > n then None
    else if String.sub k i m = pat then begin
      let j = ref (i + m) in
      while !j < n && k.[!j] <> ' ' do
        incr j
      done;
      Some (String.sub k (i + m) (!j - i - m))
    end
    else find (i + 1)
  in
  find 0

let check_parallel_gates new_rows =
  let rows = List.filter (fun r -> r.experiment = "parallel") new_rows in
  match List.find_opt (fun r -> key_field r "domains" = Some "1") rows with
  | None ->
    if rows <> [] then begin
      incr regressions;
      Printf.printf
        "REGRESSION parallel: no 1-domain reference row in the new snapshot\n"
    end
  | Some base ->
    let digest r = key_field r "trace_digest" in
    let events r = List.assoc_opt "events" r.metrics in
    List.iter
      (fun r ->
        if digest r <> digest base then begin
          incr regressions;
          Printf.printf
            "REGRESSION %s: trace_digest %s differs from the 1-domain run's \
             %s — the sharded engine is not deterministic\n"
            r.key
            (Option.value ~default:"?" (digest r))
            (Option.value ~default:"?" (digest base))
        end;
        match (events r, events base) with
        | Some e, Some e0 when e <> e0 ->
          incr regressions;
          Printf.printf
            "REGRESSION %s: committed %.0f events but the 1-domain run \
             committed %.0f\n"
            r.key e e0
        | _ -> ())
      rows;
    (match
       ( List.find_opt (fun r -> key_field r "domains" = Some "4") rows,
         List.assoc_opt "events_per_sec" base.metrics )
     with
    | Some quad, Some base_eps when base_eps > 0. -> (
      match List.assoc_opt "events_per_sec" quad.metrics with
      | Some quad_eps ->
        let ratio = quad_eps /. base_eps in
        let cores =
          match List.assoc_opt "cores" quad.metrics with
          | Some c -> int_of_float c
          | None -> 0
        in
        if cores >= 4 then
          if ratio < parallel_speedup_gate then begin
            incr regressions;
            Printf.printf
              "REGRESSION %s: %.2fx event rate at 4 domains is below the \
               %.1fx floor (%d cores)\n"
              quad.key ratio parallel_speedup_gate cores
          end
          else
            Printf.printf
              "parallel speedup: %.2fx event rate at 4 domains (floor %.1fx, \
               %d cores)\n"
              ratio parallel_speedup_gate cores
        else
          Printf.printf
            "parallel speedup: %.2fx event rate at 4 domains (informational: \
             %d core(s) < 4, floor not applied)\n"
            ratio cores
      | None -> ())
    | _ -> ())

let () =
  let old_file, new_file =
    match Sys.argv with
    | [| _; o; n |] -> (o, n)
    | _ -> die "usage: compare OLD.json NEW.json"
  in
  let old_rows = load old_file and new_rows = load new_file in
  let old_tbl = Hashtbl.create 256 in
  List.iter (fun r -> Hashtbl.replace old_tbl r.key r) old_rows;
  let matched = ref 0 in
  List.iter
    (fun nr ->
      match Hashtbl.find_opt old_tbl nr.key with
      | Some orow ->
        incr matched;
        compare_rows ~old_row:orow ~new_row:nr
      | None -> ())
    new_rows;
  report_group_drift old_rows new_rows;
  check_obs_budget new_rows;
  check_obs_parallel_gates new_rows;
  check_rollback_gates new_rows;
  check_hybrid_gates new_rows;
  check_parallel_gates new_rows;
  Printf.printf
    "compared %d matching rows (%d in %s, %d in %s): %d regression(s), %d \
     note(s)\n"
    !matched (List.length old_rows) old_file (List.length new_rows) new_file
    !regressions !notes;
  if !regressions > 0 then exit 1
