(* Minimal JSON emitter for the --json machine-readable bench output.
   No external dependency: the document model below covers everything the
   harness needs, and the printer is deterministic (stable field order,
   fixed float formatting) so committed snapshots diff cleanly. *)

type t =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec emit b ~indent v =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match v with
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.9g" f)
    else Buffer.add_string b "null"
  | Str s ->
    Buffer.add_char b '"';
    add_escaped b s;
    Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_string b "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string b ",\n";
        pad (indent + 2);
        emit b ~indent:(indent + 2) item)
      items;
    Buffer.add_char b '\n';
    pad indent;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string b ",\n";
        pad (indent + 2);
        Buffer.add_char b '"';
        add_escaped b k;
        Buffer.add_string b "\": ";
        emit b ~indent:(indent + 2) item)
      kvs;
    Buffer.add_char b '\n';
    pad indent;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 4096 in
  emit b ~indent:0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let write_file ~file v =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string v))
