(* Minimal JSON emitter for the --json machine-readable bench output.
   No external dependency: the document model below covers everything the
   harness needs, and the printer is deterministic (stable field order,
   fixed float formatting) so committed snapshots diff cleanly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec emit b ~indent v =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.9g" f)
    else Buffer.add_string b "null"
  | Str s ->
    Buffer.add_char b '"';
    add_escaped b s;
    Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_string b "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string b ",\n";
        pad (indent + 2);
        emit b ~indent:(indent + 2) item)
      items;
    Buffer.add_char b '\n';
    pad indent;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string b ",\n";
        pad (indent + 2);
        Buffer.add_char b '"';
        add_escaped b k;
        Buffer.add_string b "\": ";
        emit b ~indent:(indent + 2) item)
      kvs;
    Buffer.add_char b '\n';
    pad indent;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 4096 in
  emit b ~indent:0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let write_file ~file v =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string v))

(* ------------------------------------------------------------------ *)
(* Parsing: just enough JSON to read the snapshots this module writes  *)
(* (bench/compare.exe diffs two committed BENCH_*.json files). Strict   *)
(* about structure, permissive about whitespace.                        *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then error "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 't' -> Buffer.add_char b '\t'
             | 'r' -> Buffer.add_char b '\r'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'u' ->
               if !pos + 4 >= n then error "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
               | Some _ -> Buffer.add_char b '?'  (* non-ASCII: placeholder *)
               | None -> error "bad \\u escape");
               pos := !pos + 4
             | c -> error (Printf.sprintf "bad escape %C" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let is_integral =
      not (String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text)
    in
    if is_integral then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> error "bad number"
    else
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let kvs = ref [ member () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          kvs := member () :: !kvs;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !kvs)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
