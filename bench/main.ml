(* The experiment harness: regenerates every evaluation claim of the paper
   (see DESIGN.md §4 and EXPERIMENTS.md for the claim-to-experiment map).

     dune exec bench/main.exe            -- run all experiment tables
     dune exec bench/main.exe -- e1 e4   -- run a subset
     dune exec bench/main.exe -- micro   -- bechamel micro-benchmarks only

   Experiments measure virtual time on the deterministic simulator, so
   every number below is reproducible bit-for-bit. The bechamel section
   measures real CPU time of the hot paths. *)

module Report = Hope_workloads.Report
module Pipeline = Hope_workloads.Pipeline
module Replication = Hope_workloads.Replication
module Phold = Hope_workloads.Phold
module Recovery = Hope_workloads.Recovery
module Occ = Hope_workloads.Occ
module Scientific = Hope_workloads.Scientific
module Latency = Hope_net.Latency
module Control = Hope_core.Control
module Obs = Hope_obs.Obs
module Recorder = Hope_obs.Recorder
module Analytics = Hope_obs.Analytics
module Monitor = Hope_obs.Monitor
module Engine = Hope_sim.Engine
module Telemetry = Hope_sim.Telemetry
module Metrics = Hope_sim.Metrics

(* --trace support. Every optimistic run below is captured through a
   fresh recorder so its table can print speculation-cost columns; when
   [--trace FILE] is given, the last capture of the last requested
   experiment is exported (runs are deterministic, so the exported trace
   is too). *)
let trace_file : string option ref = ref None
let trace_format = ref Obs.Chrome
let last_recorder : Recorder.t option ref = ref None
let last_monitor : Monitor.t option ref = ref None

(* Every instrumented run also carries a live Monitor riding the
   recorder's tap: the stored stream feeds Analytics post-hoc, the tap
   feeds the online gauges (peak-open column below) — same event stream,
   both consumers. *)
let recorder () =
  let r = Recorder.create () in
  Recorder.enable r;
  let m = Monitor.create () in
  Monitor.attach m r;
  last_recorder := Some r;
  last_monitor := Some m;
  r

let monitor_peak () =
  match !last_monitor with Some m -> Monitor.peak_open_intervals m | None -> 0

(* --json support: every experiment appends one row per printed table
   line; the collected rows are written as a single document on exit so
   the perf trajectory is machine-readable (CI uploads it per-PR and
   BENCH_pr2.json snapshots it in-repo). *)
let json_file : string option ref = ref None
let json_rows : Json_out.t list ref = ref []

let row experiment fields =
  json_rows :=
    Json_out.Obj (("experiment", Json_out.Str experiment) :: fields)
    :: !json_rows

let jint k v = (k, Json_out.Int v)
let jfloat k v = (k, Json_out.Float v)
let jstr k v = (k, Json_out.Str v)
let jbool k v = (k, Json_out.Bool v)

(* wasted% and max-cascade for a captured run. *)
let speculation_cost r =
  let a = Analytics.of_recorder r in
  (100. *. a.Analytics.wasted_ratio, a.Analytics.max_cascade)

let header title claim =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=');
  Printf.printf "claim: %s\n\n" claim

(* --------------------------------------------------------------- *)

let e1 () =
  header "E1: Call Streaming hides RPC latency (Figures 1-2; up to ~70% claim)"
    "the optimistic worker beats synchronous RPC, with the win growing with \
     latency and assumption accuracy; the paper reports up to 70% saved";
  Printf.printf "%-10s %-10s %9s | %12s %12s %8s %8s %9s %8s %9s %10s\n"
    "latency" "accuracy" "sections" "pess (ms)" "opt (ms)" "speedup" "saved%"
    "rollbacks" "wasted%" "max casc" "peak open";
  List.iter
    (fun (lat_name, latency) ->
      List.iter
        (fun page_size ->
          let p = { Report.default_params with page_size } in
          let pess = Report.run ~latency ~mode:`Pessimistic p in
          let obs = recorder () in
          let opt = Report.run ~latency ~obs ~mode:`Optimistic p in
          let wasted, max_cascade = speculation_cost obs in
          let saved =
            100. *. (1. -. (opt.Report.completion_time /. pess.Report.completion_time))
          in
          let peak_open = monitor_peak () in
          Printf.printf
            "%-10s %9.0f%% %9d | %12.2f %12.2f %7.1fx %7.0f%% %9d %7.1f%% %9d \
             %10d\n"
            lat_name
            (100. *. Report.accuracy p)
            p.Report.sections
            (pess.Report.completion_time *. 1e3)
            (opt.Report.completion_time *. 1e3)
            (pess.Report.completion_time /. opt.Report.completion_time)
            saved opt.Report.rollbacks wasted max_cascade peak_open;
          row "e1"
            [
              jstr "latency" lat_name;
              jint "sections" p.Report.sections;
              jfloat "pess_ms" (pess.Report.completion_time *. 1e3);
              jfloat "opt_ms" (opt.Report.completion_time *. 1e3);
              jfloat "saved_pct" saved;
              jint "rollbacks" opt.Report.rollbacks;
              jfloat "wasted_pct" wasted;
              jint "max_cascade" max_cascade;
              jint "peak_open" peak_open;
            ])
        [ 4; 10; 20; 100 ])
    [ ("lan", Latency.lan); ("man", Latency.man); ("wan", Latency.wan) ]

(* --------------------------------------------------------------- *)

let e2 () =
  header "E2: HOPE primitives are wait-free (title claim; §5 design criterion)"
    "no primitive execution ever blocks its process, at any system size; \
     local primitive cost is constant";
  Printf.printf "%-10s %12s %16s %12s %22s %8s %9s\n" "processes" "primitives"
    "primitive-parks" "recv-parks" "virtual cost/primitive" "wasted%" "max casc";
  List.iter
    (fun processes ->
      let obs = recorder () in
      let r = Scenarios.run_e2 ~obs ~processes ~rounds:20 () in
      let wasted, max_cascade = speculation_cost obs in
      Printf.printf "%-10d %12d %16d %12d %19.0f us %7.1f%% %9d\n"
        r.Scenarios.processes r.primitives r.parks r.recv_parks
        (r.virtual_cost_per_primitive *. 1e6)
        wasted max_cascade;
      row "e2"
        [
          jint "processes" r.Scenarios.processes;
          jint "primitives" r.primitives;
          jint "primitive_parks" r.parks;
          jint "recv_parks" r.recv_parks;
          jfloat "wasted_pct" wasted;
          jint "max_cascade" max_cascade;
        ];
      if r.parks <> 0 then failwith "E2: wait-freedom violated!")
    [ 1; 8; 32; 128 ]

(* --------------------------------------------------------------- *)

let e3 () =
  header "E3: control-message cost of deep speculation (§6: \"quadratic in the\n\
          number of intervals and AIDs associated with an affirm\")"
    "messages per interval grow linearly with speculation depth, so the \
     total grows quadratically";
  Printf.printf "%-8s %12s %18s %22s %8s %9s\n" "depth" "intervals"
    "control msgs" "msgs per interval" "wasted%" "max casc";
  List.iter
    (fun depth ->
      let obs = recorder () in
      let r = Scenarios.run_e3 ~obs ~depth () in
      let wasted, max_cascade = speculation_cost obs in
      Printf.printf "%-8d %12d %18d %22.1f %7.1f%% %9d\n" r.Scenarios.depth
        r.intervals r.control_messages r.messages_per_interval wasted
        max_cascade;
      row "e3"
        [
          jint "depth" r.Scenarios.depth;
          jint "intervals" r.intervals;
          jint "control_messages" r.control_messages;
          jfloat "messages_per_interval" r.messages_per_interval;
          jfloat "wasted_pct" wasted;
          jint "max_cascade" max_cascade;
        ])
    [ 2; 4; 8; 16; 32; 64 ]

(* --------------------------------------------------------------- *)

let e4 () =
  header "E4: dependency cycles (Figures 13-14): Algorithm 1 livelocks, \
          Algorithm 2 cuts"
    "interleaved mutual affirms form AID cycles; Algorithm 1 bounces \
     forever (event cap hit), Algorithm 2 detects them via UDO, quiesces, \
     and definitively affirms every cycle member";
  Printf.printf "%-6s %-12s %10s %10s %12s %14s %9s %8s %9s\n" "ring"
    "algorithm" "quiesced" "events" "cycle cuts" "control msgs" "all-True"
    "wasted%" "max casc";
  List.iter
    (fun ring ->
      List.iter
        (fun (name, algorithm) ->
          let obs = recorder () in
          let r = Scenarios.run_e4 ~obs ~ring ~algorithm ~event_cap:200_000 () in
          let wasted, max_cascade = speculation_cost obs in
          Printf.printf "%-6d %-12s %10b %10d %12d %14d %9b %7.1f%% %9d\n"
            r.Scenarios.ring name r.quiesced r.events r.cycle_cuts
            r.control_messages r.all_true wasted max_cascade;
          row "e4"
            [
              jint "ring" r.Scenarios.ring;
              jstr "algorithm" name;
              jbool "quiesced" r.quiesced;
              jint "events" r.events;
              jint "cycle_cuts" r.cycle_cuts;
              jint "control_messages" r.control_messages;
              jbool "all_true" r.all_true;
            ])
        [ ("algorithm-1", Control.Algorithm_1); ("algorithm-2", Control.Algorithm_2) ])
    [ 2; 4; 8; 16 ]

(* --------------------------------------------------------------- *)

let e5 () =
  header "E5: optimism vs assumption accuracy (speculative pipeline)"
    "speculation beats waiting while assumptions are usually right; the \
     crossover appears as accuracy falls and rollback work dominates";
  Printf.printf "%-10s %14s %14s %9s %11s %9s %8s %9s\n" "accuracy" "pess (ms)"
    "spec (ms)" "speedup" "rollbacks" "denials" "wasted%" "max casc";
  List.iter
    (fun accuracy ->
      let p = { Pipeline.default_params with accuracy } in
      let pess = Pipeline.run ~mode:Pipeline.Pessimistic p in
      let obs = recorder () in
      let spec = Pipeline.run ~obs ~mode:(Pipeline.Speculative None) p in
      let wasted, max_cascade = speculation_cost obs in
      Printf.printf "%9.0f%% %14.2f %14.2f %8.2fx %11d %9d %7.1f%% %9d\n"
        (100. *. accuracy)
        (pess.Pipeline.completion_time *. 1e3)
        (spec.Pipeline.completion_time *. 1e3)
        (pess.Pipeline.completion_time /. spec.Pipeline.completion_time)
        spec.Pipeline.rollbacks spec.Pipeline.denials wasted max_cascade;
      row "e5"
        [
          jfloat "accuracy" accuracy;
          jfloat "pess_ms" (pess.Pipeline.completion_time *. 1e3);
          jfloat "spec_ms" (spec.Pipeline.completion_time *. 1e3);
          jint "rollbacks" spec.Pipeline.rollbacks;
          jint "denials" spec.Pipeline.denials;
          jfloat "wasted_pct" wasted;
          jint "max_cascade" max_cascade;
        ])
    [ 1.0; 0.98; 0.95; 0.9; 0.8; 0.6; 0.4; 0.2 ]

(* --------------------------------------------------------------- *)

let e6 () =
  header "E6: speculation scope (§2.1: HOPE's unbounded scope vs static bounds)"
    "bounding outstanding assumptions (Bubenik-style window=1) forfeits \
     most of the win; HOPE's unbounded scope pipelines everything";
  Printf.printf "%-22s %14s %9s %11s %8s %9s\n" "mode" "time (ms)" "speedup"
    "rollbacks" "wasted%" "max casc";
  let p = { Pipeline.default_params with accuracy = 0.95 } in
  let pess = Pipeline.run ~mode:Pipeline.Pessimistic p in
  let base = pess.Pipeline.completion_time in
  Printf.printf "%-22s %14.2f %9s %11d %8s %9s\n" "pessimistic" (base *. 1e3)
    "1.0x" pess.Pipeline.rollbacks "-" "-";
  List.iter
    (fun (name, window) ->
      let obs = recorder () in
      let r = Pipeline.run ~obs ~mode:(Pipeline.Speculative window) p in
      let wasted, max_cascade = speculation_cost obs in
      Printf.printf "%-22s %14.2f %8.2fx %11d %7.1f%% %9d\n" name
        (r.Pipeline.completion_time *. 1e3)
        (base /. r.Pipeline.completion_time)
        r.Pipeline.rollbacks wasted max_cascade;
      row "e6"
        [
          jstr "mode" name;
          jfloat "time_ms" (r.Pipeline.completion_time *. 1e3);
          jfloat "speedup" (base /. r.Pipeline.completion_time);
          jint "rollbacks" r.Pipeline.rollbacks;
          jfloat "wasted_pct" wasted;
          jint "max_cascade" max_cascade;
        ])
    [
      ("window=1 (static)", Some 1);
      ("window=2", Some 2);
      ("window=4", Some 4);
      ("window=8", Some 8);
      ("unbounded (HOPE)", None);
    ]

(* --------------------------------------------------------------- *)

let e7 () =
  header "E7: generality vs overhead — Time Warp [14] vs HOPE on PHOLD"
    "both optimistic engines reproduce the sequential result exactly; the \
     dedicated engine (one wired-in assumption) needs far fewer messages \
     than the general one";
  Printf.printf "%-8s %-12s %8s %10s %11s %10s %14s %9s %8s %9s\n" "remote%"
    "engine" "events" "executed" "rollbacks" "messages" "physical (ms)"
    "correct" "wasted%" "max casc";
  List.iter
    (fun remote_prob ->
      let p = { Phold.default_params with remote_prob } in
      let seq = Phold.run_sequential p in
      let show ?cost name (o : Phold.outcome) =
        let wasted, max_cascade =
          match cost with
          | Some (w, c) -> (Printf.sprintf "%.1f%%" w, string_of_int c)
          | None -> ("-", "-")
        in
        Printf.printf "%-8.0f %-12s %8d %10d %11d %10d %14.2f %9b %8s %9s\n"
          (100. *. remote_prob) name o.Phold.handled_total o.processed
          o.rollbacks o.messages
          (o.physical_time *. 1e3)
          (o.checksums = seq.Phold.checksums)
          wasted max_cascade;
        row "e7"
          [
            jfloat "remote_prob" remote_prob;
            jstr "engine" name;
            jint "events" o.Phold.handled_total;
            jint "executed" o.processed;
            jint "rollbacks" o.rollbacks;
            jint "messages" o.messages;
            jfloat "physical_ms" (o.physical_time *. 1e3);
            jbool "correct" (o.checksums = seq.Phold.checksums);
          ]
      in
      show "sequential" seq;
      show "time-warp" (Phold.run_timewarp p);
      let obs = recorder () in
      let hope = Phold.run_hope ~obs p in
      show ~cost:(speculation_cost obs) "hope" hope)
    [ 0.1; 0.5; 0.9 ]

(* --------------------------------------------------------------- *)

let e8 () =
  header "E8: optimistic replication (reference [5])"
    "optimistic apply wins while conflicts are rare; pessimistic \
     primary-copy wins once rollback work dominates";
  Printf.printf "%-14s %14s %14s %9s %11s %10s\n" "conflict rate" "pess (up/s)"
    "opt (up/s)" "speedup" "rollbacks" "conflicts";
  List.iter
    (fun conflict_rate ->
      let p = { Replication.default_params with conflict_rate } in
      let pess = Replication.run ~mode:`Pessimistic p in
      let opt = Replication.run ~mode:`Optimistic p in
      Printf.printf "%-14.2f %14.0f %14.0f %8.2fx %11d %10d\n" conflict_rate
        pess.Replication.throughput opt.Replication.throughput
        (opt.Replication.throughput /. pess.Replication.throughput)
        opt.Replication.rollbacks opt.Replication.conflicts;
      row "e8"
        [
          jfloat "conflict_rate" conflict_rate;
          jfloat "pess_updates_per_s" pess.Replication.throughput;
          jfloat "opt_updates_per_s" opt.Replication.throughput;
          jint "rollbacks" opt.Replication.rollbacks;
          jint "conflicts" opt.Replication.conflicts;
        ])
    [ 0.0; 0.02; 0.05; 0.1; 0.2; 0.4 ]

(* --------------------------------------------------------------- *)

let e9 () =
  header "E9: optimistic message-logging recovery (Strom & Yemini [20])"
    "delivering before log-stability wins while crashes are rare; crash \
     recovery is rollback re-execution instead of blocking";
  Printf.printf "%-12s %14s %14s %9s %11s %9s\n" "crash rate" "pess (ms)"
    "opt (ms)" "speedup" "rollbacks" "crashes";
  List.iter
    (fun crash_rate ->
      let p = { Recovery.default_params with crash_rate } in
      let pess = Recovery.run ~mode:`Pessimistic p in
      let opt = Recovery.run ~mode:`Optimistic p in
      Printf.printf "%-12.2f %14.2f %14.2f %8.2fx %11d %9d\n" crash_rate
        (pess.Recovery.makespan *. 1e3)
        (opt.Recovery.makespan *. 1e3)
        (pess.Recovery.makespan /. opt.Recovery.makespan)
        opt.Recovery.rollbacks opt.Recovery.crashes;
      row "e9"
        [
          jfloat "crash_rate" crash_rate;
          jfloat "pess_ms" (pess.Recovery.makespan *. 1e3);
          jfloat "opt_ms" (opt.Recovery.makespan *. 1e3);
          jint "rollbacks" opt.Recovery.rollbacks;
          jint "crashes" opt.Recovery.crashes;
        ])
    [ 0.0; 0.02; 0.05; 0.1; 0.2; 0.5 ]

(* --------------------------------------------------------------- *)

let e10 () =
  header "E10: optimistic convergence testing ([6], scientific computing)"
    "workers assume 'not converged' and race ahead of the reduction; the \
     speculation depth adapts to the reduction latency with no tuning";
  Printf.printf "%-8s %14s %14s %9s %18s %11s\n" "latency" "pess (ms)"
    "opt (ms)" "speedup" "wasted iterations" "rollbacks";
  List.iter
    (fun (name, latency) ->
      let p = Scientific.default_params in
      let pess = Scientific.run ~latency ~mode:`Pessimistic p in
      let opt = Scientific.run ~latency ~mode:`Optimistic p in
      Printf.printf "%-8s %14.2f %14.2f %8.2fx %18d %11d\n" name
        (pess.Scientific.makespan *. 1e3)
        (opt.Scientific.makespan *. 1e3)
        (pess.Scientific.makespan /. opt.Scientific.makespan)
        opt.Scientific.wasted_iterations opt.Scientific.rollbacks;
      row "e10"
        [
          jstr "latency" name;
          jfloat "pess_ms" (pess.Scientific.makespan *. 1e3);
          jfloat "opt_ms" (opt.Scientific.makespan *. 1e3);
          jint "wasted_iterations" opt.Scientific.wasted_iterations;
          jint "rollbacks" opt.Scientific.rollbacks;
        ])
    [ ("lan", Latency.lan); ("man", Latency.man); ("wan", Latency.wan) ]

(* --------------------------------------------------------------- *)

let e11 () =
  header "E11: ablations of the implementation's design choices (DESIGN.md §3)"
    "what each engineering decision buys, on the WAN report workload. The \
     terminal-state cache's effect here is message volume only: the Cancel \
     mechanism retracts stale messages at the source on this workload, and \
     the cache's convergence role shows up in adversarial self-messaging \
     patterns (see the chaos suite) rather than in this table";
  let p = Report.default_params in
  let base_config = Hope_core.Runtime.default_config in
  let run_with config =
    Scenarios.run_report_with_config ~latency:Latency.wan ~config p
  in
  Printf.printf "%-38s %12s %12s %11s\n" "configuration" "time (ms)" "messages"
    "rollbacks";
  List.iter
    (fun (name, config) ->
      let time, messages, rollbacks = run_with config in
      Printf.printf "%-38s %12.2f %12d %11d\n" name (time *. 1e3) messages
        rollbacks;
      row "e11"
        [
          jstr "configuration" name;
          jfloat "time_ms" (time *. 1e3);
          jint "messages" messages;
          jint "rollbacks" rollbacks;
        ])
    [
      ("default (cache on, colocated AIDs)", base_config);
      ( "terminal-state cache OFF",
        { base_config with Hope_core.Runtime.cache_terminal_states = false } );
      ( "AIDs on the server's node",
        { base_config with Hope_core.Runtime.aid_placement = Hope_core.Runtime.Fixed_node 1 } );
      ( "buffered speculative denies",
        { base_config with Hope_core.Runtime.buffer_speculative_denies = true } );
    ];
  (* GC effectiveness on the same workload. *)
  let swept, retired = Scenarios.run_report_gc ~latency:Latency.wan p in
  Printf.printf
    "\nAID garbage collection after the run: %d of %d AID processes retired (%.0f%%)\n"
    retired swept
    (100.0 *. float_of_int retired /. float_of_int (max 1 swept));
  row "e11-gc" [ jint "swept" swept; jint "retired" retired ]

(* --------------------------------------------------------------- *)

let e12 () =
  header "E12: optimistic concurrency control ([17], §1's classic example)"
    "OCC-via-HOPE halves the per-transaction round trips of two-phase \
     locking when conflicts are rare — and exposes a cost of generality: \
     the store's rollback chain amplifies each abort into a cascade that \
     a dedicated OCC validator would not pay";
  Printf.printf "%-9s %-8s %14s %14s %9s %8s %11s %11s\n" "clients" "keys"
    "2PL (ms)" "OCC (ms)" "speedup" "aborts" "lock-waits" "rollbacks";
  let row clients keys =
    let p = { Occ.default_params with clients; keys } in
    let pess = Occ.run ~mode:`Pessimistic p in
    let opt = Occ.run ~mode:`Optimistic p in
    Printf.printf "%-9d %-8d %14.2f %14.2f %8.2fx %8d %11d %11d\n" clients keys
      (pess.Occ.makespan *. 1e3)
      (opt.Occ.makespan *. 1e3)
      (pess.Occ.makespan /. opt.Occ.makespan)
      opt.Occ.aborts pess.Occ.lock_waits opt.Occ.rollbacks;
    row "e12"
      [
        jint "clients" clients;
        jint "keys" keys;
        jfloat "pess_ms" (pess.Occ.makespan *. 1e3);
        jfloat "opt_ms" (opt.Occ.makespan *. 1e3);
        jint "aborts" opt.Occ.aborts;
        jint "lock_waits" pess.Occ.lock_waits;
        jint "rollbacks" opt.Occ.rollbacks;
      ]
  in
  row 1 1024;
  List.iter (fun keys -> row 4 keys) [ 1024; 256; 64; 16; 4 ]

(* --------------------------------------------------------------- *)

let e13 () =
  header "E13: ordering hazards on non-FIFO networks (§3.1's Order assumption)"
    "on a reordering network (jittered latencies, no per-pair FIFO), S3 \
     can overtake S1; the WorryWart's free_of(Order) detects each \
     violation and rollback repairs it — the report still completes \
     correctly, at a measurable repair cost";
  Printf.printf "%-22s %14s %14s %18s %11s\n" "network" "pess (ms)" "opt (ms)"
    "order violations" "rollbacks";
  (* Latency jitter makes this experiment seed-sensitive: report the mean
     over five seeds. *)
  let p = Report.default_params in
  let jittery = Latency.Lognormal { median = 2e-3; sigma = 0.8 } in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let mean f = List.fold_left (fun a s -> a +. f s) 0.0 seeds /. 5.0 in
  List.iter
    (fun (name, fifo) ->
      let pess seed =
        (Report.run ~seed ~latency:jittery ~fifo ~mode:`Pessimistic p)
          .Report.completion_time
      in
      let opt seed = Report.run ~seed ~latency:jittery ~fifo ~mode:`Optimistic p in
      let opt_time s = (opt s).Report.completion_time in
      let violations s = float_of_int (opt s).Report.order_violations in
      let rollbacks s = float_of_int (opt s).Report.rollbacks in
      Printf.printf "%-22s %14.2f %14.2f %18.1f %11.1f\n" name
        (mean pess *. 1e3) (mean opt_time *. 1e3) (mean violations)
        (mean rollbacks);
      row "e13"
        [
          jstr "network" name;
          jfloat "pess_ms" (mean pess *. 1e3);
          jfloat "opt_ms" (mean opt_time *. 1e3);
          jfloat "order_violations" (mean violations);
          jfloat "rollbacks" (mean rollbacks);
        ])
    [ ("FIFO (TCP-like)", true); ("non-FIFO (UDP-like)", false) ]

(* --------------------------------------------------------------- *)
(* Bechamel micro-benchmarks: real CPU cost of the hot paths.       *)
(* --------------------------------------------------------------- *)

(* bechamel 0.5.0's [minor_allocated] reads [(Gc.quick_stat ()).minor_words],
   which on OCaml 5 only advances at minor collections — workloads that
   allocate less than a minor heap per measurement batch read a flat
   counter and OLS-fit to 0. [Gc.minor_words ()] reads the domain-local
   allocation pointer and is exact, so register our own measure. *)
module Minor_words_exact = struct
  type witness = unit

  let label () = "minor-words-exact"
  let unit () = "mnw"
  let make () = ()
  let load () = ()
  let unload () = ()
  let get () = Gc.minor_words ()
end

let minor_words_instance =
  Bechamel.Measure.instance
    (module Minor_words_exact)
    (Bechamel.Measure.register (module Minor_words_exact))

(* Run one thunk under bechamel and return (ns/run, minor words/run)
   OLS estimates. *)
let measure_ns_and_words ~name fn =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage fn) in
  let instances = [ Toolkit.Instance.monotonic_clock; minor_words_instance ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
  let estimate instance =
    let analyzed =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        instance results
    in
    Hashtbl.fold
      (fun _name result acc ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Some est
        | Some _ | None -> acc)
      analyzed None
  in
  (estimate Toolkit.Instance.monotonic_clock, estimate minor_words_instance)

let micro () =
  header "MICRO: real CPU cost of the hot paths (bechamel)"
    "one Test.make per experiment family: the pure machines that every \
     table above exercises, measured in wall-clock nanoseconds and minor \
     words per run";
  let cases =
    [
      ( "e1:report-section-optimistic",
        fun () ->
          ignore
            (Report.run ~mode:`Optimistic
               { Report.default_params with sections = 5 }
              : Report.result) );
      ( "e2:guess-affirm-round",
        fun () -> ignore (Scenarios.run_e2 ~processes:1 ~rounds:5 ()) );
      ("e3:speculation-depth-8", fun () -> ignore (Scenarios.run_e3 ~depth:8 ()));
      ( "e4:ring-4-algorithm-2",
        fun () ->
          ignore
            (Scenarios.run_e4 ~ring:4 ~algorithm:Control.Algorithm_2
               ~event_cap:200_000 ()) );
      ( "e5:pipeline-10-tasks",
        fun () ->
          ignore
            (Pipeline.run ~mode:(Pipeline.Speculative None)
               { Pipeline.default_params with tasks = 10 }
              : Pipeline.result) );
      ( "e7:timewarp-phold",
        fun () ->
          ignore
            (Phold.run_timewarp { Phold.default_params with horizon = 3.0 }
              : Phold.outcome) );
      ( "e8:replication-2x10",
        fun () ->
          ignore
            (Replication.run ~mode:`Optimistic
               { Replication.default_params with replicas = 2; updates = 10 }
              : Replication.result) );
    ]
  in
  List.iter
    (fun (name, fn) ->
      match measure_ns_and_words ~name fn with
      | Some ns, Some words ->
        Printf.printf "%-32s %12.0f ns/run %14.0f mw/run\n" name ns words;
        row "micro"
          [ jstr "name" name; jfloat "ns_per_run" ns; jfloat "minor_words_per_run" words ]
      | _ -> Printf.printf "%-32s (no estimate)\n" name)
    cases

(* --------------------------------------------------------------- *)
(* TAGGING: the dependency-set data path (hash-consed hybrid sets    *)
(* + History cumulative cache vs the seed's per-send Set.Make fold). *)
(* --------------------------------------------------------------- *)

let tagging () =
  header "TAGGING: cumulative-tag-set cost per speculative send"
    "every speculative send tags the message with the union of all live \
     IDO sets; the hash-consed sets plus the History cache must cut \
     allocations per tagged send by >=2x at depth 64 versus the previous \
     per-send Set.Make fold";
  let open Hope_types in
  let module History = Hope_core.History in
  let module Tree = Set.Make (struct
    type t = Aid.t

    let compare = Aid.compare
  end) in
  let aid k = Aid.of_proc (Proc_id.of_int (1000 + k)) in
  (* When this group runs after the full experiment suite the major heap
     is large and minor collections dominate both sides equally; compact
     first so the per-send numbers are closer to the standalone run. *)
  Gc.compact ();
  Printf.printf "%-6s %-26s %12s %18s %12s\n" "depth" "implementation"
    "ns/send" "minor words/send" "alloc ratio";
  List.iter
    (fun depth ->
      (* Interval k inherits the whole cumulative set, so its IDO carries
         k+1 AIDs — the shape Runtime.begin_interval builds. The baseline
         reproduces the seed data path exactly: one Set.Make union fold
         over the live IDO sets per send. *)
      let hist = History.create (Proc_id.of_int 0) in
      let cum = ref Aid.Set.empty in
      let tree_cum = ref Tree.empty in
      let tree_idos = ref [] in
      for k = 0 to depth - 1 do
        cum := Aid.Set.add (aid k) !cum;
        tree_cum := Tree.add (aid k) !tree_cum;
        ignore
          (History.push hist ~kind:History.Explicit ~ido:!cum ~now:0.0
            : History.interval);
        tree_idos := !tree_cum :: !tree_idos
      done;
      let tree_sets = !tree_idos in
      let src = Proc_id.of_int 0 and dst = Proc_id.of_int 1 in
      let send_with tags =
        ignore
          (Envelope.make ~id:0 ~src ~dst
             (Envelope.User { value = Value.Int 42; tags })
            : Envelope.t)
      in
      let baseline () =
        (* tag = fold of per-interval tree sets; the envelope itself is
           included so both sides measure a whole tagged send *)
        ignore (List.fold_left Tree.union Tree.empty tree_sets : Tree.t);
        send_with !cum
      in
      let hope () = send_with (History.cumulative_ido hist) in
      let print_one name ns words ratio =
        Printf.printf "%-6d %-26s %12.1f %18.1f %12s\n" depth name ns words
          ratio
      in
      match
        ( measure_ns_and_words ~name:(Printf.sprintf "base-%d" depth) baseline,
          measure_ns_and_words ~name:(Printf.sprintf "hope-%d" depth) hope )
      with
      | (Some bns, Some bw), (Some hns, Some hw) ->
        let ratio = bw /. Float.max hw 1e-3 in
        print_one "Set.Make fold (seed)" bns bw "1.0";
        print_one "hash-consed cache" hns hw (Printf.sprintf "%.1fx" ratio);
        List.iter
          (fun (impl, ns, words) ->
            row "tagging"
              [
                jint "depth" depth;
                jstr "impl" impl;
                jfloat "ns_per_send" ns;
                jfloat "minor_words_per_send" words;
                jfloat "alloc_ratio_vs_baseline"
                  (if impl = "setmake_fold" then 1.0 else ratio);
              ])
          [ ("setmake_fold", bns, bw); ("hashconsed_cache", hns, hw) ];
        if depth = 64 && ratio < 2.0 then
          Printf.printf
            "WARNING: alloc reduction at depth 64 is %.2fx (< 2x target)\n"
            ratio
      | _ -> Printf.printf "%-6d (no estimate)\n" depth)
    [ 1; 8; 64 ];
  let stats = Aid_set.stats () in
  Printf.printf "\nunion memo: %d hits, %d computed\n"
    stats.Aid_set.unions_memoized stats.Aid_set.unions_computed;
  row "tagging-memo"
    [
      jint "unions_memoized" stats.Aid_set.unions_memoized;
      jint "unions_computed" stats.Aid_set.unions_computed;
    ]

(* --------------------------------------------------------------- *)
(* EVENTS: the event-queue spine itself — the seed's boxed binary    *)
(* heap vs the unboxed 4-ary queue the engine now runs on.           *)
(* --------------------------------------------------------------- *)

let events () =
  header "EVENTS: event-queue churn, boxed binary heap vs unboxed 4-ary queue"
    "hold-model churn (pop the minimum, reschedule at a later time) at a \
     fixed pending-set depth; the old heap allocates a node per push and \
     an option per pop, the new queue stores priorities in a bare float \
     array and pops allocation-free; gate: >=1.5x throughput at depth 4096";
  let module Heap = Hope_sim.Heap in
  let module Equeue = Hope_sim.Equeue in
  Gc.compact ();
  (* Deterministic quasi-random reschedule delays; both sides draw the
     same sequence, so the two queues hold identical pending sets. *)
  let deltas =
    Array.init 1024 (fun i -> 0.5 +. (float_of_int ((i * 7919) land 1023) /. 1024.))
  in
  let churn = 64 in
  Printf.printf "%-8s %-22s %12s %16s %10s\n" "depth" "queue" "ns/event"
    "minor words/event" "speedup";
  List.iter
    (fun depth ->
      let h = Heap.create () in
      let q = Equeue.create ~dummy:(-1) () in
      for i = 0 to depth - 1 do
        Heap.push h ~priority:deltas.(i land 1023) i;
        Equeue.push q ~priority:deltas.(i land 1023) i
      done;
      let hi = ref 0 and qi = ref 0 in
      let heap_thunk () =
        for _ = 1 to churn do
          match Heap.pop h with
          | Some (p, _) ->
            incr hi;
            Heap.push h ~priority:(p +. deltas.(!hi land 1023)) !hi
          | None -> assert false
        done
      in
      let queue_thunk () =
        for _ = 1 to churn do
          let p = Equeue.min_prio q in
          let _v = Equeue.pop_min_exn q in
          incr qi;
          Equeue.push q ~priority:(p +. deltas.(!qi land 1023)) !qi
        done
      in
      match
        ( measure_ns_and_words ~name:(Printf.sprintf "heap-%d" depth) heap_thunk,
          measure_ns_and_words
            ~name:(Printf.sprintf "equeue-%d" depth)
            queue_thunk )
      with
      | (Some hns, Some hw), (Some qns, Some qw) ->
        let per x = x /. float_of_int churn in
        let speedup = hns /. Float.max qns 1e-3 in
        Printf.printf "%-8d %-22s %12.1f %16.2f %10s\n" depth
          "binary heap (seed)" (per hns) (per hw) "1.0";
        Printf.printf "%-8d %-22s %12.1f %16.2f %10s\n" depth
          "4-ary unboxed" (per qns) (per qw)
          (Printf.sprintf "%.2fx" speedup);
        List.iter
          (fun (impl, ns, words) ->
            row "events"
              [
                jint "depth" depth;
                jstr "impl" impl;
                jfloat "ns_per_event" (per ns);
                jfloat "minor_words_per_event" (per words);
                jfloat "speedup_vs_heap"
                  (if impl = "binary_heap" then 1.0 else speedup);
              ])
          [ ("binary_heap", hns, hw); ("equeue_4ary", qns, qw) ];
        if depth = 4096 && speedup < 1.5 then
          Printf.printf
            "WARNING: queue speedup at depth 4096 is %.2fx (< 1.5x gate)\n"
            speedup
      | _ -> Printf.printf "%-8d (no estimate)\n" depth)
    [ 64; 4096; 65536 ]

(* --------------------------------------------------------------- *)
(* OBS: cost of the live-telemetry stack on the engine hot path.     *)
(* --------------------------------------------------------------- *)

let obs_bench () =
  header "OBS: live-telemetry overhead per engine event"
    "an attached health monitor plus the virtual-time sampler must cost \
     <= 2 minor words per executed engine event over the dark baseline \
     (the tap hands the payload to the monitor without materializing an \
     Event.t); the full event store is reported for scale but not gated \
     — it retains every event by design";
  let p = { Report.default_params with sections = 60 } in
  (* Allocation on the deterministic simulator is almost deterministic;
     the residue (interning tables warming up, hashtable growth carried
     across runs) only ever inflates a run, so min-of-3 is the clean
     estimate. *)
  let measure configure =
    let best = ref infinity in
    let events = ref 0 in
    for _ = 1 to 3 do
      let r = Recorder.create () in
      let eng_ref = ref None in
      let on_setup rt =
        let eng = Hope_proc.Scheduler.engine (Hope_core.Runtime.scheduler rt) in
        eng_ref := Some eng;
        configure r eng
      in
      let w0 = Gc.minor_words () in
      ignore
        (Report.run ~obs:r ~latency:Latency.wan ~on_setup ~mode:`Optimistic p
          : Report.result);
      let w1 = Gc.minor_words () in
      (match !eng_ref with
      | Some eng -> events := Engine.events_processed eng
      | None -> failwith "obs bench: workload never installed a runtime");
      best := Float.min !best (w1 -. w0)
    done;
    (!best, !events)
  in
  Gc.compact ();
  let configs =
    [
      ("disabled", fun _ _ -> ());
      ( "monitor+sampler",
        fun r eng ->
          let tele = Telemetry.create ~stride:1e-3 ~recorder:r () in
          Telemetry.install tele eng );
      ("event store", fun r _ -> Recorder.enable r);
    ]
  in
  Printf.printf "%-18s %14s %10s %12s %14s\n" "configuration" "minor words"
    "events" "mw/event" "overhead/evt";
  let results =
    List.map
      (fun (name, configure) ->
        let words, events = measure configure in
        (name, words, events))
      configs
  in
  let base_words =
    match results with ("disabled", w, _) :: _ -> w | _ -> assert false
  in
  let overhead = ref 0.0 in
  List.iter
    (fun (name, words, events) ->
      let per = words /. float_of_int (max 1 events) in
      let over = (words -. base_words) /. float_of_int (max 1 events) in
      if name = "monitor+sampler" then overhead := over;
      Printf.printf "%-18s %14.0f %10d %12.2f %14.2f\n" name words events per
        over;
      row "obs"
        [
          jstr "config" name;
          jfloat "minor_words" words;
          jint "events" events;
          jfloat "minor_words_per_event" per;
          jfloat "overhead_mw_per_event" over;
        ])
    results;
  Printf.printf
    "\nmonitor+sampler overhead: %.2f minor words/event (gate: <= 2.00)\n"
    !overhead;
  row "obs-overhead"
    [
      jfloat "overhead_mw_per_event" !overhead;
      jfloat "gate_mw_per_event" 2.0;
      jbool "pass" (!overhead <= 2.0);
    ];
  if !overhead > 2.0 then
    Printf.printf
      "WARNING: live-telemetry overhead is %.2f minor words/event (> 2.00 gate)\n"
      !overhead

(* --------------------------------------------------------------- *)
(* GOV / E14: the governor under adversarial load (PR 6).           *)
(* --------------------------------------------------------------- *)

module Adversary = Hope_gov.Adversary

let gov () =
  header "E14 (gov): governor-on vs governor-off under adversarial load"
    "under the injected Algorithm-1 bounce the governor's churn-driven \
     cycle cut commits every interval where the ungoverned run livelocks; \
     under hostile denials, forged rollbacks, and flash crowds it keeps \
     the run legal while gating guesses, stalling sends, or cutting \
     cycles as policy demands";
  Printf.printf "%-16s %-10s %8s %6s %7s %6s %7s %5s %5s %6s\n" "scenario"
    "governor" "events" "final" "rolled" "gated" "stalls" "cuts" "peak"
    "legal";
  List.iter
    (fun sc ->
      List.iter
        (fun governed ->
          let o = Adversary.run ~governed sc in
          Printf.printf "%-16s %-10s %8d %6d %7d %6d %7d %5d %5d %6b\n"
            o.Adversary.scenario
            (if governed then "on" else "off")
            o.Adversary.events o.Adversary.finalized o.Adversary.rolled_back
            o.Adversary.gated o.Adversary.send_stalls o.Adversary.forced_cuts
            o.Adversary.peak_open o.Adversary.legal;
          row "gov"
            [
              jstr "scenario" o.Adversary.scenario;
              jbool "governed" governed;
              jint "events" o.Adversary.events;
              jint "guesses" o.Adversary.guesses;
              jint "finalized" o.Adversary.finalized;
              jint "rolled_back" o.Adversary.rolled_back;
              jint "gated" o.Adversary.gated;
              jint "send_stalls" o.Adversary.send_stalls;
              jint "forced_cuts" o.Adversary.forced_cuts;
              jint "peak_open" o.Adversary.peak_open;
              jint "compactions" o.Adversary.compactions;
              jint "arrivals_reclaimed" o.Adversary.arrivals_reclaimed;
              jbool "quiesced" o.Adversary.quiesced;
              jbool "legal" o.Adversary.legal;
            ])
        [ false; true ])
    Adversary.all

(* --------------------------------------------------------------- *)
(* E15 (rollback): incremental undo-journal storage vs the seed's    *)
(* eager per-interval tables (PR 7).                                 *)
(* --------------------------------------------------------------- *)

let rollback_bench () =
  header "E15 (rollback): journal suffix walk vs eager full-mailbox scan"
    "rollback and finalize must cost proportional to the records the \
     rolled (or released) intervals own: >=2x fewer minor words per \
     rolled-back interval at depth 64 than the eager storage the journal \
     replaced (Interval_id.Set over a full mailbox scan plus Hashtbl \
     churn), and a finalize-heavy 10k-message stream must keep resident \
     arrivals bounded by open speculation";
  let open Hope_types in
  let module Journal = Hope_proc.Journal in
  let module A = struct
    (* stand-in for the scheduler's arrival record: only the claim field
       matters to either storage scheme *)
    type arrival = { mutable owner : Interval_id.t option }
  end in
  Gc.compact ();
  (* Both sides store and undo the same speculative shape: [depth] nested
     intervals, each claiming [claims_per] arrivals out of a
     [resident]-entry mailbox and recording [sends_per] outgoing sends.
     One cycle = open everything, then undo everything — by rollback
     (journal suffix walk vs rolled-id set + full mailbox scan + send-list
     retrieval) or by finalize oldest-first (segment release vs the
     forget_sends/forget_checkpoint pair of Hashtbl removes). *)
  let resident = 256 in
  let claims_per = 2 and sends_per = 2 in
  Printf.printf "%-6s %-9s %-22s %12s %16s %12s\n" "depth" "path"
    "implementation" "ns/interval" "mw/interval" "alloc ratio";
  List.iter
    (fun depth ->
      let d = float_of_int depth in
      let iids =
        Array.init depth (fun k ->
            Interval_id.make ~owner:(Proc_id.of_int 7) ~seq:(k + 1))
      in
      let rolled = Array.to_list iids (* oldest first *) in
      let owner_opts = Array.map (fun iid -> Some iid) iids in
      (* -- journal side ------------------------------------------- *)
      let mailbox_j = Array.init resident (fun _ -> { A.owner = None }) in
      let j = Journal.create ~dummy:{ A.owner = None } ~dummy_ck:() () in
      let fill_journal () =
        for k = 0 to depth - 1 do
          Journal.open_segment j ~iid:iids.(k) ~ck:();
          for i = 0 to claims_per - 1 do
            let a = mailbox_j.((k * claims_per) + i) in
            a.A.owner <- owner_opts.(k);
            Journal.push_consume j a
          done;
          for i = 0 to sends_per - 1 do
            Journal.push_send j ~msg_id:((k * sends_per) + i) ~dst:1
          done
        done
      in
      let journal_rollback () =
        fill_journal ();
        ignore
          (Journal.rollback_to j iids.(0)
             ~consume:(fun a -> a.A.owner <- None)
             ~send:(fun ~msg_id:_ ~dst:_ -> ())
            : (unit * int) option)
      in
      let journal_finalize () =
        fill_journal ();
        Array.iter
          (fun iid ->
            ignore
              (Journal.release_oldest j iid ~consume:(fun a ->
                   a.A.owner <- None)
                : bool))
          iids
      in
      (* -- eager side (the storage scheme the journal replaced) ---- *)
      let mailbox_e = Array.init resident (fun _ -> { A.owner = None }) in
      let ckpts : (Interval_id.t, unit) Hashtbl.t = Hashtbl.create 64 in
      let sends : (Interval_id.t, (int * int) list) Hashtbl.t =
        Hashtbl.create 64
      in
      let fill_eager () =
        for k = 0 to depth - 1 do
          Hashtbl.replace ckpts iids.(k) ();
          for i = 0 to claims_per - 1 do
            mailbox_e.((k * claims_per) + i).A.owner <- owner_opts.(k)
          done;
          for i = 0 to sends_per - 1 do
            let existing =
              try Hashtbl.find sends iids.(k) with Not_found -> []
            in
            Hashtbl.replace sends iids.(k)
              ((((k * sends_per) + i), 1) :: existing)
          done
        done
      in
      let eager_rollback () =
        fill_eager ();
        let rolled_set = Interval_id.Set.of_list rolled in
        Array.iter
          (fun a ->
            match a.A.owner with
            | Some iid when Interval_id.Set.mem iid rolled_set ->
              a.A.owner <- None
            | Some _ | None -> ())
          mailbox_e;
        List.iter
          (fun iid ->
            (match Hashtbl.find_opt sends iid with
            | None -> ()
            | Some outgoing ->
              Hashtbl.remove sends iid;
              List.iter (fun (_msg_id, _dst) -> ()) (List.rev outgoing));
            Hashtbl.remove ckpts iid)
          rolled
      in
      let eager_finalize () =
        fill_eager ();
        List.iter
          (fun iid ->
            Hashtbl.remove sends iid;
            Hashtbl.remove ckpts iid)
          rolled
      in
      let per w = Float.max 0.0 w /. d in
      let emit path (jns, jw) (ens, ew) =
        let ratio = per ew /. Float.max (per jw) 1e-3 in
        Printf.printf "%-6d %-9s %-22s %12.1f %16.2f %12s\n" depth path
          "eager tables (seed)" (ens /. d) (per ew) "1.0";
        Printf.printf "%-6d %-9s %-22s %12.1f %16.2f %12s\n" depth path
          "undo journal" (jns /. d) (per jw)
          (Printf.sprintf "%.1fx" ratio);
        List.iter
          (fun (impl, ns, w) ->
            row "rollback"
              [
                jint "depth" depth;
                jstr "path" path;
                jstr "impl" impl;
                jfloat "ns_per_interval" (ns /. d);
                jfloat "minor_words_per_interval" (per w);
                jfloat "alloc_ratio_vs_eager"
                  (if impl = "eager_tables" then 1.0 else ratio);
              ])
          [ ("eager_tables", ens, ew); ("undo_journal", jns, jw) ];
        if depth = 64 && path = "rollback" && ratio < 2.0 then
          Printf.printf
            "WARNING: rollback alloc reduction at depth 64 is %.2fx (< 2x \
             target)\n"
            ratio
      in
      match
        ( measure_ns_and_words
            ~name:(Printf.sprintf "jr-%d" depth)
            journal_rollback,
          measure_ns_and_words
            ~name:(Printf.sprintf "er-%d" depth)
            eager_rollback,
          measure_ns_and_words
            ~name:(Printf.sprintf "jf-%d" depth)
            journal_finalize,
          measure_ns_and_words
            ~name:(Printf.sprintf "ef-%d" depth)
            eager_finalize )
      with
      | ( (Some jr_ns, Some jr_w),
          (Some er_ns, Some er_w),
          (Some jf_ns, Some jf_w),
          (Some ef_ns, Some ef_w) ) ->
        emit "rollback" (jr_ns, jr_w) (er_ns, er_w);
        emit "finalize" (jf_ns, jf_w) (ef_ns, ef_w)
      | _ -> Printf.printf "%-6d (no estimate)\n" depth)
    [ 1; 8; 64 ];
  (* Residency under a finalize-heavy stream: without epoch compaction
     the mailbox would end at ~10k resident arrivals; with it the bound
     is the compaction threshold once speculation drains. *)
  let c = Scenarios.run_compaction ~messages:10_000 ~burst:50 () in
  Printf.printf
    "\nresidency: %d messages (%d consumed): final resident=%d peak=%d \
     (peak open=%d), %d compactions reclaimed %d arrivals, bounded=%b\n"
    c.Scenarios.messages c.Scenarios.consumed c.Scenarios.resident_final
    c.Scenarios.peak_resident c.Scenarios.peak_open c.Scenarios.compactions
    c.Scenarios.reclaimed c.Scenarios.bounded;
  if not c.Scenarios.bounded then
    Printf.printf
      "WARNING: resident arrivals exceeded the open-speculation bound\n";
  row "rollback-residency"
    [
      jint "messages" c.Scenarios.messages;
      jint "consumed" c.Scenarios.consumed;
      jint "resident_final" c.Scenarios.resident_final;
      jint "peak_resident" c.Scenarios.peak_resident;
      jint "peak_open" c.Scenarios.peak_open;
      jint "compactions" c.Scenarios.compactions;
      jint "arrivals_reclaimed" c.Scenarios.reclaimed;
      jbool "bounded" c.Scenarios.bounded;
    ]

(* --------------------------------------------------------------- *)

let hybrid_bench () =
  header
    "E16: hybrid optimistic/pessimistic execution (DESIGN.md §10, contention \
     sweep)"
    "per-AID escalation to queued acquisition collapses the hot-key retry \
     storm: hybrid beats pure OCC makespan at high skew and matches 2PL \
     within 10% at low skew, where escalation stays idle";
  Printf.printf "%-8s %-6s %12s %12s %12s | %8s %8s %9s %9s %13s\n" "clients"
    "skew" "2PL (ms)" "OCC (ms)" "hybrid (ms)" "aborts" "h-aborts" "h-rolls"
    "escalated" "acquire-waits";
  let point clients skew =
    (* Thinks and store CPU are scaled up from E12 so wasted optimistic
       work is expensive in the two currencies speculation burns: client
       re-think on retry, and shared store cycles per validation. *)
    let p =
      {
        Occ.default_params with
        clients;
        skew;
        think_time = 2e-3;
        store_cost = 0.5e-3;
      }
    in
    let pess = Occ.run ~mode:`Pessimistic p in
    let opt = Occ.run ~mode:`Optimistic p in
    let hyb = Occ.run ~mode:`Hybrid p in
    Printf.printf "%-8d %-6.1f %12.2f %12.2f %12.2f | %8d %8d %9d %9d %13d\n"
      clients skew
      (pess.Occ.makespan *. 1e3)
      (opt.Occ.makespan *. 1e3)
      (hyb.Occ.makespan *. 1e3)
      opt.Occ.aborts hyb.Occ.aborts hyb.Occ.rollbacks hyb.Occ.escalations
      hyb.Occ.acquire_waits;
    row "hybrid"
      [
        jint "clients" clients;
        jfloat "skew" skew;
        jfloat "pess_ms" (pess.Occ.makespan *. 1e3);
        jfloat "opt_ms" (opt.Occ.makespan *. 1e3);
        jfloat "hybrid_ms" (hyb.Occ.makespan *. 1e3);
        jint "opt_aborts" opt.Occ.aborts;
        jint "hybrid_aborts" hyb.Occ.aborts;
        jint "hybrid_rollbacks" hyb.Occ.rollbacks;
        jint "escalations" hyb.Occ.escalations;
        jint "acquire_waits" hyb.Occ.acquire_waits;
      ]
  in
  List.iter
    (fun clients -> List.iter (fun skew -> point clients skew) [ 0.0; 1.2; 2.0 ])
    [ 4; 8 ]

(* --------------------------------------------------------------- *)

let parallel_bench () =
  header
    "E17: sharded multicore engine (Time Warp between OCaml 5 domains)"
    "the sharded executor commits the identical event set — same commit \
     digest, same committed count — at every domain count, and with \
     per-event CPU grain the 4-domain run clears 1.5x the 1-domain event \
     rate on a machine with >= 4 cores";
  let cores = Domain.recommended_domain_count () in
  let p =
    {
      Phold.default_params with
      n_lps = 16;
      jobs = 64;
      remote_prob = 0.5;
      horizon = 40.0;
    }
  in
  let grain = 2000 in
  Printf.printf "cores=%d  lps=%d jobs=%d horizon=%.0f grain=%d\n\n" cores
    p.Phold.n_lps p.Phold.jobs p.Phold.horizon grain;
  Printf.printf "%-8s %10s %10s %11s %9s %11s %13s %8s\n" "domains" "events"
    "processed" "rollbacks" "gvt" "wall (ms)" "events/sec" "speedup";
  let clock = Bechamel.Toolkit.Monotonic_clock.make () in
  let base_rate = ref 0.0 in
  List.iter
    (fun domains ->
      let t0 = Bechamel.Toolkit.Monotonic_clock.get clock in
      let o, r = Phold.run_parallel ~domains ~grain p in
      let t1 = Bechamel.Toolkit.Monotonic_clock.get clock in
      let wall_ns = t1 -. t0 in
      let events_per_sec = float_of_int o.Phold.handled_total /. (wall_ns *. 1e-9) in
      if domains = 1 then base_rate := events_per_sec;
      let speedup =
        if !base_rate > 0. then events_per_sec /. !base_rate else 1.0
      in
      Printf.printf "%-8d %10d %10d %11d %9d %11.2f %13.0f %7.2fx\n" domains
        o.Phold.handled_total o.Phold.processed o.Phold.rollbacks
        r.Hope_shard.Shard.gvt_rounds (wall_ns *. 1e-6) events_per_sec speedup;
      row "parallel"
        [
          jint "domains" domains;
          jint "lps" p.Phold.n_lps;
          jint "jobs" p.Phold.jobs;
          jint "grain" grain;
          jstr "trace_digest"
            (string_of_int (Hope_shard.Shard.commits_digest r));
          jint "cores" cores;
          jint "events" o.Phold.handled_total;
          jint "rollbacks" o.Phold.rollbacks;
          jfloat "wall_ns" wall_ns;
          jfloat "events_per_sec" events_per_sec;
        ])
    [ 1; 2; 4 ]

(* --------------------------------------------------------------- *)
(* OBS-PARALLEL: cost of the shard-aware telemetry stack (PR 10).   *)
(* --------------------------------------------------------------- *)

let obs_parallel_bench () =
  header "OBS-PARALLEL: shard-aware telemetry overhead at 4 domains"
    "absorbing a sharded run into the telemetry stack (per-shard labeled \
     registries plus GVT-epoch time series and health diagnostics) must \
     cost <= 2 minor words per processed event over the dark run — the \
     same per-event budget the sequential tap pays in OBS; the \
     provenance merge into the event store is reported for scale but not \
     gated — it retains every merged commit by design";
  let domains = 4 in
  let p =
    {
      Phold.default_params with
      n_lps = 16;
      jobs = 64;
      remote_prob = 0.5;
      horizon = 40.0;
    }
  in
  Gc.compact ();
  (* One deterministic sharded run; the observability passes under test
     all happen post-join on the calling domain (which also ran shard 0),
     so [Gc.minor_words] deltas around each pass are exact. *)
  let w0 = Gc.minor_words () in
  let _o, r = Phold.run_parallel ~domains p in
  let dark_words = Gc.minor_words () -. w0 in
  let shard0_events =
    Metrics.count
      (Metrics.counter
         (Engine.metrics r.Hope_shard.Shard.engines.(0))
         "shard.events")
  in
  (* Same denominator as the sequential OBS gate: every processed engine
     event (committed or later rolled back), summed across shards — the
     post-run absorb and merge cover all shards' data, so the budget is
     per event of work the whole run did. *)
  let events = r.Hope_shard.Shard.processed in
  let per w = w /. float_of_int (max 1 events) in
  (* Allocation residue (hashtable growth, interning warm-up) only ever
     inflates a pass, so min-of-3 is the clean estimate — same policy as
     the OBS group. *)
  let measure f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let a = Gc.minor_words () in
      f ();
      let b = Gc.minor_words () in
      best := Float.min !best (b -. a)
    done;
    !best
  in
  let absorb_words =
    measure (fun () ->
        let tele = Telemetry.create ~recorder:(Recorder.create ()) () in
        Telemetry.absorb_shards tele ~engines:r.Hope_shard.Shard.engines
          ~samples:r.Hope_shard.Shard.samples)
  in
  let merge_words =
    measure (fun () ->
        let store = Recorder.create () in
        Recorder.enable store;
        Hope_shard.Shard.merge_into store r)
  in
  Printf.printf "domains=%d  processed events=%d (shard 0 ran %d of them)\n\n"
    domains events shard0_events;
  Printf.printf "%-22s %14s %16s\n" "pass" "minor words" "mw/event";
  List.iter
    (fun (name, words) ->
      Printf.printf "%-22s %14.0f %16.2f\n" name words (per words);
      row "obs-parallel"
        [
          jstr "config" name;
          jint "domains" domains;
          jfloat "minor_words" words;
          jint "events" events;
          jfloat "minor_words_per_event" (per words);
        ])
    [
      ("dark run (shard 0)", dark_words);
      ("telemetry absorb", absorb_words);
      ("provenance merge", merge_words);
    ];
  let overhead = per absorb_words in
  Printf.printf
    "\nshard telemetry overhead: %.2f minor words per processed event \
     (gate: <= 2.00)\n"
    overhead;
  row "obs-parallel-overhead"
    [
      jint "domains" domains;
      jfloat "overhead_mw_per_event" overhead;
      jfloat "gate_mw_per_event" 2.0;
      jbool "pass" (overhead <= 2.0);
    ];
  if overhead > 2.0 then
    Printf.printf
      "WARNING: shard telemetry overhead is %.2f minor words/event (> 2.00 \
       gate)\n"
      overhead

(* --------------------------------------------------------------- *)

let experiments =
  [
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e8", e8);
    ("e9", e9);
    ("e10", e10);
    ("e11", e11);
    ("e12", e12);
    ("e13", e13);
    ("micro", micro);
    ("tagging", tagging);
    ("events", events);
    ("obs", obs_bench);
    ("gov", gov);
    ("rollback", rollback_bench);
    ("hybrid", hybrid_bench);
    ("parallel", parallel_bench);
    ("obs-parallel", obs_parallel_bench);
  ]

let () =
  let rec parse names = function
    | [] -> List.rev names
    | "--trace" :: file :: rest ->
      trace_file := Some file;
      parse names rest
    | [ "--trace" ] ->
      Printf.eprintf "--trace requires a file argument\n";
      exit 1
    | "--trace-format" :: fmt :: rest ->
      (match Obs.format_of_string fmt with
      | Ok f ->
        trace_format := f;
        parse names rest
      | Error msg ->
        Printf.eprintf "--trace-format: %s\n" msg;
        exit 1)
    | [ "--trace-format" ] ->
      Printf.eprintf
        "--trace-format requires an argument (chrome|graphml|summary|flame)\n";
      exit 1
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse names rest
    | [ "--json" ] ->
      Printf.eprintf "--json requires a file argument\n";
      exit 1
    | name :: rest -> parse (name :: names) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst experiments
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %S (have: %s)\n" name
          (String.concat ", " (List.map fst experiments));
        exit 1)
    requested;
  (match (!trace_file, !last_recorder) with
  | Some file, Some r ->
    (try Obs.export_file !trace_format ~file (Recorder.events r)
     with Sys_error msg ->
       Printf.eprintf "--trace: cannot write trace: %s\n" msg;
       exit 1);
    Printf.printf "trace (%s, %d events) written to %s\n"
      (Obs.format_name !trace_format)
      (Recorder.size r) file
  | Some file, None ->
    Printf.eprintf "--trace %s: no instrumented experiment was run\n" file;
    exit 1
  | None, _ -> ());
  (match !json_file with
  | Some file ->
    let doc =
      Json_out.Obj
        [
          ("schema", Json_out.Str "hope-bench/1");
          ("experiments", Json_out.List (List.map (fun n -> Json_out.Str n) requested));
          ("rows", Json_out.List (List.rev !json_rows));
        ]
    in
    (try Json_out.write_file ~file doc
     with Sys_error msg ->
       Printf.eprintf "--json: cannot write results: %s\n" msg;
       exit 1);
    Printf.printf "json results (%d rows) written to %s\n"
      (List.length !json_rows) file
  | None -> ());
  print_newline ()
