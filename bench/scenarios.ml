(* Shared scenario builders used by the experiment tables (main.ml) and
   the bechamel micro-benchmarks. Each builds a world, runs it to
   quiescence, and returns the measurements the tables print. *)

open Hope_types
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Scheduler = Hope_proc.Scheduler
module Program = Hope_proc.Program
module Runtime = Hope_core.Runtime
module Invariant = Hope_core.Invariant
module Control = Hope_core.Control
open Program.Syntax

let quiesce_exn ?(max_events = 50_000_000) sched what =
  match Scheduler.run ~max_events sched with
  | Hope_sim.Engine.Quiescent -> ()
  | reason ->
    failwith
      (Format.asprintf "%s did not quiesce: %a" what
         Hope_sim.Engine.pp_stop_reason reason)

(* --------------------------------------------------------------- *)
(* E2: wait-free primitive execution at varying system sizes        *)
(* --------------------------------------------------------------- *)

type e2_result = {
  processes : int;
  primitives : int;
  parks : int;  (** times a HOPE primitive blocked — must be 0 *)
  recv_parks : int;  (** ordinary receive parks, for contrast *)
  virtual_cost_per_primitive : float;
}

(* Every process runs [rounds] guess/affirm cycles on its own assumptions
   while every other process does the same: local HOPE work must not slow
   down or block as the system grows. *)
let run_e2 ?obs ~processes ~rounds () =
  let engine = Engine.create ~seed:17 ?obs () in
  let config = { Scheduler.epoch_1995_config with primitive_cost = 20e-6 } in
  let sched =
    Scheduler.create ~engine ~default_latency:Hope_net.Latency.lan ~config ()
  in
  let rt = Runtime.install sched () in
  let affirmer_body =
    Program.repeat rounds
      (let* env = Program.recv () in
       Program.affirm (Value.to_aid (Envelope.value env)))
  in
  for i = 0 to processes - 1 do
    let affirmer =
      Scheduler.spawn sched ~node:(i mod 8) ~name:(Printf.sprintf "affirmer-%d" i)
        affirmer_body
    in
    ignore
      (Scheduler.spawn sched ~node:(i mod 8) ~name:(Printf.sprintf "guesser-%d" i)
         (Program.repeat rounds
            (let* x = Program.aid_init () in
             let* () = Program.send affirmer (Value.Aid_v x) in
             let* _ = Program.guess x in
             Program.return ()))
        : Proc_id.t)
  done;
  quiesce_exn sched "e2";
  (match Invariant.check_all rt with
  | [] -> ()
  | vs ->
    failwith
      (Format.asprintf "e2 invariants: %a"
         (Format.pp_print_list Invariant.pp_violation)
         vs));
  let m = Engine.metrics engine in
  let primitives = Metrics.find_counter m "hope.primitive_execs" in
  {
    processes = 2 * processes;
    primitives;
    parks = Scheduler.primitive_parks sched;
    recv_parks = Metrics.find_counter m "sched.parks";
    virtual_cost_per_primitive = config.Scheduler.primitive_cost;
  }

(* --------------------------------------------------------------- *)
(* E3: message cost of speculation depth (the §6 quadratic claim)   *)
(* --------------------------------------------------------------- *)

type e3_result = {
  depth : int;
  intervals : int;
  control_messages : int;
  messages_per_interval : float;
}

(* One worker opens [depth] nested assumptions, then a definite resolver
   affirms them all. Interval k carries k dependencies, so registrations
   alone are depth^2/2: messages per interval grow linearly with depth,
   total quadratically — the cost §6 concedes. *)
let run_e3 ?obs ~depth () =
  let engine = Engine.create ~seed:23 ?obs () in
  let sched = Scheduler.create ~engine ~default_latency:Hope_net.Latency.lan () in
  let rt = Runtime.install sched () in
  let resolver =
    Scheduler.spawn sched ~node:1 ~name:"resolver"
      (let* env = Program.recv () in
       let aids = List.map Value.to_aid (Value.to_list (Envelope.value env)) in
       let* () = Program.compute 0.01 in
       Program.iter_list Program.affirm aids)
  in
  ignore
    (Scheduler.spawn sched ~node:0 ~name:"worker"
       (let rec go k acc =
          if k = 0 then
            Program.send resolver
              (Value.List (List.rev_map (fun x -> Value.Aid_v x) acc))
          else
            let* x = Program.aid_init () in
            let* _ = Program.guess x in
            go (k - 1) (x :: acc)
        in
        go depth [])
      : Proc_id.t);
  quiesce_exn sched "e3";
  (match Invariant.check_all rt with
  | [] -> ()
  | vs ->
    failwith
      (Format.asprintf "e3 invariants: %a"
         (Format.pp_print_list Invariant.pp_violation)
         vs));
  let m = Engine.metrics engine in
  let wire_types = [ "guess"; "affirm"; "deny"; "replace"; "rollback" ] in
  let control_messages =
    List.fold_left
      (fun acc ty -> acc + Metrics.find_counter m (Printf.sprintf "hope.msgs.%s" ty))
      0 wire_types
  in
  {
    depth;
    intervals = Metrics.find_counter m "hope.intervals_started";
    control_messages;
    messages_per_interval = float_of_int control_messages /. float_of_int depth;
  }

(* --------------------------------------------------------------- *)
(* E11 helpers: report workload under runtime-configuration ablations *)
(* --------------------------------------------------------------- *)

let run_report_with_config ~latency ~config p =
  let r = Hope_workloads.Report.run ~latency ~hope_config:config ~mode:`Optimistic p in
  ( r.Hope_workloads.Report.completion_time,
    r.Hope_workloads.Report.messages,
    r.Hope_workloads.Report.rollbacks )

let run_report_gc ~latency p =
  let stats = ref (0, 0) in
  ignore
    (Hope_workloads.Report.run ~latency ~mode:`Optimistic p
       ~on_quiescence:(fun rt ->
         let gc = Runtime.collect_garbage rt in
         stats := (gc.Runtime.swept, gc.Runtime.retired))
      : Hope_workloads.Report.result);
  !stats

(* --------------------------------------------------------------- *)
(* E4: mutual-affirm rings — Algorithm 1 vs Algorithm 2 (§5.3)      *)
(* --------------------------------------------------------------- *)

type e4_result = {
  ring : int;
  quiesced : bool;
  events : int;
  cycle_cuts : int;
  control_messages : int;
  all_true : bool;
}

(* [ring] processes each guess their own assumption and speculatively
   affirm their neighbour's, building the cyclic dependency graph of
   Figure 13 at scale. *)
let run_e4 ?obs ~ring ~algorithm ~event_cap () =
  let engine = Engine.create ~seed:31 ?obs () in
  let sched = Scheduler.create ~engine ~default_latency:Hope_net.Latency.lan () in
  let rt =
    Runtime.install sched ~config:{ Runtime.default_config with algorithm } ()
  in
  let member i =
    let* env = Program.recv () in
    let aids = List.map Value.to_aid (Value.to_list (Envelope.value env)) in
    let own = List.nth aids i and next = List.nth aids ((i + 1) mod ring) in
    let* _ = Program.guess own in
    Program.affirm next
  in
  let members =
    List.init ring (fun i ->
        Scheduler.spawn sched ~node:i ~name:(Printf.sprintf "member-%d" i) (member i))
  in
  ignore
    (Scheduler.spawn sched ~node:0 ~name:"coordinator"
       (let* aids =
          Program.fold 1 ring [] (fun acc _ ->
              let+ x = Program.aid_init () in
              x :: acc)
        in
        let payload = Value.List (List.rev_map (fun x -> Value.Aid_v x) aids) in
        Program.iter_list (fun m -> Program.send m payload) members)
      : Proc_id.t);
  let quiesced =
    match Scheduler.run ~max_events:event_cap sched with
    | Hope_sim.Engine.Quiescent -> true
    | Hope_sim.Engine.Event_limit -> false
    | reason ->
      failwith
        (Format.asprintf "e4: unexpected stop %a" Hope_sim.Engine.pp_stop_reason
           reason)
  in
  let m = Engine.metrics engine in
  let wire_types = [ "guess"; "affirm"; "deny"; "replace"; "rollback" ] in
  let control_messages =
    List.fold_left
      (fun acc ty -> acc + Metrics.find_counter m (Printf.sprintf "hope.msgs.%s" ty))
      0 wire_types
  in
  let all_true =
    quiesced
    && List.for_all
         (fun a -> Runtime.aid_state rt a = Hope_core.Aid_machine.True_)
         (Runtime.all_aids rt)
  in
  {
    ring;
    quiesced;
    events = Engine.events_processed engine;
    cycle_cuts = Runtime.cycle_cuts rt;
    control_messages;
    all_true;
  }

(* --------------------------------------------------------------- *)
(* Rollback-storage residency: a finalize-heavy stream              *)
(* --------------------------------------------------------------- *)

type compaction_result = {
  messages : int;
  consumed : int;
  resident_final : int;
  peak_resident : int;
  peak_open : int;
  compactions : int;
  reclaimed : int;
  bounded : bool;  (** resident <= max(threshold, 2*open+1) after every round *)
}

(* A sink consumes a long stream of tagged messages, every one of which
   opens a speculative interval; between bursts the driver finalizes all
   of them, the way the runtime's finalize rule would. Without epoch
   compaction the mailbox retains every arrival ever delivered; with it,
   residency must stay bounded by open speculation (plus the compaction
   threshold), no matter how many messages flow through. Hooks fake the
   minimal runtime: interval per tagged consumption, finalize from
   outside. *)
let run_compaction ?(messages = 10_000) ?(burst = 50) () =
  let engine = Engine.create ~seed:47 () in
  let sched =
    Scheduler.create ~engine ~default_latency:(Hope_net.Latency.Constant 1e-4)
      ~fifo:true ~config:Scheduler.free_config ()
  in
  let iid_seq = ref 0 in
  let stack = ref [] in
  let consumed = ref 0 in
  let sink =
    Scheduler.spawn sched ~node:0 ~name:"sink"
      (let rec loop () =
         let* _ = Program.recv () in
         let* () = Program.lift (fun () -> incr consumed) in
         loop ()
       in
       loop ())
  in
  Scheduler.set_hooks sched
    {
      Scheduler.h_tags = (fun _ -> Aid.Set.empty);
      h_current = (fun _ -> (match !stack with [] -> None | i :: _ -> Some i));
      h_aid_init = (fun _ -> Aid.of_proc (Proc_id.of_int 9_998));
      h_guess = (fun _ _ -> Scheduler.Pessimistic);
      h_send_delay = (fun _ -> 0.0);
      h_implicit =
        (fun pid _ ->
          incr iid_seq;
          let iid = Interval_id.make ~owner:pid ~seq:!iid_seq in
          stack := iid :: !stack;
          Scheduler.Accept (Some iid));
      h_affirm = (fun _ _ -> ());
      h_deny = (fun _ _ -> ());
      h_free_of = (fun _ _ -> ());
      h_control = (fun ~self:_ ~src:_ _ -> ());
      h_cancelled = (fun ~self:_ ~iid:_ ~msg_id:_ -> ());
      h_spawned = (fun _ -> ());
      h_spawn_child = (fun ~parent:_ ~child:_ -> None);
      h_terminated = (fun _ -> ());
    };
  let m = Engine.metrics engine in
  let bounded = ref true in
  let peak_resident = ref 0 in
  let peak_open = ref 0 in
  let tag_seq = ref 0 in
  let sent = ref 0 in
  while !sent < messages do
    for _ = 1 to min burst (messages - !sent) do
      incr sent;
      incr tag_seq;
      let tag = Aid.of_proc (Proc_id.of_int (10_000 + !tag_seq)) in
      Scheduler.send_user sched
        ~src:(Proc_id.of_int 9_999)
        ~dst:sink
        ~tags:(Aid.Set.singleton tag)
        (Value.Int !sent)
    done;
    quiesce_exn sched "compaction scenario";
    peak_open := max !peak_open (Scheduler.open_checkpoints sched sink);
    peak_resident := max !peak_resident (Scheduler.arrivals_resident sched sink);
    (* Finalize-heavy: every interval the burst opened resolves, oldest
       first, exactly as cascade_finalize drains the history window. *)
    List.iter
      (fun iid -> Scheduler.release_interval sched sink iid)
      (List.rev !stack);
    stack := [];
    let resident = Scheduler.arrivals_resident sched sink in
    let open_ = Scheduler.open_checkpoints sched sink in
    if resident > max 64 ((2 * open_) + 1) then bounded := false
  done;
  {
    messages;
    consumed = !consumed;
    resident_final = Scheduler.arrivals_resident sched sink;
    peak_resident = !peak_resident;
    peak_open = !peak_open;
    compactions = Metrics.find_counter m "sched.mailbox_compactions";
    reclaimed = Metrics.find_counter m "sched.arrivals_reclaimed";
    bounded = !bounded;
  }
