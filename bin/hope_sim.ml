(* hope-sim: command-line driver for the HOPE workloads.

   Every experiment in bench/main.ml can be re-run here with custom
   parameters, e.g.

     hope-sim report --latency wan --page-size 10 --mode optimistic
     hope-sim pipeline --accuracy 0.8 --window 4
     hope-sim replication --conflict-rate 0.1 --mode pessimistic
     hope-sim phold --engine hope --jobs 16 --remote 0.9 *)

open Cmdliner
module Report = Hope_workloads.Report
module Pipeline = Hope_workloads.Pipeline
module Replication = Hope_workloads.Replication
module Phold = Hope_workloads.Phold
module Recovery = Hope_workloads.Recovery
module Scientific = Hope_workloads.Scientific
module Occ = Hope_workloads.Occ
module Latency = Hope_net.Latency

let latency_conv =
  let parse = function
    | "local" -> Ok Latency.local
    | "lan" -> Ok Latency.lan
    | "man" -> Ok Latency.man
    | "wan" -> Ok Latency.wan
    | s -> (
      match float_of_string_opt s with
      | Some d when d > 0.0 -> Ok (Latency.Constant d)
      | Some _ | None ->
        Error (`Msg (Printf.sprintf "unknown latency %S (local|lan|man|wan|<seconds>)" s)))
  in
  Arg.conv (parse, fun ppf l -> Latency.pp ppf l)

let latency_arg =
  Arg.(
    value
    & opt latency_conv Latency.wan
    & info [ "latency" ] ~docv:"MODEL" ~doc:"One-way latency: local, lan, man, wan, or seconds.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

(* Shared observability flags: every workload accepts --trace FILE and
   --trace-format, capturing the structured speculation-event stream
   (lib/obs) and exporting it after the run. *)

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Capture the speculation-event stream and write it to $(docv) \
           after the run (see --trace-format).")

let trace_format_arg =
  let parse s =
    match Hope_obs.Obs.format_of_string s with
    | Ok f -> Ok f
    | Error m -> Error (`Msg m)
  in
  let format_conv =
    Arg.conv
      (parse, fun ppf f -> Format.pp_print_string ppf (Hope_obs.Obs.format_name f))
  in
  Arg.(
    value
    & opt format_conv Hope_obs.Obs.Chrome
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:
          "Trace export format: chrome (Perfetto / chrome://tracing JSON), \
           graphml (causal DAG), or summary (text report).")

(* Run [f] against a recorder that is enabled exactly when --trace asked
   for a file, then write the export. *)
let with_obs trace_file trace_format f =
  let obs = Hope_obs.Recorder.create () in
  if Option.is_some trace_file then Hope_obs.Recorder.enable obs;
  let result = f obs in
  Option.iter
    (fun file ->
      (try Hope_obs.Obs.export_file trace_format ~file (Hope_obs.Recorder.events obs)
       with Sys_error msg ->
         Printf.eprintf "hope-sim: cannot write trace: %s\n" msg;
         exit 1);
      Printf.printf "trace (%s, %d events) written to %s\n"
        (Hope_obs.Obs.format_name trace_format)
        (Hope_obs.Recorder.size obs) file)
    trace_file;
  result

(* ----------------------------- report ----------------------------- *)

let report_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("pessimistic", `Pessimistic); ("optimistic", `Optimistic) ]) `Optimistic
      & info [ "mode" ] ~docv:"MODE" ~doc:"pessimistic (Figure 1) or optimistic (Figure 2).")
  in
  let sections_arg =
    Arg.(value & opt int 40 & info [ "sections" ] ~doc:"Report sections.")
  in
  let page_arg =
    Arg.(value & opt int 20 & info [ "page-size" ] ~doc:"Lines per page (sets accuracy).")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Print the speculation report (per-interval fates) after the run.")
  in
  let print_trace_arg =
    Arg.(
      value & flag
      & info [ "print-trace" ]
          ~doc:"Print the wire-level message trace after the run.")
  in
  let run latency seed mode sections page_size explain print_trace trace_file
      trace_format =
    let p = { Report.default_params with sections; page_size } in
    let on_quiescence rt =
      if explain then
        Format.printf "%a@." Hope_core.Explain.pp (Hope_core.Explain.of_runtime rt);
      if print_trace then
        Format.printf "%a@." Hope_sim.Trace.pp
          (Hope_sim.Engine.trace
             (Hope_proc.Scheduler.engine (Hope_core.Runtime.scheduler rt)))
    in
    let r =
      with_obs trace_file trace_format (fun obs ->
          Report.run ~seed ~obs ~latency ~mode ~trace:print_trace ~on_quiescence p)
    in
    Printf.printf
      "report: completion=%.3f ms rollbacks=%d messages=%d guesses=%d (accuracy %.0f%%)\n"
      (r.Report.completion_time *. 1e3)
      r.rollbacks r.messages r.guesses
      (100.0 *. Report.accuracy p)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"The §3.1 page-printing report (Figures 1-2).")
    Term.(
      const run $ latency_arg $ seed_arg $ mode_arg $ sections_arg $ page_arg
      $ explain_arg $ print_trace_arg $ trace_file_arg $ trace_format_arg)

(* ----------------------------- pipeline --------------------------- *)

let pipeline_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("pessimistic", `P); ("speculative", `S) ]) `S
      & info [ "mode" ] ~doc:"pessimistic or speculative.")
  in
  let window_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ] ~doc:"Bound on outstanding assumptions (default unbounded).")
  in
  let tasks_arg = Arg.(value & opt int 50 & info [ "tasks" ] ~doc:"Task count.") in
  let accuracy_arg =
    Arg.(value & opt float 0.9 & info [ "accuracy" ] ~doc:"Validation success probability.")
  in
  let run latency seed mode window tasks accuracy trace_file trace_format =
    let p = { Pipeline.default_params with tasks; accuracy } in
    let mode =
      match mode with `P -> Pipeline.Pessimistic | `S -> Pipeline.Speculative window
    in
    let r =
      with_obs trace_file trace_format (fun obs ->
          Pipeline.run ~seed ~obs ~latency ~mode p)
    in
    Printf.printf "pipeline: completion=%.3f ms rollbacks=%d denials=%d messages=%d\n"
      (r.Pipeline.completion_time *. 1e3)
      r.rollbacks r.denials r.messages
  in
  Cmd.v
    (Cmd.info "pipeline" ~doc:"Speculative task pipeline (experiments E5/E6).")
    Term.(
      const run $ latency_arg $ seed_arg $ mode_arg $ window_arg $ tasks_arg
      $ accuracy_arg $ trace_file_arg $ trace_format_arg)

(* ----------------------------- replication ------------------------ *)

let replication_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("pessimistic", `Pessimistic); ("optimistic", `Optimistic) ]) `Optimistic
      & info [ "mode" ] ~doc:"pessimistic (primary-copy) or optimistic.")
  in
  let conflict_arg =
    Arg.(value & opt float 0.05 & info [ "conflict-rate" ] ~doc:"Conflict probability.")
  in
  let replicas_arg =
    Arg.(value & opt int 4 & info [ "replicas" ] ~doc:"Replica count.")
  in
  let updates_arg =
    Arg.(value & opt int 25 & info [ "updates" ] ~doc:"Updates per replica.")
  in
  let run latency seed mode conflict_rate replicas updates trace_file
      trace_format =
    let p = { Replication.default_params with conflict_rate; replicas; updates } in
    let r =
      with_obs trace_file trace_format (fun obs ->
          Replication.run ~seed ~obs ~latency ~mode p)
    in
    Printf.printf
      "replication: makespan=%.3f ms throughput=%.0f/s rollbacks=%d conflicts=%d\n"
      (r.Replication.makespan *. 1e3)
      r.throughput r.rollbacks r.conflicts
  in
  Cmd.v
    (Cmd.info "replication" ~doc:"Optimistic replication (experiment E8).")
    Term.(
      const run $ latency_arg $ seed_arg $ mode_arg $ conflict_arg $ replicas_arg
      $ updates_arg $ trace_file_arg $ trace_format_arg)

(* ----------------------------- phold ------------------------------ *)

let phold_cmd =
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("sequential", `Seq); ("timewarp", `Tw); ("hope", `Hope) ]) `Tw
      & info [ "engine" ] ~doc:"sequential, timewarp, or hope.")
  in
  let lps_arg = Arg.(value & opt int 4 & info [ "lps" ] ~doc:"Logical processes.") in
  let jobs_arg = Arg.(value & opt int 8 & info [ "jobs" ] ~doc:"Job population.") in
  let remote_arg =
    Arg.(value & opt float 0.5 & info [ "remote" ] ~doc:"Remote-hop probability.")
  in
  let horizon_arg =
    Arg.(value & opt float 10.0 & info [ "horizon" ] ~doc:"Virtual end time.")
  in
  let run seed engine n_lps jobs remote_prob horizon trace_file trace_format =
    let p = { Phold.default_params with n_lps; jobs; remote_prob; horizon } in
    let o =
      with_obs trace_file trace_format (fun obs ->
          match engine with
          | `Seq -> Phold.run_sequential p
          | `Tw -> Phold.run_timewarp ~seed ~obs p
          | `Hope -> Phold.run_hope ~seed ~obs p)
    in
    Printf.printf
      "phold: events=%d executed=%d rollbacks=%d messages=%d physical=%.3f ms checksum0=%d\n"
      o.Phold.handled_total o.processed o.rollbacks o.messages
      (o.physical_time *. 1e3)
      o.checksums.(0)
  in
  Cmd.v
    (Cmd.info "phold" ~doc:"PHOLD discrete-event simulation (experiment E7).")
    Term.(
      const run $ seed_arg $ engine_arg $ lps_arg $ jobs_arg $ remote_arg
      $ horizon_arg $ trace_file_arg $ trace_format_arg)

(* ----------------------------- recovery --------------------------- *)

let recovery_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("pessimistic", `Pessimistic); ("optimistic", `Optimistic) ]) `Optimistic
      & info [ "mode" ] ~doc:"pessimistic (log-then-deliver) or optimistic.")
  in
  let crash_arg =
    Arg.(value & opt float 0.05 & info [ "crash-rate" ] ~doc:"Logging failure probability.")
  in
  let messages_arg =
    Arg.(value & opt int 30 & info [ "messages" ] ~doc:"Messages in the stream.")
  in
  let run latency seed mode crash_rate messages trace_file trace_format =
    let p = { Recovery.default_params with crash_rate; messages } in
    let r =
      with_obs trace_file trace_format (fun obs ->
          Recovery.run ~seed ~obs ~latency ~mode p)
    in
    Printf.printf "recovery: makespan=%.3f ms rollbacks=%d crashes=%d\n"
      (r.Recovery.makespan *. 1e3)
      r.rollbacks r.crashes
  in
  Cmd.v
    (Cmd.info "recovery" ~doc:"Optimistic message-logging recovery (experiment E9).")
    Term.(
      const run $ latency_arg $ seed_arg $ mode_arg $ crash_arg $ messages_arg
      $ trace_file_arg $ trace_format_arg)

(* ----------------------------- scientific ------------------------- *)

let scientific_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("pessimistic", `Pessimistic); ("optimistic", `Optimistic) ]) `Optimistic
      & info [ "mode" ] ~doc:"pessimistic (barrier) or optimistic.")
  in
  let workers_arg = Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker count.") in
  let converge_arg =
    Arg.(value & opt int 12 & info [ "converge-at" ] ~doc:"Iteration that converges.")
  in
  let run latency seed mode workers converge_at trace_file trace_format =
    let p = { Scientific.default_params with workers; converge_at } in
    let r =
      with_obs trace_file trace_format (fun obs ->
          Scientific.run ~seed ~obs ~latency ~mode p)
    in
    Printf.printf
      "scientific: makespan=%.3f ms wasted-iterations=%d rollbacks=%d\n"
      (r.Scientific.makespan *. 1e3)
      r.wasted_iterations r.rollbacks
  in
  Cmd.v
    (Cmd.info "scientific" ~doc:"Optimistic convergence testing (experiment E10).")
    Term.(
      const run $ latency_arg $ seed_arg $ mode_arg $ workers_arg $ converge_arg
      $ trace_file_arg $ trace_format_arg)

(* ----------------------------- occ -------------------------------- *)

let occ_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("2pl", `Pessimistic); ("occ", `Optimistic) ]) `Optimistic
      & info [ "mode" ] ~doc:"2pl (locking) or occ (optimistic).")
  in
  let clients_arg = Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Client count.") in
  let keys_arg =
    Arg.(value & opt int 64 & info [ "keys" ] ~doc:"Key-space size (contention knob).")
  in
  let txns_arg =
    Arg.(value & opt int 15 & info [ "transactions" ] ~doc:"Transactions per client.")
  in
  let run latency seed mode clients keys transactions trace_file trace_format =
    let p = { Occ.default_params with clients; keys; transactions } in
    let r =
      with_obs trace_file trace_format (fun obs ->
          Occ.run ~seed ~obs ~latency ~mode p)
    in
    Printf.printf
      "occ: makespan=%.3f ms committed=%d aborts=%d lock-waits=%d rollbacks=%d\n"
      (r.Occ.makespan *. 1e3)
      r.committed r.aborts r.lock_waits r.rollbacks
  in
  Cmd.v
    (Cmd.info "occ" ~doc:"Optimistic concurrency control vs 2PL (experiment E12).")
    Term.(
      const run $ latency_arg $ seed_arg $ mode_arg $ clients_arg $ keys_arg
      $ txns_arg $ trace_file_arg $ trace_format_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "drive the HOPE optimistic-programming workloads" in
  let info = Cmd.info "hope-sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            report_cmd;
            pipeline_cmd;
            replication_cmd;
            phold_cmd;
            recovery_cmd;
            scientific_cmd;
            occ_cmd;
          ]))
