(* hope-sim: command-line driver for the HOPE workloads.

   Every experiment in bench/main.ml can be re-run here with custom
   parameters, e.g.

     hope-sim report --latency wan --page-size 10 --mode optimistic
     hope-sim pipeline --accuracy 0.8 --window 4
     hope-sim replication --conflict-rate 0.1 --mode pessimistic
     hope-sim phold --engine hope --jobs 16 --remote 0.9

   plus a shared observability surface on every workload: --trace FILE
   (post-hoc event-stream export, "-" for stdout), --metrics FILE
   (OpenMetrics snapshot of the live time series), --watch (periodic
   progress line), --health (exit nonzero on monitor diagnostics) and
   --check (run the Invariant checks after quiescence). *)

open Cmdliner
module Report = Hope_workloads.Report
module Pipeline = Hope_workloads.Pipeline
module Replication = Hope_workloads.Replication
module Phold = Hope_workloads.Phold
module Recovery = Hope_workloads.Recovery
module Scientific = Hope_workloads.Scientific
module Occ = Hope_workloads.Occ
module Latency = Hope_net.Latency
module Telemetry = Hope_sim.Telemetry
module Monitor = Hope_obs.Monitor
module Policy = Hope_gov.Policy
module Governor = Hope_gov.Governor
module Adversary = Hope_gov.Adversary

let latency_conv =
  let parse = function
    | "local" -> Ok Latency.local
    | "lan" -> Ok Latency.lan
    | "man" -> Ok Latency.man
    | "wan" -> Ok Latency.wan
    | s -> (
      match float_of_string_opt s with
      | Some d when d > 0.0 -> Ok (Latency.Constant d)
      | Some _ | None ->
        Error (`Msg (Printf.sprintf "unknown latency %S (local|lan|man|wan|<seconds>)" s)))
  in
  Arg.conv (parse, fun ppf l -> Latency.pp ppf l)

let latency_arg =
  Arg.(
    value
    & opt latency_conv Latency.wan
    & info [ "latency" ] ~docv:"MODEL" ~doc:"One-way latency: local, lan, man, wan, or seconds.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

(* Shared observability flags: every workload accepts the post-hoc trace
   capture of PR 1 plus the live-telemetry surface (time-series metrics,
   watch line, health monitor, invariant checks). *)

type obs_opts = {
  trace_file : string option;
  trace_format : Hope_obs.Obs.format;
  metrics_file : string option;
  watch : float option;
  health : bool;
  check : bool;
  stride : float;
  monitor : Monitor.config;
  governor : Policy.t option;
}

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Capture the speculation-event stream and write it to $(docv) \
           after the run ($(b,-) writes to stdout; see --trace-format).")

let trace_format_arg =
  let parse s =
    match Hope_obs.Obs.format_of_string s with
    | Ok f -> Ok f
    | Error m -> Error (`Msg m)
  in
  let format_conv =
    Arg.conv
      (parse, fun ppf f -> Format.pp_print_string ppf (Hope_obs.Obs.format_name f))
  in
  Arg.(
    value
    & opt format_conv Hope_obs.Obs.Chrome
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:
          "Trace export format: chrome (Perfetto / chrome://tracing JSON), \
           graphml (causal DAG), summary (text report), or flame \
           (collapsed stacks for speedscope / inferno).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Sample the live time series during the run and write an \
           OpenMetrics/Prometheus text snapshot to $(docv) afterwards \
           ($(b,-) writes to stdout).")

let watch_arg =
  Arg.(
    value
    & opt ~vopt:(Some 0.1) (some float) None
    & info [ "watch" ] ~docv:"VSECONDS"
        ~doc:
          "Print a progress line to stderr roughly every $(docv) of \
           virtual time (default 0.1 when given without a value, as \
           $(b,--watch)).")

let health_arg =
  Arg.(
    value & flag
    & info [ "health" ]
        ~doc:
          "Run the online speculation health monitor (bounce livelock, \
           cascade runaway, window growth, stalled intervals) and exit \
           nonzero if it reports any diagnostic.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "After quiescence, run the Hope_core.Invariant checks \
           (wait-freedom, Theorem 5.1, AID finality, quiescence) and \
           exit nonzero on authoritative violations.")

let stride_arg =
  Arg.(
    value
    & opt float 1e-3
    & info [ "sample-stride" ] ~docv:"VSECONDS"
        ~doc:"Virtual-time period of the telemetry sampler (default 1ms).")

(* Monitor thresholds, overridable per run: the defaults are tuned for
   the bench workloads, and an experiment hunting one pathology wants
   its detector hair-triggered without recompiling. *)

let monitor_config_term =
  let d = Monitor.default_config in
  let bounce_flips_arg =
    Arg.(
      value
      & opt int d.Monitor.bounce_flips
      & info [ "bounce-flips" ] ~docv:"N"
          ~doc:
            "Health monitor: state transitions on one AID before flagging \
             deny/re-guess ping-pong.")
  in
  let replace_churn_arg =
    Arg.(
      value
      & opt int d.Monitor.replace_churn
      & info [ "replace-churn" ] ~docv:"N"
          ~doc:
            "Health monitor: Replace resolutions on one AID before flagging \
             an Algorithm-1 bounce livelock (needs $(b,--health)'s deep \
             monitoring).")
  in
  let cascade_limit_arg =
    Arg.(
      value
      & opt int d.Monitor.cascade_limit
      & info [ "cascade-limit" ] ~docv:"N"
          ~doc:
            "Health monitor: intervals rolled by one cascade before flagging \
             a runaway.")
  in
  let window_limit_arg =
    Arg.(
      value
      & opt int d.Monitor.window_limit
      & info [ "window-limit" ] ~docv:"N"
          ~doc:
            "Health monitor: live intervals on one process before flagging \
             window growth.")
  in
  let stall_after_arg =
    Arg.(
      value
      & opt float d.Monitor.stall_after
      & info [ "stall-after" ] ~docv:"VSECONDS"
          ~doc:
            "Health monitor: virtual seconds an interval may stay open \
             before being flagged as stalled.")
  in
  let gvt_stall_events_arg =
    Arg.(
      value
      & opt int d.Monitor.gvt_stall_events
      & info [ "gvt-stall-events" ] ~docv:"N"
          ~doc:
            "Health monitor (parallel engine): events a shard may process \
             between samples without GVT advancing before flagging a GVT \
             stall.")
  in
  let imbalance_ratio_arg =
    Arg.(
      value
      & opt float d.Monitor.imbalance_ratio
      & info [ "imbalance-ratio" ] ~docv:"RATIO"
          ~doc:
            "Health monitor (parallel engine): fastest/slowest shard \
             events-or-lvt-lead ratio that counts as skew; sustained over \
             consecutive GVT epochs it is flagged as shard imbalance.")
  in
  let backpressure_spins_arg =
    Arg.(
      value
      & opt int d.Monitor.backpressure_spins
      & info [ "backpressure-spins" ] ~docv:"N"
          ~doc:
            "Health monitor (parallel engine): full-ring producer spins \
             between samples before flagging mailbox backpressure.")
  in
  let annihilation_limit_arg =
    Arg.(
      value
      & opt int d.Monitor.annihilation_limit
      & info [ "annihilation-limit" ] ~docv:"N"
          ~doc:
            "Health monitor (parallel engine): anti-message annihilations \
             between samples before flagging an annihilation storm.")
  in
  let mk bounce_flips replace_churn cascade_limit window_limit stall_after
      gvt_stall_events imbalance_ratio backpressure_spins annihilation_limit =
    {
      Monitor.bounce_flips;
      replace_churn;
      cascade_limit;
      window_limit;
      stall_after;
      gvt_stall_events;
      imbalance_ratio;
      imbalance_epochs = d.Monitor.imbalance_epochs;
      backpressure_spins;
      annihilation_limit;
    }
  in
  Term.(
    const mk $ bounce_flips_arg $ replace_churn_arg $ cascade_limit_arg
    $ window_limit_arg $ stall_after_arg $ gvt_stall_events_arg
    $ imbalance_ratio_arg $ backpressure_spins_arg $ annihilation_limit_arg)

let governor_conv =
  let parse s =
    match Policy.of_string s with Ok p -> Ok p | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf p.Policy.name)

let governor_arg =
  Arg.(
    value
    & opt ~vopt:(Some Policy.default) (some governor_conv) None
    & info [ "governor" ] ~docv:"PROFILE"
        ~doc:
          "Install the speculation governor: per-AID guess throttling, \
           churn-driven cycle cuts, and history-window send back-pressure, \
           fed by the health monitor. $(docv) is default, aggressive, or \
           conservative (bare $(b,--governor) means default). Implies live \
           telemetry with deep monitoring.")

let obs_opts_term =
  let mk trace_file trace_format metrics_file watch health check stride monitor
      governor =
    {
      trace_file;
      trace_format;
      metrics_file;
      watch;
      health;
      check;
      stride;
      monitor;
      governor;
    }
  in
  Term.(
    const mk $ trace_file_arg $ trace_format_arg $ metrics_arg $ watch_arg
    $ health_arg $ check_arg $ stride_arg $ monitor_config_term $ governor_arg)

(* Deferred failures: post-run surfaces (--health, --check) must not cut
   off the workload's own result line, so they accumulate here and the
   command exits nonzero at the very end. *)
let failures = ref []

let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt

let exit_if_failed () =
  match List.rev !failures with
  | [] -> ()
  | fs ->
    List.iter (fun m -> Printf.eprintf "hope-sim: %s\n" m) fs;
    exit 1

let watch_printer wstride =
  let last = ref neg_infinity in
  fun eng tele ->
    let now = Hope_sim.Engine.now eng in
    if now -. !last >= wstride then begin
      last := now;
      let mon = Telemetry.monitor tele in
      Printf.eprintf
        "[watch] t=%.6fs events=%d open=%d peak=%d live-aids=%d cascades=%d \
         wasted=%.6fs diags=%d\n\
         %!"
        now
        (Hope_sim.Engine.events_processed eng)
        (Monitor.open_intervals mon)
        (Monitor.peak_open_intervals mon)
        (Monitor.live_aids mon) (Monitor.cascades mon)
        (Monitor.wasted_vtime mon)
        (List.length (Monitor.diagnostics mon))
    end

(* Run [f] against a recorder that stores events exactly when --trace
   asked for a file, with live telemetry attached when --metrics /
   --watch / --health asked for it; export and report afterwards. [f]
   receives [~on_setup], which the workload calls with the installed
   runtime — that is where the sampler hooks in and where --check finds
   its runtime. *)
let with_obs opts f =
  let obs = Hope_obs.Recorder.create () in
  if Option.is_some opts.trace_file then Hope_obs.Recorder.enable obs;
  let live =
    Option.is_some opts.metrics_file || Option.is_some opts.watch || opts.health
    || Option.is_some opts.governor
  in
  let tele =
    if live then
      Some
        (Telemetry.create ~config:opts.monitor
           ~deep:(opts.health || Option.is_some opts.governor)
           ~stride:opts.stride ~recorder:obs ())
    else None
  in
  (match (tele, opts.watch) with
  | Some tele, Some wstride -> Telemetry.set_on_sample tele (watch_printer wstride)
  | _ -> ());
  let rt_ref = ref None in
  let gov_ref = ref None in
  let on_setup rt =
    rt_ref := Some rt;
    Option.iter
      (fun tele ->
        Telemetry.install tele
          (Hope_proc.Scheduler.engine (Hope_core.Runtime.scheduler rt));
        Option.iter
          (fun policy -> gov_ref := Some (Governor.install ~policy rt ~tele))
          opts.governor)
      tele
  in
  let result = f ~obs ~tele ~on_setup in
  let absorbed = match tele with Some t -> Telemetry.has_shards t | None -> false in
  (match (!gov_ref, opts.governor) with
  | Some g, _ -> Format.printf "%a@." Governor.pp_summary g
  | None, Some _ ->
    Printf.eprintf
      "hope-sim: note: --governor saw no HOPE runtime (this engine does not \
       expose one), so no governor was installed\n"
  | None, None -> ());
  Option.iter
    (fun file ->
      (try Hope_obs.Obs.export_file opts.trace_format ~file (Hope_obs.Recorder.events obs)
       with Sys_error msg ->
         Printf.eprintf "hope-sim: cannot write trace: %s\n" msg;
         exit 1);
      if file <> "-" then
        Printf.printf "trace (%s, %d events) written to %s\n"
          (Hope_obs.Obs.format_name opts.trace_format)
          (Hope_obs.Recorder.size obs) file)
    opts.trace_file;
  if live && !rt_ref = None && not absorbed then
    Printf.eprintf
      "hope-sim: note: live telemetry saw no HOPE runtime (this engine does \
       not expose one), so time series and stall checks are empty\n";
  Option.iter
    (fun file ->
      let tele = Option.get tele in
      (try Telemetry.write_openmetrics tele ~file
       with Sys_error msg ->
         Printf.eprintf "hope-sim: cannot write metrics: %s\n" msg;
         exit 1);
      if file <> "-" then
        Printf.printf "metrics (%d samples, %d series) written to %s\n"
          (Hope_obs.Timeseries.samples (Telemetry.series tele))
          (List.length (Hope_obs.Timeseries.all (Telemetry.series tele)))
          file)
    opts.metrics_file;
  if opts.health then begin
    let mon = Telemetry.monitor (Option.get tele) in
    match Monitor.diagnostics mon with
    | [] -> Printf.printf "health: ok\n"
    | ds ->
      List.iter
        (fun d -> Format.eprintf "health: %a@." Monitor.pp_diagnostic d)
        ds;
      fail "health: %d diagnostic(s)" (List.length ds)
  end;
  if opts.check then begin
    match !rt_ref with
    | None ->
      fail "--check: this engine exposes no HOPE runtime to check"
    | Some rt ->
      List.iter
        (fun (name, chk, authoritative) ->
          match chk rt with
          | [] -> Printf.printf "check %-12s ok\n" name
          | vs ->
            List.iter
              (fun v ->
                Format.eprintf "check %s: %a@." name
                  Hope_core.Invariant.pp_violation v)
              vs;
            if authoritative then
              fail "check %s: %d violation(s)" name (List.length vs)
            else
              Printf.printf
                "check %-12s %d informational flag(s) (legitimate re-affirms \
                 are possible; DESIGN \xc2\xa73.2)\n"
                name (List.length vs))
        Hope_core.Invariant.all_named
  end;
  result

(* ----------------------------- report ----------------------------- *)

let report_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("pessimistic", `Pessimistic); ("optimistic", `Optimistic) ]) `Optimistic
      & info [ "mode" ] ~docv:"MODE" ~doc:"pessimistic (Figure 1) or optimistic (Figure 2).")
  in
  let sections_arg =
    Arg.(value & opt int 40 & info [ "sections" ] ~doc:"Report sections.")
  in
  let page_arg =
    Arg.(value & opt int 20 & info [ "page-size" ] ~doc:"Lines per page (sets accuracy).")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Print the speculation report (per-interval fates) after the run.")
  in
  let print_trace_arg =
    Arg.(
      value & flag
      & info [ "print-trace" ]
          ~doc:"Print the wire-level message trace after the run.")
  in
  let run latency seed mode sections page_size explain print_trace opts =
    let p = { Report.default_params with sections; page_size } in
    let on_quiescence rt =
      if explain then
        Format.printf "%a@." Hope_core.Explain.pp (Hope_core.Explain.of_runtime rt);
      if print_trace then
        Format.printf "%a@." Hope_sim.Trace.pp
          (Hope_sim.Engine.trace
             (Hope_proc.Scheduler.engine (Hope_core.Runtime.scheduler rt)))
    in
    let r =
      with_obs opts (fun ~obs ~tele:_ ~on_setup ->
          Report.run ~seed ~obs ~latency ~mode ~trace:print_trace ~on_quiescence
            ~on_setup p)
    in
    Printf.printf
      "report: completion=%.3f ms rollbacks=%d messages=%d guesses=%d (accuracy %.0f%%)\n"
      (r.Report.completion_time *. 1e3)
      r.rollbacks r.messages r.guesses
      (100.0 *. Report.accuracy p);
    exit_if_failed ()
  in
  Cmd.v
    (Cmd.info "report" ~doc:"The §3.1 page-printing report (Figures 1-2).")
    Term.(
      const run $ latency_arg $ seed_arg $ mode_arg $ sections_arg $ page_arg
      $ explain_arg $ print_trace_arg $ obs_opts_term)

(* ----------------------------- pipeline --------------------------- *)

let pipeline_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("pessimistic", `P); ("speculative", `S) ]) `S
      & info [ "mode" ] ~doc:"pessimistic or speculative.")
  in
  let window_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ] ~doc:"Bound on outstanding assumptions (default unbounded).")
  in
  let tasks_arg = Arg.(value & opt int 50 & info [ "tasks" ] ~doc:"Task count.") in
  let accuracy_arg =
    Arg.(value & opt float 0.9 & info [ "accuracy" ] ~doc:"Validation success probability.")
  in
  let run latency seed mode window tasks accuracy opts =
    let p = { Pipeline.default_params with tasks; accuracy } in
    let mode =
      match mode with `P -> Pipeline.Pessimistic | `S -> Pipeline.Speculative window
    in
    let r =
      with_obs opts (fun ~obs ~tele:_ ~on_setup ->
          Pipeline.run ~seed ~obs ~latency ~mode ~on_setup p)
    in
    Printf.printf "pipeline: completion=%.3f ms rollbacks=%d denials=%d messages=%d\n"
      (r.Pipeline.completion_time *. 1e3)
      r.rollbacks r.denials r.messages;
    exit_if_failed ()
  in
  Cmd.v
    (Cmd.info "pipeline" ~doc:"Speculative task pipeline (experiments E5/E6).")
    Term.(
      const run $ latency_arg $ seed_arg $ mode_arg $ window_arg $ tasks_arg
      $ accuracy_arg $ obs_opts_term)

(* ----------------------------- replication ------------------------ *)

let replication_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("pessimistic", `Pessimistic); ("optimistic", `Optimistic) ]) `Optimistic
      & info [ "mode" ] ~doc:"pessimistic (primary-copy) or optimistic.")
  in
  let conflict_arg =
    Arg.(value & opt float 0.05 & info [ "conflict-rate" ] ~doc:"Conflict probability.")
  in
  let replicas_arg =
    Arg.(value & opt int 4 & info [ "replicas" ] ~doc:"Replica count.")
  in
  let updates_arg =
    Arg.(value & opt int 25 & info [ "updates" ] ~doc:"Updates per replica.")
  in
  let run latency seed mode conflict_rate replicas updates opts =
    let p = { Replication.default_params with conflict_rate; replicas; updates } in
    let r =
      with_obs opts (fun ~obs ~tele:_ ~on_setup ->
          Replication.run ~seed ~obs ~latency ~mode ~on_setup p)
    in
    Printf.printf
      "replication: makespan=%.3f ms throughput=%.0f/s rollbacks=%d conflicts=%d\n"
      (r.Replication.makespan *. 1e3)
      r.throughput r.rollbacks r.conflicts;
    exit_if_failed ()
  in
  Cmd.v
    (Cmd.info "replication" ~doc:"Optimistic replication (experiment E8).")
    Term.(
      const run $ latency_arg $ seed_arg $ mode_arg $ conflict_arg $ replicas_arg
      $ updates_arg $ obs_opts_term)

(* ----------------------------- phold ------------------------------ *)

let phold_cmd =
  let engine_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("sequential", `Seq);
               ("timewarp", `Tw);
               ("hope", `Hope);
               ("parallel", `Par);
             ])
          `Tw
      & info [ "engine" ]
          ~doc:
            "sequential, timewarp, hope, or parallel (sharded Time Warp \
             across OCaml 5 domains; see --domains).")
  in
  let lps_arg = Arg.(value & opt int 4 & info [ "lps" ] ~doc:"Logical processes.") in
  let jobs_arg = Arg.(value & opt int 8 & info [ "jobs" ] ~doc:"Job population.") in
  let remote_arg =
    Arg.(value & opt float 0.5 & info [ "remote" ] ~doc:"Remote-hop probability.")
  in
  let horizon_arg =
    Arg.(value & opt float 10.0 & info [ "horizon" ] ~doc:"Virtual end time.")
  in
  let domains_arg =
    Arg.(
      value
      & opt int 1
      & info [ "domains" ]
          ~doc:
            "OCaml domains for --engine parallel (deterministic mode: fixed \
             hash-based shard assignment, GVT-epoch merge — the merged trace \
             is byte-identical at any count).")
  in
  let grain_arg =
    Arg.(
      value
      & opt int 0
      & info [ "grain" ]
          ~doc:
            "Synthetic per-event CPU weight (integer-mix iterations) for \
             parallel scaling runs.")
  in
  let run seed engine n_lps jobs remote_prob horizon domains grain opts =
    let p = { Phold.default_params with n_lps; jobs; remote_prob; horizon } in
    let engine = if domains > 1 && engine <> `Par then `Par else engine in
    (* Fail fast on observability flags the selected engine cannot honor,
       with the full support matrix — a silent empty export is worse than
       an error. *)
    let engine_name =
      match engine with
      | `Seq -> "sequential"
      | `Tw -> "timewarp"
      | `Hope -> "hope"
      | `Par -> "parallel"
    in
    let requested =
      List.filter_map
        (fun (flag, on) -> if on then Some flag else None)
        [
          ("--trace", Option.is_some opts.trace_file);
          ("--metrics", Option.is_some opts.metrics_file);
          ("--watch", Option.is_some opts.watch);
          ("--health", opts.health);
          ("--check", opts.check);
          ("--governor", Option.is_some opts.governor);
        ]
    in
    let supported =
      match engine with
      | `Seq -> []
      | `Tw -> [ "--trace" ]
      | `Hope ->
        [ "--trace"; "--metrics"; "--watch"; "--health"; "--check"; "--governor" ]
      | `Par -> [ "--trace"; "--metrics"; "--watch"; "--health" ]
    in
    (match List.filter (fun f -> not (List.mem f supported)) requested with
    | [] -> ()
    | bad ->
      Printf.eprintf
        "hope-sim: %s is not supported with --engine %s\n\
         supported combinations:\n\
        \  --trace                      timewarp, hope, parallel\n\
        \  --metrics --watch --health   hope, parallel\n\
        \  --check --governor           hope\n"
        (String.concat " " bad) engine_name;
      exit 1);
    let o =
      with_obs opts (fun ~obs ~tele ~on_setup ->
          match engine with
          | `Seq -> Phold.run_sequential p
          | `Tw -> Phold.run_timewarp ~seed ~obs p
          | `Hope -> Phold.run_hope ~seed ~obs ~on_setup p
          | `Par ->
            let o, r = Phold.run_parallel ~domains ~seed ~grain p in
            (* the deterministic merged trace: commit records in their
               domain-count-independent order *)
            if Hope_obs.Recorder.enabled obs then
              Hope_shard.Shard.merge_into obs r;
            (* the per-run (non-deterministic) side: per-shard labeled
               instruments, GVT-epoch trajectories, parallel health
               detectors *)
            Option.iter
              (fun tele ->
                Telemetry.absorb_shards tele
                  ~engines:r.Hope_shard.Shard.engines ~samples:r.samples;
                Option.iter
                  (fun _wstride ->
                    (* a sharded run has no live sampler to ride; replay
                       the GVT epochs post-merge instead *)
                    let mon = Telemetry.monitor tele in
                    let by_gvt = Hashtbl.create 32 in
                    let order = ref [] in
                    List.iter
                      (fun (s : Monitor.shard_sample) ->
                        (match Hashtbl.find_opt by_gvt s.sh_gvt with
                        | None ->
                          order := s.sh_gvt :: !order;
                          Hashtbl.add by_gvt s.sh_gvt (ref [ s ])
                        | Some l -> l := s :: !l))
                      r.samples;
                    List.iter
                      (fun gvt ->
                        let ss = !(Hashtbl.find by_gvt gvt) in
                        let events =
                          List.fold_left (fun a s -> a + s.Monitor.sh_events) 0 ss
                        in
                        let wasted =
                          List.fold_left (fun a s -> a + s.Monitor.sh_rolled) 0 ss
                        in
                        let lag =
                          List.fold_left
                            (fun a s -> Float.max a (s.Monitor.sh_lvt -. gvt))
                            0.0 ss
                        in
                        Printf.eprintf
                          "[watch] gvt=%.6fs shards=%d events=%d wasted=%d \
                           lag=%.6fs diags=%d\n\
                           %!"
                          gvt (List.length ss) events wasted lag
                          (List.length (Monitor.diagnostics mon)))
                      (List.rev !order))
                  opts.watch)
              tele;
            o)
    in
    Printf.printf
      "phold: events=%d executed=%d rollbacks=%d messages=%d physical=%.3f ms checksum0=%d\n"
      o.Phold.handled_total o.processed o.rollbacks o.messages
      (o.physical_time *. 1e3)
      o.checksums.(0);
    exit_if_failed ()
  in
  Cmd.v
    (Cmd.info "phold" ~doc:"PHOLD discrete-event simulation (experiment E7).")
    Term.(
      const run $ seed_arg $ engine_arg $ lps_arg $ jobs_arg $ remote_arg
      $ horizon_arg $ domains_arg $ grain_arg $ obs_opts_term)

(* ----------------------------- recovery --------------------------- *)

let recovery_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("pessimistic", `Pessimistic); ("optimistic", `Optimistic) ]) `Optimistic
      & info [ "mode" ] ~doc:"pessimistic (log-then-deliver) or optimistic.")
  in
  let crash_arg =
    Arg.(value & opt float 0.05 & info [ "crash-rate" ] ~doc:"Logging failure probability.")
  in
  let messages_arg =
    Arg.(value & opt int 30 & info [ "messages" ] ~doc:"Messages in the stream.")
  in
  let run latency seed mode crash_rate messages opts =
    let p = { Recovery.default_params with crash_rate; messages } in
    let r =
      with_obs opts (fun ~obs ~tele:_ ~on_setup ->
          Recovery.run ~seed ~obs ~latency ~mode ~on_setup p)
    in
    Printf.printf "recovery: makespan=%.3f ms rollbacks=%d crashes=%d\n"
      (r.Recovery.makespan *. 1e3)
      r.rollbacks r.crashes;
    exit_if_failed ()
  in
  Cmd.v
    (Cmd.info "recovery" ~doc:"Optimistic message-logging recovery (experiment E9).")
    Term.(
      const run $ latency_arg $ seed_arg $ mode_arg $ crash_arg $ messages_arg
      $ obs_opts_term)

(* ----------------------------- scientific ------------------------- *)

let scientific_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("pessimistic", `Pessimistic); ("optimistic", `Optimistic) ]) `Optimistic
      & info [ "mode" ] ~doc:"pessimistic (barrier) or optimistic.")
  in
  let workers_arg = Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker count.") in
  let converge_arg =
    Arg.(value & opt int 12 & info [ "converge-at" ] ~doc:"Iteration that converges.")
  in
  let run latency seed mode workers converge_at opts =
    let p = { Scientific.default_params with workers; converge_at } in
    let r =
      with_obs opts (fun ~obs ~tele:_ ~on_setup ->
          Scientific.run ~seed ~obs ~latency ~mode ~on_setup p)
    in
    Printf.printf
      "scientific: makespan=%.3f ms wasted-iterations=%d rollbacks=%d\n"
      (r.Scientific.makespan *. 1e3)
      r.wasted_iterations r.rollbacks;
    exit_if_failed ()
  in
  Cmd.v
    (Cmd.info "scientific" ~doc:"Optimistic convergence testing (experiment E10).")
    Term.(
      const run $ latency_arg $ seed_arg $ mode_arg $ workers_arg $ converge_arg
      $ obs_opts_term)

(* ----------------------------- occ -------------------------------- *)

let occ_cmd =
  let mode_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("2pl", `Pessimistic); ("occ", `Optimistic); ("hybrid", `Hybrid) ])
          `Optimistic
      & info [ "mode" ]
          ~doc:
            "2pl (locking), occ (optimistic), or hybrid (optimistic with \
             governor-driven per-key escalation to queued acquisition — \
             experiment E16).")
  in
  let clients_arg = Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Client count.") in
  let keys_arg =
    Arg.(value & opt int 64 & info [ "keys" ] ~doc:"Key-space size (contention knob).")
  in
  let txns_arg =
    Arg.(value & opt int 15 & info [ "transactions" ] ~doc:"Transactions per client.")
  in
  let skew_arg =
    Arg.(
      value & opt float 0.0
      & info [ "skew" ]
          ~doc:
            "Zipfian key-popularity exponent (0 = uniform; higher values \
             concentrate traffic on few hot keys).")
  in
  let think_arg =
    Arg.(
      value & opt float Occ.default_params.Occ.think_time
      & info [ "think" ] ~docv:"SECONDS"
          ~doc:
            "Client CPU between snapshot and commit — the cost an \
             optimistic retry re-pays.")
  in
  let store_cost_arg =
    Arg.(
      value & opt float Occ.default_params.Occ.store_cost
      & info [ "store-cost" ] ~docv:"SECONDS"
          ~doc:
            "Store CPU per request — the shared resource every wasted \
             validation burns.")
  in
  let run latency seed mode clients keys transactions skew think_time store_cost
      opts =
    let p =
      {
        Occ.default_params with
        clients;
        keys;
        transactions;
        skew;
        think_time;
        store_cost;
      }
    in
    let r =
      with_obs opts (fun ~obs ~tele:_ ~on_setup ->
          Occ.run ~seed ~obs ~latency ~mode ~on_setup p)
    in
    Printf.printf
      "occ: makespan=%.3f ms committed=%d aborts=%d lock-waits=%d rollbacks=%d \
       escalations=%d acquire-waits=%d\n"
      (r.Occ.makespan *. 1e3)
      r.committed r.aborts r.lock_waits r.rollbacks r.escalations
      r.acquire_waits;
    exit_if_failed ()
  in
  Cmd.v
    (Cmd.info "occ" ~doc:"Optimistic concurrency control vs 2PL (experiment E12/E16).")
    Term.(
      const run $ latency_arg $ seed_arg $ mode_arg $ clients_arg $ keys_arg
      $ txns_arg $ skew_arg $ think_arg $ store_cost_arg $ obs_opts_term)

(* ----------------------------- chaos ------------------------------ *)

let chaos_cmd =
  let adversary_conv =
    let parse s =
      match Adversary.scenario_of_string s with
      | Ok sc -> Ok sc
      | Error m -> Error (`Msg m)
    in
    Arg.conv
      (parse, fun ppf sc -> Format.pp_print_string ppf (Adversary.scenario_name sc))
  in
  let adversary_arg =
    Arg.(
      required
      & opt (some adversary_conv) None
      & info [ "adversary" ] ~docv:"SCENARIO"
          ~doc:
            "Adversarial scenario: bounce (Figure 13's mutual speculative \
             affirms under Algorithm 1), hostile-oracle (deny everything), \
             corruption (forged Rollback messages mid-run), flash-crowd \
             (load spike onto a slow validator), compaction-stress \
             (mass retraction churning one consumer's mailbox), or \
             contention-storm (zipfian clients hammer one guard AID under \
             a deny-everything oracle; escalation to queued acquisition \
             clears it — run with --governor hybrid), or \
             cross-shard-straggler (bursty off-shard deliveries keep \
             undercutting a consumer's virtual time; every straggler must \
             roll back cleanly into a legal configuration, governed or \
             not).")
  in
  let max_events_arg =
    Arg.(
      value
      & opt int 200_000
      & info [ "max-events" ] ~docv:"N"
          ~doc:"Event budget (the ungoverned bounce stops only on this).")
  in
  let expect_arg =
    Arg.(
      value
      & opt (some (enum [ ("healthy", `Healthy); ("diagnostic", `Diagnostic) ])) None
      & info [ "expect" ] ~docv:"WHAT"
          ~doc:
            "Exit nonzero unless the outcome matches: $(b,healthy) (run \
             quiesced into a legal configuration with no bounce diagnostic) \
             or $(b,diagnostic) (the health monitor flagged at least one \
             pathology). CI's chaos job is built on this.")
  in
  let run seed adversary governor max_events expect =
    let governed = Option.is_some governor in
    let policy = Option.value governor ~default:Policy.default in
    let o = Adversary.run ~seed ~policy ~max_events ~governed adversary in
    Format.printf "%a@." Adversary.pp_outcome o;
    (match expect with
    | None -> ()
    | Some `Healthy ->
      if not (o.Adversary.quiesced && o.Adversary.legal) then
        fail "expected healthy: run did not quiesce into a legal configuration";
      if o.Adversary.bounce_flagged then
        fail "expected healthy: bounce-livelock diagnostic tripped"
    | Some `Diagnostic ->
      if o.Adversary.diagnostics = 0 then
        fail "expected a diagnostic: the health monitor stayed silent");
    exit_if_failed ()
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Adversarial scenarios (hostile oracle, forged rollbacks, flash \
          crowds, bounce livelock), governed or not.")
    Term.(
      const run $ seed_arg $ adversary_arg $ governor_arg $ max_events_arg
      $ expect_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "drive the HOPE optimistic-programming workloads" in
  let info = Cmd.info "hope-sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            report_cmd;
            pipeline_cmd;
            replication_cmd;
            phold_cmd;
            recovery_cmd;
            scientific_cmd;
            occ_cmd;
            chaos_cmd;
          ]))
