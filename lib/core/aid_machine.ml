open Hope_types

type state = Cold | Hot | Maybe | True_ | False_

type t = {
  aid : Aid.t;
  mutable state : state;
  mutable dom : Interval_id.Set.t;
  mutable a_ido : Aid.Set.t;
  mutable affirmer : Interval_id.t option;
      (** the interval whose speculative affirm put us in [Maybe] *)
  strict : bool;
  mutable redundant : int;
  mutable user_errors : int;
  mutable retired : bool;
  on_transition : Aid.t -> state -> state -> unit;
      (** observer hook, called as [on_transition aid from to_] at every
          state change (including Maybe-to-Maybe re-affirms); the machine's
          own [aid] is passed back so one shared callback can serve every
          machine *)
}

type action = Reply of { iid : Interval_id.t; wire : Wire.t }

exception User_error of string

let no_transition _ _ _ = ()

let create ?(strict = false) ?(on_transition = no_transition) aid =
  {
    aid;
    state = Cold;
    dom = Interval_id.Set.empty;
    a_ido = Aid.Set.empty;
    affirmer = None;
    strict;
    redundant = 0;
    user_errors = 0;
    retired = false;
    on_transition;
  }

let set_state t next =
  let prev = t.state in
  t.state <- next;
  t.on_transition t.aid prev next

let state_name = function
  | Cold -> "Cold"
  | Hot -> "Hot"
  | Maybe -> "Maybe"
  | True_ -> "True"
  | False_ -> "False"

let user_error t what =
  t.user_errors <- t.user_errors + 1;
  if t.strict then
    raise
      (User_error
         (Printf.sprintf "%s: %s while %s" (Aid.to_string t.aid) what
            (state_name t.state)))

(* Figure 6: Guess message processing. A Guess is a request for the
   terminal state of the AID; until that state is known the sender is
   recorded in DOM. In state Maybe the AID "passes the buck": the sender
   is told to depend on A_IDO instead. *)
let process_guess t iid ~reply =
  match t.state with
  | Cold ->
    t.dom <- Interval_id.Set.singleton iid;
    set_state t Hot
  | Hot -> t.dom <- Interval_id.Set.add iid t.dom
  | Maybe ->
    (* The sender is told to depend on A_IDO instead ("passing the buck"),
       but is still recorded in DOM — a deviation from Figure 6 required
       by revocation: if the speculative affirm is later retracted, every
       rewired dependent must be reachable for the Rebind. Harmless
       otherwise: terminal-state broadcasts to an already-rewired
       dependent are ignored as duplicates by Control. *)
    t.dom <- Interval_id.Set.add iid t.dom;
    reply t.aid iid (Wire.Replace { iid; ido = t.a_ido })
  | True_ -> reply t.aid iid (Wire.Replace { iid; ido = Aid.Set.empty })
  | False_ -> reply t.aid iid (Wire.Rollback { iid })

(* Figure 7: Affirm message processing. An empty M.IDO is a definite
   affirm (terminal state True); a non-empty one is tentative, recorded in
   A_IDO, and every dependent interval is told to replace this AID with
   A_IDO in its own IDO set. *)
let process_affirm t iid ido ~reply =
  match t.state with
  | Cold | Hot | Maybe ->
    t.a_ido <- ido;
    if Aid.Set.is_empty ido then begin
      set_state t True_;
      t.affirmer <- None
    end
    else begin
      set_state t Maybe;
      t.affirmer <- Some iid
    end;
    Interval_id.Set.iter
      (fun b -> reply t.aid b (Wire.Replace { iid = b; ido }))
      t.dom
  | True_ -> t.redundant <- t.redundant + 1
  | False_ -> user_error t "Affirm after Deny"

(* Figure 8: Deny message processing. Denies are unconditional: every
   dependent interval is rolled back and the state becomes final False. *)
let process_deny t ~reply =
  match t.state with
  | Cold | Hot | Maybe ->
    set_state t False_;
    Interval_id.Set.iter (fun b -> reply t.aid b (Wire.Rollback { iid = b })) t.dom
  | False_ -> t.redundant <- t.redundant + 1
  | True_ -> user_error t "Deny after Affirm"

(* Retract a speculative affirm whose interval rolled back: the affirm
   "never happened", so the state returns to Hot and the (re-executed)
   affirmer may rule again. Stale revokes — the Maybe we are in came from
   a different, later affirm — are ignored. Dependents that had swapped
   this AID for its A_IDO roll back through the A_IDO members themselves
   (the revoking interval's failure cause is always among them) and
   re-register on re-execution. *)
let process_revoke t iid ~reply =
  match t.state with
  | Maybe when t.affirmer = Some iid ->
    set_state t Hot;
    t.a_ido <- Aid.Set.empty;
    t.affirmer <- None;
    (* Every dependent was told to depend on A_IDO instead of us; that
       rewiring is now void — they must depend on us again, or they can
       hang on a chain no surviving execution will resolve. *)
    Interval_id.Set.iter (fun b -> reply t.aid b (Wire.Rebind { iid = b })) t.dom
  | Cold | Hot | Maybe | True_ | False_ -> t.redundant <- t.redundant + 1

(* Replies are emitted through the callback (called as
   [reply aid iid wire]: send [wire] to [iid]'s owner on behalf of [aid])
   in DOM order, the same order the list-returning [handle] exposes. The
   callback form is the runtime's hot path: one long-lived callback and no
   action list per message. *)
let handle_into t wire ~reply =
  match wire with
  | Wire.Guess { iid } -> process_guess t iid ~reply
  | Wire.Affirm { iid; ido } -> process_affirm t iid ido ~reply
  | Wire.Deny _ -> process_deny t ~reply
  | Wire.Revoke { iid } -> process_revoke t iid ~reply
  | Wire.Replace _ | Wire.Rollback _ | Wire.Rebind _ ->
    invalid_arg
      (Printf.sprintf "Aid_machine %s: received %s (AID processes only accept \
                       Guess/Affirm/Deny/Revoke)"
         (Aid.to_string t.aid) (Wire.type_name wire))

let handle t wire =
  let acc = ref [] in
  handle_into t wire ~reply:(fun _aid iid wire -> acc := Reply { iid; wire } :: !acc);
  List.rev !acc

let is_final t = match t.state with True_ | False_ -> true | Cold | Hot | Maybe -> false

(* §5.2: a terminal AID process cannot terminate — late Guess messages
   must still be answered — but its tracking sets are dead weight. Retire
   frees them; the terminal state is all the tombstone needs to answer. *)
let retire t =
  if not (is_final t) then
    invalid_arg
      (Printf.sprintf "Aid_machine.retire: %s is still %s" (Aid.to_string t.aid)
         (state_name t.state));
  t.retired <- true;
  t.dom <- Interval_id.Set.empty;
  t.a_ido <- Aid.Set.empty

let pp ppf t =
  Format.fprintf ppf "%a[%s dom=%d a_ido=%a]" Aid.pp t.aid (state_name t.state)
    (Interval_id.Set.cardinal t.dom)
    Aid.Set.pp t.a_ido
