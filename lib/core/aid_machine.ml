open Hope_types

type state = Cold | Hot | Maybe | True_ | False_
type mode = Optimistic | Pessimistic

type t = {
  aid : Aid.t;
  mutable state : state;
  mutable dom : Interval_id.Set.t;
  mutable a_ido : Aid.Set.t;
  mutable affirmer : Interval_id.t option;
      (** the interval whose speculative affirm put us in [Maybe] *)
  strict : bool;
  mutable redundant : int;
  mutable user_errors : int;
  mutable retired : bool;
  on_transition : Aid.t -> state -> state -> unit;
      (** observer hook, called as [on_transition aid from to_] at every
          state change (including Maybe-to-Maybe re-affirms); the machine's
          own [aid] is passed back so one shared callback can serve every
          machine *)
  (* -- pessimistic overlay (DESIGN.md §10) -- *)
  mutable mode : mode;
  mutable holder : Interval_id.t option;
      (** the ticket currently granted exclusive access *)
  waiters : Interval_id.t Queue.t;  (** FIFO acquisition queue (tickets) *)
  mutable cancelled : Interval_id.Set.t;
      (** withdrawn tickets still physically in [waiters]; skipped (and
          forgotten) when they reach the head *)
  mutable queued : int;  (** live (non-cancelled) entries in [waiters] *)
  max_queue : int;
  mutable granted : int;  (** Grant replies sent *)
  mutable aborted : int;  (** Abort replies sent *)
}

type action = Reply of { iid : Interval_id.t; wire : Wire.t }

exception User_error of string

let no_transition _ _ _ = ()

let create ?(strict = false) ?(on_transition = no_transition) ?(max_queue = 64)
    aid =
  {
    aid;
    state = Cold;
    dom = Interval_id.Set.empty;
    a_ido = Aid.Set.empty;
    affirmer = None;
    strict;
    redundant = 0;
    user_errors = 0;
    retired = false;
    on_transition;
    mode = Optimistic;
    holder = None;
    waiters = Queue.create ();
    cancelled = Interval_id.Set.empty;
    queued = 0;
    max_queue;
    granted = 0;
    aborted = 0;
  }

let set_state t next =
  let prev = t.state in
  t.state <- next;
  t.on_transition t.aid prev next

let state_name = function
  | Cold -> "Cold"
  | Hot -> "Hot"
  | Maybe -> "Maybe"
  | True_ -> "True"
  | False_ -> "False"

let user_error t what =
  t.user_errors <- t.user_errors + 1;
  if t.strict then
    raise
      (User_error
         (Printf.sprintf "%s: %s while %s" (Aid.to_string t.aid) what
            (state_name t.state)))

(* Figure 6: Guess message processing. A Guess is a request for the
   terminal state of the AID; until that state is known the sender is
   recorded in DOM. In state Maybe the AID "passes the buck": the sender
   is told to depend on A_IDO instead. *)
let process_guess t iid ~reply =
  match t.state with
  | Cold ->
    t.dom <- Interval_id.Set.singleton iid;
    set_state t Hot
  | Hot -> t.dom <- Interval_id.Set.add iid t.dom
  | Maybe ->
    (* The sender is told to depend on A_IDO instead ("passing the buck"),
       but is still recorded in DOM — a deviation from Figure 6 required
       by revocation: if the speculative affirm is later retracted, every
       rewired dependent must be reachable for the Rebind. Harmless
       otherwise: terminal-state broadcasts to an already-rewired
       dependent are ignored as duplicates by Control. *)
    t.dom <- Interval_id.Set.add iid t.dom;
    reply t.aid iid (Wire.Replace { iid; ido = t.a_ido })
  | True_ -> reply t.aid iid (Wire.Replace { iid; ido = Aid.Set.empty })
  | False_ -> reply t.aid iid (Wire.Rollback { iid })

(* Figure 7: Affirm message processing. An empty M.IDO is a definite
   affirm (terminal state True); a non-empty one is tentative, recorded in
   A_IDO, and every dependent interval is told to replace this AID with
   A_IDO in its own IDO set. *)
let process_affirm t iid ido ~reply =
  match t.state with
  | Cold | Hot | Maybe ->
    t.a_ido <- ido;
    if Aid.Set.is_empty ido then begin
      set_state t True_;
      t.affirmer <- None
    end
    else begin
      set_state t Maybe;
      t.affirmer <- Some iid
    end;
    Interval_id.Set.iter
      (fun b -> reply t.aid b (Wire.Replace { iid = b; ido }))
      t.dom
  | True_ -> t.redundant <- t.redundant + 1
  | False_ -> user_error t "Affirm after Deny"

(* ----------------------------------------------------------------- *)
(* Pessimistic overlay (DESIGN.md §10). Orthogonal to the five-state
   machine above: escalation changes how {e access} to the assumption is
   arbitrated (queued, exclusive, definite), not what is known about its
   truth. Guess/Affirm/Deny/Revoke keep flowing through the state
   machine while the overlay serves Acquire/Release/Abort, so
   speculation opened before escalation still resolves normally. *)

let abort_reply t iid ~reply =
  t.aborted <- t.aborted + 1;
  reply t.aid iid (Wire.Abort { iid })

(* Pop cancelled tickets lazily; grant the first live waiter if the AID
   is free. Cancelled entries are forgotten as they surface, so the
   cancelled set never outlives the queue prefix it annotates. *)
let grant_next t ~reply =
  let rec next () =
    match Queue.take_opt t.waiters with
    | None -> ()
    | Some iid ->
      if Interval_id.Set.mem iid t.cancelled then begin
        t.cancelled <- Interval_id.Set.remove iid t.cancelled;
        next ()
      end
      else begin
        t.queued <- t.queued - 1;
        t.holder <- Some iid;
        t.granted <- t.granted + 1;
        reply t.aid iid (Wire.Grant { iid })
      end
  in
  if t.holder = None then next ()

let abort_all_waiters t ~reply =
  Queue.iter
    (fun iid ->
      if not (Interval_id.Set.mem iid t.cancelled) then abort_reply t iid ~reply)
    t.waiters;
  Queue.clear t.waiters;
  t.cancelled <- Interval_id.Set.empty;
  t.queued <- 0

let process_acquire t iid ~reply =
  if t.mode = Optimistic || t.state = False_ then
    (* De-escalation raced the client's Acquire, or the assumption is
       definitively false: bounce to the pessimistic branch. Every
       Acquire completes as exactly one Grant or Abort. *)
    abort_reply t iid ~reply
  else if t.queued >= t.max_queue then abort_reply t iid ~reply
  else begin
    Queue.add iid t.waiters;
    t.queued <- t.queued + 1;
    (* If the AID is free this grants [iid] immediately (the queue was
       all cancelled tombstones or empty) — the uncontended fast path. *)
    grant_next t ~reply
  end

let in_queue t iid =
  (not (Interval_id.Set.mem iid t.cancelled))
  && Queue.fold (fun acc x -> acc || Interval_id.equal x iid) false t.waiters

(* User → AID Abort: the waiter withdrew (acquire timeout, or its
   process rolled back / terminated while queued). No reply — the client
   already resumed on its side; a Grant that raced this withdrawal is
   declined there with a Release, which lands in the holder case. *)
let process_withdraw t iid ~reply =
  match t.holder with
  | Some h when Interval_id.equal h iid ->
    t.holder <- None;
    grant_next t ~reply
  | _ ->
    if in_queue t iid then begin
      t.cancelled <- Interval_id.Set.add iid t.cancelled;
      t.queued <- t.queued - 1
    end
    else t.redundant <- t.redundant + 1

let process_release t iid ~reply =
  match t.holder with
  | Some h when Interval_id.equal h iid ->
    t.holder <- None;
    grant_next t ~reply
  | _ -> t.redundant <- t.redundant + 1

let escalate t = t.mode <- Pessimistic

(* Contention subsided: abort every queued waiter (they re-enter through
   the optimistic guess path) and stop accepting Acquires. The current
   holder keeps its grant — grants are definite and cannot be retracted —
   and its eventual Release is still honoured by [process_release]. *)
let deescalate t ~reply =
  t.mode <- Optimistic;
  abort_all_waiters t ~reply

(* Figure 8: Deny message processing. Denies are unconditional: every
   dependent interval is rolled back and the state becomes final False.
   Queued waiters are aborted — a grant would promise a definitively
   false assumption — while a current holder, whose grant was definite,
   is unaffected (mirrors the affirm-reply-then-Deny user error). *)
let process_deny t ~reply =
  match t.state with
  | Cold | Hot | Maybe ->
    set_state t False_;
    Interval_id.Set.iter (fun b -> reply t.aid b (Wire.Rollback { iid = b })) t.dom;
    abort_all_waiters t ~reply
  | False_ -> t.redundant <- t.redundant + 1
  | True_ -> user_error t "Deny after Affirm"

(* Retract a speculative affirm whose interval rolled back: the affirm
   "never happened", so the state returns to Hot and the (re-executed)
   affirmer may rule again. Stale revokes — the Maybe we are in came from
   a different, later affirm — are ignored. Dependents that had swapped
   this AID for its A_IDO roll back through the A_IDO members themselves
   (the revoking interval's failure cause is always among them) and
   re-register on re-execution. *)
let process_revoke t iid ~reply =
  match t.state with
  | Maybe when t.affirmer = Some iid ->
    set_state t Hot;
    t.a_ido <- Aid.Set.empty;
    t.affirmer <- None;
    (* Every dependent was told to depend on A_IDO instead of us; that
       rewiring is now void — they must depend on us again, or they can
       hang on a chain no surviving execution will resolve. *)
    Interval_id.Set.iter (fun b -> reply t.aid b (Wire.Rebind { iid = b })) t.dom
  | Cold | Hot | Maybe | True_ | False_ -> t.redundant <- t.redundant + 1

(* Replies are emitted through the callback (called as
   [reply aid iid wire]: send [wire] to [iid]'s owner on behalf of [aid])
   in DOM order, the same order the list-returning [handle] exposes. The
   callback form is the runtime's hot path: one long-lived callback and no
   action list per message. *)
let handle_into t wire ~reply =
  match wire with
  | Wire.Guess { iid } -> process_guess t iid ~reply
  | Wire.Affirm { iid; ido } -> process_affirm t iid ido ~reply
  | Wire.Deny _ -> process_deny t ~reply
  | Wire.Revoke { iid } -> process_revoke t iid ~reply
  | Wire.Acquire { iid } -> process_acquire t iid ~reply
  | Wire.Abort { iid } -> process_withdraw t iid ~reply
  | Wire.Release { iid } -> process_release t iid ~reply
  | Wire.Replace _ | Wire.Rollback _ | Wire.Rebind _ | Wire.Grant _ ->
    invalid_arg
      (Printf.sprintf "Aid_machine %s: received %s (AID processes only accept \
                       Guess/Affirm/Deny/Revoke/Acquire/Abort/Release)"
         (Aid.to_string t.aid) (Wire.type_name wire))

let handle t wire =
  let acc = ref [] in
  handle_into t wire ~reply:(fun _aid iid wire -> acc := Reply { iid; wire } :: !acc);
  List.rev !acc

let is_final t = match t.state with True_ | False_ -> true | Cold | Hot | Maybe -> false

(* §5.2: a terminal AID process cannot terminate — late Guess messages
   must still be answered — but its tracking sets are dead weight. Retire
   frees them; the terminal state is all the tombstone needs to answer. *)
let retire t =
  if not (is_final t) then
    invalid_arg
      (Printf.sprintf "Aid_machine.retire: %s is still %s" (Aid.to_string t.aid)
         (state_name t.state));
  t.retired <- true;
  t.dom <- Interval_id.Set.empty;
  t.a_ido <- Aid.Set.empty

let mode t = t.mode
let holder t = t.holder
let queue_length t = t.queued
let mode_name = function Optimistic -> "optimistic" | Pessimistic -> "pessimistic"

let pp ppf t =
  Format.fprintf ppf "%a[%s dom=%d a_ido=%a%s]" Aid.pp t.aid
    (state_name t.state)
    (Interval_id.Set.cardinal t.dom)
    Aid.Set.pp t.a_ido
    (match t.mode with
    | Optimistic -> ""
    | Pessimistic ->
      Printf.sprintf " pess held=%b q=%d" (t.holder <> None) t.queued)
