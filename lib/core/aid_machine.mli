(** The AID process state machine (Figures 4–8 of the paper).

    An AID process models one optimistic assumption. Its truth value takes
    five states to reflect the partial knowledge optimism introduces (§5.2):

    - [Cold]: no primitives applied yet;
    - [Hot]: a Guess arrived, not yet affirmed;
    - [Maybe]: affirmed {e subject to} the AIDs in [A_IDO] also being
      affirmed (a speculative affirm);
    - [True_]: unconditionally affirmed (final);
    - [False_]: unconditionally denied (final).

    The machine is pure: {!handle} consumes one wire message and returns
    the replies to send. All mutation is confined to the record, all
    outgoing I/O to the interpretation of {!action}s by the runtime. *)

open Hope_types

type state = Cold | Hot | Maybe | True_ | False_

type t = {
  aid : Aid.t;
  mutable state : state;
  mutable dom : Interval_id.Set.t;
      (** DOM — "Depends On Me": intervals contingent on this AID *)
  mutable a_ido : Aid.Set.t;
      (** A_IDO — "Affirm I-Depend-On": AIDs that predicate the affirm *)
  mutable affirmer : Interval_id.t option;
      (** the interval whose speculative affirm holds us in [Maybe]; its
          rollback revokes the affirm (Revoke returns us to [Hot]) *)
  strict : bool;
  mutable redundant : int;  (** redundant affirm/deny messages ignored *)
  mutable user_errors : int;  (** conflicting affirm/deny messages ignored *)
  mutable retired : bool;  (** tracking sets reclaimed (see {!retire}) *)
  on_transition : Aid.t -> state -> state -> unit;
      (** observer hook, called as [on_transition aid from to_] at every
          state change (including Maybe-to-Maybe re-affirms), where [aid]
          is the machine's own AID — so one shared callback can serve
          every machine without a closure per AID. Wired to the
          observability recorder by the runtime, identity by default *)
}

type action = Reply of { iid : Interval_id.t; wire : Wire.t }
(** Send [wire] to the process owning interval [iid]. *)

exception User_error of string
(** Raised in strict mode on a conflicting affirm-after-deny or
    deny-after-affirm (the paper's "abort: user error"). *)

val create :
  ?strict:bool -> ?on_transition:(Aid.t -> state -> state -> unit) -> Aid.t -> t
(** A fresh machine in state [Cold]. With [strict] (default false) the
    machine raises {!User_error} where Figures 7–8 say "abort"; otherwise
    it counts and ignores, which is what rollback-driven re-execution
    needs in practice (see DESIGN.md §3.2). [on_transition] observes every
    state change (default: no-op). *)

val handle_into :
  t -> Wire.t -> reply:(Aid.t -> Interval_id.t -> Wire.t -> unit) -> unit
(** Process one message per Figures 5–8, plus the Revoke retraction of a
    rolled-back speculative affirm ([Maybe] returns to [Hot] — see
    {!Wire.t} and DESIGN.md §3.1). Each outgoing reply is delivered to
    [reply] (called as [reply aid iid wire]: send [wire] to the process
    owning interval [iid], from this machine's [aid]) in DOM order. The
    machine's AID is passed back so callers can reuse one long-lived
    callback for every machine — this is the runtime's per-message hot
    path, and it allocates no action list. @raise User_error in strict
    mode as described above; @raise Invalid_argument if the message is a
    Replace or Rollback, which AID processes never receive. *)

val handle : t -> Wire.t -> action list
(** [handle_into] with the replies collected into a list, in emission
    order — the convenient form for tests and exploratory code. *)

val is_final : t -> bool
(** True in states [True_] and [False_]. *)

val retire : t -> unit
(** Reclaim the tracking sets of a terminal machine (the garbage
    collection §5.2 sketches: "reference counting can garbage collect old
    AID processes"). The machine keeps answering Guess messages from its
    terminal state — AID processes never terminate, because pending
    guesses may still arrive. @raise Invalid_argument unless terminal. *)

val state_name : state -> string
val pp : Format.formatter -> t -> unit
