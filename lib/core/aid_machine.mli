(** The AID process state machine (Figures 4–8 of the paper).

    An AID process models one optimistic assumption. Its truth value takes
    five states to reflect the partial knowledge optimism introduces (§5.2):

    - [Cold]: no primitives applied yet;
    - [Hot]: a Guess arrived, not yet affirmed;
    - [Maybe]: affirmed {e subject to} the AIDs in [A_IDO] also being
      affirmed (a speculative affirm);
    - [True_]: unconditionally affirmed (final);
    - [False_]: unconditionally denied (final).

    The machine is pure: {!handle} consumes one wire message and returns
    the replies to send. All mutation is confined to the record, all
    outgoing I/O to the interpretation of {!action}s by the runtime.

    {b Pessimistic overlay} (DESIGN.md §10). Orthogonally to the truth
    state, a machine operates in one of two {!mode}s. [Optimistic] is
    the protocol above. Under [Pessimistic] — entered via {!escalate}
    when the governor observes sustained contention — the machine also
    arbitrates {e access}: clients send [Acquire] tickets that join a
    FIFO queue, the head holds the AID exclusively via a definite
    [Grant] (no speculative interval, no Replace traffic), and every
    ticket completes as exactly one Grant or Abort. Queued waiters are
    abortable at any time (withdrawal by client [Abort], queue overflow,
    [Deny], or {!deescalate}) without blocking the rest of the queue,
    preserving wait-freedom. Guess/Affirm/Deny/Revoke continue through
    the truth machine in either mode, so speculation opened before an
    escalation still resolves. *)

open Hope_types

type state = Cold | Hot | Maybe | True_ | False_
type mode = Optimistic | Pessimistic

type t = {
  aid : Aid.t;
  mutable state : state;
  mutable dom : Interval_id.Set.t;
      (** DOM — "Depends On Me": intervals contingent on this AID *)
  mutable a_ido : Aid.Set.t;
      (** A_IDO — "Affirm I-Depend-On": AIDs that predicate the affirm *)
  mutable affirmer : Interval_id.t option;
      (** the interval whose speculative affirm holds us in [Maybe]; its
          rollback revokes the affirm (Revoke returns us to [Hot]) *)
  strict : bool;
  mutable redundant : int;  (** redundant affirm/deny messages ignored *)
  mutable user_errors : int;  (** conflicting affirm/deny messages ignored *)
  mutable retired : bool;  (** tracking sets reclaimed (see {!retire}) *)
  on_transition : Aid.t -> state -> state -> unit;
      (** observer hook, called as [on_transition aid from to_] at every
          state change (including Maybe-to-Maybe re-affirms), where [aid]
          is the machine's own AID — so one shared callback can serve
          every machine without a closure per AID. Wired to the
          observability recorder by the runtime, identity by default *)
  mutable mode : mode;  (** operating mode (see the overlay note above) *)
  mutable holder : Interval_id.t option;
      (** the ticket currently granted exclusive access, if any *)
  waiters : Interval_id.t Queue.t;  (** FIFO acquisition queue *)
  mutable cancelled : Interval_id.Set.t;
      (** withdrawn tickets still in [waiters], skipped lazily at the head *)
  mutable queued : int;  (** live (non-cancelled) entries in [waiters] *)
  max_queue : int;  (** Acquires beyond this bound are aborted outright *)
  mutable granted : int;  (** Grant replies sent *)
  mutable aborted : int;  (** Abort replies sent *)
}

type action = Reply of { iid : Interval_id.t; wire : Wire.t }
(** Send [wire] to the process owning interval [iid]. *)

exception User_error of string
(** Raised in strict mode on a conflicting affirm-after-deny or
    deny-after-affirm (the paper's "abort: user error"). *)

val create :
  ?strict:bool ->
  ?on_transition:(Aid.t -> state -> state -> unit) ->
  ?max_queue:int ->
  Aid.t ->
  t
(** A fresh machine in state [Cold], mode [Optimistic]. With [strict]
    (default false) the machine raises {!User_error} where Figures 7–8
    say "abort"; otherwise it counts and ignores, which is what
    rollback-driven re-execution needs in practice (see DESIGN.md §3.2).
    [on_transition] observes every state change (default: no-op).
    [max_queue] (default 64) bounds the acquisition queue: an Acquire
    that would exceed it is aborted immediately, keeping queued waits
    finite even under unbounded demand. *)

val handle_into :
  t -> Wire.t -> reply:(Aid.t -> Interval_id.t -> Wire.t -> unit) -> unit
(** Process one message per Figures 5–8, plus the Revoke retraction of a
    rolled-back speculative affirm ([Maybe] returns to [Hot] — see
    {!Wire.t} and DESIGN.md §3.1). Each outgoing reply is delivered to
    [reply] (called as [reply aid iid wire]: send [wire] to the process
    owning interval [iid], from this machine's [aid]) in DOM order. The
    machine's AID is passed back so callers can reuse one long-lived
    callback for every machine — this is the runtime's per-message hot
    path, and it allocates no action list. Acquire/Abort/Release are
    served by the pessimistic overlay (Abort inbound means the waiter
    withdrew; no reply is sent for it). @raise User_error in strict
    mode as described above; @raise Invalid_argument if the message is a
    Replace, Rollback, Rebind, or Grant, which AID processes never
    receive. *)

val handle : t -> Wire.t -> action list
(** [handle_into] with the replies collected into a list, in emission
    order — the convenient form for tests and exploratory code. *)

val is_final : t -> bool
(** True in states [True_] and [False_]. *)

val retire : t -> unit
(** Reclaim the tracking sets of a terminal machine (the garbage
    collection §5.2 sketches: "reference counting can garbage collect old
    AID processes"). The machine keeps answering Guess messages from its
    terminal state — AID processes never terminate, because pending
    guesses may still arrive. @raise Invalid_argument unless terminal.
    The pessimistic overlay is untouched: a retired machine keeps
    serving Acquire/Release — the queue is live duty, not dead weight. *)

val escalate : t -> unit
(** Switch to [Pessimistic]: subsequent Acquires queue and grant.
    Idempotent; the truth state is unaffected. *)

val deescalate :
  t -> reply:(Aid.t -> Interval_id.t -> Wire.t -> unit) -> unit
(** Switch back to [Optimistic], aborting every queued waiter through
    [reply] (they re-enter via the optimistic guess path). The current
    holder keeps its definite grant; its eventual Release is still
    honoured. Idempotent. *)

val mode : t -> mode
val holder : t -> Interval_id.t option
val queue_length : t -> int
(** Live (non-cancelled) waiters currently queued. *)

val state_name : state -> string
val mode_name : mode -> string
val pp : Format.formatter -> t -> unit
