open Hope_types

type algorithm = Algorithm_1 | Algorithm_2

type rollback_reason = Denial of Aid.t | Revocation

type action =
  | Send_guess of { aid : Aid.t; iid : Interval_id.t }
  | Finalized of History.interval
  | Rolled_back of {
      target : History.interval;
      rolled : History.interval list;
      reason : rollback_reason;
    }

(* The finalize cascade: an interval only becomes definite when it is the
   oldest live interval — earlier intervals can still roll it back — so
   emptied IDO sets finalize from the front of the history, possibly
   several at a time. *)
let cascade_finalize hist =
  let rec loop acc =
    match History.drop_oldest_finalized hist with
    | Some itv -> loop (Finalized itv :: acc)
    | None -> List.rev acc
  in
  loop []

let handle_replace ?emit ?cut algorithm hist ~target ~sender ~ido ~on_cycle_cut =
  match History.find hist target with
  | None -> []  (* stale: the interval was rolled back or finalized *)
  | Some itv ->
    if not (Aid.Set.mem sender itv.History.ido) then
      (* Duplicate Replace for an already-resolved dependency. *)
      []
    else begin
      itv.History.ido <- Aid.Set.remove sender itv.History.ido;
      (* The payload is only built when a recorder is listening: this is
         the Replace hot path, and the record allocation would otherwise
         be pure garbage. *)
      (match emit with
      | Some f ->
        f
          (Hope_obs.Event.Dep_resolved
             {
               iid = target;
               aid = sender;
               remaining = Aid.Set.cardinal itv.History.ido;
             })
      | None -> ());
      (match algorithm with
      | Algorithm_1 -> ()
      | Algorithm_2 -> itv.History.udo <- Aid.Set.add sender itv.History.udo);
      let guesses =
        Aid.Set.fold
          (fun y acc ->
            let in_udo =
              match algorithm with
              | Algorithm_1 -> false
              | Algorithm_2 -> Aid.Set.mem y itv.History.udo
            in
            if in_udo then begin
              (* Figure 15: the replacement is an AID we already walked
                 through — a dependency cycle. Discard it. *)
              on_cycle_cut target y;
              acc
            end
            else if
              (* Governor actuator: a dynamic, churn-driven cut. The
                 predicate sees every replacement candidate and may rule
                 it a cycle on orbit-count evidence even when the UDO
                 check (or Algorithm 1's absence of one) would not —
                 Figure 15's resolution applied by observed churn instead
                 of by the static walk-through set. *)
              match cut with
              | None -> false
              | Some f -> f ~target ~sender ~candidate:y
            then begin
              on_cycle_cut target y;
              acc
            end
            else if Aid.Set.mem y itv.History.ido then
              (* Already dependent (and already registered in y's DOM). *)
              acc
            else begin
              itv.History.ido <- Aid.Set.add y itv.History.ido;
              Send_guess { aid = y; iid = target } :: acc
            end)
          ido []
        |> List.rev
      in
      guesses @ cascade_finalize hist
    end

(* The speculative affirm that rewired [target]'s dependency on [sender]
   has been revoked. The rewiring injected the affirmer's dependency set
   into this interval, and those injected assumptions may belong to an
   execution that rolled back and will never be resolved — there is no
   per-assumption provenance to unpick them precisely, so the sound and
   live response is to roll the interval back entirely: the re-execution
   re-registers with the (now Hot again) assumption and acquires a clean
   dependency state. Intervals that never rewired through the sender
   ignore the message. *)
let handle_rebind hist ~target ~sender =
  match History.find hist target with
  | None -> []
  | Some itv ->
    if Aid.Set.mem sender itv.History.udo then begin
      let rolled = History.truncate_from hist itv.History.iid in
      [ Rolled_back { target = itv; rolled; reason = Revocation } ]
    end
    else []

let handle_rollback hist ~target ~denied =
  match History.find hist target with
  | None -> []  (* Figure 10: "if target in history" — duplicate rollback *)
  | Some itv ->
    (* The denying AID sends a Rollback to every interval in its DOM; with
       dependency inheritance the earliest such interval subsumes all the
       later ones, so we roll back to it directly — the later Rollback
       messages then find dead targets and are ignored, and no interval
       whose own assumption is still open spuriously resumes with false. *)
    let itv =
      History.first_depending hist denied |> Option.value ~default:itv
    in
    let rolled = History.truncate_from hist itv.History.iid in
    [ Rolled_back { target = itv; rolled; reason = Denial denied } ]
