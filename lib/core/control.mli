(** The Control state machine: processing of Replace and Rollback messages
    in user processes (Figure 10 = Algorithm 1; Figure 15 = Algorithm 2
    with UDO cycle detection).

    Control is the HOPElib function that intercepts messages from AID
    processes and applies them to the process's interval history,
    "completely transparent to the programmer" (§5.2). It is pure with
    respect to I/O: it mutates the {!History.t} and returns a list of
    {!action}s for the runtime to interpret (messages to send, checkpoints
    to restore or discard). *)

open Hope_types

type algorithm =
  | Algorithm_1  (** Figure 10: no cycle detection. Livelocks on cyclic
                     dependency graphs (§5.3) — kept for experiment E4. *)
  | Algorithm_2  (** Figure 15: UDO-based cycle detection (Theorem 5.3). *)

(** Why an interval is discarded. *)
type rollback_reason =
  | Denial of Aid.t  (** an assumption it depended on was denied *)
  | Revocation
      (** its dependency rewiring went through a speculative affirm that
          was revoked: the interval re-executes to acquire a clean
          dependency state (nothing it computed is known wrong) *)

type action =
  | Send_guess of { aid : Aid.t; iid : Interval_id.t }
      (** Register interval [iid] with [aid]'s AID process: the DOM
          addition half of Replace processing (Lemma 5.3). *)
  | Finalized of History.interval
      (** The interval became definite: the runtime discards its
          checkpoint and sends the unconditional Affirms (IHA) and
          buffered Denies (IHD) of Figure 11's [finalize]. *)
  | Rolled_back of {
      target : History.interval;
      rolled : History.interval list;
      reason : rollback_reason;
    }
      (** The target interval and its successors were discarded: the
          runtime revokes every speculative affirm of every rolled
          interval (Figure 11's [rollback]), drops their buffered denies,
          and restores the target's checkpoint. *)

val handle_replace :
  ?emit:(Hope_obs.Event.payload -> unit) ->
  ?cut:(target:Interval_id.t -> sender:Aid.t -> candidate:Aid.t -> bool) ->
  algorithm ->
  History.t ->
  target:Interval_id.t ->
  sender:Aid.t ->
  ido:Aid.Set.t ->
  on_cycle_cut:(Interval_id.t -> Aid.t -> unit) ->
  action list
(** Apply a [<Replace, target, ido>] from AID [sender]. Stale messages
    (the target interval is no longer live, or the sender is not among its
    dependencies) are ignored. [on_cycle_cut] is called as
    [on_cycle_cut target aid] with every replacement AID discarded by the
    UDO check — [target] is passed back so the caller can use one
    long-lived callback instead of closing over the interval per message.
    [cut], when given, is consulted for every replacement candidate the
    UDO check let through (under either algorithm): returning [true]
    discards the candidate through the same [on_cycle_cut] path — this is
    the governor's dynamic cycle-cut actuator, which rules on observed
    Replace-orbit churn instead of the static walk-through set. [emit],
    when given, observes the dependency resolution as a
    {!Hope_obs.Event.Dep_resolved} whose [remaining] counts the IDO
    entries left after removing [sender] (before any replacement AIDs are
    added); omit it to skip building the payload at all — this is the
    Replace hot path. *)

val handle_rebind :
  History.t -> target:Interval_id.t -> sender:Aid.t -> action list
(** Apply a [<Rebind, target>] from AID [sender]: the speculative affirm
    that replaced [sender] in the interval's IDO has been revoked, so the
    rewired dependency state is void — the interval rolls back with
    {!Revocation} and re-acquires its dependencies by re-executing.
    Ignored when the interval never rewired through [sender]. *)

val handle_rollback :
  History.t -> target:Interval_id.t -> denied:Aid.t -> action list
(** Apply a [<Rollback, target>] sent by the (denied) AID [denied].
    Ignored when the target is not live (Figure 10's "if target in
    history" guard — the duplicate-rollback case). When an earlier live
    interval also depends on [denied], the rollback is taken there
    directly: the denying AID addresses every interval in its DOM, and
    with dependency inheritance the earliest dependent subsumes the
    rest. *)
