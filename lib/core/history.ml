open Hope_types

type kind = Explicit | Implicit

type interval = {
  iid : Interval_id.t;
  kind : kind;
  started_at : float;
  mutable ido : Aid.Set.t;
  mutable udo : Aid.Set.t;
  mutable iha : Aid.Set.t;
  mutable ihd : Aid.Set.t;
}

(* Live intervals are [buf.(head) .. buf.(head + len - 1)], oldest first.
   Finalization advances [head]; rollback shrinks [len]; push appends
   (compacting/growing the array when the tail is reached). Compared to
   the previous newest-first list this makes [oldest]/[current] O(1) and
   [find] O(log n) (live sequence numbers are strictly increasing), and
   gives the cumulative-set caches a stable addressing scheme.

   The cumulative IDO (the tag of every speculative send) and UDO are
   cached instead of re-folded per call. Tests and [Control] mutate
   interval [ido]/[udo] fields directly, so the cache cannot rely on
   being notified: each cached fold stores, per covered interval, the
   hash-cons id ([Aid.Set.id]) of the set it folded in, and a cache hit
   requires every live interval's current id to match its stamp — an
   allocation-free O(depth) integer scan. Push extends a valid cache with
   one memoized union; any mutation or truncation is caught by the stamp
   scan and triggers a lazy refold. *)
type t = {
  hist_owner : Proc_id.t;
  mutable buf : interval array;
  mutable head : int;
  mutable len : int;
  mutable next_seq : int;
  mutable finalized : int;
  mutable rolled : int;
  mutable ido_stamp : int array;  (** parallel to [buf] *)
  mutable udo_stamp : int array;
  mutable cum_ido : Aid.Set.t;
  mutable cum_ido_from : int;  (** [head] value the cache was built at *)
  mutable cum_ido_count : int;  (** [len] value; -1 forces a refold *)
  mutable cum_udo : Aid.Set.t;
  mutable cum_udo_from : int;
  mutable cum_udo_count : int;
}

let create owner =
  {
    hist_owner = owner;
    buf = [||];
    head = 0;
    len = 0;
    next_seq = 0;
    finalized = 0;
    rolled = 0;
    ido_stamp = [||];
    udo_stamp = [||];
    cum_ido = Aid.Set.empty;
    cum_ido_from = 0;
    cum_ido_count = 0;
    cum_udo = Aid.Set.empty;
    cum_udo_from = 0;
    cum_udo_count = 0;
  }

let owner t = t.hist_owner

(* ------------------------------------------------------------------ *)
(* Cumulative-set caches                                               *)
(* ------------------------------------------------------------------ *)

(* Top-level recursion (not a closure) keeps the per-send validity scan
   allocation-free. *)
let rec ido_stamps_ok t i stop =
  i >= stop
  || (t.ido_stamp.(i) = Aid.Set.id t.buf.(i).ido && ido_stamps_ok t (i + 1) stop)

let rec udo_stamps_ok t i stop =
  i >= stop
  || (t.udo_stamp.(i) = Aid.Set.id t.buf.(i).udo && udo_stamps_ok t (i + 1) stop)

let ido_cache_valid t =
  t.cum_ido_count = t.len
  && t.cum_ido_from = t.head
  && ido_stamps_ok t t.head (t.head + t.len)

let udo_cache_valid t =
  t.cum_udo_count = t.len
  && t.cum_udo_from = t.head
  && udo_stamps_ok t t.head (t.head + t.len)

let cumulative_ido t =
  if not (ido_cache_valid t) then begin
    let acc = ref Aid.Set.empty in
    for i = t.head to t.head + t.len - 1 do
      let s = t.buf.(i).ido in
      t.ido_stamp.(i) <- Aid.Set.id s;
      acc := Aid.Set.union !acc s
    done;
    t.cum_ido <- !acc;
    t.cum_ido_from <- t.head;
    t.cum_ido_count <- t.len
  end;
  t.cum_ido

let cumulative_udo t =
  if not (udo_cache_valid t) then begin
    let acc = ref Aid.Set.empty in
    for i = t.head to t.head + t.len - 1 do
      let s = t.buf.(i).udo in
      t.udo_stamp.(i) <- Aid.Set.id s;
      acc := Aid.Set.union !acc s
    done;
    t.cum_udo <- !acc;
    t.cum_udo_from <- t.head;
    t.cum_udo_count <- t.len
  end;
  t.cum_udo

(* ------------------------------------------------------------------ *)
(* Window management                                                   *)
(* ------------------------------------------------------------------ *)

let push t ~kind ~ido ~now =
  let iid = Interval_id.make ~owner:t.hist_owner ~seq:t.next_seq in
  t.next_seq <- t.next_seq + 1;
  let itv =
    {
      iid;
      kind;
      started_at = now;
      ido;
      udo = Aid.Set.empty;
      iha = Aid.Set.empty;
      ihd = Aid.Set.empty;
    }
  in
  (* Capture cache validity before the window moves. *)
  let ido_valid = ido_cache_valid t in
  let udo_valid = udo_cache_valid t in
  if t.head + t.len >= Array.length t.buf then begin
    (* Out of room at the tail: compact live intervals to the front of a
       fresh (possibly larger) array. [itv] doubles as the filler. *)
    let ncap = max 8 ((t.len + 1) * 2) in
    let nbuf = Array.make ncap itv in
    Array.blit t.buf t.head nbuf 0 t.len;
    let nido = Array.make ncap 0 and nudo = Array.make ncap 0 in
    Array.blit t.ido_stamp t.head nido 0 t.len;
    Array.blit t.udo_stamp t.head nudo 0 t.len;
    t.buf <- nbuf;
    t.ido_stamp <- nido;
    t.udo_stamp <- nudo;
    t.head <- 0;
    if ido_valid then t.cum_ido_from <- 0 else t.cum_ido_count <- -1;
    if udo_valid then t.cum_udo_from <- 0 else t.cum_udo_count <- -1
  end;
  let pos = t.head + t.len in
  t.buf.(pos) <- itv;
  t.len <- t.len + 1;
  if ido_valid then begin
    t.cum_ido <- Aid.Set.union t.cum_ido ido;
    t.ido_stamp.(pos) <- Aid.Set.id ido;
    t.cum_ido_count <- t.len
  end
  else t.cum_ido_count <- -1;
  if udo_valid then begin
    (* the new interval's UDO is empty: the cached union is unchanged *)
    t.udo_stamp.(pos) <- Aid.Set.id itv.udo;
    t.cum_udo_count <- t.len
  end
  else t.cum_udo_count <- -1;
  itv

let live t =
  let rec go i acc = if i < t.head then acc else go (i - 1) (t.buf.(i) :: acc) in
  go (t.head + t.len - 1) []

let iter_live f t =
  for i = t.head to t.head + t.len - 1 do
    f t.buf.(i)
  done

let depth t = t.len
let current t = if t.len = 0 then None else Some t.buf.(t.head + t.len - 1)

(* Option-free [current] for the per-primitive hot paths: callers check
   [depth] first. *)
let top_exn t =
  if t.len = 0 then raise Not_found else t.buf.(t.head + t.len - 1)
let oldest t = if t.len = 0 then None else Some t.buf.(t.head)

(* Live sequence numbers increase strictly with position, so lookup is a
   binary search over the window. Returns the buffer position. *)
let find_pos t iid =
  if t.len = 0 || not (Proc_id.equal (Interval_id.owner iid) t.hist_owner) then
    None
  else begin
    let seq = Interval_id.seq iid in
    let rec go lo hi =
      if lo > hi then None
      else begin
        let mid = (lo + hi) / 2 in
        let s = Interval_id.seq t.buf.(mid).iid in
        if s = seq then Some mid else if s < seq then go (mid + 1) hi else go lo (mid - 1)
      end
    in
    go t.head (t.head + t.len - 1)
  end

let find t iid =
  match find_pos t iid with None -> None | Some pos -> Some t.buf.(pos)

let is_live t iid = Option.is_some (find_pos t iid)

let depends_on t x =
  Aid.Set.mem x (cumulative_ido t) || Aid.Set.mem x (cumulative_udo t)

let first_depending t x =
  let rec go i =
    if i >= t.head + t.len then None
    else begin
      let itv = t.buf.(i) in
      if Aid.Set.mem x itv.ido then Some itv else go (i + 1)
    end
  in
  go t.head

let truncate_from t iid =
  match find_pos t iid with
  | None -> []
  | Some pos ->
    let removed = ref [] in
    for i = t.head + t.len - 1 downto pos do
      removed := t.buf.(i) :: !removed
    done;
    t.rolled <- t.rolled + (t.head + t.len - pos);
    t.len <- pos - t.head;
    (* The removed suffix may have carried dependencies. *)
    t.cum_ido_count <- -1;
    t.cum_udo_count <- -1;
    !removed

let drop_oldest_finalized t =
  if t.len = 0 then None
  else begin
    let old = t.buf.(t.head) in
    if Aid.Set.is_empty old.ido then begin
      let ido_valid = ido_cache_valid t in
      let udo_valid = udo_cache_valid t && Aid.Set.is_empty old.udo in
      t.head <- t.head + 1;
      t.len <- t.len - 1;
      t.finalized <- t.finalized + 1;
      (* The dropped IDO is empty, so a valid cached union is unchanged;
         a dropped non-empty UDO shrinks the cumulative UDO, so refold. *)
      if ido_valid then begin
        t.cum_ido_from <- t.head;
        t.cum_ido_count <- t.len
      end
      else t.cum_ido_count <- -1;
      if udo_valid then begin
        t.cum_udo_from <- t.head;
        t.cum_udo_count <- t.len
      end
      else t.cum_udo_count <- -1;
      Some old
    end
    else None
  end

let finalized_count t = t.finalized
let rolled_back_count t = t.rolled

let pp_kind ppf = function
  | Explicit -> Format.pp_print_string ppf "guess"
  | Implicit -> Format.pp_print_string ppf "recv"

let pp ppf t =
  Format.fprintf ppf "@[<v>history of %a (finalized=%d rolled=%d):@," Proc_id.pp
    t.hist_owner t.finalized t.rolled;
  iter_live
    (fun itv ->
      Format.fprintf ppf "  %a %a ido=%a udo=%a iha=%a@," Interval_id.pp itv.iid
        pp_kind itv.kind Aid.Set.pp itv.ido Aid.Set.pp itv.udo Aid.Set.pp
        itv.iha)
    t;
  Format.fprintf ppf "@]"
