(** Per-process execution histories of speculative intervals.

    "User process execution is recorded as an execution history of process
    states composed of intervals" (§5). The history holds the {e live}
    (still-speculative) intervals, oldest first; finalized intervals leave
    from the front, rollbacks truncate a suffix. Each interval carries the
    paper's dependency sets:

    - IDO ("I Depend On"): the AIDs the interval depends on;
    - UDO ("Used to Depend On"): AIDs once in IDO, kept by Algorithm 2 to
      cut dependency cycles (Figure 15);
    - IHA ("I Have Affirmed"): AIDs this interval speculatively affirmed;
    - IHD ("I Have Denied"): denies buffered until the interval is
      definite (footnote 1).

    A new interval's IDO is seeded with the process's whole cumulative
    dependency set, and the runtime registers the interval with every AID
    in it — this is what lets each interval finalize independently once
    {e its} assumptions resolve, and is the source of the quadratic message
    cost the paper concedes in §6 (experiment E3). *)

open Hope_types

type kind = Explicit | Implicit
(** [Explicit]: begun by a [guess] primitive (rollback re-enters the
    boolean continuation with [false]). [Implicit]: begun by consuming a
    tagged message (rollback re-executes the receive). *)

type interval = {
  iid : Interval_id.t;
  kind : kind;
  started_at : float;  (** virtual time of interval start *)
  mutable ido : Aid.Set.t;
  mutable udo : Aid.Set.t;
  mutable iha : Aid.Set.t;
  mutable ihd : Aid.Set.t;
}

type t

val create : Proc_id.t -> t
val owner : t -> Proc_id.t

val push : t -> kind:kind -> ido:Aid.Set.t -> now:float -> interval
(** Begin a new live interval with a fresh sequence number. *)

val live : t -> interval list
(** Live intervals, oldest first. Allocates a fresh list; prefer
    {!iter_live} on hot paths. *)

val iter_live : (interval -> unit) -> t -> unit
(** Apply to each live interval, oldest first, without allocating. *)

val depth : t -> int
(** Number of live intervals (current speculation depth). O(1). *)

val current : t -> interval option
(** The newest live interval. O(1). *)

val top_exn : t -> interval
(** [current] without the option box, for hot paths that have already
    checked [depth t > 0]. O(1). @raise Not_found when empty. *)

val oldest : t -> interval option
(** The oldest live interval. O(1). *)

val find : t -> Interval_id.t -> interval option
(** O(log depth): live intervals are ordered by sequence number. *)

val is_live : t -> Interval_id.t -> bool

val cumulative_ido : t -> Aid.Set.t
(** Union of live IDO sets: the process's current dependency set — the tag
    for outgoing messages (§3). Served from an incrementally maintained
    cache validated by hash-cons stamps: O(depth) integer comparisons when
    nothing changed (no allocation, no union), one memoized union per
    [push], a lazy refold after rollback or direct IDO mutation. *)

val cumulative_udo : t -> Aid.Set.t
(** Union of live UDO sets, cached like {!cumulative_ido}. *)

val depends_on : t -> Aid.t -> bool
(** Does the process currently or formerly depend on the AID? (Used by
    [free_of], which must answer from local knowledge to stay wait-free.) *)

val first_depending : t -> Aid.t -> interval option
(** The oldest live interval whose IDO contains the AID — the rollback
    target for a denial (§5). Allocation-free scan. *)

val truncate_from : t -> Interval_id.t -> interval list
(** Remove the target interval and everything after it; returns the
    removed suffix oldest-first. Empty when the target is not live. *)

val drop_oldest_finalized : t -> interval option
(** If the oldest live interval's IDO is empty, remove and return it
    (the finalize cascade step); [None] otherwise. *)

val finalized_count : t -> int
(** Intervals finalized so far. *)

val rolled_back_count : t -> int
(** Intervals discarded by rollback so far. *)

val pp : Format.formatter -> t -> unit
