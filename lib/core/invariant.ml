open Hope_types
module Scheduler = Hope_proc.Scheduler

type violation = { check : string; detail : string }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.check v.detail

let violation check fmt = Format.kasprintf (fun detail -> { check; detail }) fmt

let check_wait_free rt =
  let parks = Scheduler.primitive_parks (Runtime.scheduler rt) in
  if parks = 0 then []
  else [ violation "wait-free" "HOPE primitives parked their process %d times" parks ]

(* Replay the event log into per-interval facts. *)
type fact = {
  ido0 : Aid.Set.t;  (** dependencies at interval creation *)
  mutable finalized : bool;
  mutable rolled : bool;
  mutable cut : bool;  (** some dependency was discarded by the UDO check *)
}

let interval_facts rt =
  let facts : (Interval_id.t, fact) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match ev with
      | Runtime.Interval_started { iid; ido; _ } ->
        Hashtbl.replace facts iid
          { ido0 = ido; finalized = false; rolled = false; cut = false }
      | Runtime.Interval_finalized iid ->
        (match Hashtbl.find_opt facts iid with
        | Some f -> f.finalized <- true
        | None -> ())
      | Runtime.Interval_rolled_back iid ->
        (match Hashtbl.find_opt facts iid with
        | Some f -> f.rolled <- true
        | None -> ())
      | Runtime.Cycle_cut { iid; _ } ->
        (match Hashtbl.find_opt facts iid with
        | Some f -> f.cut <- true
        | None -> ())
      | Runtime.Aid_created _ | Runtime.Affirm_sent _ | Runtime.Deny_sent _
      | Runtime.Deny_buffered _ | Runtime.Free_of_hit _ | Runtime.Free_of_miss _ ->
        ())
    (Runtime.events rt);
  facts

let aid_final_state rt aid =
  match Runtime.aid_state rt aid with s -> Some s | exception Not_found -> None

(* Theorem 5.1, checked at quiescence over the event log.

   Forward: a finalized interval's creation-time dependencies must all have
   resolved True. Intervals that took a cycle cut are exempt: Algorithm 2
   deliberately discards dependencies on cycle members (§5.3), and whether
   those members end True depends on the fate of the affirming intervals.

   Backward: an interval whose creation-time dependencies all resolved
   True must have finalized (and in particular must not have rolled back).

   Exclusivity: no interval may both finalize and roll back. *)
let check_theorem_5_1 rt =
  let facts = interval_facts rt in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  Hashtbl.iter
    (fun iid f ->
      if f.finalized && f.rolled then
        add
          (violation "theorem-5.1"
             "interval %a was both finalized and rolled back"
             Interval_id.pp iid);
      let dep_states =
        Aid.Set.fold
          (fun x acc -> (x, aid_final_state rt x) :: acc)
          f.ido0 []
      in
      let all_true =
        List.for_all
          (fun (_, s) -> s = Some Aid_machine.True_)
          dep_states
      in
      if f.finalized && (not f.cut) && not all_true then
        List.iter
          (fun (x, s) ->
            if s <> Some Aid_machine.True_ then
              add
                (violation "theorem-5.1"
                   "interval %a finalized but dependency %a ended %s"
                   Interval_id.pp iid Aid.pp x
                   (match s with
                   | Some st -> Aid_machine.state_name st
                   | None -> "<unknown>")))
          dep_states;
      (* Note: an interval whose creation-time dependencies all ended True
         can still legitimately roll back — a Replace chain can hand it a
         transient dependency (the affirmer's own failure cause) that is
         denied while the original assumptions go on to be re-affirmed; the
         re-executed guess then resolves True. So "rolled back with
         all-True ido0" is not a violation; what must never happen is an
         interval left hanging: *)
      if all_true && (not f.finalized) && not f.rolled then
        add
          (violation "theorem-5.1"
             "interval %a neither finalized nor rolled back though all its \
              dependencies ended True"
             Interval_id.pp iid))
    facts;
  List.rev !violations

let check_aid_finality rt =
  (* Terminal states are final by construction of the machine; what we can
     check externally is that no machine reports a conflicting history:
     user_errors counts affirm-after-deny / deny-after-affirm attempts. *)
  List.filter_map
    (fun aid ->
      let m = Runtime.aid_machine rt aid in
      if m.Aid_machine.user_errors > 0 then
        Some
          (violation "aid-finality" "%a received %d conflicting affirm/deny"
             Aid.pp aid m.Aid_machine.user_errors)
      else None)
    (Runtime.all_aids rt)

let check_quiescence rt =
  let live = Runtime.live_intervals rt in
  if live = 0 then []
  else [ violation "quiescence" "%d speculative intervals still live" live ]

(* check_aid_finality is not part of check_all: rollback-driven
   re-execution can legitimately re-affirm an AID that a revoked
   speculative affirm drove to False (DESIGN.md §3.2), which the lenient
   machine counts as a user error. Tests of strictly-once protocols call
   it directly. *)
let check_all rt = check_wait_free rt @ check_theorem_5_1 rt @ check_quiescence rt

let all_named =
  [
    ("wait-free", check_wait_free, true);
    ("theorem-5.1", check_theorem_5_1, true);
    ("aid-finality", check_aid_finality, false);
    ("quiescence", check_quiescence, true);
  ]

let assert_ok rt =
  match check_all rt with
  | [] -> ()
  | vs ->
    let msg =
      Format.asprintf "@[<v>%d invariant violations:@,%a@]" (List.length vs)
        (Format.pp_print_list pp_violation)
        vs
    in
    failwith msg
