(** Executable checks of the paper's correctness properties.

    These are run by tests (and optionally by benches) after a simulation
    reaches quiescence. Each check returns the list of violations found —
    empty means the property held.

    - {!check_wait_free}: no HOPE primitive ever parked its process
      (the title property; §5's design criterion).
    - {!check_theorem_5_1}: "for all intervals B, finalize(B) occurs iff
      affirm(X) is applied to all of the AIDs X in B.IDO by intervals that
      eventually become definite." Verified over the event log: every
      finalized interval's dependencies must all have ended True, no
      interval is both finalized and rolled back, and every started
      interval whose dependencies all ended True must have finalized.
    - {!check_aid_finality}: AID processes in True/False never left that
      state (monotonicity of the terminal states, Figure 4).
    - {!check_quiescence}: with every assumption resolved, no live
      speculative intervals remain (the liveness counterpart used by the
      integration tests). *)

type violation = { check : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val check_wait_free : Runtime.t -> violation list

val check_theorem_5_1 : Runtime.t -> violation list
(** Requires the runtime to have been created with [record_events]. *)

val check_aid_finality : Runtime.t -> violation list
(** Flags AIDs that received conflicting affirm/deny messages. Not part of
    {!check_all}: rollback-driven re-execution can legitimately re-affirm
    an AID whose speculative affirm was revoked (see DESIGN.md §3.2). *)

val check_quiescence : Runtime.t -> violation list

val check_all : Runtime.t -> violation list
(** Wait-freedom, Theorem 5.1, and quiescence, concatenated. *)

val all_named : (string * (Runtime.t -> violation list) * bool) list
(** Every check with a stable CLI-facing name and whether a violation is
    authoritative ([true]) or informational ([false] — today only
    ["aid-finality"], whose flags can be legitimate re-affirms; see the
    note on {!check_aid_finality}). Drives [hope_sim --check]. *)

val assert_ok : Runtime.t -> unit
(** Run {!check_all}; raise [Failure] listing violations if any. *)
