open Hope_types
module Scheduler = Hope_proc.Scheduler
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Vec = Hope_sim.Vec
module Network = Hope_net.Network

type aid_placement = Colocate | Fixed_node of int

type config = {
  algorithm : Control.algorithm;
  strict_aids : bool;
  buffer_speculative_denies : bool;
  aid_placement : aid_placement;
  record_events : bool;
  cache_terminal_states : bool;
}

let default_config =
  {
    algorithm = Control.Algorithm_2;
    strict_aids = false;
    buffer_speculative_denies = false;
    aid_placement = Colocate;
    record_events = true;
    cache_terminal_states = true;
  }

type event =
  | Aid_created of Aid.t
  | Interval_started of {
      iid : Interval_id.t;
      kind : History.kind;
      ido : Aid.Set.t;
      at : float;
    }
  | Interval_finalized of Interval_id.t
  | Interval_rolled_back of Interval_id.t
  | Affirm_sent of { aid : Aid.t; speculative : bool }
  | Deny_sent of { aid : Aid.t; speculative : bool }
  | Deny_buffered of { aid : Aid.t; by : Interval_id.t }
  | Free_of_hit of { aid : Aid.t }
  | Free_of_miss of { aid : Aid.t }
  | Cycle_cut of { iid : Interval_id.t; aid : Aid.t }

(* Hot-path metric handles, resolved once at [install] — HOPE primitives
   and control handling bump record fields, not string-hashed lookups. *)
type rt_metrics = {
  c_intervals_started : Metrics.counter;
  c_affirms_definite : Metrics.counter;
  c_affirms_speculative : Metrics.counter;
  c_denies : Metrics.counter;
  c_denies_buffered : Metrics.counter;
  c_free_of_hits : Metrics.counter;
  c_free_of_misses : Metrics.counter;
  c_finalizes : Metrics.counter;
  c_intervals_rolled : Metrics.counter;
  c_cycle_cuts : Metrics.counter;
  c_rebinds : Metrics.counter;
  c_implicit_guesses : Metrics.counter;
  c_poisoned_locally : Metrics.counter;
  c_cancel_rollbacks : Metrics.counter;
  c_speculative_spawns : Metrics.counter;
  c_aids_created : Metrics.counter;
  c_aids_retired : Metrics.counter;
  c_escalations : Metrics.counter;
  c_deescalations : Metrics.counter;
  g_escalated : Metrics.gauge;
  h_ido_size : Metrics.histogram;
  h_spec_depth : Metrics.histogram;
}

(* A grow-only set of AIDs as a bitset over {!Aid.index}: [add] is a bit
   store and [mem] a bit test, both allocation-free on the steady-state
   path ([Aid.Set.add] would rebuild its sorted array, O(n) minor words
   per resolved AID over a long run). *)
module Known = struct
  type t = { mutable bits : Bytes.t }

  let create () = { bits = Bytes.empty }

  let mem t aid =
    let i = Aid.index aid in
    let byte = i lsr 3 in
    byte < Bytes.length t.bits
    && Char.code (Bytes.unsafe_get t.bits byte) land (1 lsl (i land 7)) <> 0

  let add t aid =
    let i = Aid.index aid in
    let byte = i lsr 3 in
    if byte >= Bytes.length t.bits then begin
      let n = Bytes.make (max 16 (2 * (byte + 1))) '\000' in
      Bytes.blit t.bits 0 n 0 (Bytes.length t.bits);
      t.bits <- n
    end;
    Bytes.unsafe_set t.bits byte
      (Char.chr (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl (i land 7))))

  (* The escalated-AID set is the one consumer of removal (de-escalation
     clears the bit); the terminal-state caches stay grow-only. *)
  let remove t aid =
    let i = Aid.index aid in
    let byte = i lsr 3 in
    if byte < Bytes.length t.bits then
      Bytes.unsafe_set t.bits byte
        (Char.chr
           (Char.code (Bytes.unsafe_get t.bits byte)
           land lnot (1 lsl (i land 7))))

  let intersects s t =
    (not (Aid.Set.is_empty s)) && Aid.Set.exists (fun a -> mem t a) s

  (* Members of [t] removed from [s]; [s] itself when disjoint (the
     common case — no allocation). *)
  let diff s t =
    if intersects s t then Aid.Set.filter (fun a -> not (mem t a)) s else s
end

(* The actuator surface a speculation governor (lib/gov) plugs into. The
   runtime stays passive: with no governor installed every call site
   below short-circuits on a [None] field test, so the ungoverned hot
   path is byte-identical to the pre-governor runtime. *)
type governor = {
  gate_guess : Proc_id.t -> Aid.t -> bool;
      (* [false] refuses the speculation: the guess returns [false]
         immediately (the pessimistic branch) *)
  cut_replace : target:Interval_id.t -> sender:Aid.t -> candidate:Aid.t -> bool;
      (* rule a Replace replacement candidate a cycle on churn evidence *)
  send_delay : Proc_id.t -> depth:int -> float;
      (* extra virtual cost for a user send at speculation depth [depth] *)
  note_denial : Proc_id.t -> Aid.t -> unit;
      (* observation feedback: [pid] rolled back because [aid] was denied *)
}

type t = {
  sched : Scheduler.t;
  cfg : config;
  histories : (Proc_id.t, History.t) Hashtbl.t;
  aids : (Proc_id.t, Aid_machine.t) Hashtbl.t;
  mutable aid_count : int;
  cuts : int ref;
  rm : rt_metrics;
  event_log : event Vec.t;
  (* Per-process caches of AIDs observed in a terminal state, learned from
     the source of Replace-with-empty-IDO (True) and Rollback (False)
     messages. Terminal states are final (Figure 4), so the caches are
     sound; they let a process drop known-dead messages without the
     Guess/Rollback round trip and skip registrations with known-True
     AIDs. Realised as dense bitsets over the interned AID index (see
     [Known] below): these caches only grow, so a persistent [Aid.Set]
     would copy its whole array per learned AID. *)
  known_true : (Proc_id.t, Known.t) Hashtbl.t;
  known_false : (Proc_id.t, Known.t) Hashtbl.t;
  definite_iids : (Proc_id.t, Interval_id.t) Hashtbl.t;
      (* per-process definite interval id (seq = -1), cached so definite
         affirms/denies do not rebuild the same record every time *)
  mutable cycle_cut : Interval_id.t -> Aid.t -> unit;
      (* the one [Control.handle_replace ~on_cycle_cut] callback, built at
         [install] — Replace handling is per-message hot *)
  mutable aid_reply : Aid.t -> Interval_id.t -> Wire.t -> unit;
      (* the one [Aid_machine.handle_into ~reply] callback, shared by all
         AID actors — one control message in can mean several out *)
  mutable aid_transition : Aid.t -> Aid_machine.state -> Aid_machine.state -> unit;
      (* the one [Aid_machine.create ~on_transition] observer, shared by
         all machines instead of a closure per spawned AID *)
  mutable gov : governor option;
  mutable gov_cut :
    (target:Interval_id.t -> sender:Aid.t -> candidate:Aid.t -> bool) option;
      (* [Option.map (fun g -> g.cut_replace) gov], materialized once at
         [set_governor] so Replace handling passes it without allocating *)
  escalated : Known.t;
      (* AIDs operating pessimistically (DESIGN.md §10): the guess hook
         tests one bit here per explicit guess, so with nothing escalated
         the path is identical to the pre-escalation runtime *)
  mutable n_escalated : int;
  mutable acquire_bound : float;
      (* virtual-time bound on a queued acquire wait before the ticket is
         withdrawn and the guess takes its pessimistic branch *)
}

let scheduler t = t.sched
let config t = t.cfg

let set_governor t g =
  t.gov <- Some g;
  t.gov_cut <- Some g.cut_replace

let clear_governor t =
  t.gov <- None;
  t.gov_cut <- None

let governed t = t.gov <> None

let now t = Engine.now (Scheduler.engine t.sched)

let record t ev = if t.cfg.record_events then Vec.push t.event_log ev

(* The structured observability channel (lib/obs). The recorder lives in
   the engine; hot call sites guard on [obs_on] so the event payload is
   not even allocated while it is disabled. *)
let obs t = Engine.obs (Scheduler.engine t.sched)

let obs_on t = Hope_obs.Recorder.enabled (obs t)

(* [Dep_resolved] is one event per Replace message — far denser than the
   rest of the core stream — so its site has its own guard class and a
   monitor-only tap pays neither the payload nor the emit closure. *)
let obs_dep_on t = Hope_obs.Recorder.enabled_dep (obs t)

let emit t ~proc payload =
  Hope_obs.Recorder.emit (obs t) ~time:(now t) ~proc payload

let obs_state : Aid_machine.state -> Hope_obs.Event.aid_state = function
  | Aid_machine.Cold -> Hope_obs.Event.Cold
  | Aid_machine.Hot -> Hope_obs.Event.Hot
  | Aid_machine.Maybe -> Hope_obs.Event.Maybe
  | Aid_machine.True_ -> Hope_obs.Event.True_
  | Aid_machine.False_ -> Hope_obs.Event.False_

let obs_kind : History.kind -> Hope_obs.Event.interval_kind = function
  | History.Explicit -> Hope_obs.Event.Explicit
  | History.Implicit -> Hope_obs.Event.Implicit

let obs_cause : Scheduler.rollback_cause -> Hope_obs.Event.rollback_cause =
  function
  | Scheduler.Assumption_denied x -> Hope_obs.Event.Denied x
  | Scheduler.Assumption_revoked -> Hope_obs.Event.Revoked
  | Scheduler.Message_cancelled id -> Hope_obs.Event.Cancelled id

let known_set tbl pid =
  try Hashtbl.find tbl pid
  with Not_found ->
    let r = Known.create () in
    Hashtbl.add tbl pid r;
    r

let learn_true t pid aid =
  if t.cfg.cache_terminal_states then Known.add (known_set t.known_true pid) aid

let learn_false t pid aid =
  if t.cfg.cache_terminal_states then Known.add (known_set t.known_false pid) aid

(* The three lookups below run once or more per HOPE primitive;
   [Hashtbl.find] rather than [find_opt] spares the [Some] box each time. *)
let history_of t pid = Hashtbl.find t.histories pid

let history_or_create t pid =
  try Hashtbl.find t.histories pid
  with Not_found ->
    let h = History.create pid in
    Hashtbl.add t.histories pid h;
    h

let aid_machine t aid = Hashtbl.find t.aids (Aid.to_proc aid)

let aid_state t aid = (aid_machine t aid).Aid_machine.state

(* -------------------- per-AID escalation (§10) -------------------- *)

let aid_escalated t aid = Known.mem t.escalated aid

let set_acquire_bound t bound =
  if bound <= 0.0 then invalid_arg "Runtime.set_acquire_bound: bound <= 0";
  t.acquire_bound <- bound

let escalate_aid t aid =
  if not (Known.mem t.escalated aid) then begin
    Aid_machine.escalate (aid_machine t aid);
    Known.add t.escalated aid;
    t.n_escalated <- t.n_escalated + 1;
    Metrics.incr t.rm.c_escalations;
    Metrics.set_gauge t.rm.g_escalated (float_of_int t.n_escalated)
  end

let deescalate_aid t aid =
  if Known.mem t.escalated aid then begin
    Aid_machine.deescalate (aid_machine t aid) ~reply:t.aid_reply;
    Known.remove t.escalated aid;
    t.n_escalated <- t.n_escalated - 1;
    Metrics.incr t.rm.c_deescalations;
    Metrics.set_gauge t.rm.g_escalated (float_of_int t.n_escalated)
  end

let all_aids t =
  Hashtbl.fold (fun _ m acc -> m.Aid_machine.aid :: acc) t.aids []
  |> List.sort Aid.compare

let live_intervals t =
  Hashtbl.fold (fun _ h acc -> acc + History.depth h) t.histories 0

let cycle_cuts t = !(t.cuts)

let events t = Vec.to_list t.event_log

(* -------------------- AID garbage collection ---------------------- *)

type gc_stats = { swept : int; retired : int; live : int }

(* The reference-counting GC of §5.2, realised as a sweep over the
   runtime's global knowledge (the simulator can see every reference the
   prototype would have counted): a terminal AID whose identity no live
   interval holds — in IDO, UDO, IHA, or IHD — can never influence
   dependency tracking again. Retiring it frees its DOM and A_IDO sets;
   the tombstone keeps answering late Guess messages from its terminal
   state. In-flight message tags need no scan: a tag AID is always also
   in the sender's live IDO (or the sender rolled back, making the
   message droppable on sight). *)
let collect_garbage t =
  let referenced = ref Aid.Set.empty in
  Hashtbl.iter
    (fun _ hist ->
      (* IDO and UDO come from the history's cumulative caches (memoized
         unions); only the usually-empty IHA/IHD sets need a sweep. *)
      referenced := Aid.Set.union !referenced (History.cumulative_ido hist);
      referenced := Aid.Set.union !referenced (History.cumulative_udo hist);
      History.iter_live
        (fun itv ->
          referenced := Aid.Set.union !referenced itv.History.iha;
          referenced := Aid.Set.union !referenced itv.History.ihd)
        hist)
    t.histories;
  let swept = ref 0 and retired = ref 0 and live = ref 0 in
  Hashtbl.iter
    (fun _ machine ->
      incr swept;
      if machine.Aid_machine.retired then incr retired
      else if
        Aid_machine.is_final machine
        && not (Aid.Set.mem machine.Aid_machine.aid !referenced)
      then begin
        Aid_machine.retire machine;
        incr retired;
        Metrics.incr t.rm.c_aids_retired
      end
      else incr live)
    t.aids;
  { swept = !swept; retired = !retired; live = !live }

(* ------------------------------------------------------------------ *)
(* AID processes                                                       *)
(* ------------------------------------------------------------------ *)

let aid_actor_handler t ~self ~src:_ (env : Envelope.t) =
  match env.Envelope.payload with
  | Envelope.Control wire ->
    let machine =
      try Hashtbl.find t.aids self
      with Not_found -> failwith "AID actor without a machine (internal error)"
    in
    Aid_machine.handle_into machine wire ~reply:t.aid_reply
  | Envelope.User _ | Envelope.Cancel _ ->
    failwith
      (Printf.sprintf "AID process %s received a non-control message"
         (Proc_id.to_string self))

let spawn_aid t ~node =
  t.aid_count <- t.aid_count + 1;
  let name = "aid-" ^ string_of_int t.aid_count in
  let apid = Scheduler.spawn_actor t.sched ~node ~name (aid_actor_handler t) in
  let aid = Aid.of_proc apid in
  Hashtbl.add t.aids apid
    (Aid_machine.create ~strict:t.cfg.strict_aids
       ~on_transition:t.aid_transition aid);
  Metrics.incr t.rm.c_aids_created;
  record t (Aid_created aid);
  if obs_on t then emit t ~proc:apid (Hope_obs.Event.Aid_create { aid });
  aid

let placement_node t ~creator =
  match t.cfg.aid_placement with
  | Colocate -> Network.node_of (Scheduler.network t.sched) (Proc_id.to_int creator)
  | Fixed_node n -> n

let fresh_aid t ?(node = 0) () = spawn_aid t ~node

(* ------------------------------------------------------------------ *)
(* Interval creation                                                   *)
(* ------------------------------------------------------------------ *)

(* Begin a new speculative interval and register it with every AID it
   depends on (the full-registration reading of §5.2: each interval must
   be in the DOM of every AID in its IDO for Replace/Rollback messages to
   reach it — see DESIGN.md §3.3 and Lemma 5.3). *)
let begin_interval t pid ~kind ~extra_deps =
  let hist = history_or_create t pid in
  (* Inherited dependencies already known True carry no information and
     are skipped; the interval's own new dependencies are always kept so a
     guess on an already-resolved AID still resolves through the normal
     Replace/Rollback reply. *)
  let inherited =
    Known.diff (History.cumulative_ido hist) (known_set t.known_true pid)
  in
  let ido = Aid.Set.union inherited extra_deps in
  let itv = History.push hist ~kind ~ido ~now:(now t) in
  Aid.Set.iter
    (fun y ->
      Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc y)
        (Wire.Guess { iid = itv.History.iid }))
    ido;
  Metrics.incr t.rm.c_intervals_started;
  Metrics.observe_int t.rm.h_ido_size (Aid.Set.cardinal ido);
  Metrics.observe_int t.rm.h_spec_depth (History.depth hist);
  record t (Interval_started { iid = itv.History.iid; kind; ido; at = now t });
  if obs_on t then
    emit t ~proc:pid
      (Hope_obs.Event.Interval_open
         { iid = itv.History.iid; kind = obs_kind kind; ido });
  itv

(* ------------------------------------------------------------------ *)
(* Affirm / Deny / Free_of                                             *)
(* ------------------------------------------------------------------ *)

let definite_iid t pid =
  try Hashtbl.find t.definite_iids pid
  with Not_found ->
    let iid = Interval_id.make ~owner:pid ~seq:(-1) in
    Hashtbl.add t.definite_iids pid iid;
    iid

let do_affirm t pid x =
  let hist = history_or_create t pid in
  if History.depth hist = 0 then begin
    (* Definite affirm: <Affirm, iid, {}> drives the AID to True. *)
    Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc x)
      (Wire.Affirm { iid = definite_iid t pid; ido = Aid.Set.empty });
    Metrics.incr t.rm.c_affirms_definite;
    record t (Affirm_sent { aid = x; speculative = false });
    if obs_on t then
      emit t ~proc:pid
        (Hope_obs.Event.Affirm { aid = x; iid = None; speculative = false })
  end
  else begin
    (* Speculative affirm: contingent on the process's dependency set. *)
    let cur = History.top_exn hist in
    let ido = History.cumulative_ido hist in
    cur.History.iha <- Aid.Set.add x cur.History.iha;
    Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc x)
      (Wire.Affirm { iid = cur.History.iid; ido });
    Metrics.incr t.rm.c_affirms_speculative;
    record t (Affirm_sent { aid = x; speculative = true });
    if obs_on t then
      emit t ~proc:pid
        (Hope_obs.Event.Affirm
           { aid = x; iid = Some cur.History.iid; speculative = true })
  end

let do_deny t pid x =
  let hist = history_or_create t pid in
  if History.depth hist = 0 then begin
    Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc x)
      (Wire.Deny { iid = definite_iid t pid });
    Metrics.incr t.rm.c_denies;
    record t (Deny_sent { aid = x; speculative = false });
    if obs_on t then
      emit t ~proc:pid
        (Hope_obs.Event.Deny { aid = x; iid = None; buffered = false })
  end
  else
    let cur = History.top_exn hist in
    if t.cfg.buffer_speculative_denies then begin
      cur.History.ihd <- Aid.Set.add x cur.History.ihd;
      Metrics.incr t.rm.c_denies_buffered;
      record t (Deny_buffered { aid = x; by = cur.History.iid });
      if obs_on t then
        emit t ~proc:pid
          (Hope_obs.Event.Deny
             { aid = x; iid = Some cur.History.iid; buffered = true })
    end
    else begin
      (* Table 1: denies are unconditional even from speculative senders. *)
      Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc x)
        (Wire.Deny { iid = cur.History.iid });
      Metrics.incr t.rm.c_denies;
      record t (Deny_sent { aid = x; speculative = true });
      if obs_on t then
        emit t ~proc:pid
          (Hope_obs.Event.Deny
             { aid = x; iid = Some cur.History.iid; buffered = false })
    end

let do_free_of t pid x =
  let hist = history_or_create t pid in
  if History.depends_on hist x then begin
    Metrics.incr t.rm.c_free_of_hits;
    record t (Free_of_hit { aid = x });
    if obs_on t then
      emit t ~proc:pid (Hope_obs.Event.Free_of { aid = x; hit = true });
    do_deny t pid x
  end
  else begin
    Metrics.incr t.rm.c_free_of_misses;
    record t (Free_of_miss { aid = x });
    if obs_on t then
      emit t ~proc:pid (Hope_obs.Event.Free_of { aid = x; hit = false });
    do_affirm t pid x
  end

(* ------------------------------------------------------------------ *)
(* Control message interpretation                                      *)
(* ------------------------------------------------------------------ *)

(* Shared tail of every rollback: retract the rolled intervals'
   speculative affirms with Revoke, record events, and hand the suffix to
   the scheduler for checkpoint restoration and message cancellation. *)
let perform_rollback t pid ~(target : History.interval) ~rolled ~cause =
  if obs_on t then
    emit t ~proc:pid
      (Hope_obs.Event.Rollback_cascade
         {
           target = target.History.iid;
           rolled = List.map (fun itv -> itv.History.iid) rolled;
           cause = obs_cause cause;
         });
  List.iter
    (fun itv ->
      Aid.Set.iter
        (fun y ->
          Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc y)
            (Wire.Revoke { iid = itv.History.iid }))
        itv.History.iha;
      Metrics.incr t.rm.c_intervals_rolled;
      record t (Interval_rolled_back itv.History.iid))
    rolled;
  Scheduler.rollback t.sched pid ~target:target.History.iid
    ~rolled:(List.map (fun itv -> itv.History.iid) rolled)
    ~cause

let interpret_action t pid = function
  | Control.Send_guess { aid; iid } ->
    Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc aid) (Wire.Guess { iid })
  | Control.Finalized itv ->
    (* Checkpoint GC: [Finalized] actions come from the front of the
       history ([History.drop_oldest_finalized] — the cumulative-IDO
       cache proving nothing older can roll us back), so the released
       interval is always the scheduler's oldest journal segment and its
       checkpoint, send records, and consumption claims die in one
       stroke — the finalize rule applied to storage. *)
    Scheduler.release_interval t.sched pid itv.History.iid;
    (* Figure 11, finalize: speculative affirms become definite, buffered
       denies are released. *)
    Aid.Set.iter
      (fun y ->
        Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc y)
          (Wire.Affirm { iid = itv.History.iid; ido = Aid.Set.empty }))
      itv.History.iha;
    Aid.Set.iter
      (fun y ->
        Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc y)
          (Wire.Deny { iid = itv.History.iid }))
      itv.History.ihd;
    Metrics.incr t.rm.c_finalizes;
    record t (Interval_finalized itv.History.iid);
    if obs_on t then
      emit t ~proc:pid
        (Hope_obs.Event.Interval_finalize { iid = itv.History.iid })
  | Control.Rolled_back { target; rolled; reason } ->
    (* Figure 11, rollback: a rolled-back interval's speculative affirms
       are retracted with Revoke — returning the AIDs from Maybe to Hot so
       the re-executed affirm can rule again (Theorem 5.1 requires this;
       a terminal Deny here would falsify assumptions whose re-executed,
       eventually-definite affirms say True — see DESIGN.md §3.1).
       Buffered denies (IHD) are simply dropped. *)
    (match (reason, t.gov) with
    | Control.Denial x, Some g -> g.note_denial pid x
    | _ -> ());
    perform_rollback t pid ~target ~rolled
      ~cause:
        (match reason with
        | Control.Denial x -> Scheduler.Assumption_denied x
        | Control.Revocation -> Scheduler.Assumption_revoked)

let on_control t ~self ~src wire =
  let hist = history_or_create t self in
  let src_aid = Aid.of_proc src in
  let actions =
    match wire with
    | Wire.Replace { iid; ido } ->
      if Aid.Set.is_empty ido then learn_true t self src_aid;
      Control.handle_replace
        ?emit:
          (if obs_dep_on t then Some (fun payload -> emit t ~proc:self payload)
           else None)
        ?cut:t.gov_cut t.cfg.algorithm hist ~target:iid ~sender:src_aid ~ido
        ~on_cycle_cut:t.cycle_cut
    | Wire.Rollback { iid } ->
      learn_false t self src_aid;
      Control.handle_rollback hist ~target:iid ~denied:src_aid
    | Wire.Rebind { iid } ->
      Metrics.incr t.rm.c_rebinds;
      Control.handle_rebind hist ~target:iid ~sender:src_aid
    | Wire.Grant { iid } ->
      Scheduler.resolve_acquire t.sched self ~src ~ticket:iid ~granted:true;
      []
    | Wire.Abort { iid } ->
      Scheduler.resolve_acquire t.sched self ~src ~ticket:iid ~granted:false;
      []
    | Wire.Guess _ | Wire.Affirm _ | Wire.Deny _ | Wire.Revoke _
    | Wire.Acquire _ | Wire.Release _ ->
      failwith
        (Printf.sprintf "user process %s received %s (only AID processes do)"
           (Proc_id.to_string self) (Wire.type_name wire))
  in
  List.iter (interpret_action t self) actions

(* ------------------------------------------------------------------ *)
(* Hook installation                                                   *)
(* ------------------------------------------------------------------ *)

let install sched ?(config = default_config) () =
  let reg = Engine.metrics (Scheduler.engine sched) in
  let rm =
    {
      c_intervals_started = Metrics.counter reg "hope.intervals_started";
      c_affirms_definite = Metrics.counter reg "hope.affirms_definite";
      c_affirms_speculative = Metrics.counter reg "hope.affirms_speculative";
      c_denies = Metrics.counter reg "hope.denies";
      c_denies_buffered = Metrics.counter reg "hope.denies_buffered";
      c_free_of_hits = Metrics.counter reg "hope.free_of_hits";
      c_free_of_misses = Metrics.counter reg "hope.free_of_misses";
      c_finalizes = Metrics.counter reg "hope.finalizes";
      c_intervals_rolled = Metrics.counter reg "hope.intervals_rolled";
      c_cycle_cuts = Metrics.counter reg "hope.cycle_cuts";
      c_rebinds = Metrics.counter reg "hope.rebinds";
      c_implicit_guesses = Metrics.counter reg "hope.implicit_guesses";
      c_poisoned_locally = Metrics.counter reg "hope.messages_poisoned_locally";
      c_cancel_rollbacks = Metrics.counter reg "hope.cancel_rollbacks";
      c_speculative_spawns = Metrics.counter reg "hope.speculative_spawns";
      c_aids_created = Metrics.counter reg "hope.aids_created";
      c_aids_retired = Metrics.counter reg "hope.aids_retired";
      c_escalations = Metrics.counter reg "hope.escalations";
      c_deescalations = Metrics.counter reg "hope.deescalations";
      g_escalated = Metrics.gauge reg "hope.aids_escalated";
      h_ido_size = Metrics.histogram reg "hope.interval_ido_size";
      h_spec_depth = Metrics.histogram reg "hope.speculation_depth";
    }
  in
  let t =
    {
      sched;
      cfg = config;
      histories = Hashtbl.create 64;
      aids = Hashtbl.create 64;
      aid_count = 0;
      cuts = ref 0;
      rm;
      event_log = Vec.create ();
      known_true = Hashtbl.create 64;
      known_false = Hashtbl.create 64;
      definite_iids = Hashtbl.create 64;
      cycle_cut = (fun _ _ -> ());
      aid_reply = (fun _ _ _ -> ());
      aid_transition = (fun _ _ _ -> ());
      gov = None;
      gov_cut = None;
      escalated = Known.create ();
      n_escalated = 0;
      acquire_bound = 50e-3;
    }
  in
  t.aid_reply <-
    (fun aid iid wire ->
      Scheduler.send_wire t.sched ~src:(Aid.to_proc aid)
        ~dst:(Interval_id.owner iid) wire);
  t.aid_transition <-
    (fun aid from_ to_ ->
      if obs_on t then
        emit t ~proc:(Aid.to_proc aid)
          (Hope_obs.Event.Aid_transition
             { aid; from_ = obs_state from_; to_ = obs_state to_ }));
  (* An interval id's owner is the process whose history holds it, so the
     cycle-cut callback recovers the acting process from [iid] — one
     closure for the runtime's lifetime instead of one per Replace. *)
  t.cycle_cut <-
    (fun iid aid ->
      incr t.cuts;
      Metrics.incr t.rm.c_cycle_cuts;
      record t (Cycle_cut { iid; aid });
      if obs_on t then
        emit t ~proc:(Interval_id.owner iid) (Hope_obs.Event.Cycle_cut { iid; aid }));
  let hooks =
    {
      Scheduler.h_tags =
        (fun pid -> History.cumulative_ido (history_or_create t pid));
      h_current =
        (fun pid ->
          let h = history_or_create t pid in
          if History.depth h = 0 then None
          else Some (History.top_exn h).History.iid);
      h_aid_init = (fun pid -> spawn_aid t ~node:(placement_node t ~creator:pid));
      h_guess =
        (fun pid x ->
          (* Escalated AIDs route to the acquisition queue before the
             governor's cruder gate is consulted: escalation IS the
             governor's stronger answer for this AID. One bit test on
             the (usually empty) escalated set — with nothing escalated
             the path is the pre-escalation one, allocation-free. *)
          if Known.mem t.escalated x then
            Scheduler.Acquire { bound = t.acquire_bound }
          else
            match t.gov with
            | Some g when not (g.gate_guess pid x) -> Scheduler.Pessimistic
            | _ ->
              let itv =
                begin_interval t pid ~kind:History.Explicit
                  ~extra_deps:(Aid.Set.singleton x)
              in
              Scheduler.Speculate itv.History.iid);
      h_send_delay =
        (fun pid ->
          match t.gov with
          | None -> 0.0
          | Some g ->
            g.send_delay pid ~depth:(History.depth (history_or_create t pid)));
      h_implicit =
        (fun pid env ->
          let tags = Envelope.tags env in
          if Aid.Set.is_empty tags then Scheduler.Accept None
          else if
            t.cfg.cache_terminal_states
            && Known.intersects tags (known_set t.known_false pid)
          then begin
            (* A tag AID is already denied: the message's content is
               predicated on a falsehood, so it is dropped without the
               Guess/Rollback round trip. *)
            Metrics.incr t.rm.c_poisoned_locally;
            Scheduler.Reject
          end
          else begin
            let live_tags =
              if t.cfg.cache_terminal_states then
                Known.diff tags (known_set t.known_true pid)
              else tags
            in
            if Aid.Set.is_empty live_tags then
              (* Every tag already resolved True: the message is definite. *)
              Scheduler.Accept None
            else begin
              Metrics.incr t.rm.c_implicit_guesses;
              let itv =
                begin_interval t pid ~kind:History.Implicit ~extra_deps:live_tags
              in
              Scheduler.Accept (Some itv.History.iid)
            end
          end);
      h_affirm = (fun pid x -> do_affirm t pid x);
      h_deny = (fun pid x -> do_deny t pid x);
      h_free_of = (fun pid x -> do_free_of t pid x);
      h_control = (fun ~self ~src wire -> on_control t ~self ~src wire);
      h_cancelled =
        (fun ~self ~iid ~msg_id ->
          (* A message this process consumed was retracted by its
             rolled-back sender: the consuming interval (and everything
             after it) re-executes without it. *)
          let hist = history_or_create t self in
          match History.find hist iid with
          | None -> ()  (* already rolled back by another cause *)
          | Some target ->
            let rolled = History.truncate_from hist iid in
            Metrics.incr t.rm.c_cancel_rollbacks;
            perform_rollback t self ~target ~rolled
              ~cause:(Scheduler.Message_cancelled msg_id));
      h_spawned = (fun pid -> ignore (history_or_create t pid : History.t));
      h_spawn_child =
        (fun ~parent ~child ->
          let deps = History.cumulative_ido (history_or_create t parent) in
          if Aid.Set.is_empty deps then None
          else begin
            Metrics.incr t.rm.c_speculative_spawns;
            let itv =
              begin_interval t child ~kind:History.Implicit ~extra_deps:deps
            in
            Some itv.History.iid
          end);
      h_terminated = (fun _pid -> ());
    }
  in
  Scheduler.set_hooks sched hooks;
  t

let pp_event ppf = function
  | Aid_created a -> Format.fprintf ppf "aid-created %a" Aid.pp a
  | Interval_started { iid; kind; ido; at = _ } ->
    Format.fprintf ppf "interval-started %a (%s) ido=%a" Interval_id.pp iid
      (match kind with History.Explicit -> "guess" | History.Implicit -> "recv")
      Aid.Set.pp ido
  | Interval_finalized iid -> Format.fprintf ppf "finalized %a" Interval_id.pp iid
  | Interval_rolled_back iid ->
    Format.fprintf ppf "rolled-back %a" Interval_id.pp iid
  | Affirm_sent { aid; speculative } ->
    Format.fprintf ppf "affirm %a%s" Aid.pp aid (if speculative then " (spec)" else "")
  | Deny_sent { aid; speculative } ->
    Format.fprintf ppf "deny %a%s" Aid.pp aid (if speculative then " (spec)" else "")
  | Deny_buffered { aid; by } ->
    Format.fprintf ppf "deny-buffered %a by %a" Aid.pp aid Interval_id.pp by
  | Free_of_hit { aid } -> Format.fprintf ppf "free_of hit %a" Aid.pp aid
  | Free_of_miss { aid } -> Format.fprintf ppf "free_of miss %a" Aid.pp aid
  | Cycle_cut { iid; aid } ->
    Format.fprintf ppf "cycle-cut %a dropped %a" Interval_id.pp iid Aid.pp aid
