open Hope_types
module Scheduler = Hope_proc.Scheduler
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Vec = Hope_sim.Vec
module Network = Hope_net.Network

type aid_placement = Colocate | Fixed_node of int

type config = {
  algorithm : Control.algorithm;
  strict_aids : bool;
  buffer_speculative_denies : bool;
  aid_placement : aid_placement;
  record_events : bool;
  cache_terminal_states : bool;
}

let default_config =
  {
    algorithm = Control.Algorithm_2;
    strict_aids = false;
    buffer_speculative_denies = false;
    aid_placement = Colocate;
    record_events = true;
    cache_terminal_states = true;
  }

type event =
  | Aid_created of Aid.t
  | Interval_started of {
      iid : Interval_id.t;
      kind : History.kind;
      ido : Aid.Set.t;
      at : float;
    }
  | Interval_finalized of Interval_id.t
  | Interval_rolled_back of Interval_id.t
  | Affirm_sent of { aid : Aid.t; speculative : bool }
  | Deny_sent of { aid : Aid.t; speculative : bool }
  | Deny_buffered of { aid : Aid.t; by : Interval_id.t }
  | Free_of_hit of { aid : Aid.t }
  | Free_of_miss of { aid : Aid.t }
  | Cycle_cut of { iid : Interval_id.t; aid : Aid.t }

type t = {
  sched : Scheduler.t;
  cfg : config;
  histories : (Proc_id.t, History.t) Hashtbl.t;
  aids : (Proc_id.t, Aid_machine.t) Hashtbl.t;
  mutable aid_count : int;
  cuts : int ref;
  event_log : event Vec.t;
  (* Per-process caches of AIDs observed in a terminal state, learned from
     the source of Replace-with-empty-IDO (True) and Rollback (False)
     messages. Terminal states are final (Figure 4), so the caches are
     sound; they let a process drop known-dead messages without the
     Guess/Rollback round trip and skip registrations with known-True
     AIDs. *)
  known_true : (Proc_id.t, Aid.Set.t ref) Hashtbl.t;
  known_false : (Proc_id.t, Aid.Set.t ref) Hashtbl.t;
}

let scheduler t = t.sched
let config t = t.cfg

let metrics t = Engine.metrics (Scheduler.engine t.sched)
let now t = Engine.now (Scheduler.engine t.sched)
let counter t name = Metrics.counter (metrics t) name

let record t ev = if t.cfg.record_events then Vec.push t.event_log ev

(* The structured observability channel (lib/obs). The recorder lives in
   the engine; emission is a single dead branch while it is disabled. *)
let obs t = Engine.obs (Scheduler.engine t.sched)

let emit t ~proc payload =
  Hope_obs.Recorder.emit (obs t) ~time:(now t) ~proc payload

let obs_state : Aid_machine.state -> Hope_obs.Event.aid_state = function
  | Aid_machine.Cold -> Hope_obs.Event.Cold
  | Aid_machine.Hot -> Hope_obs.Event.Hot
  | Aid_machine.Maybe -> Hope_obs.Event.Maybe
  | Aid_machine.True_ -> Hope_obs.Event.True_
  | Aid_machine.False_ -> Hope_obs.Event.False_

let obs_kind : History.kind -> Hope_obs.Event.interval_kind = function
  | History.Explicit -> Hope_obs.Event.Explicit
  | History.Implicit -> Hope_obs.Event.Implicit

let obs_cause : Scheduler.rollback_cause -> Hope_obs.Event.rollback_cause =
  function
  | Scheduler.Assumption_denied x -> Hope_obs.Event.Denied x
  | Scheduler.Assumption_revoked -> Hope_obs.Event.Revoked
  | Scheduler.Message_cancelled id -> Hope_obs.Event.Cancelled id

let known_set tbl pid =
  match Hashtbl.find_opt tbl pid with
  | Some r -> r
  | None ->
    let r = ref Aid.Set.empty in
    Hashtbl.add tbl pid r;
    r

let learn_true t pid aid =
  if t.cfg.cache_terminal_states then
    let r = known_set t.known_true pid in
    r := Aid.Set.add aid !r

let learn_false t pid aid =
  if t.cfg.cache_terminal_states then
    let r = known_set t.known_false pid in
    r := Aid.Set.add aid !r

let history_of t pid =
  match Hashtbl.find_opt t.histories pid with
  | Some h -> h
  | None -> raise Not_found

let history_or_create t pid =
  match Hashtbl.find_opt t.histories pid with
  | Some h -> h
  | None ->
    let h = History.create pid in
    Hashtbl.add t.histories pid h;
    h

let aid_machine t aid =
  match Hashtbl.find_opt t.aids (Aid.to_proc aid) with
  | Some m -> m
  | None -> raise Not_found

let aid_state t aid = (aid_machine t aid).Aid_machine.state

let all_aids t =
  Hashtbl.fold (fun _ m acc -> m.Aid_machine.aid :: acc) t.aids []
  |> List.sort Aid.compare

let live_intervals t =
  Hashtbl.fold (fun _ h acc -> acc + History.depth h) t.histories 0

let cycle_cuts t = !(t.cuts)

let events t = Vec.to_list t.event_log

(* -------------------- AID garbage collection ---------------------- *)

type gc_stats = { swept : int; retired : int; live : int }

(* The reference-counting GC of §5.2, realised as a sweep over the
   runtime's global knowledge (the simulator can see every reference the
   prototype would have counted): a terminal AID whose identity no live
   interval holds — in IDO, UDO, IHA, or IHD — can never influence
   dependency tracking again. Retiring it frees its DOM and A_IDO sets;
   the tombstone keeps answering late Guess messages from its terminal
   state. In-flight message tags need no scan: a tag AID is always also
   in the sender's live IDO (or the sender rolled back, making the
   message droppable on sight). *)
let collect_garbage t =
  let referenced = ref Aid.Set.empty in
  Hashtbl.iter
    (fun _ hist ->
      (* IDO and UDO come from the history's cumulative caches (memoized
         unions); only the usually-empty IHA/IHD sets need a sweep. *)
      referenced := Aid.Set.union !referenced (History.cumulative_ido hist);
      referenced := Aid.Set.union !referenced (History.cumulative_udo hist);
      History.iter_live
        (fun itv ->
          referenced := Aid.Set.union !referenced itv.History.iha;
          referenced := Aid.Set.union !referenced itv.History.ihd)
        hist)
    t.histories;
  let swept = ref 0 and retired = ref 0 and live = ref 0 in
  Hashtbl.iter
    (fun _ machine ->
      incr swept;
      if machine.Aid_machine.retired then incr retired
      else if
        Aid_machine.is_final machine
        && not (Aid.Set.mem machine.Aid_machine.aid !referenced)
      then begin
        Aid_machine.retire machine;
        incr retired;
        Metrics.incr (counter t "hope.aids_retired")
      end
      else incr live)
    t.aids;
  { swept = !swept; retired = !retired; live = !live }

(* ------------------------------------------------------------------ *)
(* AID processes                                                       *)
(* ------------------------------------------------------------------ *)

let aid_actor_handler t ~self ~src:_ (env : Envelope.t) =
  match env.Envelope.payload with
  | Envelope.Control wire ->
    let machine =
      match Hashtbl.find_opt t.aids self with
      | Some m -> m
      | None -> failwith "AID actor without a machine (internal error)"
    in
    let actions = Aid_machine.handle machine wire in
    List.iter
      (fun (Aid_machine.Reply { iid; wire }) ->
        Scheduler.send_wire t.sched ~src:self ~dst:(Interval_id.owner iid) wire)
      actions
  | Envelope.User _ | Envelope.Cancel _ ->
    failwith
      (Printf.sprintf "AID process %s received a non-control message"
         (Proc_id.to_string self))

let spawn_aid t ~node =
  t.aid_count <- t.aid_count + 1;
  let name = Printf.sprintf "aid-%d" t.aid_count in
  let apid = Scheduler.spawn_actor t.sched ~node ~name (aid_actor_handler t) in
  let aid = Aid.of_proc apid in
  let on_transition from_ to_ =
    emit t ~proc:apid
      (Hope_obs.Event.Aid_transition
         { aid; from_ = obs_state from_; to_ = obs_state to_ })
  in
  Hashtbl.add t.aids apid
    (Aid_machine.create ~strict:t.cfg.strict_aids ~on_transition aid);
  Metrics.incr (counter t "hope.aids_created");
  record t (Aid_created aid);
  emit t ~proc:apid (Hope_obs.Event.Aid_create { aid });
  aid

let placement_node t ~creator =
  match t.cfg.aid_placement with
  | Colocate -> Network.node_of (Scheduler.network t.sched) (Proc_id.to_int creator)
  | Fixed_node n -> n

let fresh_aid t ?(node = 0) () = spawn_aid t ~node

(* ------------------------------------------------------------------ *)
(* Interval creation                                                   *)
(* ------------------------------------------------------------------ *)

(* Begin a new speculative interval and register it with every AID it
   depends on (the full-registration reading of §5.2: each interval must
   be in the DOM of every AID in its IDO for Replace/Rollback messages to
   reach it — see DESIGN.md §3.3 and Lemma 5.3). *)
let begin_interval t pid ~kind ~extra_deps =
  let hist = history_or_create t pid in
  (* Inherited dependencies already known True carry no information and
     are skipped; the interval's own new dependencies are always kept so a
     guess on an already-resolved AID still resolves through the normal
     Replace/Rollback reply. *)
  let inherited =
    Aid.Set.diff (History.cumulative_ido hist) !(known_set t.known_true pid)
  in
  let ido = Aid.Set.union inherited extra_deps in
  let itv = History.push hist ~kind ~ido ~now:(now t) in
  Aid.Set.iter
    (fun y ->
      Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc y)
        (Wire.Guess { iid = itv.History.iid }))
    ido;
  Metrics.incr (counter t "hope.intervals_started");
  Metrics.observe
    (Metrics.histogram (metrics t) "hope.interval_ido_size")
    (float_of_int (Aid.Set.cardinal ido));
  Metrics.observe
    (Metrics.histogram (metrics t) "hope.speculation_depth")
    (float_of_int (History.depth hist));
  record t (Interval_started { iid = itv.History.iid; kind; ido; at = now t });
  emit t ~proc:pid
    (Hope_obs.Event.Interval_open
       { iid = itv.History.iid; kind = obs_kind kind; ido });
  itv

(* ------------------------------------------------------------------ *)
(* Affirm / Deny / Free_of                                             *)
(* ------------------------------------------------------------------ *)

let definite_iid pid = Interval_id.make ~owner:pid ~seq:(-1)

let do_affirm t pid x =
  let hist = history_or_create t pid in
  match History.current hist with
  | None ->
    (* Definite affirm: <Affirm, iid, {}> drives the AID to True. *)
    Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc x)
      (Wire.Affirm { iid = definite_iid pid; ido = Aid.Set.empty });
    Metrics.incr (counter t "hope.affirms_definite");
    record t (Affirm_sent { aid = x; speculative = false });
    emit t ~proc:pid
      (Hope_obs.Event.Affirm { aid = x; iid = None; speculative = false })
  | Some cur ->
    (* Speculative affirm: contingent on the process's dependency set. *)
    let ido = History.cumulative_ido hist in
    cur.History.iha <- Aid.Set.add x cur.History.iha;
    Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc x)
      (Wire.Affirm { iid = cur.History.iid; ido });
    Metrics.incr (counter t "hope.affirms_speculative");
    record t (Affirm_sent { aid = x; speculative = true });
    emit t ~proc:pid
      (Hope_obs.Event.Affirm
         { aid = x; iid = Some cur.History.iid; speculative = true })

let do_deny t pid x =
  let hist = history_or_create t pid in
  match History.current hist with
  | Some cur when t.cfg.buffer_speculative_denies ->
    cur.History.ihd <- Aid.Set.add x cur.History.ihd;
    Metrics.incr (counter t "hope.denies_buffered");
    record t (Deny_buffered { aid = x; by = cur.History.iid });
    emit t ~proc:pid
      (Hope_obs.Event.Deny
         { aid = x; iid = Some cur.History.iid; buffered = true })
  | Some cur ->
    (* Table 1: denies are unconditional even from speculative senders. *)
    Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc x)
      (Wire.Deny { iid = cur.History.iid });
    Metrics.incr (counter t "hope.denies");
    record t (Deny_sent { aid = x; speculative = true });
    emit t ~proc:pid
      (Hope_obs.Event.Deny
         { aid = x; iid = Some cur.History.iid; buffered = false })
  | None ->
    Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc x)
      (Wire.Deny { iid = definite_iid pid });
    Metrics.incr (counter t "hope.denies");
    record t (Deny_sent { aid = x; speculative = false });
    emit t ~proc:pid
      (Hope_obs.Event.Deny { aid = x; iid = None; buffered = false })

let do_free_of t pid x =
  let hist = history_or_create t pid in
  if History.depends_on hist x then begin
    Metrics.incr (counter t "hope.free_of_hits");
    record t (Free_of_hit { aid = x });
    emit t ~proc:pid (Hope_obs.Event.Free_of { aid = x; hit = true });
    do_deny t pid x
  end
  else begin
    Metrics.incr (counter t "hope.free_of_misses");
    record t (Free_of_miss { aid = x });
    emit t ~proc:pid (Hope_obs.Event.Free_of { aid = x; hit = false });
    do_affirm t pid x
  end

(* ------------------------------------------------------------------ *)
(* Control message interpretation                                      *)
(* ------------------------------------------------------------------ *)

(* Shared tail of every rollback: retract the rolled intervals'
   speculative affirms with Revoke, record events, and hand the suffix to
   the scheduler for checkpoint restoration and message cancellation. *)
let perform_rollback t pid ~(target : History.interval) ~rolled ~cause =
  emit t ~proc:pid
    (Hope_obs.Event.Rollback_cascade
       {
         target = target.History.iid;
         rolled = List.map (fun itv -> itv.History.iid) rolled;
         cause = obs_cause cause;
       });
  List.iter
    (fun itv ->
      Aid.Set.iter
        (fun y ->
          Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc y)
            (Wire.Revoke { iid = itv.History.iid }))
        itv.History.iha;
      Metrics.incr (counter t "hope.intervals_rolled");
      record t (Interval_rolled_back itv.History.iid))
    rolled;
  Scheduler.rollback t.sched pid ~target:target.History.iid
    ~rolled:(List.map (fun itv -> itv.History.iid) rolled)
    ~cause

let interpret_action t pid = function
  | Control.Send_guess { aid; iid } ->
    Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc aid) (Wire.Guess { iid })
  | Control.Finalized itv ->
    Scheduler.forget_checkpoint t.sched pid itv.History.iid;
    Scheduler.forget_sends t.sched pid itv.History.iid;
    (* Figure 11, finalize: speculative affirms become definite, buffered
       denies are released. *)
    Aid.Set.iter
      (fun y ->
        Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc y)
          (Wire.Affirm { iid = itv.History.iid; ido = Aid.Set.empty }))
      itv.History.iha;
    Aid.Set.iter
      (fun y ->
        Scheduler.send_wire t.sched ~src:pid ~dst:(Aid.to_proc y)
          (Wire.Deny { iid = itv.History.iid }))
      itv.History.ihd;
    Metrics.incr (counter t "hope.finalizes");
    record t (Interval_finalized itv.History.iid);
    emit t ~proc:pid
      (Hope_obs.Event.Interval_finalize { iid = itv.History.iid })
  | Control.Rolled_back { target; rolled; reason } ->
    (* Figure 11, rollback: a rolled-back interval's speculative affirms
       are retracted with Revoke — returning the AIDs from Maybe to Hot so
       the re-executed affirm can rule again (Theorem 5.1 requires this;
       a terminal Deny here would falsify assumptions whose re-executed,
       eventually-definite affirms say True — see DESIGN.md §3.1).
       Buffered denies (IHD) are simply dropped. *)
    perform_rollback t pid ~target ~rolled
      ~cause:
        (match reason with
        | Control.Denial x -> Scheduler.Assumption_denied x
        | Control.Revocation -> Scheduler.Assumption_revoked)

let on_control t ~self ~src wire =
  let hist = history_or_create t self in
  let src_aid = Aid.of_proc src in
  let actions =
    match wire with
    | Wire.Replace { iid; ido } ->
      if Aid.Set.is_empty ido then learn_true t self src_aid;
      Control.handle_replace
        ~emit:(fun payload -> emit t ~proc:self payload)
        t.cfg.algorithm hist ~target:iid ~sender:src_aid ~ido
        ~on_cycle_cut:(fun aid ->
          incr t.cuts;
          Metrics.incr (counter t "hope.cycle_cuts");
          record t (Cycle_cut { iid; aid });
          emit t ~proc:self (Hope_obs.Event.Cycle_cut { iid; aid }))
    | Wire.Rollback { iid } ->
      learn_false t self src_aid;
      Control.handle_rollback hist ~target:iid ~denied:src_aid
    | Wire.Rebind { iid } ->
      Metrics.incr (counter t "hope.rebinds");
      Control.handle_rebind hist ~target:iid ~sender:src_aid
    | Wire.Guess _ | Wire.Affirm _ | Wire.Deny _ | Wire.Revoke _ ->
      failwith
        (Printf.sprintf "user process %s received %s (only AID processes do)"
           (Proc_id.to_string self) (Wire.type_name wire))
  in
  List.iter (interpret_action t self) actions

(* ------------------------------------------------------------------ *)
(* Hook installation                                                   *)
(* ------------------------------------------------------------------ *)

let install sched ?(config = default_config) () =
  let t =
    {
      sched;
      cfg = config;
      histories = Hashtbl.create 64;
      aids = Hashtbl.create 64;
      aid_count = 0;
      cuts = ref 0;
      event_log = Vec.create ();
      known_true = Hashtbl.create 64;
      known_false = Hashtbl.create 64;
    }
  in
  let hooks =
    {
      Scheduler.h_tags =
        (fun pid -> History.cumulative_ido (history_or_create t pid));
      h_current =
        (fun pid ->
          Option.map
            (fun itv -> itv.History.iid)
            (History.current (history_or_create t pid)));
      h_aid_init = (fun pid -> spawn_aid t ~node:(placement_node t ~creator:pid));
      h_guess =
        (fun pid x ->
          let itv =
            begin_interval t pid ~kind:History.Explicit
              ~extra_deps:(Aid.Set.singleton x)
          in
          itv.History.iid);
      h_implicit =
        (fun pid env ->
          let tags = Envelope.tags env in
          if Aid.Set.is_empty tags then Scheduler.Accept None
          else if
            t.cfg.cache_terminal_states
            && not (Aid.Set.disjoint tags !(known_set t.known_false pid))
          then begin
            (* A tag AID is already denied: the message's content is
               predicated on a falsehood, so it is dropped without the
               Guess/Rollback round trip. *)
            Metrics.incr (counter t "hope.messages_poisoned_locally");
            Scheduler.Reject
          end
          else begin
            let live_tags =
              if t.cfg.cache_terminal_states then
                Aid.Set.diff tags !(known_set t.known_true pid)
              else tags
            in
            if Aid.Set.is_empty live_tags then
              (* Every tag already resolved True: the message is definite. *)
              Scheduler.Accept None
            else begin
              Metrics.incr (counter t "hope.implicit_guesses");
              let itv =
                begin_interval t pid ~kind:History.Implicit ~extra_deps:live_tags
              in
              Scheduler.Accept (Some itv.History.iid)
            end
          end);
      h_affirm = (fun pid x -> do_affirm t pid x);
      h_deny = (fun pid x -> do_deny t pid x);
      h_free_of = (fun pid x -> do_free_of t pid x);
      h_control = (fun ~self ~src wire -> on_control t ~self ~src wire);
      h_cancelled =
        (fun ~self ~iid ~msg_id ->
          (* A message this process consumed was retracted by its
             rolled-back sender: the consuming interval (and everything
             after it) re-executes without it. *)
          let hist = history_or_create t self in
          match History.find hist iid with
          | None -> ()  (* already rolled back by another cause *)
          | Some target ->
            let rolled = History.truncate_from hist iid in
            Metrics.incr (counter t "hope.cancel_rollbacks");
            perform_rollback t self ~target ~rolled
              ~cause:(Scheduler.Message_cancelled msg_id));
      h_spawned = (fun pid -> ignore (history_or_create t pid : History.t));
      h_spawn_child =
        (fun ~parent ~child ->
          let deps = History.cumulative_ido (history_or_create t parent) in
          if Aid.Set.is_empty deps then None
          else begin
            Metrics.incr (counter t "hope.speculative_spawns");
            let itv =
              begin_interval t child ~kind:History.Implicit ~extra_deps:deps
            in
            Some itv.History.iid
          end);
      h_terminated = (fun _pid -> ());
    }
  in
  Scheduler.set_hooks sched hooks;
  t

let pp_event ppf = function
  | Aid_created a -> Format.fprintf ppf "aid-created %a" Aid.pp a
  | Interval_started { iid; kind; ido; at = _ } ->
    Format.fprintf ppf "interval-started %a (%s) ido=%a" Interval_id.pp iid
      (match kind with History.Explicit -> "guess" | History.Implicit -> "recv")
      Aid.Set.pp ido
  | Interval_finalized iid -> Format.fprintf ppf "finalized %a" Interval_id.pp iid
  | Interval_rolled_back iid ->
    Format.fprintf ppf "rolled-back %a" Interval_id.pp iid
  | Affirm_sent { aid; speculative } ->
    Format.fprintf ppf "affirm %a%s" Aid.pp aid (if speculative then " (spec)" else "")
  | Deny_sent { aid; speculative } ->
    Format.fprintf ppf "deny %a%s" Aid.pp aid (if speculative then " (spec)" else "")
  | Deny_buffered { aid; by } ->
    Format.fprintf ppf "deny-buffered %a by %a" Aid.pp aid Interval_id.pp by
  | Free_of_hit { aid } -> Format.fprintf ppf "free_of hit %a" Aid.pp aid
  | Free_of_miss { aid } -> Format.fprintf ppf "free_of miss %a" Aid.pp aid
  | Cycle_cut { iid; aid } ->
    Format.fprintf ppf "cycle-cut %a dropped %a" Interval_id.pp iid Aid.pp aid
