(** The HOPE runtime: HOPElib + AID processes wired into the scheduler.

    [install] registers hooks implementing every HOPE instruction of the
    process DSL, per §5 of the paper:

    - [aid_init] spawns an AID process (a native actor running the
      {!Aid_machine}) and returns its identity;
    - [guess x] begins a new speculative interval whose IDO is the
      process's cumulative dependency set plus [x], registers the interval
      with every AID in that set (Guess messages), and eagerly returns
      [true] — the process never waits;
    - consuming a message with a non-empty tag begins an implicit-guess
      interval the same way (§3);
    - [affirm x] sends a definite Affirm when the process is definite, and
      a speculative [<Affirm, iid, IDO>] (recorded in the interval's IHA)
      when it is speculative;
    - [deny x] sends an unconditional Deny (Table 1); with
      [buffer_speculative_denies] a speculative process instead buffers
      the deny in IHD until it finalizes (footnote 1);
    - [free_of x] denies [x] if the process's local history depends on it,
      and affirms it otherwise;
    - Replace/Rollback messages from AID processes are processed by
      {!Control}, transparently to user code.

    Every remote effect is an asynchronous message: no hook ever parks the
    calling process, which is the wait-free property of the title. *)

open Hope_types

type t

type aid_placement =
  | Colocate  (** spawn each AID process on its creator's node (the
                  prototype's behaviour: guess spawns the AID locally) *)
  | Fixed_node of int  (** spawn all AID processes on one node *)

type config = {
  algorithm : Control.algorithm;
  strict_aids : bool;  (** raise on conflicting affirm/deny (Figures 7–8) *)
  buffer_speculative_denies : bool;
      (** footnote 1: hold denies from speculative intervals in IHD until
          the interval finalizes, instead of sending immediately *)
  aid_placement : aid_placement;
  record_events : bool;  (** keep the event log for invariant checking *)
  cache_terminal_states : bool;
      (** let each process cache AIDs it has observed in a terminal state
          (True from a Replace with empty IDO, False from a Rollback);
          known-dead incoming messages are then dropped locally instead of
          costing a Guess/Rollback round trip, and known-True inherited
          dependencies are not re-registered. Sound because terminal
          states are final (Figure 4). Disable to measure the raw
          algorithm (ablation experiment). *)
}

val default_config : config
(** Algorithm 2, lenient AIDs, immediate denies, colocated AID processes,
    events recorded, terminal-state caching on. *)

val install : Hope_proc.Scheduler.t -> ?config:config -> unit -> t
(** Install the HOPE hooks into the scheduler. Call once, before spawning
    processes that use HOPE instructions. *)

val scheduler : t -> Hope_proc.Scheduler.t
val config : t -> config

(** {1 Governor actuators}

    A speculation governor ([Hope_gov]) reacts to observability signals
    by steering the runtime through this record. The runtime never calls
    a policy itself: with no governor installed every actuator site is a
    single [None] field test, so the ungoverned hot path stays
    allocation-free and byte-identical (trace-deterministic) to a build
    without the surface. *)

type governor = {
  gate_guess : Proc_id.t -> Aid.t -> bool;
      (** consulted on every explicit [guess]; [false] makes the guess
          return [false] immediately (the program's pessimistic branch)
          with no interval or AID registration *)
  cut_replace : target:Interval_id.t -> sender:Aid.t -> candidate:Aid.t -> bool;
      (** consulted on every Replace replacement candidate; [true]
          discards the candidate as a cycle cut (Figure 15's resolution,
          driven by churn evidence instead of the static UDO walk) *)
  send_delay : Proc_id.t -> depth:int -> float;
      (** extra virtual-time cost for a user send while the sender holds
          [depth] live speculative intervals — back-pressure that bounds
          checkpoint memory without ever parking the sender *)
  note_denial : Proc_id.t -> Aid.t -> unit;
      (** feedback: [pid] is rolling back because [aid] was denied *)
}

val set_governor : t -> governor -> unit
(** Install (or replace) the governor. *)

val clear_governor : t -> unit
val governed : t -> bool

(** {1 Per-AID escalation (DESIGN.md §10)}

    The governor's stronger actuator: instead of gating guesses on a hot
    AID (which forces the pessimistic branch and loses all concurrency),
    escalation flips the AID to queued, abortable acquisition — explicit
    guesses on it park in the AID's FIFO queue and resume [true] holding
    the AID exclusively (a definite Grant: no speculative interval, no
    Replace traffic) or [false] on abort/timeout. De-escalation flips it
    back, aborting queued waiters. With nothing escalated the guess path
    tests one bit and is byte-identical to the pre-escalation runtime. *)

val escalate_aid : t -> Aid.t -> unit
(** Switch the AID to pessimistic queued acquisition. Idempotent.
    Counted in [hope.escalations]; the live count is the
    [hope.aids_escalated] gauge. @raise Not_found for an unknown AID. *)

val deescalate_aid : t -> Aid.t -> unit
(** Switch the AID back to optimistic operation, aborting its queued
    waiters (the current grant holder, if any, finishes normally).
    Idempotent. Counted in [hope.deescalations]. *)

val aid_escalated : t -> Aid.t -> bool

val set_acquire_bound : t -> float -> unit
(** Virtual-time bound on a queued acquire wait (default 50 ms): past
    it the waiter withdraws its ticket and takes the pessimistic
    branch. @raise Invalid_argument unless positive. *)

(** {1 Introspection} *)

val history_of : t -> Proc_id.t -> History.t
(** @raise Not_found for an unknown process. *)

val aid_machine : t -> Aid.t -> Aid_machine.t
(** @raise Not_found for an unknown AID. *)

val aid_state : t -> Aid.t -> Aid_machine.state
val all_aids : t -> Aid.t list
val live_intervals : t -> int
(** Total live speculative intervals across all processes. *)

val cycle_cuts : t -> int
(** Dependencies discarded by Algorithm 2's UDO check so far. *)

(** {1 AID garbage collection (§5.2)} *)

type gc_stats = { swept : int; retired : int; live : int }

val collect_garbage : t -> gc_stats
(** Retire every terminal AID that no live interval references: its DOM
    and A_IDO sets are freed, while its tombstone keeps answering late
    Guess messages (AID processes never terminate — §5.2). Safe to call at
    any time; typically invoked between workload phases or periodically by
    a driver. *)

val fresh_aid : t -> ?node:int -> unit -> Aid.t
(** Create an AID process from outside any user program (drivers/tests).
    [node] defaults to 0. *)

(** {1 Event log (for invariant checking and tests)} *)

type event =
  | Aid_created of Aid.t
  | Interval_started of {
      iid : Interval_id.t;
      kind : History.kind;
      ido : Aid.Set.t;
      at : float;
    }
  | Interval_finalized of Interval_id.t
  | Interval_rolled_back of Interval_id.t
  | Affirm_sent of { aid : Aid.t; speculative : bool }
  | Deny_sent of { aid : Aid.t; speculative : bool }
  | Deny_buffered of { aid : Aid.t; by : Interval_id.t }
  | Free_of_hit of { aid : Aid.t }  (** free_of found a dependency: denied *)
  | Free_of_miss of { aid : Aid.t }  (** free_of found none: affirmed *)
  | Cycle_cut of { iid : Interval_id.t; aid : Aid.t }
      (** Algorithm 2 discarded a replacement: [iid] had already depended
          on [aid] (UDO hit — a dependency cycle, §5.3) *)

val events : t -> event list
(** Oldest first; empty unless [record_events]. *)

val pp_event : Format.formatter -> event -> unit
