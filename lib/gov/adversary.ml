open Hope_types
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Runtime = Hope_core.Runtime
module History = Hope_core.History
module Control = Hope_core.Control
module Invariant = Hope_core.Invariant
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Telemetry = Hope_sim.Telemetry
module Latency = Hope_net.Latency
module Monitor = Hope_obs.Monitor
open Program.Syntax

type scenario =
  | Bounce
  | Hostile_oracle
  | Corruption
  | Flash_crowd
  | Compaction_stress
  | Contention_storm
  | Cross_shard_straggler

let all =
  [
    Bounce;
    Hostile_oracle;
    Corruption;
    Flash_crowd;
    Compaction_stress;
    Contention_storm;
    Cross_shard_straggler;
  ]

let scenario_name = function
  | Bounce -> "bounce"
  | Hostile_oracle -> "hostile-oracle"
  | Corruption -> "corruption"
  | Flash_crowd -> "flash-crowd"
  | Compaction_stress -> "compaction-stress"
  | Contention_storm -> "contention-storm"
  | Cross_shard_straggler -> "cross-shard-straggler"

let scenario_of_string s =
  match List.find_opt (fun sc -> String.equal (scenario_name sc) s) all with
  | Some sc -> Ok sc
  | None ->
    Error
      (Printf.sprintf
         "unknown adversary %S \
          (bounce|hostile-oracle|corruption|flash-crowd|compaction-stress|contention-storm|cross-shard-straggler)"
         s)

type outcome = {
  scenario : string;
  governed : bool;
  quiesced : bool;
  legal : bool;
  consistent : bool;
  events : int;
  makespan : float;
  guesses : int;
  finalized : int;
  rolled_back : int;
  gated : int;
  send_stalls : int;
  forced_cuts : int;
  diagnostics : int;
  bounce_flagged : bool;
  peak_open : int;
  recovery_vtime : float;
  compactions : int;
  arrivals_reclaimed : int;
  escalations : int;
  acquire_waits : int;
}

(* ------------------------------------------------------------------ *)
(* World plumbing                                                      *)
(* ------------------------------------------------------------------ *)

type world = {
  engine : Engine.t;
  sched : Scheduler.t;
  rt : Runtime.t;
  tele : Telemetry.t;
  gov : Governor.t option;
}

let make_world ~seed ~governed ~policy ~hope_config =
  let engine = Engine.create ~seed () in
  let sched =
    Scheduler.create ~engine ~default_latency:Latency.lan ~fifo:true
      ~config:Scheduler.free_config ()
  in
  let rt = Runtime.install sched ~config:hope_config () in
  (* Deep monitoring arms the replace-churn bounce detector — the
     adversary experiments are exactly the runs where its evidence is
     worth the per-Replace allocation. *)
  let tele = Telemetry.create ~deep:true ~recorder:(Engine.obs engine) () in
  Telemetry.install tele engine;
  let gov = if governed then Some (Governor.install ~policy rt ~tele) else None in
  { engine; sched; rt; tele; gov }

(* ------------------------------------------------------------------ *)
(* Scenario bodies                                                     *)
(* ------------------------------------------------------------------ *)

(* Figure 13's mutual speculative affirms, injected on purpose: p and q
   each guess their own assumption and speculatively affirm the other's.
   Under Algorithm 1 the Replace messages orbit the two-cycle forever. *)
let spawn_bounce w =
  let body other own =
    let* _ = Program.guess own in
    Program.affirm other
  in
  let p =
    Scheduler.spawn w.sched ~name:"p"
      (let* env = Program.recv () in
       let y, x = Value.to_pair (Envelope.value env) in
       body (Value.to_aid x) (Value.to_aid y))
  in
  let q =
    Scheduler.spawn w.sched ~name:"q"
      (let* env = Program.recv () in
       let x, y = Value.to_pair (Envelope.value env) in
       body (Value.to_aid y) (Value.to_aid x))
  in
  let c =
    Scheduler.spawn w.sched ~name:"coordinator"
      (let* x = Program.aid_init () in
       let* y = Program.aid_init () in
       let* () = Program.send p (Value.Pair (Value.Aid_v y, Value.Aid_v x)) in
       Program.send q (Value.Pair (Value.Aid_v x, Value.Aid_v y)))
  in
  [ p; q; c ]

(* An oracle that denies everything, slowly — speculation against it is
   pure waste. A leader announces a handful of shared assumptions; the
   workers keep re-guessing them round after round. Every denial rolls a
   worker back, and (governed) feeds the per-AID throttle, so later
   rounds go pessimistic at the gate instead of re-speculating. *)
let spawn_hostile_oracle w =
  let n_aids = 4 and n_workers = 3 and rounds = 6 in
  let oracle =
    Scheduler.spawn w.sched ~name:"oracle"
      (let rec loop () =
         let* env = Program.recv () in
         match Envelope.value env with
         | Value.Aid_v a ->
           let* () = Program.compute 2e-3 in
           let* () = Program.deny a in
           loop ()
         | _ -> loop ()
       in
       loop ())
  in
  let worker_body =
    let rec collect n acc =
      if n = 0 then Program.return (List.rev acc)
      else
        let* env = Program.recv () in
        collect (n - 1) (Value.to_aid (Envelope.value env) :: acc)
    in
    let* aids = collect n_aids [] in
    let rec round r =
      if r = 0 then Program.return ()
      else
        let rec per = function
          | [] -> round (r - 1)
          | a :: rest ->
            let* ok = Program.guess a in
            (* Optimistic work is 20x the pessimistic fallback: what the
               hostile oracle makes the ungoverned run throw away. *)
            let* () = Program.compute (if ok then 400e-6 else 20e-6) in
            per rest
        in
        per aids
    in
    round rounds
  in
  let workers =
    List.init n_workers (fun i ->
        Scheduler.spawn w.sched ~node:(2 + i)
          ~name:(Printf.sprintf "mark-%d" i)
          worker_body)
  in
  let leader =
    Scheduler.spawn w.sched ~node:1 ~name:"leader"
      (let rec make n acc =
         if n = 0 then Program.return (List.rev acc)
         else
           let* a = Program.aid_init () in
           let* () = Program.send oracle (Value.Aid_v a) in
           make (n - 1) (a :: acc)
       in
       let* aids = make n_aids [] in
       let rec tell = function
         | [] -> Program.return ()
         | pid :: rest ->
           let rec send_all = function
             | [] -> tell rest
             | a :: more ->
               let* () = Program.send pid (Value.Aid_v a) in
               send_all more
           in
           send_all aids
       in
       tell workers)
  in
  leader :: workers

(* A clean speculative pipeline (resolvers affirm everything), so the
   forged Rollbacks injected by [run] are the only source of rollbacks
   and recovery time is attributable to the corruption alone. *)
let spawn_corruption w =
  let n_workers = 3 and tasks = 25 in
  let resolver =
    Scheduler.spawn w.sched ~name:"resolver"
      (let rec loop () =
         let* env = Program.recv () in
         match Envelope.value env with
         | Value.Aid_v a ->
           let* () = Program.compute 400e-6 in
           let* () = Program.affirm a in
           loop ()
         | _ -> loop ()
       in
       loop ())
  in
  let worker_body =
    let rec task n =
      if n = 0 then Program.return ()
      else
        let* x = Program.aid_init () in
        let* () = Program.send resolver (Value.Aid_v x) in
        let* _ = Program.guess x in
        let* () = Program.compute 300e-6 in
        task (n - 1)
    in
    task tasks
  in
  List.init n_workers (fun i ->
      Scheduler.spawn w.sched ~node:(1 + i)
        ~name:(Printf.sprintf "victim-%d" i)
        worker_body)

(* Forge one Rollback against each victim that currently holds live
   speculation: src is an AID process the oldest live interval genuinely
   depends on, so the message is indistinguishable from a real denial
   cascade at the wire level. Returns the number of faults injected. *)
let inject_corruption w victims =
  List.fold_left
    (fun acc pid ->
      match Runtime.history_of w.rt pid with
      | exception Not_found -> acc
      | h -> (
        match History.live h with
        | [] -> acc
        | itv :: _ -> (
          match Aid.Set.choose_opt itv.History.ido with
          | None -> acc
          | Some a ->
            Scheduler.send_wire w.sched ~src:(Aid.to_proc a) ~dst:pid
              (Wire.Rollback { iid = itv.History.iid });
            acc + 1)))
    0 victims

(* A flash crowd of speculating producers piling onto one slow
   validator. Each producer's history window grows as fast as it can
   open intervals and only drains at the validator's pace; governed,
   sends past the window limit pay a stall, which paces the producers
   to the validator. *)
let spawn_flash_crowd w =
  let base = 2 and crowd = 6 and rounds = 60 in
  let validator =
    Scheduler.spawn w.sched ~name:"validator"
      (let rec loop () =
         let* env = Program.recv () in
         match Envelope.value env with
         | Value.Aid_v a ->
           let* () = Program.compute 1.5e-3 in
           let* () = Program.affirm a in
           loop ()
         | _ -> loop ()
       in
       loop ())
  in
  let producer_body ~start =
    let* () = if start > 0.0 then Program.compute start else Program.return () in
    let rec round r =
      if r = 0 then Program.return ()
      else
        let* x = Program.aid_init () in
        let* () = Program.send validator (Value.Aid_v x) in
        let* _ = Program.guess x in
        let* () = Program.compute 100e-6 in
        round (r - 1)
    in
    round rounds
  in
  let base_producers =
    List.init base (fun i ->
        Scheduler.spawn w.sched ~node:(1 + i)
          ~name:(Printf.sprintf "base-%d" i)
          (producer_body ~start:0.0))
  in
  let crowd_producers =
    List.init crowd (fun i ->
        Scheduler.spawn w.sched
          ~node:(1 + base + i)
          ~name:(Printf.sprintf "crowd-%d" i)
          (producer_body ~start:10e-3))
  in
  base_producers @ crowd_producers

(* High-volume retraction pressure aimed at the mailbox. Pumps stream
   speculative tagged messages at one consumer while an oracle affirms
   and denies their assumptions in alternation: every denial retracts
   the in-flight send (a Cancel the consumer must absorb), every affirm
   finalizes the consumer's implicit interval — both make arrivals
   reclaimable, so epoch compaction runs continuously under load. The
   run must stay legal with compaction on; the outcome's [compactions]
   and [arrivals_reclaimed] show the mailbox actually churned. *)
let spawn_compaction_stress w =
  let pumps = 4 and rounds = 120 in
  let consumer =
    Scheduler.spawn w.sched ~name:"consumer"
      (let rec loop () =
         let* _ = Program.recv () in
         loop ()
       in
       loop ())
  in
  let oracle =
    Scheduler.spawn w.sched ~node:1 ~name:"coin-oracle"
      (let rec loop flip =
         let* env = Program.recv () in
         match Envelope.value env with
         | Value.Aid_v a ->
           let* () = Program.compute 100e-6 in
           let* () = if flip then Program.deny a else Program.affirm a in
           loop (not flip)
         | _ -> loop flip
       in
       loop true)
  in
  let pump_body =
    let rec round r =
      if r = 0 then Program.return ()
      else
        let* x = Program.aid_init () in
        let* () = Program.send oracle (Value.Aid_v x) in
        let* _ = Program.guess x in
        let* () = Program.send consumer (Value.Int r) in
        (* Paced just under the oracle's service rate: the speculation
           window stays shallow, so every denial's rollback suffix is
           short and the run converges with or without a governor — the
           stress is on the mailbox, not on window growth (flash-crowd
           covers that). *)
        let* () = Program.compute 500e-6 in
        round (r - 1)
    in
    round rounds
  in
  List.init pumps (fun i ->
      Scheduler.spawn w.sched ~node:(2 + i)
        ~name:(Printf.sprintf "pump-%d" i)
        pump_body)

(* A contention storm aimed at durable assumptions (DESIGN.md §10):
   zipf-skewed clients bracket every round with a guess on a shared
   guard AID — seven rounds in ten land on guard 0 — while a hostile
   oracle denies each round's work assumption outright. Ungoverned,
   every denial rolls back the client's whole speculative suffix
   (later rounds are chained speculation), so the cascade re-executes
   guard guesses and work rounds over and over: pure waste feeding on
   itself. With an escalation-enabled policy the per-guess pressure on
   guard 0, weighted by the global wasted%% analytic, trips queued
   acquisition; a parked acquire has no checkpoint and so is a
   {e speculation barrier} — cascades flatten to a single round, the
   monitor-visible storm (peak open intervals, cascade depth) clears,
   and the run stays legal with every waiter drained. *)
let spawn_contention_storm w =
  let n_clients = 6 and n_guards = 4 and rounds = 20 in
  let oracle =
    Scheduler.spawn w.sched ~name:"abort-oracle"
      (let rec loop () =
         let* env = Program.recv () in
         match Envelope.value env with
         | Value.Aid_v a ->
           let* () = Program.compute 1e-3 in
           let* () = Program.deny a in
           loop ()
         | _ -> loop ()
       in
       loop ())
  in
  let client_body ~client =
    let rec collect n acc =
      if n = 0 then Program.return (Array.of_list (List.rev acc))
      else
        let* env = Program.recv () in
        collect (n - 1) (Value.to_aid (Envelope.value env) :: acc)
    in
    let* guards = collect n_guards [] in
    Program.for_ 0 (rounds - 1) (fun round ->
        (* Deterministic zipf-flavoured draw: guard 0 takes ~70% of the
           traffic, the cold guards share the rest. *)
        let idx =
          if ((client * 13) + (round * 7)) mod 10 < 7 then 0
          else 1 + ((client + round) mod (n_guards - 1))
        in
        let guard = guards.(idx) in
        let* _entered = Program.guess guard in
        let* x = Program.aid_init () in
        let* () = Program.send oracle (Value.Aid_v x) in
        let* ok = Program.guess x in
        (* Optimistic work is 20x the pessimistic fallback — all of it
           wasted, since the oracle denies everything. *)
        let* () = Program.compute (if ok then 400e-6 else 20e-6) in
        Program.release guard)
  in
  let clients =
    List.init n_clients (fun i ->
        Scheduler.spawn w.sched ~node:(2 + i)
          ~name:(Printf.sprintf "storm-%d" i)
          (client_body ~client:i))
  in
  let warden =
    Scheduler.spawn w.sched ~node:1 ~name:"warden"
      (let rec make n acc =
         if n = 0 then Program.return (List.rev acc)
         else
           let* g = Program.aid_init () in
           let* () = Program.affirm g in
           make (n - 1) (g :: acc)
       in
       let* guards = make n_guards [] in
       let rec tell = function
         | [] -> Program.return ()
         | pid :: rest ->
           let rec send_all = function
             | [] -> tell rest
             | g :: more ->
               let* () = Program.send pid (Value.Aid_v g) in
               send_all more
           in
           send_all guards
       in
       tell clients)
  in
  warden :: clients

(* The sharded executor's failure mode, replayed at the HOPE layer: a
   consumer advances its local virtual time against an in-order on-shard
   feed, guessing per event that no straggler will undercut it — while an
   off-shard feeder's deliveries arrive in bursts (cross-shard mailboxes
   batch), each burst carrying timestamps from a window the consumer has
   already passed. Every burst is a straggler volley: the consumer denies
   the earliest violated assumption, rolls back its speculative suffix
   through the journal machinery, and replays the merged order. The
   acceptance claim is Dubois & Guerraoui-style self-stabilization:
   governed or not, every volley must land the run back in a legal
   configuration, with the rollback cascade bounded by the speculation
   depth (not the run length). *)
let spawn_cross_shard_straggler w =
  let local_events = 30 and batches = 3 and per_batch = 4 in
  let total = local_events + (batches * per_batch) in
  let insert ts l =
    let rec go = function
      | [] -> [ ts ]
      | x :: _ as l when ts < x -> ts :: l
      | x :: rest -> x :: go rest
    in
    go l
  in
  let consumer =
    Scheduler.spawn w.sched ~name:"mirror"
      (let rec loop ~lvt ~buffer ~outstanding ~count =
         if count >= total then
           Program.iter_list
             (fun (_, a) -> Program.affirm a)
             (List.rev outstanding)
         else
           match buffer with
           | ts :: rest when ts >= lvt ->
             let* a = Program.aid_init () in
             let* ok = Program.guess a in
             if ok then
               let* () = Program.compute 200e-6 in
               loop ~lvt:ts ~buffer:rest
                 ~outstanding:((ts, a) :: outstanding)
                 ~count:(count + 1)
             else
               (* gate (or a raced denial): process pessimistically —
                  no open assumption, so nothing for a later straggler
                  to void *)
               let* () = Program.compute 20e-6 in
               loop ~lvt:ts ~buffer:rest ~outstanding ~count:(count + 1)
           | ts :: rest
             when not (List.exists (fun (k, _) -> k > ts) outstanding) ->
             (* an uncovered straggler: the work above it was committed
                pessimistically, so accept it out of order (definite,
                conservative-simulator style) *)
             let* () = Program.compute 20e-6 in
             loop ~lvt ~buffer:rest ~outstanding ~count:(count + 1)
           | _ ->
             (* head undercuts lvt with a deny in flight, or buffer is
                empty: wait for traffic (or for our own rollback) *)
             let* env = Program.recv () in
             (match Envelope.value env with
             | Value.Float ts ->
               if ts < lvt then begin
                 match
                   List.filter (fun (k, _) -> k > ts) outstanding
                   |> List.sort compare
                 with
                 | (_, earliest) :: _ ->
                   let* () = Program.incr_counter "shard.stragglers" in
                   let* () = Program.deny earliest in
                   loop ~lvt ~buffer:(insert ts buffer) ~outstanding ~count
                 | [] ->
                   loop ~lvt ~buffer:(insert ts buffer) ~outstanding ~count
               end
               else loop ~lvt ~buffer:(insert ts buffer) ~outstanding ~count
             | _ -> loop ~lvt ~buffer ~outstanding ~count)
       in
       loop ~lvt:neg_infinity ~buffer:[] ~outstanding:[] ~count:0)
  in
  let local_feeder =
    (* in-order, paced: the consumer's lvt tracks this stream *)
    Scheduler.spawn w.sched ~node:1 ~name:"on-shard-feed"
      (Program.for_ 1 local_events (fun i ->
           let* () = Program.compute 1e-3 in
           Program.send consumer (Value.Float (float_of_int i *. 1e-3))))
  in
  let remote_feeder =
    (* bursty: each batch is sent when the consumer's lvt has already
       passed every timestamp in it *)
    Scheduler.spawn w.sched ~node:2 ~name:"off-shard-feed"
      (Program.for_ 1 batches (fun b ->
           let* () = Program.compute 8e-3 in
           Program.iter_list
             (fun j ->
               let ts =
                 ((float_of_int (b - 1) *. 8.0)
                 +. (2.0 *. float_of_int j)
                 -. 0.5)
                 *. 1e-3
               in
               Program.send consumer (Value.Float ts))
             (List.init per_batch (fun j -> j + 1))))
  in
  [ consumer; local_feeder; remote_feeder ]

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 42) ?(policy = Policy.default) ?(max_events = 200_000)
    ~governed scenario =
  let hope_config =
    match scenario with
    (* The bounce is only a livelock under Algorithm 1 — that is the
       point: the governor must resolve what the runtime alone cannot. *)
    | Bounce -> { Runtime.default_config with algorithm = Control.Algorithm_1 }
    | _ -> Runtime.default_config
  in
  let w = make_world ~seed ~governed ~policy ~hope_config in
  let finite = match scenario with
    | Bounce -> spawn_bounce w
    | Hostile_oracle -> spawn_hostile_oracle w
    | Corruption -> spawn_corruption w
    | Flash_crowd -> spawn_flash_crowd w
    | Compaction_stress -> spawn_compaction_stress w
    | Contention_storm -> spawn_contention_storm w
    | Cross_shard_straggler -> spawn_cross_shard_straggler w
  in
  let last_injection = ref 0.0 in
  (match scenario with
  | Corruption ->
    (* Three waves of forged rollbacks, spaced so the pipeline has
       rebuilt live speculation between them. *)
    List.iter
      (fun at ->
        ignore
          (Engine.schedule_at w.engine ~at (fun eng ->
               if inject_corruption w finite > 0 then
                 last_injection := Engine.now eng)
            : Engine.handle))
      [ 5e-3; 15e-3; 25e-3 ]
  | _ -> ());
  let stop = Scheduler.run ~max_events w.sched in
  Telemetry.sample_now w.tele;
  let quiesced = stop = Engine.Quiescent in
  let terminated =
    List.for_all (fun pid -> Scheduler.status w.sched pid = Scheduler.Terminated)
      finite
  in
  let legal =
    quiesced && terminated
    && Runtime.live_intervals w.rt = 0
    && Invariant.check_wait_free w.rt = []
  in
  let consistent = legal && Invariant.check_all w.rt = [] in
  let m = Engine.metrics w.engine in
  let mon = Telemetry.monitor w.tele in
  let bounce_flagged =
    List.exists
      (function Monitor.Bounce_livelock _ -> true | _ -> false)
      (Monitor.diagnostics mon)
  in
  {
    scenario = scenario_name scenario;
    governed;
    quiesced;
    legal;
    consistent;
    events = Engine.events_processed w.engine;
    makespan = Engine.now w.engine;
    guesses = Metrics.find_counter m "hope.guesses";
    finalized = Metrics.find_counter m "hope.finalizes";
    rolled_back = Metrics.find_counter m "hope.rollbacks";
    gated = Metrics.find_counter m "hope.guesses_gated";
    send_stalls = Metrics.find_counter m "hope.send_stalls";
    forced_cuts = (match w.gov with None -> 0 | Some g -> Governor.forced_cuts g);
    diagnostics = Monitor.diagnostics_count mon;
    bounce_flagged;
    peak_open = Monitor.peak_open_intervals mon;
    recovery_vtime =
      (if scenario = Corruption && quiesced && !last_injection > 0.0 then
         Engine.now w.engine -. !last_injection
       else 0.0);
    compactions = Metrics.find_counter m "sched.mailbox_compactions";
    arrivals_reclaimed = Metrics.find_counter m "sched.arrivals_reclaimed";
    escalations = Metrics.find_counter m "hope.escalations";
    acquire_waits = Metrics.find_counter m "hope.acquire_waits";
  }

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>%s (%s):@,\
    \  quiesced=%b legal=%b consistent=%b@,\
    \  events=%d makespan=%.6fs peak_open=%d@,\
    \  guesses=%d finalized=%d rolled_back=%d@,\
    \  gated=%d send_stalls=%d forced_cuts=%d@,\
    \  diagnostics=%d bounce_flagged=%b@,\
    \  compactions=%d arrivals_reclaimed=%d@,\
    \  escalations=%d acquire_waits=%d%t@]"
    o.scenario
    (if o.governed then "governed" else "ungoverned")
    o.quiesced o.legal o.consistent o.events o.makespan o.peak_open o.guesses
    o.finalized o.rolled_back o.gated o.send_stalls o.forced_cuts o.diagnostics
    o.bounce_flagged o.compactions o.arrivals_reclaimed o.escalations
    o.acquire_waits
    (fun ppf ->
      if o.recovery_vtime > 0.0 then
        Format.fprintf ppf "@,  recovery=%.6fs" o.recovery_vtime)
