(** Adversarial scenarios for the governor: hostile environments built
    on the real runtime, run governed or ungoverned under identical
    seeds so the two outcomes are directly comparable.

    Four adversaries, each targeting one failure mode the paper's
    algorithms (or this reproduction's governor) must absorb:

    - {b bounce}: the mutual-speculative-affirm interference of
      Figure 13 under Algorithm 1 — a genuine livelock. Ungoverned it
      burns the event budget and trips the monitor's bounce diagnostic;
      governed, the churn-driven cycle cut resolves it and every
      interval commits.
    - {b hostile-oracle}: an oracle that denies every assumption
      announced to it, after a delay calibrated to maximize wasted
      speculative work. Workers keep re-guessing shared assumptions;
      the governor's denial-pressure throttle turns the re-guesses
      pessimistic.
    - {b corruption}: transient state corruption — forged [Rollback]
      control messages injected mid-run from AID processes a victim
      interval genuinely depends on. The runtime must absorb them and
      return to a legal configuration (quiescent, all processes
      terminated, no live speculation, wait-freedom intact); the
      outcome reports the virtual time that recovery took.
    - {b flash-crowd}: a sudden crowd of speculating producers piling
      onto one slow validator. Ungoverned, the history window grows
      with the crowd; governed, send back-pressure bounds it.
    - {b compaction-stress}: high-volume retraction pressure on one
      consumer's mailbox — pumps stream speculative tagged messages
      while an oracle affirms and denies their assumptions in
      alternation, so Cancels and finalizations keep making arrivals
      reclaimable and epoch compaction runs continuously. The run must
      stay legal with compaction on; [compactions] and
      [arrivals_reclaimed] show the mailbox churned.
    - {b contention-storm}: zipf-skewed clients hammer one durable
      guard AID (~70%% of rounds) while a hostile oracle denies every
      round's work assumption, so chained speculation cascades
      re-execute whole suffixes (DESIGN.md §10). Run with an
      escalation-enabled policy (e.g. {!Policy.hybrid}), the wasted%%-
      weighted per-guess pressure escalates the hot guard to queued
      acquisition; parked acquires are speculation barriers, so the
      cascades flatten ([peak_open] drops), [escalations] and
      [acquire_waits] light up, and the run stays legal with every
      waiter drained.

    Every scenario is deterministic in [seed] (and [governed]/[policy]):
    equal inputs give byte-equal outcomes. *)

type scenario =
  | Bounce
  | Hostile_oracle
  | Corruption
  | Flash_crowd
  | Compaction_stress
  | Contention_storm
  | Cross_shard_straggler
      (** bursty off-shard deliveries (cross-shard mailboxes batch)
          keep undercutting a consumer's local virtual time: every
          burst is a straggler volley that must roll back cleanly —
          legality and a speculation-depth-bounded cascade, governed
          or not *)

val all : scenario list

val scenario_name : scenario -> string
val scenario_of_string : string -> (scenario, string) result

(** What a run did, plus how the governor behaved while it did it.
    [legal] is the recovery criterion for fault scenarios: quiescent,
    every user process terminated, no live intervals, wait-freedom
    intact. [consistent] additionally demands the full invariant suite
    ({!Hope_core.Invariant.check_all}). Forged rollbacks pass even that:
    the victim re-executes its continuation pessimistically, so the
    final configuration is indistinguishable from one where the denial
    was real — which is itself the recovery claim being measured. *)
type outcome = {
  scenario : string;
  governed : bool;
  quiesced : bool;  (** the run reached quiescence within budget *)
  legal : bool;
  consistent : bool;
  events : int;
  makespan : float;  (** virtual time at stop *)
  guesses : int;
  finalized : int;
  rolled_back : int;
  gated : int;  (** guesses the governor refused *)
  send_stalls : int;  (** sends that paid back-pressure *)
  forced_cuts : int;  (** cycle cuts the governor forced *)
  diagnostics : int;  (** monitor diagnostics emitted *)
  bounce_flagged : bool;  (** a [Bounce_livelock] diagnostic fired *)
  peak_open : int;  (** peak simultaneously-open intervals *)
  recovery_vtime : float;
      (** [Corruption]: virtual time from the last injected fault to
          quiescence; [0.] elsewhere *)
  compactions : int;  (** mailbox compaction epochs across the run *)
  arrivals_reclaimed : int;  (** arrivals those epochs evicted *)
  escalations : int;  (** AIDs the governor flipped to queued acquisition *)
  acquire_waits : int;  (** guesses that parked in an acquisition queue *)
}

val run :
  ?seed:int ->
  ?policy:Policy.t ->
  ?max_events:int ->
  governed:bool ->
  scenario ->
  outcome
(** Build the scenario's world, install telemetry (deep monitoring, so
    the bounce detector is armed), install a governor iff [governed],
    run, and measure. [max_events] defaults to [200_000] — the bounce
    scenario ungoverned is a real livelock and stops only on this
    budget. *)

val pp_outcome : Format.formatter -> outcome -> unit
