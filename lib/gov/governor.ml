open Hope_types
module Runtime = Hope_core.Runtime
module Aid_machine = Hope_core.Aid_machine
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Telemetry = Hope_sim.Telemetry
module Monitor = Hope_obs.Monitor

type t = {
  policy : Policy.t;
  rt : Runtime.t;
  eng : Engine.t;
  mon : Monitor.t;
  tele : Telemetry.t;
  throttle : Throttle.t;
  (* Escalation pressure, a second hysteresis loop over the same churn/
     denial/diagnostic evidence: tripping it flips the AID to pessimistic
     queued acquisition (DESIGN.md §10) instead of merely gating guesses. *)
  esc : Throttle.t;
  (* AID index -> handle for every AID this governor escalated, because
     {!Throttle} has no key-iteration API: the tick polls each key's
     decayed level to decide de-escalation. *)
  escalated : (int, Aid.t) Hashtbl.t;
  (* Replace resolutions per AID index — the bounce-churn signal,
     consumed at the source instead of waiting for the monitor's (much
     later) diagnostic. *)
  churn : (int, int ref) Hashtbl.t;
  (* Orbit counts per (target owner, target seq, candidate index): how
     many times one Replace candidate has been re-offered to the same
     interval. An orbiting candidate is the runtime signature of a
     dependency cycle. *)
  orbits : (int * int * int, int ref) Hashtbl.t;
  mutable cut_threshold : int;
  mutable last_cuts : int;
  mutable seen_diags : int;
  mutable forced_cuts : int;
  mutable denials : int;
  mutable wasted_pct : float;
      (* wasted / (wasted + committed) vtime, refreshed each tick: the
         second escalation signal — churn says which AID is hot, this
         says whether speculation is actually losing work *)
  mutable installed : bool;
  mutable tick_handle : Telemetry.pre_sample_handle option;
  c_forced_cuts : Metrics.counter;
  c_denials : Metrics.counter;
  g_throttled : Metrics.gauge;
  g_cut_threshold : Metrics.gauge;
  g_wasted_pct : Metrics.gauge;
}

let policy t = t.policy
let cut_threshold t = t.cut_threshold
let forced_cuts t = t.forced_cuts
let denials_observed t = t.denials
let escalated_aids t = Hashtbl.length t.escalated
let wasted_pct t = t.wasted_pct

let throttled_aids t =
  Throttle.throttled_count t.throttle ~now:(Engine.now t.eng)

let guesses_gated t =
  Metrics.find_counter (Engine.metrics t.eng) "hope.guesses_gated"

let send_stalls t =
  Metrics.find_counter (Engine.metrics t.eng) "hope.send_stalls"

(* --- actuators ------------------------------------------------------- *)

(* Feed a piece of contention evidence into the escalation loop. Every
   bump carries the wasted%% analytic on top of the per-event boost, so
   the same churn that merely throttles when speculation is paying off
   escalates quickly when most speculative work is being rolled back. *)
let esc_bump t ~now aid base =
  if Policy.escalation_enabled t.policy then begin
    let key = Aid.index aid in
    let boost = base +. (t.policy.Policy.wasted_boost *. t.wasted_pct) in
    if boost > 0.0 then begin
      Throttle.bump t.esc ~now ~key boost;
      if
        (not (Hashtbl.mem t.escalated key))
        && Throttle.throttled t.esc ~now ~key
        && (match Runtime.aid_state t.rt aid with
           | Hope_core.Aid_machine.False_ -> false
             (* a dead assumption cannot be acquired: escalating it
                would only turn its guesses into Acquire/Abort trips *)
           | _ -> true
           | exception Not_found -> false)
      then begin
        Hashtbl.replace t.escalated key aid;
        Runtime.escalate_aid t.rt aid
      end
    end
  end

let gate_guess t _pid aid =
  let now = Engine.now t.eng in
  (* Every explicit guess is itself escalation evidence, weighted purely
     by the wasted%% analytic (base 0): a popular AID accumulates guess
     pressure fastest, but only trips the mark when the observability
     stack says speculation is losing work globally. *)
  esc_bump t ~now aid 0.0;
  not (Throttle.throttled t.throttle ~now ~key:(Aid.index aid))

let note_denial t _pid aid =
  t.denials <- t.denials + 1;
  Metrics.incr t.c_denials;
  let now = Engine.now t.eng in
  Throttle.bump t.throttle ~now ~key:(Aid.index aid)
    t.policy.Policy.denial_boost;
  esc_bump t ~now aid t.policy.Policy.denial_boost

let counter_ref tbl key =
  try Hashtbl.find tbl key
  with Not_found ->
    let r = ref 0 in
    Hashtbl.add tbl key r;
    r

let cut_replace t ~target ~sender ~candidate =
  let now = Engine.now t.eng in
  let skey = Aid.index sender in
  let sc = counter_ref t.churn skey in
  incr sc;
  if !sc mod t.policy.Policy.throttle_churn = 0 then begin
    Throttle.bump t.throttle ~now ~key:skey t.policy.Policy.churn_boost;
    esc_bump t ~now sender t.policy.Policy.churn_boost
  end;
  let okey =
    (Proc_id.to_int (Interval_id.owner target), Interval_id.seq target,
     Aid.index candidate)
  in
  let oc = counter_ref t.orbits okey in
  incr oc;
  if !oc >= t.cut_threshold then begin
    Hashtbl.remove t.orbits okey;
    t.forced_cuts <- t.forced_cuts + 1;
    Metrics.incr t.c_forced_cuts;
    (* Both ends of the orbit are implicated in the cycle: pessimize
       them so the cut is not immediately re-entered by a fresh guess. *)
    Throttle.bump t.throttle ~now ~key:skey t.policy.Policy.diag_boost;
    Throttle.bump t.throttle ~now ~key:(Aid.index candidate)
      t.policy.Policy.diag_boost;
    esc_bump t ~now sender t.policy.Policy.diag_boost;
    esc_bump t ~now candidate t.policy.Policy.diag_boost;
    true
  end
  else false

let send_delay t _pid ~depth =
  let limit = t.policy.Policy.window_limit in
  if depth <= limit then 0.0
  else
    Float.min t.policy.Policy.stall_max
      (t.policy.Policy.stall_cost *. float_of_int (depth - limit))

(* --- policy tick (rides the telemetry sampler) ----------------------- *)

let consume_diagnostics t ~now =
  let n = Monitor.diagnostics_count t.mon in
  if n > t.seen_diags then begin
    List.iteri
      (fun i d ->
        if i >= t.seen_diags then
          match d with
          | Monitor.Bounce_livelock { aid; _ } ->
            Throttle.bump t.throttle ~now ~key:(Aid.index aid)
              t.policy.Policy.diag_boost;
            esc_bump t ~now aid t.policy.Policy.diag_boost
          | Monitor.Cascade_runaway _ | Monitor.Window_growth _
          | Monitor.Stalled_interval _ ->
            ()
          (* shard-level diagnostics have no per-AID target to throttle;
             the governor steers sequential speculation only *)
          | Monitor.Gvt_stall _ | Monitor.Shard_imbalance _
          | Monitor.Mailbox_backpressure _ | Monitor.Annihilation_storm _ ->
            ())
      (Monitor.diagnostics t.mon);
    t.seen_diags <- n
  end

let refresh_wasted t =
  let w = Monitor.wasted_vtime t.mon in
  let c = Monitor.committed_vtime t.mon in
  (* Below a few milliseconds of resolved interval time the fraction is
     all noise (the first rollback of a run would read as 100% waste),
     so it reports 0 until there is evidence to divide. *)
  t.wasted_pct <- (if w +. c < 5e-3 then 0.0 else w /. (w +. c))

(* De-escalate every escalated AID whose pressure has decayed through
   the low mark ({!Throttle}'s hysteresis: release is at [escalate_low],
   not the [escalate_high] trip point, and the throttle's min-hold keeps
   a just-escalated AID from flapping straight back) — unless its
   acquisition queue is still busy. A held grant or parked waiter is
   contention evidence in itself (guesses on an escalated AID bypass the
   governor entirely, so nothing else would sustain the pressure), and
   de-escalating mid-queue would abort waiters straight back into the
   storm that caused the escalation. *)
let decay_escalations t ~now =
  let busy aid =
    match Runtime.aid_machine t.rt aid with
    | m -> Aid_machine.holder m <> None || Aid_machine.queue_length m > 0
    | exception Not_found -> false
  in
  let quiet =
    Hashtbl.fold
      (fun key aid acc ->
        if Throttle.throttled t.esc ~now ~key || busy aid then acc
        else (key, aid) :: acc)
      t.escalated []
  in
  List.iter
    (fun (key, aid) ->
      Hashtbl.remove t.escalated key;
      Runtime.deescalate_aid t.rt aid)
    quiet

let tick t =
  let now = Engine.now t.eng in
  if t.installed then begin
    refresh_wasted t;
    consume_diagnostics t ~now;
    if Policy.escalation_enabled t.policy then decay_escalations t ~now;
    (* Cuts since the last tick mean cycles are present: halve the
       threshold toward the floor so the next orbit is cut sooner. Quiet
       ticks recover one step back toward the optimistic initial. *)
    let cuts = Runtime.cycle_cuts t.rt in
    if cuts > t.last_cuts then
      t.cut_threshold <-
        max t.policy.Policy.cut_min (t.cut_threshold - (t.cut_threshold / 2))
    else if t.cut_threshold < t.policy.Policy.cut_init then
      t.cut_threshold <- t.cut_threshold + 1;
    t.last_cuts <- cuts
  end;
  Metrics.set_gauge t.g_throttled
    (float_of_int (Throttle.throttled_count t.throttle ~now));
  Metrics.set_gauge t.g_cut_threshold (float_of_int t.cut_threshold);
  Metrics.set_gauge t.g_wasted_pct t.wasted_pct

let install ?(policy = Policy.default) rt ~tele =
  let eng = Hope_proc.Scheduler.engine (Runtime.scheduler rt) in
  let reg = Engine.metrics eng in
  let t =
    {
      policy;
      rt;
      eng;
      mon = Telemetry.monitor tele;
      tele;
      throttle =
        Throttle.create ~high:policy.Policy.high_watermark
          ~low:policy.Policy.low_watermark ~tau:policy.Policy.decay_tau ();
      esc =
        Throttle.create ~high:policy.Policy.escalate_high
          ~low:policy.Policy.escalate_low ~tau:policy.Policy.escalate_tau ();
      escalated = Hashtbl.create 16;
      churn = Hashtbl.create 64;
      orbits = Hashtbl.create 64;
      cut_threshold = policy.Policy.cut_init;
      last_cuts = 0;
      seen_diags = 0;
      forced_cuts = 0;
      denials = 0;
      wasted_pct = 0.0;
      installed = true;
      tick_handle = None;
      c_forced_cuts = Metrics.counter reg "gov.forced_cuts";
      c_denials = Metrics.counter reg "gov.denials_observed";
      g_throttled = Metrics.gauge reg "gov.throttled_aids";
      g_cut_threshold = Metrics.gauge reg "gov.cut_threshold";
      g_wasted_pct = Metrics.gauge reg "gov.wasted_pct";
    }
  in
  Runtime.set_acquire_bound rt policy.Policy.acquire_bound;
  Runtime.set_governor rt
    {
      Runtime.gate_guess = gate_guess t;
      cut_replace = (fun ~target ~sender ~candidate ->
        cut_replace t ~target ~sender ~candidate);
      send_delay = (fun pid ~depth -> send_delay t pid ~depth);
      note_denial = note_denial t;
    };
  t.tick_handle <- Some (Telemetry.add_pre_sample tele (fun _eng _tele -> tick t));
  t

let uninstall t =
  t.installed <- false;
  (* Hand every escalated AID back to optimistic operation — leaving an
     AID pessimistic with nobody driving de-escalation would strand it. *)
  Hashtbl.iter (fun _ aid -> Runtime.deescalate_aid t.rt aid) t.escalated;
  Hashtbl.reset t.escalated;
  Runtime.clear_governor t.rt;
  match t.tick_handle with
  | None -> ()
  | Some h ->
    t.tick_handle <- None;
    Telemetry.remove_pre_sample t.tele h

let pp_summary ppf t =
  Format.fprintf ppf
    "governor[%s]: gated=%d stalls=%d forced_cuts=%d denials=%d \
     throttled_now=%d cut_threshold=%d escalated_now=%d wasted=%.0f%%"
    t.policy.Policy.name (guesses_gated t) (send_stalls t) t.forced_cuts
    t.denials (throttled_aids t) t.cut_threshold (escalated_aids t)
    (100.0 *. t.wasted_pct)
