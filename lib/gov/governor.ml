open Hope_types
module Runtime = Hope_core.Runtime
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Telemetry = Hope_sim.Telemetry
module Monitor = Hope_obs.Monitor

type t = {
  policy : Policy.t;
  rt : Runtime.t;
  eng : Engine.t;
  mon : Monitor.t;
  throttle : Throttle.t;
  (* Replace resolutions per AID index — the bounce-churn signal,
     consumed at the source instead of waiting for the monitor's (much
     later) diagnostic. *)
  churn : (int, int ref) Hashtbl.t;
  (* Orbit counts per (target owner, target seq, candidate index): how
     many times one Replace candidate has been re-offered to the same
     interval. An orbiting candidate is the runtime signature of a
     dependency cycle. *)
  orbits : (int * int * int, int ref) Hashtbl.t;
  mutable cut_threshold : int;
  mutable last_cuts : int;
  mutable seen_diags : int;
  mutable forced_cuts : int;
  mutable denials : int;
  mutable installed : bool;
  c_forced_cuts : Metrics.counter;
  c_denials : Metrics.counter;
  g_throttled : Metrics.gauge;
  g_cut_threshold : Metrics.gauge;
}

let policy t = t.policy
let cut_threshold t = t.cut_threshold
let forced_cuts t = t.forced_cuts
let denials_observed t = t.denials

let throttled_aids t =
  Throttle.throttled_count t.throttle ~now:(Engine.now t.eng)

let guesses_gated t =
  Metrics.find_counter (Engine.metrics t.eng) "hope.guesses_gated"

let send_stalls t =
  Metrics.find_counter (Engine.metrics t.eng) "hope.send_stalls"

(* --- actuators ------------------------------------------------------- *)

let gate_guess t _pid aid =
  not (Throttle.throttled t.throttle ~now:(Engine.now t.eng) ~key:(Aid.index aid))

let note_denial t _pid aid =
  t.denials <- t.denials + 1;
  Metrics.incr t.c_denials;
  Throttle.bump t.throttle ~now:(Engine.now t.eng) ~key:(Aid.index aid)
    t.policy.Policy.denial_boost

let counter_ref tbl key =
  try Hashtbl.find tbl key
  with Not_found ->
    let r = ref 0 in
    Hashtbl.add tbl key r;
    r

let cut_replace t ~target ~sender ~candidate =
  let now = Engine.now t.eng in
  let skey = Aid.index sender in
  let sc = counter_ref t.churn skey in
  incr sc;
  if !sc mod t.policy.Policy.throttle_churn = 0 then
    Throttle.bump t.throttle ~now ~key:skey t.policy.Policy.churn_boost;
  let okey =
    (Proc_id.to_int (Interval_id.owner target), Interval_id.seq target,
     Aid.index candidate)
  in
  let oc = counter_ref t.orbits okey in
  incr oc;
  if !oc >= t.cut_threshold then begin
    Hashtbl.remove t.orbits okey;
    t.forced_cuts <- t.forced_cuts + 1;
    Metrics.incr t.c_forced_cuts;
    (* Both ends of the orbit are implicated in the cycle: pessimize
       them so the cut is not immediately re-entered by a fresh guess. *)
    Throttle.bump t.throttle ~now ~key:skey t.policy.Policy.diag_boost;
    Throttle.bump t.throttle ~now ~key:(Aid.index candidate)
      t.policy.Policy.diag_boost;
    true
  end
  else false

let send_delay t _pid ~depth =
  let limit = t.policy.Policy.window_limit in
  if depth <= limit then 0.0
  else
    Float.min t.policy.Policy.stall_max
      (t.policy.Policy.stall_cost *. float_of_int (depth - limit))

(* --- policy tick (rides the telemetry sampler) ----------------------- *)

let consume_diagnostics t ~now =
  let n = Monitor.diagnostics_count t.mon in
  if n > t.seen_diags then begin
    List.iteri
      (fun i d ->
        if i >= t.seen_diags then
          match d with
          | Monitor.Bounce_livelock { aid; _ } ->
            Throttle.bump t.throttle ~now ~key:(Aid.index aid)
              t.policy.Policy.diag_boost
          | Monitor.Cascade_runaway _ | Monitor.Window_growth _
          | Monitor.Stalled_interval _ ->
            ())
      (Monitor.diagnostics t.mon);
    t.seen_diags <- n
  end

let tick t =
  let now = Engine.now t.eng in
  if t.installed then begin
    consume_diagnostics t ~now;
    (* Cuts since the last tick mean cycles are present: halve the
       threshold toward the floor so the next orbit is cut sooner. Quiet
       ticks recover one step back toward the optimistic initial. *)
    let cuts = Runtime.cycle_cuts t.rt in
    if cuts > t.last_cuts then
      t.cut_threshold <-
        max t.policy.Policy.cut_min (t.cut_threshold - (t.cut_threshold / 2))
    else if t.cut_threshold < t.policy.Policy.cut_init then
      t.cut_threshold <- t.cut_threshold + 1;
    t.last_cuts <- cuts
  end;
  Metrics.set_gauge t.g_throttled
    (float_of_int (Throttle.throttled_count t.throttle ~now));
  Metrics.set_gauge t.g_cut_threshold (float_of_int t.cut_threshold)

let install ?(policy = Policy.default) rt ~tele =
  let eng = Hope_proc.Scheduler.engine (Runtime.scheduler rt) in
  let reg = Engine.metrics eng in
  let t =
    {
      policy;
      rt;
      eng;
      mon = Telemetry.monitor tele;
      throttle =
        Throttle.create ~high:policy.Policy.high_watermark
          ~low:policy.Policy.low_watermark ~tau:policy.Policy.decay_tau ();
      churn = Hashtbl.create 64;
      orbits = Hashtbl.create 64;
      cut_threshold = policy.Policy.cut_init;
      last_cuts = 0;
      seen_diags = 0;
      forced_cuts = 0;
      denials = 0;
      installed = true;
      c_forced_cuts = Metrics.counter reg "gov.forced_cuts";
      c_denials = Metrics.counter reg "gov.denials_observed";
      g_throttled = Metrics.gauge reg "gov.throttled_aids";
      g_cut_threshold = Metrics.gauge reg "gov.cut_threshold";
    }
  in
  Runtime.set_governor rt
    {
      Runtime.gate_guess = gate_guess t;
      cut_replace = (fun ~target ~sender ~candidate ->
        cut_replace t ~target ~sender ~candidate);
      send_delay = (fun pid ~depth -> send_delay t pid ~depth);
      note_denial = note_denial t;
    };
  Telemetry.add_pre_sample tele (fun _eng _tele -> tick t);
  t

let uninstall t =
  t.installed <- false;
  Runtime.clear_governor t.rt

let pp_summary ppf t =
  Format.fprintf ppf
    "governor[%s]: gated=%d stalls=%d forced_cuts=%d denials=%d \
     throttled_now=%d cut_threshold=%d"
    t.policy.Policy.name (guesses_gated t) (send_stalls t) t.forced_cuts
    t.denials (throttled_aids t) t.cut_threshold
