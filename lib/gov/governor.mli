(** The speculation governor: observability signals in, actuator
    decisions out.

    The governor closes the control loop PR 5 left open. It consumes the
    health monitor's diagnostics and the runtime's own churn evidence,
    folds them through a {!Policy}, and steers the runtime through the
    {!Hope_core.Runtime.governor} actuator surface:

    - {b guess throttling}: AIDs accumulating denial or Replace-churn
      pressure are throttled — new [guess]es on them return [false]
      immediately (the program's pessimistic branch) until the pressure
      decays below the low watermark ({!Throttle}'s hysteresis);
    - {b dynamic cycle cuts}: a Replace replacement candidate that keeps
      orbiting back to the same interval is ruled a dependency cycle and
      cut (Figure 15's resolution), at a threshold that adapts to the
      observed cut rate instead of staying a static constant — this is
      what resolves an Algorithm-1 bounce livelock at runtime;
    - {b send back-pressure}: user sends from a process whose history
      window exceeds the policy bound pay a virtual-time stall, bounding
      checkpoint memory without ever parking the sender (wait-freedom is
      untouched — only the {e cost} of a send changes, never its
      completion);
    - {b per-AID escalation} (DESIGN.md §10, policies with
      [escalate_high < infinity]): a second hysteresis loop over the
      same evidence, each bump weighted by the monitor's wasted-work
      fraction (exported as [gov.wasted_pct]). Tripping it flips the
      AID to pessimistic queued acquisition via
      {!Hope_core.Runtime.escalate_aid} — guesses on it park in the
      AID's FIFO queue and resume with a {e definite} grant instead of
      speculating. When the pressure decays through [escalate_low] the
      tick de-escalates, aborting any queued waiters. Gating loses all
      concurrency on the AID; escalation serializes it, which is the
      right trade exactly when wasted%% says speculation is losing.

    The policy tick (diagnostic consumption, threshold adaptation, gauge
    refresh) rides the telemetry sampler's pre-sample hook; the gauges
    [gov.throttled_aids] and [gov.cut_threshold] plus the counters
    [gov.forced_cuts], [gov.denials_observed], [hope.guesses_gated] and
    [hope.send_stalls] land in the engine's metrics registry, so the
    OpenMetrics export and time series pick them up with no extra
    wiring. Every decision is a pure function of simulator state — a
    governed run is exactly as deterministic as an ungoverned one. *)

type t

val install :
  ?policy:Policy.t -> Hope_core.Runtime.t -> tele:Hope_sim.Telemetry.t -> t
(** Wire a governor between [rt] and [tele]: registers the actuator
    hooks via {!Hope_core.Runtime.set_governor}, the policy tick via
    {!Hope_sim.Telemetry.add_pre_sample}, and the [gov.*] instruments in
    the engine's metrics registry. [policy] defaults to
    {!Policy.default}. *)

val uninstall : t -> unit
(** Detach the governor completely: de-escalate every AID it escalated,
    clear the runtime's governor hooks, and remove the telemetry tick
    via {!Hope_sim.Telemetry.remove_pre_sample} — a detached governor's
    gauges stop refreshing and it costs nothing per sample. *)

val policy : t -> Policy.t

(** {1 Introspection} *)

val cut_threshold : t -> int
(** The current (adapted) orbit count that forces a cycle cut. *)

val forced_cuts : t -> int
(** Cycle cuts this governor forced (also counted in
    [gov.forced_cuts]; the runtime's own [hope.cycle_cuts] counts these
    plus Algorithm 2's UDO cuts). *)

val denials_observed : t -> int

val throttled_aids : t -> int
(** AIDs currently throttled (decayed to the engine's current virtual
    time). *)

val guesses_gated : t -> int
(** Guesses refused so far ([hope.guesses_gated] from the registry). *)

val send_stalls : t -> int
(** Sends that paid back-pressure ([hope.send_stalls]). *)

val escalated_aids : t -> int
(** AIDs currently escalated to pessimistic acquisition by this
    governor (the runtime's [hope.aids_escalated] gauge tracks the same
    number). *)

val wasted_pct : t -> float
(** The wasted-work fraction [wasted / (wasted + committed)] vtime as
    of the last tick, in [0, 1] (exported as [gov.wasted_pct]). *)

val pp_summary : Format.formatter -> t -> unit
