type t = {
  name : string;
  throttle_churn : int;
  denial_boost : float;
  churn_boost : float;
  diag_boost : float;
  high_watermark : float;
  low_watermark : float;
  decay_tau : float;
  cut_init : int;
  cut_min : int;
  window_limit : int;
  stall_cost : float;
  stall_max : float;
  escalate_high : float;
  escalate_low : float;
  escalate_tau : float;
  wasted_boost : float;
  acquire_bound : float;
}

let default =
  {
    name = "default";
    throttle_churn = 64;
    denial_boost = 1.0;
    churn_boost = 1.0;
    diag_boost = 1.0;
    high_watermark = 1.0;
    low_watermark = 0.25;
    decay_tau = 20e-3;
    cut_init = 8;
    cut_min = 2;
    window_limit = 32;
    stall_cost = 100e-6;
    stall_max = 5e-3;
    (* escalation disabled: the mark is unreachable, so the three
       original profiles drive exactly the pre-escalation governor and
       existing traces stay byte-identical *)
    escalate_high = infinity;
    escalate_low = 0.75;
    escalate_tau = 30e-3;
    wasted_boost = 0.0;
    acquire_bound = 50e-3;
  }

let aggressive =
  {
    default with
    name = "aggressive";
    throttle_churn = 16;
    decay_tau = 50e-3;
    cut_init = 4;
    window_limit = 8;
    stall_cost = 250e-6;
  }

let conservative =
  {
    default with
    name = "conservative";
    throttle_churn = 256;
    denial_boost = 0.5;
    decay_tau = 10e-3;
    cut_init = 32;
    cut_min = 8;
    window_limit = 128;
    stall_cost = 50e-6;
  }

let hybrid =
  {
    default with
    name = "hybrid";
    (* The crude actuators are parked out of the way: escalation is the
       governor's whole answer in this profile, so an uncontended hybrid
       run behaves exactly like an ungoverned optimistic one. *)
    high_watermark = infinity;
    cut_init = max_int / 2;
    cut_min = max_int / 2;
    window_limit = max_int / 2;
    escalate_high = 6.0;
    escalate_low = 0.75;
    escalate_tau = 100e-3;
    wasted_boost = 2.0;
    acquire_bound = 250e-3;
  }

let all = [ default; aggressive; conservative; hybrid ]

let of_string s =
  match List.find_opt (fun p -> String.equal p.name s) all with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf
         "unknown governor profile %S (default|aggressive|conservative|hybrid)" s)

let escalation_enabled p = p.escalate_high < infinity

let pp ppf p =
  Format.fprintf ppf
    "%s: throttle(churn=%d boost=%g/%g/%g high=%g low=%g tau=%gs) cut(init=%d \
     min=%d) backpressure(window=%d stall=%gs max=%gs)"
    p.name p.throttle_churn p.denial_boost p.churn_boost p.diag_boost
    p.high_watermark p.low_watermark p.decay_tau p.cut_init p.cut_min
    p.window_limit p.stall_cost p.stall_max;
  if escalation_enabled p then
    Format.fprintf ppf
      " escalation(high=%g low=%g tau=%gs wasted=%g bound=%gs)" p.escalate_high
      p.escalate_low p.escalate_tau p.wasted_boost p.acquire_bound
  else Format.fprintf ppf " escalation(off)"
