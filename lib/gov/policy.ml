type t = {
  name : string;
  throttle_churn : int;
  denial_boost : float;
  churn_boost : float;
  diag_boost : float;
  high_watermark : float;
  low_watermark : float;
  decay_tau : float;
  cut_init : int;
  cut_min : int;
  window_limit : int;
  stall_cost : float;
  stall_max : float;
}

let default =
  {
    name = "default";
    throttle_churn = 64;
    denial_boost = 1.0;
    churn_boost = 1.0;
    diag_boost = 1.0;
    high_watermark = 1.0;
    low_watermark = 0.25;
    decay_tau = 20e-3;
    cut_init = 8;
    cut_min = 2;
    window_limit = 32;
    stall_cost = 100e-6;
    stall_max = 5e-3;
  }

let aggressive =
  {
    default with
    name = "aggressive";
    throttle_churn = 16;
    decay_tau = 50e-3;
    cut_init = 4;
    window_limit = 8;
    stall_cost = 250e-6;
  }

let conservative =
  {
    default with
    name = "conservative";
    throttle_churn = 256;
    denial_boost = 0.5;
    decay_tau = 10e-3;
    cut_init = 32;
    cut_min = 8;
    window_limit = 128;
    stall_cost = 50e-6;
  }

let all = [ default; aggressive; conservative ]

let of_string s =
  match List.find_opt (fun p -> String.equal p.name s) all with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown governor profile %S (default|aggressive|conservative)" s)

let pp ppf p =
  Format.fprintf ppf
    "%s: throttle(churn=%d boost=%g/%g/%g high=%g low=%g tau=%gs) cut(init=%d \
     min=%d) backpressure(window=%d stall=%gs max=%gs)"
    p.name p.throttle_churn p.denial_boost p.churn_boost p.diag_boost
    p.high_watermark p.low_watermark p.decay_tau p.cut_init p.cut_min
    p.window_limit p.stall_cost p.stall_max
