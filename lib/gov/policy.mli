(** Governor policy profiles.

    A policy is the pure-parameter half of the governor: watermarks and
    decay for the per-AID guess throttle, the starting point and floor of
    the dynamic cycle-cut threshold, and the window bound and slope of
    the send back-pressure. The {!Governor} turns these numbers into
    actuator decisions; everything here is data.

    Four named profiles ship with [hope_sim --governor]:

    - [default]: balanced — throttle on denial evidence, cut orbits
      after a handful of returns, back-pressure past a 32-interval
      window;
    - [aggressive]: trip everything sooner (low churn thresholds, tight
      window) — for adversarial environments;
    - [conservative]: interfere as late as possible (high thresholds,
      wide window) — for mostly-healthy workloads where speculation
      should run free;
    - [hybrid]: [default] plus per-AID escalation to pessimistic queued
      acquisition (DESIGN.md §10) — contended AIDs flip to a definite
      Grant/Release protocol, quiet ones speculate as usual.

    The first three keep [escalate_high = infinity], so escalation is
    structurally off and their traces are byte-identical to the
    pre-escalation governor. *)

type t = {
  name : string;  (** profile name, also the CLI spelling *)
  (* --- per-AID guess throttle (actuator a) --- *)
  throttle_churn : int;
      (** Replace resolutions on one AID before each throttle bump — the
          monitor's bounce-churn signal, consumed incrementally *)
  denial_boost : float;
      (** throttle pressure added when a guess on the AID is denied *)
  churn_boost : float;  (** pressure added per [throttle_churn] crossing *)
  diag_boost : float;
      (** pressure added when the monitor emits a bounce diagnostic *)
  high_watermark : float;  (** pressure at which the AID becomes throttled *)
  low_watermark : float;
      (** pressure below which a throttled AID returns to optimistic —
          strictly below [high_watermark]: the hysteresis band *)
  decay_tau : float;
      (** virtual-seconds time constant of the exponential pressure decay *)
  (* --- dynamic cycle-cut threshold (actuator b) --- *)
  cut_init : int;
      (** orbit count (same candidate re-offered to the same interval)
          that forces a cycle cut, before any adaptation *)
  cut_min : int;  (** adaptation floor *)
  (* --- send back-pressure (actuator c) --- *)
  window_limit : int;
      (** live intervals a process may hold before its sends start
          paying a stall *)
  stall_cost : float;  (** extra virtual seconds per interval past the limit *)
  stall_max : float;  (** cap on one send's stall *)
  (* --- per-AID escalation to queued acquisition (actuator e) --- *)
  escalate_high : float;
      (** escalation pressure (its own throttle, fed by the same churn/
          denial/diagnostic evidence plus the wasted%% analytic) at which
          the AID flips to pessimistic queued acquisition;
          [infinity] disables escalation entirely *)
  escalate_low : float;
      (** pressure below which an escalated AID returns to optimistic
          (its queued waiters are aborted; the current holder finishes) *)
  escalate_tau : float;  (** decay tau of the escalation pressure *)
  wasted_boost : float;
      (** scale on the monitor's wasted-work fraction (wasted vtime /
          (wasted + committed)) added to every escalation bump — the
          second signal: churn says {e which} AID, wasted%% says whether
          speculation is actually losing *)
  acquire_bound : float;
      (** virtual-time bound on a queued acquire wait, installed into
          the runtime via {!Hope_core.Runtime.set_acquire_bound} *)
}

val default : t
val aggressive : t
val conservative : t
val hybrid : t

val all : t list
(** The named profiles, [default] first. *)

val escalation_enabled : t -> bool
(** [escalate_high < infinity]. *)

val of_string : string -> (t, string) result
(** Look a profile up by name (for [--governor PROFILE]). *)

val pp : Format.formatter -> t -> unit
