type cell = {
  mutable level : float;
  mutable at : float;  (* virtual time [level] was last current *)
  mutable gated : bool;
}

type t = {
  high : float;
  low : float;
  tau : float;
  cells : (int, cell) Hashtbl.t;
}

let create ?(high = 1.0) ?(low = 0.25) ?(tau = 20e-3) () =
  if not (0.0 < low && low < high) then
    invalid_arg "Throttle.create: need 0 < low < high";
  if tau <= 0.0 then invalid_arg "Throttle.create: need tau > 0";
  { high; low; tau; cells = Hashtbl.create 64 }

let high t = t.high
let low t = t.low
let tau t = t.tau
let min_hold t = t.tau *. log (t.high /. t.low)

(* [Hashtbl.find] over [find_opt]: called per actuator decision. *)
let cell t key =
  try Hashtbl.find t.cells key
  with Not_found ->
    let c = { level = 0.0; at = 0.0; gated = false } in
    Hashtbl.add t.cells key c;
    c

(* Lazy decay: a cell's level is only ever brought up to date when it is
   observed, as a pure function of the virtual clock — so the machine's
   answers depend on (calls, now), never on how often it was polled. *)
let refresh t c ~now =
  if now > c.at then begin
    c.level <- c.level *. exp (-.(now -. c.at) /. t.tau);
    c.at <- now
  end;
  if c.gated && c.level <= t.low then c.gated <- false

let bump t ~now ~key amount =
  if amount < 0.0 then invalid_arg "Throttle.bump: negative pressure";
  let c = cell t key in
  refresh t c ~now;
  c.level <- c.level +. amount;
  if c.level >= t.high then c.gated <- true

let level t ~now ~key =
  match Hashtbl.find_opt t.cells key with
  | None -> 0.0
  | Some c ->
    refresh t c ~now;
    c.level

let throttled t ~now ~key =
  match Hashtbl.find_opt t.cells key with
  | None -> false
  | Some c ->
    refresh t c ~now;
    c.gated

let throttled_count t ~now =
  Hashtbl.fold
    (fun _ c acc ->
      refresh t c ~now;
      if c.gated then acc + 1 else acc)
    t.cells 0

let tracked t = Hashtbl.length t.cells
