(** Per-key hysteresis throttle with exponential decay.

    Each integer key (in practice an {!Hope_types.Aid.index}) carries a
    pressure level. {!bump} adds pressure; between observations the
    level decays as [exp (-(dt) /. tau)] of virtual time. A key becomes
    {e throttled} when its level reaches the high watermark and returns
    to optimistic only when the decayed level falls to the low
    watermark — the hysteresis band makes oscillation impossible faster
    than the decay constant allows: once throttled, a key stays
    throttled for at least {!min_hold} = [tau *. log (high /. low)]
    virtual seconds (bumps only lengthen the hold; nothing shortens it).
    With no bumps at all, every key decays back below the low watermark
    — quiescent traffic always returns to fully optimistic.

    The machine is pure with respect to the clock: every query passes
    [~now], decay is applied lazily at observation time, and equal
    [(calls, now)] sequences give equal answers — the determinism the
    simulator's governor needs. *)

type t

val create : ?high:float -> ?low:float -> ?tau:float -> unit -> t
(** Defaults: [high = 1.0], [low = 0.25], [tau = 20e-3] (virtual
    seconds). @raise Invalid_argument unless [0 < low < high] and
    [tau > 0]. *)

val high : t -> float
val low : t -> float
val tau : t -> float

val min_hold : t -> float
(** [tau *. log (high /. low)]: the minimum virtual time a key stays
    throttled once it trips — the anti-oscillation bound. *)

val bump : t -> now:float -> key:int -> float -> unit
(** Decay [key]'s level to [now], then add the given pressure (must be
    [>= 0.]). Reaching the high watermark trips the throttle. *)

val level : t -> now:float -> key:int -> float
(** The decayed pressure level ([0.] for an unseen key). *)

val throttled : t -> now:float -> key:int -> bool
(** Whether [key] is throttled at [now] (decays lazily, applying the
    hysteresis exit at the low watermark). *)

val throttled_count : t -> now:float -> int
(** Number of currently throttled keys (walks the table — a per-tick
    gauge read, not a hot-path one). *)

val tracked : t -> int
(** Keys ever observed. *)
