(** The HOPE library, in one place.

    This facade re-exports the public API so applications can start with a
    single dependency on [hope]:

    {[
      module Program = Hope.Program
      open Program.Syntax

      let () =
        let world = Hope.World.create () in
        let buddy =
          Hope.World.spawn world ~name:"affirmer"
            (let* env = Program.recv () in
             Program.affirm (Hope.Value.to_aid (Hope.Envelope.value env)))
        in
        let _ =
          Hope.World.spawn world ~name:"guesser"
            (let* ok, x = Program.guess_new () in
             let* () = Program.send buddy (Hope.Value.Aid_v x) in
             if ok then Program.mark "demo" "optimistic!" else Program.return ())
        in
        Hope.World.run world
    ]}

    The layers remain available individually ([hope.core], [hope.proc],
    …) for users who want only a subset. *)

(** {1 The programming model} *)

module Program = Hope_proc.Program
(** The process DSL: messaging, computation, and the four HOPE primitives
    ([guess] / [affirm] / [deny] / [free_of], plus [aid_init]). *)

module Value = Hope_types.Value
module Aid = Hope_types.Aid
module Proc_id = Hope_types.Proc_id
module Envelope = Hope_types.Envelope

(** {1 Running programs} *)

module Scheduler = Hope_proc.Scheduler
module Runtime = Hope_core.Runtime
module Engine = Hope_sim.Engine
module Latency = Hope_net.Latency
module Network = Hope_net.Network
module Topology = Hope_net.Topology

(** One-call setup for the common case: an engine, a scheduler, and the
    HOPE runtime, wired together. *)
module World = struct
  type t = {
    engine : Engine.t;
    scheduler : Scheduler.t;
    runtime : Runtime.t;
  }

  let create ?(seed = 42) ?(latency = Latency.lan) ?sched_config ?hope_config () =
    let engine = Engine.create ~seed () in
    let scheduler =
      Scheduler.create ~engine ~default_latency:latency ?config:sched_config ()
    in
    let runtime = Runtime.install scheduler ?config:hope_config () in
    { engine; scheduler; runtime }

  let spawn t ?node ~name body = Scheduler.spawn t.scheduler ?node ~name body

  let run ?until ?max_events t =
    ignore (Scheduler.run ?until ?max_events t.scheduler : Engine.stop_reason)

  let run_to_quiescence ?max_events t =
    match Scheduler.run ?max_events t.scheduler with
    | Engine.Quiescent -> ()
    | reason ->
      failwith
        (Format.asprintf "Hope.World: did not quiesce (%a)" Engine.pp_stop_reason
           reason)

  let check_invariants t =
    match Hope_core.Invariant.check_all t.runtime with
    | [] -> ()
    | vs ->
      failwith
        (Format.asprintf "@[<v>HOPE invariant violations:@,%a@]"
           (Format.pp_print_list Hope_core.Invariant.pp_violation)
           vs)

  let explain t = Hope_core.Explain.of_runtime t.runtime
end

(** {1 Introspection and verification} *)

module Invariant = Hope_core.Invariant
module Explain = Hope_core.Explain
module Metrics = Hope_sim.Metrics
module Trace = Hope_sim.Trace

(** {1 Higher layers} *)

module Rpc = Hope_rpc.Rpc
module Call_streaming = Hope_rpc.Call_streaming
module Timewarp = Hope_timewarp.Timewarp
module Governor = Hope_gov.Governor
module Gov_policy = Hope_gov.Policy
module Adversary = Hope_gov.Adversary

(** {1 Internals, for tooling} *)

module Aid_machine = Hope_core.Aid_machine
module History = Hope_core.History
module Control = Hope_core.Control
module Wire = Hope_types.Wire
module Interval_id = Hope_types.Interval_id
