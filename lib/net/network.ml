module Engine = Hope_sim.Engine
module Rng = Hope_sim.Rng
module Vec = Hope_sim.Vec

type addr = int

type 'a endpoint = {
  mutable handler : (src:addr -> 'a -> unit) option;
  mutable backlog : (addr * 'a) list;  (** reversed send order *)
}

(* FIFO floor per ordered addr pair. A single-float record is an unboxed
   float record, so the per-send [c.fl <- a] store allocates nothing
   (a float directly in the Hashtbl would be re-boxed on every store). *)
type cell = { mutable fl : float }

(* A batch of same-tick deliveries to one endpoint, dispatched by a single
   pooled engine event. Srcs and payloads live in parallel growable arrays;
   the arrival time lives in the network's [btimes] array (a float field
   here would be boxed on every store). Batches are identified by a dense
   id and recycled through [free_batch]. *)
type 'a batch = {
  mutable b_dst : addr;
  mutable b_srcs : int array;
  mutable b_pays : 'a array;
  mutable b_n : int;
  mutable b_free_next : int;  (** free-list link; -1 terminates *)
}

type 'a t = {
  engine : Engine.t;
  rng : Rng.t;
  default_latency : Latency.t;
  fifo : bool;
  dummy : 'a option;
  mutable nodes : int array;  (** node per addr; dense, default 0 *)
  links : (int, Latency.t) Hashtbl.t;  (** keyed by packed node pair *)
  endpoints : (addr, 'a endpoint) Hashtbl.t;
  mutable on_deliver : (dst:addr -> src:addr -> 'a -> unit) option;
      (** single routing dispatcher; overrides per-addr endpoints *)
  last_delivery : (int, cell) Hashtbl.t;  (** keyed by packed addr pair *)
  batches : 'a batch Vec.t;
  mutable btimes : float array;  (** arrival time per batch id *)
  mutable free_batch : int;
  mutable last_batch : int;  (** coalescing candidate; -1 none *)
  mutable last_seq : int;  (** engine sched_seq right after it was scheduled *)
  mutable disp : Engine.t -> int -> int -> unit;
  mutable sent : int;
  mutable delivered : int;
  mutable coalesced : int;
  mutable prune_countdown : int;
}

(* Ordered pairs of small non-negative ints (addresses, node ids) packed
   into one immediate key — no tuple allocation per lookup. Collision-free
   while both halves stay below 2^31, far beyond simulation scale. *)
let pack a b = (a lsl 31) lor b

let prune_interval = 1024

let deliver t ~src ~dst payload =
  t.delivered <- t.delivered + 1;
  match t.on_deliver with
  | Some h -> h ~dst ~src payload
  | None -> (
    let e =
      try Hashtbl.find t.endpoints dst
      with Not_found ->
        let e = { handler = None; backlog = [] } in
        Hashtbl.add t.endpoints dst e;
        e
    in
    match e.handler with
    | Some handler -> handler ~src payload
    | None -> e.backlog <- (src, payload) :: e.backlog)

let run_batch t id =
  (* A fired batch is no longer a coalescing target: later sends at the
     same timestamp must schedule their own (later-seq) event. *)
  if t.last_batch = id then t.last_batch <- -1;
  let b = Vec.get t.batches id in
  let n = b.b_n in
  for i = 0 to n - 1 do
    deliver t ~src:b.b_srcs.(i) ~dst:b.b_dst b.b_pays.(i)
  done;
  (match t.dummy with
  | Some d -> Array.fill b.b_pays 0 b.b_n d
  | None -> b.b_pays <- [||]);
  b.b_n <- 0;
  b.b_free_next <- t.free_batch;
  t.free_batch <- id

let create ~engine ?(default_latency = Latency.lan) ?(fifo = true) ?dummy () =
  let t =
    {
      engine;
      rng = Rng.split (Engine.rng engine);
      default_latency;
      fifo;
      dummy;
      nodes = [||];
      links = Hashtbl.create 16;
      endpoints = Hashtbl.create 16;
      on_deliver = None;
      last_delivery = Hashtbl.create 16;
      batches = Vec.create ();
      btimes = [||];
      free_batch = -1;
      last_batch = -1;
      last_seq = 0;
      disp = (fun _ _ _ -> ());
      sent = 0;
      delivered = 0;
      coalesced = 0;
      prune_countdown = prune_interval;
    }
  in
  t.disp <- (fun _eng id _ -> run_batch t id);
  t

let place t addr ~node =
  if node <> 0 || (addr < Array.length t.nodes && t.nodes.(addr) <> 0) then begin
    if addr >= Array.length t.nodes then begin
      let a = Array.make (max 64 (2 * (addr + 1))) 0 in
      Array.blit t.nodes 0 a 0 (Array.length t.nodes);
      t.nodes <- a
    end;
    t.nodes.(addr) <- node
  end

let node_of t addr = if addr < Array.length t.nodes then t.nodes.(addr) else 0

let set_dispatcher t h = t.on_deliver <- Some h

let set_link t ~src ~dst latency = Hashtbl.replace t.links (pack src dst) latency

let endpoint t addr =
  try Hashtbl.find t.endpoints addr
  with Not_found ->
    let e = { handler = None; backlog = [] } in
    Hashtbl.add t.endpoints addr e;
    e

let latency_between t ~src ~dst =
  let ns = node_of t src and nd = node_of t dst in
  try Hashtbl.find t.links (pack ns nd)
  with Not_found -> if ns = nd then Latency.local else t.default_latency

let attach t addr handler =
  let e = endpoint t addr in
  e.handler <- Some handler;
  let pending = List.rev e.backlog in
  e.backlog <- [];
  List.iter (fun (src, payload) -> handler ~src payload) pending

let grow_btimes t id =
  let capacity = max 16 (2 * Array.length t.btimes) in
  let capacity = max capacity (id + 1) in
  let btimes = Array.make capacity 0.0 in
  Array.blit t.btimes 0 btimes 0 (Array.length t.btimes);
  t.btimes <- btimes

let alloc_batch t ~dst ~time =
  let id =
    if t.free_batch >= 0 then begin
      let id = t.free_batch in
      let b = Vec.get t.batches id in
      t.free_batch <- b.b_free_next;
      b.b_free_next <- -1;
      b.b_dst <- dst;
      id
    end
    else begin
      let id = Vec.length t.batches in
      Vec.push t.batches
        { b_dst = dst; b_srcs = Array.make 4 0; b_pays = [||]; b_n = 0; b_free_next = -1 };
      if id >= Array.length t.btimes then grow_btimes t id;
      id
    end
  in
  t.btimes.(id) <- time;
  id

let batch_append b src payload =
  let n = b.b_n in
  if n = Array.length b.b_srcs then begin
    let srcs = Array.make (2 * n) 0 in
    Array.blit b.b_srcs 0 srcs 0 n;
    b.b_srcs <- srcs
  end;
  if n >= Array.length b.b_pays then begin
    let pays = Array.make (max 4 (2 * Array.length b.b_pays)) payload in
    Array.blit b.b_pays 0 pays 0 n;
    b.b_pays <- pays
  end;
  b.b_srcs.(n) <- src;
  b.b_pays.(n) <- payload;
  b.b_n <- n + 1

let send t ~src ~dst payload =
  t.sent <- t.sent + 1;
  let delay = Latency.sample (latency_between t ~src ~dst) t.rng in
  let arrival = Engine.now t.engine +. delay in
  let arrival =
    if not t.fifo then arrival
    else begin
      (* FIFO per ordered pair: never deliver before an earlier send. *)
      let key = pack src dst in
      let cell =
        try Hashtbl.find t.last_delivery key
        with Not_found ->
          let c = { fl = 0.0 } in
          Hashtbl.add t.last_delivery key c;
          c
      in
      let a = if arrival > cell.fl then arrival else cell.fl in
      cell.fl <- a;
      t.prune_countdown <- t.prune_countdown - 1;
      if t.prune_countdown <= 0 then begin
        (* A floor at or before the clock can no longer raise any future
           arrival (arrivals are >= now), so dropping it is free — this
           keeps the FIFO table bounded on long runs with many pairs. *)
        t.prune_countdown <- prune_interval;
        let now = Engine.now t.engine in
        Hashtbl.filter_map_inplace
          (fun _ c -> if c.fl <= now then None else Some c)
          t.last_delivery
      end;
      a
    end
  in
  let lb = t.last_batch in
  if
    lb >= 0
    && t.btimes.(lb) = arrival
    && (Vec.get t.batches lb).b_dst = dst
    && Engine.sched_seq t.engine = t.last_seq
  then begin
    (* Same endpoint, same timestamp, and nothing has entered the event
       queue since the batch's event was scheduled — so a fresh event
       would pop immediately after it among equal priorities, and
       appending to the batch delivers in exactly that order. *)
    t.coalesced <- t.coalesced + 1;
    batch_append (Vec.get t.batches lb) src payload
  end
  else begin
    let id = alloc_batch t ~dst ~time:arrival in
    batch_append (Vec.get t.batches id) src payload;
    Engine.schedule_call_at t.engine ~at:arrival t.disp id 0;
    t.last_batch <- id;
    t.last_seq <- Engine.sched_seq t.engine
  end

let in_flight t = t.sent - t.delivered
let messages_sent t = t.sent
let messages_delivered t = t.delivered
let deliveries_coalesced t = t.coalesced
