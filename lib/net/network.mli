(** Simulated message-passing network.

    The network delivers opaque payloads between integer-addressed
    endpoints over the simulation engine. Endpoints live on {e nodes}
    (machines); latency is looked up per node pair, defaulting to
    {!Latency.local} for same-node traffic and a configurable default for
    cross-node traffic. Delivery per ordered endpoint pair is FIFO by
    default (like PVM's TCP channels); cross-pair ordering is whatever the
    latency draws give, which is exactly the reordering hazard the paper's
    [free_of] example (§3.1) exists to catch.

    Sends never block and never fail: this is the reliable-delivery,
    unbounded-buffer abstraction the HOPE algorithm is specified over. *)

type addr = int
(** Endpoint address (the process id of the owning process). *)

type 'a t
(** A network carrying payloads of type ['a]. *)

val create :
  engine:Hope_sim.Engine.t ->
  ?default_latency:Latency.t ->
  ?fifo:bool ->
  ?dummy:'a ->
  unit ->
  'a t
(** [create ~engine ()] makes a network. [default_latency] (default
    {!Latency.lan}) applies to cross-node pairs without an explicit link;
    [fifo] (default [true]) enforces per-pair FIFO delivery. [dummy], if
    given, is a sentinel payload used to scrub dispatched delivery-batch
    slots so delivered payloads don't stay reachable through the batch
    pool; without it the pool drops its payload arrays instead (correct
    but re-allocating). *)

val place : 'a t -> addr -> node:int -> unit
(** Assign an endpoint to a node. Unplaced endpoints live on node 0. *)

val node_of : 'a t -> addr -> int

val set_link : 'a t -> src:int -> dst:int -> Latency.t -> unit
(** Override latency for the ordered node pair [(src, dst)]. *)

val set_dispatcher : 'a t -> (dst:addr -> src:addr -> 'a -> unit) -> unit
(** Install a single routing dispatcher: every delivery is handed to it
    (with the destination address made explicit) instead of the per-addr
    endpoint table. For owners that already know how to route by address
    — the scheduler's dense entity table — this replaces one closure plus
    one endpoint record per attached entity with one closure per network.
    Per-addr {!attach} handlers and backlogs are bypassed while a
    dispatcher is installed. *)

val attach : 'a t -> addr -> (src:addr -> 'a -> unit) -> unit
(** Register the delivery callback for an endpoint. Messages sent to an
    endpoint before it attaches are buffered and flushed on attach, in
    send order. Re-attaching replaces the callback. *)

val send : 'a t -> src:addr -> dst:addr -> 'a -> unit
(** Asynchronously deliver a payload. Returns immediately. *)

val in_flight : 'a t -> int
(** Messages sent but not yet delivered to a callback. *)

val messages_sent : 'a t -> int
val messages_delivered : 'a t -> int

val deliveries_coalesced : 'a t -> int
(** Deliveries that rode an already-scheduled same-tick batch to their
    endpoint instead of their own engine event. Coalescing is only
    attempted when nothing else has entered the event queue since the
    batch was scheduled, which makes it order-preserving (the fresh event
    would have popped immediately after the batch anyway). *)

val latency_between : 'a t -> src:addr -> dst:addr -> Latency.t
(** The model that would be used for a send between these endpoints. *)
