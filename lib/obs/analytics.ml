open Hope_types

type critical_path = {
  path : Interval_id.t list;
  path_depth : int;
  path_duration : float;
  explicit_opens : int;
  implicit_opens : int;
}

type shard_stats = {
  shard_commits : int;
  shard_stragglers : int;
  shard_cascade_rollbacks : int;
  shard_wasted_events : int;
  shard_gvt : float;
  shard_gvt_rounds : int;
  shard_compactions : int;
  shard_attribution : ((int * int * float) * int) list;
}

type t = {
  end_time : float;
  events : int;
  intervals_opened : int;
  finalized : int;
  rolled_back : int;
  still_open : int;
  committed_time : float;
  wasted_time : float;
  wasted_ratio : float;
  cascades : int;
  max_cascade : int;
  cascade_hist : (int * int) list;
  max_depth : int;
  aid_churn : (Aid.t * int) list;
  critical_path : critical_path option;
  shard : shard_stats option;
}

(* Parallel-engine pass. One fold over the stream: commit / straggler /
   GVT / compaction tallies plus the root-cause attribution table —
   every [Shard_straggler] (primary or cascade) adds its [rolled] count
   under its root key, so the table's sum equals the wasted-event total
   by construction. *)
let shard_stats_of events =
  let commits = ref 0
  and stragglers = ref 0
  and cascades = ref 0
  and wasted = ref 0
  and gvt = ref nan
  and gvt_rounds = ref 0
  and compactions = ref 0
  and seen = ref false in
  let attr = Hashtbl.create 32 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.payload with
      | Event.Shard_commit _ ->
        seen := true;
        incr commits
      | Event.Shard_straggler { root_shard; root_mid; root_send_ts; rolled; secondary; _ }
        ->
        seen := true;
        if secondary then incr cascades else incr stragglers;
        wasted := !wasted + rolled;
        let key = (root_shard, root_mid, root_send_ts) in
        let prev =
          match Hashtbl.find_opt attr key with Some v -> v | None -> 0
        in
        Hashtbl.replace attr key (prev + rolled)
      | Event.Gvt_advance { gvt = g; _ } ->
        seen := true;
        incr gvt_rounds;
        gvt := if Float.is_nan !gvt then g else Float.max !gvt g
      (* compactions also occur on the sequential engine; count them but
         don't let them alone claim the run was sharded *)
      | Event.Mailbox_compact _ -> incr compactions
      | _ -> ())
    events;
  if not !seen then None
  else
    Some
      {
        shard_commits = !commits;
        shard_stragglers = !stragglers;
        shard_cascade_rollbacks = !cascades;
        shard_wasted_events = !wasted;
        shard_gvt = !gvt;
        shard_gvt_rounds = !gvt_rounds;
        shard_compactions = !compactions;
        shard_attribution =
          List.sort
            (fun (((s1 : int), (m1 : int), _), _) ((s2, m2, _), _) ->
              let c = compare s1 s2 in
              if c <> 0 then c else compare m1 m2)
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) attr []);
      }

(* The deepest open chain: from the deepest span (earliest such by open
   order, for determinism), walk parent links back to the outermost
   ancestor. Its duration spans the root's open to the leaf's close —
   the window one speculative decision kept in flight. *)
let critical_path_of ~end_time spans =
  match spans with
  | [] -> None
  | _ ->
    let by_iid = Hashtbl.create 64 in
    List.iter (fun (s : Span.t) -> Hashtbl.replace by_iid s.Span.iid s) spans;
    let leaf =
      List.fold_left
        (fun best (s : Span.t) ->
          match best with
          | None -> Some s
          | Some b -> if s.Span.depth > b.Span.depth then Some s else best)
        None spans
    in
    Option.map
      (fun (leaf : Span.t) ->
        let rec walk acc (s : Span.t) =
          match s.Span.parent with
          | None -> s :: acc
          | Some p -> (
            match Hashtbl.find_opt by_iid p with
            | None -> s :: acc
            | Some parent -> walk (s :: acc) parent)
        in
        let chain = walk [] leaf in
        let root = List.hd chain in
        let leaf_close =
          match leaf.Span.closed_at with Some c -> c | None -> end_time
        in
        let count k =
          List.length (List.filter (fun (s : Span.t) -> s.Span.kind = k) chain)
        in
        {
          path = List.map (fun (s : Span.t) -> s.Span.iid) chain;
          path_depth = List.length chain;
          path_duration = Float.max 0.0 (leaf_close -. root.Span.opened_at);
          explicit_opens = count Event.Explicit;
          implicit_opens = count Event.Implicit;
        })
      leaf

let analyse events =
  let end_time = Span.end_time events in
  let spans = Span.of_events events in
  let finalized, rolled_back, still_open, committed_time, wasted_time =
    List.fold_left
      (fun (f, r, o, ct, wt) (s : Span.t) ->
        let d = Span.duration ~end_time s in
        match s.Span.close with
        | Span.Finalized -> (f + 1, r, o, ct +. d, wt)
        | Span.Rolled_back _ -> (f, r + 1, o, ct, wt +. d)
        | Span.Still_open -> (f, r, o + 1, ct, wt))
      (0, 0, 0, 0.0, 0.0) spans
  in
  let open_time =
    List.fold_left
      (fun acc (s : Span.t) ->
        match s.Span.close with
        | Span.Still_open -> acc +. Span.duration ~end_time s
        | Span.Finalized | Span.Rolled_back _ -> acc)
      0.0 spans
  in
  let total_span_time = committed_time +. wasted_time +. open_time in
  let wasted_ratio =
    if total_span_time <= 0.0 then 0.0 else wasted_time /. total_span_time
  in
  let cascades, max_cascade, cascade_counts =
    List.fold_left
      (fun (n, mx, counts) (e : Event.t) ->
        match e.Event.payload with
        | Event.Rollback_cascade { rolled; _ } ->
          let size = List.length rolled in
          let prev = Option.value (List.assoc_opt size counts) ~default:0 in
          (n + 1, max mx size, (size, prev + 1) :: List.remove_assoc size counts)
        | _ -> (n, mx, counts))
      (0, 0, []) events
  in
  let cascade_hist =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) cascade_counts
  in
  let max_depth =
    List.fold_left (fun acc (s : Span.t) -> max acc s.Span.depth) 0 spans
  in
  let churn_map =
    List.fold_left
      (fun m (e : Event.t) ->
        match e.Event.payload with
        | Event.Aid_transition { aid; _ } ->
          Aid.Map.update aid
            (fun prev -> Some (Option.value prev ~default:0 + 1))
            m
        | _ -> m)
      Aid.Map.empty events
  in
  {
    end_time;
    events = List.length events;
    intervals_opened = List.length spans;
    finalized;
    rolled_back;
    still_open;
    committed_time;
    wasted_time;
    wasted_ratio;
    cascades;
    max_cascade;
    cascade_hist;
    max_depth;
    aid_churn = Aid.Map.bindings churn_map;
    critical_path = critical_path_of ~end_time spans;
    shard = shard_stats_of events;
  }

let of_recorder rec_ = analyse (Recorder.events rec_)

let pp ppf t =
  Format.fprintf ppf "events            %d@." t.events;
  Format.fprintf ppf "end time          %.6f s@." t.end_time;
  Format.fprintf ppf "intervals         %d opened / %d finalized / %d rolled back / %d open@."
    t.intervals_opened t.finalized t.rolled_back t.still_open;
  Format.fprintf ppf "committed time    %.6f s@." t.committed_time;
  Format.fprintf ppf "wasted time       %.6f s (%.1f%% of speculative time)@."
    t.wasted_time (100.0 *. t.wasted_ratio);
  Format.fprintf ppf "cascades          %d (max depth %d)@." t.cascades t.max_cascade;
  List.iter
    (fun (size, n) -> Format.fprintf ppf "  cascade size %-3d x%d@." size n)
    t.cascade_hist;
  Format.fprintf ppf "max nesting       %d@." t.max_depth;
  (match t.critical_path with
  | None -> ()
  | Some cp ->
    Format.fprintf ppf
      "critical path     %d spans (%d explicit, %d implicit) over %.6f s: %a@."
      cp.path_depth cp.explicit_opens cp.implicit_opens cp.path_duration
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " > ")
         Interval_id.pp)
      cp.path);
  let churners =
    List.filter (fun (_, n) -> n > 1) t.aid_churn
  in
  Format.fprintf ppf "aids              %d tracked, %d with churn > 1@."
    (List.length t.aid_churn) (List.length churners);
  match t.shard with
  | None -> ()
  | Some s ->
    Format.fprintf ppf "shard commits     %d@." s.shard_commits;
    Format.fprintf ppf "shard stragglers  %d primary / %d cascade@."
      s.shard_stragglers s.shard_cascade_rollbacks;
    Format.fprintf ppf "shard wasted      %d events rolled back@."
      s.shard_wasted_events;
    if not (Float.is_nan s.shard_gvt) then
      Format.fprintf ppf "gvt               %.6f s over %d rounds@." s.shard_gvt
        s.shard_gvt_rounds;
    if s.shard_compactions > 0 then
      Format.fprintf ppf "compactions       %d@." s.shard_compactions;
    List.iter
      (fun ((sh, mid, ts), n) ->
        Format.fprintf ppf "  root sh%d#%d@@%.6f wasted %d@." sh mid ts n)
      s.shard_attribution
