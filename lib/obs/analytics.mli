(** Analytics passes over a captured event stream.

    Everything the paper's evaluation wants to know about a run but the
    counters cannot answer: how deep rollback cascades went, how much
    virtual time was thrown away, which AIDs churned, and what the deepest
    speculation chain looked like. All passes are pure functions of the
    event list, so they are as deterministic as the capture itself. *)

open Hope_types

type critical_path = {
  path : Interval_id.t list;  (** root first, deepest leaf last *)
  path_depth : int;
  path_duration : float;
      (** open of the root to close of the leaf (or run end) *)
  explicit_opens : int;  (** spans on the path opened by [guess] *)
  implicit_opens : int;  (** spans opened by tagged receives / spawns *)
}

type shard_stats = {
  shard_commits : int;  (** [Shard_commit] events (merged commit records) *)
  shard_stragglers : int;  (** primary (non-secondary) straggler rollbacks *)
  shard_cascade_rollbacks : int;
      (** secondary rollbacks (anti-message induced, root inherited) *)
  shard_wasted_events : int;  (** executed events undone across all rollbacks *)
  shard_gvt : float;  (** last GVT observed; [nan] if GVT never advanced *)
  shard_gvt_rounds : int;  (** [Gvt_advance] events *)
  shard_compactions : int;  (** [Mailbox_compact] events *)
  shard_attribution : ((int * int * float) * int) list;
      (** wasted events per root straggler, keyed
          [(root_shard, root_mid, root_send_ts)] and sorted by
          (shard, mid); the counts sum to [shard_wasted_events] *)
}
(** Parallel-engine pass: derived from the four shard event
    constructors, [None] on runs that never emitted one. *)

type t = {
  end_time : float;  (** virtual time of the last event *)
  events : int;
  intervals_opened : int;
  finalized : int;
  rolled_back : int;
  still_open : int;
  committed_time : float;  (** total virtual time inside finalized spans *)
  wasted_time : float;  (** total virtual time inside discarded spans *)
  wasted_ratio : float;
      (** wasted ÷ (committed + wasted + still-open); 0 when no spans *)
  cascades : int;  (** rollback-cascade events *)
  max_cascade : int;  (** largest number of intervals discarded at once *)
  cascade_hist : (int * int) list;
      (** cascade size -> occurrences, ascending by size *)
  max_depth : int;  (** deepest interval nesting observed *)
  aid_churn : (Aid.t * int) list;
      (** state transitions per AID, sorted by AID; an AID that resolves
          in one move has churn 1, revocation ping-pong shows up as more *)
  critical_path : critical_path option;
  shard : shard_stats option;
      (** [Some] iff the stream contains shard events (parallel engine) *)
}

val analyse : Event.t list -> t
(** Run every pass. Events must be in emission order. *)

val of_recorder : Recorder.t -> t

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report (used by the [summary] exporter). *)
