open Hope_types

type aid_state = Cold | Hot | Maybe | True_ | False_

let aid_state_name = function
  | Cold -> "Cold"
  | Hot -> "Hot"
  | Maybe -> "Maybe"
  | True_ -> "True"
  | False_ -> "False"

type interval_kind = Explicit | Implicit

type rollback_cause =
  | Denied of Aid.t
  | Revoked
  | Cancelled of int

type payload =
  | Aid_create of { aid : Aid.t }
  | Aid_transition of { aid : Aid.t; from_ : aid_state; to_ : aid_state }
  | Guess of { iid : Interval_id.t; aid : Aid.t }
  | Affirm of { aid : Aid.t; iid : Interval_id.t option; speculative : bool }
  | Deny of { aid : Aid.t; iid : Interval_id.t option; buffered : bool }
  | Free_of of { aid : Aid.t; hit : bool }
  | Interval_open of { iid : Interval_id.t; kind : interval_kind; ido : Aid.Set.t }
  | Interval_finalize of { iid : Interval_id.t }
  | Rollback_cascade of {
      target : Interval_id.t;
      rolled : Interval_id.t list;
      cause : rollback_cause;
    }
  | Dep_resolved of { iid : Interval_id.t; aid : Aid.t; remaining : int }
  | Cycle_cut of { iid : Interval_id.t; aid : Aid.t }
  | Wire_send of { dst : Proc_id.t; wire : Wire.t }
  | Msg_send of { dst : Proc_id.t; msg_id : int; tags : Aid.Set.t }
  | Msg_recv of { src : Proc_id.t; msg_id : int; iid : Interval_id.t option }
  | Cancel_send of { dst : Proc_id.t; msg_id : int }
  | Mailbox_compact of { kept : int; reclaimed : int }
  | Sim_stop of { reason : string }
  | Shard_commit of { src_lp : int; send_ts : float; digest : int }
  | Shard_straggler of {
      lp : int;
      lvt : float;
      root_shard : int;
      root_mid : int;
      root_send_ts : float;
      rolled : int;
      secondary : bool;
    }
  | Gvt_advance of { gvt : float; committed : int }

type t = { seq : int; time : float; proc : Proc_id.t; payload : payload }

let type_name = function
  | Aid_create _ -> "aid-create"
  | Aid_transition _ -> "aid-transition"
  | Guess _ -> "guess"
  | Affirm _ -> "affirm"
  | Deny _ -> "deny"
  | Free_of _ -> "free-of"
  | Interval_open _ -> "interval-open"
  | Interval_finalize _ -> "interval-finalize"
  | Rollback_cascade _ -> "rollback-cascade"
  | Dep_resolved _ -> "dep-resolved"
  | Cycle_cut _ -> "cycle-cut"
  | Wire_send _ -> "wire-send"
  | Msg_send _ -> "msg-send"
  | Msg_recv _ -> "msg-recv"
  | Cancel_send _ -> "cancel-send"
  | Mailbox_compact _ -> "mailbox-compact"
  | Sim_stop _ -> "sim-stop"
  | Shard_commit _ -> "shard-commit"
  | Shard_straggler _ -> "shard-straggler"
  | Gvt_advance _ -> "gvt-advance"

let cause_name = function
  | Denied a -> Printf.sprintf "denied:%s" (Aid.to_string a)
  | Revoked -> "revoked"
  | Cancelled id -> Printf.sprintf "cancelled:#%d" id

let kind_name = function Explicit -> "explicit" | Implicit -> "implicit"

let pp_iid_opt ppf = function
  | Some iid -> Interval_id.pp ppf iid
  | None -> Format.pp_print_string ppf "definite"

let pp_payload ppf = function
  | Aid_create { aid } -> Format.fprintf ppf "aid-create %a" Aid.pp aid
  | Aid_transition { aid; from_; to_ } ->
    Format.fprintf ppf "aid-transition %a %s->%s" Aid.pp aid
      (aid_state_name from_) (aid_state_name to_)
  | Guess { iid; aid } ->
    Format.fprintf ppf "guess %a on %a" Interval_id.pp iid Aid.pp aid
  | Affirm { aid; iid; speculative } ->
    Format.fprintf ppf "affirm %a by %a%s" Aid.pp aid pp_iid_opt iid
      (if speculative then " (spec)" else "")
  | Deny { aid; iid; buffered } ->
    Format.fprintf ppf "deny %a by %a%s" Aid.pp aid pp_iid_opt iid
      (if buffered then " (buffered)" else "")
  | Free_of { aid; hit } ->
    Format.fprintf ppf "free-of %a %s" Aid.pp aid (if hit then "hit" else "miss")
  | Interval_open { iid; kind; ido } ->
    Format.fprintf ppf "interval-open %a (%s) ido=%a" Interval_id.pp iid
      (kind_name kind) Aid.Set.pp ido
  | Interval_finalize { iid } ->
    Format.fprintf ppf "interval-finalize %a" Interval_id.pp iid
  | Rollback_cascade { target; rolled; cause } ->
    Format.fprintf ppf "rollback-cascade target=%a rolled=%d cause=%s"
      Interval_id.pp target (List.length rolled) (cause_name cause)
  | Dep_resolved { iid; aid; remaining } ->
    Format.fprintf ppf "dep-resolved %a freed-of %a (%d left)" Interval_id.pp
      iid Aid.pp aid remaining
  | Cycle_cut { iid; aid } ->
    Format.fprintf ppf "cycle-cut %a dropped %a" Interval_id.pp iid Aid.pp aid
  | Wire_send { dst; wire } ->
    Format.fprintf ppf "wire-send ->%a %a" Proc_id.pp dst Wire.pp wire
  | Msg_send { dst; msg_id; tags } ->
    Format.fprintf ppf "msg-send ->%a #%d tags=%a" Proc_id.pp dst msg_id
      Aid.Set.pp tags
  | Msg_recv { src; msg_id; iid } ->
    Format.fprintf ppf "msg-recv <-%a #%d iid=%a" Proc_id.pp src msg_id
      pp_iid_opt iid
  | Cancel_send { dst; msg_id } ->
    Format.fprintf ppf "cancel-send ->%a #%d" Proc_id.pp dst msg_id
  | Mailbox_compact { kept; reclaimed } ->
    Format.fprintf ppf "mailbox-compact kept=%d reclaimed=%d" kept reclaimed
  | Sim_stop { reason } -> Format.fprintf ppf "sim-stop (%s)" reason
  | Shard_commit { src_lp; send_ts; digest } ->
    Format.fprintf ppf "shard-commit <-lp%d @%.9f digest=%d" src_lp send_ts
      digest
  | Shard_straggler { lp; lvt; root_shard; root_mid; root_send_ts; rolled;
                      secondary } ->
    Format.fprintf ppf
      "shard-straggler lp%d lvt=%.9f root=sh%d#%d@%.9f rolled=%d%s" lp lvt
      root_shard root_mid root_send_ts rolled
      (if secondary then " (secondary)" else "")
  | Gvt_advance { gvt; committed } ->
    Format.fprintf ppf "gvt-advance %.9f committed=%d" gvt committed

let pp ppf t =
  Format.fprintf ppf "[%12.6f] %a %a" t.time Proc_id.pp t.proc pp_payload
    t.payload

(* One representative payload per constructor, in declaration order.
   Exporter exhaustiveness tests feed these through every backend; a new
   constructor must be added here (the arity check in test_obs fails
   otherwise). *)
let samples : payload list =
  let p = Proc_id.of_int 1 in
  let aid = Aid.of_proc p in
  let iid = Interval_id.make ~owner:p ~seq:0 in
  [
    Aid_create { aid };
    Aid_transition { aid; from_ = Cold; to_ = Hot };
    Guess { iid; aid };
    Affirm { aid; iid = Some iid; speculative = true };
    Deny { aid; iid = None; buffered = false };
    Free_of { aid; hit = true };
    Interval_open { iid; kind = Explicit; ido = Aid.Set.empty };
    Interval_finalize { iid };
    Rollback_cascade { target = iid; rolled = [ iid ]; cause = Revoked };
    Dep_resolved { iid; aid; remaining = 0 };
    Cycle_cut { iid; aid };
    Wire_send { dst = p; wire = Wire.Guess { iid } };
    Msg_send { dst = p; msg_id = 7; tags = Aid.Set.empty };
    Msg_recv { src = p; msg_id = 7; iid = Some iid };
    Cancel_send { dst = p; msg_id = 7 };
    Mailbox_compact { kept = 3; reclaimed = 5 };
    Sim_stop { reason = "sample" };
    Shard_commit { src_lp = 0; send_ts = 0.5; digest = 42 };
    Shard_straggler
      { lp = 1; lvt = 2.0; root_shard = 0; root_mid = 3; root_send_ts = 1.5;
        rolled = 2; secondary = false };
    Gvt_advance { gvt = 1.0; committed = 4 };
  ]
