(** The typed speculation event schema.

    One constructor per runtime transition the paper's machinery can take:
    the four HOPE primitives, AID state moves, interval lifecycle steps,
    the control messages that implement dependency tracking, and tagged
    user-message traffic. Every event is stamped with the virtual-sim time
    at which it happened and a per-recorder sequence number, so a captured
    stream is bit-for-bit deterministic for a fixed seed (the engine reads
    no wall clock and no OS randomness).

    The schema is deliberately closed: exporters and analytics passes
    pattern-match exhaustively, so adding a transition is a compile-time
    event for every consumer. *)

open Hope_types

type aid_state = Cold | Hot | Maybe | True_ | False_
(** Mirror of {!Hope_core.Aid_machine.state}, duplicated here so the
    observability layer sits {e below} the core (the engine owns a
    recorder without depending on HOPE semantics). *)

val aid_state_name : aid_state -> string

type interval_kind = Explicit | Implicit
(** [Explicit]: opened by a [guess] primitive. [Implicit]: opened by
    consuming a tagged message (or by a speculative spawn). *)

type rollback_cause =
  | Denied of Aid.t  (** an assumption in the interval's IDO was denied *)
  | Revoked  (** a speculative affirm the interval had rewired through was retracted *)
  | Cancelled of int  (** the message (by id) that opened the interval was retracted *)

type payload =
  (* AID lifecycle *)
  | Aid_create of { aid : Aid.t }
  | Aid_transition of { aid : Aid.t; from_ : aid_state; to_ : aid_state }
  (* HOPE primitives *)
  | Guess of { iid : Interval_id.t; aid : Aid.t }
  | Affirm of { aid : Aid.t; iid : Interval_id.t option; speculative : bool }
      (** [iid = None] for a definite affirm from a process with no live
          intervals. *)
  | Deny of { aid : Aid.t; iid : Interval_id.t option; buffered : bool }
  | Free_of of { aid : Aid.t; hit : bool }
  (* Interval lifecycle (the span model keys off these three) *)
  | Interval_open of { iid : Interval_id.t; kind : interval_kind; ido : Aid.Set.t }
  | Interval_finalize of { iid : Interval_id.t }
  | Rollback_cascade of {
      target : Interval_id.t;
      rolled : Interval_id.t list;  (** oldest first; includes [target] *)
      cause : rollback_cause;
    }
  (* Dependency tracking *)
  | Dep_resolved of { iid : Interval_id.t; aid : Aid.t; remaining : int }
      (** a Replace emptied one IDO slot; [remaining] is the IDO size after *)
  | Cycle_cut of { iid : Interval_id.t; aid : Aid.t }
  (* Message traffic *)
  | Wire_send of { dst : Proc_id.t; wire : Wire.t }
  | Msg_send of { dst : Proc_id.t; msg_id : int; tags : Aid.Set.t }
  | Msg_recv of { src : Proc_id.t; msg_id : int; iid : Interval_id.t option }
      (** a user message was consumed; [iid] is the implicit-guess interval
          the consumption opened, if any *)
  | Cancel_send of { dst : Proc_id.t; msg_id : int }
  | Mailbox_compact of { kept : int; reclaimed : int }
      (** the mailbox evicted [reclaimed] dropped/definitely-consumed
          arrivals in one order-preserving epoch, leaving [kept] resident *)
  (* Engine lifecycle *)
  | Sim_stop of { reason : string }
  (* Sharded execution (lib/shard): the merged-trace commit record plus
     per-domain diagnostics. [Shard_commit] is emitted at [time =
     recv_ts] on [proc = dst_lp] and deliberately excludes message ids
     and shard ids — both depend on the domain count, and the merged
     trace must be byte-identical at any count. *)
  | Shard_commit of { src_lp : int; send_ts : float; digest : int }
      (** one committed (GVT-passed) Time Warp event in the merged,
          deterministically ordered cross-shard trace *)
  | Shard_straggler of {
      lp : int;
      lvt : float;
      root_shard : int;
      root_mid : int;
      root_send_ts : float;
      rolled : int;
      secondary : bool;
    }
      (** a rollback at [lp] (whose local virtual time was [lvt]),
          undoing [rolled] processed entries, attributed to its {e root
          cause}: the straggler positive message [root_mid] sent from
          shard [root_shard] at [root_send_ts]. [secondary] rollbacks
          were triggered by an anti-message of a cascade and inherit the
          root of the rollback that sent the anti, so summing [rolled]
          per root attributes every wasted event to the straggler that
          started the cascade (per-domain diagnostic) *)
  | Gvt_advance of { gvt : float; committed : int }
      (** a GVT round moved the global floor to [gvt]; this shard fossil-
          collected [committed] entries (per-domain diagnostic) *)

type t = {
  seq : int;  (** emission order within one recorder, from 0 *)
  time : float;  (** virtual-sim timestamp in seconds *)
  proc : Proc_id.t;  (** the process at which the transition happened *)
  payload : payload;
}

val type_name : payload -> string
(** Stable lowercase tag, e.g. ["interval-open"]; used as the event name
    in exports and for summary counting. *)

val cause_name : rollback_cause -> string

val pp_payload : Format.formatter -> payload -> unit
(** The details alone, without the time/proc prefix. *)

val pp : Format.formatter -> t -> unit
(** One human-readable line: time, proc, type, details. *)

val samples : payload list
(** One representative payload per constructor, in declaration order —
    the exporter-exhaustiveness fixture. Extend when adding a
    constructor. *)
