open Hope_types

(* A minimal JSON writer. Numbers use fixed-precision formatting so
   serialisation is byte-deterministic across runs; we never emit floats
   through %g (whose shortest-representation choices are stable too, but
   fixed precision keeps diffs humane). *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let str b s =
  Buffer.add_char b '"';
  escape b s;
  Buffer.add_char b '"'

(* Virtual seconds -> trace microseconds, fixed at nanosecond precision. *)
let us b (t : float) = Buffer.add_string b (Printf.sprintf "%.3f" (t *. 1e6))

let field b ~first name writer =
  if not first then Buffer.add_char b ',';
  str b name;
  Buffer.add_char b ':';
  writer b

let obj b fields =
  Buffer.add_char b '{';
  List.iteri (fun i (name, writer) -> field b ~first:(i = 0) name writer) fields;
  Buffer.add_char b '}'

let payload_category = function
  | Event.Aid_create _ | Event.Aid_transition _ -> "aid"
  | Event.Guess _ | Event.Affirm _ | Event.Deny _ | Event.Free_of _ -> "primitive"
  | Event.Interval_open _ | Event.Interval_finalize _ | Event.Rollback_cascade _
    ->
    "interval"
  | Event.Dep_resolved _ | Event.Cycle_cut _ -> "tracking"
  | Event.Wire_send _ | Event.Msg_send _ | Event.Msg_recv _
  | Event.Cancel_send _ ->
    "net"
  | Event.Mailbox_compact _ -> "storage"
  | Event.Sim_stop _ -> "engine"
  | Event.Shard_commit _ | Event.Shard_straggler _ | Event.Gvt_advance _ ->
      "shard"

let span_event b (end_time : float) (s : Span.t) =
  let close = match s.Span.closed_at with Some c -> c | None -> end_time in
  let fate =
    match s.Span.close with
    | Span.Finalized -> "finalized"
    | Span.Rolled_back cause -> "rolled-back:" ^ Event.cause_name cause
    | Span.Still_open -> "still-open"
  in
  obj b
    [
      ("name", fun b -> str b (Interval_id.to_string s.Span.iid));
      ("cat", fun b -> str b "interval");
      ("ph", fun b -> str b "X");
      ("ts", fun b -> us b s.Span.opened_at);
      ("dur", fun b -> us b (Float.max 0.0 (close -. s.Span.opened_at)));
      ("pid", fun b -> Buffer.add_string b (string_of_int (Proc_id.to_int s.Span.proc)));
      ("tid", fun b -> Buffer.add_string b (string_of_int s.Span.depth));
      ( "args",
        fun b ->
          obj b
            [
              ( "kind",
                fun b ->
                  str b
                    (match s.Span.kind with
                    | Event.Explicit -> "explicit"
                    | Event.Implicit -> "implicit") );
              ("fate", fun b -> str b fate);
              ("cascade", fun b -> Buffer.add_string b (string_of_int s.Span.cascade));
              ("ido", fun b -> str b (Format.asprintf "%a" Aid.Set.pp s.Span.ido));
            ] );
    ]

let instant_event b (e : Event.t) =
  obj b
    [
      ("name", fun b -> str b (Event.type_name e.Event.payload));
      ("cat", fun b -> str b (payload_category e.Event.payload));
      ("ph", fun b -> str b "i");
      ("s", fun b -> str b "t");
      ("ts", fun b -> us b e.Event.time);
      ("pid", fun b -> Buffer.add_string b (string_of_int (Proc_id.to_int e.Event.proc)));
      ("tid", fun b -> Buffer.add_string b "0");
      ( "args",
        fun b ->
          obj b
            [
              ( "detail",
                fun b -> str b (Format.asprintf "%a" Event.pp_payload e.Event.payload) );
              ("seq", fun b -> Buffer.add_string b (string_of_int e.Event.seq));
            ] );
    ]

(* Cross-LP causality as Chrome {e flow events}: each committed shard
   message with a real remote producer becomes an arrow from
   (src_lp, send_ts) to (dst_lp, recv_ts). Perfetto draws these over the
   instant events, which turns the merged commit stream into a visual
   provenance DAG. Flow ids reuse the commit's merge-order [seq] — the
   merged stream is byte-deterministic across domain counts, so the flow
   section is too. *)
let flow_events b emit (e : Event.t) =
  match e.Event.payload with
  | Event.Shard_commit { src_lp; send_ts; _ }
    when src_lp >= 0 && src_lp <> Proc_id.to_int e.Event.proc ->
    let id = string_of_int e.Event.seq in
    let half ph ~extra pid ts =
      obj b
        ([
           ("name", fun b -> str b "shard-msg");
           ("cat", fun b -> str b "shard");
           ("ph", fun b -> str b ph);
           ("id", fun b -> Buffer.add_string b id);
           ("ts", fun b -> us b ts);
           ("pid", fun b -> Buffer.add_string b (string_of_int pid));
           ("tid", fun b -> Buffer.add_string b "0");
         ]
        @ extra)
    in
    emit (fun () -> half "s" ~extra:[] src_lp send_ts);
    emit (fun () ->
        half "f"
          ~extra:[ ("bp", fun b -> str b "e") ]
          (Proc_id.to_int e.Event.proc) e.Event.time)
  | _ -> ()

let is_instant (e : Event.t) =
  match e.Event.payload with
  | Event.Interval_open _ | Event.Interval_finalize _ -> false
  (* the span covers these; keep rollback cascades as visible markers *)
  | _ -> true

let to_string events =
  let b = Buffer.create 65536 in
  let end_time = Span.end_time events in
  let spans = Span.of_events events in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let emit writer =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    writer ()
  in
  List.iter (fun s -> emit (fun () -> span_event b end_time s)) spans;
  List.iter
    (fun e -> if is_instant e then emit (fun () -> instant_event b e))
    events;
  List.iter (fun e -> flow_events b emit e) events;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write oc events = output_string oc (to_string events)
