(** Chrome trace-event JSON exporter.

    Produces the Trace Event Format that Perfetto ({{:https://ui.perfetto.dev}
    ui.perfetto.dev}) and chrome://tracing load directly: speculation
    intervals become complete ("ph":"X") duration events on their owning
    process's track, and every point transition (primitives, AID moves,
    control traffic) becomes an instant ("ph":"i") event. Timestamps are
    virtual-sim microseconds.

    Output is byte-deterministic: events are serialised in capture order
    with fixed-precision numeric formatting, so two identical runs yield
    identical files. *)

val to_string : Event.t list -> string
(** Serialise a captured stream. Events must be in emission order. *)

val write : out_channel -> Event.t list -> unit
