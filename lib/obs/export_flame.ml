open Hope_types

let sanitize_frame s =
  String.map (function ';' | ' ' | '\n' | '\t' -> '_' | c -> c) s

let fate_frame (s : Span.t) =
  match s.Span.close with
  | Span.Finalized -> "committed"
  | Span.Rolled_back _ -> "wasted"
  | Span.Still_open -> "open"

let to_string events =
  let end_time = Span.end_time events in
  let spans = Span.of_events events in
  let by_iid = Hashtbl.create 64 in
  List.iter (fun (s : Span.t) -> Hashtbl.replace by_iid s.Span.iid s) spans;
  (* Self time = own duration minus the duration of directly nested
     children (children never outlive their parent under the history's
     stack discipline, so the subtraction cannot double-count). *)
  let child_sum = Hashtbl.create 64 in
  List.iter
    (fun (s : Span.t) ->
      match s.Span.parent with
      | None -> ()
      | Some p ->
          let d = Span.duration ~end_time s in
          let prev =
            match Hashtbl.find_opt child_sum p with Some v -> v | None -> 0.0
          in
          Hashtbl.replace child_sum p (prev +. d))
    spans;
  let self (s : Span.t) =
    let nested =
      match Hashtbl.find_opt child_sum s.Span.iid with
      | Some v -> v
      | None -> 0.0
    in
    Float.max 0.0 (Span.duration ~end_time s -. nested)
  in
  let rec chain acc (s : Span.t) =
    let acc = sanitize_frame (Interval_id.to_string s.Span.iid) :: acc in
    match s.Span.parent with
    | None -> acc
    | Some p -> (
        match Hashtbl.find_opt by_iid p with
        | Some parent -> chain acc parent
        | None -> acc)
  in
  let stacks = Hashtbl.create 64 in
  List.iter
    (fun (s : Span.t) ->
      let ns = Float.round (self s *. 1e9) in
      if ns > 0.0 then begin
        let stack =
          String.concat ";"
            (fate_frame s
            :: sanitize_frame (Proc_id.to_string s.Span.proc)
            :: chain [] s)
        in
        let prev =
          match Hashtbl.find_opt stacks stack with Some v -> v | None -> 0.0
        in
        Hashtbl.replace stacks stack (prev +. ns)
      end)
    spans;
  (* Shard events carry no span, so they'd vanish from the flame graph;
     weight them by their virtual-time window instead. A committed
     cross-shard message burns its transit window (recv − send); a
     straggler rollback wastes the window it undid (lvt − upto). GVT
     advances and mailbox compactions are zero-width bookkeeping and
     deliberately contribute no frame. *)
  let add_stack stack ns =
    if ns > 0.0 then begin
      let prev =
        match Hashtbl.find_opt stacks stack with Some v -> v | None -> 0.0
      in
      Hashtbl.replace stacks stack (prev +. ns)
    end
  in
  List.iter
    (fun (e : Event.t) ->
      let proc = sanitize_frame (Proc_id.to_string e.Event.proc) in
      match e.Event.payload with
      | Event.Shard_commit { src_lp; send_ts; _ } when src_lp >= 0 ->
        add_stack
          (String.concat ";" [ "committed"; proc; "shard-transit" ])
          (Float.round ((e.Event.time -. send_ts) *. 1e9))
      | Event.Shard_commit _ -> ()
      | Event.Shard_straggler { lvt; secondary; _ } ->
        let frame = if secondary then "shard-cascade" else "shard-rollback" in
        add_stack
          (String.concat ";" [ "wasted"; proc; frame ])
          (Float.round ((lvt -. e.Event.time) *. 1e9))
      | Event.Gvt_advance _ | Event.Mailbox_compact _ -> ()
      | _ -> ())
    events;
  let lines =
    Hashtbl.fold
      (fun stack ns acc -> Printf.sprintf "%s %.0f" stack ns :: acc)
      stacks []
  in
  let b = Buffer.create 4096 in
  List.iter
    (fun line ->
      Buffer.add_string b line;
      Buffer.add_char b '\n')
    (List.sort String.compare lines);
  Buffer.contents b

let write oc events = output_string oc (to_string events)
