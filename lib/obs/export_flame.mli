(** Collapsed-stack flamegraph export.

    Emits the classic Brendan-Gregg folded format — one
    [frame;frame;frame value] line per unique stack — consumed directly
    by speedscope and by inferno's [flamegraph.pl]-compatible tools.

    Each speculation interval becomes a frame; its stack is the interval's
    nesting chain (from {!Span.of_events}) rooted at a fate category and
    the owning process, so the graph splits committed from wasted virtual
    time at the first level:

    {v
    committed;p0;P0/1 1200
    wasted;p2;P2/1;P2/2 3400
    v}

    Values are the span's {e self} virtual time (duration minus enclosed
    children) in integer virtual nanoseconds; zero-self frames are
    omitted. Lines are merged by stack and sorted lexicographically, so
    output is byte-deterministic for a fixed event stream. *)

val to_string : Event.t list -> string

val write : out_channel -> Event.t list -> unit
