open Hope_types

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s

let interval_node iid = "i:" ^ Interval_id.to_string iid
let aid_node aid = "a:" ^ Aid.to_string aid

type node = { id : string; data : (string * string) list }
type edge = { src : string; dst : string; relation : string }

(* Accumulate nodes and edges in first-seen order, deduplicating by id /
   (src, dst, relation). Insertion order makes the output deterministic
   without relying on hash-table iteration order. *)
type builder = {
  mutable nodes_rev : node list;
  node_ids : (string, unit) Hashtbl.t;
  mutable edges_rev : edge list;
  edge_ids : (string * string * string, unit) Hashtbl.t;
}

let add_node bld id data =
  if not (Hashtbl.mem bld.node_ids id) then begin
    Hashtbl.add bld.node_ids id ();
    bld.nodes_rev <- { id; data } :: bld.nodes_rev
  end

let add_edge bld ~src ~dst relation =
  let key = (src, dst, relation) in
  if not (Hashtbl.mem bld.edge_ids key) then begin
    Hashtbl.add bld.edge_ids key ();
    bld.edges_rev <- { src; dst; relation } :: bld.edges_rev
  end

let to_string events =
  let bld =
    {
      nodes_rev = [];
      node_ids = Hashtbl.create 64;
      edges_rev = [];
      edge_ids = Hashtbl.create 64;
    }
  in
  let spans = Span.of_events events in
  (* Interval nodes, their dependency edges, and their nesting edges. *)
  List.iter
    (fun (s : Span.t) ->
      let fate =
        match s.Span.close with
        | Span.Finalized -> "finalized"
        | Span.Rolled_back cause -> "rolled-back:" ^ Event.cause_name cause
        | Span.Still_open -> "still-open"
      in
      let closed =
        match s.Span.closed_at with Some c -> Printf.sprintf "%.9f" c | None -> ""
      in
      add_node bld (interval_node s.Span.iid)
        [
          ("kind", "interval");
          ( "subkind",
            match s.Span.kind with
            | Event.Explicit -> "explicit"
            | Event.Implicit -> "implicit" );
          ("fate", fate);
          ("proc", Proc_id.to_string s.Span.proc);
          ("opened", Printf.sprintf "%.9f" s.Span.opened_at);
          ("closed", closed);
        ];
      Aid.Set.iter
        (fun aid ->
          add_node bld (aid_node aid) [ ("kind", "aid") ];
          add_edge bld ~src:(interval_node s.Span.iid) ~dst:(aid_node aid)
            "depends-on")
        s.Span.ido;
      match s.Span.parent with
      | Some parent ->
        add_edge bld ~src:(interval_node s.Span.iid) ~dst:(interval_node parent)
          "child-of"
      | None -> ())
    spans;
  (* Terminal AID states, recorded as node data after the fact. *)
  let final_states = Hashtbl.create 16 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.payload with
      | Event.Aid_transition { aid; to_; _ } ->
        Hashtbl.replace final_states (Aid.to_string aid) (Event.aid_state_name to_)
      | _ -> ())
    events;
  (* Edges from the primitive / tracking events. *)
  List.iter
    (fun (e : Event.t) ->
      match e.Event.payload with
      | Event.Guess { iid; aid } ->
        add_node bld (aid_node aid) [ ("kind", "aid") ];
        add_edge bld ~src:(interval_node iid) ~dst:(aid_node aid) "depends-on"
      | Event.Affirm { aid; iid = Some iid; _ } ->
        add_node bld (aid_node aid) [ ("kind", "aid") ];
        add_edge bld ~src:(interval_node iid) ~dst:(aid_node aid) "affirmed"
      | Event.Dep_resolved { iid; aid; _ } ->
        add_node bld (aid_node aid) [ ("kind", "aid") ];
        add_edge bld ~src:(aid_node aid) ~dst:(interval_node iid) "resolved"
      | Event.Rollback_cascade { rolled; cause = Event.Denied aid; _ } ->
        add_node bld (aid_node aid) [ ("kind", "aid") ];
        List.iter
          (fun iid ->
            add_edge bld ~src:(aid_node aid) ~dst:(interval_node iid)
              "rolled-back")
          rolled
      | Event.Cycle_cut { iid; aid } ->
        add_node bld (aid_node aid) [ ("kind", "aid") ];
        add_edge bld ~src:(interval_node iid) ~dst:(aid_node aid) "cycle-cut"
      | _ -> ())
    events;
  (* Cross-shard commit provenance. Each [Shard_commit] in the merged
     stream becomes a commit node [c:<idx>] (idx = appearance order,
     which under {!Shard.merge_into} is the deterministic merge order);
     its causal parent is the commit that {e produced} the message — in
     Time Warp the producing execution is the commit at [src_lp] whose
     receive time equals this message's [send_ts], so a (lp, ts) lookup
     over the commits already seen recovers the whole cascade DAG from
     merged data alone. Byte-identical at any domain count. *)
  let commit_at = Hashtbl.create 256 in
  let n_commits = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.payload with
      | Event.Shard_commit { src_lp; send_ts; digest } ->
        let id = Printf.sprintf "c:%d" !n_commits in
        incr n_commits;
        add_node bld id
          [
            ("kind", "commit");
            ("proc", Proc_id.to_string e.Event.proc);
            ("opened", Printf.sprintf "%.9f" e.Event.time);
            ("src", string_of_int src_lp);
            ("sent", Printf.sprintf "%.9f" send_ts);
            ("digest", string_of_int digest);
          ];
        (if src_lp >= 0 then
           match
             Hashtbl.find_opt commit_at (src_lp, Printf.sprintf "%.9f" send_ts)
           with
           | Some parent -> add_edge bld ~src:id ~dst:parent "caused-by"
           | None -> ());
        let key = (Proc_id.to_int e.Event.proc, Printf.sprintf "%.9f" e.Event.time) in
        if not (Hashtbl.mem commit_at key) then Hashtbl.add commit_at key id
      | _ -> ())
    events;
  let b = Buffer.create 65536 in
  Buffer.add_string b "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  Buffer.add_string b
    "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n";
  let keys =
    [
      ("k_kind", "node", "kind");
      ("k_subkind", "node", "subkind");
      ("k_fate", "node", "fate");
      ("k_proc", "node", "proc");
      ("k_opened", "node", "opened");
      ("k_closed", "node", "closed");
      ("k_state", "node", "state");
      ("k_src", "node", "src");
      ("k_sent", "node", "sent");
      ("k_digest", "node", "digest");
      ("k_relation", "edge", "relation");
    ]
  in
  List.iter
    (fun (id, target, name) ->
      Buffer.add_string b
        (Printf.sprintf
           "  <key id=\"%s\" for=\"%s\" attr.name=\"%s\" attr.type=\"string\"/>\n"
           id target name))
    keys;
  Buffer.add_string b "  <graph id=\"hope-causal\" edgedefault=\"directed\">\n";
  let data key v =
    Buffer.add_string b "      <data key=\"k_";
    Buffer.add_string b key;
    Buffer.add_string b "\">";
    escape b v;
    Buffer.add_string b "</data>\n"
  in
  List.iter
    (fun n ->
      Buffer.add_string b "    <node id=\"";
      escape b n.id;
      Buffer.add_string b "\">\n";
      List.iter (fun (k, v) -> if v <> "" then data k v) n.data;
      (match Hashtbl.find_opt final_states (String.sub n.id 2 (String.length n.id - 2)) with
      | Some state when List.mem_assoc "kind" n.data && List.assoc "kind" n.data = "aid" ->
        data "state" state
      | Some _ | None -> ());
      Buffer.add_string b "    </node>\n")
    (List.rev bld.nodes_rev);
  List.iteri
    (fun i e ->
      Buffer.add_string b
        (Printf.sprintf "    <edge id=\"e%d\" source=\"" i);
      escape b e.src;
      Buffer.add_string b "\" target=\"";
      escape b e.dst;
      Buffer.add_string b "\">\n";
      data "relation" e.relation;
      Buffer.add_string b "    </edge>\n")
    (List.rev bld.edges_rev);
  Buffer.add_string b "  </graph>\n</graphml>\n";
  Buffer.contents b

let write oc events = output_string oc (to_string events)
