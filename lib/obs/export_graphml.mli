(** GraphML export of the causal dependency DAG.

    Nodes are speculation intervals and AIDs; edges record why each
    depended on, resolved, or destroyed the other:

    - [depends-on]: interval → AID it guessed on (IDO membership);
    - [child-of]: interval → the enclosing interval it nested under;
    - [affirmed]: interval → AID it (speculatively) affirmed;
    - [resolved]: AID → interval whose dependency on it was replaced away;
    - [rolled-back]: denied AID → each interval its denial discarded;
    - [cycle-cut]: interval → AID dropped by Algorithm 2's cycle cut.

    The layout follows the iGraph/GraphML convention (keys declared up
    front, data elements per node/edge) so the file loads in yEd, Gephi,
    or igraph for cascade forensics. Output is byte-deterministic. *)

val to_string : Event.t list -> string
(** Serialise the DAG of a captured stream (events in emission order). *)

val write : out_channel -> Event.t list -> unit
