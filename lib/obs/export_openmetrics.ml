type instrument =
  | Counter of { name : string; labels : (string * string) list; value : int }
  | Gauge of { name : string; labels : (string * string) list; value : float }
  | Summary of {
      name : string;
      labels : (string * string) list;
      count : int;
      sum : float;
      quantiles : (float * float) list;
    }

let sanitize s =
  String.map
    (function
      | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c
      | _ -> '_')
    s

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Canonical label order: keys sanitized and sorted, duplicates dropped. *)
let canon_labels labels =
  List.sort_uniq
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map (fun (k, v) -> (sanitize k, v)) labels)

(* Numeric label values (shard ids) order numerically, so shard="10"
   sorts after shard="9", not between "1" and "2". *)
let compare_label_value a b =
  match (int_of_string_opt a, int_of_string_opt b) with
  | Some x, Some y -> compare x y
  | _ -> String.compare a b

let compare_labels a b =
  List.compare
    (fun (ka, va) (kb, vb) ->
      match String.compare ka kb with
      | 0 -> compare_label_value va vb
      | c -> c)
    a b

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

(* Fixed-format value rendering: integral values print without a
   fraction, everything else through %.9g (the json_out convention). *)
let fmt_value v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* Virtual seconds -> integer virtual microseconds in the classic
   text format's millisecond timestamp slot. *)
let fmt_ts t = Printf.sprintf "%.0f" (t *. 1e6)

(* One entry per label set inside a family: the unlabeled aggregate and
   each shard="N" variant live under a single # HELP/# TYPE header. *)
type entry = {
  e_labels : (string * string) list;  (* canonical order *)
  mutable e_final : instrument option;
  mutable e_points : (float * float) list;  (* oldest first *)
}

type family = {
  fam_name : string;  (* sanitized, without any _total suffix *)
  source : string;  (* the original instrument/series name *)
  kind : [ `Counter | `Gauge | `Summary ];
  mutable entries : entry list;  (* newest first while collecting *)
}

let instrument_name = function
  | Counter { name; _ } | Gauge { name; _ } | Summary { name; _ } -> name

let instrument_labels = function
  | Counter { labels; _ } | Gauge { labels; _ } | Summary { labels; _ } ->
      labels

let entry_of fam labels =
  match
    List.find_opt (fun e -> compare_labels e.e_labels labels = 0) fam.entries
  with
  | Some e -> e
  | None ->
      let e = { e_labels = labels; e_final = None; e_points = [] } in
      fam.entries <- e :: fam.entries;
      e

let collect ~instruments ~series =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  let family source kind =
    let key = sanitize source in
    match Hashtbl.find_opt tbl key with
    | Some fam -> fam
    | None ->
        let fam = { fam_name = key; source; kind; entries = [] } in
        Hashtbl.replace tbl key fam;
        order := key :: !order;
        fam
  in
  List.iter
    (fun inst ->
      let kind =
        match inst with
        | Counter _ -> `Counter
        | Gauge _ -> `Gauge
        | Summary _ -> `Summary
      in
      let fam = family (instrument_name inst) kind in
      let e = entry_of fam (canon_labels (instrument_labels inst)) in
      e.e_final <- Some inst)
    instruments;
  (match series with
  | None -> ()
  | Some ts ->
      List.iter
        (fun (nm, s) ->
          let labels = canon_labels (Timeseries.labels s) in
          let points = Timeseries.to_list s in
          let key = sanitize nm in
          match Hashtbl.find_opt tbl key with
          | Some { kind = `Summary; _ } -> ()  (* summaries are not sampled *)
          | Some fam -> (entry_of fam labels).e_points <- points
          | None ->
              let fam = family nm `Gauge in
              (entry_of fam labels).e_points <- points)
        (Timeseries.all ts));
  let fams =
    List.sort
      (fun a b -> String.compare a.fam_name b.fam_name)
      (List.rev_map (Hashtbl.find tbl) !order)
  in
  List.iter
    (fun fam ->
      fam.entries <-
        List.sort (fun a b -> compare_labels a.e_labels b.e_labels) fam.entries)
    fams;
  fams

let emit_family b fam =
  let sample_name =
    match fam.kind with
    | `Counter -> fam.fam_name ^ "_total"
    | `Gauge | `Summary -> fam.fam_name
  in
  let kind_name =
    match fam.kind with
    | `Counter -> "counter"
    | `Gauge -> "gauge"
    | `Summary -> "summary"
  in
  Printf.bprintf b "# HELP %s HOPE simulation metric %s.\n" sample_name
    fam.source;
  Printf.bprintf b "# TYPE %s %s\n" sample_name kind_name;
  List.iter
    (fun e ->
      let ls = render_labels e.e_labels in
      match e with
      | { e_final = Some (Summary { count; sum; quantiles; _ }); _ } ->
          if count > 0 then
            List.iter
              (fun (q, v) ->
                let qls =
                  render_labels
                    (e.e_labels @ [ ("quantile", fmt_value q) ])
                in
                Printf.bprintf b "%s%s %s\n" sample_name qls (fmt_value v))
              quantiles;
          Printf.bprintf b "%s_sum%s %s\n" sample_name ls (fmt_value sum);
          Printf.bprintf b "%s_count%s %d\n" sample_name ls count
      | { e_points = (_ :: _) as points; _ } ->
          List.iter
            (fun (time, v) ->
              Printf.bprintf b "%s%s %s %s\n" sample_name ls (fmt_value v)
                (fmt_ts time))
            points
      | { e_final = Some (Counter { value; _ }); _ } ->
          Printf.bprintf b "%s%s %d\n" sample_name ls value
      | { e_final = Some (Gauge { value; _ }); _ } ->
          Printf.bprintf b "%s%s %s\n" sample_name ls (fmt_value value)
      | { e_final = None; e_points = []; _ } -> ())
    fam.entries

let to_string ?(instruments = []) ?series () =
  let b = Buffer.create 8192 in
  List.iter (emit_family b) (collect ~instruments ~series);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let write oc ?instruments ?series () =
  output_string oc (to_string ?instruments ?series ())
