type instrument =
  | Counter of { name : string; value : int }
  | Gauge of { name : string; value : float }
  | Summary of {
      name : string;
      count : int;
      sum : float;
      quantiles : (float * float) list;
    }

let sanitize s =
  String.map
    (function
      | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c
      | _ -> '_')
    s

(* Fixed-format value rendering: integral values print without a
   fraction, everything else through %.9g (the json_out convention). *)
let fmt_value v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* Virtual seconds -> integer virtual microseconds in the classic
   text format's millisecond timestamp slot. *)
let fmt_ts t = Printf.sprintf "%.0f" (t *. 1e6)

type family = {
  fam_name : string;  (* sanitized, without any _total suffix *)
  source : string;  (* the original instrument/series name *)
  kind : [ `Counter | `Gauge | `Summary ];
  final : instrument option;
  points : (float * float) list;  (* oldest first *)
}

let instrument_name = function
  | Counter { name; _ } | Gauge { name; _ } | Summary { name; _ } -> name

let collect ~instruments ~series =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  let add key fam =
    if not (Hashtbl.mem tbl key) then order := key :: !order;
    Hashtbl.replace tbl key fam
  in
  List.iter
    (fun inst ->
      let source = instrument_name inst in
      let key = sanitize source in
      let kind =
        match inst with
        | Counter _ -> `Counter
        | Gauge _ -> `Gauge
        | Summary _ -> `Summary
      in
      add key { fam_name = key; source; kind; final = Some inst; points = [] })
    instruments;
  (match series with
  | None -> ()
  | Some ts ->
      List.iter
        (fun (nm, s) ->
          let key = sanitize nm in
          let points = Timeseries.to_list s in
          match Hashtbl.find_opt tbl key with
          | Some ({ kind = `Counter | `Gauge; _ } as fam) ->
              Hashtbl.replace tbl key { fam with points }
          | Some { kind = `Summary; _ } -> ()  (* summaries are not sampled *)
          | None ->
              add key
                { fam_name = key; source = nm; kind = `Gauge; final = None;
                  points })
        (Timeseries.all ts));
  List.sort
    (fun a b -> String.compare a.fam_name b.fam_name)
    (List.rev_map (Hashtbl.find tbl) !order)

let emit_family b fam =
  let sample_name =
    match fam.kind with
    | `Counter -> fam.fam_name ^ "_total"
    | `Gauge | `Summary -> fam.fam_name
  in
  let kind_name =
    match fam.kind with
    | `Counter -> "counter"
    | `Gauge -> "gauge"
    | `Summary -> "summary"
  in
  Printf.bprintf b "# HELP %s HOPE simulation metric %s.\n" sample_name
    fam.source;
  Printf.bprintf b "# TYPE %s %s\n" sample_name kind_name;
  match fam with
  | { kind = `Summary; final = Some (Summary { count; sum; quantiles; _ }); _ }
    ->
      if count > 0 then
        List.iter
          (fun (q, v) ->
            Printf.bprintf b "%s{quantile=\"%s\"} %s\n" sample_name
              (fmt_value q) (fmt_value v))
          quantiles;
      Printf.bprintf b "%s_sum %s\n" sample_name (fmt_value sum);
      Printf.bprintf b "%s_count %d\n" sample_name count
  | { points = (_ :: _) as points; _ } ->
      List.iter
        (fun (time, v) ->
          Printf.bprintf b "%s %s %s\n" sample_name (fmt_value v) (fmt_ts time))
        points
  | { final = Some (Counter { value; _ }); _ } ->
      Printf.bprintf b "%s %d\n" sample_name value
  | { final = Some (Gauge { value; _ }); _ } ->
      Printf.bprintf b "%s %s\n" sample_name (fmt_value value)
  | { final = None; points = []; _ } -> ()
  | { final = Some (Summary _); _ } -> ()  (* unreachable: matched above *)

let to_string ?(instruments = []) ?series () =
  let b = Buffer.create 8192 in
  List.iter (emit_family b) (collect ~instruments ~series);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let write oc ?instruments ?series () =
  output_string oc (to_string ?instruments ?series ())
