(** Prometheus / OpenMetrics text exposition.

    Renders a snapshot of instruments — final counter/gauge/summary
    values plus any {!Timeseries} trajectories — in the classic
    Prometheus text format (which [promtool check metrics] validates),
    with the OpenMetrics [# EOF] trailer appended as a comment.

    Layout is byte-deterministic: families sort by name, numbers use
    fixed formatting, and timestamps are integers derived from virtual
    time. Like the Chrome exporter's seconds→microseconds mapping,
    sampled points place {e virtual microseconds} in the millisecond
    timestamp slot, so a 1.5-virtual-second sample reads [1500000].

    Names are sanitized to the Prometheus charset (every character
    outside [[A-Za-z0-9_:]] becomes [_], e.g. [hope.rollbacks] →
    [hope_rollbacks]); counters gain the conventional [_total] suffix. A
    series whose name collides with a counter or gauge instrument
    replaces that instrument's single sample with the timestamped
    trajectory (the final sampled point carries the closing value). *)

type instrument =
  | Counter of { name : string; value : int }
  | Gauge of { name : string; value : float }
  | Summary of {
      name : string;
      count : int;
      sum : float;
      quantiles : (float * float) list;  (** [(q, value)], q in [0,1] *)
    }

val sanitize : string -> string
(** Map a metric name into the Prometheus charset. *)

val to_string :
  ?instruments:instrument list -> ?series:Timeseries.t -> unit -> string

val write :
  out_channel -> ?instruments:instrument list -> ?series:Timeseries.t ->
  unit -> unit
