(** Prometheus / OpenMetrics text exposition.

    Renders a snapshot of instruments — final counter/gauge/summary
    values plus any {!Timeseries} trajectories — in the classic
    Prometheus text format (which [promtool check metrics] validates),
    with the OpenMetrics [# EOF] trailer appended as a comment.

    Layout is byte-deterministic: families sort by name, numbers use
    fixed formatting, and timestamps are integers derived from virtual
    time. Like the Chrome exporter's seconds→microseconds mapping,
    sampled points place {e virtual microseconds} in the millisecond
    timestamp slot, so a 1.5-virtual-second sample reads [1500000].

    Names are sanitized to the Prometheus charset (every character
    outside [[A-Za-z0-9_:]] becomes [_], e.g. [hope.rollbacks] →
    [hope_rollbacks]); counters gain the conventional [_total] suffix. A
    series whose name and labels collide with a counter or gauge
    instrument replaces that instrument's single sample with the
    timestamped trajectory (the final sampled point carries the closing
    value).

    Instruments and series carry an optional label set (e.g.
    [("shard", "3")]), letting one family hold the unlabeled aggregate
    plus per-shard variants under a single [# HELP]/[# TYPE] header.
    Label keys are sanitized and sorted; label sets within a family sort
    deterministically, unlabeled first, numeric values numerically. *)

type instrument =
  | Counter of { name : string; labels : (string * string) list; value : int }
  | Gauge of { name : string; labels : (string * string) list; value : float }
  | Summary of {
      name : string;
      labels : (string * string) list;
      count : int;
      sum : float;
      quantiles : (float * float) list;  (** [(q, value)], q in [0,1] *)
    }

val sanitize : string -> string
(** Map a metric name into the Prometheus charset. *)

val render_labels : (string * string) list -> string
(** [{k="v",...}] with escaped values, or [""] for the empty set. *)

val to_string :
  ?instruments:instrument list -> ?series:Timeseries.t -> unit -> string

val write :
  out_channel -> ?instruments:instrument list -> ?series:Timeseries.t ->
  unit -> unit
