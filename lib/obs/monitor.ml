open Hope_types

type config = {
  bounce_flips : int;
  replace_churn : int;
  cascade_limit : int;
  window_limit : int;
  stall_after : float;
  gvt_stall_events : int;
  imbalance_ratio : float;
  imbalance_epochs : int;
  backpressure_spins : int;
  annihilation_limit : int;
}

let default_config =
  {
    bounce_flips = 12;
    replace_churn = 512;
    cascade_limit = 64;
    window_limit = 256;
    stall_after = 30.0;
    gvt_stall_events = 4096;
    imbalance_ratio = 4.0;
    imbalance_epochs = 3;
    backpressure_spins = 4096;
    annihilation_limit = 512;
  }

type diagnostic =
  | Bounce_livelock of { aid : Aid.t; flips : int; at : float }
  | Cascade_runaway of { target : Interval_id.t; size : int; at : float }
  | Window_growth of { proc : Proc_id.t; live : int; at : float }
  | Stalled_interval of { iid : Interval_id.t; open_for : float; at : float }
  | Gvt_stall of { shard : int; events : int; gvt : float; at : float }
  | Shard_imbalance of {
      fast : int;
      slow : int;
      ratio : float;
      epochs : int;
      at : float;
    }
  | Mailbox_backpressure of { shard : int; spins : int; at : float }
  | Annihilation_storm of { shard : int; annihilations : int; at : float }

let pp_diagnostic ppf = function
  | Bounce_livelock { aid; flips; at } ->
      Format.fprintf ppf "bounce-livelock: %a flipped state %d times (t=%.6f)"
        Aid.pp aid flips at
  | Cascade_runaway { target; size; at } ->
      Format.fprintf ppf
        "cascade-runaway: cascade at %a rolled %d intervals (t=%.6f)"
        Interval_id.pp target size at
  | Window_growth { proc; live; at } ->
      Format.fprintf ppf
        "window-growth: %a holds %d live intervals (t=%.6f)" Proc_id.pp proc
        live at
  | Stalled_interval { iid; open_for; at } ->
      Format.fprintf ppf
        "stalled-interval: %a open for %.6f virtual seconds (t=%.6f)"
        Interval_id.pp iid open_for at
  | Gvt_stall { shard; events; gvt; at } ->
      Format.fprintf ppf
        "gvt-stall: shard %d processed %d events while GVT sat at %.6f \
         (t=%.6f)"
        shard events gvt at
  | Shard_imbalance { fast; slow; ratio; epochs; at } ->
      Format.fprintf ppf
        "shard-imbalance: shard %d ran %.1fx ahead of shard %d for %d GVT \
         epochs (t=%.6f)"
        fast ratio slow epochs at
  | Mailbox_backpressure { shard; spins; at } ->
      Format.fprintf ppf
        "mailbox-backpressure: shard %d spun %d times on full outbound rings \
         (t=%.6f)"
        shard spins at
  | Annihilation_storm { shard; annihilations; at } ->
      Format.fprintf ppf
        "annihilation-storm: shard %d annihilated %d anti-message pairs in \
         one epoch window (t=%.6f)"
        shard annihilations at

type open_iv = { opened_at : float; owner : int  (** proc as int *) }

type shard_sample = {
  sh_shard : int;
  sh_gvt : float;
  sh_lvt : float;
  sh_events : int;
  sh_stragglers : int;
  sh_rolled : int;
  sh_rollback_depth : int;
  sh_annihilations : int;
  sh_full_spins : int;
  sh_mailbox_occ : int;
  sh_mailbox_peak : int;
}

type t = {
  config : config;
  mutable now : float;
  (* AIDs *)
  mutable aids_created : int;
  mutable definite_aids : int;
  flips : (int, int ref) Hashtbl.t;  (* Aid.index -> transition count *)
  replaces : (int, int ref) Hashtbl.t;  (* Aid.index -> Replace count *)
  bounced : (int, unit) Hashtbl.t;
  (* intervals *)
  opens : (Interval_id.t, open_iv) Hashtbl.t;
  per_proc : (int, int ref) Hashtbl.t;  (* proc -> live interval count *)
  mutable opened : int;
  mutable finalized : int;
  mutable rolled : int;
  mutable peak_open : int;
  (* cascades *)
  mutable cascades : int;
  mutable max_cascade : int;
  mutable cycle_cuts : int;
  (* virtual-time accounting *)
  mutable committed_vtime : float;
  mutable wasted_vtime : float;
  (* shards (fed by [observe] on merged commit streams and by
     [observe_shards] on per-shard GVT-epoch samples) *)
  mutable shard_commits : int;
  mutable stragglers_ev : int;  (* Shard_straggler events seen *)
  mutable wasted_ev : int;  (* sum of their [rolled] *)
  mutable gvt : float;
  mutable gvt_lag : float;  (* max shard lvt - gvt, latest epoch *)
  shard_last : (int, shard_sample) Hashtbl.t;  (* per-shard last sample *)
  shard_final : (int, shard_sample) Hashtbl.t;  (* per-shard newest sample *)
  mutable imb_gvt : float;  (* epoch the open imbalance group belongs to *)
  mutable imb_group : shard_sample list;
  mutable imb_streak : int;
  mutable imb_flagged : bool;
  flagged_gvt_stall : (int, unit) Hashtbl.t;
  flagged_backpressure : (int, unit) Hashtbl.t;
  flagged_annihilation : (int, unit) Hashtbl.t;
  (* diagnostics *)
  mutable diags : diagnostic list;  (* newest first *)
  mutable n_diags : int;
  flagged_procs : (int, unit) Hashtbl.t;
  flagged_stalls : (Interval_id.t, unit) Hashtbl.t;
}

let create ?(config = default_config) () =
  {
    config;
    now = 0.0;
    aids_created = 0;
    definite_aids = 0;
    flips = Hashtbl.create 64;
    replaces = Hashtbl.create 64;
    bounced = Hashtbl.create 8;
    opens = Hashtbl.create 64;
    per_proc = Hashtbl.create 16;
    opened = 0;
    finalized = 0;
    rolled = 0;
    peak_open = 0;
    cascades = 0;
    max_cascade = 0;
    cycle_cuts = 0;
    committed_vtime = 0.0;
    wasted_vtime = 0.0;
    shard_commits = 0;
    stragglers_ev = 0;
    wasted_ev = 0;
    gvt = 0.0;
    gvt_lag = 0.0;
    shard_last = Hashtbl.create 8;
    shard_final = Hashtbl.create 8;
    imb_gvt = Float.neg_infinity;
    imb_group = [];
    imb_streak = 0;
    imb_flagged = false;
    flagged_gvt_stall = Hashtbl.create 8;
    flagged_backpressure = Hashtbl.create 8;
    flagged_annihilation = Hashtbl.create 8;
    diags = [];
    n_diags = 0;
    flagged_procs = Hashtbl.create 8;
    flagged_stalls = Hashtbl.create 8;
  }

let diag t d =
  t.diags <- d :: t.diags;
  t.n_diags <- t.n_diags + 1

(* [Hashtbl.find] rather than [find_opt]: this runs per observed event
   and the option would be garbage on every hit. *)
let counter_ref tbl key =
  try Hashtbl.find tbl key
  with Not_found ->
    let r = ref 0 in
    Hashtbl.add tbl key r;
    r

let is_definite = function Event.True_ | Event.False_ -> true | _ -> false

let on_transition t ~time aid ~from_ ~to_ =
  if is_definite to_ && not (is_definite from_) then
    t.definite_aids <- t.definite_aids + 1
  else if is_definite from_ && not (is_definite to_) then
    t.definite_aids <- t.definite_aids - 1;
  let idx = Aid.index aid in
  let r = counter_ref t.flips idx in
  incr r;
  if !r >= t.config.bounce_flips && not (Hashtbl.mem t.bounced idx) then begin
    Hashtbl.add t.bounced idx ();
    diag t (Bounce_livelock { aid; flips = !r; at = time })
  end

(* An Algorithm-1 bounce never flips AID state — the cycle ping-pongs
   Replace messages while every AID stays speculative — so the livelock
   also shows as Replace-resolution churn concentrated on one AID. This
   path only fires when the tap opted into the dep class ([attach
   ~dep:true]); the threshold sits far above healthy fan-in re-sends. *)
let on_replace t ~time aid =
  let idx = Aid.index aid in
  let r = counter_ref t.replaces idx in
  incr r;
  if !r >= t.config.replace_churn && not (Hashtbl.mem t.bounced idx) then begin
    Hashtbl.add t.bounced idx ();
    diag t (Bounce_livelock { aid; flips = !r; at = time })
  end

let on_open t ~time ~proc iid =
  let owner = Proc_id.to_int proc in
  Hashtbl.replace t.opens iid { opened_at = time; owner };
  t.opened <- t.opened + 1;
  let live = Hashtbl.length t.opens in
  if live > t.peak_open then t.peak_open <- live;
  let r = counter_ref t.per_proc owner in
  incr r;
  if !r >= t.config.window_limit && not (Hashtbl.mem t.flagged_procs owner)
  then begin
    Hashtbl.add t.flagged_procs owner ();
    diag t (Window_growth { proc; live = !r; at = time })
  end

let close t iid =
  match Hashtbl.find_opt t.opens iid with
  | None -> None
  | Some iv ->
      Hashtbl.remove t.opens iid;
      (match Hashtbl.find_opt t.per_proc iv.owner with
      | Some r -> decr r
      | None -> ());
      Some iv

let on_finalize t ~time iid =
  match close t iid with
  | None -> ()
  | Some iv ->
      t.finalized <- t.finalized + 1;
      t.committed_vtime <- t.committed_vtime +. (time -. iv.opened_at)

let on_cascade t ~time target rolled =
  t.cascades <- t.cascades + 1;
  let size = List.length rolled in
  if size > t.max_cascade then t.max_cascade <- size;
  List.iter
    (fun iid ->
      match close t iid with
      | None -> ()
      | Some iv ->
          t.rolled <- t.rolled + 1;
          t.wasted_vtime <- t.wasted_vtime +. (time -. iv.opened_at))
    rolled;
  if size >= t.config.cascade_limit then
    diag t (Cascade_runaway { target; size; at = time })

let observe t ~time ~proc payload =
  t.now <- time;
  match payload with
  | Event.Aid_create _ -> t.aids_created <- t.aids_created + 1
  | Event.Aid_transition { aid; from_; to_ } ->
      on_transition t ~time aid ~from_ ~to_
  | Event.Interval_open { iid; _ } -> on_open t ~time ~proc iid
  | Event.Interval_finalize { iid } -> on_finalize t ~time iid
  | Event.Rollback_cascade { target; rolled; _ } ->
      on_cascade t ~time target rolled
  | Event.Cycle_cut _ -> t.cycle_cuts <- t.cycle_cuts + 1
  | Event.Dep_resolved { aid; _ } -> on_replace t ~time aid
  | Event.Shard_commit _ -> t.shard_commits <- t.shard_commits + 1
  | Event.Shard_straggler { rolled; _ } ->
      t.stragglers_ev <- t.stragglers_ev + 1;
      t.wasted_ev <- t.wasted_ev + rolled
  | Event.Gvt_advance { gvt; _ } -> if gvt > t.gvt then t.gvt <- gvt
  | Event.Guess _ | Event.Affirm _ | Event.Deny _ | Event.Free_of _
  | Event.Wire_send _ | Event.Msg_send _ | Event.Msg_recv _
  | Event.Cancel_send _ | Event.Mailbox_compact _ | Event.Sim_stop _ ->
      ()

let attach ?(dep = false) t r = Recorder.set_tap r ~net:false ~dep (observe t)

(* ---- Parallel-engine diagnostics over per-shard GVT-epoch samples ---- *)

(* Imbalance needs some history before ratios mean anything: groups whose
   busiest shard has processed fewer events than this floor are skipped. *)
let imb_floor = 64

(* Evaluate one closed GVT-epoch group: all shards' newest samples at the
   same GVT value. Skew = cumulative-events ratio, or lvt-lead ratio when
   every shard has positive lead over the shared floor. *)
let eval_imbalance t =
  (match t.imb_group with
  | [] | [ _ ] -> ()
  | group ->
      let gvt = t.imb_gvt in
      let by_shard = Hashtbl.create 8 in
      List.iter
        (fun s ->
          if not (Hashtbl.mem by_shard s.sh_shard) then
            Hashtbl.add by_shard s.sh_shard s)
        group;
      if Hashtbl.length by_shard >= 2 then begin
        let mx = ref None and mn = ref None in
        Hashtbl.iter
          (fun _ s ->
            (match !mx with
            | Some m when m.sh_events >= s.sh_events -> ()
            | _ -> mx := Some s);
            match !mn with
            | Some m when m.sh_events <= s.sh_events -> ()
            | _ -> mn := Some s)
          by_shard;
        match (!mx, !mn) with
        | Some fast, Some slow ->
            let lag =
              Hashtbl.fold
                (fun _ s acc -> Float.max acc (s.sh_lvt -. gvt))
                by_shard 0.0
            in
            if lag > t.gvt_lag then t.gvt_lag <- lag;
            let ev_ratio =
              float_of_int fast.sh_events
              /. float_of_int (max 1 slow.sh_events)
            in
            let lead_ratio =
              let fl = fast.sh_lvt -. gvt and sl = slow.sh_lvt -. gvt in
              if sl > 0.0 then fl /. sl else 0.0
            in
            let ratio = Float.max ev_ratio lead_ratio in
            if fast.sh_events >= imb_floor && ratio >= t.config.imbalance_ratio
            then begin
              t.imb_streak <- t.imb_streak + 1;
              if t.imb_streak >= t.config.imbalance_epochs
                 && not t.imb_flagged
              then begin
                t.imb_flagged <- true;
                diag t
                  (Shard_imbalance
                     {
                       fast = fast.sh_shard;
                       slow = slow.sh_shard;
                       ratio;
                       epochs = t.imb_streak;
                       at = gvt;
                     })
              end
            end
            else t.imb_streak <- 0
        | _ -> ()
      end);
  t.imb_group <- []

let observe_shard_sample t s =
  if s.sh_gvt > t.gvt then t.gvt <- s.sh_gvt;
  Hashtbl.replace t.shard_final s.sh_shard s;
  (* deltas against the previous sample of the same shard *)
  (match Hashtbl.find_opt t.shard_last s.sh_shard with
  | None -> ()
  | Some prev ->
      let d_events = s.sh_events - prev.sh_events in
      if
        s.sh_gvt <= prev.sh_gvt
        && d_events >= t.config.gvt_stall_events
        && not (Hashtbl.mem t.flagged_gvt_stall s.sh_shard)
      then begin
        Hashtbl.add t.flagged_gvt_stall s.sh_shard ();
        diag t
          (Gvt_stall
             { shard = s.sh_shard; events = d_events; gvt = s.sh_gvt;
               at = s.sh_lvt })
      end;
      let d_spins = s.sh_full_spins - prev.sh_full_spins in
      if
        d_spins >= t.config.backpressure_spins
        && not (Hashtbl.mem t.flagged_backpressure s.sh_shard)
      then begin
        Hashtbl.add t.flagged_backpressure s.sh_shard ();
        diag t
          (Mailbox_backpressure
             { shard = s.sh_shard; spins = d_spins; at = s.sh_gvt })
      end;
      let d_annih = s.sh_annihilations - prev.sh_annihilations in
      if
        d_annih >= t.config.annihilation_limit
        && not (Hashtbl.mem t.flagged_annihilation s.sh_shard)
      then begin
        Hashtbl.add t.flagged_annihilation s.sh_shard ();
        diag t
          (Annihilation_storm
             { shard = s.sh_shard; annihilations = d_annih; at = s.sh_gvt })
      end);
  Hashtbl.replace t.shard_last s.sh_shard s;
  (* epoch grouping for the cross-shard imbalance check *)
  if s.sh_gvt <> t.imb_gvt then begin
    eval_imbalance t;
    t.imb_gvt <- s.sh_gvt
  end;
  t.imb_group <- s :: t.imb_group

let observe_shards t samples =
  List.iter (observe_shard_sample t) samples;
  eval_imbalance t

let fold_final t f init =
  Hashtbl.fold (fun _ s acc -> f acc s) t.shard_final init

let shard_stragglers t =
  max t.stragglers_ev (fold_final t (fun a s -> a + s.sh_stragglers) 0)

let shard_wasted_events t =
  max t.wasted_ev (fold_final t (fun a s -> a + s.sh_rolled) 0)

let shard_annihilations t =
  fold_final t (fun a s -> a + s.sh_annihilations) 0

let check_stalls t ~now =
  if now > t.now then t.now <- now;
  Hashtbl.iter
    (fun iid iv ->
      let open_for = now -. iv.opened_at in
      if open_for > t.config.stall_after && not (Hashtbl.mem t.flagged_stalls iid)
      then begin
        Hashtbl.add t.flagged_stalls iid ();
        diag t (Stalled_interval { iid; open_for; at = now })
      end)
    t.opens

let now t = t.now
let open_intervals t = Hashtbl.length t.opens
let peak_open_intervals t = t.peak_open
let live_aids t = t.aids_created - t.definite_aids
let aids_created t = t.aids_created
let intervals_opened t = t.opened
let intervals_finalized t = t.finalized
let intervals_rolled_back t = t.rolled
let cascades t = t.cascades
let max_cascade t = t.max_cascade
let cycle_cuts t = t.cycle_cuts
let committed_vtime t = t.committed_vtime
let wasted_vtime t = t.wasted_vtime
let shard_commits t = t.shard_commits
let gvt t = t.gvt
let gvt_lag t = t.gvt_lag

let gauges t =
  [
    ("hope_monitor_annihilations", float_of_int (shard_annihilations t));
    ("hope_monitor_cascades", float_of_int t.cascades);
    ("hope_monitor_committed_vtime", t.committed_vtime);
    ("hope_monitor_cycle_cuts", float_of_int t.cycle_cuts);
    ("hope_monitor_diagnostics", float_of_int t.n_diags);
    ("hope_monitor_gvt", t.gvt);
    ("hope_monitor_gvt_lag", t.gvt_lag);
    ("hope_monitor_live_aids", float_of_int (live_aids t));
    ("hope_monitor_max_cascade", float_of_int t.max_cascade);
    ("hope_monitor_open_intervals", float_of_int (Hashtbl.length t.opens));
    ("hope_monitor_peak_open_intervals", float_of_int t.peak_open);
    ("hope_monitor_shard_commits", float_of_int t.shard_commits);
    ("hope_monitor_shard_stragglers", float_of_int (shard_stragglers t));
    ("hope_monitor_shard_wasted_events",
     float_of_int (shard_wasted_events t));
    ("hope_monitor_wasted_vtime", t.wasted_vtime);
  ]

let diagnostics t = List.rev t.diags
let diagnostics_count t = t.n_diags
let healthy t = t.diags = []
