open Hope_types

type config = {
  bounce_flips : int;
  replace_churn : int;
  cascade_limit : int;
  window_limit : int;
  stall_after : float;
}

let default_config =
  {
    bounce_flips = 12;
    replace_churn = 512;
    cascade_limit = 64;
    window_limit = 256;
    stall_after = 30.0;
  }

type diagnostic =
  | Bounce_livelock of { aid : Aid.t; flips : int; at : float }
  | Cascade_runaway of { target : Interval_id.t; size : int; at : float }
  | Window_growth of { proc : Proc_id.t; live : int; at : float }
  | Stalled_interval of { iid : Interval_id.t; open_for : float; at : float }

let pp_diagnostic ppf = function
  | Bounce_livelock { aid; flips; at } ->
      Format.fprintf ppf "bounce-livelock: %a flipped state %d times (t=%.6f)"
        Aid.pp aid flips at
  | Cascade_runaway { target; size; at } ->
      Format.fprintf ppf
        "cascade-runaway: cascade at %a rolled %d intervals (t=%.6f)"
        Interval_id.pp target size at
  | Window_growth { proc; live; at } ->
      Format.fprintf ppf
        "window-growth: %a holds %d live intervals (t=%.6f)" Proc_id.pp proc
        live at
  | Stalled_interval { iid; open_for; at } ->
      Format.fprintf ppf
        "stalled-interval: %a open for %.6f virtual seconds (t=%.6f)"
        Interval_id.pp iid open_for at

type open_iv = { opened_at : float; owner : int  (** proc as int *) }

type t = {
  config : config;
  mutable now : float;
  (* AIDs *)
  mutable aids_created : int;
  mutable definite_aids : int;
  flips : (int, int ref) Hashtbl.t;  (* Aid.index -> transition count *)
  replaces : (int, int ref) Hashtbl.t;  (* Aid.index -> Replace count *)
  bounced : (int, unit) Hashtbl.t;
  (* intervals *)
  opens : (Interval_id.t, open_iv) Hashtbl.t;
  per_proc : (int, int ref) Hashtbl.t;  (* proc -> live interval count *)
  mutable opened : int;
  mutable finalized : int;
  mutable rolled : int;
  mutable peak_open : int;
  (* cascades *)
  mutable cascades : int;
  mutable max_cascade : int;
  mutable cycle_cuts : int;
  (* virtual-time accounting *)
  mutable committed_vtime : float;
  mutable wasted_vtime : float;
  (* diagnostics *)
  mutable diags : diagnostic list;  (* newest first *)
  mutable n_diags : int;
  flagged_procs : (int, unit) Hashtbl.t;
  flagged_stalls : (Interval_id.t, unit) Hashtbl.t;
}

let create ?(config = default_config) () =
  {
    config;
    now = 0.0;
    aids_created = 0;
    definite_aids = 0;
    flips = Hashtbl.create 64;
    replaces = Hashtbl.create 64;
    bounced = Hashtbl.create 8;
    opens = Hashtbl.create 64;
    per_proc = Hashtbl.create 16;
    opened = 0;
    finalized = 0;
    rolled = 0;
    peak_open = 0;
    cascades = 0;
    max_cascade = 0;
    cycle_cuts = 0;
    committed_vtime = 0.0;
    wasted_vtime = 0.0;
    diags = [];
    n_diags = 0;
    flagged_procs = Hashtbl.create 8;
    flagged_stalls = Hashtbl.create 8;
  }

let diag t d =
  t.diags <- d :: t.diags;
  t.n_diags <- t.n_diags + 1

(* [Hashtbl.find] rather than [find_opt]: this runs per observed event
   and the option would be garbage on every hit. *)
let counter_ref tbl key =
  try Hashtbl.find tbl key
  with Not_found ->
    let r = ref 0 in
    Hashtbl.add tbl key r;
    r

let is_definite = function Event.True_ | Event.False_ -> true | _ -> false

let on_transition t ~time aid ~from_ ~to_ =
  if is_definite to_ && not (is_definite from_) then
    t.definite_aids <- t.definite_aids + 1
  else if is_definite from_ && not (is_definite to_) then
    t.definite_aids <- t.definite_aids - 1;
  let idx = Aid.index aid in
  let r = counter_ref t.flips idx in
  incr r;
  if !r >= t.config.bounce_flips && not (Hashtbl.mem t.bounced idx) then begin
    Hashtbl.add t.bounced idx ();
    diag t (Bounce_livelock { aid; flips = !r; at = time })
  end

(* An Algorithm-1 bounce never flips AID state — the cycle ping-pongs
   Replace messages while every AID stays speculative — so the livelock
   also shows as Replace-resolution churn concentrated on one AID. This
   path only fires when the tap opted into the dep class ([attach
   ~dep:true]); the threshold sits far above healthy fan-in re-sends. *)
let on_replace t ~time aid =
  let idx = Aid.index aid in
  let r = counter_ref t.replaces idx in
  incr r;
  if !r >= t.config.replace_churn && not (Hashtbl.mem t.bounced idx) then begin
    Hashtbl.add t.bounced idx ();
    diag t (Bounce_livelock { aid; flips = !r; at = time })
  end

let on_open t ~time ~proc iid =
  let owner = Proc_id.to_int proc in
  Hashtbl.replace t.opens iid { opened_at = time; owner };
  t.opened <- t.opened + 1;
  let live = Hashtbl.length t.opens in
  if live > t.peak_open then t.peak_open <- live;
  let r = counter_ref t.per_proc owner in
  incr r;
  if !r >= t.config.window_limit && not (Hashtbl.mem t.flagged_procs owner)
  then begin
    Hashtbl.add t.flagged_procs owner ();
    diag t (Window_growth { proc; live = !r; at = time })
  end

let close t iid =
  match Hashtbl.find_opt t.opens iid with
  | None -> None
  | Some iv ->
      Hashtbl.remove t.opens iid;
      (match Hashtbl.find_opt t.per_proc iv.owner with
      | Some r -> decr r
      | None -> ());
      Some iv

let on_finalize t ~time iid =
  match close t iid with
  | None -> ()
  | Some iv ->
      t.finalized <- t.finalized + 1;
      t.committed_vtime <- t.committed_vtime +. (time -. iv.opened_at)

let on_cascade t ~time target rolled =
  t.cascades <- t.cascades + 1;
  let size = List.length rolled in
  if size > t.max_cascade then t.max_cascade <- size;
  List.iter
    (fun iid ->
      match close t iid with
      | None -> ()
      | Some iv ->
          t.rolled <- t.rolled + 1;
          t.wasted_vtime <- t.wasted_vtime +. (time -. iv.opened_at))
    rolled;
  if size >= t.config.cascade_limit then
    diag t (Cascade_runaway { target; size; at = time })

let observe t ~time ~proc payload =
  t.now <- time;
  match payload with
  | Event.Aid_create _ -> t.aids_created <- t.aids_created + 1
  | Event.Aid_transition { aid; from_; to_ } ->
      on_transition t ~time aid ~from_ ~to_
  | Event.Interval_open { iid; _ } -> on_open t ~time ~proc iid
  | Event.Interval_finalize { iid } -> on_finalize t ~time iid
  | Event.Rollback_cascade { target; rolled; _ } ->
      on_cascade t ~time target rolled
  | Event.Cycle_cut _ -> t.cycle_cuts <- t.cycle_cuts + 1
  | Event.Dep_resolved { aid; _ } -> on_replace t ~time aid
  | Event.Guess _ | Event.Affirm _ | Event.Deny _ | Event.Free_of _
  | Event.Wire_send _ | Event.Msg_send _ | Event.Msg_recv _
  | Event.Cancel_send _ | Event.Mailbox_compact _ | Event.Sim_stop _
  | Event.Shard_commit _ | Event.Shard_straggler _ | Event.Gvt_advance _ ->
      ()

let attach ?(dep = false) t r = Recorder.set_tap r ~net:false ~dep (observe t)

let check_stalls t ~now =
  if now > t.now then t.now <- now;
  Hashtbl.iter
    (fun iid iv ->
      let open_for = now -. iv.opened_at in
      if open_for > t.config.stall_after && not (Hashtbl.mem t.flagged_stalls iid)
      then begin
        Hashtbl.add t.flagged_stalls iid ();
        diag t (Stalled_interval { iid; open_for; at = now })
      end)
    t.opens

let now t = t.now
let open_intervals t = Hashtbl.length t.opens
let peak_open_intervals t = t.peak_open
let live_aids t = t.aids_created - t.definite_aids
let aids_created t = t.aids_created
let intervals_opened t = t.opened
let intervals_finalized t = t.finalized
let intervals_rolled_back t = t.rolled
let cascades t = t.cascades
let max_cascade t = t.max_cascade
let cycle_cuts t = t.cycle_cuts
let committed_vtime t = t.committed_vtime
let wasted_vtime t = t.wasted_vtime

let gauges t =
  [
    ("hope_monitor_cascades", float_of_int t.cascades);
    ("hope_monitor_committed_vtime", t.committed_vtime);
    ("hope_monitor_cycle_cuts", float_of_int t.cycle_cuts);
    ("hope_monitor_diagnostics", float_of_int t.n_diags);
    ("hope_monitor_live_aids", float_of_int (live_aids t));
    ("hope_monitor_max_cascade", float_of_int t.max_cascade);
    ("hope_monitor_open_intervals", float_of_int (Hashtbl.length t.opens));
    ("hope_monitor_peak_open_intervals", float_of_int t.peak_open);
    ("hope_monitor_wasted_vtime", t.wasted_vtime);
  ]

let diagnostics t = List.rev t.diags
let diagnostics_count t = t.n_diags
let healthy t = t.diags = []
