(** Online speculation health monitor.

    Rides a {!Recorder} tap (no event storage) and folds the live stream
    into O(live-state) aggregates: open-interval and live-AID gauges,
    committed vs. wasted virtual time, cascade statistics — plus typed
    {!diagnostic}s for the pathologies the paper's algorithms are
    designed around:

    - {b bounce livelock}: Algorithm-1-style deny / re-guess ping-pong
      concentrated on a single AID, measured as state-transition churn;
    - {b cascade runaway}: a single rollback cascade rolling more
      intervals than any healthy run should produce;
    - {b window growth}: one process accumulating live (unfinalized)
      intervals past a bound, i.e. a history window that never drains;
    - {b stalled intervals}: an interval left open for longer than a
      virtual-time budget (checked from the sampling hook, since it is a
      function of the clock, not of any one event).

    Everything here costs O(1) amortized per observed event and allocates
    only when live state grows (a new AID, a new open interval), so the
    monitor can stay attached for unbounded runs. *)

open Hope_types

type config = {
  bounce_flips : int;
      (** state transitions on one AID before flagging ping-pong *)
  replace_churn : int;
      (** Replace resolutions on one AID before flagging ping-pong — the
          Algorithm-1 livelock signature, since a bouncing cycle keeps
          every AID speculative (no state flips) while Replace messages
          orbit it. Needs the dep event class ({!attach} [~dep:true]). *)
  cascade_limit : int;  (** intervals rolled by one cascade *)
  window_limit : int;  (** live intervals on one process *)
  stall_after : float;  (** virtual seconds an interval may stay open *)
  gvt_stall_events : int;
      (** events one shard may process between two of its samples with
          GVT frozen before flagging a stall *)
  imbalance_ratio : float;
      (** fastest/slowest shard skew (cumulative events, or lvt lead
          over GVT) at one GVT epoch that counts as imbalanced *)
  imbalance_epochs : int;
      (** consecutive imbalanced GVT epochs before flagging *)
  backpressure_spins : int;
      (** full-ring producer spins by one shard within one inter-sample
          window before flagging back-pressure *)
  annihilation_limit : int;
      (** anti-message annihilations by one shard within one
          inter-sample window before flagging a storm *)
}

val default_config : config
(** [{ bounce_flips = 12; replace_churn = 512; cascade_limit = 64;
      window_limit = 256; stall_after = 30.0; gvt_stall_events = 4096;
      imbalance_ratio = 4.0; imbalance_epochs = 3;
      backpressure_spins = 4096; annihilation_limit = 512 }] *)

type diagnostic =
  | Bounce_livelock of { aid : Aid.t; flips : int; at : float }
  | Cascade_runaway of { target : Interval_id.t; size : int; at : float }
  | Window_growth of { proc : Proc_id.t; live : int; at : float }
  | Stalled_interval of { iid : Interval_id.t; open_for : float; at : float }
  | Gvt_stall of { shard : int; events : int; gvt : float; at : float }
      (** [shard] processed [events] events between two of its samples
          while GVT stayed at [gvt] *)
  | Shard_imbalance of {
      fast : int;
      slow : int;
      ratio : float;
      epochs : int;
      at : float;
    }
      (** shard [fast] sustained [ratio]x the events (or lvt lead) of
          shard [slow] for [epochs] consecutive GVT epochs *)
  | Mailbox_backpressure of { shard : int; spins : int; at : float }
      (** [shard]'s producers spun [spins] times on full outbound rings
          within one inter-sample window *)
  | Annihilation_storm of { shard : int; annihilations : int; at : float }
      (** [shard] annihilated [annihilations] positive/anti pairs within
          one inter-sample window *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit

type t

val create : ?config:config -> unit -> t

val attach : ?dep:bool -> t -> Recorder.t -> unit
(** Install this monitor as [r]'s tap (replacing any previous tap). The
    monitor does not consume net-class events, so the message-path
    emission sites stay disabled unless the store is also enabled.
    [dep] (default [false]) additionally opts into the dep event class
    (one [Dep_resolved] per Replace message) to arm the replace-churn
    bounce detector — denser, so it costs allocation on the Replace
    path; leave it off for overhead-sensitive sampling. *)

val observe : t -> time:float -> proc:Proc_id.t -> Event.payload -> unit
(** Fold one event. This is the tap body; it is exposed so tests and
    post-hoc replays can feed a stored stream through the same logic. *)

val check_stalls : t -> now:float -> unit
(** Flag any interval open for more than [stall_after] virtual seconds.
    Called from the periodic sampling hook. Each interval is flagged at
    most once. *)

(** {1 Parallel-engine samples}

    The sharded engine ([lib/shard]) cannot tap one monitor from every
    domain, so each shard records cheap cumulative {!shard_sample}s — at
    every GVT advance plus every few thousand processed events (so a
    frozen GVT still produces samples) — and the merged, epoch-ordered
    list is folded in post-run. *)

type shard_sample = {
  sh_shard : int;  (** shard id, [0 .. domains-1] *)
  sh_gvt : float;  (** GVT when the sample was taken *)
  sh_lvt : float;  (** max local virtual time over the shard's LPs *)
  sh_events : int;  (** cumulative events processed (incl. rolled back) *)
  sh_stragglers : int;  (** cumulative rollbacks (primary + secondary) *)
  sh_rolled : int;  (** cumulative processed entries undone *)
  sh_rollback_depth : int;  (** deepest single rollback so far *)
  sh_annihilations : int;  (** cumulative positive/anti pair annihilations *)
  sh_full_spins : int;  (** cumulative producer spins on full rings *)
  sh_mailbox_occ : int;  (** inbound ring occupancy at the sample *)
  sh_mailbox_peak : int;  (** outbound ring high-water mark *)
}

val observe_shards : t -> shard_sample list -> unit
(** Fold a batch of per-shard samples, ordered by (gvt, shard): arms the
    {!Gvt_stall}, {!Shard_imbalance}, {!Mailbox_backpressure} and
    {!Annihilation_storm} detectors and updates the gvt/lag gauges. May
    be called repeatedly with successive batches; per-shard deltas and
    flag dedup persist across calls. *)

(** {1 Gauges and counters} *)

val now : t -> float
(** Virtual time of the last observed event (0.0 before any). *)

val open_intervals : t -> int
val peak_open_intervals : t -> int

val live_aids : t -> int
(** AIDs created minus AIDs currently in a definite state. *)

val aids_created : t -> int
val intervals_opened : t -> int
val intervals_finalized : t -> int
val intervals_rolled_back : t -> int
val cascades : t -> int
val max_cascade : t -> int
val cycle_cuts : t -> int

val committed_vtime : t -> float
(** Total open→finalize virtual time over finalized intervals. *)

val wasted_vtime : t -> float
(** Total open→rollback virtual time over rolled-back intervals. *)

val shard_commits : t -> int
(** [Shard_commit] events observed (the merged committed trace). *)

val shard_stragglers : t -> int
(** Cross-shard rollbacks: the larger of the [Shard_straggler] events
    observed and the sample-derived per-shard total. *)

val shard_wasted_events : t -> int
(** Processed-then-undone Time Warp entries, same two sources. *)

val shard_annihilations : t -> int
(** Sample-derived total positive/anti annihilations across shards. *)

val gvt : t -> float
(** Latest global-virtual-time floor seen (events or samples). *)

val gvt_lag : t -> float
(** Max shard lvt − GVT over the latest evaluated epoch(s). *)

val gauges : t -> (string * float) list
(** Snapshot of every gauge above under stable [hope_monitor_*] names,
    sorted by name — the shape {!Timeseries.add_dynamic_source} and the
    OpenMetrics exporter consume. *)

(** {1 Diagnostics} *)

val diagnostics : t -> diagnostic list
(** All diagnostics so far, in emission order. *)

val diagnostics_count : t -> int
(** [List.length (diagnostics t)], without building the list — gauge
    sources read this every sample. *)

val healthy : t -> bool
(** [diagnostics t = []] *)
