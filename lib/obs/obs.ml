type format = Chrome | Graphml | Summary

let all_formats = [ Chrome; Graphml; Summary ]

let format_name = function
  | Chrome -> "chrome"
  | Graphml -> "graphml"
  | Summary -> "summary"

let format_of_string = function
  | "chrome" -> Ok Chrome
  | "graphml" -> Ok Graphml
  | "summary" -> Ok Summary
  | s ->
    Error
      (Printf.sprintf "unknown trace format %S (expected chrome|graphml|summary)" s)

let export_string fmt events =
  match fmt with
  | Chrome -> Export_chrome.to_string events
  | Graphml -> Export_graphml.to_string events
  | Summary -> Summary.to_string events

let export_file fmt ~file events =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (export_string fmt events))
