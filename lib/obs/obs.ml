type format = Chrome | Graphml | Summary | Flame

let all_formats = [ Chrome; Graphml; Summary; Flame ]

let format_name = function
  | Chrome -> "chrome"
  | Graphml -> "graphml"
  | Summary -> "summary"
  | Flame -> "flame"

let format_of_string s =
  match List.find_opt (fun f -> format_name f = s) all_formats with
  | Some f -> Ok f
  | None ->
    Error
      (Printf.sprintf "unknown trace format %S (expected %s)" s
         (String.concat "|" (List.map format_name all_formats)))

let export_string fmt events =
  match fmt with
  | Chrome -> Export_chrome.to_string events
  | Graphml -> Export_graphml.to_string events
  | Summary -> Summary.to_string events
  | Flame -> Export_flame.to_string events

let export_file fmt ~file events =
  if file = "-" then output_string stdout (export_string fmt events)
  else begin
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (export_string fmt events))
  end
