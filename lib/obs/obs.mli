(** Facade: pick an export format by name and write a captured stream.

    The CLI surfaces (`bench/main.exe --trace FILE --trace-format FMT`,
    `hope-sim <workload> --trace FILE`) funnel through here. *)

type format =
  | Chrome  (** Trace Event JSON; open in Perfetto or chrome://tracing *)
  | Graphml  (** causal dependency DAG; open in yEd / Gephi / igraph *)
  | Summary  (** human-readable text *)
  | Flame  (** collapsed stacks; open in speedscope or inferno *)

val all_formats : format list

val format_name : format -> string

val format_of_string : string -> (format, string) result
(** Accepts every {!format_name}; the error message lists them. *)

val export_string : format -> Event.t list -> string

val export_file : format -> file:string -> Event.t list -> unit
(** Write the export to [file] (truncating). [file = "-"] writes to
    stdout instead. *)
