type tap = time:float -> proc:Hope_types.Proc_id.t -> Event.payload -> unit

type t = {
  mutable arr : Event.t array;
  mutable size : int;
  mutable on : bool;
  mutable seq : int;
  mutable tap : tap option;
  mutable tap_net : bool;
  mutable tap_dep : bool;
  (* Cached guard results so [enabled]/[enabled_net]/[enabled_dep] stay
     one unboxed load on the emission hot path. *)
  mutable active : bool;
  mutable active_net : bool;
  mutable active_dep : bool;
}

let refresh t =
  t.active <- t.on || t.tap <> None;
  t.active_net <- t.on || (t.tap <> None && t.tap_net);
  t.active_dep <- t.on || (t.tap <> None && t.tap_dep)

let create () =
  {
    arr = [||];
    size = 0;
    on = false;
    seq = 0;
    tap = None;
    tap_net = false;
    tap_dep = false;
    active = false;
    active_net = false;
    active_dep = false;
  }

let enable t =
  t.on <- true;
  refresh t

let disable t =
  t.on <- false;
  refresh t

let enabled t = t.active
let enabled_net t = t.active_net
let enabled_dep t = t.active_dep
let storing t = t.on

let set_tap t ?(net = false) ?(dep = false) f =
  t.tap <- Some f;
  t.tap_net <- net;
  t.tap_dep <- dep;
  refresh t

let clear_tap t =
  t.tap <- None;
  t.tap_net <- false;
  t.tap_dep <- false;
  refresh t

let grow t =
  let cap = Array.length t.arr in
  let dummy =
    {
      Event.seq = 0;
      time = 0.0;
      proc = Hope_types.Proc_id.of_int 0;
      payload = Event.Sim_stop { reason = "" };
    }
  in
  let arr = Array.make (max 256 (2 * cap)) dummy in
  Array.blit t.arr 0 arr 0 t.size;
  t.arr <- arr

let emit t ~time ~proc payload =
  if t.active then begin
    (match t.tap with Some f -> f ~time ~proc payload | None -> ());
    if t.on then begin
      if t.size = Array.length t.arr then grow t;
      t.arr.(t.size) <- { Event.seq = t.seq; time; proc; payload };
      t.size <- t.size + 1;
      t.seq <- t.seq + 1
    end
  end

let size t = t.size

let events t = Array.to_list (Array.sub t.arr 0 t.size)

let iter f t =
  for i = 0 to t.size - 1 do
    f t.arr.(i)
  done

let clear t =
  t.size <- 0;
  t.seq <- 0

let pp ppf t = iter (fun e -> Format.fprintf ppf "%a@." Event.pp e) t
