type t = {
  mutable arr : Event.t array;
  mutable size : int;
  mutable on : bool;
  mutable seq : int;
}

let create () = { arr = [||]; size = 0; on = false; seq = 0 }

let enable t = t.on <- true
let disable t = t.on <- false
let enabled t = t.on

let grow t =
  let cap = Array.length t.arr in
  let dummy =
    {
      Event.seq = 0;
      time = 0.0;
      proc = Hope_types.Proc_id.of_int 0;
      payload = Event.Sim_stop { reason = "" };
    }
  in
  let arr = Array.make (max 256 (2 * cap)) dummy in
  Array.blit t.arr 0 arr 0 t.size;
  t.arr <- arr

let emit t ~time ~proc payload =
  if t.on then begin
    if t.size = Array.length t.arr then grow t;
    t.arr.(t.size) <- { Event.seq = t.seq; time; proc; payload };
    t.size <- t.size + 1;
    t.seq <- t.seq + 1
  end

let size t = t.size

let events t = Array.to_list (Array.sub t.arr 0 t.size)

let iter f t =
  for i = 0 to t.size - 1 do
    f t.arr.(i)
  done

let clear t =
  t.size <- 0;
  t.seq <- 0

let pp ppf t = iter (fun e -> Format.fprintf ppf "%a@." Event.pp e) t
