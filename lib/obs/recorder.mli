(** The event sink the runtime emits into.

    A recorder is a growable in-memory log of {!Event.t}. It is created
    disabled: every emission site in the runtime guards on one branch, so
    the hot path pays nothing when nobody subscribed. Unlike
    {!Hope_sim.Trace} (a bounded debugging ring of strings), a recorder
    keeps every event — analytics passes and exporters need the complete
    stream — so enable it for bounded experiment runs, not unbounded
    services. *)

type t

val create : unit -> t
(** Fresh, disabled recorder. *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val emit : t -> time:float -> proc:Hope_types.Proc_id.t -> Event.payload -> unit
(** Append an event stamped with the next sequence number. No-op (one
    branch) while disabled. *)

val size : t -> int
(** Events currently held. *)

val events : t -> Event.t list
(** All events, in emission order. *)

val iter : (Event.t -> unit) -> t -> unit

val clear : t -> unit
(** Drop all events and reset the sequence counter. *)

val pp : Format.formatter -> t -> unit
(** One line per event, in emission order. *)
