(** The event sink the runtime emits into.

    A recorder is a growable in-memory log of {!Event.t}. It is created
    disabled: every emission site in the runtime guards on one branch, so
    the hot path pays nothing when nobody subscribed. Unlike
    {!Hope_sim.Trace} (a bounded debugging ring of strings), a recorder
    keeps every event — analytics passes and exporters need the complete
    stream — so enable it for bounded experiment runs, not unbounded
    services.

    For long-running services there is a second, storage-free consumer: a
    {e tap}. A tap is a callback invoked with the raw payload at emission
    time, before (and independent of) any storage. With only a tap
    attached, no {!Event.t} record is ever built and the log stays empty —
    this is what the online {!Monitor} rides on. A tap that does not ask
    for net-class traffic ([net = false], the default) leaves the
    high-density message-path emission sites disabled entirely: those
    sites guard on {!enabled_net} rather than {!enabled}. The same split
    exists for the dependency-tracking class ([Dep_resolved], one per
    Replace control message — the runtime's hottest core emission):
    its site guards on {!enabled_dep}, opted into with [dep = true]. *)

type t

type tap = time:float -> proc:Hope_types.Proc_id.t -> Event.payload -> unit
(** A live event consumer. Called synchronously from the emission site;
    must not re-enter the recorder. *)

val create : unit -> t
(** Fresh, disabled recorder with no tap. *)

val enable : t -> unit
(** Start storing events. *)

val disable : t -> unit
(** Stop storing events. An attached tap keeps firing. *)

val enabled : t -> bool
(** True when emissions reach anyone: the store is on or a tap is set.
    Emission sites for core events guard on this. *)

val enabled_net : t -> bool
(** Like {!enabled} but for the net-class events ([Wire_send],
    [Msg_send], [Msg_recv], [Cancel_send]): true when the store is on or
    a tap with [~net:true] is set. The message-path emission sites guard
    on this so a monitor-only tap pays nothing per message. *)

val enabled_dep : t -> bool
(** Like {!enabled} but for [Dep_resolved]: true when the store is on or
    a tap with [~dep:true] is set. One such event is emitted per Replace
    control message handled, so this class is orders of magnitude denser
    than the rest of the core stream; a monitor-only tap leaves it off. *)

val storing : t -> bool
(** True when events are being appended to the log (i.e. {!enable}d). *)

val set_tap : t -> ?net:bool -> ?dep:bool -> tap -> unit
(** Install [f] as the live consumer (replacing any previous tap).
    [net] (default [false]) opts in to the net-class events; [dep]
    (default [false]) to the [Dep_resolved] class. *)

val clear_tap : t -> unit

val emit : t -> time:float -> proc:Hope_types.Proc_id.t -> Event.payload -> unit
(** Feed the tap (if any), then append an event stamped with the next
    sequence number (if storing). No-op (one branch) while disabled. *)

val size : t -> int
(** Events currently held. *)

val events : t -> Event.t list
(** All events, in emission order. *)

val iter : (Event.t -> unit) -> t -> unit

val clear : t -> unit
(** Drop all events and reset the sequence counter. *)

val pp : Format.formatter -> t -> unit
(** One line per event, in emission order. *)
