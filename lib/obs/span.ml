open Hope_types

type close_reason =
  | Finalized
  | Rolled_back of Event.rollback_cause
  | Still_open

type t = {
  iid : Interval_id.t;
  proc : Proc_id.t;
  kind : Event.interval_kind;
  ido : Aid.Set.t;
  opened_at : float;
  open_seq : int;
  parent : Interval_id.t option;
  depth : int;
  mutable closed_at : float option;
  mutable close : close_reason;
  mutable cascade : int;
}

(* Replay state: per-process stack of currently-open spans (newest
   first), plus a map from iid to its span for closing. Interval ids are
   never reused — a rollback's re-execution pushes fresh sequence
   numbers — so the map needs no versioning. *)
let of_events events =
  let spans = Hashtbl.create 64 in
  let open_stack : (Proc_id.t, t list) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  let stack_of proc = Option.value (Hashtbl.find_opt open_stack proc) ~default:[] in
  let close_span ~time ~reason ~cascade iid =
    match Hashtbl.find_opt spans iid with
    | None -> ()  (* opening event fell outside the capture window *)
    | Some s ->
      (match s.close with
      | Still_open ->
        s.closed_at <- Some time;
        s.close <- reason;
        s.cascade <- cascade;
        Hashtbl.replace open_stack s.proc
          (List.filter (fun o -> not (Interval_id.equal o.iid iid)) (stack_of s.proc))
      | Finalized | Rolled_back _ -> ())
  in
  List.iter
    (fun (e : Event.t) ->
      match e.payload with
      | Event.Interval_open { iid; kind; ido } ->
        let stack = stack_of e.proc in
        let parent = match stack with [] -> None | top :: _ -> Some top.iid in
        let s =
          {
            iid;
            proc = e.proc;
            kind;
            ido;
            opened_at = e.time;
            open_seq = e.seq;
            parent;
            depth = List.length stack + 1;
            closed_at = None;
            close = Still_open;
            cascade = 0;
          }
        in
        Hashtbl.replace spans iid s;
        Hashtbl.replace open_stack e.proc (s :: stack);
        out := s :: !out
      | Event.Interval_finalize { iid } ->
        close_span ~time:e.time ~reason:Finalized ~cascade:0 iid
      | Event.Rollback_cascade { rolled; cause; _ } ->
        let n = List.length rolled in
        List.iter
          (fun iid -> close_span ~time:e.time ~reason:(Rolled_back cause) ~cascade:n iid)
          rolled
      | Event.Aid_create _ | Event.Aid_transition _ | Event.Guess _
      | Event.Affirm _ | Event.Deny _ | Event.Free_of _ | Event.Dep_resolved _
      | Event.Cycle_cut _ | Event.Wire_send _ | Event.Msg_send _
      | Event.Msg_recv _ | Event.Cancel_send _ | Event.Mailbox_compact _
      | Event.Sim_stop _ | Event.Shard_commit _ | Event.Shard_straggler _
      | Event.Gvt_advance _ ->
        ())
    events;
  List.rev !out

let duration ~end_time s =
  let close = match s.closed_at with Some c -> c | None -> end_time in
  Float.max 0.0 (close -. s.opened_at)

let end_time events =
  List.fold_left (fun acc (e : Event.t) -> Float.max acc e.time) 0.0 events
