(** The span model: one span per speculation interval.

    A span opens at the [Interval_open] event (emitted by [guess] or by a
    tagged receive) and closes at the interval's [Interval_finalize] or at
    the [Rollback_cascade] that discarded it. Intervals on one process
    nest by the history's stack discipline, so each span records its
    enclosing parent and its nesting depth — the cascade structure every
    analytics pass is built on. *)

open Hope_types

type close_reason =
  | Finalized
  | Rolled_back of Event.rollback_cause
  | Still_open  (** the run ended with the interval live *)

type t = {
  iid : Interval_id.t;
  proc : Proc_id.t;
  kind : Event.interval_kind;
  ido : Aid.Set.t;  (** dependency set at open *)
  opened_at : float;
  open_seq : int;  (** sequence number of the opening event *)
  parent : Interval_id.t option;  (** enclosing live interval at open, same process *)
  depth : int;  (** nesting depth at open; outermost is 1 *)
  mutable closed_at : float option;
  mutable close : close_reason;
  mutable cascade : int;
      (** number of intervals discarded by the same rollback, 0 unless
          [close] is [Rolled_back] *)
}

val of_events : Event.t list -> t list
(** Replay the interval lifecycle events into spans, returned in opening
    order. Events must be in emission order (as {!Recorder.events}
    returns them). *)

val duration : end_time:float -> t -> float
(** Virtual time the span covered; a still-open span is measured to
    [end_time]. *)

val end_time : Event.t list -> float
(** Timestamp of the last event (0 when empty) — the conventional
    [end_time] for {!duration} over a completed run. *)
