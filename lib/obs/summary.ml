let pp ppf events =
  Format.fprintf ppf "== speculation summary ==@.";
  (* Event counts per type, in first-seen order for stability. *)
  let order = ref [] in
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (e : Event.t) ->
      let name = Event.type_name e.Event.payload in
      match Hashtbl.find_opt counts name with
      | Some n -> Hashtbl.replace counts name (n + 1)
      | None ->
        Hashtbl.add counts name 1;
        order := name :: !order)
    events;
  List.iter
    (fun name -> Format.fprintf ppf "%-20s %d@." name (Hashtbl.find counts name))
    (List.rev !order);
  Format.fprintf ppf "@.== analytics ==@.";
  Analytics.pp ppf (Analytics.analyse events);
  let cascades =
    List.filter_map
      (fun (e : Event.t) ->
        match e.Event.payload with
        | Event.Rollback_cascade _ -> Some e
        | _ -> None)
      events
  in
  if cascades <> [] then begin
    Format.fprintf ppf "@.== rollback cascades ==@.";
    List.iter (fun e -> Format.fprintf ppf "%a@." Event.pp e) cascades
  end

let to_string events = Format.asprintf "%a" pp events

let write oc events = output_string oc (to_string events)
