(** Human-readable run summary.

    The quick look: event counts per type, the full {!Analytics} report,
    and the rollback cascades one per line. For machines, use the Chrome
    or GraphML exporters instead. *)

val pp : Format.formatter -> Event.t list -> unit

val to_string : Event.t list -> string

val write : out_channel -> Event.t list -> unit
