type series = {
  s_name : string;
  s_labels : (string * string) list;  (* sorted by key *)
  times : float array;
  values : float array;
  mutable total : int;  (* points ever recorded *)
}

(* Series are keyed by name plus rendered labels, so hope_shard_lvt
   exists once per shard while plain names keep their old identity. *)
let series_key nm labels =
  match labels with
  | [] -> nm
  | labels ->
      nm ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"

type t = {
  cap : int;
  ts_stride : float;
  tbl : (string, series) Hashtbl.t;
  mutable order : series list;  (* creation order, newest first *)
  mutable fixed : (series * (unit -> float)) list;  (* newest first *)
  mutable dynamic : (unit -> (string * float) list) list;
  mutable samples : int;
}

let create ?(capacity = 1024) ~stride () =
  if capacity < 1 then invalid_arg "Timeseries.create: capacity < 1";
  if not (stride > 0.0) then invalid_arg "Timeseries.create: stride <= 0";
  {
    cap = capacity;
    ts_stride = stride;
    tbl = Hashtbl.create 32;
    order = [];
    fixed = [];
    dynamic = [];
    samples = 0;
  }

let stride t = t.ts_stride
let capacity t = t.cap

let series t ?(labels = []) nm =
  let labels =
    List.sort (fun (a, _) (b, _) -> String.compare a b) labels
  in
  let key = series_key nm labels in
  match Hashtbl.find_opt t.tbl key with
  | Some s -> s
  | None ->
      let s =
        {
          s_name = nm;
          s_labels = labels;
          times = Array.make t.cap 0.0;
          values = Array.make t.cap 0.0;
          total = 0;
        }
      in
      Hashtbl.add t.tbl key s;
      t.order <- s :: t.order;
      s

let find t nm = Hashtbl.find_opt t.tbl nm

let all t =
  List.sort
    (fun (a, sa) (b, sb) ->
      match String.compare a b with
      | 0 ->
          String.compare
            (series_key a sa.s_labels)
            (series_key b sb.s_labels)
      | c -> c)
    (List.rev_map (fun s -> (s.s_name, s)) t.order)

let name s = s.s_name
let labels s = s.s_labels
let total s = s.total
let length s = min s.total (Array.length s.times)

let record s ~time v =
  let cap = Array.length s.times in
  let i = s.total mod cap in
  s.times.(i) <- time;
  s.values.(i) <- v;
  s.total <- s.total + 1

let nth s i =
  let cap = Array.length s.times in
  let n = min s.total cap in
  if i < 0 || i >= n then invalid_arg "Timeseries.nth";
  (* Oldest retained point sits at [total mod cap] once the ring has
     wrapped, at 0 before. *)
  let base = if s.total > cap then s.total mod cap else 0 in
  let j = (base + i) mod cap in
  (s.times.(j), s.values.(j))

let to_list s = List.init (length s) (nth s)

let add_source t nm f =
  let s = series t nm in
  t.fixed <- (s, f) :: List.filter (fun (s', _) -> s' != s) t.fixed

let add_dynamic_source t f = t.dynamic <- f :: t.dynamic

let sample t ~time =
  List.iter (fun (s, f) -> record s ~time (f ())) (List.rev t.fixed);
  List.iter
    (fun f -> List.iter (fun (nm, v) -> record (series t nm) ~time v) (f ()))
    (List.rev t.dynamic);
  t.samples <- t.samples + 1

let samples t = t.samples
