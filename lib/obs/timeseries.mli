(** Fixed-capacity time-series sampling.

    A {!t} owns a set of named series, each a ring buffer of
    [(virtual-time, value)] points backed by two unboxed float arrays
    allocated once at creation. Values come from registered {e sources} —
    thunks read at every {!sample} call — so the sampler itself knows
    nothing about where the numbers come from ([Sim.Metrics] instruments,
    {!Monitor} gauges, engine statistics; the glue lives in
    [Hope_sim.Telemetry], keeping this module below the simulator).

    Sampling is driven externally (the engine's virtual-time sampler
    hook) at a fixed {!stride}; a full ring overwrites its oldest points,
    bounding memory for arbitrarily long runs. All reads return points
    oldest-first. *)

type t
type series

val create : ?capacity:int -> stride:float -> unit -> t
(** [capacity] (default 1024) points retained per series; [stride] is the
    intended virtual-time spacing between samples, recorded here so
    consumers (exporters, the engine glue) agree on it.
    @raise Invalid_argument if [capacity < 1] or [stride <= 0]. *)

val stride : t -> float

val capacity : t -> int

(** {1 Sources} *)

val add_source : t -> string -> (unit -> float) -> unit
(** Register a fixed-name source, read once per {!sample}. Registering
    the same name twice replaces the thunk, not the series. *)

val add_dynamic_source : t -> (unit -> (string * float) list) -> unit
(** Register a source whose set of names may grow over the run (e.g. a
    metrics registry that lazily creates counters). Each returned pair is
    recorded into the series of that name, creating it on first sight. *)

val sample : t -> time:float -> unit
(** Read every source and append one point per series at [time]. *)

val samples : t -> int
(** Number of {!sample} calls so far. *)

(** {1 Reading} *)

val series : t -> ?labels:(string * string) list -> string -> series
(** Find or create the series [name] with label set [labels] (default
    none; creating allocates its rings). Series are keyed by name {e
    plus} labels, so [hope_shard_lvt] exists once per [shard="N"]. *)

val find : t -> string -> series option
(** Find the unlabeled series [name], if any. *)

val all : t -> (string * series) list
(** All series, sorted by name then label set. *)

val name : series -> string

val labels : series -> (string * string) list
(** The label set, sorted by key; [[]] for plain series. *)

val length : series -> int
(** Points currently retained (≤ capacity). *)

val total : series -> int
(** Points ever recorded, including overwritten ones. *)

val nth : series -> int -> float * float
(** [nth s i] is the [i]-th retained point oldest-first, as
    [(time, value)]. @raise Invalid_argument if [i] is out of range. *)

val to_list : series -> (float * float) list
(** Retained points, oldest first. *)

val record : series -> time:float -> float -> unit
(** Append one point directly (used by tests and ad-hoc gauges; normal
    data arrives via {!sample}). *)
