open Hope_types

(* Entries live in parallel pooled arrays (a tag byte plus three payload
   columns) rather than an array of variants: pushing an undo record on
   the speculative hot path is then three stores and a length bump, no
   allocation in steady state. Segments mirror the runtime's [History]
   window one-to-one — created when an interval registers its checkpoint,
   dropped as a suffix by rollback, dropped from the front by finalize —
   so both views share the head/length-over-array discipline and grow by
   sliding live elements down when the released prefix gets large enough
   to pay for the blit. *)

type ('a, 'ck) t = {
  (* entry columns; valid window is [e_head, e_head + e_len) *)
  mutable kinds : Bytes.t;  (** ['\000'] consume, ['\001'] send *)
  mutable e_claim : 'a array;  (** consume: the claimed arrival *)
  mutable e_msg : int array;  (** send: message id *)
  mutable e_dst : int array;  (** send: destination pid *)
  mutable e_head : int;
  mutable e_len : int;
  (* segment columns; valid window is [s_head, s_head + s_len) *)
  mutable seg_iid : Interval_id.t array;
  mutable seg_start : int array;  (** first entry index of the segment *)
  mutable seg_ck : 'ck array;
  mutable s_head : int;
  mutable s_len : int;
  dummy : 'a;  (** scrub value for released claim slots *)
  dummy_ck : 'ck;  (** scrub value for released checkpoint slots *)
}

let dummy_iid = Interval_id.make ~owner:(Proc_id.of_int (-1)) ~seq:(-1)

let create ~dummy ~dummy_ck () =
  {
    kinds = Bytes.empty;
    e_claim = [||];
    e_msg = [||];
    e_dst = [||];
    e_head = 0;
    e_len = 0;
    seg_iid = [||];
    seg_start = [||];
    seg_ck = [||];
    s_head = 0;
    s_len = 0;
    dummy;
    dummy_ck;
  }

let entries j = j.e_len
let segments j = j.s_len

let top_iid j =
  if j.s_len = 0 then None else Some j.seg_iid.(j.s_head + j.s_len - 1)

let oldest_iid j = if j.s_len = 0 then None else Some j.seg_iid.(j.s_head)

(* Rebase segment starts after the entry window slides to offset 0. *)
let rebase_starts j shift =
  for i = j.s_head to j.s_head + j.s_len - 1 do
    j.seg_start.(i) <- j.seg_start.(i) - shift
  done

(* Make room for one more entry. When at least half the array is released
   prefix, slide the window down (amortized O(1) per push); otherwise
   double. Both paths scrub abandoned claim slots so finalized arrivals
   are not retained through the pool. *)
let entry_room j =
  let cap = Array.length j.e_claim in
  if j.e_head + j.e_len = cap then
    if 2 * j.e_head > cap then begin
      Bytes.blit j.kinds j.e_head j.kinds 0 j.e_len;
      Array.blit j.e_claim j.e_head j.e_claim 0 j.e_len;
      Array.blit j.e_msg j.e_head j.e_msg 0 j.e_len;
      Array.blit j.e_dst j.e_head j.e_dst 0 j.e_len;
      Array.fill j.e_claim j.e_len j.e_head j.dummy;
      rebase_starts j j.e_head;
      j.e_head <- 0
    end
    else begin
      let ncap = max 16 (2 * cap) in
      let kinds = Bytes.make ncap '\000' in
      Bytes.blit j.kinds j.e_head kinds 0 j.e_len;
      let claim = Array.make ncap j.dummy in
      Array.blit j.e_claim j.e_head claim 0 j.e_len;
      let msg = Array.make ncap (-1) in
      Array.blit j.e_msg j.e_head msg 0 j.e_len;
      let dst = Array.make ncap (-1) in
      Array.blit j.e_dst j.e_head dst 0 j.e_len;
      j.kinds <- kinds;
      j.e_claim <- claim;
      j.e_msg <- msg;
      j.e_dst <- dst;
      if j.e_head > 0 then rebase_starts j j.e_head;
      j.e_head <- 0
    end

let segment_room j =
  let cap = Array.length j.seg_iid in
  if j.s_head + j.s_len = cap then
    if 2 * j.s_head > cap then begin
      Array.blit j.seg_iid j.s_head j.seg_iid 0 j.s_len;
      Array.blit j.seg_start j.s_head j.seg_start 0 j.s_len;
      Array.blit j.seg_ck j.s_head j.seg_ck 0 j.s_len;
      Array.fill j.seg_iid j.s_len j.s_head dummy_iid;
      Array.fill j.seg_ck j.s_len j.s_head j.dummy_ck;
      j.s_head <- 0
    end
    else begin
      let ncap = max 8 (2 * cap) in
      let iid = Array.make ncap dummy_iid in
      Array.blit j.seg_iid j.s_head iid 0 j.s_len;
      let start = Array.make ncap 0 in
      Array.blit j.seg_start j.s_head start 0 j.s_len;
      let ck = Array.make ncap j.dummy_ck in
      Array.blit j.seg_ck j.s_head ck 0 j.s_len;
      j.seg_iid <- iid;
      j.seg_start <- start;
      j.seg_ck <- ck;
      j.s_head <- 0
    end

let open_segment j ~iid ~ck =
  segment_room j;
  let i = j.s_head + j.s_len in
  j.seg_iid.(i) <- iid;
  j.seg_start.(i) <- j.e_head + j.e_len;
  j.seg_ck.(i) <- ck;
  j.s_len <- j.s_len + 1

let push_consume j a =
  if j.s_len = 0 then invalid_arg "Journal.push_consume: no open segment";
  entry_room j;
  let i = j.e_head + j.e_len in
  Bytes.unsafe_set j.kinds i '\000';
  j.e_claim.(i) <- a;
  j.e_len <- j.e_len + 1

let push_send j ~msg_id ~dst =
  if j.s_len = 0 then invalid_arg "Journal.push_send: no open segment";
  entry_room j;
  let i = j.e_head + j.e_len in
  Bytes.unsafe_set j.kinds i '\001';
  j.e_msg.(i) <- msg_id;
  j.e_dst.(i) <- dst;
  j.e_len <- j.e_len + 1

(* Rollback targets are usually near the top of the stack (denials cut
   the newest speculation first), so the lookup walks newest-first. *)
let find_seg j iid =
  let rec go i =
    if i < j.s_head then -1
    else if Interval_id.equal j.seg_iid.(i) iid then i
    else go (i - 1)
  in
  go (j.s_head + j.s_len - 1)

let mem j iid = find_seg j iid >= 0

let checkpoint_of j iid =
  let i = find_seg j iid in
  if i < 0 then None else Some j.seg_ck.(i)

let rollback_to j iid ~consume ~send =
  let si = find_seg j iid in
  if si < 0 then None
  else begin
    let ck = j.seg_ck.(si) in
    let dropped_segs = j.s_head + j.s_len - si in
    let e_from = j.seg_start.(si) in
    let e_end = j.e_head + j.e_len in
    (* A forward walk is chronological order. Undoing a consumption is a
       flip (order-insensitive), and replaying retractions oldest-first
       keeps the Cancel wire order identical to the eager path's, which
       the byte-deterministic trace contract pins. *)
    for i = e_from to e_end - 1 do
      if Bytes.unsafe_get j.kinds i = '\000' then consume j.e_claim.(i)
      else send ~msg_id:j.e_msg.(i) ~dst:j.e_dst.(i)
    done;
    Array.fill j.e_claim e_from (e_end - e_from) j.dummy;
    j.e_len <- e_from - j.e_head;
    Array.fill j.seg_iid si dropped_segs dummy_iid;
    Array.fill j.seg_ck si dropped_segs j.dummy_ck;
    j.s_len <- si - j.s_head;
    Some (ck, dropped_segs)
  end

let release_oldest j iid ~consume =
  if j.s_len = 0 || not (Interval_id.equal j.seg_iid.(j.s_head) iid) then false
  else begin
    let e_from = j.seg_start.(j.s_head) in
    let e_to =
      if j.s_len > 1 then j.seg_start.(j.s_head + 1) else j.e_head + j.e_len
    in
    (* Send entries need no action on release: the interval finalized, so
       its messages are definite and can no longer be retracted. *)
    for i = e_from to e_to - 1 do
      if Bytes.unsafe_get j.kinds i = '\000' then consume j.e_claim.(i);
      j.e_claim.(i) <- j.dummy
    done;
    j.seg_iid.(j.s_head) <- dummy_iid;
    j.seg_ck.(j.s_head) <- j.dummy_ck;
    j.s_head <- j.s_head + 1;
    j.s_len <- j.s_len - 1;
    j.e_len <- j.e_len - (e_to - e_from);
    j.e_head <- e_to;
    true
  end
