(** Per-process undo journal for speculative effects.

    As a speculative interval executes, the scheduler appends typed undo
    records — message-consumption claims and outgoing user sends — to
    this journal. Records are grouped into {e segments}, one per
    interval, opened when the interval registers its checkpoint. The
    segment stack mirrors the runtime's [History] window exactly:

    - rollback truncates a {e suffix} of segments, replaying their undo
      records (in the spirit of Brown & Sabry's reversible processes:
      cost proportional to the work undone, not to process lifetime);
    - finalize releases the {e oldest} segment, which is the paper's
      finalize rule applied to storage — once no live interval can roll
      back past a checkpoint, the checkpoint and its undo records are
      unreachable and are dropped in O(segment).

    Storage is pooled (parallel columns over head/length windows, like
    [History]): pushing a record allocates nothing in steady state, and
    released claim slots are scrubbed so finalized arrivals are not
    retained through the pool.

    The structure is polymorphic in the claim payload ['a] (the
    scheduler's arrival record) and the checkpoint ['ck] so it stays
    independent of the scheduler's internals. *)

open Hope_types

type ('a, 'ck) t

val create : dummy:'a -> dummy_ck:'ck -> unit -> ('a, 'ck) t
(** [dummy]/[dummy_ck] are scrub values stored into released slots. *)

val entries : ('a, 'ck) t -> int
(** Live undo records across all open segments. *)

val segments : ('a, 'ck) t -> int
(** Open segments — equivalently, live checkpoints. *)

val top_iid : ('a, 'ck) t -> Interval_id.t option
val oldest_iid : ('a, 'ck) t -> Interval_id.t option
val mem : ('a, 'ck) t -> Interval_id.t -> bool
val checkpoint_of : ('a, 'ck) t -> Interval_id.t -> 'ck option

val open_segment : ('a, 'ck) t -> iid:Interval_id.t -> ck:'ck -> unit
(** Begin the segment of a freshly created interval. Must be called in
    interval-creation order: the segment stack mirrors the history. *)

val push_consume : ('a, 'ck) t -> 'a -> unit
(** Record a consumption claim by the newest open segment's interval.
    @raise Invalid_argument when no segment is open. *)

val push_send : ('a, 'ck) t -> msg_id:int -> dst:int -> unit
(** Record an outgoing user send by the newest open segment's interval.
    @raise Invalid_argument when no segment is open. *)

val rollback_to :
  ('a, 'ck) t ->
  Interval_id.t ->
  consume:('a -> unit) ->
  send:(msg_id:int -> dst:int -> unit) ->
  ('ck * int) option
(** Truncate every segment from the target's (inclusive) to the newest,
    replaying each dropped undo record through [consume]/[send] in
    chronological order (flips are order-insensitive and the Cancel wire
    order stays identical to the eager implementation's). Returns the
    target's checkpoint and the number of segments dropped, or [None]
    when the target has no open segment. *)

val release_oldest :
  ('a, 'ck) t -> Interval_id.t -> consume:('a -> unit) -> bool
(** Drop the oldest segment if it is the given interval's, feeding its
    consumption claims to [consume] (they become definite; send records
    are simply discarded — a finalized interval's messages can no longer
    be retracted). Returns [false] — a tolerated no-op — when the
    interval has no open segment. *)
