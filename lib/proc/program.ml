open Hope_types

type filter =
  | Any
  | From of Proc_id.t
  | Where of (Envelope.t -> bool)

type _ op =
  | Send : Proc_id.t * Value.t -> unit op
  | Recv : filter -> Envelope.t op
  | Recv_opt : filter -> Envelope.t option op
  | Aid_init : Aid.t op
  | Guess : Aid.t -> bool op
  | Affirm : Aid.t -> unit op
  | Deny : Aid.t -> unit op
  | Free_of : Aid.t -> unit op
  | Release : Aid.t -> unit op
  | Spawn : string * unit t -> Proc_id.t op
  | Compute : float -> unit op
  | Now : float op
  | Self : Proc_id.t op
  | Random_float : float -> float op
  | Random_bernoulli : float -> bool op
  | Random_int : int -> int op
  | Observe : string * float -> unit op
  | Incr_counter : string -> unit op
  | Mark : string * string -> unit op
  | Lift : (unit -> 'b) -> 'b op

and 'a t = Return : 'a -> 'a t | Bind : 'b op * ('b -> 'a t) -> 'a t

let return x = Return x

let rec bind : type a b. a t -> (a -> b t) -> b t =
 fun m f -> match m with Return x -> f x | Bind (op, k) -> Bind (op, fun x -> bind (k x) f)

let map f m = bind m (fun x -> return (f x))

let perform op = Bind (op, return)

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
  let ( >>= ) = bind
end

open Syntax

let send dst v = perform (Send (dst, v))
let recv () = perform (Recv Any)
let recv_from src = perform (Recv (From src))
let recv_where p = perform (Recv (Where p))
let recv_opt () = perform (Recv_opt Any)
let recv_opt_where p = perform (Recv_opt (Where p))

let recv_value () =
  let+ env = recv () in
  Envelope.value env

let recv_value_from src =
  let+ env = recv_from src in
  Envelope.value env

let aid_init () = perform Aid_init
let guess x = perform (Guess x)

let guess_new () =
  let* x = perform Aid_init in
  let* ok = perform (Guess x) in
  return (ok, x)
let affirm x = perform (Affirm x)
let deny x = perform (Deny x)
let free_of x = perform (Free_of x)
let release x = perform (Release x)

let spawn name body = perform (Spawn (name, body))
let compute d = perform (Compute d)
let now () = perform Now
let self () = perform Self

let random_float bound = perform (Random_float bound)
let random_bernoulli p = perform (Random_bernoulli p)
let random_int bound = perform (Random_int bound)

let lift f = perform (Lift f)
let observe name x = perform (Observe (name, x))
let incr_counter name = perform (Incr_counter name)
let mark category message = perform (Mark (category, message))

let rec iter_list f = function
  | [] -> return ()
  | x :: rest ->
    let* () = f x in
    iter_list f rest

let rec for_ lo hi f =
  if lo > hi then return ()
  else
    let* () = f lo in
    for_ (lo + 1) hi f

let when_ cond body = if cond then body else return ()

let rec repeat n body =
  if n <= 0 then return ()
  else
    let* () = body in
    repeat (n - 1) body

let rec fold lo hi acc f =
  if lo > hi then return acc
  else
    let* acc = f acc lo in
    fold (lo + 1) hi acc f
