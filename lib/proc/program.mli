(** The communicating-sequential-process DSL.

    User processes are values of type [unit t]: purely functional programs
    over an instruction set of message passing, HOPE primitives, and
    virtual computation. Writing processes as first-class programs is what
    makes the paper's "rollback facility" (§5) trivial to realise: a
    checkpoint is the continuation captured at a [guess] or a tagged
    receive, and rolling back is re-entering that continuation. Process
    state must be threaded through the continuations (ordinary OCaml
    values); there are deliberately no mutable-cell instructions, so a
    rollback can never observe stale state.

    The HOPE instructions follow §3 of the paper:
    - {!aid_init} creates an assumption identifier ahead of time;
    - {!guess} eagerly returns [true]; if the assumption is later denied
      the process re-executes from the guess with [false];
    - {!affirm} / {!deny} assert an assumption's fate, from any process;
    - {!free_of} affirms the AID if the calling process does not depend on
      it, and denies it if it does.

    None of these instructions ever blocks: that is the wait-free property
    the paper's title claims, and the scheduler enforces it (only {!recv}
    can park a process). *)

open Hope_types

type filter =
  | Any  (** first available message *)
  | From of Proc_id.t  (** first available message from this sender *)
  | Where of (Envelope.t -> bool)  (** first available match *)

type _ op =
  | Send : Proc_id.t * Value.t -> unit op
  | Recv : filter -> Envelope.t op
  | Recv_opt : filter -> Envelope.t option op
  | Aid_init : Aid.t op
  | Guess : Aid.t -> bool op
  | Affirm : Aid.t -> unit op
  | Deny : Aid.t -> unit op
  | Free_of : Aid.t -> unit op
  | Release : Aid.t -> unit op
  | Spawn : string * unit t -> Proc_id.t op
  | Compute : float -> unit op
  | Now : float op
  | Self : Proc_id.t op
  | Random_float : float -> float op
  | Random_bernoulli : float -> bool op
  | Random_int : int -> int op
  | Observe : string * float -> unit op
  | Incr_counter : string -> unit op
  | Mark : string * string -> unit op
  | Lift : (unit -> 'b) -> 'b op

and 'a t = Return : 'a -> 'a t | Bind : 'b op * ('b -> 'a t) -> 'a t

(** {1 Monad} *)

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t
val perform : 'a op -> 'a t

module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
  val ( >>= ) : 'a t -> ('a -> 'b t) -> 'b t
end

(** {1 Messaging} *)

val send : Proc_id.t -> Value.t -> unit t
val recv : unit -> Envelope.t t
val recv_from : Proc_id.t -> Envelope.t t
val recv_where : (Envelope.t -> bool) -> Envelope.t t

val recv_value : unit -> Value.t t
(** [recv () ] projected to the payload value. *)

val recv_value_from : Proc_id.t -> Value.t t

val recv_opt : unit -> Envelope.t option t
(** Non-blocking receive: consume and return the first available message,
    or return [None] immediately when the mailbox has none. *)

val recv_opt_where : (Envelope.t -> bool) -> Envelope.t option t

(** {1 HOPE primitives} *)

val aid_init : unit -> Aid.t t

val guess : Aid.t -> bool t

val guess_new : unit -> (bool * Aid.t) t
(** The paper's guess-with-null-argument: "if the argument is ⊥, then
    guess infers that this is a new optimistic assumption and spawns a new
    AID process" (§5.2). Equivalent to [aid_init] followed by [guess];
    returns the eager [true] plus the fresh AID to hand to a verifier. *)

val affirm : Aid.t -> unit t
val deny : Aid.t -> unit t
val free_of : Aid.t -> unit t

val release : Aid.t -> unit t
(** Release a pessimistic grant held on [aid] (DESIGN.md §10): a guess
    routed through an escalated AID's acquisition queue that returned
    [true] holds the AID exclusively until released. A no-op when no
    grant on [aid] is held — so hybrid code can call it unconditionally
    after the critical section, whichever path the guess took. The
    scheduler also auto-releases held grants on termination; a rollback
    deliberately keeps them, so a denied holder retries inside its
    exclusive window. *)

(** {1 Process control and time} *)

val spawn : string -> unit t -> Proc_id.t t
val compute : float -> unit t
(** Consume the given amount of virtual CPU time. *)

val now : unit -> float t
val self : unit -> Proc_id.t t

(** {1 Randomness (per-process deterministic stream)} *)

val random_float : float -> float t
val random_bernoulli : float -> bool t
val random_int : int -> int t

(** {1 Instrumentation} *)

val lift : (unit -> 'a) -> 'a t
(** Escape hatch: run an OCaml thunk inline for its result or side effect.
    The effect is {b not} rolled back — a rolled-back process re-runs it on
    re-execution. Use for instrumentation (observing execution order in
    tests, printing in examples), never for process state. *)

val observe : string -> float -> unit t
(** Record a sample into the named engine histogram. *)

val incr_counter : string -> unit t
val mark : string -> string -> unit t
(** [mark category message] appends to the engine trace. *)

(** {1 Control-flow helpers} *)

val iter_list : ('a -> unit t) -> 'a list -> unit t
val for_ : int -> int -> (int -> unit t) -> unit t
(** [for_ lo hi f] runs [f lo; ...; f hi] in sequence (inclusive). *)

val when_ : bool -> unit t -> unit t
val repeat : int -> unit t -> unit t
val fold : int -> int -> 'acc -> ('acc -> int -> 'acc t) -> 'acc t
(** [fold lo hi acc f] threads an accumulator over the inclusive range. *)
