open Hope_types
module Engine = Hope_sim.Engine
module Rng = Hope_sim.Rng
module Metrics = Hope_sim.Metrics
module Trace = Hope_sim.Trace
module Vec = Hope_sim.Vec
module Network = Hope_net.Network

type config = {
  send_cost : float;
  recv_cost : float;
  primitive_cost : float;
  rollback_cost : float;
  spawn_cost : float;
  fuel : int;
}

let free_config =
  {
    send_cost = 0.0;
    recv_cost = 0.0;
    primitive_cost = 0.0;
    rollback_cost = 0.0;
    spawn_cost = 0.0;
    fuel = 1_000_000;
  }

let epoch_1995_config =
  {
    send_cost = 50e-6;
    recv_cost = 30e-6;
    primitive_cost = 20e-6;
    rollback_cost = 1e-3;
    spawn_cost = 2e-3;
    fuel = 1_000_000;
  }

type implicit_decision =
  | Accept of Interval_id.t option
  | Reject

type rollback_cause =
  | Assumption_denied of Aid.t
  | Assumption_revoked
  | Message_cancelled of int

type guess_decision =
  | Speculate of Interval_id.t
  | Pessimistic
  | Acquire of { bound : float }
      (** the AID is escalated (DESIGN.md §10): join its pessimistic
          acquisition queue instead of opening a speculative interval;
          [bound] is the virtual-time limit on the queued wait *)

type hooks = {
  h_tags : Proc_id.t -> Aid.Set.t;
  h_current : Proc_id.t -> Interval_id.t option;
  h_aid_init : Proc_id.t -> Aid.t;
  h_guess : Proc_id.t -> Aid.t -> guess_decision;
  h_send_delay : Proc_id.t -> float;
  h_implicit : Proc_id.t -> Envelope.t -> implicit_decision;
  h_affirm : Proc_id.t -> Aid.t -> unit;
  h_deny : Proc_id.t -> Aid.t -> unit;
  h_free_of : Proc_id.t -> Aid.t -> unit;
  h_control : self:Proc_id.t -> src:Proc_id.t -> Wire.t -> unit;
  h_cancelled : self:Proc_id.t -> iid:Interval_id.t -> msg_id:int -> unit;
  h_spawned : Proc_id.t -> unit;
  h_spawn_child : parent:Proc_id.t -> child:Proc_id.t -> Interval_id.t option;
  h_terminated : Proc_id.t -> unit;
}

type consumption = Not_consumed | Consumed_definite | Consumed_by of Interval_id.t

type arrival = {
  env : Envelope.t;
  mutable consumption : consumption;
  mutable dropped : bool;
}

type checkpoint =
  | Guess_checkpoint of { aid : Aid.t; k : bool -> unit Program.t }
  | Recv_checkpoint of { resume : unit Program.t; trigger : arrival option }
      (** [trigger] is the arrival whose consumption opened the interval
          ([None] for a speculative spawn's whole-body checkpoint); the
          record reference makes the denied-trigger drop O(1) and stays
          valid across mailbox compaction (arrival records are stable
          heap objects — only their [Vec] slots move) *)

type pstate =
  | Runnable of unit Program.t
  | Waiting of { filter : Program.filter; resume : unit Program.t }
  | Acquiring of {
      ticket : Interval_id.t;
      aid : Aid.t;
      k : bool -> unit Program.t;
    }
      (** parked in an escalated AID's acquisition queue; resumes with
          [k true] on Grant (holding the AID) or [k false] on Abort or
          timeout — every acquire completes, so the park is bounded *)
  | Terminated_st

type proc = {
  pid : Proc_id.t;
  pname : string;
  mutable state : pstate;
  mutable gen : int;  (** invalidates stale scheduled resumptions *)
  arrivals : arrival Vec.t;
  prng : Rng.t;
  journal : (arrival, checkpoint) Journal.t;
      (** segmented undo log of speculative effects; one segment (with
          its checkpoint) per live interval, mirroring the runtime's
          history window — see {!Journal} *)
  by_msg_id : (int, arrival) Hashtbl.t;
      (** resident arrivals by message id: O(1) Cancel targeting without
          scanning the mailbox; entries die when the arrival is reclaimed *)
  mutable reclaimable : int;
      (** resident arrivals that are dropped or definitively consumed —
          no live journal segment references them, so epoch compaction
          may evict them from [arrivals] *)
  cancelled_early : (int, unit) Hashtbl.t;
      (** cancels that arrived before their message (non-FIFO networks) *)
  mutable held : (Aid.t * Interval_id.t) list;
      (** pessimistic grants currently held (AID, ticket); released by
          [Program.Release], termination, or rollback *)
  mutable completed_at : float option;
}

type actor = {
  apid : Proc_id.t;
  aname : string;
  handler : self:Proc_id.t -> src:Proc_id.t -> Envelope.t -> unit;
}

type entity = User_proc of proc | Native_actor of actor

type status = Running | Blocked | Terminated

(* Hot-path metric handles, resolved once at [create]: per-emission the
   scheduler touches a record field and bumps an int — no string hashing.
   [c_wire] is indexed by {!Wire.tag}. *)
type hot_metrics = {
  c_all_sends : Metrics.counter;
  c_user_sends : Metrics.counter;
  c_cancel_sends : Metrics.counter;
  c_wire : Metrics.counter array;
  c_untagged : Metrics.counter;
  c_poisoned : Metrics.counter;
  c_consumes : Metrics.counter;
  c_parks : Metrics.counter;
  c_terminations : Metrics.counter;
  c_cancels_received : Metrics.counter;
  c_cancels_to_definite : Metrics.counter;
  c_spawns : Metrics.counter;
  c_actor_spawns : Metrics.counter;
  c_primitive_execs : Metrics.counter;
  c_guesses : Metrics.counter;
  c_guesses_gated : Metrics.counter;
  c_acquire_waits : Metrics.counter;
  c_acquire_timeouts : Metrics.counter;
  c_send_stalls : Metrics.counter;
  c_cancels_sent : Metrics.counter;
  c_rollbacks : Metrics.counter;
  h_rollback_depth : Metrics.histogram;
  c_compactions : Metrics.counter;
  c_arrivals_reclaimed : Metrics.counter;
  c_cancels_orphaned : Metrics.counter;
  g_ckpt_live : Metrics.gauge;
  g_arrivals_resident : Metrics.gauge;
  g_journal_depth : Metrics.gauge;
}

type t = {
  eng : Engine.t;
  net : Envelope.t Network.t;
  cfg : config;
  entities : entity Vec.t;  (** dense: index = pid (pids are sequential) *)
  spawn_order : Proc_id.t Vec.t;  (** user processes, in spawn order *)
  mutable next_msg_id : int;
  mutable msg_id_stride : int;
      (** msg ids advance by this much; a sharded deployment gives each
          scheduler [base = shard_id, stride = shards] so ids stay
          globally unique when envelopes cross shard mailboxes *)
  mutable remote_route : (src:Proc_id.t -> dst:Proc_id.t -> Envelope.t -> bool) option;
      (** cross-shard egress: when set and it returns [true], the
          envelope was taken by the shard transport and must NOT be
          dispatched through the local network *)
  mutable hooks : hooks option;
  mutable hope_primitive_parks : int;
  mutable resume_disp : Engine.t -> int -> int -> unit;
      (** the direct-dispatch resume entry point: [(pid, gen)] immediates
          instead of a closure per park/spawn/rollback *)
  mutable next_ticket : int;
      (** next acquisition-ticket sequence; tickets are negative interval
          ids ([seq <= -2]: [-1] is the definite interval) so they route
          through [Interval_id.owner] without colliding with real
          intervals *)
  mutable acquire_disp : Engine.t -> int -> int -> unit;
      (** direct-dispatch acquire-timeout entry point, carrying
          [(pid, ticket_seq)] — no closure per queued acquire *)
  hm : hot_metrics;
  (* Speculative-storage totals behind the [hope.ckpt_live] /
     [hope.arrivals_resident] / [hope.journal_depth] gauges, summed over
     every process and pushed into the registry at each mutation site. *)
  mutable n_ckpt_live : int;
  mutable n_resident : int;
  mutable n_journal : int;
}

exception Process_failure of { pid : Proc_id.t; name : string; exn : exn }

exception Fuel_exhausted of { pid : Proc_id.t; name : string }

let engine t = t.eng
let network t = t.net
let config t = t.cfg
let set_hooks t hooks = t.hooks <- Some hooks

let hooks_exn t =
  match t.hooks with
  | Some h -> h
  | None -> failwith "Scheduler: HOPE runtime not installed (no hooks)"

let metrics t = Engine.metrics t.eng
let trace t = Engine.trace t.eng

let counter t name = Metrics.counter (metrics t) name

(* Structured observability: events attributed to the acting process, at
   the current virtual time. Everything the scheduler emits is net-class
   (one or more events per message, the densest part of the stream), so
   its sites guard on [enabled_net]: payloads are not even allocated
   while no recorder stores and no tap asked for message traffic. *)
let obs_on_net t = Hope_obs.Recorder.enabled_net (Engine.obs t.eng)

let obs_emit t ~proc payload =
  Hope_obs.Recorder.emit (Engine.obs t.eng) ~time:(Engine.now t.eng) ~proc
    payload

let find_proc t pid =
  let i = Proc_id.to_int pid in
  if i < 0 || i >= Vec.length t.entities then
    invalid_arg (Printf.sprintf "Scheduler: unknown process %s" (Proc_id.to_string pid))
  else
    match Vec.get t.entities i with
    | User_proc p -> p
    | Native_actor _ ->
      invalid_arg
        (Printf.sprintf "Scheduler: %s is an actor, not a user process"
           (Proc_id.to_string pid))

let name_of t pid =
  let i = Proc_id.to_int pid in
  if i < 0 || i >= Vec.length t.entities then "?"
  else
    match Vec.get t.entities i with
    | User_proc p -> p.pname
    | Native_actor a -> a.aname

let fresh_msg_id t =
  let id = t.next_msg_id in
  t.next_msg_id <- t.next_msg_id + t.msg_id_stride;
  id

let fresh_ticket t owner =
  let seq = t.next_ticket in
  t.next_ticket <- t.next_ticket - 1;
  Interval_id.make ~owner ~seq

(* ------------------------------------------------------------------ *)
(* Speculative-storage accounting                                      *)
(* ------------------------------------------------------------------ *)

(* Sentinel payload for the network's delivery-batch pool and the
   mailbox/journal pools: dispatched or released slots are scrubbed with
   these so dead envelopes don't stay reachable through the pools. *)
let dummy_envelope =
  Envelope.make ~id:(-1) ~src:(Proc_id.of_int (-1)) ~dst:(Proc_id.of_int (-1))
    (Envelope.Cancel { msg_id = -1 })

let dummy_arrival =
  { env = dummy_envelope; consumption = Consumed_definite; dropped = true }

let dummy_checkpoint = Recv_checkpoint { resume = Program.Return (); trigger = None }

let sync_storage_gauges t =
  Metrics.set_gauge t.hm.g_ckpt_live (float_of_int t.n_ckpt_live);
  Metrics.set_gauge t.hm.g_arrivals_resident (float_of_int t.n_resident);
  Metrics.set_gauge t.hm.g_journal_depth (float_of_int t.n_journal)

(* An arrival is reclaimable once it can never be consumed again and no
   live journal segment needs to restore it: dropped is sticky, and a
   definite consumption is final (rollback only ever flips [Consumed_by]
   claims, and only from the segment that made them). [p.reclaimable]
   counts these exactly; both transitions below are monotone, so each
   arrival is counted at most once. *)
let is_reclaimable a =
  a.dropped || (match a.consumption with Consumed_definite -> true | _ -> false)

let mark_dropped p a =
  if not (is_reclaimable a) then p.reclaimable <- p.reclaimable + 1;
  a.dropped <- true

let mark_definite p a =
  if not (is_reclaimable a) then p.reclaimable <- p.reclaimable + 1;
  a.consumption <- Consumed_definite

(* Epoch compaction of the arrival log: slide live arrivals down in
   place (receive scans pick the first match in arrival order, so the
   relative order of live arrivals is part of the determinism contract —
   no free-list reuse of interior slots), evict the reclaimable ones
   from the id index, and scrub the tail. Triggered only from safe
   points (delivery, interval release) where no scan holds an index, and
   only by deterministic count-based thresholds. *)
let compact_threshold = 64

let compact_mailbox t p =
  let n = Vec.length p.arrivals in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    let a = Vec.get p.arrivals i in
    if is_reclaimable a then Hashtbl.remove p.by_msg_id a.env.Envelope.id
    else begin
      if !kept < i then Vec.set p.arrivals !kept a;
      incr kept
    end
  done;
  let reclaimed = n - !kept in
  Vec.truncate p.arrivals ~keep:!kept ~dummy:dummy_arrival;
  p.reclaimable <- 0;
  t.n_resident <- t.n_resident - reclaimed;
  Metrics.incr t.hm.c_compactions;
  Metrics.add t.hm.c_arrivals_reclaimed reclaimed;
  sync_storage_gauges t;
  if Hope_obs.Recorder.enabled (Engine.obs t.eng) then
    obs_emit t ~proc:p.pid
      (Hope_obs.Event.Mailbox_compact { kept = !kept; reclaimed })

let maybe_compact t p =
  let n = Vec.length p.arrivals in
  if n >= compact_threshold && 2 * p.reclaimable > n then compact_mailbox t p

(* A cancel that arrived before its message only matters while the
   message can still arrive and be consumed. Once the process has
   terminated with no live segment it can never run again (nothing can
   roll it back — rollback needs a checkpoint), so pending early-cancel
   entries are orphans: purge them and count them, closing the leak
   where a message retracted before delivery pinned its entry for the
   process lifetime. *)
let purge_orphaned_cancels t p =
  if
    p.state = Terminated_st
    && Journal.segments p.journal = 0
    && Hashtbl.length p.cancelled_early > 0
  then begin
    Metrics.add t.hm.c_cancels_orphaned (Hashtbl.length p.cancelled_early);
    Hashtbl.reset p.cancelled_early
  end

(* ------------------------------------------------------------------ *)
(* Message transmission                                                *)
(* ------------------------------------------------------------------ *)

let transmit t ~src ~dst payload =
  let id = fresh_msg_id t in
  let env = Envelope.make ~id ~src ~dst payload in
  Metrics.incr t.hm.c_all_sends;
  (match payload with
  | Envelope.Control w -> Metrics.incr t.hm.c_wire.(Wire.tag w)
  | Envelope.User _ -> Metrics.incr t.hm.c_user_sends
  | Envelope.Cancel _ -> Metrics.incr t.hm.c_cancel_sends);
  (* Structured wire-level observability: every transmission becomes a
     typed event. The string Trace recording below it is the legacy
     debugging channel ([--print-trace]); both are one branch when off. *)
  if obs_on_net t then
    (match payload with
    | Envelope.Control wire -> obs_emit t ~proc:src (Hope_obs.Event.Wire_send { dst; wire })
    | Envelope.User { tags; _ } ->
      obs_emit t ~proc:src (Hope_obs.Event.Msg_send { dst; msg_id = id; tags })
    | Envelope.Cancel { msg_id } ->
      obs_emit t ~proc:src (Hope_obs.Event.Cancel_send { dst; msg_id }));
  let tr = trace t in
  if Trace.enabled tr then
    Trace.recordf tr ~time:(Engine.now t.eng) ~category:"wire" "%a" Envelope.pp
      env;
  (match t.remote_route with
  | Some route when route ~src ~dst env -> ()
  | _ -> Network.send t.net ~src:(Proc_id.to_int src) ~dst:(Proc_id.to_int dst) env);
  id

let send_wire t ~src ~dst wire =
  ignore (transmit t ~src ~dst (Envelope.Control wire) : int)

let send_user t ~src ~dst ~tags value =
  ignore (transmit t ~src ~dst (Envelope.User { value; tags }) : int)

(* Release every pessimistic grant the process holds (termination and
   rollback both end the critical section: the AID must not stay held by
   a process that will never Release it, or the queue deadlocks). *)
let release_held t p =
  match p.held with
  | [] -> ()
  | held ->
    p.held <- [];
    List.iter
      (fun (aid, ticket) ->
        send_wire t ~src:p.pid ~dst:(Aid.to_proc aid)
          (Wire.Release { iid = ticket }))
      held

(* ------------------------------------------------------------------ *)
(* Process stepping                                                    *)
(* ------------------------------------------------------------------ *)

(* [make_runnable] is the only way a parked/new process becomes scheduled:
   it bumps the generation so that any previously scheduled resumption of
   an older continuation is ignored when it fires. The resumption itself
   is a direct-dispatch event carrying [(pid, gen)] — see [handle_resume],
   reached through [t.resume_disp] — so parking allocates no closure. *)
let rec make_runnable t p ~delay prog =
  p.state <- Runnable prog;
  p.gen <- p.gen + 1;
  Engine.schedule_call t.eng ~delay t.resume_disp (Proc_id.to_int p.pid) p.gen

and handle_resume t pidi gen =
  match Vec.get t.entities pidi with
  | User_proc p ->
    if p.gen = gen then (
      match p.state with
      | Runnable prog -> activate t p prog
      | Waiting _ | Acquiring _ | Terminated_st -> ())
  | Native_actor _ -> ()

and activate t p prog =
  try exec t p prog t.cfg.fuel with
  | Process_failure _ as e -> raise e
  | exn -> raise (Process_failure { pid = p.pid; name = p.pname; exn })

(* Execute instructions inline until the process parks or terminates.
   [fuel] bounds the number of zero-cost instructions per activation. *)
and exec : t -> proc -> unit Program.t -> int -> unit =
 fun t p prog fuel ->
  if fuel <= 0 then raise (Fuel_exhausted { pid = p.pid; name = p.pname });
  match prog with
  | Program.Return () -> terminate t p
  | Program.Bind (op, k) -> exec_op t p op k fuel

(* The continuation step shared by every instruction. A top-level member
   of the recursive group rather than a local [let continue_ …] closure:
   the closure would be allocated on every [exec_op] call, which is once
   per executed instruction — the interpreter's innermost loop. *)
and continue_k : type b. t -> proc -> (b -> unit Program.t) -> b -> float -> int -> unit =
 fun t p k x cost fuel ->
  if cost <= 0.0 then exec t p (k x) (fuel - 1)
  else make_runnable t p ~delay:cost (k x)

and exec_op : type b. t -> proc -> b Program.op -> (b -> unit Program.t) -> int -> unit =
 fun t p op k fuel ->
  match op with
  | Program.Send (dst, value) ->
    let tags =
      match t.hooks with Some h -> h.h_tags p.pid | None -> Aid.Set.empty
    in
    let msg_id = transmit t ~src:p.pid ~dst (Envelope.User { value; tags }) in
    (* A send from a speculative interval is journalled so a rollback can
       cancel it: the re-execution may send it again. The newest open
       segment is always the current interval (the segment stack mirrors
       the history), so the record is three pooled stores. *)
    (match t.hooks with
    | Some h -> (
      match h.h_current p.pid with
      | Some _iid ->
        Journal.push_send p.journal ~msg_id ~dst:(Proc_id.to_int dst);
        t.n_journal <- t.n_journal + 1;
        sync_storage_gauges t
      | None -> ())
    | None -> ());
    (* Governor back-pressure: the runtime may charge extra virtual time
       for a send from a deeply speculative process. The ungoverned hook
       returns the constant 0.0, so the branch below keeps the hot path
       on the exact original cost (no float arithmetic, no boxing). *)
    let delay = match t.hooks with Some h -> h.h_send_delay p.pid | None -> 0.0 in
    if delay > 0.0 then begin
      Metrics.incr t.hm.c_send_stalls;
      continue_k t p k () (t.cfg.send_cost +. delay) fuel
    end
    else continue_k t p k () t.cfg.send_cost fuel
  | Program.Recv filter -> try_recv t p filter k fuel
  | Program.Recv_opt filter -> try_recv_opt t p filter k fuel
  | Program.Aid_init ->
    let h = hooks_exn t in
    Metrics.incr t.hm.c_primitive_execs;
    let aid = h.h_aid_init p.pid in
    continue_k t p k aid t.cfg.primitive_cost fuel
  | Program.Guess aid ->
    let h = hooks_exn t in
    Metrics.incr t.hm.c_primitive_execs;
    Metrics.incr t.hm.c_guesses;
    (match h.h_guess p.pid aid with
    | Speculate iid ->
      Journal.open_segment p.journal ~iid ~ck:(Guess_checkpoint { aid; k });
      t.n_ckpt_live <- t.n_ckpt_live + 1;
      sync_storage_gauges t;
      (* guess eagerly returns True (§3); rollback re-enters k with false *)
      continue_k t p k true t.cfg.primitive_cost fuel
    | Pessimistic ->
      (* The governor throttled this assumption: take the pessimistic
         branch immediately — no interval, no checkpoint, no AID round
         trip. Still wait-free: the process continues at primitive cost. *)
      Metrics.incr t.hm.c_guesses_gated;
      continue_k t p k false t.cfg.primitive_cost fuel
    | Acquire { bound } ->
      (* The AID escalated to queued acquisition (DESIGN.md §10): park in
         its FIFO queue instead of opening a speculative interval. A
         Grant resumes [k true] holding the AID — definitely, with no
         checkpoint and no Replace traffic; an Abort resumes [k false].
         The wait is bounded: after [bound] virtual seconds the timeout
         below withdraws the ticket and takes the pessimistic branch, so
         the primitive always completes (wait-freedom, degraded to
         bounded-wait on escalated AIDs only). Re-entrant case: a
         rollback keeps grants, so a re-execution can reach this guess
         while already holding the AID — queueing behind itself would
         deadlock until the timeout; resume with the grant it has. *)
      if List.exists (fun (a, _) -> Aid.equal a aid) p.held then
        continue_k t p k true t.cfg.primitive_cost fuel
      else begin
        Metrics.incr t.hm.c_acquire_waits;
        let ticket = fresh_ticket t p.pid in
        p.state <- Acquiring { ticket; aid; k };
        send_wire t ~src:p.pid ~dst:(Aid.to_proc aid)
          (Wire.Acquire { iid = ticket });
        Engine.schedule_call t.eng ~delay:bound t.acquire_disp
          (Proc_id.to_int p.pid) ticket.Interval_id.seq
      end)
  | Program.Affirm aid ->
    let h = hooks_exn t in
    Metrics.incr t.hm.c_primitive_execs;
    h.h_affirm p.pid aid;
    continue_k t p k () t.cfg.primitive_cost fuel
  | Program.Deny aid ->
    let h = hooks_exn t in
    Metrics.incr t.hm.c_primitive_execs;
    h.h_deny p.pid aid;
    continue_k t p k () t.cfg.primitive_cost fuel
  | Program.Free_of aid ->
    let h = hooks_exn t in
    Metrics.incr t.hm.c_primitive_execs;
    h.h_free_of p.pid aid;
    continue_k t p k () t.cfg.primitive_cost fuel
  | Program.Release aid ->
    Metrics.incr t.hm.c_primitive_execs;
    (match List.partition (fun (a, _) -> Aid.equal a aid) p.held with
    | [], _ -> ()
    | grants, rest ->
      p.held <- rest;
      List.iter
        (fun (_, ticket) ->
          send_wire t ~src:p.pid ~dst:(Aid.to_proc aid)
            (Wire.Release { iid = ticket }))
        grants);
    continue_k t p k () t.cfg.primitive_cost fuel
  | Program.Spawn (name, body) ->
    let pid =
      spawn_internal t ~node:(Network.node_of t.net (Proc_id.to_int p.pid)) ~name body
    in
    (* A child spawned from a speculative parent inherits the parent's
       dependencies: spawning is causally a message. Its checkpoint is the
       whole body, so a denial re-runs the child from scratch. *)
    (match t.hooks with
    | Some h ->
      (match h.h_spawn_child ~parent:p.pid ~child:pid with
      | Some iid ->
        let child = find_proc t pid in
        Journal.open_segment child.journal ~iid
          ~ck:(Recv_checkpoint { resume = body; trigger = None });
        t.n_ckpt_live <- t.n_ckpt_live + 1;
        sync_storage_gauges t
      | None -> ())
    | None -> ());
    continue_k t p k pid 0.0 fuel
  | Program.Compute d ->
    if d < 0.0 then invalid_arg "Program.compute: negative duration";
    make_runnable t p ~delay:d (k ())
  | Program.Now -> continue_k t p k (Engine.now t.eng) 0.0 fuel
  | Program.Self -> continue_k t p k p.pid 0.0 fuel
  | Program.Random_float bound -> continue_k t p k (Rng.float p.prng bound) 0.0 fuel
  | Program.Random_bernoulli prob -> continue_k t p k (Rng.bernoulli p.prng ~p:prob) 0.0 fuel
  | Program.Random_int bound -> continue_k t p k (Rng.int p.prng bound) 0.0 fuel
  | Program.Observe (name, x) ->
    Metrics.observe (Metrics.histogram (metrics t) name) x;
    continue_k t p k () 0.0 fuel
  | Program.Incr_counter name ->
    Metrics.incr (counter t name);
    continue_k t p k () 0.0 fuel
  | Program.Mark (category, message) ->
    Trace.record (trace t) ~time:(Engine.now t.eng) ~category message;
    continue_k t p k () 0.0 fuel
  | Program.Lift f -> continue_k t p k (f ()) 0.0 fuel

(* Scan the arrival log for the first live message matching [filter].
   Consuming a tagged message begins an implicit-guess interval whose
   checkpoint is [resume] (§3: receivers implicitly apply guess to each AID
   in the tag). The runtime may instead reject a message outright when it
   is known-dead (a tag AID already denied); rejected messages are dropped
   and the scan continues. Returns the consumed arrival, or [None] when no
   live match exists. *)
and arrival_matches filter a =
  (not a.dropped)
  && a.consumption = Not_consumed
  && Envelope.is_user a.env
  &&
  match filter with
  | Program.Any -> true
  | Program.From src -> Proc_id.equal a.env.Envelope.src src
  | Program.Where pred -> pred a.env

(* The scan is a member of the recursive group, not a nested [let rec]:
   a local recursive function would be a fresh closure per receive. *)
and scan_consume : t -> proc -> Program.filter -> resume:unit Program.t -> arrival option
    =
 fun t p filter ~resume -> scan_arrivals t p filter resume 0

and scan_arrivals t p filter resume idx =
  if idx >= Vec.length p.arrivals then None
  else begin
    let a = Vec.get p.arrivals idx in
    if not (arrival_matches filter a) then scan_arrivals t p filter resume (idx + 1)
    else
      match
        match t.hooks with
        | None -> Accept None
        | Some h ->
          if Aid.Set.is_empty (Envelope.tags a.env) then begin
            (* Fast path: an untagged message carries no assumptions, so
               the runtime's implicit-guess hook accepts it unconditionally
               without opening an interval — skip the round-trip. O(1) on
               the hash-consed set. *)
            Metrics.incr t.hm.c_untagged;
            Accept None
          end
          else h.h_implicit p.pid a.env
      with
      | Reject ->
        a.dropped <- true;
        Metrics.incr t.hm.c_poisoned;
        scan_arrivals t p filter resume (idx + 1)
      | Accept interval ->
        Metrics.incr t.hm.c_consumes;
        let interval =
          match (interval, t.hooks) with
          | Some iid, _ ->
            Journal.open_segment p.journal ~iid
              ~ck:(Recv_checkpoint { resume; trigger = Some a });
            t.n_ckpt_live <- t.n_ckpt_live + 1;
            Some iid
          | None, Some h -> h.h_current p.pid
          | None, None -> None
        in
        (match interval with
        | Some iid ->
          (* The claim is journalled under the newest segment — the
             consuming interval itself for a tagged message, the current
             interval for an untagged one — so rollback restores it by
             walking the suffix, never the whole mailbox. *)
          a.consumption <- Consumed_by iid;
          Journal.push_consume p.journal a;
          t.n_journal <- t.n_journal + 1
        | None ->
          (* No live interval: the consumption is definite on the spot,
             which also makes the arrival reclaimable. *)
          mark_definite p a);
        sync_storage_gauges t;
        if obs_on_net t then
          obs_emit t ~proc:p.pid
            (Hope_obs.Event.Msg_recv
               { src = a.env.Envelope.src; msg_id = a.env.Envelope.id; iid = interval });
        Some a
  end

and try_recv :
    t -> proc -> Program.filter -> (Envelope.t -> unit Program.t) -> int -> unit =
 fun t p filter k fuel ->
  let resume = Program.Bind (Program.Recv filter, k) in
  match scan_consume t p filter ~resume with
  | None ->
    Metrics.incr t.hm.c_parks;
    p.state <- Waiting { filter; resume };
    (* Parking ends the receive scan, so it is a safe point — and the
       natural epoch boundary after a consumption burst: reclaimables
       created mid-scan (definite consumptions) compact here instead of
       waiting for the next delivery. This is what makes the residency
       bound hold at quiescence, not just between deliveries. *)
    maybe_compact t p
  | Some a ->
    if t.cfg.recv_cost <= 0.0 then exec t p (k a.env) (fuel - 1)
    else make_runnable t p ~delay:t.cfg.recv_cost (k a.env)

and try_recv_opt :
    t ->
    proc ->
    Program.filter ->
    (Envelope.t option -> unit Program.t) ->
    int ->
    unit =
 fun t p filter k fuel ->
  let resume = Program.Bind (Program.Recv_opt filter, k) in
  match scan_consume t p filter ~resume with
  | None -> exec t p (k None) (fuel - 1)
  | Some a ->
    if t.cfg.recv_cost <= 0.0 then exec t p (k (Some a.env)) (fuel - 1)
    else make_runnable t p ~delay:t.cfg.recv_cost (k (Some a.env))

and terminate t p =
  release_held t p;
  p.state <- Terminated_st;
  p.gen <- p.gen + 1;
  p.completed_at <- Some (Engine.now t.eng);
  Metrics.incr t.hm.c_terminations;
  (match t.hooks with Some h -> h.h_terminated p.pid | None -> ());
  (* A termination with live segments is still revivable by rollback;
     the matching purge then happens when the last segment is released. *)
  purge_orphaned_cancels t p

(* ------------------------------------------------------------------ *)
(* Delivery                                                            *)
(* ------------------------------------------------------------------ *)

and deliver_to_proc t p (env : Envelope.t) =
  match env.Envelope.payload with
  | Envelope.Control wire ->
    let h = hooks_exn t in
    h.h_control ~self:p.pid ~src:env.Envelope.src wire
  | Envelope.Cancel { msg_id } -> handle_cancel t p ~msg_id
  | Envelope.User _ ->
    let dropped = Hashtbl.mem p.cancelled_early env.Envelope.id in
    if dropped then Hashtbl.remove p.cancelled_early env.Envelope.id;
    let a = { env; consumption = Not_consumed; dropped } in
    (* An arrival born dropped (retracted before delivery) is reclaimable
       immediately. *)
    if dropped then p.reclaimable <- p.reclaimable + 1;
    Vec.push p.arrivals a;
    Hashtbl.replace p.by_msg_id env.Envelope.id a;
    t.n_resident <- t.n_resident + 1;
    sync_storage_gauges t;
    (if not dropped then
       match p.state with
       | Waiting { filter; resume } ->
         let ok =
           match filter with
           | Program.Any -> true
           | Program.From src -> Proc_id.equal env.Envelope.src src
           | Program.Where pred -> pred env
         in
         if ok then make_runnable t p ~delay:0.0 resume
       | Runnable _ | Acquiring _ | Terminated_st -> ());
    (* Delivery is a safe point: no receive scan is in flight, so the
       mailbox may compact under the arrival just pushed. *)
    maybe_compact t p

(* A speculative sender rolled back and retracted this message. If it is
   still unconsumed it simply disappears; if a speculative interval
   consumed it, that interval rolls back (and drops it). A definite
   consumer is impossible: a message is only consumed definitively when
   every tag assumption is already terminal-True, in which case the
   sending interval would have finalized, not rolled back. *)
and handle_cancel t p ~msg_id =
  Metrics.incr t.hm.c_cancels_received;
  (* Resident arrivals are indexed by message id, so targeting a Cancel
     is a table hit instead of a mailbox scan. A miss means the message
     either was never delivered (the cancel overtook it on a non-FIFO
     network) or was already reclaimed by compaction — in both cases the
     early-cancel entry is the correct, idempotent response (ids are
     never reused, so a stale entry can only go unmatched; orphans are
     purged when the process finishes for good). *)
  match Hashtbl.find_opt p.by_msg_id msg_id with
  | None -> Hashtbl.replace p.cancelled_early msg_id ()
  | Some a -> (
    match a.consumption with
    | Not_consumed -> mark_dropped p a
    | Consumed_by iid ->
      let h = hooks_exn t in
      h.h_cancelled ~self:p.pid ~iid ~msg_id;
      (* Whether or not the consumer was still live (it may have been
         rolled back by another cause already, restoring the message),
         the message itself is retracted for good. *)
      mark_dropped p a
    | Consumed_definite ->
      (* The consumer went definite — every tag assumption had resolved
         True — and then the sender was rolled back anyway by a
         NON-denial cause (a cancelled input or a revoked rewiring, whose
         cascades are invisible to dependency tags). A definite
         computation cannot be rolled back, so this delivery stands and
         the sender's re-execution delivers a fresh copy: at-least-once
         semantics in this narrow window (DESIGN.md §3.6). *)
      Metrics.incr t.hm.c_cancels_to_definite);
    (* A Cancel delivery is a safe point like any other delivery, and a
       retraction burst is exactly when drops pile up — compact here so
       mass cancellation cannot leave the mailbox bloated until the next
       user-message delivery. *)
    maybe_compact t p

and dispatch_delivery t ~dst ~src:_ env =
  match Vec.get t.entities dst with
  | User_proc p -> deliver_to_proc t p env
  | Native_actor a -> a.handler ~self:a.apid ~src:env.Envelope.src env

and spawn_internal : t -> node:int -> name:string -> unit Program.t -> Proc_id.t =
 fun t ~node ~name body ->
  let pid = Proc_id.of_int (Vec.length t.entities) in
  let p =
    {
      pid;
      pname = name;
      state = Runnable body;
      gen = 0;
      arrivals = Vec.create ();
      prng = Rng.split (Engine.rng t.eng);
      journal = Journal.create ~dummy:dummy_arrival ~dummy_ck:dummy_checkpoint ();
      by_msg_id = Hashtbl.create 8;
      reclaimable = 0;
      cancelled_early = Hashtbl.create 4;
      held = [];
      completed_at = None;
    }
  in
  Vec.push t.entities (User_proc p);
  Vec.push t.spawn_order pid;
  Network.place t.net (Proc_id.to_int pid) ~node;
  (match t.hooks with Some h -> h.h_spawned pid | None -> ());
  Metrics.incr t.hm.c_spawns;
  make_runnable t p ~delay:t.cfg.spawn_cost body;
  pid

let spawn t ?(node = 0) ~name body = spawn_internal t ~node ~name body

(* ------------------------------------------------------------------ *)
(* Pessimistic acquisition (DESIGN.md §10)                             *)
(* ------------------------------------------------------------------ *)

(* The acquire-timeout event fired: if the process is still queued on
   this exact ticket, withdraw it (Abort to the AID) and resume on the
   pessimistic branch. Anything else — resumed by Grant/Abort already,
   rolled back, terminated, or queued on a newer ticket — makes the
   timeout a stale no-op, which is what the ticket match checks. *)
let handle_acquire_timeout t pidi seq =
  match Vec.get t.entities pidi with
  | User_proc p -> (
    match p.state with
    | Acquiring { ticket; aid; k } when ticket.Interval_id.seq = seq ->
      Metrics.incr t.hm.c_acquire_timeouts;
      send_wire t ~src:p.pid ~dst:(Aid.to_proc aid)
        (Wire.Abort { iid = ticket });
      make_runnable t p ~delay:0.0 (k false)
    | Runnable _ | Waiting _ | Acquiring _ | Terminated_st -> ())
  | Native_actor _ -> ()

(* A Grant or AID-side Abort arrived for [ticket] (the runtime routes
   them here from its control handler). A Grant for a ticket no longer
   waited on — the timeout withdrew it, or the process rolled back, and
   the Grant was already in flight — is declined with a Release back to
   [src] so the AID frees for the next waiter; a stale Abort needs no
   answer (the withdrawal that staled it was itself the abort). *)
let resolve_acquire t pid ~src ~ticket ~granted =
  let p = find_proc t pid in
  match p.state with
  | Acquiring { ticket = tk; aid; k } when Interval_id.equal tk ticket ->
    if granted then begin
      p.held <- (aid, ticket) :: p.held;
      make_runnable t p ~delay:0.0 (k true)
    end
    else make_runnable t p ~delay:0.0 (k false)
  | Runnable _ | Waiting _ | Acquiring _ | Terminated_st ->
    if granted then
      send_wire t ~src:pid ~dst:src (Wire.Release { iid = ticket })

let held_grants t pid = (find_proc t pid).held

let spawn_actor t ?(node = 0) ~name handler =
  let pid = Proc_id.of_int (Vec.length t.entities) in
  Vec.push t.entities (Native_actor { apid = pid; aname = name; handler });
  Network.place t.net (Proc_id.to_int pid) ~node;
  Metrics.incr t.hm.c_actor_spawns;
  pid

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ~engine ?default_latency ?fifo ?(msg_id_base = 0)
    ?(msg_id_stride = 1) ?(config = free_config) () =
  if msg_id_stride <= 0 then
    invalid_arg "Scheduler.create: msg_id_stride must be positive";
  if msg_id_base < 0 || msg_id_base >= msg_id_stride then
    invalid_arg "Scheduler.create: msg_id_base must be in [0, stride)";
  let reg = Engine.metrics engine in
  let hm =
    {
      c_all_sends = Metrics.counter reg "net.user_and_ctl_sends";
      c_user_sends = Metrics.counter reg "net.user_sends";
      c_cancel_sends = Metrics.counter reg "net.cancels";
      c_wire =
        Array.init Wire.tag_count (fun i ->
            Metrics.counter reg ("hope.msgs." ^ Wire.tag_name i));
      c_untagged = Metrics.counter reg "sched.untagged_fast_path";
      c_poisoned = Metrics.counter reg "sched.poisoned_messages";
      c_consumes = Metrics.counter reg "sched.consumes";
      c_parks = Metrics.counter reg "sched.parks";
      c_terminations = Metrics.counter reg "sched.terminations";
      c_cancels_received = Metrics.counter reg "sched.cancels_received";
      c_cancels_to_definite = Metrics.counter reg "sched.cancels_to_definite";
      c_spawns = Metrics.counter reg "sched.spawns";
      c_actor_spawns = Metrics.counter reg "sched.actor_spawns";
      c_primitive_execs = Metrics.counter reg "hope.primitive_execs";
      c_guesses = Metrics.counter reg "hope.guesses";
      c_guesses_gated = Metrics.counter reg "hope.guesses_gated";
      c_acquire_waits = Metrics.counter reg "hope.acquire_waits";
      c_acquire_timeouts = Metrics.counter reg "hope.acquire_timeouts";
      c_send_stalls = Metrics.counter reg "hope.send_stalls";
      c_cancels_sent = Metrics.counter reg "hope.cancels_sent";
      c_rollbacks = Metrics.counter reg "hope.rollbacks";
      h_rollback_depth = Metrics.histogram reg "hope.rollback_depth";
      c_compactions = Metrics.counter reg "sched.mailbox_compactions";
      c_arrivals_reclaimed = Metrics.counter reg "sched.arrivals_reclaimed";
      c_cancels_orphaned = Metrics.counter reg "hope.cancels_orphaned";
      g_ckpt_live = Metrics.gauge reg "hope.ckpt_live";
      g_arrivals_resident = Metrics.gauge reg "hope.arrivals_resident";
      g_journal_depth = Metrics.gauge reg "hope.journal_depth";
    }
  in
  let t =
    {
      eng = engine;
      net = Network.create ~engine ?default_latency ?fifo ~dummy:dummy_envelope ();
      cfg = config;
      entities = Vec.create ();
      spawn_order = Vec.create ();
      next_msg_id = msg_id_base;
      msg_id_stride;
      remote_route = None;
      hooks = None;
      hope_primitive_parks = 0;
      resume_disp = (fun _ _ _ -> ());
      next_ticket = -2;
      acquire_disp = (fun _ _ _ -> ());
      hm;
      n_ckpt_live = 0;
      n_resident = 0;
      n_journal = 0;
    }
  in
  t.resume_disp <- (fun _eng pidi gen -> handle_resume t pidi gen);
  t.acquire_disp <- (fun _eng pidi seq -> handle_acquire_timeout t pidi seq);
  Network.set_dispatcher t.net (fun ~dst ~src env ->
      dispatch_delivery t ~dst ~src env);
  t

(* ------------------------------------------------------------------ *)
(* Cross-shard transport                                               *)
(* ------------------------------------------------------------------ *)

let set_remote_route t route = t.remote_route <- Some route
let clear_remote_route t = t.remote_route <- None

let deliver_remote t ?(delay = 0.0) env =
  if delay < 0.0 then invalid_arg "Scheduler.deliver_remote: negative delay";
  let dst = Proc_id.to_int env.Envelope.dst in
  let src = Proc_id.to_int env.Envelope.src in
  Engine.schedule t.eng ~delay (fun _ -> dispatch_delivery t ~dst ~src env)
  |> ignore

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let status t pid =
  match find_proc t pid with
  | { state = Terminated_st; _ } -> Terminated
  | { state = Waiting _ | Acquiring _; _ } -> Blocked
  | { state = Runnable _; _ } -> Running

let user_pids t = Vec.to_list t.spawn_order

let all_terminated t =
  let ok = ref true in
  Vec.iter
    (fun pid ->
      match Vec.get t.entities (Proc_id.to_int pid) with
      | User_proc p -> if p.state <> Terminated_st then ok := false
      | Native_actor _ -> ())
    t.spawn_order;
  !ok

let completion_time t pid = (find_proc t pid).completed_at

let primitive_parks t = t.hope_primitive_parks

let arrivals_resident t pid = Vec.length (find_proc t pid).arrivals

let open_checkpoints t pid = Journal.segments (find_proc t pid).journal

let journal_entries t pid = Journal.entries (find_proc t pid).journal

(* ------------------------------------------------------------------ *)
(* Rollback facility                                                   *)
(* ------------------------------------------------------------------ *)

let rollback t pid ~target ~rolled ~cause =
  let p = find_proc t pid in
  let entries_before = Journal.entries p.journal in
  (* One forward walk over the journal suffix owned by the rolled
     intervals — cost proportional to the work being undone, never to
     the mailbox or to process lifetime. Consumption claims flip back to
     [Not_consumed]; journalled sends are retracted with Cancel (the
     re-execution may send them again, and nothing else guarantees the
     originals die: their tags need not contain this rollback's cause).
     The walk is chronological, so the Cancel wire order is identical to
     the eager implementation's. *)
  let result =
    Journal.rollback_to p.journal target
      ~consume:(fun a ->
        match a.consumption with
        | Consumed_by _ -> a.consumption <- Not_consumed
        | Consumed_definite | Not_consumed -> ())
      ~send:(fun ~msg_id ~dst ->
        Metrics.incr t.hm.c_cancels_sent;
        ignore
          (transmit t ~src:pid ~dst:(Proc_id.of_int dst)
             (Envelope.Cancel { msg_id })
            : int))
  in
  let checkpoint, dropped_segs =
    match result with
    | Some r -> r
    | None ->
      invalid_arg
        (Printf.sprintf "Scheduler.rollback: no checkpoint for %s"
          (Interval_id.to_string target))
  in
  t.n_ckpt_live <- t.n_ckpt_live - dropped_segs;
  t.n_journal <- t.n_journal - (entries_before - Journal.entries p.journal);
  (* At most one arrival dies with the rollback, and the two causes are
     mutually exclusive: a [Message_cancelled] retraction kills the
     cancelled input unconditionally (an id-index hit), while an
     [Assumption_denied] kills the checkpoint's trigger only when the
     trigger itself carried the denied assumption (its data was
     predicated on a falsehood; the rolled-back sender re-sends if
     appropriate — a dependency acquired elsewhere leaves the innocent
     message consumable by the re-execution). Both are O(1) now: no
     mailbox scan. *)
  (match (cause, checkpoint) with
  | Message_cancelled msg_id, _ -> (
    match Hashtbl.find_opt p.by_msg_id msg_id with
    | Some a -> mark_dropped p a
    | None -> ())
  | Assumption_denied x, Recv_checkpoint { trigger = Some a; _ } ->
    if Aid.Set.mem x (Envelope.tags a.env) then mark_dropped p a
  | (Assumption_denied _ | Assumption_revoked), _ -> ());
  let resume_prog =
    match checkpoint with
    | Guess_checkpoint { aid; k } -> (
      (* Only this assumption's own denial makes the guess return false; a
         rollback caused by an inherited or replacement-chain dependency,
         a revoked rewiring, or a cancelled input says nothing about it,
         so the guess itself re-executes and resolves against the
         assumption's actual fate. *)
      match cause with
      | Assumption_denied x when Aid.equal x aid -> k false
      | Assumption_denied _ | Assumption_revoked | Message_cancelled _ ->
        Program.Bind (Program.Guess aid, k))
    | Recv_checkpoint { resume; trigger = _ } -> resume
  in
  (* A rollback withdraws any queued ticket (the timeout for it, if it
     later fires, finds a different state and no-ops). Held grants are
     deliberately {e kept}: a rolled-back holder is exactly the process
     that needs its exclusive window for the retry — it releases
     explicitly when the re-execution reaches {!Program.release}, or on
     termination. *)
  (match p.state with
  | Acquiring { ticket; aid; _ } ->
    send_wire t ~src:pid ~dst:(Aid.to_proc aid) (Wire.Abort { iid = ticket })
  | Runnable _ | Waiting _ | Terminated_st -> ());
  if p.state = Terminated_st then p.completed_at <- None;
  Metrics.incr t.hm.c_rollbacks;
  Metrics.observe_int t.hm.h_rollback_depth (List.length rolled);
  sync_storage_gauges t;
  make_runnable t p ~delay:t.cfg.rollback_cost resume_prog

let release_interval t pid iid =
  let p = find_proc t pid in
  let entries_before = Journal.entries p.journal in
  (* Finalize releases the oldest segment: its checkpoint can never be a
     rollback target again (rollback needs a live older interval, and
     there is none), its send records are definite, and its consumption
     claims become definite — which also makes those arrivals
     reclaimable by the next compaction epoch. This is the checkpoint-GC
     rule: storage dies exactly when the paper's finalize rule says the
     speculation does. *)
  let released =
    Journal.release_oldest p.journal iid
      ~consume:(fun a ->
        match a.consumption with
        | Consumed_by _ -> mark_definite p a
        | Consumed_definite | Not_consumed -> ())
  in
  if released then begin
    t.n_ckpt_live <- t.n_ckpt_live - 1;
    t.n_journal <- t.n_journal - (entries_before - Journal.entries p.journal);
    sync_storage_gauges t;
    purge_orphaned_cancels t p;
    maybe_compact t p
  end

let run ?until ?max_events t = Engine.run ?until ?max_events t.eng
