(** The process scheduler: runs {!Program} processes over the simulated
    network, and provides the checkpoint/rollback facility the HOPE
    algorithm requires.

    The scheduler executes each process's instruction stream inline until
    the process parks — on a {!Program.Recv} with no matching message, on a
    {!Program.Compute}, or on termination. HOPE instructions are delegated
    to a pluggable {!hooks} record installed by the HOPE runtime
    ([Hope_core.Runtime]); without hooks the substrate is an ordinary
    message-passing system and HOPE instructions raise.

    {b Checkpoints.} Executing [guess] captures the boolean continuation;
    consuming a message with a non-empty tag captures the receive itself.
    Rollback (driven by the runtime when an AID process sends a Rollback
    message) restores the checkpoint of the target interval: messages
    consumed by rolled-back intervals become available again, the trigger
    message of a denied receive-interval is dropped (its data was predicated
    on a now-false assumption; the rolled-back sender re-sends if
    appropriate), and the process resumes — from [guess] with [false], or
    from the receive.

    {b Storage.} Speculative state is incremental, not eager. Each
    process keeps a pooled undo {!Journal} segmented by interval: a
    consumption claim or a speculative send appends one record to the
    newest segment, rollback walks only the suffix being undone, and
    finalize ({!release_interval}) drops the oldest segment whole —
    checkpoints are garbage-collected exactly when the finalize rule
    makes them unreachable. Arrivals that are dropped or definitively
    consumed are referenced by no live segment and are evicted from the
    mailbox by order-preserving epoch compaction (count-triggered, so
    deterministic), bounding resident mailbox size by open speculation
    rather than by messages ever received. The gauges [hope.ckpt_live],
    [hope.arrivals_resident], and [hope.journal_depth] export the three
    totals live.

    {b Wait-freedom.} Only [Recv] may park a process. The scheduler counts
    every park in the [sched.parks] metric and every HOPE instruction in
    [hope.primitive_execs]; the invariant "HOPE primitives never park" is
    checked by tests via {!primitive_parks}, which is structurally always
    zero.

    {b Pessimistic acquisition} (DESIGN.md §10). A [guess] on an AID the
    runtime has escalated is routed by {!guess_decision.Acquire} into the
    AID's FIFO acquisition queue: the process parks on a fresh {e ticket}
    (a negative-sequence interval id — no speculative interval, no
    checkpoint), and resumes with [true] on a Grant (holding the AID
    until {!Program.release} or termination — a rollback keeps the grant,
    so the retry runs inside its exclusive window) or [false] on an
    Abort or on the virtual-time timeout that withdraws the ticket —
    every acquire completes, so the park is bounded, counted in
    [hope.acquire_waits] / [hope.acquire_timeouts] rather than in
    [primitive_parks]. *)

open Hope_types

type t

exception Process_failure of { pid : Proc_id.t; name : string; exn : exn }
(** An instruction of the named process raised. *)

exception Fuel_exhausted of { pid : Proc_id.t; name : string }
(** The process executed more zero-cost instructions in one activation
    than the configured fuel allows — a non-terminating pure loop. *)

(** Per-instruction virtual-time costs (seconds). Zero costs execute
    inline; positive costs advance the process's virtual time. *)
type config = {
  send_cost : float;  (** library + kernel cost to issue a send *)
  recv_cost : float;  (** cost to consume a delivered message *)
  primitive_cost : float;  (** local bookkeeping cost of a HOPE primitive *)
  rollback_cost : float;  (** cost to restore a checkpoint *)
  spawn_cost : float;  (** delay before a spawned process first runs *)
  fuel : int;  (** max zero-cost instructions per activation, to catch
                   non-terminating pure loops deterministically *)
}

val free_config : config
(** All costs zero — pure algorithm studies. *)

val epoch_1995_config : config
(** Costs calibrated to the prototype's era (§4: PVM on UNIX
    workstations): send 50 µs, recv 30 µs, primitive 20 µs, checkpoint
    restore 1 ms, spawn 2 ms. *)

(** Why an interval is being rolled back — it determines how the
    checkpoint resumes and which messages are dropped. *)
type rollback_cause =
  | Assumption_denied of Aid.t
      (** the AID's denial: a guess on exactly this AID resumes [false];
          trigger messages tagged with it are dropped *)
  | Assumption_revoked
      (** the interval's dependency rewiring went through a revoked
          speculative affirm: nothing is known false — the interval simply
          re-executes (a guess re-guesses, a receive re-consumes) *)
  | Message_cancelled of int
      (** the consumed message was retracted by its rolled-back sender:
          the message is dropped, and the interval re-executes (a guess
          re-guesses — its assumption was never judged) *)

(** The runtime's verdict on a message about to be consumed. *)
type implicit_decision =
  | Accept of Interval_id.t option
      (** deliver; [Some iid] is the implicit-guess interval begun for a
          tagged message, [None] means no new interval *)
  | Reject
      (** the message is known-dead (a tag AID already denied): drop it
          without delivering *)

(** The runtime's ruling on an explicit [guess]. *)
type guess_decision =
  | Speculate of Interval_id.t
      (** an interval was begun; the guess returns [true] and the id's
          checkpoint captures the boolean continuation *)
  | Pessimistic
      (** an installed governor throttled the assumption: the guess
          returns [false] immediately — the program takes its safe
          (pessimistic) branch with no interval, checkpoint, or AID
          round trip. Counted in [hope.guesses_gated]. *)
  | Acquire of { bound : float }
      (** the AID is escalated to queued acquisition: park the process
          on a fresh ticket in the AID's FIFO queue, bounded by [bound]
          virtual seconds. Counted in [hope.acquire_waits]. *)

type hooks = {
  h_tags : Proc_id.t -> Aid.Set.t;
      (** dependency tag for an outgoing user message *)
  h_current : Proc_id.t -> Interval_id.t option;
      (** the process's newest live speculative interval *)
  h_aid_init : Proc_id.t -> Aid.t;
  h_guess : Proc_id.t -> Aid.t -> guess_decision;
      (** begin an explicit-guess interval (or refuse to) *)
  h_send_delay : Proc_id.t -> float;
      (** extra virtual-time cost charged to a user-level [Send] — the
          governor's back-pressure actuator. Must return [0.0] when no
          governor is installed (the scheduler then keeps the original
          cost expression, allocation-free). A positive delay is counted
          in [hope.send_stalls]. *)
  h_implicit : Proc_id.t -> Envelope.t -> implicit_decision;
      (** called when a user message is about to be consumed *)
  h_affirm : Proc_id.t -> Aid.t -> unit;
  h_deny : Proc_id.t -> Aid.t -> unit;
  h_free_of : Proc_id.t -> Aid.t -> unit;
  h_control : self:Proc_id.t -> src:Proc_id.t -> Wire.t -> unit;
      (** a control envelope arrived for a user process *)
  h_cancelled : self:Proc_id.t -> iid:Interval_id.t -> msg_id:int -> unit;
      (** the message [msg_id], consumed by live interval [iid], was
          retracted by its rolled-back sender: the runtime must roll
          [iid] (and its successors) back with [Message_cancelled] *)
  h_spawned : Proc_id.t -> unit;
  h_spawn_child : parent:Proc_id.t -> child:Proc_id.t -> Interval_id.t option;
      (** called after a [Spawn] instruction: a speculative parent's
          dependencies flow to the child (spawning is causally a message);
          returning an interval id makes the child's whole body its
          checkpoint *)
  h_terminated : Proc_id.t -> unit;
}

val create :
  engine:Hope_sim.Engine.t ->
  ?default_latency:Hope_net.Latency.t ->
  ?fifo:bool ->
  ?msg_id_base:int ->
  ?msg_id_stride:int ->
  ?config:config ->
  unit ->
  t
(** [msg_id_base]/[msg_id_stride] (defaults 0/1) stripe the message-id
    sequence: ids are [base, base+stride, base+2*stride, ...]. A sharded
    deployment gives each shard's scheduler [base = shard_id, stride =
    shards] so envelope ids stay globally unique when messages cross
    shard mailboxes (Cancel matching keys on them).
    @raise Invalid_argument unless [0 <= msg_id_base < msg_id_stride]. *)

val engine : t -> Hope_sim.Engine.t
val network : t -> Envelope.t Hope_net.Network.t
val config : t -> config
val set_hooks : t -> hooks -> unit

(** {1 Cross-shard transport}

    The shard runtime partitions the process space across schedulers
    (one per domain). Egress: {!set_remote_route} intercepts
    transmissions whose destination lives on another shard {e after}
    metrics/observability accounting but {e instead of} local network
    dispatch — the route callback hands the envelope to the shard
    mailbox. Ingress: the receiving shard calls {!deliver_remote},
    which re-enters the normal delivery path (mailbox insert, implicit
    guesses, straggler-driven rollback through the journal machinery)
    via the engine's event spine. *)

val set_remote_route :
  t -> (src:Proc_id.t -> dst:Proc_id.t -> Envelope.t -> bool) -> unit
(** Install the egress filter. Return [true] to take ownership of the
    envelope (it will NOT be dispatched locally); [false] to let it
    flow through the local network unchanged. *)

val clear_remote_route : t -> unit

val deliver_remote : t -> ?delay:float -> Envelope.t -> unit
(** Inject an envelope that arrived from another shard, [delay] virtual
    seconds from now (default 0: next event-spine turn). The envelope's
    own [src]/[dst] are used; its id must be globally unique (see
    [msg_id_base]). *)

(** {1 Spawning} *)

val spawn : t -> ?node:int -> name:string -> unit Program.t -> Proc_id.t
(** Create a user process; it first runs after [spawn_cost]. *)

val spawn_actor :
  t ->
  ?node:int ->
  name:string ->
  (self:Proc_id.t -> src:Proc_id.t -> Envelope.t -> unit) ->
  Proc_id.t
(** Create a native actor (used for AID processes): every delivered
    envelope is handed to the callback at arrival time. *)

(** {1 Messaging from outside programs} *)

val send_wire : t -> src:Proc_id.t -> dst:Proc_id.t -> Wire.t -> unit
(** Send a control message (used by the HOPE runtime and AID actors). *)

val send_user : t -> src:Proc_id.t -> dst:Proc_id.t -> tags:Aid.Set.t -> Value.t -> unit
(** Inject a user message (used by tests and drivers). *)

(** {1 Introspection} *)

type status =
  | Running  (** runnable or computing *)
  | Blocked  (** parked on a receive or queued on an escalated AID *)
  | Terminated

val status : t -> Proc_id.t -> status
val name_of : t -> Proc_id.t -> string
val user_pids : t -> Proc_id.t list
val all_terminated : t -> bool
(** All user processes (not actors) have terminated. *)

val completion_time : t -> Proc_id.t -> float option
(** Virtual time at which the process most recently terminated. *)

val primitive_parks : t -> int
(** Number of times a HOPE primitive parked its process — the wait-free
    invariant requires this to be zero, always. *)

val arrivals_resident : t -> Proc_id.t -> int
(** Arrivals currently resident in the process's mailbox (live plus
    not-yet-compacted reclaimable ones). With compaction this is bounded
    by open speculation, not by messages ever received. *)

val open_checkpoints : t -> Proc_id.t -> int
(** Live checkpoints — equivalently, open journal segments — of the
    process. *)

val journal_entries : t -> Proc_id.t -> int
(** Undo records currently journalled for the process's live
    intervals. *)

val held_grants : t -> Proc_id.t -> (Aid.t * Interval_id.t) list
(** Pessimistic grants the process currently holds, newest first. *)

(** {1 Pessimistic acquisition (called by the HOPE runtime)} *)

val resolve_acquire :
  t -> Proc_id.t -> src:Proc_id.t -> ticket:Interval_id.t -> granted:bool -> unit
(** A Grant ([granted = true]) or Abort arrived from AID process [src]
    for [ticket]. If the process is still parked on that exact ticket it
    resumes — [true] holding the grant, [false] on the pessimistic
    branch. Otherwise the message is stale (the timeout withdrew the
    ticket, or the process rolled back, while the reply was in flight):
    a stale Grant is declined with a Release back to [src] so the AID
    frees for its next waiter; a stale Abort needs no answer. *)

(** {1 Checkpoint/rollback facility (called by the HOPE runtime)} *)

val rollback :
  t ->
  Proc_id.t ->
  target:Interval_id.t ->
  rolled:Interval_id.t list ->
  cause:rollback_cause ->
  unit
(** Roll the process back to the checkpoint of [target]. [rolled] must
    list every live interval from [target] (inclusive) to the end of the
    history; their message consumptions are undone and their outgoing
    user messages are retracted with {!Envelope.Cancel} (the re-execution
    may re-send them) by replaying the journal suffix those intervals
    own — cost proportional to the work undone. How the checkpoint
    resumes and whether the trigger message is dropped follow [cause] —
    see {!rollback_cause}. A terminated process is revived. *)

val release_interval : t -> Proc_id.t -> Interval_id.t -> unit
(** Release a finalized interval's storage in one stroke: its checkpoint,
    its send records (its messages are definite and can no longer be
    retracted), and its consumption claims (the consumed arrivals become
    definite and thus reclaimable by mailbox compaction). The interval
    must be the process's oldest live one — finalize proceeds from the
    front of the history — and the call is a no-op when the interval
    holds no storage. *)

(** {1 Running} *)

val run : ?until:float -> ?max_events:int -> t -> Hope_sim.Engine.stop_reason
(** Drive the engine. *)
