(* Lock-free SPSC bounded ring for one directed shard pair.

   Exactly one producer domain pushes and exactly one consumer domain
   pops, so a slot array plus two monotone int cursors suffice — no CAS
   loops, no locks, and (unlike an MPMC queue) no per-element
   allocation. Publication safety comes from the OCaml 5 memory model:
   the producer writes the slot *then* [Atomic.set]s [tail]; a consumer
   that observes the new [tail] via [Atomic.get] is guaranteed to see
   the slot write (release/acquire pairing on the atomic). Symmetrically
   the consumer scrubs the slot with [dummy] before publishing [head],
   so the producer never resurrects a popped element and committed
   payloads don't leak through the ring's floating garbage.

   Cursors are plain tagged ints and never wrap in practice (2^62
   pushes); indices are [cursor land mask]. *)

type 'a t = {
  slots : 'a array;
  mask : int;
  dummy : 'a;
  head : int Atomic.t;  (* next slot to pop; advanced only by consumer *)
  tail : int Atomic.t;  (* next slot to fill; advanced only by producer *)
  mutable hw : int;  (* occupancy high-water; written by producer only *)
}

let create ?(capacity = 2048) ~dummy () =
  if capacity <= 0 then invalid_arg "Mailbox.create: capacity must be positive";
  (* round up to a power of two so index extraction is a mask *)
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    slots = Array.make !cap dummy;
    mask = !cap - 1;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    hw = 0;
  }

let capacity t = t.mask + 1
let high_water t = t.hw

let length t =
  (* racy snapshot; exact only when the caller is producer or consumer *)
  Atomic.get t.tail - Atomic.get t.head

let is_empty t = length t <= 0

let try_push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    t.slots.(tail land t.mask) <- x;
    let occ = tail - head + 1 in
    if occ > t.hw then t.hw <- occ;
    (* release: publishes the slot write above to the consumer *)
    Atomic.set t.tail (tail + 1);
    true
  end

let push t x ~while_waiting =
  while not (try_push t x) do
    while_waiting ();
    Domain.cpu_relax ()
  done

let pop t =
  let head = Atomic.get t.head in
  (* acquire: a tail that covers [head] publishes the slot write *)
  let tail = Atomic.get t.tail in
  if tail - head <= 0 then None
  else begin
    let i = head land t.mask in
    let x = t.slots.(i) in
    t.slots.(i) <- t.dummy;
    Atomic.set t.head (head + 1);
    Some x
  end
