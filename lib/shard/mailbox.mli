(** Lock-free single-producer single-consumer bounded ring.

    One mailbox per {e directed} shard pair carries cross-shard Time
    Warp messages (positive and anti). SPSC keeps it wait-free on both
    ends: the producer owns [tail], the consumer owns [head], and the
    OCaml 5 memory model's release/acquire pairing on [Atomic] cursor
    updates publishes slot writes without locks. FIFO per pair is the
    load-bearing property — an anti-message pushed after its positive
    can never overtake it, which is what lets the shard runtime
    annihilate pending positives with a tombstone table instead of a
    poisoned-id set. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty ring. [capacity] (default 2048)
    is rounded up to a power of two. [dummy] fills vacant slots so
    popped elements don't linger reachable.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Racy size snapshot (exact when called by the producer or consumer
    with the other side quiescent). *)

val high_water : 'a t -> int
(** Peak occupancy observed at push time. Maintained (and exactly
    readable) by the producer; other domains read it post-run. *)

val is_empty : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** Producer only. [false] iff the ring is full. *)

val push : 'a t -> 'a -> while_waiting:(unit -> unit) -> unit
(** Producer only. Spins until space frees, calling [while_waiting]
    between attempts — the shard runtime uses it to unload its own
    inbound rings, which breaks the two-shards-pushing-into-each-other
    deadlock. *)

val pop : 'a t -> 'a option
(** Consumer only. *)
