(* Sharded Time Warp executor across OCaml 5 domains.

   The paper's thesis — speculation as the parallelization strategy —
   applied to our own executor: the LP space is partitioned across
   domains by the fixed assignment [lp mod shards] (Context.owner), each
   shard runs its partition optimistically against local virtual time,
   and cross-shard deliveries ride lock-free SPSC rings (Mailbox). A
   delivery below the destination LP's LVT is a straggler: the shard
   rolls that LP back locally (state restore + input requeue +
   anti-messages for its sends), exactly Jefferson's protocol, with no
   barrier and no global coordination on the hot path.

   Commitment is by GVT. Every shard publishes a conservative
   lower bound ("floor") on the virtual time of anything it may still
   send; per-directed-pair cumulative sent/recvd counters account for
   messages in flight. Shard 0 doubles as the GVT coordinator (no
   dedicated domain burning a core): it reads all counters, then all
   floors, then the counters again — if the counters are pairwise equal
   (nothing in flight) and unchanged across the reads, min(floors) is a
   valid GVT. Entries below GVT fossil-collect into per-shard commit
   lists; GVT = +inf with stable counters means global quiescence and
   stops the run.

   Soundness of the floor protocol (the part worth stating precisely):
   - a shard publishes its floor at the top of its loop, BEFORE popping
     the minimum pending message, so the floor covers the event it is
     about to execute; model outputs have recv_ts > input ts >= floor;
   - a receiver LOWERS its floor (Atomic min) the moment it takes a
     message off a ring, BEFORE bumping the pair's recvd counter. So if
     the coordinator's stable counter reads cover that recvd bump, the
     floor read between them already reflects the arrival; if they
     don't, the counters differ and the round aborts. Rollback requeues
     only entries with recv_ts >= the arrival's recv_ts, so the lowered
     floor covers those too.

   Determinism: with the fixed assignment and per-shard Context RNG
   streams, Time Warp commits exactly the sequential event set — the
   merged trace sorts commit records by a key (recv_ts, dst_lp,
   send_ts, src_lp, payload digest) that is independent of the domain
   count, so the chrome trace is byte-identical at 1, 2, or 4 domains
   (pinned in CI). *)

module Engine = Hope_sim.Engine
module Equeue = Hope_sim.Equeue
module Context = Hope_sim.Context
module Metrics = Hope_sim.Metrics
module Recorder = Hope_obs.Recorder
module Event = Hope_obs.Event
module Monitor = Hope_obs.Monitor
module Proc_id = Hope_types.Proc_id
module Timewarp = Hope_timewarp.Timewarp

type 'p message = {
  mid : int;  (* globally unique: shard_id + k * shards *)
  src_lp : int;  (* -1 for seed injections *)
  dst_lp : int;
  send_ts : float;
  recv_ts : float;
  payload : 'p;
  anti : bool;
  (* Rollback provenance, meaningful on anti-messages only: the root
     cause of the rollback that generated this anti — the straggler
     positive that started the cascade. Secondary rollbacks triggered by
     this anti inherit it, so every wasted event traces to one root.
     Flat ints (-1 when absent) keep the hot-path message unboxed-ish:
     no option allocation per send. *)
  root_shard : int;
  root_mid : int;
  root_send_ts : float;
}

type provenance = { p_shard : int; p_mid : int; p_send_ts : float }

type commit = {
  c_recv_ts : float;
  c_dst_lp : int;
  c_src_lp : int;
  c_send_ts : float;
  c_digest : int;
}

let commit_compare a b =
  let c = Float.compare a.c_recv_ts b.c_recv_ts in
  if c <> 0 then c
  else
    let c = compare a.c_dst_lp b.c_dst_lp in
    if c <> 0 then c
    else
      let c = Float.compare a.c_send_ts b.c_send_ts in
      if c <> 0 then c
      else
        let c = compare a.c_src_lp b.c_src_lp in
        if c <> 0 then c else compare a.c_digest b.c_digest

type ('s, 'p) spec = {
  model : ('s, 'p) Timewarp.model;
  n_lps : int;
  horizon : float;
  seeds : (int * float * 'p) list;
  digest : 'p -> int;
  dummy : 'p;
}

type 's result = {
  states : 's array;
  commits : commit array;
  processed : int;
  committed : int;
  rollbacks : int;
  rolled_back : int;
  stragglers : int;
  anti_messages : int;
  annihilations : int;
  remote_sends : int;
  full_spins : int;
  max_rollback_depth : int;
  gvt_rounds : int;
  domains : int;
  engines : Engine.t array;
  samples : Monitor.shard_sample list;
  wasted_by_root : (provenance * int) list;
}

(* ---------------------------------------------------------------- *)
(* Shared fabric: everything the domains touch concurrently.         *)

(* Virtual times as integer nanoseconds for the Atomic floor/GVT
   cells (no Atomic float in the stdlib). Round DOWN so a floor never
   overstates the bound. *)
let ns_of ts =
  if ts >= float_of_int max_int /. 1e9 then max_int
  else int_of_float (ts *. 1e9)

type 'p fabric = {
  shards : int;
  rings : 'p message Mailbox.t array;  (* rings.(src * shards + dst) *)
  sent : int Atomic.t array;  (* cumulative, per directed pair *)
  recvd : int Atomic.t array;
  floors : int Atomic.t array;  (* per shard; max_int = idle *)
  gvt_ns : int Atomic.t;
  stop : bool Atomic.t;
}

type ('s, 'p) entry = {
  e_msg : 'p message;
  state_before : 's;
  lvt_before : float;
  sent_msgs : 'p message list;
}

type ('s, 'p) lp = {
  gid : int;
  mutable st : 's;
  mutable lvt : float;
  mutable done_ : ('s, 'p) entry list;  (* newest first, recv_ts descending *)
}

type stats = {
  mutable processed : int;
  mutable rollbacks : int;
  mutable rolled_back : int;
  mutable stragglers : int;
  mutable anti_messages : int;
  mutable annihilations : int;
  mutable remote_sends : int;
  mutable full_spins : int;
  mutable max_rollback : int;
  mutable gvt_rounds : int;
}

type ('s, 'p) shard = {
  ctx : Context.t;
  id : int;
  spec : ('s, 'p) spec;
  fab : 'p fabric;
  lps : ('s, 'p) lp option array;  (* by global LP id; Some iff local *)
  pending : 'p message Equeue.t;
  tombstones : (int, unit) Hashtbl.t;
      (* mids of pending positives annihilated by an anti that arrived
         first in processing order; Equeue has no removal, so the
         positive is skipped at pop. Pair-FIFO rings guarantee the
         positive is already queued when its anti is handled. *)
  overflow : (int * 'p message) Queue.t;
      (* (pair index, message): unloaded from inbound rings while this
         shard was itself blocked pushing; drained FIFO before the
         rings, preserving per-pair order *)
  stats : stats;
  recorder : Recorder.t;  (* per-domain diagnostics (Engine.obs ctx) *)
  wasted : (int, provenance * int ref) Hashtbl.t;
      (* root mid -> (root, processed entries undone on its account);
         mids are globally unique (striped), so the key alone suffices *)
  mutable samples_rev : Monitor.shard_sample list;
  mutable since_sample : int;
  mutable next_mid : int;
  mutable last_gvt_ns : int;
  mutable commits : commit list;
}

let pair fab ~src ~dst = (src * fab.shards) + dst

let fresh_mid sh =
  let m = sh.id + (sh.next_mid * sh.fab.shards) in
  sh.next_mid <- sh.next_mid + 1;
  m

let local_lp sh gid =
  match sh.lps.(gid) with
  | Some lp -> lp
  | None -> invalid_arg "Shard: message routed to non-local LP"

(* Atomic min on a floor cell. Only this shard raises its own floor (in
   publish_floor); concurrent writers only lower, so a CAS loop settles
   fast. *)
let lower_floor sh ts =
  let cell = sh.fab.floors.(sh.id) in
  let v = ns_of ts in
  let rec go () =
    let cur = Atomic.get cell in
    if v < cur && not (Atomic.compare_and_set cell cur v) then go ()
  in
  go ()

let publish_floor sh =
  let v =
    if Equeue.is_empty sh.pending then max_int else ns_of (Equeue.min_prio sh.pending)
  in
  Atomic.set sh.fab.floors.(sh.id) v

(* Unload inbound rings without processing — safe to call while blocked
   mid-push (even mid-event): no rollback can run under our feet. *)
let unload_inboxes sh =
  let fab = sh.fab in
  for src = 0 to fab.shards - 1 do
    if src <> sh.id then begin
      let p = pair fab ~src ~dst:sh.id in
      match Mailbox.pop fab.rings.(p) with
      | Some m ->
          lower_floor sh m.recv_ts;
          Queue.add (p, m) sh.overflow
      | None -> ()
    end
  done

let remote_push sh ~dst_shard m =
  let fab = sh.fab in
  let p = pair fab ~src:sh.id ~dst:dst_shard in
  (* sent is bumped BEFORE the ring push: while the message is in
     flight the pair's counters differ, which vetoes any GVT round that
     could otherwise miss it. *)
  Atomic.incr fab.sent.(p);
  Mailbox.push fab.rings.(p) m ~while_waiting:(fun () ->
      (* every retry is one full-ring spin: the back-pressure signal the
         monitor's Mailbox_backpressure diagnostic watches *)
      sh.stats.full_spins <- sh.stats.full_spins + 1;
      unload_inboxes sh)

(* ---------------------------------------------------------------- *)
(* Rollback (Jefferson): restore the oldest undone snapshot, requeue
   the undone inputs, send anti-messages for the undone outputs.       *)

(* Charge [n] undone entries to the cascade's root straggler. *)
let attribute sh (root : provenance) n =
  match Hashtbl.find_opt sh.wasted root.p_mid with
  | Some (_, r) -> r := !r + n
  | None -> Hashtbl.add sh.wasted root.p_mid (root, ref n)

let rec rollback sh lp ~upto ~drop_mid ~root ~secondary =
  let rec split undone = function
    | e :: tl when e.e_msg.recv_ts >= upto -> split (e :: undone) tl
    | rest -> (undone, rest)
  in
  (* [undone] comes back oldest-first *)
  let undone, remaining = split [] lp.done_ in
  match undone with
  | [] -> ()
  | oldest :: _ ->
      let lvt_before = lp.lvt in
      lp.done_ <- remaining;
      lp.st <- oldest.state_before;
      lp.lvt <- oldest.lvt_before;
      let n = List.length undone in
      sh.stats.rollbacks <- sh.stats.rollbacks + 1;
      sh.stats.rolled_back <- sh.stats.rolled_back + n;
      if n > sh.stats.max_rollback then sh.stats.max_rollback <- n;
      attribute sh root n;
      if Recorder.enabled sh.recorder then
        Recorder.emit sh.recorder ~time:upto ~proc:(Proc_id.of_int lp.gid)
          (Event.Shard_straggler
             {
               lp = lp.gid;
               lvt = lvt_before;
               root_shard = root.p_shard;
               root_mid = root.p_mid;
               root_send_ts = root.p_send_ts;
               rolled = n;
               secondary;
             });
      List.iter
        (fun e ->
          (match drop_mid with
          | Some d when e.e_msg.mid = d ->
              (* the cancelled input meets its anti here: one
                 positive/anti pair annihilated in executed form *)
              sh.stats.annihilations <- sh.stats.annihilations + 1
          | _ -> Equeue.push sh.pending ~priority:e.e_msg.recv_ts e.e_msg);
          List.iter (fun m -> send_anti sh ~root m) e.sent_msgs)
        undone

and send_anti sh ~root m =
  sh.stats.anti_messages <- sh.stats.anti_messages + 1;
  let am =
    {
      m with
      anti = true;
      root_shard = root.p_shard;
      root_mid = root.p_mid;
      root_send_ts = root.p_send_ts;
    }
  in
  let dst_shard = Context.owner ~shards:sh.fab.shards m.dst_lp in
  if dst_shard = sh.id then handle_anti sh am
  else remote_push sh ~dst_shard am

and handle_anti sh am =
  let lp = local_lp sh am.dst_lp in
  if List.exists (fun e -> e.e_msg.mid = am.mid) lp.done_ then
    (* already executed: secondary rollback, dropping the cancelled
       input instead of requeueing it; the cascade keeps the anti's root *)
    rollback sh lp ~upto:am.recv_ts ~drop_mid:(Some am.mid)
      ~root:
        { p_shard = am.root_shard; p_mid = am.root_mid;
          p_send_ts = am.root_send_ts }
      ~secondary:true
  else
    (* FIFO per pair (ring or local synchronous call) means the positive
       is already in pending: tombstone it for annihilation at pop. *)
    Hashtbl.replace sh.tombstones am.mid ()

(* Insert a positive message bound for a local LP, rolling back first if
   it's a straggler — the message itself is the cascade's root cause. *)
let enqueue_local sh m =
  let lp = local_lp sh m.dst_lp in
  if m.recv_ts < lp.lvt then begin
    sh.stats.stragglers <- sh.stats.stragglers + 1;
    let root =
      {
        p_shard =
          (if m.src_lp >= 0 then Context.owner ~shards:sh.fab.shards m.src_lp
           else -1);
        p_mid = m.mid;
        p_send_ts = m.send_ts;
      }
    in
    rollback sh lp ~upto:m.recv_ts ~drop_mid:None ~root ~secondary:false
  end;
  Equeue.push sh.pending ~priority:m.recv_ts m

(* Drain the overflow queue then the inbound rings, processing each
   message (straggler checks, annihilation). Only called from the loop
   top — never mid-event — so rollbacks here are safe. *)
let drain_inboxes sh =
  let fab = sh.fab in
  let handle p m =
    lower_floor sh m.recv_ts;
    if m.anti then handle_anti sh m else enqueue_local sh m;
    (* recvd bumps AFTER the message is fully accounted (floor lowered,
       inserted or annihilated): a stable GVT round implies every
       counted arrival is visible in the floors. *)
    Atomic.incr fab.recvd.(p)
  in
  while not (Queue.is_empty sh.overflow) do
    let p, m = Queue.pop sh.overflow in
    handle p m
  done;
  for src = 0 to fab.shards - 1 do
    if src <> sh.id then begin
      let p = pair fab ~src ~dst:sh.id in
      let rec go () =
        match Mailbox.pop fab.rings.(p) with
        | Some m ->
            handle p m;
            go ()
        | None -> ()
      in
      go ()
    end
  done

(* ---------------------------------------------------------------- *)
(* Event execution.                                                  *)

let process sh m =
  let lp = local_lp sh m.dst_lp in
  let state_before = lp.st and lvt_before = lp.lvt in
  let st', outputs = sh.spec.model.Timewarp.handle ~lp:lp.gid ~ts:m.recv_ts lp.st m.payload in
  lp.st <- st';
  lp.lvt <- m.recv_ts;
  sh.stats.processed <- sh.stats.processed + 1;
  let sent =
    List.filter_map
      (fun (dst, ts', p) ->
        if ts' <= m.recv_ts then
          invalid_arg "Shard: output timestamp must exceed input timestamp";
        if ts' > sh.spec.horizon then None
        else begin
          let out =
            {
              mid = fresh_mid sh;
              src_lp = lp.gid;
              dst_lp = dst;
              send_ts = m.recv_ts;
              recv_ts = ts';
              payload = p;
              anti = false;
              root_shard = -1;
              root_mid = -1;
              root_send_ts = 0.0;
            }
          in
          let dsh = Context.owner ~shards:sh.fab.shards dst in
          if dsh = sh.id then enqueue_local sh out
          else begin
            sh.stats.remote_sends <- sh.stats.remote_sends + 1;
            remote_push sh ~dst_shard:dsh out
          end;
          Some out
        end)
      outputs
  in
  lp.done_ <- { e_msg = m; state_before; lvt_before; sent_msgs = sent } :: lp.done_

(* ---------------------------------------------------------------- *)
(* Per-shard observability samples.                                   *)

(* Taken at every GVT advance AND every [sample_every] processed events
   — the second cadence is what lets the monitor's Gvt_stall detector
   see a shard burning events while GVT is frozen (a GVT-advance-only
   tap would go silent exactly when it matters). Cumulative counters, so
   cost is O(local LPs + shards) per sample, not per event. *)
let sample_every = 2048

let take_sample sh =
  let fab = sh.fab in
  let lvt =
    Array.fold_left
      (fun acc -> function Some lp -> Float.max acc lp.lvt | None -> acc)
      neg_infinity sh.lps
  in
  let occ = ref 0 and peak = ref 0 in
  for other = 0 to fab.shards - 1 do
    if other <> sh.id then begin
      occ := !occ + max 0 (Mailbox.length fab.rings.(pair fab ~src:other ~dst:sh.id));
      let hw = Mailbox.high_water fab.rings.(pair fab ~src:sh.id ~dst:other) in
      if hw > !peak then peak := hw
    end
  done;
  let lvt = if lvt = neg_infinity then 0.0 else lvt in
  let g_ns = Atomic.get fab.gvt_ns in
  let s : Monitor.shard_sample =
    {
      sh_shard = sh.id;
      (* max_int is the quiescence sentinel (all floors idle): by then
         everything committed, so GVT has caught up to local time *)
      sh_gvt = (if g_ns = max_int then lvt else float_of_int g_ns /. 1e9);
      sh_lvt = lvt;
      sh_events = sh.stats.processed;
      sh_stragglers = sh.stats.rollbacks;
      sh_rolled = sh.stats.rolled_back;
      sh_rollback_depth = sh.stats.max_rollback;
      sh_annihilations = sh.stats.annihilations;
      sh_full_spins = sh.stats.full_spins;
      sh_mailbox_occ = !occ;
      sh_mailbox_peak = !peak;
    }
  in
  sh.samples_rev <- s :: sh.samples_rev;
  sh.since_sample <- 0

(* Move entries below the GVT floor into the shard's commit list. *)
let collect_fossils sh =
  let g = Atomic.get sh.fab.gvt_ns in
  if g > sh.last_gvt_ns then begin
    sh.last_gvt_ns <- g;
    let committed = ref 0 in
    let hi = ref 0.0 in
    Array.iter
      (function
        | None -> ()
        | Some lp ->
            let keep, fossil =
              List.partition (fun e -> ns_of e.e_msg.recv_ts >= g) lp.done_
            in
            lp.done_ <- keep;
            List.iter
              (fun e ->
                incr committed;
                if e.e_msg.recv_ts > !hi then hi := e.e_msg.recv_ts;
                sh.commits <-
                  {
                    c_recv_ts = e.e_msg.recv_ts;
                    c_dst_lp = e.e_msg.dst_lp;
                    c_src_lp = e.e_msg.src_lp;
                    c_send_ts = e.e_msg.send_ts;
                    c_digest = sh.spec.digest e.e_msg.payload;
                  }
                  :: sh.commits)
              fossil)
      sh.lps;
    if !committed > 0 && Recorder.enabled sh.recorder then begin
      (* max_int is the quiescence sentinel; report the highest committed
         receive time instead of an astronomically large GVT *)
      let gvt_s = if g = max_int then !hi else float_of_int g /. 1e9 in
      Recorder.emit sh.recorder ~time:gvt_s
        ~proc:(Proc_id.of_int sh.id)
        (Event.Gvt_advance { gvt = gvt_s; committed = !committed })
    end;
    take_sample sh
  end

let commit_remaining sh =
  Array.iter
    (function
      | None -> ()
      | Some lp ->
          List.iter
            (fun e ->
              sh.commits <-
                {
                  c_recv_ts = e.e_msg.recv_ts;
                  c_dst_lp = e.e_msg.dst_lp;
                  c_src_lp = e.e_msg.src_lp;
                  c_send_ts = e.e_msg.send_ts;
                  c_digest = sh.spec.digest e.e_msg.payload;
                }
                :: sh.commits)
            lp.done_;
          lp.done_ <- [])
    sh.lps

(* ---------------------------------------------------------------- *)
(* GVT coordination (runs on shard 0's domain, folded into its loop). *)

let try_gvt fab stats =
  let n = Array.length fab.sent in
  let s1 = Array.init n (fun i -> Atomic.get fab.sent.(i)) in
  let r1 = Array.init n (fun i -> Atomic.get fab.recvd.(i)) in
  let floors = Array.init fab.shards (fun i -> Atomic.get fab.floors.(i)) in
  let s2 = Array.init n (fun i -> Atomic.get fab.sent.(i)) in
  let r2 = Array.init n (fun i -> Atomic.get fab.recvd.(i)) in
  let stable = ref true in
  for i = 0 to n - 1 do
    if s1.(i) <> s2.(i) || r1.(i) <> r2.(i) || s1.(i) <> r1.(i) then
      stable := false
  done;
  if not !stable then ()
  else begin
    stats.gvt_rounds <- stats.gvt_rounds + 1;
    let gvt = Array.fold_left min max_int floors in
    if gvt > Atomic.get fab.gvt_ns then Atomic.set fab.gvt_ns gvt;
    if gvt = max_int then Atomic.set fab.stop true
  end

(* ---------------------------------------------------------------- *)
(* Per-domain main loop.                                             *)

let shard_loop sh =
  let fab = sh.fab in
  let coordinator = sh.id = 0 in
  let since_gvt = ref 0 in
  while not (Atomic.get fab.stop) do
    drain_inboxes sh;
    collect_fossils sh;
    (* floor covers the message we are about to pop *)
    publish_floor sh;
    if Equeue.is_empty sh.pending then begin
      if coordinator then try_gvt fab sh.stats else Domain.cpu_relax ()
    end
    else begin
      let m = Equeue.pop_min_exn sh.pending in
      if Hashtbl.mem sh.tombstones m.mid then begin
        (* the tombstoned positive meets its anti: pair annihilated *)
        Hashtbl.remove sh.tombstones m.mid;
        sh.stats.annihilations <- sh.stats.annihilations + 1
      end
      else begin
        process sh m;
        sh.since_sample <- sh.since_sample + 1;
        if sh.since_sample >= sample_every then take_sample sh
      end;
      if coordinator then begin
        incr since_gvt;
        if !since_gvt >= 32 then begin
          since_gvt := 0;
          try_gvt fab sh.stats
        end
      end
    end
  done;
  commit_remaining sh

(* ---------------------------------------------------------------- *)
(* Run.                                                              *)

let make_shard ~seed ~domains ~obs_shard spec fab id =
  let obs = match obs_shard with None -> None | Some f -> f id in
  let ctx = Context.make ~seed ?obs ~shards:domains ~shard_id:id () in
  let dummy_msg =
    {
      mid = -1;
      src_lp = -1;
      dst_lp = -1;
      send_ts = 0.0;
      recv_ts = 0.0;
      payload = spec.dummy;
      anti = false;
      root_shard = -1;
      root_mid = -1;
      root_send_ts = 0.0;
    }
  in
  let lps =
    Array.init spec.n_lps (fun gid ->
        if Context.owner ~shards:domains gid = id then
          Some
            {
              gid;
              st = spec.model.Timewarp.init gid;
              lvt = neg_infinity;
              done_ = [];
            }
        else None)
  in
  let sh =
    {
      ctx;
      id;
      spec;
      fab;
      lps;
      pending = Equeue.create ~dummy:dummy_msg ();
      tombstones = Hashtbl.create 64;
      overflow = Queue.create ();
      stats =
        {
          processed = 0;
          rollbacks = 0;
          rolled_back = 0;
          stragglers = 0;
          anti_messages = 0;
          annihilations = 0;
          remote_sends = 0;
          full_spins = 0;
          max_rollback = 0;
          gvt_rounds = 0;
        };
      recorder = Engine.obs (Context.engine ctx);
      wasted = Hashtbl.create 32;
      samples_rev = [];
      since_sample = 0;
      next_mid = 1;
      last_gvt_ns = 0;
      commits = [];
    }
  in
  (* seed injections for this shard's LPs; lvt = -inf so never stragglers *)
  List.iter
    (fun (dst, ts, p) ->
      if Context.owner ~shards:domains dst = id && ts <= spec.horizon then
        Equeue.push sh.pending ~priority:ts
          {
            mid = fresh_mid sh;
            src_lp = -1;
            dst_lp = dst;
            send_ts = 0.0;
            recv_ts = ts;
            payload = p;
            anti = false;
            root_shard = -1;
            root_mid = -1;
            root_send_ts = 0.0;
          })
    spec.seeds;
  sh

let run ?(domains = 1) ?(seed = 42) ?obs_shard spec =
  if domains <= 0 then invalid_arg "Shard.run: domains must be positive";
  if domains > 64 then invalid_arg "Shard.run: more than 64 domains";
  if spec.n_lps <= 0 then invalid_arg "Shard.run: n_lps must be positive";
  let n = domains in
  let dummy_msg =
    {
      mid = -1;
      src_lp = -1;
      dst_lp = -1;
      send_ts = 0.0;
      recv_ts = 0.0;
      payload = spec.dummy;
      anti = false;
      root_shard = -1;
      root_mid = -1;
      root_send_ts = 0.0;
    }
  in
  let fab =
    {
      shards = n;
      rings =
        Array.init (n * n) (fun _ -> Mailbox.create ~dummy:dummy_msg ());
      sent = Array.init (n * n) (fun _ -> Atomic.make 0);
      recvd = Array.init (n * n) (fun _ -> Atomic.make 0);
      floors = Array.init n (fun _ -> Atomic.make 0);
      gvt_ns = Atomic.make 0;
      stop = Atomic.make false;
    }
  in
  let shards = Array.init n (make_shard ~seed ~domains:n ~obs_shard spec fab) in
  let others =
    Array.to_list
      (Array.init (n - 1) (fun i ->
           Domain.spawn (fun () -> shard_loop shards.(i + 1))))
  in
  shard_loop shards.(0);
  List.iter Domain.join others;
  let states =
    Array.init spec.n_lps (fun gid ->
        let owner = Context.owner ~shards:n gid in
        match shards.(owner).lps.(gid) with
        | Some lp -> lp.st
        | None -> assert false)
  in
  let commits =
    Array.of_list (List.concat_map (fun sh -> sh.commits) (Array.to_list shards))
  in
  Array.sort commit_compare commits;
  let sum f = Array.fold_left (fun acc sh -> acc + f sh.stats) 0 shards in
  (* A final sample per shard (post-join, so it reflects quiescence),
     then publish each shard's stats into its engine's metrics registry —
     the per-shard labeled [shard="N"] OpenMetrics families. Runs on the
     joined main domain: no races, zero hot-path cost. The GVT cell still
     holds the quiescence sentinel; pin it to the committed horizon first
     so every shard's closing sample lands on one shared epoch. *)
  let horizon_ts =
    if Array.length commits = 0 then 0.0
    else commits.(Array.length commits - 1).c_recv_ts
  in
  Atomic.set fab.gvt_ns (ns_of horizon_ts);
  Array.iter (fun sh -> take_sample sh) shards;
  Array.iter
    (fun sh ->
      let reg = Engine.metrics (Context.engine sh.ctx) in
      let c name v = Metrics.add (Metrics.counter reg name) v in
      c "shard.events" sh.stats.processed;
      c "shard.stragglers" sh.stats.stragglers;
      c "shard.rollbacks" sh.stats.rollbacks;
      c "shard.wasted_events" sh.stats.rolled_back;
      c "shard.anti_messages" sh.stats.anti_messages;
      c "shard.annihilations" sh.stats.annihilations;
      c "shard.remote_sends" sh.stats.remote_sends;
      c "shard.full_spins" sh.stats.full_spins;
      c "shard.gvt_rounds" sh.stats.gvt_rounds;
      Metrics.set_gauge (Metrics.gauge reg "shard.rollback_depth")
        (float_of_int sh.stats.max_rollback);
      (match sh.samples_rev with
      | s :: _ ->
          Metrics.set_gauge (Metrics.gauge reg "shard.lvt") s.sh_lvt;
          Metrics.set_gauge (Metrics.gauge reg "shard.gvt_lag")
            (Float.max 0.0 (s.sh_lvt -. s.sh_gvt))
      | [] -> ());
      (* per-pair outbound high-water: src = this shard's label, dst in
         the family name *)
      for dst = 0 to n - 1 do
        if dst <> sh.id then
          Metrics.set_gauge
            (Metrics.gauge reg (Printf.sprintf "shard.mailbox_hw.to%d" dst))
            (float_of_int
               (Mailbox.high_water fab.rings.(pair fab ~src:sh.id ~dst)))
      done)
    shards;
  let samples =
    List.sort
      (fun (a : Monitor.shard_sample) b ->
        let c = Float.compare a.sh_gvt b.sh_gvt in
        if c <> 0 then c
        else
          let c = compare a.sh_shard b.sh_shard in
          if c <> 0 then c else compare a.sh_events b.sh_events)
      (List.concat_map
         (fun sh -> List.rev sh.samples_rev)
         (Array.to_list shards))
  in
  let wasted_by_root =
    List.sort
      (fun ((a : provenance), _) (b, _) ->
        let c = compare a.p_shard b.p_shard in
        if c <> 0 then c else compare a.p_mid b.p_mid)
      (Array.fold_left
         (fun acc sh ->
           Hashtbl.fold (fun _ (root, r) acc -> (root, !r) :: acc) sh.wasted acc)
         [] shards)
  in
  {
    states;
    commits;
    processed = sum (fun s -> s.processed);
    committed = Array.length commits;
    rollbacks = sum (fun s -> s.rollbacks);
    rolled_back = sum (fun s -> s.rolled_back);
    stragglers = sum (fun s -> s.stragglers);
    anti_messages = sum (fun s -> s.anti_messages);
    annihilations = sum (fun s -> s.annihilations);
    remote_sends = sum (fun s -> s.remote_sends);
    full_spins = sum (fun s -> s.full_spins);
    max_rollback_depth =
      Array.fold_left (fun acc sh -> max acc sh.stats.max_rollback) 0 shards;
    gvt_rounds = sum (fun s -> s.gvt_rounds);
    domains = n;
    engines = Array.map (fun sh -> Context.engine sh.ctx) shards;
    samples;
    wasted_by_root;
  }

(* ---------------------------------------------------------------- *)
(* Deterministic merged trace.                                       *)

let merge_into recorder (r : _ result) =
  Array.iter
    (fun c ->
      Recorder.emit recorder ~time:c.c_recv_ts ~proc:(Proc_id.of_int c.c_dst_lp)
        (Event.Shard_commit
           { src_lp = c.c_src_lp; send_ts = c.c_send_ts; digest = c.c_digest }))
    r.commits

let commits_digest (r : _ result) =
  Array.fold_left
    (fun acc c ->
      let mix h x = ((h * 0x01000193) lxor x) land 0x3FFFFFFFFFFFFFF in
      let f x = int_of_float (x *. 1e9) in
      mix (mix (mix (mix (mix acc (f c.c_recv_ts)) c.c_dst_lp) (f c.c_send_ts))
             c.c_src_lp)
        c.c_digest)
    0x811C9DC5 r.commits
