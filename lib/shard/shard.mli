(** Sharded Time Warp executor across OCaml 5 domains.

    Partitions a {!Hope_timewarp.Timewarp.model}'s LP space across
    domains with the fixed assignment [lp mod domains]
    ({!Hope_sim.Context.owner}), runs each shard optimistically, and
    synchronizes shards with Jefferson's protocol rather than
    conservative barriers: cross-shard deliveries ride lock-free SPSC
    {!Mailbox} rings, a delivery below the destination's local virtual
    time triggers {e local} rollback (state restore, input requeue,
    anti-messages), and a GVT computation — per-pair cumulative
    sent/recvd counters plus per-shard floors, coordinated by shard 0's
    domain — drives commitment and fossil collection.

    Determinism: Time Warp commits exactly the sequential event set, so
    sorting the commit records by a domain-count-independent key
    (recv_ts, dst_lp, send_ts, src_lp, payload digest) yields a merged
    trace that is byte-identical at any domain count ({!merge_into},
    pinned in CI at 1 vs 4 domains). *)

type 'p message = {
  mid : int;
  src_lp : int;
  dst_lp : int;
  send_ts : float;
  recv_ts : float;
  payload : 'p;
  anti : bool;
}

type commit = {
  c_recv_ts : float;
  c_dst_lp : int;
  c_src_lp : int;
  c_send_ts : float;
  c_digest : int;
}
(** One committed event. Message ids and shard ids are deliberately
    absent: both depend on the domain count. *)

val commit_compare : commit -> commit -> int
(** The deterministic merge order. *)

type ('s, 'p) spec = {
  model : ('s, 'p) Hope_timewarp.Timewarp.model;
  n_lps : int;
  horizon : float;  (** outputs with [recv_ts > horizon] are dropped *)
  seeds : (int * float * 'p) list;  (** initial [(dst_lp, ts, payload)] *)
  digest : 'p -> int;
      (** deterministic payload fingerprint for the merge key and trace;
          must not depend on execution order *)
  dummy : 'p;  (** scrub value for rings and queues *)
}

type 's result = {
  states : 's array;  (** final LP states, indexed by global LP id *)
  commits : commit array;  (** sorted by {!commit_compare} *)
  processed : int;  (** executions incl. rolled-back work *)
  committed : int;  (** = [Array.length commits] = sequential event count *)
  rollbacks : int;
  rolled_back : int;
  stragglers : int;
  anti_messages : int;
  remote_sends : int;
  gvt_rounds : int;
  domains : int;
}

val run :
  ?domains:int ->
  ?seed:int ->
  ?obs_shard:(int -> Hope_obs.Recorder.t option) ->
  ('s, 'p) spec ->
  's result
(** [run ~domains spec] executes the model to quiescence. [domains]
    (default 1, max 64) spawns [domains - 1] worker domains; shard 0
    runs on the calling domain and doubles as the GVT coordinator.
    [obs_shard] supplies an optional per-domain recorder per shard id
    for diagnostics ([Shard_straggler], [Gvt_advance]); these streams
    are per-domain and {e not} deterministic across domain counts — the
    deterministic artifact is {!merge_into}'s.
    [seed] feeds each shard's {!Hope_sim.Context} RNG stream.
    @raise Invalid_argument on bad [domains]/[spec]. *)

val merge_into : Hope_obs.Recorder.t -> 's result -> unit
(** Emit one [Shard_commit] event per committed record, in
    {!commit_compare} order, at [time = recv_ts] on [proc = dst_lp].
    Byte-identical downstream chrome traces at any domain count. *)

val commits_digest : 's result -> int
(** Order-sensitive fingerprint of the sorted commit sequence; equal
    across domain counts iff the committed event sets (and their merge
    order) match. The [parallel] bench rows carry it so
    [bench/compare.exe] can gate cross-domain determinism. *)
