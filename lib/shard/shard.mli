(** Sharded Time Warp executor across OCaml 5 domains.

    Partitions a {!Hope_timewarp.Timewarp.model}'s LP space across
    domains with the fixed assignment [lp mod domains]
    ({!Hope_sim.Context.owner}), runs each shard optimistically, and
    synchronizes shards with Jefferson's protocol rather than
    conservative barriers: cross-shard deliveries ride lock-free SPSC
    {!Mailbox} rings, a delivery below the destination's local virtual
    time triggers {e local} rollback (state restore, input requeue,
    anti-messages), and a GVT computation — per-pair cumulative
    sent/recvd counters plus per-shard floors, coordinated by shard 0's
    domain — drives commitment and fossil collection.

    Determinism: Time Warp commits exactly the sequential event set, so
    sorting the commit records by a domain-count-independent key
    (recv_ts, dst_lp, send_ts, src_lp, payload digest) yields a merged
    trace that is byte-identical at any domain count ({!merge_into},
    pinned in CI at 1 vs 4 domains). *)

type 'p message = {
  mid : int;
  src_lp : int;
  dst_lp : int;
  send_ts : float;
  recv_ts : float;
  payload : 'p;
  anti : bool;
  root_shard : int;
      (** provenance: shard of the straggler that (transitively) caused
          this anti-message; [-1] on positives and seed messages *)
  root_mid : int;  (** mid of the root straggler message, [-1] if none *)
  root_send_ts : float;  (** send_ts of the root straggler, [0.] if none *)
}
(** Cross-shard wire format. The three [root_*] fields thread rollback
    provenance through cascades: when a straggler at shard [S] rolls a
    destination back, the anti-messages it emits are stamped with the
    straggler's identity; a {e secondary} rollback triggered by such an
    anti inherits the same root, so every wasted event anywhere in the
    cascade is attributable to the shard/message that started it. *)

type provenance = {
  p_shard : int;  (** shard that sent the root straggler ([-1] = local) *)
  p_mid : int;  (** message id of the root straggler (globally unique) *)
  p_send_ts : float;  (** virtual send time of the root straggler *)
}
(** Root-cause identity of a rollback cascade. *)

type commit = {
  c_recv_ts : float;
  c_dst_lp : int;
  c_src_lp : int;
  c_send_ts : float;
  c_digest : int;
}
(** One committed event. Message ids and shard ids are deliberately
    absent: both depend on the domain count. *)

val commit_compare : commit -> commit -> int
(** The deterministic merge order. *)

type ('s, 'p) spec = {
  model : ('s, 'p) Hope_timewarp.Timewarp.model;
  n_lps : int;
  horizon : float;  (** outputs with [recv_ts > horizon] are dropped *)
  seeds : (int * float * 'p) list;  (** initial [(dst_lp, ts, payload)] *)
  digest : 'p -> int;
      (** deterministic payload fingerprint for the merge key and trace;
          must not depend on execution order *)
  dummy : 'p;  (** scrub value for rings and queues *)
}

type 's result = {
  states : 's array;  (** final LP states, indexed by global LP id *)
  commits : commit array;  (** sorted by {!commit_compare} *)
  processed : int;  (** executions incl. rolled-back work *)
  committed : int;  (** = [Array.length commits] = sequential event count *)
  rollbacks : int;
  rolled_back : int;
  stragglers : int;
  anti_messages : int;
  annihilations : int;
      (** anti-messages that cancelled a pending (unprocessed) positive —
          tombstone hits at ring pop plus in-queue drops during rollback *)
  remote_sends : int;
  full_spins : int;
      (** producer spins on a full outbound ring — the monitor's
          [Mailbox_backpressure] signal *)
  max_rollback_depth : int;
      (** deepest single rollback (events undone at once) on any shard *)
  gvt_rounds : int;
  domains : int;
  engines : Hope_sim.Engine.t array;
      (** per-shard engines, indexed by shard id; their metrics
          registries carry the [shard.*] counters/gauges that
          [Telemetry.absorb_shards] exports as [shard="N"] labeled
          OpenMetrics families *)
  samples : Hope_obs.Monitor.shard_sample list;
      (** per-shard telemetry snapshots, taken at every GVT advance and
          every 2048 processed events, sorted by (gvt, shard, events);
          feed to {!Hope_obs.Monitor.observe_shards} (or
          [Telemetry.absorb_shards]) to arm the parallel diagnostics *)
  wasted_by_root : (provenance * int) list;
      (** rollback attribution: for each root straggler, how many
          executed events its cascade undid (primary and secondary
          rollbacks both); sorted by (shard, mid). The counts sum to
          {!field-rolled_back} — per-run truth, {e not} deterministic
          across domain counts (a race decides which events speculate
          ahead far enough to be wasted) *)
}

val run :
  ?domains:int ->
  ?seed:int ->
  ?obs_shard:(int -> Hope_obs.Recorder.t option) ->
  ('s, 'p) spec ->
  's result
(** [run ~domains spec] executes the model to quiescence. [domains]
    (default 1, max 64) spawns [domains - 1] worker domains; shard 0
    runs on the calling domain and doubles as the GVT coordinator.
    [obs_shard] supplies an optional per-domain recorder per shard id
    for diagnostics ([Shard_straggler], [Gvt_advance]); these streams
    are per-domain and {e not} deterministic across domain counts — the
    deterministic artifact is {!merge_into}'s.
    [seed] feeds each shard's {!Hope_sim.Context} RNG stream.
    @raise Invalid_argument on bad [domains]/[spec]. *)

val merge_into : Hope_obs.Recorder.t -> 's result -> unit
(** Emit one [Shard_commit] event per committed record, in
    {!commit_compare} order, at [time = recv_ts] on [proc = dst_lp].
    Byte-identical downstream chrome traces at any domain count. *)

val commits_digest : 's result -> int
(** Order-sensitive fingerprint of the sorted commit sequence; equal
    across domain counts iff the committed event sets (and their merge
    order) match. The [parallel] bench rows carry it so
    [bench/compare.exe] can gate cross-domain determinism. *)
