(* Explicit shard context.

   Before sharding, the "context" of a run was implicit: one engine
   (clock + pooled events + sampler), one RNG stream, one telemetry
   instance — all singletons by convention. A shard context makes that
   bundle a value so N of them can coexist, one per OCaml domain, each
   deterministic in isolation: shard [i]'s RNG stream is the [i]-th
   child of the parent seed's SplitMix64 stream (see {!Rng.split_n}), so
   it depends only on [(seed, i)] and never on how many shards run or in
   what order domains get scheduled. *)

type t = {
  shard_id : int;
  shards : int;
  engine : Engine.t;
  rng : Rng.t;
}

let owner ~shards lp =
  if shards <= 0 then invalid_arg "Context.owner: shards must be positive";
  if lp < 0 then invalid_arg "Context.owner: negative lp"
  else lp mod shards

let make ?(seed = 42) ?trace_capacity ?obs ~shards ~shard_id () =
  if shards <= 0 then invalid_arg "Context.make: shards must be positive";
  if shard_id < 0 || shard_id >= shards then
    invalid_arg "Context.make: shard_id out of range";
  let parent = Rng.create ~seed in
  let streams = Rng.split_n parent (shard_id + 1) in
  let rng = streams.(shard_id) in
  (* The engine gets its own derived seed so internal draws (should any
     component pull from [Engine.rng]) are also per-shard streams; the
     derivation peeks a copy so [rng]'s stream is undisturbed. *)
  let eseed = Int64.to_int (Rng.bits64 (Rng.copy rng)) land max_int in
  let engine = Engine.create ~seed:eseed ?trace_capacity ?obs () in
  { shard_id; shards; engine; rng }

let shard_id t = t.shard_id
let shards t = t.shards
let engine t = t.engine
let rng t = t.rng
let is_local t ~lp = owner ~shards:t.shards lp = t.shard_id
