(** Explicit per-shard execution context.

    Bundles the formerly implicit single-instance state of a run — the
    engine (virtual clock, pooled event spine, telemetry sampler hook)
    and the deterministic RNG stream — into a value, so a sharded
    executor can instantiate one per OCaml domain. Construction is
    deterministic per [(seed, shard_id)]: shard [i] draws the [i]-th
    child stream of the parent seed via {!Rng.split_n}, independent of
    the total shard count's spawn order. *)

type t

val make :
  ?seed:int ->
  ?trace_capacity:int ->
  ?obs:Hope_obs.Recorder.t ->
  shards:int ->
  shard_id:int ->
  unit ->
  t
(** [make ~shards ~shard_id ()] builds the context for one shard of a
    [shards]-way partition. Default seed 42 (matching {!Engine.create}).
    [obs] supplies an externally-owned per-domain recorder; by default
    the shard's engine owns a fresh, disabled one.
    @raise Invalid_argument if [shards <= 0] or [shard_id] is out of
    range. *)

val owner : shards:int -> int -> int
(** [owner ~shards lp] is the fixed hash-based shard assignment used by
    the deterministic mode: LP [lp] lives on shard [lp mod shards].
    Stable across runs and independent of execution order. *)

val shard_id : t -> int
val shards : t -> int
val engine : t -> Engine.t
val rng : t -> Rng.t
(** The shard's deterministic stream (child [shard_id] of the parent
    seed). Draws here never perturb other shards' streams. *)

val is_local : t -> lp:int -> bool
(** [is_local t ~lp] iff {!owner} maps [lp] to this shard. *)
