type t = {
  mutable clock : float;
  queue : event Equeue.t;
  root_rng : Rng.t;
  registry : Metrics.registry;
  trace_buf : Trace.t;
  obs : Hope_obs.Recorder.t;
  mutable executed : int;
  mutable stop_requested : bool;
  mutable free : event;  (** intrusive free list; [nil_event] terminates it *)
  mutable pool_allocated : int;
  mutable pool_free : int;
  (* Periodic virtual-time sampler. [next_sample] is [infinity] when no
     sampler is installed, so the run loop's due-check is one float
     compare that never fires. *)
  mutable sample_stride : float;
  mutable next_sample : float;
  mutable on_sample : t -> unit;
}

(* A pooled event record. The two payload arms mirror how the spine is
   used: [Closure] (kind 1) is the general fallback — a captured thunk,
   as the pre-pool engine always did — while [Call] (kind 2) carries a
   long-lived dispatcher plus two immediate ints, which is how the
   network (delivery batches) and the scheduler (process resumption)
   schedule without allocating a closure per event. Records cycle
   through the free list; [gen] invalidates handles to recycled
   records. *)
and event = {
  mutable kind : int;  (** 0 free / 1 closure / 2 call *)
  mutable fn : t -> unit;
  mutable call : t -> int -> int -> unit;
  mutable i1 : int;
  mutable i2 : int;
  mutable gen : int;
  mutable cancelled : bool;
  mutable next_free : event;
}

type handle = { h_ev : event; h_gen : int }

type stop_reason = Quiescent | Time_limit | Event_limit | Stopped

let nop_fn (_ : t) = ()
let nop_call (_ : t) (_ : int) (_ : int) = ()

(* Shared sentinel: terminates free lists and fills vacated queue slots,
   so popped events hold nothing reachable. Never scheduled. *)
let rec nil_event =
  {
    kind = 0;
    fn = nop_fn;
    call = nop_call;
    i1 = 0;
    i2 = 0;
    gen = 0;
    cancelled = false;
    next_free = nil_event;
  }

(* Synthetic process id for events the engine itself emits. *)
let engine_proc = Hope_types.Proc_id.of_int (-1)

let create ?(seed = 42) ?trace_capacity ?obs () =
  {
    clock = 0.0;
    queue = Equeue.create ~dummy:nil_event ();
    root_rng = Rng.create ~seed;
    registry = Metrics.create_registry ();
    trace_buf = Trace.create ?capacity:trace_capacity ();
    obs = (match obs with Some r -> r | None -> Hope_obs.Recorder.create ());
    executed = 0;
    stop_requested = false;
    free = nil_event;
    pool_allocated = 0;
    pool_free = 0;
    sample_stride = infinity;
    next_sample = infinity;
    on_sample = nop_fn;
  }

let set_sampler t ~stride f =
  if not (stride > 0.0) then invalid_arg "Engine.set_sampler: stride <= 0";
  t.sample_stride <- stride;
  t.next_sample <- t.clock;
  t.on_sample <- f

let clear_sampler t =
  t.sample_stride <- infinity;
  t.next_sample <- infinity;
  t.on_sample <- nop_fn

let fire_sampler t =
  t.on_sample t;
  t.next_sample <- t.clock +. t.sample_stride

let now t = t.clock
let rng t = t.root_rng
let metrics t = t.registry
let trace t = t.trace_buf
let obs t = t.obs

(* The engine is the component that knows virtual time, so it is the
   emission gateway for the observability layer: every hook below stamps
   the current clock. One branch when no subscriber enabled the
   recorder. *)
let emit t payload =
  Hope_obs.Recorder.emit t.obs ~time:t.clock ~proc:engine_proc payload

(* ------------------------------ pool ------------------------------- *)

let alloc t =
  let ev = t.free in
  if ev == nil_event then begin
    t.pool_allocated <- t.pool_allocated + 1;
    {
      kind = 0;
      fn = nop_fn;
      call = nop_call;
      i1 = 0;
      i2 = 0;
      gen = 0;
      cancelled = false;
      next_free = nil_event;
    }
  end
  else begin
    t.free <- ev.next_free;
    t.pool_free <- t.pool_free - 1;
    ev.next_free <- nil_event;
    ev
  end

(* Clearing every field is what makes the pool leak-free: a fired event
   must not keep its closure (and whatever the closure captured — an
   envelope, a continuation) alive until the record is next reused. *)
let release t ev =
  ev.kind <- 0;
  ev.fn <- nop_fn;
  ev.call <- nop_call;
  ev.i1 <- 0;
  ev.i2 <- 0;
  ev.cancelled <- false;
  ev.gen <- ev.gen + 1;
  ev.next_free <- t.free;
  t.free <- ev;
  t.pool_free <- t.pool_free + 1

let pool_allocated t = t.pool_allocated
let pool_free t = t.pool_free

(* --------------------------- scheduling ---------------------------- *)

let schedule_at t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: at=%g is before now=%g" at t.clock);
  let ev = alloc t in
  ev.kind <- 1;
  ev.fn <- f;
  let h = { h_ev = ev; h_gen = ev.gen } in
  Equeue.push t.queue ~priority:at ev;
  h

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.clock +. delay) f

let schedule_call_at t ~at call i1 i2 =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_call_at: at=%g is before now=%g" at
         t.clock);
  let ev = alloc t in
  ev.kind <- 2;
  ev.call <- call;
  ev.i1 <- i1;
  ev.i2 <- i2;
  Equeue.push t.queue ~priority:at ev

let schedule_call t ~delay call i1 i2 =
  if delay < 0.0 then invalid_arg "Engine.schedule_call: negative delay";
  schedule_call_at t ~at:(t.clock +. delay) call i1 i2

let sched_seq t = Equeue.next_seq t.queue

let cancel h = if h.h_ev.gen = h.h_gen then h.h_ev.cancelled <- true

let step t =
  if Equeue.is_empty t.queue then false
  else begin
    let at = Equeue.min_prio t.queue in
    let ev = Equeue.pop_min_exn t.queue in
    (* Read the payload out, then recycle the record before running it:
       the handler may schedule (and the pool may hand this record back
       out) — by then we no longer touch it. *)
    let kind = ev.kind in
    let fn = ev.fn in
    let call = ev.call in
    let i1 = ev.i1 in
    let i2 = ev.i2 in
    let cancelled = ev.cancelled in
    release t ev;
    if not cancelled then begin
      t.clock <- at;
      t.executed <- t.executed + 1;
      if kind = 1 then fn t else call t i1 i2;
      if t.clock >= t.next_sample then fire_sampler t
    end;
    true
  end

let stop t = t.stop_requested <- true

let stop_reason_name = function
  | Quiescent -> "quiescent"
  | Time_limit -> "time-limit"
  | Event_limit -> "event-limit"
  | Stopped -> "stopped"

let run ?until ?max_events t =
  t.stop_requested <- false;
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let horizon = match until with Some u -> u | None -> infinity in
  (* The loop inlines [step] so the queue's minimum priority is read (and
     its float boxed) once per event, not once for the horizon check and
     again for the pop. *)
  let rec loop () =
    if t.stop_requested then Stopped
    else if !budget <= 0 then Event_limit
    else if Equeue.is_empty t.queue then Quiescent
    else begin
      let at = Equeue.min_prio t.queue in
      if at > horizon then begin
        (* Advance the clock to the horizon so repeated bounded runs make
           progress even when the next event lies beyond it. *)
        t.clock <- horizon;
        Time_limit
      end
      else begin
        decr budget;
        let ev = Equeue.pop_min_exn t.queue in
        let kind = ev.kind in
        let fn = ev.fn in
        let call = ev.call in
        let i1 = ev.i1 in
        let i2 = ev.i2 in
        let cancelled = ev.cancelled in
        release t ev;
        if not cancelled then begin
          t.clock <- at;
          t.executed <- t.executed + 1;
          if kind = 1 then fn t else call t i1 i2;
          if t.clock >= t.next_sample then fire_sampler t
        end;
        loop ()
      end
    end
  in
  let reason = loop () in
  emit t (Hope_obs.Event.Sim_stop { reason = stop_reason_name reason });
  reason

let events_processed t = t.executed
let pending_events t = Equeue.length t.queue

let pp_stop_reason ppf r = Format.pp_print_string ppf (stop_reason_name r)
