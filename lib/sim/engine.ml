type t = {
  mutable clock : float;
  queue : event Heap.t;
  root_rng : Rng.t;
  registry : Metrics.registry;
  trace_buf : Trace.t;
  obs : Hope_obs.Recorder.t;
  mutable executed : int;
  mutable stop_requested : bool;
}

and event = { run_event : t -> unit; mutable cancelled : bool }

type handle = event

type stop_reason = Quiescent | Time_limit | Event_limit | Stopped

(* Synthetic process id for events the engine itself emits. *)
let engine_proc = Hope_types.Proc_id.of_int (-1)

let create ?(seed = 42) ?trace_capacity ?obs () =
  {
    clock = 0.0;
    queue = Heap.create ();
    root_rng = Rng.create ~seed;
    registry = Metrics.create_registry ();
    trace_buf = Trace.create ?capacity:trace_capacity ();
    obs = (match obs with Some r -> r | None -> Hope_obs.Recorder.create ());
    executed = 0;
    stop_requested = false;
  }

let now t = t.clock
let rng t = t.root_rng
let metrics t = t.registry
let trace t = t.trace_buf
let obs t = t.obs

(* The engine is the component that knows virtual time, so it is the
   emission gateway for the observability layer: every hook below stamps
   the current clock. One branch when no subscriber enabled the
   recorder. *)
let emit t payload =
  Hope_obs.Recorder.emit t.obs ~time:t.clock ~proc:engine_proc payload

let schedule_at t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: at=%g is before now=%g" at t.clock);
  let ev = { run_event = f; cancelled = false } in
  Heap.push t.queue ~priority:at ev;
  ev

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.clock +. delay) f

let cancel ev = ev.cancelled <- true

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, ev) ->
    if not ev.cancelled then begin
      t.clock <- at;
      t.executed <- t.executed + 1;
      ev.run_event t
    end;
    true

let stop t = t.stop_requested <- true

let stop_reason_name = function
  | Quiescent -> "quiescent"
  | Time_limit -> "time-limit"
  | Event_limit -> "event-limit"
  | Stopped -> "stopped"

let run ?until ?max_events t =
  t.stop_requested <- false;
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let horizon = match until with Some u -> u | None -> infinity in
  let rec loop () =
    if t.stop_requested then Stopped
    else if !budget <= 0 then Event_limit
    else
      match Heap.peek t.queue with
      | None -> Quiescent
      | Some (at, _) when at > horizon ->
        (* Advance the clock to the horizon so repeated bounded runs make
           progress even when the next event lies beyond it. *)
        t.clock <- horizon;
        Time_limit
      | Some _ ->
        decr budget;
        ignore (step t : bool);
        loop ()
  in
  let reason = loop () in
  emit t (Hope_obs.Event.Sim_stop { reason = stop_reason_name reason });
  reason

let events_processed t = t.executed
let pending_events t = Heap.length t.queue

let pp_stop_reason ppf r = Format.pp_print_string ppf (stop_reason_name r)
