(** The discrete-event simulation engine.

    The engine owns the virtual clock, the event queue, the root RNG, the
    metrics registry, and the trace. Components schedule thunks at future
    virtual times; {!run} pops events in timestamp order (FIFO among equal
    timestamps) until quiescence or a limit. All model time is in seconds.

    Determinism contract: given equal seeds and equal scheduling calls, runs
    are bit-for-bit identical. Nothing in the engine reads wall-clock time
    or OS randomness. *)

type t

type handle
(** A cancellable reference to a scheduled event. *)

type stop_reason =
  | Quiescent  (** the event queue drained *)
  | Time_limit  (** the [until] horizon was reached *)
  | Event_limit  (** the [max_events] budget was exhausted *)
  | Stopped  (** {!stop} was called from inside an event *)

val create : ?seed:int -> ?trace_capacity:int -> ?obs:Hope_obs.Recorder.t -> unit -> t
(** [create ~seed ()] makes an engine at time 0. Default seed 42. [obs]
    supplies an externally-owned observability recorder (e.g. the bench
    harness's); by default the engine owns a fresh, disabled one. *)

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Rng.t
(** The engine's root RNG; components should {!Rng.split} their own. *)

val metrics : t -> Metrics.registry
val trace : t -> Trace.t

val obs : t -> Hope_obs.Recorder.t
(** The structured speculation-event recorder (see {!Hope_obs}). Disabled
    by default; enable it before running to capture the typed event
    stream. *)

val emit : t -> Hope_obs.Event.payload -> unit
(** Emit an engine-attributed observability event at the current virtual
    time (no-op while the recorder is disabled). Components that know the
    acting process should use {!Hope_obs.Recorder.emit} with
    [~time:(now t)] instead. *)

val schedule : t -> delay:float -> (t -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay]. [delay] must be
    non-negative. @raise Invalid_argument on a negative delay. *)

val schedule_at : t -> at:float -> (t -> unit) -> handle
(** [schedule_at t ~at f] runs [f] at absolute time [at >= now t].
    @raise Invalid_argument if [at] is in the past. *)

val schedule_call : t -> delay:float -> (t -> int -> int -> unit) -> int -> int -> unit
(** [schedule_call t ~delay disp i1 i2] runs [disp t i1 i2] at
    [now t +. delay]. The direct-dispatch arm of the event spine: [disp]
    is a long-lived dispatcher (the network's delivery entry point, the
    scheduler's resume entry point) and [i1]/[i2] are its immediate
    arguments, so scheduling allocates nothing once the pool is warm.
    Not cancellable — dispatchers guard staleness themselves (generation
    counters). @raise Invalid_argument on a negative delay. *)

val schedule_call_at : t -> at:float -> (t -> int -> int -> unit) -> int -> int -> unit
(** Absolute-time variant of {!schedule_call}.
    @raise Invalid_argument if [at] is in the past. *)

val sched_seq : t -> int
(** Monotone stamp of queue insertions (the sequence number the next
    scheduled event will take). Lets callers detect that nothing was
    scheduled between two of their own calls — {!Hope_net.Network} uses
    this to coalesce same-tick deliveries without risking reordering. *)

val cancel : handle -> unit
(** Cancel a pending event; cancelling a fired or cancelled event is a
    no-op. *)

val run : ?until:float -> ?max_events:int -> t -> stop_reason
(** Pop and execute events until one of the stop conditions holds. May be
    called repeatedly; the clock persists across calls. *)

val step : t -> bool
(** Execute exactly one event. Returns [false] when the queue is empty. *)

val stop : t -> unit
(** Request that {!run} return after the current event completes. *)

val set_sampler : t -> stride:float -> (t -> unit) -> unit
(** [set_sampler t ~stride f] installs a periodic virtual-time sampler:
    [f t] fires right after the first event executed at or past each due
    time, then the next due time is [now t +. stride] (so a clock that
    jumps several strides produces one sample, not a burst). The first
    sample fires after the next executed event, capturing early-run
    state. One float compare per executed event when idle; replaces any
    previous sampler. This is the hook [Telemetry] drives {!Timeseries}
    sampling and {!Hope_obs.Monitor.check_stalls} from.
    @raise Invalid_argument if [stride <= 0]. *)

val clear_sampler : t -> unit

val events_processed : t -> int
(** Total events executed since {!create}. *)

val pending_events : t -> int
(** Events currently queued (cancelled events may be counted until they
    surface). *)

val pool_allocated : t -> int
(** Event records ever allocated by the pool — bounded by the peak number
    of simultaneously pending events, not by the number of schedules
    (the pool-reuse property in [test_sim.ml]). *)

val pool_free : t -> int
(** Event records currently sitting on the free list. *)

val pp_stop_reason : Format.formatter -> stop_reason -> unit
