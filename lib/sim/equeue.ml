(* Parallel-array 4-ary implicit heap. Index 0 is the root; the children
   of [i] are [4i+1 .. 4i+4] and its parent is [(i-1)/4]. The three arrays
   always have the same capacity and describe the same entries. *)

type 'a t = {
  mutable prios : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a;
}

let create ~dummy () =
  { prios = [||]; seqs = [||]; vals = [||]; size = 0; next_seq = 0; dummy }

let length q = q.size
let is_empty q = q.size = 0
let next_seq q = q.next_seq

(* [before q i j]: does the entry at slot [i] pop before the one at [j]?
   Same total order as Heap: priority, then insertion sequence. *)
let before q i j =
  q.prios.(i) < q.prios.(j) || (q.prios.(i) = q.prios.(j) && q.seqs.(i) < q.seqs.(j))

let grow q =
  let capacity = max 16 (2 * Array.length q.vals) in
  let prios = Array.make capacity 0.0 in
  let seqs = Array.make capacity 0 in
  let vals = Array.make capacity q.dummy in
  Array.blit q.prios 0 prios 0 q.size;
  Array.blit q.seqs 0 seqs 0 q.size;
  Array.blit q.vals 0 vals 0 q.size;
  q.prios <- prios;
  q.seqs <- seqs;
  q.vals <- vals

(* Sifting moves entries into the hole instead of swapping (3 stores per
   level, not 6 loads + 6 stores). Both loops are top-level recursive
   functions — a local [let rec] would allocate a closure per call. *)

(* Hole at [i] sifting up for a pending entry (priority, seq); returns
   the slot where the entry belongs. The float stays the caller's
   already-boxed argument, so no fresh boxing on the way up. *)
let rec hole_up q i priority seq =
  if i = 0 then 0
  else begin
    let parent = (i - 1) / 4 in
    let pp = q.prios.(parent) in
    if priority < pp || (priority = pp && seq < q.seqs.(parent)) then begin
      q.prios.(i) <- pp;
      q.seqs.(i) <- q.seqs.(parent);
      q.vals.(i) <- q.vals.(parent);
      hole_up q parent priority seq
    end
    else i
  end

(* Hole at [i] sifting down against the entry parked at slot [n] (the
   displaced last element, compared in place so its priority is never
   re-boxed); heap range is [0, n). Returns the entry's final slot. *)
let rec hole_down q i n =
  let first = (4 * i) + 1 in
  if first >= n then i
  else begin
    let last = if first + 3 < n - 1 then first + 3 else n - 1 in
    let m = ref first in
    for c = first + 1 to last do
      if before q c !m then m := c
    done;
    let m = !m in
    if before q m n then begin
      q.prios.(i) <- q.prios.(m);
      q.seqs.(i) <- q.seqs.(m);
      q.vals.(i) <- q.vals.(m);
      hole_down q m n
    end
    else i
  end

let push q ~priority value =
  if q.size = Array.length q.vals then grow q;
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  let n = q.size in
  q.size <- n + 1;
  let hole = hole_up q n priority seq in
  q.prios.(hole) <- priority;
  q.seqs.(hole) <- seq;
  q.vals.(hole) <- value

let min_prio q =
  if q.size = 0 then invalid_arg "Equeue.min_prio: empty";
  q.prios.(0)

let pop_min_exn q =
  if q.size = 0 then invalid_arg "Equeue.pop_min_exn: empty";
  let v = q.vals.(0) in
  let n = q.size - 1 in
  q.size <- n;
  if n > 0 then begin
    (* the displaced last entry waits at slot [n] while the root hole
       sifts down past every child that pops before it *)
    let hole = hole_down q 0 n in
    q.prios.(hole) <- q.prios.(n);
    q.seqs.(hole) <- q.seqs.(n);
    q.vals.(hole) <- q.vals.(n);
    q.vals.(n) <- q.dummy
  end
  else q.vals.(0) <- q.dummy;
  v

let pop q =
  if q.size = 0 then None
  else begin
    let prio = min_prio q in
    Some (prio, pop_min_exn q)
  end

let peek q = if q.size = 0 then None else Some (q.prios.(0), q.vals.(0))

let clear q =
  Array.fill q.vals 0 q.size q.dummy;
  q.size <- 0;
  q.next_seq <- 0
