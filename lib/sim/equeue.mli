(** Unboxed 4-ary implicit min-heap: the simulator's event queue.

    Entries are ordered by a [float] priority (the virtual timestamp) with
    a monotonically increasing sequence number as tie-breaker, exactly the
    (priority, seq) total order of {!Heap} — so the pop order of the two
    structures is identical on identical pushes, which is what keeps the
    replacement determinism-preserving (and what the QCheck oracle in
    [test_sim.ml] checks).

    Unlike {!Heap}, entries are not boxed: priorities live in a flat
    [float array], sequence numbers in an [int array], and payloads in a
    parallel value array. Popping does no allocation ({!min_prio} +
    {!pop_min_exn}), the 4-ary layout halves the sift depth versus a
    binary heap, and vacated slots are overwritten with the [dummy] so a
    consumed payload (an event record, a closure, an envelope) never
    outlives its pop. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** Fresh empty queue. [dummy] is stored into vacated slots so popped and
    cleared payloads are collectable; it must be a value the caller never
    needs back (a sentinel). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit
(** Insert an entry. Amortized O(log4 n), allocation-free after the
    backing arrays have grown. *)

val next_seq : 'a t -> int
(** The sequence number the next {!push} will take — a monotone stamp of
    queue insertions (used by {!Hope_net.Network} to detect that nothing
    entered the queue between two sends). *)

val min_prio : 'a t -> float
(** Priority of the minimum entry. @raise Invalid_argument when empty. *)

val pop_min_exn : 'a t -> 'a
(** Remove and return the minimum entry's payload (FIFO among equal
    priorities), clearing its slot. Allocation-free.
    @raise Invalid_argument when empty. *)

val pop : 'a t -> (float * 'a) option
(** Allocating convenience wrapper around {!min_prio} + {!pop_min_exn}
    (tests and non-hot callers). *)

val peek : 'a t -> (float * 'a) option
(** Return without removing the minimum entry. *)

val clear : 'a t -> unit
(** Drop all entries, overwriting every occupied slot with the dummy, and
    reset the sequence counter. *)
