type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* [before a b]: does entry [a] pop before entry [b]? *)
let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow h =
  let capacity = max 16 (2 * Array.length h.data) in
  let dummy = h.data.(0) in
  let data = Array.make capacity dummy in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < h.size && before h.data.(l) h.data.(i) then l else i in
  let smallest =
    if r < h.size && before h.data.(r) h.data.(smallest) then r else smallest
  in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h smallest
  end

let push h ~priority value =
  let entry = { prio = priority; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.data = 0 then h.data <- Array.make 16 entry;
  if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      (* Overwrite the vacated tail slot with a live in-heap entry so the
         popped payload (a closure, an envelope) becomes collectable. With
         no ['a] witness at hand, the root entry serves as the dummy: it is
         reachable through the heap anyway. *)
      h.data.(h.size) <- h.data.(0);
      sift_down h 0
    end
    else
      (* Heap drained: drop the whole array rather than keep the last
         payload pinned through the stale slot. *)
      h.data <- [||];
    Some (top.prio, top.value)
  end

let peek h = if h.size = 0 then None else Some (h.data.(0).prio, h.data.(0).value)

let clear h =
  h.data <- [||];
  h.size <- 0;
  h.next_seq <- 0
