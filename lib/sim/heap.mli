(** Monomorphic-priority binary min-heap, formerly the simulator event
    queue and now the reference implementation the unboxed {!Equeue} is
    checked against (the QCheck oracle in [test_sim.ml]): same (priority,
    seq) total order, so the two structures pop identically on identical
    pushes.

    Entries are ordered by a [float] priority (the virtual timestamp) with a
    monotonically increasing sequence number as tie-breaker, so events
    scheduled at the same instant pop in insertion order. This determinism
    matters: the whole simulator must replay identically from a seed.

    {!pop} and {!clear} scrub vacated slots so consumed payloads don't stay
    reachable through the backing array. *)

type 'a t
(** A heap of ['a] payloads keyed by float priority. *)

val create : unit -> 'a t
(** Fresh empty heap. *)

val length : 'a t -> int
(** Number of queued entries. *)

val is_empty : 'a t -> bool
(** [is_empty h] iff no entries are queued. *)

val push : 'a t -> priority:float -> 'a -> unit
(** Insert an entry. Amortized O(log n). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority entry (FIFO among ties). *)

val peek : 'a t -> (float * 'a) option
(** Return without removing the minimum-priority entry. *)

val clear : 'a t -> unit
(** Drop all entries. *)
