type counter = { mutable n : int }

type gauge = { mutable v : float }

(* Streaming histogram: exact moments plus a bounded reservoir for
   percentile estimates. The reservoir keeps the first [reservoir_cap]
   observations and then samples uniformly (Vitter's algorithm R) using a
   deterministic stream derived from the observation count, keeping runs
   reproducible without threading an Rng through every observe call. *)
(* [stats] is a flat float array [| sum; sum_sq; min; max |]: unboxed
   stores, where mutable float fields of this mixed record would allocate
   a box per {!observe}. *)
type histogram = {
  mutable count : int;
  stats : float array;
  mutable reservoir : float array;
  mutable reservoir_n : int;
  rng : Rng.t;
}

let reservoir_cap = 4096

type registry = {
  counters_tbl : (string, counter) Hashtbl.t;
  gauges_tbl : (string, gauge) Hashtbl.t;
  hists_tbl : (string, histogram) Hashtbl.t;
}

let create_registry () =
  {
    counters_tbl = Hashtbl.create 32;
    gauges_tbl = Hashtbl.create 8;
    hists_tbl = Hashtbl.create 8;
  }

let counter reg name =
  match Hashtbl.find_opt reg.counters_tbl name with
  | Some c -> c
  | None ->
    let c = { n = 0 } in
    Hashtbl.add reg.counters_tbl name c;
    c

let incr c = c.n <- c.n + 1
let add c k = c.n <- c.n + k
let count c = c.n

let gauge reg name =
  match Hashtbl.find_opt reg.gauges_tbl name with
  | Some g -> g
  | None ->
    let g = { v = 0.0 } in
    Hashtbl.add reg.gauges_tbl name g;
    g

let set_gauge g v = g.v <- v
let gauge_value g = g.v

let histogram reg name =
  match Hashtbl.find_opt reg.hists_tbl name with
  | Some h -> h
  | None ->
    let h =
      {
        count = 0;
        stats = [| 0.0; 0.0; nan; nan |];
        reservoir = [||];
        reservoir_n = 0;
        rng = Rng.create ~seed:(Hashtbl.hash name);
      }
    in
    Hashtbl.add reg.hists_tbl name h;
    h

let observe h x =
  h.count <- h.count + 1;
  h.stats.(0) <- h.stats.(0) +. x;
  h.stats.(1) <- h.stats.(1) +. (x *. x);
  if h.count = 1 then begin
    h.stats.(2) <- x;
    h.stats.(3) <- x
  end
  else begin
    if x < h.stats.(2) then h.stats.(2) <- x;
    if x > h.stats.(3) then h.stats.(3) <- x
  end;
  if Array.length h.reservoir = 0 then h.reservoir <- Array.make reservoir_cap 0.0;
  if h.reservoir_n < reservoir_cap then begin
    h.reservoir.(h.reservoir_n) <- x;
    h.reservoir_n <- h.reservoir_n + 1
  end
  else begin
    let j = Rng.int h.rng h.count in
    if j < reservoir_cap then h.reservoir.(j) <- x
  end

(* A copy of [observe] rather than [observe h (float_of_int n)]: the
   conversion happens inside the function body, so the float lives only in
   registers and unboxed array stores — calling [observe] would box it at
   the call boundary (non-flambda), and this runs once per interval on the
   HOPE hot path. *)
let observe_int h n =
  let x = float_of_int n in
  h.count <- h.count + 1;
  h.stats.(0) <- h.stats.(0) +. x;
  h.stats.(1) <- h.stats.(1) +. (x *. x);
  if h.count = 1 then begin
    h.stats.(2) <- x;
    h.stats.(3) <- x
  end
  else begin
    if x < h.stats.(2) then h.stats.(2) <- x;
    if x > h.stats.(3) then h.stats.(3) <- x
  end;
  if Array.length h.reservoir = 0 then h.reservoir <- Array.make reservoir_cap 0.0;
  if h.reservoir_n < reservoir_cap then begin
    h.reservoir.(h.reservoir_n) <- x;
    h.reservoir_n <- h.reservoir_n + 1
  end
  else begin
    let j = Rng.int h.rng h.count in
    if j < reservoir_cap then h.reservoir.(j) <- x
  end

let hist_count h = h.count
let hist_sum h = h.stats.(0)
let hist_min h = h.stats.(2)
let hist_max h = h.stats.(3)
let hist_mean h = if h.count = 0 then nan else h.stats.(0) /. float_of_int h.count

let hist_stddev h =
  if h.count < 2 then nan
  else
    let n = float_of_int h.count in
    let mean = h.stats.(0) /. n in
    let var = (h.stats.(1) -. (n *. mean *. mean)) /. (n -. 1.0) in
    sqrt (max 0.0 var)

let hist_percentile h p =
  if h.count = 0 then nan
  else begin
    let a = Array.sub h.reservoir 0 h.reservoir_n in
    Array.sort compare a;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (h.reservoir_n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    if lo = hi then a.(lo)
    else
      let w = rank -. float_of_int lo in
      ((1.0 -. w) *. a.(lo)) +. (w *. a.(hi))
  end

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters reg = sorted_bindings reg.counters_tbl |> List.map (fun (k, c) -> (k, c.n))
let gauges reg = sorted_bindings reg.gauges_tbl |> List.map (fun (k, g) -> (k, g.v))
let histograms reg = sorted_bindings reg.hists_tbl

(* Unsorted, allocation-free variants of [counters]/[gauges] for the
   per-sample telemetry hot path, where rebuilding a sorted assoc list a
   thousand times per run is pure garbage. *)
let iter_counters reg f = Hashtbl.iter (fun k c -> f k c.n) reg.counters_tbl
let iter_gauges reg f = Hashtbl.iter (fun k g -> f k g.v) reg.gauges_tbl

let find_counter reg name =
  match Hashtbl.find_opt reg.counters_tbl name with Some c -> c.n | None -> 0

let pp_summary ppf reg =
  List.iter (fun (k, n) -> Format.fprintf ppf "counter %-40s %d@." k n) (counters reg);
  List.iter (fun (k, v) -> Format.fprintf ppf "gauge   %-40s %g@." k v) (gauges reg);
  List.iter
    (fun (k, h) ->
      Format.fprintf ppf "hist    %-40s n=%d mean=%g p50=%g p99=%g max=%g@." k
        (hist_count h) (hist_mean h) (hist_percentile h 50.0)
        (hist_percentile h 99.0) (hist_max h))
    (histograms reg)
