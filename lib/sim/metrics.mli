(** Measurement instruments for simulation experiments.

    A {!registry} owns named counters, gauges, and histograms. Experiments
    create one registry per run; benches read the instruments out at the end
    to print table rows. Histograms are fixed-memory streaming instruments
    (count / sum / min / max plus percentile estimates over a bounded
    reservoir), which is plenty for the latency distributions we report. *)

type registry
(** A namespace of instruments. *)

val create_registry : unit -> registry

(** {1 Counters} *)

type counter

val counter : registry -> string -> counter
(** [counter reg name] finds or creates the counter [name]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : registry -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : registry -> string -> histogram
(** [histogram reg name] finds or creates the histogram [name]. *)

val observe : histogram -> float -> unit

val observe_int : histogram -> int -> unit
(** [observe_int h n] is [observe h (float_of_int n)] without boxing the
    intermediate float (hot-path variant for integer-valued series). *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_min : histogram -> float
(** Minimum observed value; [nan] when empty. *)

val hist_max : histogram -> float
(** Maximum observed value; [nan] when empty. *)

val hist_mean : histogram -> float
(** Arithmetic mean; [nan] when empty. *)

val hist_stddev : histogram -> float
(** Sample standard deviation; [nan] with fewer than two observations. *)

val hist_percentile : histogram -> float -> float
(** [hist_percentile h p] estimates the [p]-th percentile (p in [0,100])
    from the retained reservoir; [nan] when empty. *)

(** {1 Reading a registry} *)

val counters : registry -> (string * int) list
(** All counters, sorted by name. *)

val gauges : registry -> (string * float) list
(** All gauges, sorted by name. *)

val histograms : registry -> (string * histogram) list
(** All histograms, sorted by name. *)

val iter_counters : registry -> (string -> int -> unit) -> unit
(** Visit every counter without allocating, in unspecified order — the
    telemetry sampler reads the registry once per stride through this. *)

val iter_gauges : registry -> (string -> float -> unit) -> unit
(** Allocation-free, unordered visit of every gauge. *)

val find_counter : registry -> string -> int
(** Value of a counter, 0 if it was never created. *)

val pp_summary : Format.formatter -> registry -> unit
(** Human-readable dump of every instrument. *)
