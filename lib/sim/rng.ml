(* SplitMix64, computed on immediate ints. The reference algorithm works
   on an [int64] state, but every [Int64] intermediate is boxed on the
   minor heap (~40 words per draw on a non-flambda compiler) — and one
   latency draw rides on every message send, so the generator is on the
   event spine's hot path. The state is therefore split into two 32-bit
   halves held in tagged ints, with the 64-bit multiply done in 16-bit
   limbs; every output is bit-identical to the [int64] version (the
   trace-determinism contract depends on this), and a draw allocates
   nothing beyond its boxed float result. [z_hi]/[z_lo] are per-generator
   scratch holding the mixed output of the latest [advance] — OCaml has
   no way to return a pair without allocating. *)

type t = {
  mutable hi : int;  (** state bits 32..63 *)
  mutable lo : int;  (** state bits 0..31 *)
  mutable z_hi : int;
  mutable z_lo : int;
}

let mask32 = 0xFFFFFFFF

(* golden gamma 0x9E3779B97F4A7C15 *)
let gamma_hi = 0x9E3779B9
let gamma_lo = 0x7F4A7C15

(* the two xor-shift-multiply constants *)
let m1_hi = 0xBF58476D
let m1_lo = 0x1CE4E5B9
let m2_hi = 0x94D049BB
let m2_lo = 0x133111EB

let create ~seed =
  { hi = (seed asr 32) land mask32; lo = seed land mask32; z_hi = 0; z_lo = 0 }

let copy t = { hi = t.hi; lo = t.lo; z_hi = 0; z_lo = 0 }

(* z ^= z >>> n, for 0 < n < 32. *)
let xorshift t n =
  let zhi = t.z_hi and zlo = t.z_lo in
  t.z_lo <- zlo lxor (((zhi land ((1 lsl n) - 1)) lsl (32 - n)) lor (zlo lsr n));
  t.z_hi <- zhi lxor (zhi lsr n)

(* z <- z * b (mod 2^64), by 16-bit limbs: column sums stay under 2^34,
   comfortably inside a 63-bit tagged int. *)
let mul_into t bhi blo =
  let alo = t.z_lo and ahi = t.z_hi in
  let a0 = alo land 0xFFFF and a1 = alo lsr 16 in
  let a2 = ahi land 0xFFFF and a3 = ahi lsr 16 in
  let b0 = blo land 0xFFFF and b1 = blo lsr 16 in
  let b2 = bhi land 0xFFFF and b3 = bhi lsr 16 in
  let c0 = a0 * b0 in
  let c1 = (a1 * b0) + (a0 * b1) in
  let c2 = (a2 * b0) + (a1 * b1) + (a0 * b2) in
  let c3 = (a3 * b0) + (a2 * b1) + (a1 * b2) + (a0 * b3) in
  let low = c0 + ((c1 land 0xFFFF) lsl 16) in
  t.z_lo <- low land mask32;
  t.z_hi <- (c2 + ((c3 land 0xFFFF) lsl 16) + (c1 lsr 16) + (low lsr 32)) land mask32

(* Advance the state by the golden gamma and run the SplitMix64 output
   function; the mixed result lands in [z_hi]/[z_lo]. *)
let advance t =
  let s = t.lo + gamma_lo in
  t.lo <- s land mask32;
  t.hi <- (t.hi + gamma_hi + (s lsr 32)) land mask32;
  t.z_hi <- t.hi;
  t.z_lo <- t.lo;
  xorshift t 30;
  mul_into t m1_hi m1_lo;
  xorshift t 27;
  mul_into t m2_hi m2_lo;
  xorshift t 31

let bits64 t =
  advance t;
  Int64.logor (Int64.shift_left (Int64.of_int t.z_hi) 32) (Int64.of_int t.z_lo)

let split t =
  advance t;
  { hi = t.z_hi; lo = t.z_lo; z_hi = 0; z_lo = 0 }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  if n = 0 then [||]
  else begin
    let a = Array.make n t in
    for i = 0 to n - 1 do
      a.(i) <- split t
    done;
    a
  end

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62
     so bias is negligible for simulation purposes. *)
  advance t;
  ((t.z_hi lsl 30) lor (t.z_lo lsr 2)) mod bound

let float t bound =
  (* 53 random bits scaled into [0,1). *)
  advance t;
  let bits = float_of_int ((t.z_hi lsl 21) lor (t.z_lo lsr 11)) in
  bits /. 9007199254740992.0 *. bound

let bool t =
  advance t;
  t.z_lo land 1 = 1

let bernoulli t ~p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let uniform t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  lo +. float t (hi -. lo)

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let normal t ~mu ~sigma =
  let u1 = 1.0 -. float t 1.0 in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
