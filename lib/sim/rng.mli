(** Deterministic, splittable pseudo-random number generator.

    All randomness in the simulator flows through this module so that every
    run is reproducible from a single integer seed, and so that independent
    components (network links, workload generators) can draw from
    independent streams via {!split} without perturbing each other. The
    generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014), which is
    fast, has a 64-bit state, and splits cheaply. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives a new generator from [t]'s stream. The two streams
    are statistically independent; [t] advances by one draw. *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent generators by repeated
    {!split}: child [i] is seeded by the [(i+1)]-th draw of [t]'s
    stream, so the children a shard context hands out depend only on
    the parent seed and the shard index — never on how many other
    shards exist or in what order they start. [t] advances by [n]
    draws. @raise Invalid_argument if [n < 0]. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p] (clamped to [0,1]). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform draw over [lo, hi). Requires [lo <= hi]. *)

val exponential : t -> mean:float -> float
(** Exponential draw with the given mean (inverse-CDF method). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal draw: [exp (mu + sigma * z)] with [z] standard normal. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian draw (Box–Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)
