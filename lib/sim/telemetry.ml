module Monitor = Hope_obs.Monitor
module Timeseries = Hope_obs.Timeseries
module Om = Hope_obs.Export_openmetrics

type pre_sample_handle = int

type t = {
  mon : Monitor.t;
  ts : Timeseries.t;
  handles : (string, Timeseries.series) Hashtbl.t;
      (* raw registry name -> series, so per-sample reads skip both the
         name sanitization and the by-name series lookup *)
  mutable engines : Engine.t list;
      (* install order; one per shard when the sharded runtime installs
         its per-domain engines into a single telemetry instance *)
  mutable shard_engines : (int * Engine.t) list;
      (* shard id -> registry, snapshot-only (no sampler): the parallel
         engine's per-domain registries, read post-run for the labeled
         shard="N" instrument families *)
  mutable pre_samples : (pre_sample_handle * (Engine.t -> t -> unit)) list;
      (* registration order; keyed so a consumer (the governor) can
         detach its tick on uninstall instead of leaving a dead closure
         running every stride *)
  mutable next_pre : pre_sample_handle;
  mutable on_sample : Engine.t -> t -> unit;
}

(* The monitor's gauges under the same stable names [Monitor.gauges]
   reports, registered as fixed thunks: reading them per sample then
   allocates a couple of float boxes instead of a 9-pair list. *)
let add_monitor_sources ts mon =
  List.iter
    (fun (name, read) -> Timeseries.add_source ts name read)
    [
      ("hope_monitor_cascades", fun () -> float_of_int (Monitor.cascades mon));
      ("hope_monitor_committed_vtime", fun () -> Monitor.committed_vtime mon);
      ("hope_monitor_cycle_cuts", fun () -> float_of_int (Monitor.cycle_cuts mon));
      ( "hope_monitor_diagnostics",
        fun () -> float_of_int (Monitor.diagnostics_count mon) );
      ("hope_monitor_live_aids", fun () -> float_of_int (Monitor.live_aids mon));
      ("hope_monitor_max_cascade", fun () -> float_of_int (Monitor.max_cascade mon));
      ( "hope_monitor_open_intervals",
        fun () -> float_of_int (Monitor.open_intervals mon) );
      ( "hope_monitor_peak_open_intervals",
        fun () -> float_of_int (Monitor.peak_open_intervals mon) );
      ("hope_monitor_wasted_vtime", fun () -> Monitor.wasted_vtime mon);
    ]
(* The shard-facing monitor gauges — gvt, gvt_lag, the shard counters —
   are not registered as per-stride sources: they move at GVT epochs,
   which [absorb_shards] records directly, and they still appear as
   final instruments via [Monitor.gauges]. *)

let create ?config ?(deep = false) ?(stride = 1e-3) ?(capacity = 1024)
    ~recorder () =
  let mon = Monitor.create ?config () in
  Monitor.attach ~dep:deep mon recorder;
  let ts = Timeseries.create ~capacity ~stride () in
  add_monitor_sources ts mon;
  {
    mon;
    ts;
    handles = Hashtbl.create 64;
    engines = [];
    shard_engines = [];
    pre_samples = [];
    next_pre = 0;
    on_sample = (fun _ _ -> ());
  }

let monitor t = t.mon
let series t = t.ts
let stride t = Timeseries.stride t.ts
let set_on_sample t f = t.on_sample <- f

let add_on_sample t f =
  let prev = t.on_sample in
  t.on_sample <-
    (fun eng tele ->
      prev eng tele;
      f eng tele)

let add_pre_sample t f =
  let h = t.next_pre in
  t.next_pre <- h + 1;
  t.pre_samples <- t.pre_samples @ [ (h, f) ];
  h

let remove_pre_sample t h =
  t.pre_samples <- List.filter (fun (h', _) -> h' <> h) t.pre_samples

let handle t raw =
  try Hashtbl.find t.handles raw
  with Not_found ->
    let s = Timeseries.series t.ts (Om.sanitize raw) in
    Hashtbl.add t.handles raw s;
    s

let sample t eng =
  (* Pre-sample hooks run before the sources are read so anything they
     update (e.g. the governor's gauges) lands in this very sample
     instead of lagging one stride. *)
  List.iter (fun (_, f) -> f eng t) t.pre_samples;
  let now = Engine.now eng in
  (match t.engines with
  | [] | [ _ ] ->
      (* Direct registry walk (no sorted assoc lists): this runs once per
         stride for the whole run, so it must not shed garbage. *)
      let reg = Engine.metrics eng in
      Metrics.iter_counters reg (fun k n ->
          Timeseries.record (handle t k) ~time:now (float_of_int n));
      Metrics.iter_gauges reg (fun k v ->
          Timeseries.record (handle t k) ~time:now v)
  | engines ->
      (* Several shard engines share one telemetry instance; the same
         family registered by each shard must land as ONE point per
         sample (summed), not as k successive overwrites whose winner
         depends on install order. *)
      let acc = Hashtbl.create 64 in
      let add k v =
        match Hashtbl.find_opt acc k with
        | Some prev -> Hashtbl.replace acc k (prev +. v)
        | None -> Hashtbl.add acc k v
      in
      List.iter
        (fun e ->
          let reg = Engine.metrics e in
          Metrics.iter_counters reg (fun k n -> add k (float_of_int n));
          Metrics.iter_gauges reg (fun k v -> add k v))
        engines;
      Hashtbl.iter (fun k v -> Timeseries.record (handle t k) ~time:now v) acc);
  Timeseries.sample t.ts ~time:now;
  Monitor.check_stalls t.mon ~now;
  t.on_sample eng t

let sample_now t = match t.engines with [] -> () | eng :: _ -> sample t eng

let install t eng =
  (* Idempotent and keyed by the engine itself: re-installing the same
     engine (or installing several shard engines) cannot double-register
     the executed/pending families — the sources below are summing
     closures over the engine list, and [Timeseries.add_source] replaces
     by name. *)
  if not (List.memq eng t.engines) then t.engines <- t.engines @ [ eng ];
  Timeseries.add_source t.ts "hope_engine_events_executed" (fun () ->
      List.fold_left
        (fun acc e -> acc +. float_of_int (Engine.events_processed e))
        0.0 t.engines);
  Timeseries.add_source t.ts "hope_engine_events_pending" (fun () ->
      List.fold_left
        (fun acc e -> acc +. float_of_int (Engine.pending_events e))
        0.0 t.engines);
  Engine.set_sampler eng ~stride:(Timeseries.stride t.ts) (sample t)

let install_shard t ~shard eng =
  if not (List.exists (fun (_, e) -> e == eng) t.shard_engines) then
    t.shard_engines <- t.shard_engines @ [ (shard, eng) ]

let has_shards t = t.shard_engines <> []

let shard_label i = [ ("shard", string_of_int i) ]

(* Fold the sharded engine's GVT-epoch samples into the time series (one
   point per shard per epoch, labeled) and the monitor's parallel
   detectors. [samples] arrive ordered by (gvt, shard, events); when GVT
   froze, a shard has several samples at one epoch — the series keep the
   last one per (shard, gvt) so exported trajectories stay one point per
   timestamp, while the monitor sees every sample (a frozen GVT is
   exactly what [Gvt_stall] watches for). *)
let absorb_shards t ~engines ~samples =
  Array.iteri (fun i eng -> install_shard t ~shard:i eng) engines;
  Monitor.observe_shards t.mon samples;
  (* Epochs are keyed at the exporter's timestamp resolution (virtual
     microseconds): two float-distinct GVT readings that would render to
     the same timestamp must collapse to one point, or the exposition
     carries duplicate samples. *)
  let epoch_key gvt = Printf.sprintf "%.0f" (gvt *. 1e6) in
  let keep : (int * string, Monitor.shard_sample) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (s : Monitor.shard_sample) ->
      let key = (s.sh_shard, epoch_key s.sh_gvt) in
      if not (Hashtbl.mem keep key) then order := key :: !order;
      Hashtbl.replace keep key s)
    samples;
  let rec_labeled i name time v =
    Timeseries.record
      (Timeseries.series t.ts ~labels:(shard_label i) name)
      ~time v
  in
  (* Per-epoch aggregates (max lvt lead, total stragglers) in one pass. *)
  let epoch : (string, (float * int) ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (_, ek) (s : Monitor.shard_sample) ->
      let cell =
        match Hashtbl.find_opt epoch ek with
        | Some c -> c
        | None ->
            let c = ref (0.0, 0) in
            Hashtbl.add epoch ek c;
            c
      in
      let lag, n = !cell in
      cell := (Float.max lag (s.sh_lvt -. s.sh_gvt), n + s.sh_stragglers))
    keep;
  let gvt_seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun key ->
      let s = Hashtbl.find keep key in
      let i = s.sh_shard and time = s.sh_gvt in
      rec_labeled i "hope_shard_lvt" time s.sh_lvt;
      rec_labeled i "hope_shard_events" time (float_of_int s.sh_events);
      rec_labeled i "hope_shard_stragglers" time
        (float_of_int s.sh_stragglers);
      rec_labeled i "hope_shard_wasted_events" time
        (float_of_int s.sh_rolled);
      rec_labeled i "hope_shard_rollback_depth" time
        (float_of_int s.sh_rollback_depth);
      rec_labeled i "hope_shard_annihilations" time
        (float_of_int s.sh_annihilations);
      rec_labeled i "hope_shard_full_spins" time
        (float_of_int s.sh_full_spins);
      rec_labeled i "hope_shard_mailbox_occupancy" time
        (float_of_int s.sh_mailbox_occ);
      rec_labeled i "hope_shard_mailbox_high_water" time
        (float_of_int s.sh_mailbox_peak);
      if not (Hashtbl.mem gvt_seen (epoch_key time)) then begin
        Hashtbl.add gvt_seen (epoch_key time) ();
        let lag, stragglers = !(Hashtbl.find epoch (epoch_key time)) in
        Timeseries.record (Timeseries.series t.ts "hope_gvt") ~time time;
        Timeseries.record (Timeseries.series t.ts "hope_gvt_lag") ~time lag;
        Timeseries.record
          (Timeseries.series t.ts "hope_shard_stragglers_total")
          ~time (float_of_int stragglers)
      end)
    (List.rev !order)

let registry_instruments ?(labels = []) reg =
  List.map
    (fun (k, v) -> Om.Counter { name = k; labels; value = v })
    (Metrics.counters reg)
  @ List.map
      (fun (k, v) -> Om.Gauge { name = k; labels; value = v })
      (Metrics.gauges reg)
  @ List.map
      (fun (k, h) ->
        Om.Summary
          {
            name = k;
            labels;
            count = Metrics.hist_count h;
            sum = Metrics.hist_sum h;
            quantiles =
              [
                (0.5, Metrics.hist_percentile h 50.0);
                (0.9, Metrics.hist_percentile h 90.0);
                (0.99, Metrics.hist_percentile h 99.0);
              ];
          })
      (Metrics.histograms reg)

(* Merge duplicate families across shard registries: counters and gauges
   sum; histograms combine count and sum, keeping the quantiles of the
   shard that saw the most observations (exact cross-shard quantiles
   would need the raw reservoirs). First-seen order is preserved so the
   export stays byte-deterministic given a fixed install order. *)
let merge_instruments lists =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun inst ->
      let name =
        match inst with
        | Om.Counter { name; labels; _ }
        | Om.Gauge { name; labels; _ }
        | Om.Summary { name; labels; _ } ->
            name ^ Om.render_labels labels
      in
      match Hashtbl.find_opt tbl name with
      | None ->
          Hashtbl.add tbl name inst;
          order := name :: !order
      | Some prev ->
          let combined =
            match (prev, inst) with
            | Om.Counter a, Om.Counter b ->
                Om.Counter { a with value = a.value + b.value }
            | Om.Gauge a, Om.Gauge b ->
                Om.Gauge { a with value = a.value +. b.value }
            | Om.Summary a, Om.Summary b ->
                Om.Summary
                  {
                    a with
                    count = a.count + b.count;
                    sum = a.sum +. b.sum;
                    quantiles =
                      (if b.count > a.count then b.quantiles else a.quantiles);
                  }
            | _, b -> b
          in
          Hashtbl.replace tbl name combined)
    (List.concat lists);
  List.rev_map (fun name -> Hashtbl.find tbl name) !order

let instruments t =
  let live = List.map (fun e -> registry_instruments (Engine.metrics e)) t.engines in
  let shard_agg =
    List.map
      (fun (_, e) -> registry_instruments (Engine.metrics e))
      t.shard_engines
  in
  (* The unlabeled aggregate: live engines and shard registries merged by
     family (counters/gauges sum, histogram count+sum combine). *)
  let registry =
    match live @ shard_agg with
    | [] -> []
    | [ one ] -> one
    | many -> merge_instruments many
  in
  (* Plus one labeled variant per shard registry, under shard="N". *)
  let labeled =
    List.concat_map
      (fun (shard, e) ->
        registry_instruments
          ~labels:[ ("shard", string_of_int shard) ]
          (Engine.metrics e))
      t.shard_engines
  in
  registry @ labeled
  @ List.map
      (fun (k, v) -> Om.Gauge { name = k; labels = []; value = v })
      (Monitor.gauges t.mon)

let openmetrics t =
  sample_now t;
  Om.to_string ~instruments:(instruments t) ~series:t.ts ()

let write_openmetrics t ~file =
  let s = openmetrics t in
  if file = "-" then output_string stdout s
  else begin
    let oc = open_out file in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc s)
  end
