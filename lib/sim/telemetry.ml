module Monitor = Hope_obs.Monitor
module Timeseries = Hope_obs.Timeseries
module Om = Hope_obs.Export_openmetrics

type pre_sample_handle = int

type t = {
  mon : Monitor.t;
  ts : Timeseries.t;
  handles : (string, Timeseries.series) Hashtbl.t;
      (* raw registry name -> series, so per-sample reads skip both the
         name sanitization and the by-name series lookup *)
  mutable engine : Engine.t option;
  mutable pre_samples : (pre_sample_handle * (Engine.t -> t -> unit)) list;
      (* registration order; keyed so a consumer (the governor) can
         detach its tick on uninstall instead of leaving a dead closure
         running every stride *)
  mutable next_pre : pre_sample_handle;
  mutable on_sample : Engine.t -> t -> unit;
}

(* The monitor's gauges under the same stable names [Monitor.gauges]
   reports, registered as fixed thunks: reading them per sample then
   allocates a couple of float boxes instead of a 9-pair list. *)
let add_monitor_sources ts mon =
  List.iter
    (fun (name, read) -> Timeseries.add_source ts name read)
    [
      ("hope_monitor_cascades", fun () -> float_of_int (Monitor.cascades mon));
      ("hope_monitor_committed_vtime", fun () -> Monitor.committed_vtime mon);
      ("hope_monitor_cycle_cuts", fun () -> float_of_int (Monitor.cycle_cuts mon));
      ( "hope_monitor_diagnostics",
        fun () -> float_of_int (Monitor.diagnostics_count mon) );
      ("hope_monitor_live_aids", fun () -> float_of_int (Monitor.live_aids mon));
      ("hope_monitor_max_cascade", fun () -> float_of_int (Monitor.max_cascade mon));
      ( "hope_monitor_open_intervals",
        fun () -> float_of_int (Monitor.open_intervals mon) );
      ( "hope_monitor_peak_open_intervals",
        fun () -> float_of_int (Monitor.peak_open_intervals mon) );
      ("hope_monitor_wasted_vtime", fun () -> Monitor.wasted_vtime mon);
    ]

let create ?config ?(deep = false) ?(stride = 1e-3) ?(capacity = 1024)
    ~recorder () =
  let mon = Monitor.create ?config () in
  Monitor.attach ~dep:deep mon recorder;
  let ts = Timeseries.create ~capacity ~stride () in
  add_monitor_sources ts mon;
  {
    mon;
    ts;
    handles = Hashtbl.create 64;
    engine = None;
    pre_samples = [];
    next_pre = 0;
    on_sample = (fun _ _ -> ());
  }

let monitor t = t.mon
let series t = t.ts
let stride t = Timeseries.stride t.ts
let set_on_sample t f = t.on_sample <- f

let add_on_sample t f =
  let prev = t.on_sample in
  t.on_sample <-
    (fun eng tele ->
      prev eng tele;
      f eng tele)

let add_pre_sample t f =
  let h = t.next_pre in
  t.next_pre <- h + 1;
  t.pre_samples <- t.pre_samples @ [ (h, f) ];
  h

let remove_pre_sample t h =
  t.pre_samples <- List.filter (fun (h', _) -> h' <> h) t.pre_samples

let handle t raw =
  try Hashtbl.find t.handles raw
  with Not_found ->
    let s = Timeseries.series t.ts (Om.sanitize raw) in
    Hashtbl.add t.handles raw s;
    s

let sample t eng =
  (* Pre-sample hooks run before the sources are read so anything they
     update (e.g. the governor's gauges) lands in this very sample
     instead of lagging one stride. *)
  List.iter (fun (_, f) -> f eng t) t.pre_samples;
  let now = Engine.now eng in
  let reg = Engine.metrics eng in
  (* Direct registry walk (no sorted assoc lists): this runs once per
     stride for the whole run, so it must not shed garbage. *)
  Metrics.iter_counters reg (fun k n ->
      Timeseries.record (handle t k) ~time:now (float_of_int n));
  Metrics.iter_gauges reg (fun k v -> Timeseries.record (handle t k) ~time:now v);
  Timeseries.sample t.ts ~time:now;
  Monitor.check_stalls t.mon ~now;
  t.on_sample eng t

let sample_now t = match t.engine with None -> () | Some eng -> sample t eng

let install t eng =
  t.engine <- Some eng;
  Timeseries.add_source t.ts "hope_engine_events_executed" (fun () ->
      float_of_int (Engine.events_processed eng));
  Timeseries.add_source t.ts "hope_engine_events_pending" (fun () ->
      float_of_int (Engine.pending_events eng));
  Engine.set_sampler eng ~stride:(Timeseries.stride t.ts) (sample t)

let instruments t =
  let registry =
    match t.engine with
    | None -> []
    | Some eng ->
        let reg = Engine.metrics eng in
        List.map
          (fun (k, v) -> Om.Counter { name = k; value = v })
          (Metrics.counters reg)
        @ List.map
            (fun (k, v) -> Om.Gauge { name = k; value = v })
            (Metrics.gauges reg)
        @ List.map
            (fun (k, h) ->
              Om.Summary
                {
                  name = k;
                  count = Metrics.hist_count h;
                  sum = Metrics.hist_sum h;
                  quantiles =
                    [
                      (0.5, Metrics.hist_percentile h 50.0);
                      (0.9, Metrics.hist_percentile h 90.0);
                      (0.99, Metrics.hist_percentile h 99.0);
                    ];
                })
            (Metrics.histograms reg)
  in
  registry
  @ List.map
      (fun (k, v) -> Om.Gauge { name = k; value = v })
      (Monitor.gauges t.mon)

let openmetrics t =
  sample_now t;
  Om.to_string ~instruments:(instruments t) ~series:t.ts ()

let write_openmetrics t ~file =
  let s = openmetrics t in
  if file = "-" then output_string stdout s
  else begin
    let oc = open_out file in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc s)
  end
