(** Live-telemetry glue: recorder → monitor, engine → time series,
    everything → OpenMetrics.

    [Hope_obs] is deliberately below the simulator, so its samplers and
    exporters know nothing about {!Engine} or {!Metrics}. This module is
    the one place that knows all three: it attaches a
    {!Hope_obs.Monitor} to the engine's recorder as a tap, registers the
    metrics registry and the monitor's gauges as {!Hope_obs.Timeseries}
    sources, drives sampling (and stall checks) from the engine's
    virtual-time sampler hook, and renders the lot through
    {!Hope_obs.Export_openmetrics}.

    Typical shape (what [hope_sim --metrics/--watch/--health] does):

    {[
      let tele = Telemetry.create ~recorder:(Engine.obs eng) () in
      Telemetry.install tele eng;
      (* ... run ... *)
      Telemetry.write_openmetrics tele ~file:"metrics.prom"
    ]} *)

type t

val create :
  ?config:Hope_obs.Monitor.config ->
  ?deep:bool ->
  ?stride:float ->
  ?capacity:int ->
  recorder:Hope_obs.Recorder.t ->
  unit ->
  t
(** Build a monitor (attached to [recorder] as its tap immediately) and
    an empty time-series set. [deep] (default [false]) opts the tap into
    the dep event class, arming the monitor's replace-churn bounce
    detector at the price of per-Replace allocation — [--health] turns
    it on, plain [--metrics]/[--watch] sampling leaves it off. [stride]
    (default [1e-3] virtual seconds) is the sampling period; [capacity]
    (default 1024) the points retained per series. *)

val monitor : t -> Hope_obs.Monitor.t
val series : t -> Hope_obs.Timeseries.t
val stride : t -> float

val install : t -> Engine.t -> unit
(** Hook sampling into the engine's virtual-time sampler (replacing any
    sampler it already had) and register the engine's executed/pending
    event counts as sources. Each sample walks the engine's metrics
    registry directly — every counter and gauge lands in a series under
    its sanitized name, with new instruments picked up as they appear —
    and also runs the monitor's stall check. The monitor's own gauges
    were registered as sources at {!create} time.

    Install is idempotent and keyed by the engine: re-installing the
    same engine is a no-op (beyond refreshing its sampler), and
    installing {e several} engines — one per shard domain — merges
    rather than double-registers: the executed/pending sources sum over
    all installed engines, per-sample registry walks sum duplicate
    families across registries, and {!instruments} merges duplicate
    families by name (counters/gauges summed, histogram count+sum
    combined) so the OpenMetrics export never emits a family twice.

    The rollback-storage gauges ([hope.ckpt_live], [hope.journal_depth],
    [hope.arrivals_resident]) flow through this walk like any other: no
    per-subsystem wiring, and they drain to exactly 0 at quiescence —
    the OpenMetrics export doubles as the checkpoint-GC check. *)

val set_on_sample : t -> (Engine.t -> t -> unit) -> unit
(** Extra per-sample callback (after the sources are read); the
    [--watch] progress line rides on this. Call before or after
    {!install}. Replaces any previous callback — prefer
    {!add_on_sample} for composable consumers. *)

val add_on_sample : t -> (Engine.t -> t -> unit) -> unit
(** Append a per-sample callback after any already installed (including
    one set via {!set_on_sample}), instead of replacing it. *)

val install_shard : t -> shard:int -> Engine.t -> unit
(** Register a parallel-engine per-domain registry as a {e snapshot-only}
    source: no sampler is hooked (the domain is done by the time this is
    called). {!instruments} then emits each of its families twice — into
    the unlabeled aggregate (merged with every other engine) and as a
    [shard="N"] labeled variant. Idempotent per engine. *)

val has_shards : t -> bool
(** True once {!install_shard} / {!absorb_shards} registered at least
    one per-domain registry — i.e. this telemetry describes a parallel
    run even though no live sampler ever fired. *)

val absorb_shards :
  t ->
  engines:Engine.t array ->
  samples:Hope_obs.Monitor.shard_sample list ->
  unit
(** Post-run ingestion of a sharded run ([Shard.result]): installs each
    per-domain engine via {!install_shard} (index = shard id), feeds the
    GVT-epoch samples to {!Hope_obs.Monitor.observe_shards} (arming the
    parallel diagnostics), and records the labeled shard trajectories —
    [hope_shard_lvt]/[_events]/[_stragglers]/[_wasted_events]/
    [_rollback_depth]/[_annihilations]/[_full_spins]/
    [_mailbox_occupancy]/[_mailbox_high_water] per shard, plus unlabeled
    [hope_gvt], [hope_gvt_lag] (max shard lvt − GVT) and
    [hope_shard_stragglers_total] — one point per GVT epoch, timestamped
    at the epoch's GVT. *)

type pre_sample_handle

val add_pre_sample : t -> (Engine.t -> t -> unit) -> pre_sample_handle
(** Append a callback that runs at the {e start} of each sample, before
    the time-series sources are read — the governor's policy tick rides
    on this so the gauges it updates land in the same sample. Callbacks
    run in registration order. The returned handle detaches it. *)

val remove_pre_sample : t -> pre_sample_handle -> unit
(** Detach a pre-sample callback. Idempotent; other callbacks keep
    their order. [Governor.uninstall] uses this so a detached
    governor's tick stops running (and its gauges stop refreshing)
    instead of lingering as a dead closure every stride. *)

val sample_now : t -> unit
(** Take one sample immediately (no-op before {!install}). Exports call
    this so the final point reflects end-of-run state even when the run
    ended between strides. *)

val instruments : t -> Hope_obs.Export_openmetrics.instrument list
(** Final-value snapshot: registry counters, gauges, and histograms
    (histograms as summaries with p50/p90/p99), plus the monitor
    gauges. *)

val openmetrics : t -> string
(** {!sample_now}, then render instruments and series. *)

val write_openmetrics : t -> file:string -> unit
(** Write {!openmetrics} to [file]; ["-"] writes to stdout. *)
