type entry = { time : float; category : string; message : string }

type t = {
  mutable ring : entry array;
  capacity : int;
  mutable size : int;
  mutable next : int;
  mutable on : bool;
}

let dummy = { time = 0.0; category = ""; message = "" }

let create ?(capacity = 65536) () =
  { ring = [||]; capacity = max 1 capacity; size = 0; next = 0; on = false }

let enable t = t.on <- true
let disable t = t.on <- false
let enabled t = t.on

let record t ~time ~category message =
  if t.on then begin
    if Array.length t.ring = 0 then t.ring <- Array.make t.capacity dummy;
    t.ring.(t.next) <- { time; category; message };
    t.next <- (t.next + 1) mod t.capacity;
    if t.size < t.capacity then t.size <- t.size + 1
  end

(* A formatter that discards everything: the disabled branch of [recordf]
   must not touch the shared [Format.str_formatter] (ikfprintf never
   writes, but threading the global formatter through was smelly and made
   the no-op look stateful). *)
let null_formatter = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let recordf t ~time ~category fmt =
  if t.on then
    Format.kasprintf (fun message -> record t ~time ~category message) fmt
  else Format.ikfprintf (fun _ -> ()) null_formatter fmt

let entries t =
  (* The oldest retained entry sits at ring index [next - size]. *)
  let result = ref [] in
  let start = (t.next - t.size + t.capacity) mod t.capacity in
  for i = t.size - 1 downto 0 do
    result := t.ring.((start + i) mod t.capacity) :: !result
  done;
  !result

let find t ~category =
  List.filter (fun e -> String.equal e.category category) (entries t)

let clear t =
  t.size <- 0;
  t.next <- 0

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "[%12.6f] %-12s %s@." e.time e.category e.message)
    (entries t)
