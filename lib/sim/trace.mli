(** Bounded in-memory event trace (compatibility shim).

    A trace collects timestamped, categorised lines during a simulation run
    for debugging and for the executable re-enactments of the paper's
    diagram figures (tests assert on trace contents). The buffer is a ring:
    once [capacity] entries are held, the oldest are dropped. Tracing is off
    by default so the hot path costs one branch.

    New observability consumers should use the structured, typed event
    stream in {!Hope_obs} (reachable via [Engine.obs]) instead: it is
    unbounded, machine-readable, and feeds the exporters and analytics
    passes. This module remains as the thin human-readable debugging
    channel the existing tests and the [--print-trace] CLI flag rely
    on. *)

type entry = { time : float; category : string; message : string }

type t

val create : ?capacity:int -> unit -> t
(** Fresh trace, disabled until {!enable}. Default capacity 65536. *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val record : t -> time:float -> category:string -> string -> unit
(** Append an entry (no-op while disabled). *)

val recordf :
  t -> time:float -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted {!record}; the format arguments are not evaluated while the
    trace is disabled. *)

val entries : t -> entry list
(** All retained entries, oldest first. *)

val find : t -> category:string -> entry list
(** Retained entries in the given category, oldest first. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** One line per retained entry. *)
