type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length v = v.size

let push v x =
  if v.size = Array.length v.data then begin
    let capacity = max 8 (2 * v.size) in
    let data = Array.make capacity x in
    Array.blit v.data 0 data 0 v.size;
    v.data <- data
  end;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let get v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.get: index out of bounds";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.size then invalid_arg "Vec.set: index out of bounds";
  v.data.(i) <- x

let truncate v ~keep ~dummy =
  if keep < 0 || keep > v.size then invalid_arg "Vec.truncate: bad size";
  Array.fill v.data keep (v.size - keep) dummy;
  v.size <- keep

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.size - 1 do
    f i v.data.(i)
  done

let find_index_from v start p =
  let rec loop i =
    if i >= v.size then None else if p v.data.(i) then Some i else loop (i + 1)
  in
  loop (max 0 start)

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.size - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.init v.size (fun i -> v.data.(i))

let clear v = v.size <- 0
