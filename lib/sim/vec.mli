(** Growable arrays (OCaml 5.1 lacks [Dynarray]).

    Used for per-process arrival logs, which grow monotonically and are
    scanned in order. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** Replace the element at an existing index.
    @raise Invalid_argument when out of bounds. *)

val truncate : 'a t -> keep:int -> dummy:'a -> unit
(** Shrink to the first [keep] elements, scrubbing the abandoned slots
    with [dummy] so their previous contents are not retained. Used by
    in-place compaction: shift the survivors down with {!set}, then
    truncate. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit

val find_index_from : 'a t -> int -> ('a -> bool) -> int option
(** [find_index_from v i p] is the first index [>= i] whose element
    satisfies [p]. *)

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val clear : 'a t -> unit
