type t = Proc_id.t

let of_proc p = p
let to_proc t = t
let equal = Proc_id.equal
let compare = Proc_id.compare
let index = Proc_id.to_int
let pp ppf t = Format.fprintf ppf "X%d" (Proc_id.to_int t)
let to_string t = Format.asprintf "%a" pp t

(* AIDs are already interned: the AID process id *is* a dense small
   integer (the scheduler allocates process ids consecutively), and
   [compare] is integer comparison on it, so [index] is order-preserving
   and the hash-consed hybrid set can use the bitset layout. *)
module Set = Aid_set.Make (struct
  type nonrec t = t

  let index = index
  let of_index = Proc_id.of_int
  let pp = pp
  let dense = true
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
