(** Assumption identifiers (AIDs).

    The paper's single data type: "an AID is a reference to an optimistic
    assumption which enables the primitives to separately specify
    dependence, precedence, and confirmation of an assumption" (§3). In the
    prototype an AID is realised as the process identifier of the AID
    process that tracks it (§4); we keep that representation. *)

type t
(** An assumption identifier. *)

val of_proc : Proc_id.t -> t
(** The AID realised by the given AID process. *)

val to_proc : t -> Proc_id.t
(** The AID process tracking this assumption. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val index : t -> int
(** The interned dense integer identity of this AID (the underlying
    process id). Order-preserving with respect to {!compare}; the basis
    for the bitset layout and O(1) equality of {!Set}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Aid_set.S with type elt = t
(** Hash-consed hybrid sets of AIDs (see {!Aid_set}): O(1) equality,
    memoized union, allocation-free membership — the representation of
    message tags and interval IDO/UDO sets. Iteration order matches the
    previous [Set.Make] instantiation exactly. *)

module Map : Map.S with type key = t
