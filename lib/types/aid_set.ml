(* Hash-consed hybrid integer sets behind Aid.Set / Interval_id.Set.
   See aid_set.mli for the design rationale. Invariants:

   - Arr payloads are sorted, duplicate-free, and never mutated after
     construction.
   - Bits payloads (dense element domains only) are used exactly when
     [E.dense && cardinal > small_max]; the word array is trimmed (first
     and last words non-zero) so the representation is canonical — the
     layout is a pure function of the element set, which hash-consing
     relies on.
   - Every set is registered in a weak hash-cons table, so structurally
     equal sets built through any operation sequence are physically equal
     while at least one copy is live. [equal] still falls back to a
     structural check so correctness never depends on weak-table
     retention. *)

let small_max = 32
let bits_per_word = 63

module type ELT = sig
  type t

  val index : t -> int
  val of_index : int -> t
  val pp : Format.formatter -> t -> unit
  val dense : bool
end

module type S = sig
  type elt
  type t

  val empty : t
  val is_empty : t -> bool
  val mem : elt -> t -> bool
  val add : elt -> t -> t
  val singleton : elt -> t
  val remove : elt -> t -> t
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val disjoint : t -> t -> bool
  val subset : t -> t -> bool
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val cardinal : t -> int
  val elements : t -> elt list
  val of_list : elt list -> t
  val fold : (elt -> 'acc -> 'acc) -> t -> 'acc -> 'acc
  val iter : (elt -> unit) -> t -> unit
  val exists : (elt -> bool) -> t -> bool
  val for_all : (elt -> bool) -> t -> bool
  val filter : (elt -> bool) -> t -> t
  val choose_opt : t -> elt option
  val min_elt_opt : t -> elt option
  val id : t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

type stats = { unions_memoized : int; unions_computed : int }

let memo_hits = ref 0
let memo_misses = ref 0
let stats () = { unions_memoized = !memo_hits; unions_computed = !memo_misses }

module Make (E : ELT) = struct
  type elt = E.t

  type repr =
    | Arr of int array  (** sorted, duplicate-free *)
    | Bits of { off : int; words : int array }
        (** bit [b] of [words.(w)] set iff index [(off + w) * 63 + b] is a
            member; trimmed so the first and last words are non-zero *)

  type t = { uid : int; h : int; card : int; repr : repr }

  (* ------------------------------------------------------------------ *)
  (* Raw representation helpers                                          *)
  (* ------------------------------------------------------------------ *)

  let repr_equal a b =
    match (a, b) with
    | Arr x, Arr y ->
      let n = Array.length x in
      n = Array.length y
      &&
      let rec go i = i >= n || (x.(i) = y.(i) && go (i + 1)) in
      go 0
    | Bits { off = o1; words = w1 }, Bits { off = o2; words = w2 } ->
      o1 = o2
      &&
      let n = Array.length w1 in
      n = Array.length w2
      &&
      let rec go i = i >= n || (w1.(i) = w2.(i) && go (i + 1)) in
      go 0
    | Arr _, Bits _ | Bits _, Arr _ -> false

  let hash_repr = function
    | Arr a -> Array.fold_left (fun h x -> (h * 486187739) + x + 1) 5381 a
    | Bits { off; words } ->
      Array.fold_left
        (fun h w -> (h * 486187739) + (w lxor (w lsr 31)))
        ((off * 7919) + 17)
        words

  let popcount w0 =
    let rec go w n = if w = 0 then n else go (w land (w - 1)) (n + 1) in
    go w0 0

  (* ------------------------------------------------------------------ *)
  (* Hash-consing                                                        *)
  (* ------------------------------------------------------------------ *)

  module HC = Weak.Make (struct
    type node = t
    type t = node

    let equal a b = a.h = b.h && a.card = b.card && repr_equal a.repr b.repr
    let hash t = t.h
  end)

  let table = HC.create 1024
  let next_uid = ref 0

  let cons card repr =
    let h = hash_repr repr land max_int in
    let node = { uid = !next_uid; h; card; repr } in
    let res = HC.merge table node in
    if res == node then incr next_uid;
    res

  let empty = cons 0 (Arr [||])

  (* Canonical constructor from a sorted duplicate-free index array. *)
  let of_sorted_unique a =
    let card = Array.length a in
    if card = 0 then empty
    else if (not E.dense) || card <= small_max then cons card (Arr a)
    else begin
      let lo = a.(0) / bits_per_word and hi = a.(card - 1) / bits_per_word in
      let words = Array.make (hi - lo + 1) 0 in
      Array.iter
        (fun x ->
          let w = (x / bits_per_word) - lo in
          words.(w) <- words.(w) lor (1 lsl (x mod bits_per_word)))
        a;
      cons card (Bits { off = lo; words })
    end

  (* Canonical constructor from an untrimmed word array starting at word
     [off]. Takes ownership of [words]. *)
  let of_words off words =
    let card = Array.fold_left (fun n w -> n + popcount w) 0 words in
    if card = 0 then empty
    else if card <= small_max then begin
      let out = Array.make card 0 in
      let k = ref 0 in
      Array.iteri
        (fun wi w ->
          if w <> 0 then
            for b = 0 to bits_per_word - 1 do
              if w land (1 lsl b) <> 0 then begin
                out.(!k) <- ((off + wi) * bits_per_word) + b;
                incr k
              end
            done)
        words;
      of_sorted_unique out
    end
    else begin
      let n = Array.length words in
      let lo = ref 0 in
      while words.(!lo) = 0 do
        incr lo
      done;
      let hi = ref (n - 1) in
      while words.(!hi) = 0 do
        decr hi
      done;
      let words =
        if !lo = 0 && !hi = n - 1 then words
        else Array.sub words !lo (!hi - !lo + 1)
      in
      cons card (Bits { off = off + !lo; words })
    end

  let mem_idx x t =
    match t.repr with
    | Arr a ->
      let lo = ref 0 and hi = ref (Array.length a - 1) and found = ref false in
      while (not !found) && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let v = a.(mid) in
        if v = x then found := true
        else if v < x then lo := mid + 1
        else hi := mid - 1
      done;
      !found
    | Bits { off; words } ->
      let w = (x / bits_per_word) - off in
      w >= 0
      && w < Array.length words
      && words.(w) land (1 lsl (x mod bits_per_word)) <> 0

  let iter_idx f t =
    match t.repr with
    | Arr a -> Array.iter f a
    | Bits { off; words } ->
      Array.iteri
        (fun wi w ->
          if w <> 0 then begin
            let base = (off + wi) * bits_per_word in
            for b = 0 to bits_per_word - 1 do
              if w land (1 lsl b) <> 0 then f (base + b)
            done
          end)
        words

  let to_idx_array t =
    match t.repr with
    | Arr a -> a (* shared: Arr payloads are immutable *)
    | Bits _ ->
      let out = Array.make t.card 0 in
      let k = ref 0 in
      iter_idx
        (fun x ->
          out.(!k) <- x;
          incr k)
        t;
      out

  (* ------------------------------------------------------------------ *)
  (* Memoized union                                                      *)
  (* ------------------------------------------------------------------ *)

  let merge_arrays a b =
    let na = Array.length a and nb = Array.length b in
    let out = Array.make (na + nb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na && !j < nb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then begin
        out.(!k) <- x;
        incr i
      end
      else if x > y then begin
        out.(!k) <- y;
        incr j
      end
      else begin
        out.(!k) <- x;
        incr i;
        incr j
      end;
      incr k
    done;
    while !i < na do
      out.(!k) <- a.(!i);
      incr i;
      incr k
    done;
    while !j < nb do
      out.(!k) <- b.(!j);
      incr j;
      incr k
    done;
    if !k = na + nb then out else Array.sub out 0 !k

  let union_raw a b =
    match (a.repr, b.repr) with
    | Bits { off = o1; words = w1 }, Bits { off = o2; words = w2 } ->
      let lo = min o1 o2 in
      let hi = max (o1 + Array.length w1) (o2 + Array.length w2) in
      let words = Array.make (hi - lo) 0 in
      Array.iteri (fun i w -> words.(o1 - lo + i) <- w) w1;
      Array.iteri
        (fun i w -> words.(o2 - lo + i) <- words.(o2 - lo + i) lor w)
        w2;
      of_words lo words
    | _ -> of_sorted_unique (merge_arrays (to_idx_array a) (to_idx_array b))

  (* The per-send cumulative-tag fold recomputes the same unions over and
     over; memoize on the operands' hash-cons uids. Keys are packed into
     one int (uids stay far below 2^31 in practice; pairs that would not
     pack are computed unmemoized). The table is capped so a pathological
     workload degrades to recomputation, not unbounded growth. *)
  let union_memo : (int, t) Hashtbl.t = Hashtbl.create 4096
  let union_memo_cap = 1 lsl 17

  let union a b =
    if a == b then a
    else if a.card = 0 then b
    else if b.card = 0 then a
    else begin
      let a, b = if a.uid <= b.uid then (a, b) else (b, a) in
      if b.uid >= 0x4000_0000 then union_raw a b
      else begin
        let key = (a.uid lsl 31) lor b.uid in
        match Hashtbl.find union_memo key with
        | r ->
          incr memo_hits;
          r
        | exception Not_found ->
          incr memo_misses;
          let r = union_raw a b in
          if Hashtbl.length union_memo >= union_memo_cap then
            Hashtbl.reset union_memo;
          Hashtbl.add union_memo key r;
          r
      end
    end

  (* ------------------------------------------------------------------ *)
  (* Other set operations                                                *)
  (* ------------------------------------------------------------------ *)

  let diff a b =
    if a.card = 0 || a == b then empty
    else if b.card = 0 then a
    else
      match (a.repr, b.repr) with
      | Bits { off = o1; words = w1 }, Bits { off = o2; words = w2 } ->
        let words = Array.copy w1 in
        Array.iteri
          (fun i w ->
            let j = o2 + i - o1 in
            if j >= 0 && j < Array.length words then
              words.(j) <- words.(j) land lnot w)
          w2;
        of_words o1 words
      | _ ->
        let aa = to_idx_array a in
        let out = Array.make (Array.length aa) 0 in
        let k = ref 0 in
        Array.iter
          (fun x ->
            if not (mem_idx x b) then begin
              out.(!k) <- x;
              incr k
            end)
          aa;
        if !k = a.card then a
        else of_sorted_unique (Array.sub out 0 !k)

  let inter a b =
    if a == b then a
    else if a.card = 0 || b.card = 0 then empty
    else
      match (a.repr, b.repr) with
      | Bits { off = o1; words = w1 }, Bits { off = o2; words = w2 } ->
        let lo = max o1 o2
        and hi = min (o1 + Array.length w1) (o2 + Array.length w2) in
        if hi <= lo then empty
        else begin
          let words = Array.make (hi - lo) 0 in
          for i = 0 to hi - lo - 1 do
            words.(i) <- w1.(lo - o1 + i) land w2.(lo - o2 + i)
          done;
          of_words lo words
        end
      | _ ->
        let small, big = if a.card <= b.card then (a, b) else (b, a) in
        let sa = to_idx_array small in
        let out = Array.make (Array.length sa) 0 in
        let k = ref 0 in
        Array.iter
          (fun x ->
            if mem_idx x big then begin
              out.(!k) <- x;
              incr k
            end)
          sa;
        of_sorted_unique (Array.sub out 0 !k)

  let disjoint a b =
    if a.card = 0 || b.card = 0 then true
    else if a == b then false
    else
      match (a.repr, b.repr) with
      | Arr x, Arr y ->
        let na = Array.length x and nb = Array.length y in
        let rec go i j =
          if i >= na || j >= nb then true
          else if x.(i) = y.(j) then false
          else if x.(i) < y.(j) then go (i + 1) j
          else go i (j + 1)
        in
        go 0 0
      | Bits { off = o1; words = w1 }, Bits { off = o2; words = w2 } ->
        let lo = max o1 o2
        and hi = min (o1 + Array.length w1) (o2 + Array.length w2) in
        let rec go i =
          i >= hi - lo
          || (w1.(lo - o1 + i) land w2.(lo - o2 + i) = 0 && go (i + 1))
        in
        hi <= lo || go 0
      | Arr x, Bits _ -> Array.for_all (fun v -> not (mem_idx v b)) x
      | Bits _, Arr y -> Array.for_all (fun v -> not (mem_idx v a)) y

  let subset a b =
    a == b || a.card = 0
    || a.card <= b.card
       &&
       match (a.repr, b.repr) with
       | Bits { off = o1; words = w1 }, Bits { off = o2; words = w2 } ->
         let n2 = Array.length w2 in
         let ok = ref true in
         Array.iteri
           (fun i w ->
             if !ok && w <> 0 then begin
               let j = o1 + i - o2 in
               if j < 0 || j >= n2 || w land lnot w2.(j) <> 0 then ok := false
             end)
           w1;
         !ok
       | Arr x, _ -> Array.for_all (fun v -> mem_idx v b) x
       | Bits _, Arr _ ->
         (* a is Bits so card a > small_max, but b is Arr so (dense) card b
            <= small_max < card a: the cardinal guard already failed. *)
         false

  let equal a b =
    a == b || (a.h = b.h && a.card = b.card && repr_equal a.repr b.repr)

  let compare a b =
    if equal a b then 0
    else begin
      let x = to_idx_array a and y = to_idx_array b in
      let nx = Array.length x and ny = Array.length y in
      let n = min nx ny in
      let rec go i =
        if i = n then Stdlib.compare nx ny
        else begin
          let c = Stdlib.compare x.(i) y.(i) in
          if c <> 0 then c else go (i + 1)
        end
      in
      go 0
    end

  (* ------------------------------------------------------------------ *)
  (* Element-level API                                                   *)
  (* ------------------------------------------------------------------ *)

  let is_empty t = t.card = 0
  let cardinal t = t.card
  let id t = t.uid
  let hash t = t.h
  let mem x t = mem_idx (E.index x) t

  let singleton_memo : (int, t) Hashtbl.t = Hashtbl.create 256

  let singleton x =
    let i = E.index x in
    match Hashtbl.find singleton_memo i with
    | s -> s
    | exception Not_found ->
      let s = of_sorted_unique [| i |] in
      Hashtbl.add singleton_memo i s;
      s

  let add x t = if mem x t then t else union t (singleton x)
  let remove x t = if mem x t then diff t (singleton x) else t

  let of_list l =
    match l with
    | [] -> empty
    | [ x ] -> singleton x
    | _ ->
      let a = Array.of_list (List.map E.index l) in
      Array.sort Stdlib.compare a;
      let n = Array.length a in
      let k = ref 1 in
      for i = 1 to n - 1 do
        if a.(i) <> a.(!k - 1) then begin
          a.(!k) <- a.(i);
          incr k
        end
      done;
      of_sorted_unique (if !k = n then a else Array.sub a 0 !k)

  let iter f t = iter_idx (fun i -> f (E.of_index i)) t

  let fold f t acc =
    let acc = ref acc in
    iter (fun e -> acc := f e !acc) t;
    !acc

  exception Found

  let exists p t =
    match iter (fun e -> if p e then raise_notrace Found) t with
    | () -> false
    | exception Found -> true

  let for_all p t = not (exists (fun e -> not (p e)) t)
  let elements t = List.rev (fold (fun e acc -> e :: acc) t [])
  let filter p t = of_list (List.filter p (elements t))

  let min_elt_opt t =
    if t.card = 0 then None
    else
      match t.repr with
      | Arr a -> Some (E.of_index a.(0))
      | Bits _ ->
        let r = ref None in
        (try
           iter
             (fun e ->
               r := Some e;
               raise_notrace Found)
             t
         with Found -> ());
        !r

  let choose_opt = min_elt_opt

  let pp ppf t =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         E.pp)
      (elements t)
end
