(** Hash-consed dependency sets: the shared representation behind
    [Aid.Set] and [Interval_id.Set].

    HOPE's cost model rides on dependency tagging: every speculative send
    unions the IDO sets of all live intervals, and every receive runs
    [disjoint]/[diff]/[mem] against the tag (§3, §5). With tree-based
    [Set.Make] sets those operations allocate O(n log n) per call and
    equality is O(n), so the paper's "wait-free primitives are cheap"
    claim (Table 1) degrades superlinearly with speculation depth. This
    module makes dependency sets first-class cheap values:

    - {b interned elements}: every element maps to a small integer index
      (for AIDs the index {e is} the AID process id, which the scheduler
      already allocates densely; interval ids pack owner and sequence
      number into one order-preserving integer);
    - {b hybrid layout}: a sorted integer array while small, a bitset over
      the index space once large (dense element domains only);
    - {b hash-consing}: structurally equal sets are physically equal, so
      [equal] is a pointer comparison and every set carries a stable
      {!S.id} usable as a cache stamp;
    - {b memoized union}: the per-send cumulative-tag fold hits a cache
      keyed by the operands' ids instead of rebuilding trees;
    - {b allocation-free queries}: [mem], [disjoint], and [subset] walk
      arrays or words without allocating.

    Iteration order is ascending element order (the element's [compare]),
    exactly matching the [Set.Make] modules this replaces, so behaviour —
    including message emission order in the runtime — is unchanged. *)

module type ELT = sig
  type t

  val index : t -> int
  (** Injective, non-negative, and order-preserving: [index a < index b]
      iff [a] precedes [b] in the element order. This is the interning
      function; for AIDs it is the identity on the underlying process id. *)

  val of_index : int -> t
  (** Inverse of {!index}. *)

  val pp : Format.formatter -> t -> unit

  val dense : bool
  (** Whether indices are small and dense enough for the bitset layout.
      When false the sorted-array layout is used at every cardinality
      (interval ids pack owner/seq into sparse indices, so bitsets would
      be pathological there). *)
end

module type S = sig
  type elt
  type t

  val empty : t
  val is_empty : t -> bool
  val mem : elt -> t -> bool
  val add : elt -> t -> t
  val singleton : elt -> t
  val remove : elt -> t -> t
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t

  val disjoint : t -> t -> bool
  (** Allocation-free. *)

  val subset : t -> t -> bool
  (** [subset a b]: is [a] a subset of [b]? Allocation-free. *)

  val equal : t -> t -> bool
  (** O(1) in practice: hash-consing makes structurally equal sets
      physically equal. *)

  val compare : t -> t -> int
  (** A total order (lexicographic on sorted elements). *)

  val cardinal : t -> int
  (** O(1). *)

  val elements : t -> elt list
  (** Ascending element order, as with [Set.Make]. *)

  val of_list : elt list -> t
  val fold : (elt -> 'acc -> 'acc) -> t -> 'acc -> 'acc
  val iter : (elt -> unit) -> t -> unit
  val exists : (elt -> bool) -> t -> bool
  val for_all : (elt -> bool) -> t -> bool
  val filter : (elt -> bool) -> t -> t
  val choose_opt : t -> elt option
  val min_elt_opt : t -> elt option

  val id : t -> int
  (** The hash-consing identity: stable for the set's lifetime, equal ids
      imply equal sets. Useful as an O(1) cache-validation stamp (see
      [History.cumulative_ido]). *)

  val hash : t -> int
  (** O(1): the precomputed structural hash. *)

  val pp : Format.formatter -> t -> unit
  (** Renders as [{e1,e2,...}] in ascending order. *)
end

module Make (E : ELT) : S with type elt = E.t

type stats = {
  unions_memoized : int;  (** union calls answered from the memo table *)
  unions_computed : int;  (** unions that had to build a new set *)
}

val stats : unit -> stats
(** Global (all instantiations) union-memoization counters, for the bench
    harness. *)
