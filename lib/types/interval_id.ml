type t = { owner : Proc_id.t; seq : int }

let make ~owner ~seq = { owner; seq }
let owner t = t.owner
let seq t = t.seq
let equal a b = Proc_id.equal a.owner b.owner && Int.equal a.seq b.seq

let compare a b =
  match Proc_id.compare a.owner b.owner with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let pp ppf t = Format.fprintf ppf "%a.i%d" Proc_id.pp t.owner t.seq
let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

(* Pack (owner, seq) into one order-preserving index: owner-major, then
   seq — the same order as [compare]. The +1 keeps the index non-negative
   for the runtime's definite interval, which uses seq = -1. Indices are
   sparse (owners stride by 2^31), so the set sticks to the sorted-array
   layout (dense = false). *)
module Set = Aid_set.Make (struct
  type nonrec t = t

  let index t = (Proc_id.to_int t.owner lsl 31) lor (t.seq + 1)

  let of_index i =
    { owner = Proc_id.of_int (i lsr 31); seq = (i land 0x7FFF_FFFF) - 1 }

  let pp = pp
  let dense = false
end)

module Map = Map.Make (Ord)
