(** Interval identifiers.

    "An interval is a subsequence of an execution history between two
    executions of the guess primitive, and constitutes the smallest
    granularity of rollback that may occur" (§5). An interval id names one
    interval of one process's history: the owning process plus a
    per-process sequence number. AID processes store interval ids in their
    DOM sets and address Replace/Rollback messages to the owning process. *)

type t = { owner : Proc_id.t; seq : int }
(** Interval [seq] of process [owner]. Sequence numbers increase along the
    history; a rolled-back interval's number is never reused, so stale
    messages addressed to dead intervals are recognisable. *)

val make : owner:Proc_id.t -> seq:int -> t
val owner : t -> Proc_id.t
val seq : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Aid_set.S with type elt = t
(** Hash-consed sets of interval ids (sorted-array layout; see
    {!Aid_set}), used for [Aid_machine.dom]. Iteration order matches
    {!compare} (owner-major, then sequence number). *)

module Map : Map.S with type key = t
