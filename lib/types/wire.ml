type t =
  | Guess of { iid : Interval_id.t }
  | Affirm of { iid : Interval_id.t; ido : Aid.Set.t }
  | Deny of { iid : Interval_id.t }
  | Replace of { iid : Interval_id.t; ido : Aid.Set.t }
  | Rollback of { iid : Interval_id.t }
  | Revoke of { iid : Interval_id.t }
  | Rebind of { iid : Interval_id.t }
  | Acquire of { iid : Interval_id.t }
  | Grant of { iid : Interval_id.t }
  | Abort of { iid : Interval_id.t }
  | Release of { iid : Interval_id.t }

let target = function
  | Guess { iid } | Affirm { iid; _ } | Deny { iid } | Replace { iid; _ }
  | Rollback { iid } | Revoke { iid } | Rebind { iid } | Acquire { iid }
  | Grant { iid } | Abort { iid } | Release { iid } ->
    iid

let type_name = function
  | Guess _ -> "guess"
  | Affirm _ -> "affirm"
  | Deny _ -> "deny"
  | Replace _ -> "replace"
  | Rollback _ -> "rollback"
  | Revoke _ -> "revoke"
  | Rebind _ -> "rebind"
  | Acquire _ -> "acquire"
  | Grant _ -> "grant"
  | Abort _ -> "abort"
  | Release _ -> "release"

let tag = function
  | Guess _ -> 0
  | Affirm _ -> 1
  | Deny _ -> 2
  | Replace _ -> 3
  | Rollback _ -> 4
  | Revoke _ -> 5
  | Rebind _ -> 6
  | Acquire _ -> 7
  | Grant _ -> 8
  | Abort _ -> 9
  | Release _ -> 10

let tag_count = 11

let tag_name = function
  | 0 -> "guess"
  | 1 -> "affirm"
  | 2 -> "deny"
  | 3 -> "replace"
  | 4 -> "rollback"
  | 5 -> "revoke"
  | 6 -> "rebind"
  | 7 -> "acquire"
  | 8 -> "grant"
  | 9 -> "abort"
  | 10 -> "release"
  | _ -> invalid_arg "Wire.tag_name"

let pp ppf = function
  | Guess { iid } -> Format.fprintf ppf "<Guess %a>" Interval_id.pp iid
  | Affirm { iid; ido } ->
    Format.fprintf ppf "<Affirm %a %a>" Interval_id.pp iid Aid.Set.pp ido
  | Deny { iid } -> Format.fprintf ppf "<Deny %a>" Interval_id.pp iid
  | Replace { iid; ido } ->
    Format.fprintf ppf "<Replace %a %a>" Interval_id.pp iid Aid.Set.pp ido
  | Rollback { iid } -> Format.fprintf ppf "<Rollback %a>" Interval_id.pp iid
  | Revoke { iid } -> Format.fprintf ppf "<Revoke %a>" Interval_id.pp iid
  | Rebind { iid } -> Format.fprintf ppf "<Rebind %a>" Interval_id.pp iid
  | Acquire { iid } -> Format.fprintf ppf "<Acquire %a>" Interval_id.pp iid
  | Grant { iid } -> Format.fprintf ppf "<Grant %a>" Interval_id.pp iid
  | Abort { iid } -> Format.fprintf ppf "<Abort %a>" Interval_id.pp iid
  | Release { iid } -> Format.fprintf ppf "<Release %a>" Interval_id.pp iid
