(** The HOPE control messages: Table 1 plus the two revocation messages
    this reproduction found necessary (DESIGN.md §3.1).

    | Type     | From        | To   | Arguments  | Meaning                                    |
    |----------|-------------|------|------------|--------------------------------------------|
    | Guess    | User        | AID  | iid        | sender guesses AID is true                 |
    | Affirm   | User        | AID  | iid, IDO   | sender affirms AID, subject to IDO         |
    | Deny     | User        | AID  | iid        | sender denies AID unconditionally          |
    | Replace  | AID         | User | iid, IDO   | replace sender with IDO in iid.IDO         |
    | Rollback | AID         | User | iid        | roll back interval iid                     |
    | Revoke   | User        | AID  | iid        | retract iid's rolled-back speculative affirm |
    | Rebind   | AID         | User | iid        | iid's rewiring through sender is void      |

    The sending AID of a Replace/Rollback/Rebind is recovered from the
    envelope's source address (an AID {e is} the process id of its AID
    process). *)

type t =
  | Guess of { iid : Interval_id.t }
      (** The interval [iid] guesses this AID's assumption is true. *)
  | Affirm of { iid : Interval_id.t; ido : Aid.Set.t }
      (** Interval [iid] affirms, contingent on every AID in [ido] also
          being affirmed; an empty [ido] is a definite affirm. *)
  | Deny of { iid : Interval_id.t }
      (** Unconditional denial (speculative denies are buffered by the
          sender until definite, per the paper's footnote 1). *)
  | Replace of { iid : Interval_id.t; ido : Aid.Set.t }
      (** Replace the sending AID with [ido] in interval [iid]'s IDO set;
          an empty [ido] removes the dependency outright. *)
  | Rollback of { iid : Interval_id.t }
      (** Roll back interval [iid] and all its successors. *)
  | Revoke of { iid : Interval_id.t }
      (** Interval [iid], which speculatively affirmed this AID, has been
          rolled back: retract the tentative affirm, returning the AID
          from [Maybe] to [Hot]. Not in Table 1 — this message is forced
          by Theorem 5.1: the rolled-back affirmer re-executes and may
          affirm again, which a terminal denial would forever prevent
          (see DESIGN.md §3.1). *)
  | Rebind of { iid : Interval_id.t }
      (** The speculative affirm that rewired interval [iid]'s dependency
          from this AID to its A_IDO has been revoked: depend on this AID
          itself again (move it back from UDO to IDO). Sent to every DOM
          member on a Revoke; the liveness completion of revocation — the
          stale A_IDO chain may reference assumptions of a rolled-back
          execution that no one will ever resolve. *)

val target : t -> Interval_id.t
(** The interval the message concerns. *)

val type_name : t -> string
(** Constructor name, for metrics keys: "guess", "affirm", ... *)

val tag : t -> int
(** Dense constructor index in declaration order ([Guess] = 0 ..
    [Rebind] = 6), for array-indexed per-type counters on the message
    hot path — no string hashing per send. *)

val tag_count : int
(** Number of constructors; [tag] ranges over [0 .. tag_count - 1]. *)

val tag_name : int -> string
(** [tag_name (tag w) = type_name w].
    @raise Invalid_argument outside [0 .. tag_count - 1]. *)

val pp : Format.formatter -> t -> unit
