(** The HOPE control messages: Table 1 plus the two revocation messages
    this reproduction found necessary (DESIGN.md §3.1).

    | Type     | From        | To   | Arguments  | Meaning                                    |
    |----------|-------------|------|------------|--------------------------------------------|
    | Guess    | User        | AID  | iid        | sender guesses AID is true                 |
    | Affirm   | User        | AID  | iid, IDO   | sender affirms AID, subject to IDO         |
    | Deny     | User        | AID  | iid        | sender denies AID unconditionally          |
    | Replace  | AID         | User | iid, IDO   | replace sender with IDO in iid.IDO         |
    | Rollback | AID         | User | iid        | roll back interval iid                     |
    | Revoke   | User        | AID  | iid        | retract iid's rolled-back speculative affirm |
    | Rebind   | AID         | User | iid        | iid's rewiring through sender is void      |

    The sending AID of a Replace/Rollback/Rebind is recovered from the
    envelope's source address (an AID {e is} the process id of its AID
    process).

    The last four verbs are the {e pessimistic overlay} (DESIGN.md §10):
    an AID escalated to queued acquisition under contention speaks
    Acquire/Grant/Abort with its clients instead of Guess/Replace, and a
    Grant is a definite (untagged) reply — no speculative interval, no
    Replace traffic.

    | Type     | From | To   | Arguments | Meaning                                 |
    |----------|------|------|-----------|-----------------------------------------|
    | Acquire  | User | AID  | ticket    | join the AID's FIFO acquisition queue   |
    | Grant    | AID  | User | ticket    | exclusive, definite grant to the ticket |
    | Abort    | both | both | ticket    | withdraw (User→AID) / bounce (AID→User) |
    | Release  | User | AID  | ticket    | release a held grant                    | *)

type t =
  | Guess of { iid : Interval_id.t }
      (** The interval [iid] guesses this AID's assumption is true. *)
  | Affirm of { iid : Interval_id.t; ido : Aid.Set.t }
      (** Interval [iid] affirms, contingent on every AID in [ido] also
          being affirmed; an empty [ido] is a definite affirm. *)
  | Deny of { iid : Interval_id.t }
      (** Unconditional denial (speculative denies are buffered by the
          sender until definite, per the paper's footnote 1). *)
  | Replace of { iid : Interval_id.t; ido : Aid.Set.t }
      (** Replace the sending AID with [ido] in interval [iid]'s IDO set;
          an empty [ido] removes the dependency outright. *)
  | Rollback of { iid : Interval_id.t }
      (** Roll back interval [iid] and all its successors. *)
  | Revoke of { iid : Interval_id.t }
      (** Interval [iid], which speculatively affirmed this AID, has been
          rolled back: retract the tentative affirm, returning the AID
          from [Maybe] to [Hot]. Not in Table 1 — this message is forced
          by Theorem 5.1: the rolled-back affirmer re-executes and may
          affirm again, which a terminal denial would forever prevent
          (see DESIGN.md §3.1). *)
  | Rebind of { iid : Interval_id.t }
      (** The speculative affirm that rewired interval [iid]'s dependency
          from this AID to its A_IDO has been revoked: depend on this AID
          itself again (move it back from UDO to IDO). Sent to every DOM
          member on a Revoke; the liveness completion of revocation — the
          stale A_IDO chain may reference assumptions of a rolled-back
          execution that no one will ever resolve. *)
  | Acquire of { iid : Interval_id.t }
      (** Join this AID's pessimistic acquisition queue. [iid] is a
          {e ticket} — a fresh negative-sequence interval id naming the
          requesting process (via [Interval_id.owner]) without opening a
          speculative interval; nothing is journaled under it. *)
  | Grant of { iid : Interval_id.t }
      (** Ticket [iid] now holds the AID exclusively. Definite: the
          holder proceeds with no IDO entry and no checkpoint. *)
  | Abort of { iid : Interval_id.t }
      (** User → AID: withdraw ticket [iid] from the queue (timeout or
          rollback of the waiter). AID → User: ticket [iid] will never
          be granted (queue overflow, de-escalation, or a withdrawal
          race) — the waiter resumes on its pessimistic branch. Every
          Acquire completes as exactly one Grant or Abort. *)
  | Release of { iid : Interval_id.t }
      (** Ticket [iid] releases its grant, waking the next waiter. Also
          the answer to a stale Grant that raced a withdrawal: the
          machine treats any Release from the current holder alike. *)

val target : t -> Interval_id.t
(** The interval the message concerns. *)

val type_name : t -> string
(** Constructor name, for metrics keys: "guess", "affirm", ... *)

val tag : t -> int
(** Dense constructor index in declaration order ([Guess] = 0 ..
    [Release] = 10), for array-indexed per-type counters on the message
    hot path — no string hashing per send. *)

val tag_count : int
(** Number of constructors; [tag] ranges over [0 .. tag_count - 1]. *)

val tag_name : int -> string
(** [tag_name (tag w) = type_name w].
    @raise Invalid_argument outside [0 .. tag_count - 1]. *)

val pp : Format.formatter -> t -> unit
