open Hope_types
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Runtime = Hope_core.Runtime
module Invariant = Hope_core.Invariant
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Rng = Hope_sim.Rng
module Rpc = Hope_rpc.Rpc
module Protocol = Hope_rpc.Protocol
open Program.Syntax

type params = {
  clients : int;
  transactions : int;
  keys : int;
  reads_per_txn : int;
  writes_per_txn : int;
  think_time : float;
  store_cost : float;
  skew : float;
}

let default_params =
  {
    clients = 4;
    transactions = 15;
    keys = 64;
    reads_per_txn = 3;
    writes_per_txn = 2;
    think_time = 300e-6;
    store_cost = 50e-6;
    skew = 0.0;
  }

type result = {
  makespan : float;
  committed : int;
  aborts : int;
  lock_waits : int;
  rollbacks : int;
  version_sum : int;
  escalations : int;
  acquire_waits : int;
}

(* Zipfian key popularity: P(k) ∝ 1/(k+1)^skew, so key 0 is the hottest.
   skew = 0 keeps the original uniform [Rng.int] draw bit-for-bit, which
   preserves every pre-skew access set (and thus the committed bench
   baselines for the pure modes). *)
let zipf_cumulative ~keys ~skew =
  let c = Array.make keys 0.0 in
  let total = ref 0.0 in
  for k = 0 to keys - 1 do
    total := !total +. (1.0 /. (float_of_int (k + 1) ** skew));
    c.(k) <- !total
  done;
  c

let zipf_draw r cum =
  let u = Rng.float r cum.(Array.length cum - 1) in
  (* First k with cum.(k) > u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cum.(mid) > u then search lo mid else search (mid + 1) hi
  in
  search 0 (Array.length cum - 1)

(* Deterministic per-(client, txn) access sets; retries reuse them. *)
let access_sets p ~client ~txn =
  let r = Rng.create ~seed:(((client * 7907) + txn) * 65_537) in
  let draw_key =
    if p.skew <= 0.0 then fun () -> Rng.int r p.keys
    else
      let cum = zipf_cumulative ~keys:p.keys ~skew:p.skew in
      fun () -> zipf_draw r cum
  in
  let draw n = List.init n (fun _ -> draw_key ()) in
  let dedup l = List.sort_uniq compare l in
  (dedup (draw p.reads_per_txn), dedup (draw p.writes_per_txn))

let keys_value keys = Value.List (List.map (fun k -> Value.Int k) keys)
let keys_of_value v = List.map Value.to_int (Value.to_list v)

module Int_map = Map.Make (Int)

(* ------------------------------------------------------------------ *)
(* Optimistic store: snapshot reads + validate-and-commit              *)
(* ------------------------------------------------------------------ *)

let read_marker = Value.String "occ-read"
let stats_marker = Value.String "occ-stats"

let encode_read keys = Value.Pair (read_marker, keys_value keys)

let encode_validate ~aid ~txn_id ~reads ~writes =
  Value.triple (Value.Aid_v aid)
    (Value.Pair
       ( Value.Int txn_id,
         Value.List
           (List.map (fun (k, v) -> Value.Pair (Value.Int k, Value.Int v)) reads) ))
    (keys_value writes)

(* Store state is the version vector plus the set of applied transaction
   ids, threaded through the serve loop so HOPE rollback recovers both
   exactly (a retracted speculative commit un-applies its writes for
   free). The applied-set makes commits idempotent, which at-least-once
   delivery requires: a validate whose consumer went definite can be
   re-delivered by its rolled-back sender's re-execution (the anomaly
   window of DESIGN.md §3.6). *)
type store_state = { versions : int array; applied : unit Int_map.t }

let optimistic_store p =
  let rec loop (st : store_state) =
    let* env = Program.recv () in
    match Protocol.as_request (Envelope.value env) with
    | Some (call_id, reply_to, body) -> (
      (* RPC surface: snapshot reads and the final stats probe. *)
      let* () = Program.compute p.store_cost in
      match body with
      | Value.Pair (Value.String "occ-read", ks) ->
        let reads =
          List.map
            (fun k -> Value.Pair (Value.Int k, Value.Int st.versions.(k)))
            (keys_of_value ks)
        in
        let* () = Program.send reply_to (Protocol.response ~call_id (Value.List reads)) in
        loop st
      | Value.String "occ-stats" ->
        let total = Array.fold_left ( + ) 0 st.versions in
        let* () =
          Program.send reply_to (Protocol.response ~call_id (Value.Int total))
        in
        loop st
      | _ -> loop st)
    | None -> (
      match Envelope.value env with
      | Value.Pair
          ( Value.Aid_v aid,
            Value.Pair
              (Value.Pair (Value.Int txn_id, Value.List reads), Value.List writes) )
        ->
        let* () = Program.compute p.store_cost in
        let current (kv : Value.t) =
          let k, v = Value.to_pair kv in
          st.versions.(Value.to_int k) = Value.to_int v
        in
        if Int_map.mem txn_id st.applied then
          (* Duplicate delivery of an already-committed transaction:
             acknowledge idempotently. *)
          let* () = Program.incr_counter "occ.duplicate_validates" in
          let* () = Program.affirm aid in
          loop st
        else if List.for_all current reads then begin
          (* Validation passed: apply the writes and affirm. Arrays are
             shared across continuations, so the version vector is
             rebuilt functionally to keep rollback sound. *)
          let versions' = Array.copy st.versions in
          List.iter
            (fun k -> versions'.(Value.to_int k) <- versions'.(Value.to_int k) + 1)
            writes;
          let* () = Program.incr_counter "occ.validations_passed" in
          let* () = Program.affirm aid in
          loop { versions = versions'; applied = Int_map.add txn_id () st.applied }
        end
        else
          let* () = Program.incr_counter "occ.aborts" in
          let* () = Program.deny aid in
          loop st
      | _ -> loop st)
  in
  loop { versions = Array.make p.keys 0; applied = Int_map.empty }

(* One OCC try: snapshot, think, fire-and-guess the validate. Returns
   the (speculative) verdict; [false] means the store denied and the
   rollback has already re-entered here. *)
let occ_try p ~store ~reads_keys ~writes ~txn_id =
  let* snapshot = Rpc.call ~server:store (encode_read reads_keys) in
  let reads =
    List.map
      (fun kv ->
        let k, v = Value.to_pair kv in
        (Value.to_int k, Value.to_int v))
      (Value.to_list snapshot)
  in
  let* () = Program.compute p.think_time in
  let* aid = Program.aid_init () in
  (* The paper's idiom (the WorryWart pattern of §3.1): announce the
     assumption BEFORE guessing it, so the validate message is not
     tagged with its own assumption and the store's judgment is never
     contingent on itself. Duplicate deliveries that retraction
     cannot cover are handled by the store's idempotent commit. *)
  let* () = Program.send store (encode_validate ~aid ~txn_id ~reads ~writes) in
  Program.guess aid

(* One transaction, OCC style: try, retry on denial. Shared by the pure
   optimistic client and the hybrid client's retry path. *)
let occ_attempt p ~store ~reads_keys ~writes ~txn_id =
  let rec attempt () =
    let* ok = occ_try p ~store ~reads_keys ~writes ~txn_id in
    if ok then Program.return () else attempt ()
  in
  attempt ()

let optimistic_client p ~store ~client =
  Program.for_ 0 (p.transactions - 1) (fun txn ->
      let reads_keys, writes = access_sets p ~client ~txn in
      occ_attempt p ~store ~reads_keys ~writes
        ~txn_id:((client * 1_000_000) + txn))

(* ------------------------------------------------------------------ *)
(* Hybrid client: per-key guard AIDs + governor-driven escalation      *)
(* ------------------------------------------------------------------ *)

(* The hybrid protocol is the optimistic one plus a durable {e guard}
   AID per key, driven True at setup by the warden process. Before each
   transaction the client guesses the guard of its hottest key:

   - while the guard is optimistic the guess opens a short-lived
     interval that the True guard resolves on the next round trip —
     wait-free, a few messages of overhead, no behavioural change;
   - when the governor has escalated the guard (contention evidence:
     per-guess pressure weighted by the wasted%% analytic), the guess
     routes into the guard's FIFO acquisition queue and returns [true]
     holding the key exclusively — at most one client is then inside
     the snapshot→validate window of that key, so the validation
     conflicts (and the re-paid think time the retry storm burns)
     collapse.

   Correctness never depends on the guard: the store still validates
   every commit, and [release] after the attempt is a no-op unless a
   grant is actually held. *)
let hot_key reads_keys writes =
  match List.sort_uniq compare (reads_keys @ writes) with
  | [] -> None
  | k :: _ -> Some k (* lowest index = most popular under zipf *)

let hybrid_client p ~guards ~store ~client =
  Program.for_ 0 (p.transactions - 1) (fun txn ->
      let reads_keys, writes = access_sets p ~client ~txn in
      let txn_id = (client * 1_000_000) + txn in
      match hot_key reads_keys writes with
      | None -> occ_attempt p ~store ~reads_keys ~writes ~txn_id
      | Some h ->
        let guard = guards.(h) in
        let* _entered = Program.guess guard in
        let* () = occ_attempt p ~store ~reads_keys ~writes ~txn_id in
        Program.release guard)

(* Definite process that drives every guard True at startup: guards are
   permanently-true assumptions whose only job is to give each key a
   durable identity the governor can accumulate contention pressure
   against (and escalate). *)
let warden guards =
  Program.iter_list (fun g -> Program.affirm g) (Array.to_list guards)

(* ------------------------------------------------------------------ *)
(* Pessimistic store: atomic all-or-nothing locking                    *)
(* ------------------------------------------------------------------ *)

type lock_state = {
  versions : int array;
  mutable held : bool array;
  mutable pending : (int * Proc_id.t * int list) list;  (** reversed *)
}

(* The locking store lives outside HOPE entirely: plain RPC, explicit
   queueing. Lock sets are acquired atomically, so there are no
   deadlocks. *)
let pessimistic_store p =
  let grantable st keys = List.for_all (fun k -> not st.held.(k)) keys in
  let grant st keys = List.iter (fun k -> st.held.(k) <- true) keys in
  let release st keys = List.iter (fun k -> st.held.(k) <- false) keys in
  let rec loop st =
    let* env = Program.recv () in
    match Protocol.as_request (Envelope.value env) with
    | None -> loop st
    | Some (call_id, reply_to, body) -> (
      let* () = Program.compute p.store_cost in
      match body with
      | Value.Pair (Value.String "acquire", ks) ->
        let keys = keys_of_value ks in
        if grantable st keys then begin
          grant st keys;
          let reads =
            List.map (fun k -> Value.Pair (Value.Int k, Value.Int st.versions.(k))) keys
          in
          let* () =
            Program.send reply_to (Protocol.response ~call_id (Value.List reads))
          in
          loop st
        end
        else begin
          st.pending <- (call_id, reply_to, keys) :: st.pending;
          let* () = Program.incr_counter "occ.lock_waits" in
          loop st
        end
      | Value.Pair (Value.String "commit", Value.Pair (ks, ws)) ->
        let keys = keys_of_value ks and writes = keys_of_value ws in
        List.iter (fun k -> st.versions.(k) <- st.versions.(k) + 1) writes;
        release st keys;
        let* () = Program.send reply_to (Protocol.response ~call_id Value.Unit) in
        (* Grant whatever the release unblocked, in arrival order. *)
        let rec regrant st =
          let ready =
            List.find_opt (fun (_, _, keys) -> grantable st keys) (List.rev st.pending)
          in
          match ready with
          | None -> Program.return st
          | Some ((call_id, reply_to, keys) as entry) ->
            st.pending <- List.filter (fun e -> e <> entry) st.pending;
            grant st keys;
            let reads =
              List.map
                (fun k -> Value.Pair (Value.Int k, Value.Int st.versions.(k)))
                keys
            in
            let* () =
              Program.send reply_to (Protocol.response ~call_id (Value.List reads))
            in
            regrant st
        in
        let* st = regrant st in
        loop st
      | Value.String "occ-stats" ->
        let total = Array.fold_left ( + ) 0 st.versions in
        let* () = Program.send reply_to (Protocol.response ~call_id (Value.Int total)) in
        loop st
      | _ -> loop st)
  in
  loop { versions = Array.make p.keys 0; held = Array.make p.keys false; pending = [] }

let pessimistic_client p ~store ~client =
  Program.for_ 0 (p.transactions - 1) (fun txn ->
      let reads_keys, writes = access_sets p ~client ~txn in
      let lock_keys = List.sort_uniq compare (reads_keys @ writes) in
      let* _snapshot =
        Rpc.call ~server:store (Value.Pair (Value.String "acquire", keys_value lock_keys))
      in
      let* () = Program.compute p.think_time in
      let* _ =
        Rpc.call ~server:store
          (Value.Pair
             (Value.String "commit", Value.Pair (keys_value lock_keys, keys_value writes)))
      in
      Program.return ())

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 42) ?obs ?(latency = Hope_net.Latency.man)
    ?(sched_config = Scheduler.epoch_1995_config) ?(on_setup = ignore) ?policy
    ~mode p =
  let engine = Engine.create ~seed ?obs () in
  let sched =
    Scheduler.create ~engine ~default_latency:latency ~config:sched_config ()
  in
  let rt = Runtime.install sched () in
  on_setup rt;
  (* Hybrid needs a governor to drive escalation. If the caller already
     installed one (hope_sim --governor) it is respected; otherwise a
     telemetry + governor pair with the [hybrid] policy is wired here. *)
  (match mode with
  | `Hybrid when not (Runtime.governed rt) ->
    let tele =
      Hope_sim.Telemetry.create ~deep:true ~stride:1e-3
        ~recorder:(Engine.obs engine) ()
    in
    Hope_sim.Telemetry.install tele engine;
    let policy = Option.value policy ~default:Hope_gov.Policy.hybrid in
    ignore (Hope_gov.Governor.install ~policy rt ~tele : Hope_gov.Governor.t)
  | _ -> ());
  let guards =
    match mode with
    | `Hybrid ->
      let guards = Array.init p.keys (fun _ -> Runtime.fresh_aid rt ()) in
      ignore
        (Scheduler.spawn sched ~node:0 ~name:"warden" (warden guards)
          : Proc_id.t);
      guards
    | `Pessimistic | `Optimistic -> [||]
  in
  let store =
    Scheduler.spawn sched ~node:0 ~name:"store"
      (match mode with
      | `Pessimistic -> pessimistic_store p
      | `Optimistic | `Hybrid -> optimistic_store p)
  in
  let clients =
    List.init p.clients (fun i ->
        Scheduler.spawn sched ~node:(i + 1) ~name:(Printf.sprintf "client-%d" i)
          (match mode with
          | `Pessimistic -> pessimistic_client p ~store ~client:i
          | `Optimistic -> optimistic_client p ~store ~client:i
          | `Hybrid -> hybrid_client p ~guards ~store ~client:i))
  in
  (match Scheduler.run ~max_events:50_000_000 sched with
  | Hope_sim.Engine.Quiescent -> ()
  | reason ->
    failwith
      (Format.asprintf "occ did not quiesce: %a" Hope_sim.Engine.pp_stop_reason
         reason));
  (match Invariant.check_all rt with
  | [] -> ()
  | vs ->
    failwith
      (Format.asprintf "occ invariant violations: %a"
         (Format.pp_print_list Invariant.pp_violation)
         vs));
  let makespan =
    List.fold_left
      (fun acc c ->
        match Scheduler.completion_time sched c with
        | Some at -> Float.max acc at
        | None ->
          if Sys.getenv_opt "HOPE_OCC_DEBUG" <> None then begin
            List.iter
              (fun pid ->
                match Runtime.history_of rt pid with
                | h -> Format.eprintf "%a@." Hope_core.History.pp h
                | exception Not_found -> ())
              (Scheduler.user_pids sched);
            List.iter
              (fun a ->
                Format.eprintf "%a@." Hope_core.Aid_machine.pp
                  (Runtime.aid_machine rt a))
              (Runtime.all_aids rt);
            let evs = Runtime.events rt in
            let n = List.length evs in
            List.iteri
              (fun i e ->
                if i >= n - 60 || Sys.getenv_opt "HOPE_OCC_DEBUG_ALL" <> None then Format.eprintf "%a@." Runtime.pp_event e)
              evs
          end;
          failwith
            (Printf.sprintf "occ client %s did not terminate (status %s)"
               (Proc_id.to_string c)
               (match Scheduler.status sched c with
               | Scheduler.Running -> "running"
               | Scheduler.Blocked -> "blocked"
               | Scheduler.Terminated -> "terminated")))
      0.0 clients
  in
  (* Probe the final store state (a definite process: the answer is the
     committed truth). *)
  let version_sum = ref (-1) in
  ignore
    (Scheduler.spawn sched ~node:0 ~name:"probe"
       (let* total = Rpc.call ~server:store stats_marker in
        Program.lift (fun () -> version_sum := Value.to_int total))
      : Proc_id.t);
  (match Scheduler.run ~max_events:1_000_000 sched with
  | Hope_sim.Engine.Quiescent -> ()
  | _ -> failwith "occ probe did not quiesce");
  let committed = p.clients * p.transactions in
  let expected_writes =
    List.init p.clients (fun c ->
        List.init p.transactions (fun t ->
            let _, writes = access_sets p ~client:c ~txn:t in
            List.length writes))
    |> List.concat |> List.fold_left ( + ) 0
  in
  if !version_sum <> expected_writes then
    failwith
      (Printf.sprintf
         "occ: store saw %d committed writes, expected %d (serializability \
          violation)"
         !version_sum expected_writes);
  let m = Engine.metrics engine in
  {
    makespan;
    committed;
    aborts = Metrics.find_counter m "occ.aborts";
    lock_waits = Metrics.find_counter m "occ.lock_waits";
    rollbacks = Metrics.find_counter m "hope.rollbacks";
    version_sum = !version_sum;
    escalations = Metrics.find_counter m "hope.escalations";
    acquire_waits = Metrics.find_counter m "hope.acquire_waits";
  }
