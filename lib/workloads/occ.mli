(** Optimistic concurrency control (Kung & Robinson, the paper's reference
    [17]) — experiment E12, and the very first example §1 gives of
    optimism: "assume that locks will be granted, process the transaction,
    and post hoc verify that the locks were granted".

    [clients] processes each run [transactions] read-modify-write
    transactions against a versioned key-value store:

    - {e pessimistic} (two-phase locking): atomically acquire all locks
      (one round trip, possibly queueing behind a holder), think, then
      commit and release (a second round trip);
    - {e optimistic} (OCC via HOPE): read a snapshot (one round trip),
      think, then fire an asynchronous validate-and-commit under the
      assumption "my reads are still current". The store affirms and
      applies, or denies on a version conflict — rolling the client (and
      its already-started next transactions, which are chained
      speculation) back to retry;
    - {e hybrid} (DESIGN.md §10): the optimistic protocol plus a durable
      per-key {e guard} AID, driven True at setup. Each transaction
      guesses the guard of its hottest key first — a few wait-free
      messages while the guard is optimistic, but once the governor
      escalates it (per-guess pressure weighted by the wasted%%
      analytic) the guess parks in the guard's FIFO queue and returns
      holding the key exclusively, collapsing the conflict storm on that
      key while cold keys keep speculating. [run] installs a
      [Policy.hybrid] governor automatically unless the caller's
      [on_setup] already installed one.

    Unlike the other workloads, conflicts are not drawn from a fate
    function: they {e emerge} from genuinely concurrent clients, tuned by
    the size of the key space and the zipfian [skew] of key
    popularity. *)

type params = {
  clients : int;
  transactions : int;  (** per client *)
  keys : int;  (** key-space size: smaller = more contention *)
  reads_per_txn : int;
  writes_per_txn : int;
  think_time : float;  (** client CPU between read and commit *)
  store_cost : float;  (** store CPU per request *)
  skew : float;
      (** zipfian key-popularity exponent: P(k) ∝ 1/(k+1)^skew. [0.0]
          (the default) is the original uniform draw, bit-for-bit;
          higher values concentrate traffic on low-numbered keys *)
}

val default_params : params

type result = {
  makespan : float;
  committed : int;  (** transactions finally committed (= clients × transactions) *)
  aborts : int;  (** validation failures (optimistic) / 0 (pessimistic) *)
  lock_waits : int;  (** requests that queued behind a holder (pessimistic) *)
  rollbacks : int;
  version_sum : int;  (** Σ key versions at quiescence — must equal the
                          total committed writes, checked by {!run} *)
  escalations : int;  (** guard AIDs flipped pessimistic ([hope.escalations]) *)
  acquire_waits : int;  (** guesses routed into a guard's acquisition
                            queue ([hope.acquire_waits]) *)
}

val run :
  ?seed:int ->
  ?obs:Hope_obs.Recorder.t ->
  ?latency:Hope_net.Latency.t ->
  ?sched_config:Hope_proc.Scheduler.config ->
  ?on_setup:(Hope_core.Runtime.t -> unit) ->
  ?policy:Hope_gov.Policy.t ->
  mode:[ `Pessimistic | `Optimistic | `Hybrid ] ->
  params ->
  result
(** Store on node 0, client [i] on node [i+1]. @raise Failure on
    non-quiescence, invariant violation, or if the final store state does
    not equal the committed write count (the serializability smoke
    check). *)
