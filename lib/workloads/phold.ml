open Hope_types
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Runtime = Hope_core.Runtime
module Invariant = Hope_core.Invariant
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Timewarp = Hope_timewarp.Timewarp
open Program.Syntax

type params = {
  n_lps : int;
  jobs : int;
  mean_delay : float;
  remote_prob : float;
  horizon : float;
  event_cost : float;
  latency : Hope_net.Latency.t;
}

let default_params =
  {
    n_lps = 4;
    jobs = 8;
    mean_delay = 1.0;
    remote_prob = 0.5;
    horizon = 10.0;
    event_cost = 50e-6;
    latency = Hope_net.Latency.lan;
  }

type lp_state = { handled : int; checksum : int }

let model p =
  {
    Timewarp.init = (fun _ -> { handled = 0; checksum = 0 });
    handle =
      (fun ~lp ~ts st (job : Job.t) ->
        let st' =
          {
            handled = st.handled + 1;
            checksum = Job.checksum_mix st.checksum ~lp ~ts job;
          }
        in
        let delay, dest =
          Job.route ~n_lps:p.n_lps ~mean_delay:p.mean_delay
            ~remote_prob:p.remote_prob ~from_lp:lp job
        in
        (st', [ (dest, ts +. delay, { job with Job.hop = job.Job.hop + 1 }) ]));
  }

let seeds p =
  List.init p.jobs (fun j ->
      (j mod p.n_lps, Job.seed_ts { Job.job_id = j; hop = 0 } ~mean_delay:p.mean_delay,
       { Job.job_id = j; hop = 0 }))

type outcome = {
  checksums : int array;
  handled_total : int;
  processed : int;
  rollbacks : int;
  messages : int;
  physical_time : float;
}

(* ------------------------------------------------------------------ *)
(* Sequential reference                                                *)
(* ------------------------------------------------------------------ *)

let run_sequential p =
  let r =
    Timewarp.Sequential.run (model p) ~n_lps:p.n_lps ~horizon:p.horizon
      ~seeds:(seeds p)
  in
  {
    checksums = Array.map (fun s -> s.checksum) r.Timewarp.Sequential.states;
    handled_total = Array.fold_left (fun acc s -> acc + s.handled) 0 r.states;
    processed = r.events;
    rollbacks = 0;
    messages = r.events;
    physical_time = 0.0;
  }

(* ------------------------------------------------------------------ *)
(* Time Warp                                                           *)
(* ------------------------------------------------------------------ *)

let run_timewarp ?(seed = 42) ?obs p =
  let engine = Engine.create ~seed ?obs () in
  let cfg =
    {
      Timewarp.n_lps = p.n_lps;
      physical_latency = p.latency;
      event_cost = p.event_cost;
      gvt_interval = 10e-3;
      horizon = p.horizon;
    }
  in
  let tw = Timewarp.create ~engine cfg (model p) in
  List.iter (fun (dst, ts, job) -> Timewarp.inject tw ~dst ~ts job) (seeds p);
  (match Timewarp.run tw with
  | Hope_sim.Engine.Quiescent -> ()
  | reason ->
    failwith
      (Format.asprintf "phold/timewarp did not quiesce: %a"
         Hope_sim.Engine.pp_stop_reason reason));
  let st = Timewarp.stats tw in
  {
    checksums =
      Array.init p.n_lps (fun i -> (Timewarp.state_of tw i).checksum);
    handled_total =
      Array.init p.n_lps (fun i -> (Timewarp.state_of tw i).handled)
      |> Array.fold_left ( + ) 0;
    processed = st.Timewarp.processed;
    rollbacks = st.rollbacks;
    messages = st.messages;
    physical_time = st.physical_time;
  }

(* ------------------------------------------------------------------ *)
(* Sharded Time Warp across OCaml 5 domains                            *)
(* ------------------------------------------------------------------ *)

let shard_spec ?(grain = 0) p =
  let base = model p in
  let handle =
    if grain <= 0 then base.Timewarp.handle
    else fun ~lp ~ts st job ->
      (* Deterministic synthetic event weight: phold's real handler is a
         few dozen ns, far below cross-domain traffic costs, so scaling
         runs give each event [grain] iterations of integer mixing.
         [Sys.opaque_identity] keeps the loop from being reasoned away. *)
      let x = ref (lp + 1) in
      for _ = 1 to grain do
        x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF
      done;
      ignore (Sys.opaque_identity !x);
      base.Timewarp.handle ~lp ~ts st job
  in
  {
    Hope_shard.Shard.model = { base with Timewarp.handle };
    n_lps = p.n_lps;
    horizon = p.horizon;
    seeds = seeds p;
    digest =
      (fun (j : Job.t) -> (j.Job.job_id * 8191) + (j.Job.hop * 131) + 7);
    dummy = { Job.job_id = -1; hop = -1 };
  }

let run_parallel ?(domains = 1) ?(seed = 42) ?grain ?obs_shard p =
  let r = Hope_shard.Shard.run ~domains ~seed ?obs_shard (shard_spec ?grain p) in
  ( {
      checksums = Array.map (fun (s : lp_state) -> s.checksum) r.Hope_shard.Shard.states;
      handled_total =
        Array.fold_left (fun acc (s : lp_state) -> acc + s.handled) 0 r.states;
      processed = r.processed;
      rollbacks = r.rollbacks;
      messages = r.committed;
      physical_time = 0.0;
    },
    r )

(* ------------------------------------------------------------------ *)
(* HOPE-expressed optimistic simulation                                *)
(* ------------------------------------------------------------------ *)

let flush_marker = Value.String "flush"

let encode_event ~ts (job : Job.t) =
  Value.triple (Value.Float ts) (Value.Int job.Job.job_id) (Value.Int job.Job.hop)

let decode_event v =
  match v with
  | Value.Pair (Value.Float ts, Value.Pair (Value.Int job_id, Value.Int hop)) ->
    Some (ts, { Job.job_id; hop })
  | _ -> None

(* Per-LP loop state. [buffer] is a reorder buffer of drained events,
   [outstanding] the (ts, aid) pairs of optimistic "no straggler below ts"
   assumptions still open. Everything lives in the continuation, so HOPE
   rollback restores it consistently. *)
type lp_loop = {
  lvt : float;
  buffer : (float * Job.t) list;  (* sorted ascending by ts *)
  outstanding : (float * Aid.t) list;
  st : lp_state;
}

let insert_event (ts, job) buffer =
  let rec go = function
    | [] -> [ (ts, job) ]
    | (ts', _) :: _ as l when ts < ts' -> (ts, job) :: l
    | x :: rest -> x :: go rest
  in
  go buffer

let hope_lp p ~lp_id ~peers ~results =
  let rec loop (s : lp_loop) =
    let* s = drain s in
    match s.buffer with
    | (ts, _) :: _ when ts >= s.lvt -> process s
    | (_, _) :: _ ->
      (* The head undercuts our virtual time: a deny is in flight and our
         own rollback is coming; wait for it rather than compute garbage. *)
      let* env = Program.recv () in
      let* s = ingest s env in
      loop s
    | [] ->
      let* env = Program.recv () in
      let* s = ingest s env in
      loop s
  and drain s =
    let* m = Program.recv_opt () in
    match m with
    | None -> Program.return s
    | Some env ->
      let* s = ingest s env in
      drain s
  and ingest s env =
    let v = Envelope.value env in
    if Value.equal v flush_marker then begin
      (* End of event traffic: commit every surviving assumption. *)
      let* () =
        Program.iter_list (fun (_, a) -> Program.affirm a) s.outstanding
      in
      let* () =
        Program.lift (fun () -> Hashtbl.replace results lp_id s.st)
      in
      Program.return { s with outstanding = [] }
    end
    else
      match decode_event v with
      | None -> Program.return s
      | Some (ts, job) ->
        if ts < s.lvt then begin
          (* Straggler: deny the earliest violated assumption; the denial
             rolls this LP (and every dependent output) back, after which
             the replayed mailbox is consumed in timestamp order. *)
          match
            List.filter (fun (ts_k, _) -> ts_k > ts) s.outstanding
            |> List.sort compare
          with
          | (_, earliest) :: _ ->
            let* () = Program.incr_counter "phold.stragglers" in
            let* () = Program.deny earliest in
            Program.return { s with buffer = insert_event (ts, job) s.buffer }
          | [] ->
            (* No open assumption covers it: can only happen after a
               flush, which the driver only sends at quiescence. *)
            Program.return s
        end
        else Program.return { s with buffer = insert_event (ts, job) s.buffer }
  and process s =
    match s.buffer with
    | [] -> loop s
    | (ts, job) :: rest ->
      let* a = Program.aid_init () in
      let* ok = Program.guess a in
      if not ok then
        (* Our "no straggler" assumption failed: the event goes back to
           the buffer and is re-ordered against the replayed arrivals. *)
        loop { s with buffer = insert_event (ts, job) rest }
      else begin
        let* () = Program.compute p.event_cost in
        let* () = Program.incr_counter "phold.events" in
        let st' =
          {
            handled = s.st.handled + 1;
            checksum = Job.checksum_mix s.st.checksum ~lp:lp_id ~ts job;
          }
        in
        let delay, dest =
          Job.route ~n_lps:p.n_lps ~mean_delay:p.mean_delay
            ~remote_prob:p.remote_prob ~from_lp:lp_id job
        in
        let ts' = ts +. delay in
        let* () =
          if ts' > p.horizon then Program.return ()
          else
            Program.send peers.(dest)
              (encode_event ~ts:ts' { job with Job.hop = job.Job.hop + 1 })
        in
        loop
          {
            lvt = ts;
            buffer = rest;
            outstanding = (ts, a) :: s.outstanding;
            st = st';
          }
      end
  in
  loop { lvt = neg_infinity; buffer = []; outstanding = []; st = { handled = 0; checksum = 0 } }

let run_hope ?(seed = 42) ?obs ?(on_setup = ignore) p =
  let engine = Engine.create ~seed ?obs () in
  let sched =
    Scheduler.create ~engine ~default_latency:p.latency
      ~config:Scheduler.free_config ()
  in
  let rt = Runtime.install sched () in
  on_setup rt;
  let results : (int, lp_state) Hashtbl.t = Hashtbl.create 16 in
  let peers = Array.make p.n_lps (Proc_id.of_int 0) in
  for i = 0 to p.n_lps - 1 do
    peers.(i) <-
      Scheduler.spawn sched ~node:i ~name:(Printf.sprintf "lp-%d" i)
        (hope_lp p ~lp_id:i ~peers ~results)
  done;
  let driver = Proc_id.of_int 100_000 in
  List.iter
    (fun (dst, ts, job) ->
      Scheduler.send_user sched ~src:driver ~dst:peers.(dst) ~tags:Aid.Set.empty
        (encode_event ~ts job))
    (seeds p);
  let quiesce what =
    match Scheduler.run ~max_events:50_000_000 sched with
    | Hope_sim.Engine.Quiescent -> ()
    | reason ->
      failwith
        (Format.asprintf "phold/hope did not quiesce (%s): %a" what
           Hope_sim.Engine.pp_stop_reason reason)
  in
  quiesce "events";
  Array.iter
    (fun lp ->
      Scheduler.send_user sched ~src:driver ~dst:lp ~tags:Aid.Set.empty flush_marker)
    peers;
  quiesce "flush";
  (match Invariant.check_all rt with
  | [] -> ()
  | vs ->
    failwith
      (Format.asprintf "phold/hope invariant violations: %a"
         (Format.pp_print_list Invariant.pp_violation)
         vs));
  let m = Engine.metrics engine in
  let checksums = Array.make p.n_lps 0 in
  let handled = ref 0 in
  Hashtbl.iter
    (fun lp st ->
      checksums.(lp) <- st.checksum;
      handled := !handled + st.handled)
    results;
  {
    checksums;
    handled_total = !handled;
    processed = Metrics.find_counter m "phold.events";
    rollbacks = Metrics.find_counter m "hope.rollbacks";
    messages = Metrics.find_counter m "net.user_and_ctl_sends";
    physical_time = Engine.now engine;
  }
