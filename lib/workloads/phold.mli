(** PHOLD: the classic synthetic discrete-event-simulation workload, used
    by experiment E7 to compare dedicated Time Warp (the paper's reference
    [14], one fixed optimistic assumption) against the same model
    expressed with HOPE primitives (assumption: "no straggler will arrive
    below this event's timestamp").

    A fixed population of jobs hops between logical processes; each hop is
    processed at its receive timestamp and schedules the next hop after an
    exponential virtual delay, to a random LP. All randomness is derived
    from the (job, hop) pair, so the three executions — sequential
    reference, Time Warp, and HOPE — simulate the {e same} trajectory and
    must produce identical per-LP checksums. *)

type params = {
  n_lps : int;
  jobs : int;  (** circulating job population *)
  mean_delay : float;  (** mean virtual hop delay *)
  remote_prob : float;  (** probability a hop leaves its LP *)
  horizon : float;  (** virtual end time *)
  event_cost : float;  (** physical CPU time per event *)
  latency : Hope_net.Latency.t;  (** physical message latency *)
}

val default_params : params

type lp_state = { handled : int; checksum : int }

val model : params -> (lp_state, Job.t) Hope_timewarp.Timewarp.model

val seeds : params -> (int * float * Job.t) list
(** Initial events, one per job. *)

type outcome = {
  checksums : int array;  (** per-LP final checksum *)
  handled_total : int;  (** committed events *)
  processed : int;  (** executions including undone work *)
  rollbacks : int;
  messages : int;  (** model-level event messages sent *)
  physical_time : float;
}

val run_sequential : params -> outcome
(** The conservative reference execution (zero-cost oracle: [processed],
    [messages] count model events; [physical_time] is 0). *)

val run_timewarp : ?seed:int -> ?obs:Hope_obs.Recorder.t -> params -> outcome

val shard_spec : ?grain:int -> params -> (lp_state, Job.t) Hope_shard.Shard.spec
(** The PHOLD model packaged for the sharded executor. [grain] (default
    0) adds that many iterations of deterministic integer mixing per
    event — synthetic CPU weight for parallel scaling runs; it does not
    change the trajectory. *)

val run_parallel :
  ?domains:int ->
  ?seed:int ->
  ?grain:int ->
  ?obs_shard:(int -> Hope_obs.Recorder.t option) ->
  params ->
  outcome * lp_state Hope_shard.Shard.result
(** Run PHOLD on the sharded Time Warp executor ({!Hope_shard.Shard}).
    Commits exactly the sequential event set at any [domains] —
    [checksums] must equal {!run_sequential}'s, [messages] counts
    committed events, and the paired raw result carries the sorted
    commit records for the deterministic merged trace. *)

val run_hope :
  ?seed:int ->
  ?obs:Hope_obs.Recorder.t ->
  ?on_setup:(Hope_core.Runtime.t -> unit) ->
  params ->
  outcome
(** The HOPE-expressed optimistic simulator: each LP guesses per event
    that no straggler will undercut it, denies the earliest violated guess
    when one does, and the driver flushes affirms for every surviving
    assumption once the event traffic quiesces (the resulting self-cycles
    are resolved by Algorithm 2's cuts). @raise Failure on invariant
    violation or non-quiescence. *)
