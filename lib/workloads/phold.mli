(** PHOLD: the classic synthetic discrete-event-simulation workload, used
    by experiment E7 to compare dedicated Time Warp (the paper's reference
    [14], one fixed optimistic assumption) against the same model
    expressed with HOPE primitives (assumption: "no straggler will arrive
    below this event's timestamp").

    A fixed population of jobs hops between logical processes; each hop is
    processed at its receive timestamp and schedules the next hop after an
    exponential virtual delay, to a random LP. All randomness is derived
    from the (job, hop) pair, so the three executions — sequential
    reference, Time Warp, and HOPE — simulate the {e same} trajectory and
    must produce identical per-LP checksums. *)

type params = {
  n_lps : int;
  jobs : int;  (** circulating job population *)
  mean_delay : float;  (** mean virtual hop delay *)
  remote_prob : float;  (** probability a hop leaves its LP *)
  horizon : float;  (** virtual end time *)
  event_cost : float;  (** physical CPU time per event *)
  latency : Hope_net.Latency.t;  (** physical message latency *)
}

val default_params : params

type lp_state = { handled : int; checksum : int }

val model : params -> (lp_state, Job.t) Hope_timewarp.Timewarp.model

val seeds : params -> (int * float * Job.t) list
(** Initial events, one per job. *)

type outcome = {
  checksums : int array;  (** per-LP final checksum *)
  handled_total : int;  (** committed events *)
  processed : int;  (** executions including undone work *)
  rollbacks : int;
  messages : int;  (** model-level event messages sent *)
  physical_time : float;
}

val run_sequential : params -> outcome
(** The conservative reference execution (zero-cost oracle: [processed],
    [messages] count model events; [physical_time] is 0). *)

val run_timewarp : ?seed:int -> ?obs:Hope_obs.Recorder.t -> params -> outcome

val run_hope :
  ?seed:int ->
  ?obs:Hope_obs.Recorder.t ->
  ?on_setup:(Hope_core.Runtime.t -> unit) ->
  params ->
  outcome
(** The HOPE-expressed optimistic simulator: each LP guesses per event
    that no straggler will undercut it, denies the earliest violated guess
    when one does, and the driver flushes affirms for every surviving
    assumption once the event traffic quiesces (the resulting self-cycles
    are resolved by Algorithm 2's cuts). @raise Failure on invariant
    violation or non-quiescence. *)
