open Hope_types
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Runtime = Hope_core.Runtime
module Invariant = Hope_core.Invariant
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Rng = Hope_sim.Rng
module Rpc = Hope_rpc.Rpc
open Program.Syntax

type params = {
  tasks : int;
  accuracy : float;
  task_cost : float;
  fixup_cost : float;
  validate_cost : float;
  fate_seed : int;
}

let default_params =
  {
    tasks = 50;
    accuracy = 0.9;
    task_cost = 200e-6;
    fixup_cost = 400e-6;
    validate_cost = 100e-6;
    fate_seed = 7;
  }

type mode = Pessimistic | Speculative of int option

type result = {
  completion_time : float;
  rollbacks : int;
  messages : int;
  denials : int;
}

(* Deterministic per-task verdict, shared by every mode. *)
let fate p task =
  let r = Rng.create ~seed:((p.fate_seed * 69_069) + task) in
  Rng.bernoulli r ~p:p.accuracy

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)
(* ------------------------------------------------------------------ *)

let rpc_oracle p =
  Rpc.serve_forever (fun req ->
      let task = Value.to_int req in
      let* () = Program.compute p.validate_cost in
      let valid = fate p task in
      let* () =
        if valid then Program.return () else Program.incr_counter "pipeline.denials"
      in
      Program.return (Value.Bool valid))

let is_task_request v =
  match v with Value.Pair (Value.Aid_v _, Value.Int _) -> true | _ -> false

let ack task = Value.Pair (Value.String "ack", Value.Int task)

let is_ack task env =
  Envelope.is_user env && Value.equal (Envelope.value env) (ack task)

let hope_oracle p ~worker =
  let rec loop () =
    let* env =
      Program.recv_where (fun e ->
          Envelope.is_user e && is_task_request (Envelope.value e))
    in
    let a, task =
      match Envelope.value env with
      | Value.Pair (Value.Aid_v a, Value.Int task) -> (a, task)
      | _ -> assert false
    in
    let* () = Program.compute p.validate_cost in
    let* () =
      if fate p task then Program.affirm a
      else
        let* () = Program.incr_counter "pipeline.denials" in
        Program.deny a
    in
    let* () = Program.send worker (ack task) in
    loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let pessimistic_worker p ~oracle =
  Program.for_ 0 (p.tasks - 1) (fun task ->
      let* resp = Rpc.call ~server:oracle (Value.Int task) in
      Program.compute (if Value.to_bool resp then p.task_cost else p.fixup_cost))

let speculative_worker p ~oracle ~window =
  let rec go task =
    if task >= p.tasks then Program.return ()
    else
      (* Bounded scope: do not open assumption [task] before assumption
         [task - window] has been resolved by the oracle. *)
      let* () =
        match window with
        | Some w when task >= w ->
          let* _ = Program.recv_where (is_ack (task - w)) in
          Program.return ()
        | Some _ | None -> Program.return ()
      in
      let* a = Program.aid_init () in
      let* () = Program.send oracle (Value.Pair (Value.Aid_v a, Value.Int task)) in
      let* ok = Program.guess a in
      let* () = Program.compute (if ok then p.task_cost else p.fixup_cost) in
      go (task + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 42) ?obs ?(latency = Hope_net.Latency.man)
    ?(sched_config = Scheduler.epoch_1995_config) ?(on_setup = ignore) ~mode p =
  let engine = Engine.create ~seed ?obs () in
  let sched =
    Scheduler.create ~engine ~default_latency:latency ~config:sched_config ()
  in
  let rt = Runtime.install sched () in
  on_setup rt;
  let worker_name = "pipeline-worker" in
  let worker_body oracle =
    match mode with
    | Pessimistic -> pessimistic_worker p ~oracle
    | Speculative window -> speculative_worker p ~oracle ~window
  in
  let worker =
    match mode with
    | Pessimistic ->
      let oracle = Scheduler.spawn sched ~node:1 ~name:"oracle" (rpc_oracle p) in
      Scheduler.spawn sched ~node:0 ~name:worker_name (worker_body oracle)
    | Speculative _ ->
      (* The HOPE oracle needs the worker's address for acks; spawn the
         worker first with a forward reference through a mutable cell the
         oracle reads at its first step. *)
      let worker_ref = ref None in
      let oracle =
        Scheduler.spawn sched ~node:1 ~name:"oracle"
          (let* wpid = Program.lift (fun () -> Option.get !worker_ref) in
           hope_oracle p ~worker:wpid)
      in
      let w = Scheduler.spawn sched ~node:0 ~name:worker_name (worker_body oracle) in
      worker_ref := Some w;
      w
  in
  (match Scheduler.run ~max_events:50_000_000 sched with
  | Hope_sim.Engine.Quiescent -> ()
  | reason ->
    failwith
      (Format.asprintf "pipeline did not quiesce: %a"
         Hope_sim.Engine.pp_stop_reason reason));
  (match Invariant.check_all rt with
  | [] -> ()
  | vs ->
    failwith
      (Format.asprintf "pipeline invariant violations: %a"
         (Format.pp_print_list Invariant.pp_violation)
         vs));
  let completion_time =
    match Scheduler.completion_time sched worker with
    | Some at -> at
    | None -> failwith "pipeline worker did not terminate"
  in
  let m = Engine.metrics engine in
  {
    completion_time;
    rollbacks = Metrics.find_counter m "hope.rollbacks";
    messages = Metrics.find_counter m "net.user_and_ctl_sends";
    denials = Metrics.find_counter m "pipeline.denials";
  }
