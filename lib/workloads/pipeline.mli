(** Speculative task pipeline: experiments E5 (optimism vs assumption
    accuracy) and E6 (speculation scope).

    A worker executes a sequence of tasks. Each task's input must be
    validated by a remote oracle; validation takes a round trip plus
    server time, and succeeds with probability [accuracy] (drawn
    deterministically per task, so every mode replays the same fate
    sequence). The worker can:

    - wait for each validation synchronously (pessimistic, Figure 1
      style);
    - proceed optimistically under a HOPE guess and roll back on denial,
      with a bound [window] on outstanding unresolved assumptions —
      [window = 1] approximates the statically-scoped speculation of
      Bubenik's system (the paper's [4]); unbounded speculation is HOPE's
      distinguishing feature (§2.1). *)

type params = {
  tasks : int;
  accuracy : float;  (** per-task validation success probability *)
  task_cost : float;  (** local CPU per task on the optimistic path *)
  fixup_cost : float;  (** local CPU to redo a task after a denial *)
  validate_cost : float;  (** oracle CPU per validation *)
  fate_seed : int;  (** seeds the deterministic per-task verdicts *)
}

val default_params : params

type mode =
  | Pessimistic  (** synchronous validation *)
  | Speculative of int option
      (** HOPE speculation; [Some w] bounds outstanding assumptions to
          [w], [None] is unbounded *)

type result = {
  completion_time : float;
  rollbacks : int;
  messages : int;
  denials : int;  (** failed validations (identical across modes) *)
}

val run :
  ?seed:int ->
  ?obs:Hope_obs.Recorder.t ->
  ?latency:Hope_net.Latency.t ->
  ?sched_config:Hope_proc.Scheduler.config ->
  ?on_setup:(Hope_core.Runtime.t -> unit) ->
  mode:mode ->
  params ->
  result
(** Two-node world: worker on node 0, oracle on node 1. [on_setup] runs
    right after the runtime is installed, before any process is spawned
    — the hook live telemetry ([Hope_sim.Telemetry.install]) and
    invariant surfacing attach through. @raise Failure on non-quiescence
    or invariant violation. *)
