open Hope_types
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Runtime = Hope_core.Runtime
module Invariant = Hope_core.Invariant
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Rng = Hope_sim.Rng
module Rpc = Hope_rpc.Rpc
open Program.Syntax

type params = {
  messages : int;
  crash_rate : float;
  log_cost : float;
  apply_cost : float;
  fate_seed : int;
}

let default_params =
  {
    messages = 30;
    crash_rate = 0.05;
    log_cost = 500e-6;
    apply_cost = 100e-6;
    fate_seed = 13;
  }

type result = {
  makespan : float;
  rollbacks : int;
  crashes : int;
  messages_sent : int;
}

(* Does logging attempt [attempt] of message [i] hit a crash? Retries are
   drawn independently, so recovery always eventually succeeds. *)
let crashes_ p ~msg ~attempt =
  let r = Rng.create ~seed:((p.fate_seed * 52_711) + (msg * 131) + attempt) in
  Rng.bernoulli r ~p:p.crash_rate

let encode_log_request ~aid ~msg ~attempt =
  Value.Pair (Value.Aid_v aid, Value.Pair (Value.Int msg, Value.Int attempt))

(* ------------------------------------------------------------------ *)
(* Stable-storage logger                                               *)
(* ------------------------------------------------------------------ *)

let hope_logger p =
  let rec loop () =
    let* env = Program.recv () in
    let aid, msg, attempt =
      match Envelope.value env with
      | Value.Pair (Value.Aid_v a, Value.Pair (Value.Int m, Value.Int k)) -> (a, m, k)
      | _ -> invalid_arg "recovery: malformed log request"
    in
    let* () = Program.compute p.log_cost in
    let* () =
      if crashes_ p ~msg ~attempt then
        let* () = Program.incr_counter "recovery.crashes" in
        Program.deny aid
      else Program.affirm aid
    in
    loop ()
  in
  loop ()

let rpc_logger p =
  Rpc.serve_forever (fun req ->
      let msg, attempt =
        match req with
        | Value.Pair (Value.Int m, Value.Int k) -> (m, k)
        | _ -> invalid_arg "recovery: malformed log request"
      in
      let* () = Program.compute p.log_cost in
      let crash = crashes_ p ~msg ~attempt in
      let* () =
        if crash then Program.incr_counter "recovery.crashes" else Program.return ()
      in
      Program.return (Value.Bool (not crash)))

(* ------------------------------------------------------------------ *)
(* Senders                                                             *)
(* ------------------------------------------------------------------ *)

(* Optimistic recovery: deliver before the log is stable, under the
   assumption the write survives. A crash denies the assumption, the
   delivery (and everything the receiver did with it) rolls back, and the
   sender retries the logging. *)
let optimistic_sender p ~logger ~receiver =
  let rec send_message msg attempt =
    let* a = Program.aid_init () in
    let* () = Program.send logger (encode_log_request ~aid:a ~msg ~attempt) in
    let* stable = Program.guess a in
    if stable then Program.send receiver (Value.Int msg)
    else send_message msg (attempt + 1)
  in
  Program.for_ 0 (p.messages - 1) (fun msg -> send_message msg 0)

(* Pessimistic logging: wait for the ack before delivering. *)
let pessimistic_sender p ~logger ~receiver =
  let rec send_message msg attempt =
    let* resp = Rpc.call ~server:logger (Value.Pair (Value.Int msg, Value.Int attempt)) in
    if Value.to_bool resp then Program.send receiver (Value.Int msg)
    else send_message msg (attempt + 1)
  in
  Program.for_ 0 (p.messages - 1) (fun msg -> send_message msg 0)

let receiver_body p =
  Program.repeat p.messages
    (let* _ = Program.recv () in
     Program.compute p.apply_cost)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 42) ?obs ?(latency = Hope_net.Latency.man)
    ?(sched_config = Scheduler.epoch_1995_config) ?(on_setup = ignore) ~mode p =
  let engine = Engine.create ~seed ?obs () in
  let sched =
    Scheduler.create ~engine ~default_latency:latency ~config:sched_config ()
  in
  let rt = Runtime.install sched () in
  on_setup rt;
  let logger =
    Scheduler.spawn sched ~node:1 ~name:"logger"
      (match mode with `Pessimistic -> rpc_logger p | `Optimistic -> hope_logger p)
  in
  let receiver = Scheduler.spawn sched ~node:2 ~name:"receiver" (receiver_body p) in
  let _sender =
    Scheduler.spawn sched ~node:0 ~name:"sender"
      (match mode with
      | `Pessimistic -> pessimistic_sender p ~logger ~receiver
      | `Optimistic -> optimistic_sender p ~logger ~receiver)
  in
  (match Scheduler.run ~max_events:50_000_000 sched with
  | Hope_sim.Engine.Quiescent -> ()
  | reason ->
    failwith
      (Format.asprintf "recovery did not quiesce: %a"
         Hope_sim.Engine.pp_stop_reason reason));
  (match Invariant.check_all rt with
  | [] -> ()
  | vs ->
    failwith
      (Format.asprintf "recovery invariant violations: %a"
         (Format.pp_print_list Invariant.pp_violation)
         vs));
  let makespan =
    match Scheduler.completion_time sched receiver with
    | Some at -> at
    | None -> failwith "recovery receiver did not terminate"
  in
  let m = Engine.metrics engine in
  {
    makespan;
    rollbacks = Metrics.find_counter m "hope.rollbacks";
    crashes = Metrics.find_counter m "recovery.crashes";
    messages_sent = Metrics.find_counter m "net.user_and_ctl_sends";
  }
