(** Optimistic message-logging recovery (Strom & Yemini, the paper's
    reference [20]) — experiment E9.

    A sender streams messages to a receiver while logging each message to
    stable storage in parallel. Pessimistic logging waits for the log-ack
    before the receiver may see a message; optimistic recovery delivers
    immediately under the assumption "this message will be stable before
    any failure". A (deterministically scheduled) crash loses unlogged
    messages: the assumption is denied, the receiver's computation based
    on lost messages rolls back, and the recovered sender re-sends.

    This is precisely the application domain the paper credits as HOPE's
    inspiration ("optimism studies at the IBM T.J. Watson Research Center
    by Rob Strom et al.", §7). *)

type params = {
  messages : int;  (** messages in the stream *)
  crash_rate : float;  (** probability a given message's logging fails *)
  log_cost : float;  (** stable-storage write time *)
  apply_cost : float;  (** receiver CPU per message *)
  fate_seed : int;
}

val default_params : params

type result = {
  makespan : float;  (** virtual time until the receiver has applied all *)
  rollbacks : int;
  crashes : int;
  messages_sent : int;
}

val run :
  ?seed:int ->
  ?obs:Hope_obs.Recorder.t ->
  ?latency:Hope_net.Latency.t ->
  ?sched_config:Hope_proc.Scheduler.config ->
  ?on_setup:(Hope_core.Runtime.t -> unit) ->
  mode:[ `Pessimistic | `Optimistic ] ->
  params ->
  result
(** Sender on node 0, log on node 1, receiver on node 2. @raise Failure
    on non-quiescence or invariant violation. *)
