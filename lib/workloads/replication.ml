open Hope_types
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Runtime = Hope_core.Runtime
module Invariant = Hope_core.Invariant
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Rng = Hope_sim.Rng
module Rpc = Hope_rpc.Rpc
open Program.Syntax

type params = {
  replicas : int;
  updates : int;
  conflict_rate : float;
  apply_cost : float;
  reconcile_cost : float;
  serialize_cost : float;
  fate_seed : int;
}

let default_params =
  {
    replicas = 4;
    updates = 25;
    conflict_rate = 0.05;
    apply_cost = 150e-6;
    reconcile_cost = 600e-6;
    serialize_cost = 80e-6;
    fate_seed = 11;
  }

type result = {
  makespan : float;
  throughput : float;
  rollbacks : int;
  messages : int;
  conflicts : int;
}

let conflicts_ p ~replica ~update =
  let r = Rng.create ~seed:((p.fate_seed * 40_503) + (replica * 9973) + update) in
  Rng.bernoulli r ~p:p.conflict_rate

(* ------------------------------------------------------------------ *)
(* Primary serializer                                                  *)
(* ------------------------------------------------------------------ *)

let encode_update ~replica ~update = Value.Pair (Value.Int replica, Value.Int update)

let rpc_primary p =
  Rpc.serve_forever (fun req ->
      let replica, update =
        match req with
        | Value.Pair (Value.Int r, Value.Int u) -> (r, u)
        | _ -> invalid_arg "replication: malformed update"
      in
      let* () = Program.compute p.serialize_cost in
      let conflict = conflicts_ p ~replica ~update in
      let* () =
        if conflict then Program.incr_counter "replication.conflicts"
        else Program.return ()
      in
      Program.return (Value.Bool (not conflict)))

let hope_primary p =
  let rec loop () =
    let* env =
      Program.recv_where (fun e ->
          match Envelope.value e with
          | Value.Pair (Value.Aid_v _, Value.Pair (Value.Int _, Value.Int _)) -> true
          | _ -> false
          | exception Invalid_argument _ -> false)
    in
    let a, replica, update =
      match Envelope.value env with
      | Value.Pair (Value.Aid_v a, Value.Pair (Value.Int r, Value.Int u)) -> (a, r, u)
      | _ -> assert false
    in
    let* () = Program.compute p.serialize_cost in
    let* () =
      if conflicts_ p ~replica ~update then
        let* () = Program.incr_counter "replication.conflicts" in
        Program.deny a
      else Program.affirm a
    in
    loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Replica clients                                                     *)
(* ------------------------------------------------------------------ *)

let pessimistic_replica p ~primary ~replica =
  Program.for_ 0 (p.updates - 1) (fun update ->
      let* verdict = Rpc.call ~server:primary (encode_update ~replica ~update) in
      Program.compute (if Value.to_bool verdict then p.apply_cost else p.reconcile_cost))

let optimistic_replica p ~primary ~replica =
  Program.for_ 0 (p.updates - 1) (fun update ->
      let* a = Program.aid_init () in
      let* () =
        Program.send primary
          (Value.Pair (Value.Aid_v a, encode_update ~replica ~update))
      in
      let* ok = Program.guess a in
      Program.compute (if ok then p.apply_cost else p.reconcile_cost))

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 42) ?obs ?(latency = Hope_net.Latency.man)
    ?(sched_config = Scheduler.epoch_1995_config) ?(on_setup = ignore) ~mode p =
  let engine = Engine.create ~seed ?obs () in
  let sched =
    Scheduler.create ~engine ~default_latency:latency ~config:sched_config ()
  in
  let rt = Runtime.install sched () in
  on_setup rt;
  let primary =
    Scheduler.spawn sched ~node:0 ~name:"primary"
      (match mode with
      | `Pessimistic -> rpc_primary p
      | `Optimistic -> hope_primary p)
  in
  let clients =
    List.init p.replicas (fun i ->
        let body =
          match mode with
          | `Pessimistic -> pessimistic_replica p ~primary ~replica:i
          | `Optimistic -> optimistic_replica p ~primary ~replica:i
        in
        Scheduler.spawn sched ~node:(i + 1) ~name:(Printf.sprintf "replica-%d" i) body)
  in
  (match Scheduler.run ~max_events:50_000_000 sched with
  | Hope_sim.Engine.Quiescent -> ()
  | reason ->
    failwith
      (Format.asprintf "replication did not quiesce: %a"
         Hope_sim.Engine.pp_stop_reason reason));
  (match Invariant.check_all rt with
  | [] -> ()
  | vs ->
    failwith
      (Format.asprintf "replication invariant violations: %a"
         (Format.pp_print_list Invariant.pp_violation)
         vs));
  let makespan =
    List.fold_left
      (fun acc c ->
        match Scheduler.completion_time sched c with
        | Some at -> Float.max acc at
        | None -> failwith "replication client did not terminate")
      0.0 clients
  in
  let m = Engine.metrics engine in
  let committed = p.replicas * p.updates in
  {
    makespan;
    throughput = float_of_int committed /. makespan;
    rollbacks = Metrics.find_counter m "hope.rollbacks";
    messages = Metrics.find_counter m "net.user_and_ctl_sends";
    conflicts = Metrics.find_counter m "replication.conflicts";
  }
