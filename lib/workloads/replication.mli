(** Optimistic replication, the application of the paper's companion work
    "Optimistic Replication in HOPE" (reference [5]) — experiment E8.

    Clients update their local replica. A primary serializer decides
    whether each update conflicts with concurrent updates from other
    replicas; the conflict probability is the workload knob. Two
    protocols:

    - {e pessimistic}: the replica forwards every update to the primary
      and waits for the verdict before applying (primary-copy locking);
    - {e optimistic}: the replica applies immediately under a HOPE guess
      ("this update will not conflict") and propagates asynchronously; a
      conflicting verdict denies the assumption and rolls the replica —
      and everything that read the optimistic value — back to re-apply
      the reconciled update.

    Conflicts are drawn deterministically per (replica, update), so both
    protocols face the same fate sequence. *)

type params = {
  replicas : int;  (** replica sites, one client each *)
  updates : int;  (** updates issued per replica *)
  conflict_rate : float;
  apply_cost : float;  (** local CPU to apply an update *)
  reconcile_cost : float;  (** local CPU to repair a conflicted update *)
  serialize_cost : float;  (** primary CPU per verdict *)
  fate_seed : int;
}

val default_params : params

type result = {
  makespan : float;  (** virtual time until every replica finished *)
  throughput : float;  (** committed updates per virtual second *)
  rollbacks : int;
  messages : int;
  conflicts : int;
}

val run :
  ?seed:int ->
  ?obs:Hope_obs.Recorder.t ->
  ?latency:Hope_net.Latency.t ->
  ?sched_config:Hope_proc.Scheduler.config ->
  ?on_setup:(Hope_core.Runtime.t -> unit) ->
  mode:[ `Pessimistic | `Optimistic ] ->
  params ->
  result
(** Primary on node 0, replica [i] on node [i+1]. @raise Failure on
    non-quiescence or invariant violation. *)
