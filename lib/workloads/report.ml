open Hope_types
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Runtime = Hope_core.Runtime
module Invariant = Hope_core.Invariant
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Rpc = Hope_rpc.Rpc
module Protocol = Hope_rpc.Protocol
open Program.Syntax

type params = { sections : int; page_size : int; print_cost : float }

let default_params = { sections = 40; page_size = 20; print_cost = 100e-6 }

let accuracy p = 1.0 -. (2.0 /. float_of_int p.page_size)

let print_request = Value.String "print"
let newpage_request = Value.String "newpage"

(* The print service: state is the current line number on the page.
   [print] appends one line and returns the resulting line number;
   [newpage] resets it. *)
let print_server p =
  Rpc.serve_fold_forever ~init:0 (fun line req ->
      let* () = Program.compute p.print_cost in
      match req with
      | Value.String "print" -> Program.return (line + 1, Value.Int (line + 1))
      | Value.String "newpage" -> Program.return (0, Value.Unit)
      | _ -> Program.return (line, Value.Unit))

(* ------------------------------------------------------------------ *)
(* Figure 1: the pessimistic worker                                    *)
(* ------------------------------------------------------------------ *)

let pessimistic_worker p ~server =
  Program.for_ 1 p.sections (fun _section ->
      (* S1 *)
      let* line_v = Rpc.call ~server print_request in
      let line = Value.to_int line_v in
      (* S2 *)
      let* () =
        if line >= p.page_size then
          let* _ = Rpc.call ~server newpage_request in
          Program.return ()
        else Program.return ()
      in
      (* S3 *)
      let* _ = Rpc.call ~server print_request in
      Program.return ())

(* ------------------------------------------------------------------ *)
(* Figure 2: the optimistic worker and its WorryWart companion         *)
(* ------------------------------------------------------------------ *)

let is_notify v =
  match v with
  | Value.Pair (Value.Aid_v _, Value.Pair (Value.Aid_v _, Value.Int _)) -> true
  | _ -> false

let notify ~part ~order ~call_id =
  Value.triple (Value.Aid_v part) (Value.Aid_v order) (Value.Int call_id)

(* The WorryWart executes S1's result check for each section: it receives
   (PartPage, Order, call_id) from the Worker, awaits the print server's
   response to the asynchronous S1, verifies the Order assumption with
   free_of, and then affirms or denies PartPage (Figure 2). *)
let worrywart p ~sections =
  Program.for_ 1 sections (fun _section ->
      let* env =
        Program.recv_where (fun e -> Envelope.is_user e && is_notify (Envelope.value e))
      in
      let part_v, order_v, call_id_v = Value.to_triple (Envelope.value env) in
      let part = Value.to_aid part_v
      and order = Value.to_aid order_v
      and call_id = Value.to_int call_id_v in
      let* resp = Program.recv_where (Protocol.is_response_to call_id) in
      let line =
        match Protocol.as_response (Envelope.value resp) with
        | Some (_, Value.Int line) -> line
        | Some _ | None -> invalid_arg "worrywart: malformed print response"
      in
      let* () = Program.free_of order in
      if line < p.page_size then Program.affirm part else Program.deny part)

let optimistic_sections p ~server ~worrywart:ww =
  Program.for_ 1 p.sections (fun _section ->
      let* part = Program.aid_init () in
      let* order = Program.aid_init () in
      (* S1, asynchronously: the response goes straight to the WorryWart. *)
      let* call_id = Program.random_int 0x3FFFFFFF in
      let* () =
        Program.send server (Protocol.request ~call_id ~reply_to:ww print_request)
      in
      let* () = Program.send ww (notify ~part ~order ~call_id) in
      (* S2 under the PartPage assumption. *)
      let* ok = Program.guess part in
      let* () = if ok then Program.return () else Rpc.post ~server newpage_request in
      (* S3 under the Order assumption: the summary must not overtake S1. *)
      let* _ = Program.guess order in
      Rpc.post ~server print_request)

let optimistic_worker p ~server =
  let* ww = Program.spawn "worrywart" (worrywart p ~sections:p.sections) in
  optimistic_sections p ~server ~worrywart:ww

(* ------------------------------------------------------------------ *)
(* Measurement driver                                                  *)
(* ------------------------------------------------------------------ *)

type result = {
  completion_time : float;
  rollbacks : int;
  messages : int;
  guesses : int;
  order_violations : int;
}

let run ?(seed = 42) ?obs ?(latency = Hope_net.Latency.wan) ?fifo
    ?(sched_config = Scheduler.epoch_1995_config)
    ?(hope_config = Runtime.default_config) ?(trace = false) ?on_quiescence
    ?(on_setup = ignore) ~mode p =
  let engine = Engine.create ~seed ?obs () in
  if trace then Hope_sim.Trace.enable (Engine.trace engine);
  let sched =
    Scheduler.create ~engine ~default_latency:latency ?fifo ~config:sched_config ()
  in
  let rt = Runtime.install sched ~config:hope_config () in
  on_setup rt;
  let server = Scheduler.spawn sched ~node:1 ~name:"print-server" (print_server p) in
  let worker_body =
    match mode with
    | `Pessimistic -> pessimistic_worker p ~server
    | `Optimistic -> optimistic_worker p ~server
  in
  let worker = Scheduler.spawn sched ~node:0 ~name:"worker" worker_body in
  (match Scheduler.run ~max_events:20_000_000 sched with
  | Hope_sim.Engine.Quiescent -> ()
  | reason ->
    failwith
      (Format.asprintf "report workload did not quiesce: %a"
         Hope_sim.Engine.pp_stop_reason reason));
  (match Invariant.check_all rt with
  | [] -> ()
  | vs ->
    failwith
      (Format.asprintf "report workload invariant violations: %a"
         (Format.pp_print_list Invariant.pp_violation)
         vs));
  (match on_quiescence with Some f -> f rt | None -> ());
  let completion_time =
    match Scheduler.completion_time sched worker with
    | Some at -> at
    | None -> failwith "report worker did not terminate"
  in
  let m = Engine.metrics engine in
  {
    completion_time;
    rollbacks = Metrics.find_counter m "hope.rollbacks";
    messages = Metrics.find_counter m "net.user_and_ctl_sends";
    guesses = Metrics.find_counter m "hope.guesses";
    order_violations = Metrics.find_counter m "hope.free_of_hits";
  }
