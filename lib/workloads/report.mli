(** The page-printing report workload of §3.1 (Figures 1 and 2).

    A Worker prints a report on a remote print server. Each report section
    performs the paper's three statements:

    - S1: [line = call print("Total is", total)] — an RPC returning the
      current line number;
    - S2: [if line > page_size then call newpage()];
    - S3: [call print("Summary ...")].

    The {e pessimistic} worker (Figure 1) performs S1–S3 as synchronous
    RPCs, paying a round trip per statement. The {e optimistic} worker
    (Figure 2) runs S1 in a WorryWart process and assumes the report does
    not end exactly at the bottom of the page ([PartPage]); a second
    assumption ([Order]) asserts that S3's message does not overtake S1's
    and invalidate its line count — the WorryWart checks it with
    [free_of]. Both hazards are detected and repaired by rollback.

    Section prints advance the server's line counter by 2 (total +
    summary), so a page boundary is crossed — and the PartPage assumption
    fails — roughly every [page_size / 2] sections: the assumption
    accuracy is [1 - 2/page_size], tunable through [page_size]. *)

open Hope_types
module Program = Hope_proc.Program

type params = {
  sections : int;  (** report sections to print *)
  page_size : int;  (** lines per page; sets assumption accuracy *)
  print_cost : float;  (** server CPU time per print request *)
}

val default_params : params
(** 40 sections, 20-line pages, 100 µs prints. *)

val accuracy : params -> float
(** The expected fraction of correct PartPage assumptions,
    [1 - 2/page_size]. *)

val print_server : params -> unit Program.t
(** The remote print service: [Print] requests append a line and return
    the new line number; [NewPage] requests reset the line counter. Serves
    forever. *)

val print_request : Value.t
val newpage_request : Value.t

val pessimistic_worker : params -> server:Proc_id.t -> unit Program.t
(** Figure 1: synchronous RPCs, three per section. *)

val optimistic_worker : params -> server:Proc_id.t -> unit Program.t
(** Figure 2: Call Streaming with the PartPage and Order assumptions. *)

type result = {
  completion_time : float;  (** worker start-to-finish virtual time *)
  rollbacks : int;
  messages : int;  (** user + control messages sent *)
  guesses : int;
  order_violations : int;
      (** free_of hits — the WorryWart caught S3 overtaking S1 (only
          possible on non-FIFO networks) *)
}

val run :
  ?seed:int ->
  ?obs:Hope_obs.Recorder.t ->
  ?latency:Hope_net.Latency.t ->
  ?fifo:bool ->
  ?sched_config:Hope_proc.Scheduler.config ->
  ?hope_config:Hope_core.Runtime.config ->
  ?trace:bool ->
  ?on_quiescence:(Hope_core.Runtime.t -> unit) ->
  ?on_setup:(Hope_core.Runtime.t -> unit) ->
  mode:[ `Pessimistic | `Optimistic ] ->
  params ->
  result
(** Build a two-node world (worker on node 0, server on node 1), run to
    quiescence, and measure. [hope_config] selects runtime variants for
    ablation experiments; [on_quiescence] runs against the runtime after
    the invariant checks (used e.g. to exercise garbage collection).
    @raise Failure if the run does not quiesce or an invariant is
    violated. *)
